module streamscale

go 1.22
