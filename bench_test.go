// Package streamscale's top-level benchmarks regenerate every table and
// figure of the paper's evaluation (one testing.B target per artifact; see
// DESIGN.md's per-experiment index). Each benchmark runs its experiment
// once per iteration and reports the headline quantity as a custom metric,
// printing the full table on the first iteration of a -v run.
//
// Run everything:
//
//	go test -bench=. -benchmem -benchtime=1x
//
// Absolute wall times are simulation costs, not the modelled system's
// performance; the custom metrics carry the reproduced results.
package main

import (
	"testing"

	"streamscale/internal/apps"
	"streamscale/internal/bench"
	"streamscale/internal/engine"
)

// Sweeps shared by multiple benchmark targets need no caching here: the
// bench package's content-addressed memo layer runs each distinct cell
// once per process and replays repeats from memory, so these helpers call
// the experiment drivers directly.
func batchingOnce(b *testing.B) []bench.BatchingRow {
	b.Helper()
	rows, err := bench.Batching()
	if err != nil {
		b.Fatal(err)
	}
	return rows
}

func placementOnce(b *testing.B) []bench.PlacementRow {
	b.Helper()
	rows, _, err := bench.Placement()
	if err != nil {
		b.Fatal(err)
	}
	return rows
}

func singleSocket(b *testing.B) []bench.CellResult {
	b.Helper()
	cells, err := bench.SingleSocketStudy()
	if err != nil {
		b.Fatal(err)
	}
	return cells
}

func logOnce(b *testing.B, i int, table string) {
	if i == 0 {
		b.Logf("\n%s", table)
	}
}

// BenchmarkFig6aThroughputSingleSocket regenerates Figure 6a. The reported
// metric is word count's Storm throughput in k events/s.
func BenchmarkFig6aThroughputSingleSocket(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells := singleSocket(b)
		logOnce(b, i, bench.Fig6aTable(cells))
		for _, cr := range cells {
			if cr.Cell.App == "wc" && cr.Cell.System == "storm" {
				b.ReportMetric(cr.Res.Throughput().KPerSecond(), "wc-storm-kev/s")
			}
		}
	}
}

// BenchmarkFig6bStormScalability regenerates Figure 6b. The metric is FD's
// 32-core throughput normalized to one core.
func BenchmarkFig6bStormScalability(b *testing.B) { scalability(b, "storm") }

// BenchmarkFig6cFlinkScalability regenerates Figure 6c.
func BenchmarkFig6cFlinkScalability(b *testing.B) { scalability(b, "flink") }

func scalability(b *testing.B, system string) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Scalability(system)
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, res.Table())
		fd := res.Normalized["fd"]
		b.ReportMetric(fd[len(fd)-1]*100, "fd-32core-%")
	}
}

// BenchmarkTable4Utilization regenerates Table IV. The metric is TM's CPU
// utilization (the paper reports 98%).
func BenchmarkTable4Utilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells := singleSocket(b)
		logOnce(b, i, bench.TableIV(cells))
		for _, cr := range cells {
			if cr.Cell.App == "tm" && cr.Cell.System == "storm" {
				b.ReportMetric(cr.Res.CPUUtil*100, "tm-cpu-%")
				b.ReportMetric(cr.Res.MemUtil*100, "tm-mem-%")
			}
		}
	}
}

// BenchmarkFig7Breakdown regenerates Figure 7. The metric is the mean stall
// share across non-TM cells (the paper's ~70% finding).
func BenchmarkFig7Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells := singleSocket(b)
		logOnce(b, i, bench.Fig7Table(cells))
		var sum float64
		n := 0
		for _, cr := range cells {
			if cr.Cell.App == "tm" {
				continue
			}
			sum += 1 - cr.Res.Profile.Breakdown().Computation
			n++
		}
		b.ReportMetric(sum/float64(n)*100, "mean-stall-%")
	}
}

// BenchmarkFig8FrontEnd regenerates Figure 8. The metric is the mean L1I
// share of front-end stalls (the paper: roughly half).
func BenchmarkFig8FrontEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells := singleSocket(b)
		logOnce(b, i, bench.Fig8Table(cells))
		var sum float64
		n := 0
		for _, cr := range cells {
			if cr.Cell.App == "tm" {
				continue
			}
			sum += cr.Res.Profile.FrontEnd().L1IMiss
			n++
		}
		b.ReportMetric(sum/float64(n)*100, "mean-l1i-of-fe-%")
	}
}

// BenchmarkFig9FootprintCDF regenerates Figure 9 for both systems. The
// metrics are the storm and flink mean fractions of invocation gaps
// exceeding the 32 KB L1I (the paper: 30-50% and 20-40%).
func BenchmarkFig9FootprintCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, sys := range bench.Systems {
			rows, err := bench.FootprintCDF(sys)
			if err != nil {
				b.Fatal(err)
			}
			logOnce(b, i, bench.Fig9Table(rows))
			var sum float64
			n := 0
			for _, r := range rows {
				if r.App == "null" {
					continue
				}
				sum += r.OverL1I
				n++
			}
			b.ReportMetric(sum/float64(n)*100, sys+"-over-l1i-%")
		}
	}
}

// BenchmarkTable5LLCMiss regenerates Table V. The metric is the mean
// remote-LLC stall share across applications.
func BenchmarkTable5LLCMiss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.TableV("storm")
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, bench.TableVTable("storm", rows))
		var remote float64
		for _, r := range rows {
			remote += r.Remote
		}
		b.ReportMetric(remote/float64(len(rows))*100, "mean-remote-%")
	}
}

// BenchmarkFig10Executors regenerates Figure 10 (both panels). The metric
// is the latency growth from 32 to 56 Map-Matcher executors.
func BenchmarkFig10Executors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, bench.Fig10Table(rows))
		b.ReportMetric(rows[len(rows)-1].MeanLatencyMs/rows[0].MeanLatencyMs, "latency-growth-x")
	}
}

// BenchmarkFig11BackEnd regenerates Figure 11. The metric is the mean DTLB
// share of back-end stalls.
func BenchmarkFig11BackEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells := singleSocket(b)
		logOnce(b, i, bench.Fig11Table(cells))
		var sum float64
		for _, cr := range cells {
			sum += cr.Res.Profile.BackEnd().DTLB
		}
		b.ReportMetric(sum/float64(len(cells))*100, "mean-dtlb-of-be-%")
	}
}

// BenchmarkFig12Batching regenerates Figures 12 and 13. The metric is the
// best throughput gain at S=8 across cells.
func BenchmarkFig12Batching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := batchingOnce(b)
		logOnce(b, i, bench.Fig12Table(rows))
		best := 0.0
		for _, r := range rows {
			if g := r.Throughput[len(r.Throughput)-1]; g > best {
				best = g
			}
		}
		b.ReportMetric(best, "best-s8-gain-x")
	}
}

// BenchmarkFig13BatchingLatency regenerates the latency panel of the
// batching study. The metric is the worst latency growth at S=8.
func BenchmarkFig13BatchingLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := batchingOnce(b)
		logOnce(b, i, bench.Fig13Table(rows))
		worst := 0.0
		for _, r := range rows {
			if g := r.Latency[len(r.Latency)-1]; g > worst {
				worst = g
			}
		}
		b.ReportMetric(worst, "worst-s8-latency-x")
	}
}

// BenchmarkFig14Placement regenerates Figures 14 and 15. The metrics are
// the best placement-only and combined gains over the unoptimized
// four-socket baseline.
func BenchmarkFig14Placement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := placementOnce(b)
		logOnce(b, i, bench.Fig14Table(rows)+"\n"+bench.Fig15Table(rows))
		bestPlace, bestComb := 0.0, 0.0
		for _, r := range rows {
			if r.Placed > bestPlace {
				bestPlace = r.Placed
			}
			if r.Combined > bestComb {
				bestComb = r.Combined
			}
		}
		b.ReportMetric(bestPlace, "best-placed-x")
		b.ReportMetric(bestComb, "best-combined-x")
	}
}

// BenchmarkFig15Combined is an alias target for the combined-optimization
// artifact (the work is shared with BenchmarkFig14Placement; this target
// reports WC's combined gain specifically).
func BenchmarkFig15Combined(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := placementOnce(b)
		logOnce(b, i, bench.Fig15Table(rows))
		for _, r := range rows {
			if r.App == "lr" && r.System == "storm" {
				b.ReportMetric(r.Combined, "lr-storm-combined-x")
			}
		}
	}
}

// BenchmarkGCOverhead is the §V-D collector ablation. The metric is the
// parallelGC-to-G1 overhead ratio for word count on Storm.
func BenchmarkGCOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.GCStudy(apps.BenchmarkNames())
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, bench.GCTable(rows))
		for _, r := range rows {
			if r.App == "wc" && r.System == "storm" && r.G1Share > 0 {
				b.ReportMetric(r.ParShare/r.G1Share, "pargc-vs-g1-x")
			}
		}
	}
}

// BenchmarkHugePages is the §V-D huge-pages ablation. The metric is the
// mean speedup (the paper: marginal).
func BenchmarkHugePages(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.HugePages(apps.BenchmarkNames())
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, bench.HugePagesTable(rows))
		var sum float64
		for _, r := range rows {
			sum += r.Speedup
		}
		b.ReportMetric(sum/float64(len(rows)), "mean-speedup-x")
	}
}

// BenchmarkPlacementAblation compares min-k-cut placement against
// round-robin on communication-heavy applications.
func BenchmarkPlacementAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.PlacementAblation([]string{"vs", "lr"})
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, bench.PlacementAblationTable(rows))
		var kcut, rr float64
		for _, r := range rows {
			kcut += r.MinKCut
			rr += r.RoundRobin
		}
		b.ReportMetric(kcut/rr, "kcut-vs-roundrobin-x")
	}
}

// BenchmarkEngineNativeWC measures the native (goroutine) runtime itself:
// real word-count throughput on the host machine.
func BenchmarkEngineNativeWC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		topo, err := apps.Build("wc", apps.Config{Events: 2000, Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		res, err := engine.RunNative(topo, engine.NativeConfig{
			System: engine.Flink(), BatchSize: 8, Seed: int64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Throughput().KPerSecond(), "kev/s")
	}
}

// BenchmarkChainingAblation measures Flink-style operator chaining on SD
// (the benchmark's one chainable hop). The metric is the chained/unchained
// throughput ratio.
func BenchmarkChainingAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.ChainingAblation([]string{"sd"})
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, bench.ChainingTable(rows))
		best := 0.0
		for _, r := range rows {
			if r.Gain > best {
				best = r.Gain
			}
		}
		b.ReportMetric(best, "best-chain-gain-x")
	}
}

// BenchmarkSustainableThroughput finds the highest open-loop rate word
// count sustains with p99 <= 5 ms. The metric is sustainable/peak.
func BenchmarkSustainableThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Sustainable("wc", "flink", 5.0)
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, bench.SustainableTable([]*bench.SustainableResult{r}))
		b.ReportMetric(r.SustainableKps/r.PeakKps, "sustainable-frac")
	}
}
