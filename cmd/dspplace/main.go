// Command dspplace computes NUMA-aware executor placements for a benchmark
// application: it builds the communication graph (Definition 4), solves the
// capacity-constrained min-k-cut for k = 1..sockets, and prints each plan
// with its Equation 1 cross-socket communication cost.
//
// Usage:
//
//	dspplace -app lr -system storm -sockets 4
//	dspplace -app wc -system flink -sockets 2 -verbose
package main

import (
	"flag"
	"fmt"
	"os"

	"streamscale/internal/apps"
	"streamscale/internal/core"
	"streamscale/internal/engine"
)

func main() {
	var (
		app     = flag.String("app", "wc", "application: "+fmt.Sprint(apps.Names()))
		system  = flag.String("system", "storm", "engine profile: storm | flink")
		sockets = flag.Int("sockets", 4, "socket count to plan for")
		scale   = flag.Int("scale", 1, "parallelism scale factor")
		verbose = flag.Bool("verbose", false, "print per-executor assignments")
	)
	flag.Parse()

	topo, err := apps.Build(*app, apps.Config{Events: 1000, Seed: 1, Scale: *scale})
	fail(err)
	sys := engine.Storm()
	if *system == "flink" {
		sys = engine.Flink()
	}

	g, err := core.BuildCommGraph(topo, sys)
	fail(err)
	fmt.Printf("%s/%s: %d executors, total communication weight %.2f\n",
		*app, *system, g.N(), g.TotalWeight())

	for _, balanced := range []bool{false, true} {
		mode := "capacity-capped"
		if balanced {
			mode = "balanced"
		}
		plans, err := core.Plans(g, *sockets, core.PlaceOptions{
			CoresPerSocket: 8, Oversubscribe: 1.5, Balanced: balanced,
		})
		if err != nil {
			fmt.Printf("  %s: %v\n", mode, err)
			continue
		}
		fmt.Printf("\n%s plans:\n", mode)
		for _, p := range plans {
			fmt.Printf("  k=%d  cost=%10.2f  (%.0f%% of total weight cut)\n",
				p.K, p.Cost, 100*p.Cost/maxf(g.TotalWeight(), 1e-9))
			if *verbose {
				counts := map[int][]string{}
				for v, s := range p.Assign {
					counts[s] = append(counts[s], g.Names[v])
				}
				for s := 0; s < p.K; s++ {
					fmt.Printf("    socket %d: %v\n", s, counts[s])
				}
			}
		}
	}
	rr := core.RoundRobinPlan(g, *sockets)
	fmt.Printf("\nround-robin baseline: cost=%.2f\n", rr.Cost)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dspplace:", err)
		os.Exit(1)
	}
}
