// Command dspplace computes NUMA-aware executor placements for a benchmark
// application. By default it builds the communication graph (Definition 4),
// solves the capacity-constrained min-k-cut for k = 1..sockets, and prints
// each plan with its Equation 1 cross-socket communication cost.
//
// -strategy selects a placement strategy instead: "min-k-cut" (the
// default flow's balanced variant), "bnb" (probe-calibrated placement-only
// branch-and-bound), or "joint" (joint parallelism + placement search,
// BriskStream's RLAS). The model-driven strategies run one probe
// simulation to calibrate the cost model and print their ranked plans;
// output is deterministic and independent of -jobs.
//
// Usage:
//
//	dspplace -app lr -system storm -sockets 4
//	dspplace -app wc -system flink -sockets 2 -verbose
//	dspplace -app wc -system storm -strategy joint -scale 4 -batch 8
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"streamscale/internal/apps"
	"streamscale/internal/bench"
	"streamscale/internal/engine"
	"streamscale/internal/hw"
	"streamscale/internal/place"
)

func main() {
	var (
		app      = flag.String("app", "wc", "application: "+fmt.Sprint(apps.Names()))
		system   = flag.String("system", "storm", "engine profile: storm | flink")
		sockets  = flag.Int("sockets", 4, "socket count to plan for (min-k-cut modes)")
		scale    = flag.Int("scale", 1, "parallelism scale factor")
		verbose  = flag.Bool("verbose", false, "print per-executor assignments")
		strategy = flag.String("strategy", "", "placement strategy: min-k-cut | bnb | joint (default: legacy min-k-cut listing)")
		batch    = flag.Int("batch", 1, "batch size the model plans for (model strategies)")
		jobs     = flag.Int("jobs", 1, "parallel workers for model strategies (results are identical at any value)")
	)
	flag.Parse()

	if *strategy != "" {
		fail(runStrategy(*strategy, *app, *system, *sockets, *scale, *batch, *jobs))
		return
	}

	topo, err := apps.Build(*app, apps.Config{Events: 1000, Seed: 1, Scale: *scale})
	fail(err)
	sys := engine.Storm()
	if *system == "flink" {
		sys = engine.Flink()
	}

	g, err := place.BuildCommGraph(topo, sys)
	fail(err)
	fmt.Printf("%s/%s: %d executors, total communication weight %.2f\n",
		*app, *system, g.N(), g.TotalWeight())

	for _, balanced := range []bool{false, true} {
		mode := "capacity-capped"
		if balanced {
			mode = "balanced"
		}
		plans, err := place.Plans(g, *sockets, place.PlaceOptions{
			CoresPerSocket: 8, Oversubscribe: 1.5, Balanced: balanced,
		})
		if err != nil {
			fmt.Printf("  %s: %v\n", mode, err)
			continue
		}
		fmt.Printf("\n%s plans:\n", mode)
		for _, p := range plans {
			fmt.Printf("  k=%d  cost=%10.2f  (%.0f%% of total weight cut)\n",
				p.K, p.Cost, 100*p.Cost/maxf(g.TotalWeight(), 1e-9))
			if *verbose {
				counts := map[int][]string{}
				for v, s := range p.Assign {
					counts[s] = append(counts[s], g.Names[v])
				}
				for s := 0; s < p.K; s++ {
					fmt.Printf("    socket %d: %v\n", s, counts[s])
				}
			}
		}
	}
	rr := place.RoundRobinPlan(g, *sockets)
	fmt.Printf("\nround-robin baseline: cost=%.2f\n", rr.Cost)
}

// runStrategy routes a one-off search through the pluggable Strategy
// interface. The model strategies calibrate from one probe simulation (the
// unplaced four-socket baseline, batch 1) exactly like the report flow.
func runStrategy(name, app, system string, sockets, scale, batch, jobs int) error {
	strat, ok := place.StrategyByName(name)
	if !ok {
		names := []string{}
		for _, s := range place.Strategies() {
			names = append(names, s.Name())
		}
		return fmt.Errorf("unknown strategy %q (have %v)", name, names)
	}
	bench.SetJobs(jobs)
	bench.SetProgress(false)

	cell := bench.Cell{App: app, Seed: 1, Scale: scale}
	topo, err := cell.Topology()
	if err != nil {
		return err
	}
	sys := engine.Storm()
	if system == "flink" {
		sys = engine.Flink()
	}
	prob := place.Problem{Sockets: sockets}
	prob.Graph, err = place.BuildCommGraph(topo, sys)
	if err != nil {
		return err
	}

	needsModel := name != "min-k-cut"
	var w *place.Workload
	if needsModel {
		probeRes, err := bench.Run(bench.Cell{App: app, System: system, Sockets: 4, Scale: scale, BatchSize: 1})
		if err != nil {
			return err
		}
		model, err := place.Calibrate(probeRes, hw.TableIII(), sys, 1)
		if err != nil {
			return err
		}
		if batch > 1 {
			model = model.WithBatch(batch)
		}
		prob.Model = model
		w, err = place.NewWorkload(model, topo, sys)
		if err != nil {
			return err
		}
		prob.Workload = w
	}

	// Worker counts flow through the strategy options; results are
	// identical at any value (the CI jobs-diff stage pins this).
	switch s := strat.(type) {
	case place.BnBStrategy:
		s.Opts.Workers = jobs
		strat = s
	case place.JointStrategy:
		s.Opts.Search.Workers = jobs
		strat = s
	}

	decisions, err := strat.Plan(prob)
	if err != nil {
		return err
	}
	fmt.Printf("%s/%s strategy=%s scale=%d batch=%d: %d plan(s)\n",
		app, system, strat.Name(), scale, batch, len(decisions))
	for i, d := range decisions {
		fmt.Printf("  #%d score=%12.2f k=%d assign=%s", i+1, d.Score, distinct(d.Assign), assignString(d.Assign))
		if d.Par != nil && w != nil {
			fmt.Printf(" par=%s", parString(w, d.Par))
		}
		fmt.Println()
	}
	return nil
}

// parString renders a parallelism vector as op=k pairs for operators that
// differ from the workload default, or "default".
func parString(w *place.Workload, par []int) string {
	def := w.DefaultPar()
	var parts []string
	for i := range par {
		if par[i] != def[i] {
			parts = append(parts, fmt.Sprintf("%s=%d", w.Ops[i].Name, par[i]))
		}
	}
	if len(parts) == 0 {
		return "default"
	}
	sort.Strings(parts)
	s := parts[0]
	for _, p := range parts[1:] {
		s += "," + p
	}
	return s
}

func assignString(assign []int) string {
	b := make([]byte, 0, 2*len(assign))
	for i, s := range assign {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, byte('0'+s))
	}
	return string(b)
}

func distinct(assign []int) int {
	seen := map[int]bool{}
	for _, s := range assign {
		seen[s] = true
	}
	return len(seen)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dspplace:", err)
		os.Exit(1)
	}
}
