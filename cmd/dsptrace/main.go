// Command dsptrace summarizes a trace directory written by dspbench -trace:
// it verifies the lossless reconciliation (folded stall cycles vs the
// machine's charged-cycle ledger), lists the top-k slowest sampled execute
// spans with their dominant stall bucket, and prints the per-edge
// queue-wait table. The trace.json itself loads in Perfetto / Chrome's
// about:tracing for the full timeline view.
//
// Usage:
//
//	dsptrace [-top 10] <trace-dir>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"streamscale/internal/trace"
)

type traceEvent struct {
	Ph   string                 `json:"ph"`
	Name string                 `json:"name"`
	Cat  string                 `json:"cat"`
	Tid  int                    `json:"tid"`
	Ts   float64                `json:"ts"`
	Dur  float64                `json:"dur"`
	Args map[string]interface{} `json:"args"`
}

type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

func main() {
	top := flag.Int("top", 10, "number of slowest execute spans to list")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dsptrace [-top k] <trace-dir>")
		os.Exit(2)
	}
	dir := flag.Arg(0)

	var sum trace.Summary
	readJSON(filepath.Join(dir, trace.SummaryFile), &sum)
	fmt.Printf("%s on %s: %d sampled tuple trees (every %d), %d trace events\n",
		sum.App, sum.System, sum.SampledRoots, sum.SampleEvery, sum.TraceEvents)
	fmt.Printf("reconciliation: folded %d cycles vs charged %d cycles — ", sum.FoldedCycles, sum.ChargedCycles)
	if sum.Lossless {
		fmt.Println("lossless")
	} else {
		fmt.Println("MISMATCH")
	}

	var tf traceFile
	readJSON(filepath.Join(dir, trace.TraceFile), &tf)
	printSlowest(&tf, *top)
	printQueueWaits(&tf)

	if !sum.Lossless {
		os.Exit(1)
	}
}

// printSlowest lists the k slowest execute spans with their dominant
// stall bucket from the span's charge-path breakdown.
func printSlowest(tf *traceFile, k int) {
	type span struct {
		op     string
		root   int64
		cycles int64
		ts     float64
		bucket string
		bkCyc  int64
	}
	var spans []span
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "X" || ev.Name != "execute" {
			continue
		}
		s := span{ts: ev.Ts}
		s.op, _ = ev.Args["op"].(string)
		s.root = argInt(ev.Args, "root")
		s.cycles = argInt(ev.Args, "cycles")
		// The dominant bucket is the largest charge-path member that is
		// not one of the span's identity keys.
		keys := make([]string, 0, len(ev.Args))
		for key := range ev.Args {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			if key == "op" || key == "root" || key == "cycles" {
				continue
			}
			if c := argInt(ev.Args, key); c > s.bkCyc {
				s.bucket, s.bkCyc = key, c
			}
		}
		spans = append(spans, s)
	}
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].cycles != spans[j].cycles {
			return spans[i].cycles > spans[j].cycles
		}
		return spans[i].ts < spans[j].ts
	})
	if len(spans) > k {
		spans = spans[:k]
	}
	fmt.Printf("\nslowest execute spans (top %d of %d sampled):\n", len(spans), countExec(tf))
	fmt.Printf("  %-14s %10s %12s %8s   %s\n", "operator", "root", "cycles", "at-us", "dominant stall")
	for _, s := range spans {
		dom := "-"
		if s.bucket != "" {
			dom = fmt.Sprintf("%s (%d)", s.bucket, s.bkCyc)
		}
		fmt.Printf("  %-14s %10d %12d %8.0f   %s\n", s.op, s.root, s.cycles, s.ts, dom)
	}
}

func countExec(tf *traceFile) int {
	n := 0
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "X" && ev.Name == "execute" {
			n++
		}
	}
	return n
}

// printQueueWaits aggregates queue-wait spans per (producer, consumer)
// operator edge.
func printQueueWaits(tf *traceFile) {
	type stat struct {
		n          int64
		total, max int64
	}
	agg := map[[2]string]*stat{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "b" || ev.Name != "queue-wait" {
			continue
		}
		from, _ := ev.Args["from"].(string)
		to, _ := ev.Args["to"].(string)
		c := argInt(ev.Args, "cycles")
		s := agg[[2]string{from, to}]
		if s == nil {
			s = &stat{}
			agg[[2]string{from, to}] = s
		}
		s.n++
		s.total += c
		if c > s.max {
			s.max = c
		}
	}
	keys := make([][2]string, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	fmt.Println("\nqueue wait per edge (sampled tuples):")
	fmt.Printf("  %-14s %-14s %8s %14s %14s %14s\n", "from", "to", "waits", "mean cycles", "max cycles", "total cycles")
	for _, k := range keys {
		s := agg[k]
		fmt.Printf("  %-14s %-14s %8d %14d %14d %14d\n",
			k[0], k[1], s.n, s.total/s.n, s.max, s.total)
	}
}

// argInt reads a numeric JSON arg (decoded as float64) as int64.
func argInt(args map[string]interface{}, key string) int64 {
	f, _ := args[key].(float64)
	return int64(f)
}

func readJSON(path string, v interface{}) {
	data, err := os.ReadFile(path)
	if err == nil {
		err = json.Unmarshal(data, v)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsptrace:", err)
		os.Exit(1)
	}
}
