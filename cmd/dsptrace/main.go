// Command dsptrace summarizes a trace directory written by dspbench -trace:
// it verifies the lossless reconciliation (folded stall cycles vs the
// machine's charged-cycle ledger), lists the top-k slowest sampled execute
// spans with their dominant stall bucket, and prints the per-edge
// queue-wait table. The trace.json itself loads in Perfetto / Chrome's
// about:tracing for the full timeline view.
//
// Usage:
//
//	dsptrace [-top 10] <trace-dir>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"streamscale/internal/hw"
	"streamscale/internal/trace"
)

type traceEvent struct {
	Ph   string                 `json:"ph"`
	Name string                 `json:"name"`
	Cat  string                 `json:"cat"`
	Tid  int                    `json:"tid"`
	Ts   float64                `json:"ts"`
	Dur  float64                `json:"dur"`
	Args map[string]interface{} `json:"args"`
}

type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

func main() {
	top := flag.Int("top", 10, "number of slowest execute spans to list")
	tailK := flag.Int("tail", 0, "recompute the k worst tuple trees from trace.json and cross-check them against summary.json's tail digest (0 = off)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dsptrace [-top k] <trace-dir>")
		os.Exit(2)
	}
	dir := flag.Arg(0)

	var sum trace.Summary
	readJSON(filepath.Join(dir, trace.SummaryFile), &sum)
	fmt.Printf("%s on %s: %d sampled tuple trees (every %d), %d trace events\n",
		sum.App, sum.System, sum.SampledRoots, sum.SampleEvery, sum.TraceEvents)
	fmt.Printf("reconciliation: folded %d cycles vs charged %d cycles — ", sum.FoldedCycles, sum.ChargedCycles)
	if sum.Lossless {
		fmt.Println("lossless")
	} else {
		fmt.Println("MISMATCH")
	}

	var tf traceFile
	readJSON(filepath.Join(dir, trace.TraceFile), &tf)
	printSlowest(&tf, *top)
	printQueueWaits(&tf)

	ok := true
	if *tailK > 0 {
		ok = printTails(&tf, &sum, *tailK)
	}
	if !sum.Lossless || !ok {
		os.Exit(1)
	}
}

// printTails independently re-derives every tuple tree's causal account
// from the raw trace.json event stream — the same folding the Tracer does
// in memory — and cross-checks the worst trees field-by-field against the
// summary.json tail digest. A mismatch means the two artifacts disagree
// about the same run and fails the command.
func printTails(tf *traceFile, sum *trace.Summary, k int) bool {
	type acct struct {
		root      int64
		e2e       int64
		sinkOp    string
		buckets   map[string]int64
		queueWait int64
		deliver   int64
		spans     int
	}
	accts := map[int64]*acct{}
	get := func(root int64) *acct {
		a := accts[root]
		if a == nil {
			a = &acct{root: root, buckets: map[string]int64{}}
			accts[root] = a
		}
		return a
	}
	for _, ev := range tf.TraceEvents {
		root := argInt(ev.Args, "root")
		switch {
		case ev.Ph == "X" && ev.Name == "execute":
			a := get(root)
			a.spans++
			for key := range ev.Args {
				if key == "op" || key == "root" || key == "cycles" {
					continue
				}
				a.buckets[key] += argInt(ev.Args, key)
			}
		case ev.Ph == "b" && ev.Name == "queue-wait":
			get(root).queueWait += argInt(ev.Args, "cycles")
		case ev.Ph == "b" && ev.Name == "deliver":
			get(root).deliver += argInt(ev.Args, "cycles")
		case ev.Ph == "i" && ev.Name == "sink":
			// Recording order mirrors the Tracer: at equal e2e the later
			// sink arrival wins, matching TailRecord's >= update.
			if a := get(root); argInt(ev.Args, "e2e_cycles") >= a.e2e {
				a.e2e = argInt(ev.Args, "e2e_cycles")
				a.sinkOp, _ = ev.Args["op"].(string)
			}
		}
	}
	ranked := make([]*acct, 0, len(accts))
	for root, a := range accts {
		if root == 0 || a.sinkOp == "" {
			continue
		}
		ranked = append(ranked, a)
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].e2e != ranked[j].e2e {
			return ranked[i].e2e > ranked[j].e2e
		}
		return ranked[i].root < ranked[j].root
	})
	// Print only the k worst, but cross-check against the full ranking:
	// summary.json carries its own fixed digest depth, which must match
	// regardless of how many rows the user asked to see.
	shown := ranked
	if len(shown) > k {
		shown = shown[:k]
	}

	// dominant mirrors trace.TailRecord.Dominant: largest component, ties
	// resolved in fixed bucket order, then queue-wait, then deliver.
	dominant := func(a *acct) (string, int64) {
		name, best := "", int64(-1)
		for bk := hw.Bucket(0); bk < hw.NumBuckets; bk++ {
			if c := a.buckets[bk.String()]; c > best {
				name, best = bk.String(), c
			}
		}
		if a.queueWait > best {
			name, best = "queue-wait", a.queueWait
		}
		if a.deliver > best {
			name, best = "deliver", a.deliver
		}
		return name, best
	}

	fmt.Printf("\nworst tuple trees, recomputed from trace.json (top %d of %d sink-reaching):\n", len(shown), len(accts))
	fmt.Printf("  %-10s %12s %10s %-14s %s\n", "root", "e2e cycles", "e2e ms", "sink", "dominant stall over tree")
	clock := sum.ClockHz
	for _, a := range shown {
		dom, domC := dominant(a)
		ms := float64(a.e2e) / float64(clock) * 1e3
		fmt.Printf("  %-10d %12d %10.3f %-14s %s (%d cycles; queue-wait %d, deliver %d, %d exec spans)\n",
			a.root, a.e2e, ms, a.sinkOp, dom, domC, a.queueWait, a.deliver, a.spans)
	}

	// Cross-check against summary.json: every digest entry must match the
	// recomputation exactly, and the digest must be a prefix of our ranking.
	mism := func(format string, args ...interface{}) bool {
		fmt.Printf("  TAIL MISMATCH: "+format+"\n", args...)
		return false
	}
	ok := true
	for i, st := range sum.Tails {
		if i >= len(ranked) {
			ok = mism("summary has %d tail entries, trace.json yields %d", len(sum.Tails), len(ranked))
			break
		}
		a := ranked[i]
		dom, domC := dominant(a)
		switch {
		case st.Root != a.root:
			ok = mism("rank %d: summary root %d, recomputed %d", i, st.Root, a.root)
		case st.E2ECycles != a.e2e:
			ok = mism("root %d: summary e2e %d, recomputed %d", a.root, st.E2ECycles, a.e2e)
		case st.SinkOp != a.sinkOp:
			ok = mism("root %d: summary sink %q, recomputed %q", a.root, st.SinkOp, a.sinkOp)
		case st.Dominant != dom || st.DominantCycles != domC:
			ok = mism("root %d: summary dominant %s (%d), recomputed %s (%d)", a.root, st.Dominant, st.DominantCycles, dom, domC)
		case st.QueueWait != a.queueWait || st.Deliver != a.deliver || st.ExecSpans != a.spans:
			ok = mism("root %d: summary qw/del/spans %d/%d/%d, recomputed %d/%d/%d",
				a.root, st.QueueWait, st.Deliver, st.ExecSpans, a.queueWait, a.deliver, a.spans)
		default:
			for bk, c := range st.Buckets {
				if a.buckets[bk] != c {
					ok = mism("root %d: summary bucket %s=%d, recomputed %d", a.root, bk, c, a.buckets[bk])
				}
			}
			for bk, c := range a.buckets {
				if c != 0 && st.Buckets[bk] != c {
					ok = mism("root %d: recomputed bucket %s=%d missing from summary", a.root, bk, c)
				}
			}
		}
		if !ok {
			break
		}
	}
	if ok {
		fmt.Printf("  tail reconciliation: %d summary entries match the trace.json recomputation exactly\n", len(sum.Tails))
	}
	return ok
}

// printSlowest lists the k slowest execute spans with their dominant
// stall bucket from the span's charge-path breakdown.
func printSlowest(tf *traceFile, k int) {
	type span struct {
		op     string
		root   int64
		cycles int64
		ts     float64
		bucket string
		bkCyc  int64
	}
	var spans []span
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "X" || ev.Name != "execute" {
			continue
		}
		s := span{ts: ev.Ts}
		s.op, _ = ev.Args["op"].(string)
		s.root = argInt(ev.Args, "root")
		s.cycles = argInt(ev.Args, "cycles")
		// The dominant bucket is the largest charge-path member that is
		// not one of the span's identity keys.
		keys := make([]string, 0, len(ev.Args))
		for key := range ev.Args {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			if key == "op" || key == "root" || key == "cycles" {
				continue
			}
			if c := argInt(ev.Args, key); c > s.bkCyc {
				s.bucket, s.bkCyc = key, c
			}
		}
		spans = append(spans, s)
	}
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].cycles != spans[j].cycles {
			return spans[i].cycles > spans[j].cycles
		}
		return spans[i].ts < spans[j].ts
	})
	if len(spans) > k {
		spans = spans[:k]
	}
	fmt.Printf("\nslowest execute spans (top %d of %d sampled):\n", len(spans), countExec(tf))
	fmt.Printf("  %-14s %10s %12s %8s   %s\n", "operator", "root", "cycles", "at-us", "dominant stall")
	for _, s := range spans {
		dom := "-"
		if s.bucket != "" {
			dom = fmt.Sprintf("%s (%d)", s.bucket, s.bkCyc)
		}
		fmt.Printf("  %-14s %10d %12d %8.0f   %s\n", s.op, s.root, s.cycles, s.ts, dom)
	}
}

func countExec(tf *traceFile) int {
	n := 0
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "X" && ev.Name == "execute" {
			n++
		}
	}
	return n
}

// printQueueWaits aggregates queue-wait spans per (producer, consumer)
// operator edge.
func printQueueWaits(tf *traceFile) {
	type stat struct {
		n          int64
		total, max int64
	}
	agg := map[[2]string]*stat{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "b" || ev.Name != "queue-wait" {
			continue
		}
		from, _ := ev.Args["from"].(string)
		to, _ := ev.Args["to"].(string)
		c := argInt(ev.Args, "cycles")
		s := agg[[2]string{from, to}]
		if s == nil {
			s = &stat{}
			agg[[2]string{from, to}] = s
		}
		s.n++
		s.total += c
		if c > s.max {
			s.max = c
		}
	}
	keys := make([][2]string, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	fmt.Println("\nqueue wait per edge (sampled tuples):")
	fmt.Printf("  %-14s %-14s %8s %14s %14s %14s\n", "from", "to", "waits", "mean cycles", "max cycles", "total cycles")
	for _, k := range keys {
		s := agg[k]
		fmt.Printf("  %-14s %-14s %8d %14d %14d %14d\n",
			k[0], k[1], s.n, s.total/s.n, s.max, s.total)
	}
}

// argInt reads a numeric JSON arg (decoded as float64) as int64.
func argInt(args map[string]interface{}, key string) int64 {
	f, _ := args[key].(float64)
	return int64(f)
}

func readJSON(path string, v interface{}) {
	data, err := os.ReadFile(path)
	if err == nil {
		err = json.Unmarshal(data, v)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsptrace:", err)
		os.Exit(1)
	}
}
