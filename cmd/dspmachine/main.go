// Command dspmachine validates the simulated machine model: it prints the
// Table III specification and runs lmbench-style microbenchmarks against
// the model — load-to-use latency per working-set size (local and remote)
// and streaming bandwidth per core count — so the modelled hierarchy can
// be compared against real Sandy Bridge EP measurements.
//
// Usage:
//
//	dspmachine
//	dspmachine -hugepages
package main

import (
	"flag"
	"fmt"

	"streamscale/internal/hw"
)

func main() {
	huge := flag.Bool("hugepages", false, "use 2 MB pages")
	flag.Parse()

	spec := hw.TableIII()
	if *huge {
		spec = spec.WithHugePages()
	}

	fmt.Printf("machine: %d sockets x %d cores @ %.1f GHz (Table III)\n",
		spec.Sockets, spec.CoresPerSocket, float64(spec.ClockHz)/1e9)
	fmt.Printf("caches:  L1I %dK  L1D %dK  L2 %dK per core; LLC %dM per socket\n",
		spec.L1I.CapacityBytes>>10, spec.L1D.CapacityBytes>>10,
		spec.L2.CapacityBytes>>10, spec.LLC.CapacityBytes>>20)
	fmt.Printf("latency: L2 %d  LLC %d  DRAM %d  remote %d cycles; pages %d B\n",
		spec.Latency.L2, spec.Latency.LLC, spec.Latency.LocalDRAM,
		spec.Latency.RemoteDRAM, spec.PageBytes)
	fmt.Printf("bandwidth: %.1f GB/s DRAM per socket, %.1f GB/s per QPI direction\n\n",
		spec.LocalBWBytesPerCycle*float64(spec.ClockHz)/1e9,
		spec.QPIBWBytesPerCycle*float64(spec.ClockHz)/1e9)

	fmt.Println("load-to-use latency by working set (cycles per line, warm):")
	fmt.Printf("%-14s %12s %10s %12s\n", "working set", "local", "level", "remote")
	local := hw.MeasureLatency(hw.NewMachine(spec), 64<<20)
	remote := hw.MeasureRemoteLatency(hw.NewMachine(spec), 64<<20)
	for i := range local {
		fmt.Printf("%-14s %12.1f %10s %12.1f\n",
			byteLabel(local[i].WorkingSetBytes), local[i].Cycles, local[i].Level, remote[i].Cycles)
	}

	fmt.Println("\nstreaming bandwidth (GB/s aggregate):")
	fmt.Printf("%-10s %10s %10s\n", "streams", "local", "remote")
	for _, n := range []int{1, 2, 4, 8} {
		l := hw.MeasureBandwidth(hw.NewMachine(spec), n, false)
		r := hw.MeasureBandwidth(hw.NewMachine(spec), n, true)
		fmt.Printf("%-10d %10.1f %10.1f\n", n, l.GBps, r.GBps)
	}
}

func byteLabel(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%d MB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%d KB", n>>10)
	}
	return fmt.Sprintf("%d B", n)
}
