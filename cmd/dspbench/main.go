// Command dspbench runs one benchmark application on the simulated
// multi-socket machine and reports throughput, latency, utilization, and
// the processor-time profile.
//
// Usage:
//
//	dspbench -app wc -system storm -sockets 1 -batch 1
//	dspbench -app tm -system flink -sockets 4 -scale 4 -events 600
//	dspbench -app lr -system storm -sockets 4 -batch 8 -place
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"streamscale/internal/apps"
	"streamscale/internal/bench"

	"streamscale/internal/engine"
	"streamscale/internal/place"
	"streamscale/internal/sim"
	"streamscale/internal/trace"
)

func main() {
	var (
		app      = flag.String("app", "wc", "application: "+fmt.Sprint(apps.Names()))
		system   = flag.String("system", "storm", "engine profile: storm | flink")
		sockets  = flag.Int("sockets", 1, "enabled CPU sockets (1-4)")
		cores    = flag.Int("cores", 0, "restrict to the first N cores (0 = all enabled sockets)")
		batch    = flag.Int("batch", 1, "tuple batch size S (1 = no batching)")
		spec     = flag.String("spec", "", "machine spec variant: \"\" (Table III) | 2x16 | 8x4 | turbo | slowmem | fatlink")
		tier     = flag.Bool("tier", false, "fast-tier estimate instead of simulating: one memoized probe calibrates the analytical model, the cell itself is never simulated")
		events   = flag.Int("events", 0, "source events (0 = app default)")
		scale    = flag.Int("scale", 1, "parallelism scale factor")
		seed     = flag.Int64("seed", 1, "random seed")
		placeOpt = flag.Bool("place", false, "apply NUMA-aware executor placement (best plan by Eq. 1 cost)")
		joint    = flag.Bool("joint", false, "joint parallelism + placement optimization (RLAS): co-search executor counts with socket assignment and run the measured winner (4 sockets only)")
		profile  = flag.Bool("profile", true, "print the Table II processor-time breakdown")
		native   = flag.Bool("native", false, "run on the native goroutine runtime (real wall-clock, no processor model)")
		rate     = flag.Float64("rate", 0, "open-loop source rate in events/s per source executor (0 = closed-loop); open-loop latency is measured against the intended arrival schedule")
		noack    = flag.Bool("noack", false, "disable the system profile's ack tracking (e.g. storm without acks)")
		co       = flag.Bool("co", false, "with -rate: re-enable the coordinated-omission bug (latency against actual emission instants) for ablation")
		latEvery = flag.Int("lat-every", 0, "sink latency sampling period (0 = runtime default of 8; open-loop tail runs default to 1)")
		chain    = flag.Bool("chain", false, "with -native: apply operator chaining before running")
		validate = flag.Bool("validate", false, "with -native: run the simulator-validation loop (effect ratios, sim vs native) and exit")
		jobs     = flag.Int("jobs", runtime.NumCPU(), "parallel simulation cells for multi-run steps like -place")
		cache    = flag.String("cache", "", "persistent result cache directory (results are identical with or without it)")
		jsonOut  = flag.Bool("json", false, "also write a machine-readable BENCH_<app>_<system>.json trajectory record")
		quiet    = flag.Bool("quiet", false, "suppress the sweep progress line on stderr")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof  = flag.String("memprofile", "", "write a heap profile to this file on exit")

		traceDir = flag.String("trace", "", "record a cycle-exact trace into this directory (trace.json + stalls.folded + summary.json; see cmd/dsptrace)")
		traceN   = flag.Int("trace-every", trace.DefaultSampleEvery, "with -trace: sample every n-th source tuple tree")
		traceQ   = flag.Int64("trace-cadence", int64(trace.DefaultQueueCadence), "with -trace: queue-depth sampling period in cycles (<0 disables)")
	)
	flag.Parse()
	bench.SetJobs(*jobs)
	if *quiet {
		bench.SetProgress(false)
	}
	stopProf, err := bench.StartProfiles(*cpuprof, *memprof)
	fail(err)
	defer stopProf()
	if *cache != "" {
		pruned, err := bench.EnableDiskCache(*cache)
		fail(err)
		if pruned > 0 {
			fmt.Fprintf(os.Stderr, "dspbench: pruned %d stale cache file(s) from %s\n", pruned, *cache)
		}
	}

	if *native {
		if *validate {
			runNativeValidate()
			return
		}
		runNative(*app, *system, *batch, *events, *scale, *seed, *chain, *jsonOut,
			*rate, *noack, *co, *latEvery)
		return
	}

	if *rate > 0 && *latEvery == 0 {
		*latEvery = 1 // open-loop tail runs observe every sink tuple
	}
	cell := bench.Cell{
		App: *app, System: *system,
		Sockets: *sockets, Cores: *cores,
		BatchSize: *batch, Seed: *seed, Scale: *scale,
		Spec:       *spec,
		SourceRate: *rate, LatencySampleEvery: *latEvery,
		NoAck: *noack, COUncorrected: *co,
	}
	if *events > 0 {
		if def := cell.Events(); def > 0 {
			cell.EventScale = float64(*events) / float64(def)
		}
	}
	if *joint {
		if *sockets != 4 {
			fail(fmt.Errorf("-joint plans on the calibrated 4-socket machine; run with -sockets 4"))
		}
		if *placeOpt {
			fail(fmt.Errorf("-joint subsumes -place (the fixed-parallelism winner is its fallback)"))
		}
		js, err := bench.SearchJoint(*app, *system, *batch, *scale)
		fail(err)
		cell.Placement = js.Winner.Placement
		if len(js.Winner.Override) > 0 {
			cell.ParallelismOverride = js.Winner.Override
		}
		fmt.Printf("joint: %d vector(s) screened, %d searched, %d verified; winner %s (%+.1f%% vs placement-only)\n",
			js.VectorsScreened, js.VectorsSearched, len(js.Verified), js.ParString(),
			(js.Throughput/js.FixedThroughput-1)*100)
	}
	if *placeOpt {
		if *sockets == 4 {
			// Model-guided search (internal/place): calibrate from a probe,
			// rank assignments by predicted bottleneck, verify the top few.
			ps, err := bench.SearchPlacement(*app, *system, *batch, *scale)
			fail(err)
			cell.Placement = bench.PlacementMap(ps.Winner)
			fmt.Printf("placement: model-guided search, k=%d, %d plans ranked, %d verified, best %.1f k events/s\n",
				ps.WinnerK, ps.Scored, len(ps.Verified), ps.Throughput/1e3)
		} else {
			topo, err := cell.Topology()
			fail(err)
			sys := engine.Storm()
			if *system == "flink" {
				sys = engine.Flink()
			}
			plans, err := place.PlanFor(topo, sys, *sockets, place.PlaceOptions{
				CoresPerSocket: 8, Oversubscribe: 1.5, Balanced: true,
			})
			fail(err)
			best := plans[len(plans)-1] // largest k among feasible balanced plans
			cell.Placement = best.Placement()
			fmt.Printf("placement: k=%d, estimated cross-socket cost %.1f\n", best.K, best.Cost)
		}
	}

	if *tier {
		if *traceDir != "" {
			fail(fmt.Errorf("-tier never simulates the cell, so there is no run to -trace"))
		}
		if *jsonOut {
			fail(fmt.Errorf("-json records measured trajectories; run without -tier to simulate"))
		}
		est, err := bench.EstimateCell(cell)
		fail(err)
		fmt.Printf("%s on %s: %d sockets, batch S=%d — fast-tier estimate (cell not simulated)\n",
			*app, *system, *sockets, *batch)
		fmt.Printf("  probe        unplaced full machine at S=1: %10.1f k events/s measured\n",
			est.ProbeThroughputEPS/1e3)
		fmt.Printf("  predicted    throughput %10.1f k events/s   mean latency %.2f ms\n",
			est.Pred.ThroughputEPS/1e3, est.Pred.LatencyMs)
		fmt.Printf("  model        bottleneck %.3g cycles   uncertainty %.2f\n",
			est.Pred.BottleneckCycles, est.Pred.Uncertainty)
		return
	}

	var res *engine.Result
	if *traceDir != "" {
		// Traced runs bypass the memo/disk cache: a cached Result carries
		// no trace, and the trace streams must come from a live simulation.
		tr := trace.New(trace.Config{SampleEvery: *traceN, QueueCadence: sim.Cycles(*traceQ)})
		res, err = bench.RunTraced(cell, tr)
		fail(err)
		fail(tr.Write(*traceDir))
		fmt.Fprintf(os.Stderr, "dspbench: wrote trace (%d sampled tuple trees) to %s\n",
			tr.SampledRoots(), *traceDir)
	} else {
		res, err = bench.Run(cell)
		fail(err)
	}

	fmt.Printf("%s on %s: %d sockets, batch S=%d\n", *app, *system, *sockets, *batch)
	fmt.Printf("  throughput   %10.1f k events/s  (%d events in %.3f s simulated, computed in %.2f s host)\n",
		res.Throughput().KPerSecond(), res.SourceEvents, res.ElapsedSeconds, res.WallSeconds)
	fmt.Printf("  latency      p50 %.2f ms   p99 %.2f ms   mean %.2f ms\n",
		res.Latency.Quantile(0.5), res.Latency.Quantile(0.99), res.Latency.Mean())
	if *rate > 0 {
		basis := "intended arrival (coordinated-omission corrected)"
		if *co {
			basis = "actual emission (coordinated omission UNCORRECTED)"
		}
		fmt.Printf("  tail         p99.9 %.2f ms   p99.99 %.2f ms   max %.2f ms   vs %s\n",
			res.Latency.Quantile(0.999), res.Latency.Quantile(0.9999), res.Latency.Max(), basis)
	}
	fmt.Printf("  utilization  cpu %.0f%%   memory bandwidth %.0f%%\n", res.CPUUtil*100, res.MemUtil*100)
	fmt.Printf("  gc           %d minor collections, %.1f%% of time\n", res.MinorGCs, res.GCShare*100)
	if res.AckerCompleted > 0 {
		fmt.Printf("  acker        %d/%d tuple trees completed\n", res.AckerCompleted, res.SourceEvents)
	}
	if *profile {
		fmt.Printf("\n%s\n", res.Profile.String())
	}
	if *jsonOut {
		name, err := writeBenchJSON(cell, res)
		fail(err)
		fmt.Fprintln(os.Stderr, "dspbench: wrote", name)
	}
}

// benchRecord is the machine-readable benchmark trajectory record the
// -json flag emits; the schema is documented in the README ("Benchmark
// trajectories"). CellKey ties the record to both the exact cell and the
// simulator build, so regression tooling can tell "same experiment, new
// code" apart from "different experiment".
type benchRecord struct {
	Schema    string `json:"schema"` // "dspbench/v2"
	CellKey   string `json:"cell_key"`
	Canonical string `json:"canonical"`

	App     string `json:"app"`
	System  string `json:"system"`
	Sockets int    `json:"sockets"`
	Batch   int    `json:"batch"`
	Spec    string `json:"spec,omitempty"` // machine spec variant; "" = Table III

	ThroughputKps float64 `json:"throughput_k_events_per_s"`
	LatencyP50Ms  float64 `json:"latency_p50_ms"`
	LatencyP99Ms  float64 `json:"latency_p99_ms"`
	LatencyMeanMs float64 `json:"latency_mean_ms"`

	// Tail fields (added with the HDR histogram; zero-valued records from
	// older builds simply lack them — same dspbench/v2 schema).
	LatencyP999Ms  float64 `json:"latency_p999_ms"`
	LatencyP9999Ms float64 `json:"latency_p9999_ms"`
	LatencyMaxMs   float64 `json:"latency_max_ms"`
	SourceRate     float64 `json:"source_rate,omitempty"` // events/s; 0 = closed-loop
	COUncorrected  bool    `json:"co_uncorrected,omitempty"`

	SourceEvents  int64   `json:"source_events"`
	ElapsedSimS   float64 `json:"elapsed_simulated_s"`
	WallSeconds   float64 `json:"wall_seconds"` // host compute time; not deterministic
	ChargedCycles int64   `json:"charged_cycles"`

	// Memo and Tier snapshot the process-wide counters at write time. For a
	// single-cell dspbench run Memo says whether the result was simulated
	// fresh (simulated=1) or served from cache; under -place or future
	// multi-cell flows the counts cover every cell the process touched.
	Memo  benchMemoStats  `json:"memo"`
	Tier  benchTierStats  `json:"tier"`
	Joint benchJointStats `json:"joint"`
}

// benchMemoStats mirrors memo.Stats with trajectory-record field names:
// simulated = cells actually run, deduped = served from the in-memory
// layer (including single-flight joins), from_disk = persistent-cache hits.
type benchMemoStats struct {
	Simulated int64 `json:"simulated"`
	Deduped   int64 `json:"deduped"`
	FromDisk  int64 `json:"from_disk"`
}

// benchTierStats counts fast-tier activity: cells screened analytically,
// cells verified by full simulation, and probe simulations run. All zero
// unless a tiered sweep ran in this process.
type benchTierStats struct {
	Screened int64 `json:"screened"`
	Verified int64 `json:"verified"`
	Probes   int64 `json:"probes"`
}

// benchJointStats counts joint-search activity: parallelism vectors
// screened analytically and joint configurations verified by full
// simulation. All zero unless a joint search ran in this process.
type benchJointStats struct {
	Screened int64 `json:"configs_screened"`
	Verified int64 `json:"configs_verified"`
}

func writeBenchJSON(cell bench.Cell, res *engine.Result) (string, error) {
	st := bench.MemoStats()
	screened, verified, probes := bench.TierStats()
	jointScreened, jointVerified := bench.JointStats()
	rec := benchRecord{
		Schema:        "dspbench/v2",
		CellKey:       bench.CellKey(cell),
		Canonical:     cell.Canonical(),
		App:           cell.App,
		System:        cell.System,
		Sockets:       cell.Sockets,
		Batch:         cell.BatchSize,
		Spec:          cell.Spec,
		ThroughputKps: res.Throughput().KPerSecond(),
		LatencyP50Ms:  res.Latency.Quantile(0.5),
		LatencyP99Ms:  res.Latency.Quantile(0.99),
		LatencyMeanMs: res.Latency.Mean(),

		LatencyP999Ms:  res.Latency.Quantile(0.999),
		LatencyP9999Ms: res.Latency.Quantile(0.9999),
		LatencyMaxMs:   res.Latency.Max(),
		SourceRate:     cell.SourceRate,
		COUncorrected:  cell.COUncorrected,

		SourceEvents:  res.SourceEvents,
		ElapsedSimS:   res.ElapsedSeconds,
		WallSeconds:   res.WallSeconds,
		ChargedCycles: int64(res.ChargedCycles),
		Memo:          benchMemoStats{Simulated: st.Runs, Deduped: st.MemHits, FromDisk: st.DiskHits},
		Tier:          benchTierStats{Screened: screened, Verified: verified, Probes: probes},
		Joint:         benchJointStats{Screened: jointScreened, Verified: jointVerified},
	}
	name := fmt.Sprintf("BENCH_%s_%s.json", cell.App, cell.System)
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return "", err
	}
	return name, os.WriteFile(name, append(data, '\n'), 0o666)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dspbench:", err)
		os.Exit(1)
	}
}

// runNative executes the cell on the real goroutine runtime and reports
// host wall-clock performance.
func runNative(app, system string, batch, events, scale int, seed int64, chain, jsonOut bool,
	rate float64, noack, co bool, latEvery int) {
	if events <= 0 {
		events = 5000
	}
	if rate > 0 && latEvery == 0 {
		latEvery = 1 // open-loop tail runs observe every sink tuple
	}
	topo, err := apps.Build(app, apps.Config{Events: events, Seed: seed, Scale: scale})
	fail(err)
	sys := engine.Storm()
	if system == "flink" {
		sys = engine.Flink()
	}
	if noack {
		sys.AckEnabled = false
	}
	res, err := engine.RunNative(topo, engine.NativeConfig{
		System: sys, BatchSize: batch, Seed: seed, Chaining: chain,
		SourceRate: rate, CoordinatedOmission: co, LatencySampleEvery: latEvery,
	})
	fail(err)
	fmt.Printf("%s on %s (native runtime, this host)\n", app, system)
	fmt.Printf("  throughput   %10.1f k events/s  (%d events in %.1f ms wall)\n",
		res.Throughput().KPerSecond(), res.SourceEvents, res.ElapsedSeconds*1e3)
	fmt.Printf("  latency      p50 %.3f ms   p99 %.3f ms\n",
		res.Latency.Quantile(0.5), res.Latency.Quantile(0.99))
	if rate > 0 {
		basis := "intended arrival (coordinated-omission corrected)"
		if co {
			basis = "actual emission (coordinated omission UNCORRECTED)"
		}
		fmt.Printf("  tail         p99.9 %.3f ms   p99.99 %.3f ms   max %.3f ms   vs %s\n",
			res.Latency.Quantile(0.999), res.Latency.Quantile(0.9999), res.Latency.Max(), basis)
	}
	if res.AckerCompleted > 0 {
		fmt.Printf("  acker        %d/%d tuple trees completed\n", res.AckerCompleted, res.SourceEvents)
	}
	if jsonOut {
		name, err := writeNativeBenchJSON(app, system, batch, chain, res)
		fail(err)
		fmt.Fprintln(os.Stderr, "dspbench: wrote", name)
	}
}

// runNativeValidate runs the simulator-validation loop over the default
// (app, system) grid and prints the effect-ratio table.
func runNativeValidate() {
	v, err := bench.ValidateNative(bench.DefaultValidationCells(), 3)
	fail(err)
	fmt.Printf("simulator-validation loop: optimization effect ratios, simulated vs native (best of %d)\n", v.Reps)
	fmt.Print(v.String())
}

// nativeBenchRecord is the machine-readable record -native -json emits.
// Unlike dspbench/v1 records it describes a wall-clock measurement on this
// host, so it carries the host shape instead of a simulated machine slice
// and is NOT reproducible across machines.
type nativeBenchRecord struct {
	Schema string `json:"schema"` // "dspbench-native/v1"

	App      string `json:"app"`
	System   string `json:"system"`
	Batch    int    `json:"batch"`
	Chaining bool   `json:"chaining"`

	ThroughputKps float64 `json:"throughput_k_events_per_s"`
	LatencyP50Ms  float64 `json:"latency_p50_ms"`
	LatencyP99Ms  float64 `json:"latency_p99_ms"`
	SourceEvents  int64   `json:"source_events"`
	SinkEvents    int64   `json:"sink_events"`
	WallSeconds   float64 `json:"wall_seconds"`

	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
}

func writeNativeBenchJSON(app, system string, batch int, chain bool, res *engine.Result) (string, error) {
	rec := nativeBenchRecord{
		Schema:        "dspbench-native/v1",
		App:           app,
		System:        system,
		Batch:         batch,
		Chaining:      chain,
		ThroughputKps: res.Throughput().KPerSecond(),
		LatencyP50Ms:  res.Latency.Quantile(0.5),
		LatencyP99Ms:  res.Latency.Quantile(0.99),
		SourceEvents:  res.SourceEvents,
		SinkEvents:    res.SinkEvents,
		WallSeconds:   res.ElapsedSeconds,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
	}
	name := fmt.Sprintf("BENCH_native_%s_%s.json", app, system)
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return "", err
	}
	return name, os.WriteFile(name, append(data, '\n'), 0o666)
}
