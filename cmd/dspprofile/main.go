// Command dspprofile runs one application cell and prints the full
// Table II processor-time account: per-bucket cycles, the Figure 7/8/11
// breakdowns, the instruction-footprint CDF, and per-executor statistics.
//
// Usage:
//
//	dspprofile -app wc -system storm
//	dspprofile -app tm -system flink -sockets 4 -scale 4
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"streamscale/internal/apps"
	"streamscale/internal/bench"
)

func main() {
	var (
		app     = flag.String("app", "wc", "application: "+fmt.Sprint(apps.Names()))
		system  = flag.String("system", "storm", "engine profile: storm | flink")
		sockets = flag.Int("sockets", 1, "enabled CPU sockets")
		batch   = flag.Int("batch", 1, "tuple batch size S")
		scale   = flag.Int("scale", 1, "parallelism scale factor")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	res, err := bench.Run(bench.Cell{
		App: *app, System: *system, Sockets: *sockets,
		BatchSize: *batch, Seed: *seed, Scale: *scale,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dspprofile:", err)
		os.Exit(1)
	}

	p := res.Profile
	fmt.Printf("%s/%s: %.1f k events/s over %.3f simulated seconds\n\n",
		*app, *system, res.Throughput().KPerSecond(), res.ElapsedSeconds)

	fmt.Println("Table II components (cycles, descending):")
	for _, b := range p.SortedBuckets() {
		if p.Costs[b] == 0 {
			continue
		}
		fmt.Printf("  %-22s %14d  %5.1f%%\n", b, p.Costs[b], p.Share(b)*100)
	}
	fmt.Printf("  %-22s %14d\n\n", "total", p.Total())
	fmt.Println(p.String())

	fmt.Println("\ninstruction footprint CDF:")
	for _, pt := range p.FootprintCDF([]int{1 << 10, 8 << 10, 32 << 10, 256 << 10, 1 << 20, 16 << 20}) {
		fmt.Printf("  <= %8d B: %5.1f%%\n", pt.Bytes, pt.Fraction*100)
	}

	fmt.Println("\nper-operator breakdown (share of the operator's own cycles):")
	ops := make([]string, 0, len(res.OperatorProfiles))
	for op := range res.OperatorProfiles {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool {
		return res.OperatorProfiles[ops[i]].Total() > res.OperatorProfiles[ops[j]].Total()
	})
	for _, op := range ops {
		pr := res.OperatorProfiles[op]
		bd := pr.Breakdown()
		fmt.Printf("  %-24s %5.1f%% of cycles | comp %4.1f%% fe %4.1f%% be %4.1f%%\n",
			op, 100*float64(pr.Total())/float64(p.Total()),
			bd.Computation*100, bd.FrontEnd*100, bd.BackEnd*100)
	}

	fmt.Println("\nper-executor statistics:")
	for _, e := range res.Executors {
		if e.Tuples == 0 {
			continue
		}
		fmt.Printf("  %-24s socket %d  %8d tuples  %8.3f ms/event\n",
			fmt.Sprintf("%s[%d]", e.Op, e.Index), e.Socket, e.Tuples, e.MeanTupleMs)
	}
}
