// Command dsplint runs the repo's custom static-analysis suite: eight
// analyzers that make the simulator's and native runtime's load-bearing
// invariants — determinism, exact cycle accounting, zero-allocation hot
// paths, and the lock-free concurrency discipline — regress-proof (see
// internal/analysis and DESIGN.md's "Machine-checked invariants" and
// "Concurrency discipline" sections).
//
// Usage:
//
//	dsplint ./...            # whole module (the CI gate)
//	dsplint ./internal/hw    # one package
//	dsplint -list            # describe the analyzers
//	dsplint -json ./...      # machine-readable diagnostics
//
// dsplint prints one line per diagnostic and exits nonzero when any
// diagnostic is produced, so it slots into ci.sh as a hard gate. With
// -json it instead prints a JSON array of {file, line, col, analyzer,
// message} objects ([] when clean) for editor and tooling integration;
// the exit-status contract is unchanged. It uses
// only the standard library (go/ast, go/parser, go/token, go/types);
// module-internal imports are resolved from the source tree and standard
// library imports from GOROOT source.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"streamscale/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fatal(err)
	}
	loader.Deterministic = analysis.DefaultDeterministic(loader.ModPath)

	dirs, err := expandPatterns(loader.ModRoot, patterns)
	if err != nil {
		fatal(err)
	}

	var diags []analysis.Diagnostic
	failed := false
	for _, dir := range dirs {
		rel, err := filepath.Rel(loader.ModRoot, dir)
		if err != nil {
			fatal(err)
		}
		path := loader.ModPath
		if rel != "." {
			path = loader.ModPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := loader.LoadDir(dir, path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsplint: %v\n", err)
			failed = true
			continue
		}
		diags = append(diags, analysis.RunAnalyzers(pkg, analysis.All())...)
	}

	cwd, _ := os.Getwd()
	relName := func(name string) string {
		if cwd != "" {
			if r, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(r, "..") {
				return r
			}
		}
		return name
	}
	if *jsonOut {
		printJSON(diags, relName)
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s: %s\n", relName(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if failed || len(diags) > 0 {
		os.Exit(1)
	}
}

// jsonDiag is the -json wire shape for one diagnostic.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// printJSON emits the diagnostics as an indented JSON array — always an
// array, [] on a clean run, so consumers never special-case emptiness.
func printJSON(diags []analysis.Diagnostic, relName func(string) string) {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File: relName(d.Pos.Filename), Line: d.Pos.Line, Col: d.Pos.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

// expandPatterns resolves package patterns ("./...", "./internal/hw", a
// plain directory) into the sorted list of package directories containing
// at least one non-test Go file. testdata, vendor, and hidden directories
// are skipped, as the go tool does.
func expandPatterns(modRoot string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		root := pat
		if !filepath.IsAbs(root) {
			root = filepath.Join(modRoot, pat)
		}
		if !recursive {
			if hasGoFiles(root) {
				add(root)
			} else {
				return nil, fmt.Errorf("dsplint: no Go files in %s", pat)
			}
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			base := filepath.Base(path)
			if path != root && (base == "testdata" || base == "vendor" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dsplint: %v\n", err)
	os.Exit(2)
}
