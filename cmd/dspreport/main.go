// Command dspreport regenerates the paper's tables and figures on the
// simulated Table III machine. Without arguments it runs every experiment;
// -experiment selects one by ID (see DESIGN.md's per-experiment index).
//
// Usage:
//
//	dspreport                      # everything (several minutes)
//	dspreport -experiment fig7     # one artifact
//	dspreport -list                # available experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"streamscale/internal/apps"
	"streamscale/internal/bench"
)

type experiment struct {
	id   string
	desc string
	run  func() (string, error)
}

func experiments() []experiment {
	// No local result sharing: the bench package memoizes every cell by
	// content, so the experiments that reuse the single-socket study (and
	// each other's baselines) deduplicate simulation work automatically.
	fromStudy := func(f func([]bench.CellResult) string) func() (string, error) {
		return func() (string, error) {
			cells, err := bench.SingleSocketStudy()
			if err != nil {
				return "", err
			}
			return f(cells), nil
		}
	}
	return []experiment{
		{"fig6a", "throughput per application, single socket", fromStudy(bench.Fig6aTable)},
		{"fig6b", "Storm scalability over cores and sockets", func() (string, error) {
			r, err := bench.Scalability("storm")
			if err != nil {
				return "", err
			}
			return r.Table(), nil
		}},
		{"fig6c", "Flink scalability over cores and sockets", func() (string, error) {
			r, err := bench.Scalability("flink")
			if err != nil {
				return "", err
			}
			return r.Table(), nil
		}},
		{"table4", "CPU and memory bandwidth utilization", fromStudy(bench.TableIV)},
		{"fig7", "execution time breakdown", fromStudy(bench.Fig7Table)},
		{"fig8", "front-end stall breakdown", fromStudy(bench.Fig8Table)},
		{"fig9", "instruction footprint CDF (both systems)", func() (string, error) {
			s, err := bench.FootprintCDF("storm")
			if err != nil {
				return "", err
			}
			f, err := bench.FootprintCDF("flink")
			if err != nil {
				return "", err
			}
			return bench.Fig9Table(s) + "\n" + bench.Fig9Table(f), nil
		}},
		{"table5", "LLC miss stalls on four sockets", func() (string, error) {
			rows, err := bench.TableV("storm")
			if err != nil {
				return "", err
			}
			return bench.TableVTable("storm", rows), nil
		}},
		{"fig10", "TM Map-Matcher executor sweep", func() (string, error) {
			rows, err := bench.Fig10()
			if err != nil {
				return "", err
			}
			return bench.Fig10Table(rows), nil
		}},
		{"fig11", "back-end stall breakdown", fromStudy(bench.Fig11Table)},
		{"fig12", "tuple batching: throughput", func() (string, error) {
			rows, err := bench.Batching()
			if err != nil {
				return "", err
			}
			return bench.Fig12Table(rows) + "\n" + bench.Fig13Table(rows), nil
		}},
		{"fig14", "NUMA-aware placement and combined optimizations", func() (string, error) {
			rows, val, err := bench.Placement()
			if err != nil {
				return "", err
			}
			return bench.Fig14Table(rows) + "\n" + bench.Fig15Table(rows) +
				"\n" + bench.ModelValidationTable(val), nil
		}},
		{"gc", "G1 vs parallelGC overhead (§V-D)", func() (string, error) {
			rows, err := bench.GCStudy(apps.BenchmarkNames())
			if err != nil {
				return "", err
			}
			return bench.GCTable(rows), nil
		}},
		{"hugepages", "huge-pages TLB ablation (§V-D)", func() (string, error) {
			rows, err := bench.HugePages(apps.BenchmarkNames())
			if err != nil {
				return "", err
			}
			return bench.HugePagesTable(rows), nil
		}},
		{"placement-ablation", "min-k-cut vs round-robin placement", func() (string, error) {
			rows, err := bench.PlacementAblation([]string{"wc", "vs", "lr"})
			if err != nil {
				return "", err
			}
			return bench.PlacementAblationTable(rows), nil
		}},
		{"load-latency", "extension: open-loop latency vs offered load", func() (string, error) {
			out := ""
			for _, sys := range []string{"storm", "flink"} {
				rows, err := bench.LoadLatency("wc", sys, 1)
				if err != nil {
					return "", err
				}
				out += bench.LoadLatencyTable("wc", sys, rows) + "\n"
			}
			return out, nil
		}},
		{"sustainable", "extension: sustainable throughput under a p99 bound", func() (string, error) {
			var rows []*bench.SustainableResult
			for _, sys := range []string{"storm", "flink"} {
				r, err := bench.Sustainable("wc", sys, 5.0)
				if err != nil {
					return "", err
				}
				rows = append(rows, r)
			}
			return bench.SustainableTable(rows), nil
		}},
		{"chaining-ablation", "extension: Flink-style operator chaining on/off", func() (string, error) {
			rows, err := bench.ChainingAblation([]string{"sd", "wc", "fd"})
			if err != nil {
				return "", err
			}
			return bench.ChainingTable(rows), nil
		}},
		{"uopcache-ablation", "decoded-µop cache on/off (§V-B)", func() (string, error) {
			rows, err := bench.UopCacheAblation(apps.BenchmarkNames())
			if err != nil {
				return "", err
			}
			return bench.UopCacheTable(rows), nil
		}},
	}
}

// writeCSVs runs the main sweeps and writes plot-ready CSV files into dir.
func writeCSVs(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	save := func(name string, fill func(w *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, bench.CSVName(name)))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := fill(f); err != nil {
			return err
		}
		fmt.Println("wrote", f.Name())
		return nil
	}

	cells, err := bench.SingleSocketStudy()
	if err != nil {
		return err
	}
	if err := save("fig6a", func(w *os.File) error { return bench.Fig6aCSV(w, cells) }); err != nil {
		return err
	}
	if err := save("fig7", func(w *os.File) error { return bench.BreakdownCSV(w, cells) }); err != nil {
		return err
	}
	if err := save("table4", func(w *os.File) error { return bench.UtilizationCSV(w, cells) }); err != nil {
		return err
	}
	for _, sys := range bench.Systems {
		sc, err := bench.Scalability(sys)
		if err != nil {
			return err
		}
		if err := save("fig6bc_"+sys, func(w *os.File) error { return bench.ScalabilityCSV(w, sc) }); err != nil {
			return err
		}
		fp, err := bench.FootprintCDF(sys)
		if err != nil {
			return err
		}
		if err := save("fig9_"+sys, func(w *os.File) error { return bench.FootprintCSV(w, fp) }); err != nil {
			return err
		}
	}
	tv, err := bench.TableV("storm")
	if err != nil {
		return err
	}
	if err := save("table5", func(w *os.File) error { return bench.TableVCSV(w, "storm", tv) }); err != nil {
		return err
	}
	f10, err := bench.Fig10()
	if err != nil {
		return err
	}
	if err := save("fig10", func(w *os.File) error { return bench.Fig10CSV(w, f10) }); err != nil {
		return err
	}
	batching, err := bench.Batching()
	if err != nil {
		return err
	}
	if err := save("fig12_13", func(w *os.File) error { return bench.BatchingCSV(w, batching) }); err != nil {
		return err
	}
	placement, _, err := bench.Placement()
	if err != nil {
		return err
	}
	return save("fig14_15", func(w *os.File) error { return bench.PlacementCSV(w, placement) })
}

// main's wall-clock reads only feed the progress line on stderr; all
// simulated results derive from the deterministic kernel clock.
//
//dsplint:wallclock
func main() {
	var (
		pick       = flag.String("experiment", "", "experiment ID to run (default: all)")
		list       = flag.Bool("list", false, "list experiment IDs")
		csvDir     = flag.String("csv", "", "also write plot-ready CSV files into this directory")
		jobs       = flag.Int("jobs", runtime.NumCPU(), "parallel simulation cells per sweep (results are identical at any value)")
		cache      = flag.String("cache", "", "persistent result cache directory (results are identical with or without it; stale builds' entries are pruned)")
		quiet      = flag.Bool("quiet", false, "suppress the sweep progress line on stderr")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		nativeVal  = flag.Bool("native-validate", false, "run the native-runtime validation loop and exit (wall-clock on this host; NOT deterministic, so it is never part of the default experiment set)")
	)
	flag.Parse()
	if *nativeVal {
		v, err := bench.ValidateNative(bench.DefaultValidationCells(), 3)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dspreport:", err)
			os.Exit(1)
		}
		fmt.Printf("native validation (optimization effect ratios, sim vs this host, best of %d)\n%s", v.Reps, v.String())
		return
	}
	bench.SetJobs(*jobs)
	if *quiet {
		bench.SetProgress(false)
	}
	stopProf, err := bench.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dspreport:", err)
		os.Exit(1)
	}
	defer stopProf()
	if *cache != "" {
		pruned, err := bench.EnableDiskCache(*cache)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dspreport:", err)
			os.Exit(1)
		}
		if pruned > 0 {
			fmt.Fprintf(os.Stderr, "dspreport: pruned %d stale cache file(s) from %s\n", pruned, *cache)
		}
	}

	if *csvDir != "" {
		if err := writeCSVs(*csvDir); err != nil {
			fmt.Fprintln(os.Stderr, "dspreport:", err)
			os.Exit(1)
		}
		return
	}

	exps := experiments()
	if *list {
		ids := make([]string, 0, len(exps))
		for _, e := range exps {
			ids = append(ids, fmt.Sprintf("  %-20s %s", e.id, e.desc))
		}
		sort.Strings(ids)
		fmt.Println("experiments:")
		for _, l := range ids {
			fmt.Println(l)
		}
		return
	}
	start := time.Now()
	ran := 0
	for _, e := range exps {
		if *pick != "" && e.id != *pick {
			continue
		}
		out, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dspreport: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Printf("%s\n", out)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "dspreport: unknown experiment %q (try -list)\n", *pick)
		os.Exit(1)
	}
	st := bench.MemoStats()
	fmt.Fprintf(os.Stderr, "dspreport: %d experiment(s) in %.1fs (jobs=%d; %d simulated, %d deduped, %d from cache)\n",
		ran, time.Since(start).Seconds(), bench.Jobs(), st.Runs, st.MemHits, st.DiskHits)
}
