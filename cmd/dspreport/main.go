// Command dspreport regenerates the paper's tables and figures on the
// simulated Table III machine. Without arguments it runs every experiment;
// -experiment selects one by ID (see DESIGN.md's per-experiment index).
//
// Usage:
//
//	dspreport                      # everything (several minutes)
//	dspreport -experiment fig7     # one artifact
//	dspreport -list                # available experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"streamscale/internal/apps"
	"streamscale/internal/bench"
)

type experiment struct {
	id   string
	desc string
	run  func() (string, error)
	// explicitOnly experiments run only when -experiment names them
	// (tier-smoke re-simulates its sweep exhaustively as a cross-check,
	// which a full report should not pay for).
	explicitOnly bool
}

func experiments(tier bool) []experiment {
	exps := baseExperiments()
	if !tier {
		return exps
	}
	// The tiered set swaps the screened sweeps in under their familiar
	// IDs — fig6b/fig6c/fig12 gain width, not new names — and adds the
	// spec matrix that only the fast tier makes affordable.
	tiered := map[string]experiment{
		"fig6b": {id: "fig6b", desc: "Storm scalability over cores (tiered, wide)", run: func() (string, error) {
			r, err := bench.TieredScalability("storm")
			if err != nil {
				return "", err
			}
			return bench.TieredScalabilityTable("storm", r), nil
		}},
		"fig6c": {id: "fig6c", desc: "Flink scalability over cores (tiered, wide)", run: func() (string, error) {
			r, err := bench.TieredScalability("flink")
			if err != nil {
				return "", err
			}
			return bench.TieredScalabilityTable("flink", r), nil
		}},
		"fig12": {id: "fig12", desc: "tuple batching (tiered, wide)", run: func() (string, error) {
			r, err := bench.TieredBatching()
			if err != nil {
				return "", err
			}
			return bench.TieredBatchingTables(r), nil
		}},
	}
	for i := range exps {
		if t, ok := tiered[exps[i].id]; ok {
			exps[i] = t
		}
	}
	return append(exps,
		experiment{id: "tier-specs", desc: "machine-variant scenario matrix (tiered)", run: func() (string, error) {
			r, err := bench.SpecMatrix()
			if err != nil {
				return "", err
			}
			return bench.SpecMatrixTable(r), nil
		}},
		experiment{id: "tier-smoke", desc: "fast-tier CI gate: verified-row identity and rank-tau (runs only when selected)",
			run: bench.TierSmoke, explicitOnly: true},
	)
}

func baseExperiments() []experiment {
	// No local result sharing: the bench package memoizes every cell by
	// content, so the experiments that reuse the single-socket study (and
	// each other's baselines) deduplicate simulation work automatically.
	fromStudy := func(f func([]bench.CellResult) string) func() (string, error) {
		return func() (string, error) {
			cells, err := bench.SingleSocketStudy()
			if err != nil {
				return "", err
			}
			return f(cells), nil
		}
	}
	return []experiment{
		{id: "fig6a", desc: "throughput per application, single socket", run: fromStudy(bench.Fig6aTable)},
		{id: "fig6b", desc: "Storm scalability over cores and sockets", run: func() (string, error) {
			r, err := bench.Scalability("storm")
			if err != nil {
				return "", err
			}
			return r.Table(), nil
		}},
		{id: "fig6c", desc: "Flink scalability over cores and sockets", run: func() (string, error) {
			r, err := bench.Scalability("flink")
			if err != nil {
				return "", err
			}
			return r.Table(), nil
		}},
		{id: "table4", desc: "CPU and memory bandwidth utilization", run: fromStudy(bench.TableIV)},
		{id: "fig7", desc: "execution time breakdown", run: fromStudy(bench.Fig7Table)},
		{id: "fig8", desc: "front-end stall breakdown", run: fromStudy(bench.Fig8Table)},
		{id: "fig9", desc: "instruction footprint CDF (both systems)", run: func() (string, error) {
			s, err := bench.FootprintCDF("storm")
			if err != nil {
				return "", err
			}
			f, err := bench.FootprintCDF("flink")
			if err != nil {
				return "", err
			}
			return bench.Fig9Table(s) + "\n" + bench.Fig9Table(f), nil
		}},
		{id: "table5", desc: "LLC miss stalls on four sockets", run: func() (string, error) {
			rows, err := bench.TableV("storm")
			if err != nil {
				return "", err
			}
			return bench.TableVTable("storm", rows), nil
		}},
		{id: "fig10", desc: "TM Map-Matcher executor sweep", run: func() (string, error) {
			rows, err := bench.Fig10()
			if err != nil {
				return "", err
			}
			return bench.Fig10Table(rows), nil
		}},
		{id: "fig11", desc: "back-end stall breakdown", run: fromStudy(bench.Fig11Table)},
		{id: "fig12", desc: "tuple batching: throughput", run: func() (string, error) {
			rows, err := bench.Batching()
			if err != nil {
				return "", err
			}
			return bench.Fig12Table(rows) + "\n" + bench.Fig13Table(rows), nil
		}},
		{id: "fig14", desc: "NUMA-aware placement and combined optimizations", run: func() (string, error) {
			rows, val, err := bench.Placement()
			if err != nil {
				return "", err
			}
			return bench.Fig14Table(rows) + "\n" + bench.Fig15Table(rows) +
				"\n" + bench.ModelValidationTable(val), nil
		}},
		{id: "joint", desc: "joint parallelism + placement (RLAS) vs placement-only", run: func() (string, error) {
			rows, err := bench.JointStudy()
			if err != nil {
				return "", err
			}
			shift, err := bench.JointShift()
			if err != nil {
				return "", err
			}
			return bench.JointTable(rows) + "\n" + bench.JointShiftTable(shift), nil
		}},
		{id: "joint-smoke", desc: "joint-search CI gate: exhaustive candidate simulation and rank-tau (runs only when selected)",
			run: bench.JointSmoke, explicitOnly: true},
		{id: "gc", desc: "G1 vs parallelGC overhead (§V-D)", run: func() (string, error) {
			rows, err := bench.GCStudy(apps.BenchmarkNames())
			if err != nil {
				return "", err
			}
			return bench.GCTable(rows), nil
		}},
		{id: "hugepages", desc: "huge-pages TLB ablation (§V-D)", run: func() (string, error) {
			rows, err := bench.HugePages(apps.BenchmarkNames())
			if err != nil {
				return "", err
			}
			return bench.HugePagesTable(rows), nil
		}},
		{id: "placement-ablation", desc: "min-k-cut vs round-robin placement", run: func() (string, error) {
			rows, err := bench.PlacementAblation([]string{"wc", "vs", "lr"})
			if err != nil {
				return "", err
			}
			return bench.PlacementAblationTable(rows), nil
		}},
		{id: "load-latency", desc: "extension: open-loop latency vs offered load", run: func() (string, error) {
			out := ""
			for _, sys := range []string{"storm", "flink"} {
				rows, err := bench.LoadLatency("wc", sys, 1)
				if err != nil {
					return "", err
				}
				out += bench.LoadLatencyTable("wc", sys, rows) + "\n"
			}
			return out, nil
		}},
		{id: "sustainable", desc: "extension: sustainable throughput under a p99 bound", run: func() (string, error) {
			var rows []*bench.SustainableResult
			for _, sys := range []string{"storm", "flink"} {
				r, err := bench.Sustainable("wc", sys, 5.0)
				if err != nil {
					return "", err
				}
				rows = append(rows, r)
			}
			return bench.SustainableTable(rows), nil
		}},
		{id: "chaining-ablation", desc: "extension: Flink-style operator chaining on/off", run: func() (string, error) {
			rows, err := bench.ChainingAblation([]string{"sd", "wc", "fd"})
			if err != nil {
				return "", err
			}
			return bench.ChainingTable(rows), nil
		}},
		{id: "uopcache-ablation", desc: "decoded-µop cache on/off (§V-B)", run: func() (string, error) {
			rows, err := bench.UopCacheAblation(apps.BenchmarkNames())
			if err != nil {
				return "", err
			}
			return bench.UopCacheTable(rows), nil
		}},
		{id: "tail", desc: "extension: p99.99 tail latency with worst-tuple stall attribution", run: func() (string, error) {
			rows, err := bench.TailStudy([]string{"wc", "sd"})
			if err != nil {
				return "", err
			}
			return bench.TailTable(rows), nil
		}},
		{id: "tail-smoke", desc: "tail CI gate: coordinated-omission ordering and ledger reconciliation (runs only when selected)",
			run: bench.TailSmoke, explicitOnly: true},
	}
}

// writeCSVs runs the main sweeps and writes plot-ready CSV files into dir.
func writeCSVs(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	save := func(name string, fill func(w *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, bench.CSVName(name)))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := fill(f); err != nil {
			return err
		}
		fmt.Println("wrote", f.Name())
		return nil
	}

	cells, err := bench.SingleSocketStudy()
	if err != nil {
		return err
	}
	if err := save("fig6a", func(w *os.File) error { return bench.Fig6aCSV(w, cells) }); err != nil {
		return err
	}
	if err := save("fig7", func(w *os.File) error { return bench.BreakdownCSV(w, cells) }); err != nil {
		return err
	}
	if err := save("table4", func(w *os.File) error { return bench.UtilizationCSV(w, cells) }); err != nil {
		return err
	}
	for _, sys := range bench.Systems {
		sc, err := bench.Scalability(sys)
		if err != nil {
			return err
		}
		if err := save("fig6bc_"+sys, func(w *os.File) error { return bench.ScalabilityCSV(w, sc) }); err != nil {
			return err
		}
		fp, err := bench.FootprintCDF(sys)
		if err != nil {
			return err
		}
		if err := save("fig9_"+sys, func(w *os.File) error { return bench.FootprintCSV(w, fp) }); err != nil {
			return err
		}
	}
	tv, err := bench.TableV("storm")
	if err != nil {
		return err
	}
	if err := save("table5", func(w *os.File) error { return bench.TableVCSV(w, "storm", tv) }); err != nil {
		return err
	}
	f10, err := bench.Fig10()
	if err != nil {
		return err
	}
	if err := save("fig10", func(w *os.File) error { return bench.Fig10CSV(w, f10) }); err != nil {
		return err
	}
	batching, err := bench.Batching()
	if err != nil {
		return err
	}
	if err := save("fig12_13", func(w *os.File) error { return bench.BatchingCSV(w, batching) }); err != nil {
		return err
	}
	placement, _, err := bench.Placement()
	if err != nil {
		return err
	}
	return save("fig14_15", func(w *os.File) error { return bench.PlacementCSV(w, placement) })
}

// main's wall-clock reads only feed the progress line on stderr; all
// simulated results derive from the deterministic kernel clock.
//
//dsplint:wallclock
func main() {
	var (
		pick       = flag.String("experiment", "", "experiment ID to run (default: all)")
		list       = flag.Bool("list", false, "list experiment IDs")
		csvDir     = flag.String("csv", "", "also write plot-ready CSV files into this directory")
		jobs       = flag.Int("jobs", runtime.NumCPU(), "parallel simulation cells per sweep (results are identical at any value)")
		cache      = flag.String("cache", "", "persistent result cache directory (results are identical with or without it; stale builds' entries are pruned)")
		quiet      = flag.Bool("quiet", false, "suppress the sweep progress line and the memo/tier stats lines on stderr")
		tier       = flag.Bool("tier", false, "tiered evaluation: screen widened sweeps with the calibrated fast tier, simulate only the interesting cells (adds fig6b/c and fig12 width, the tier-specs matrix, and a validation summary)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		nativeVal  = flag.Bool("native-validate", false, "run the native-runtime validation loop and exit (wall-clock on this host; NOT deterministic, so it is never part of the default experiment set)")
	)
	flag.Parse()
	if *nativeVal {
		v, err := bench.ValidateNative(bench.DefaultValidationCells(), 3)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dspreport:", err)
			os.Exit(1)
		}
		fmt.Printf("native validation (optimization effect ratios, sim vs this host, best of %d)\n%s", v.Reps, v.String())
		return
	}
	bench.SetJobs(*jobs)
	if *quiet {
		bench.SetProgress(false)
	}
	stopProf, err := bench.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dspreport:", err)
		os.Exit(1)
	}
	defer stopProf()
	if *cache != "" {
		pruned, err := bench.EnableDiskCache(*cache)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dspreport:", err)
			os.Exit(1)
		}
		if pruned > 0 {
			fmt.Fprintf(os.Stderr, "dspreport: pruned %d stale cache file(s) from %s\n", pruned, *cache)
		}
	}

	if *csvDir != "" {
		if err := writeCSVs(*csvDir); err != nil {
			fmt.Fprintln(os.Stderr, "dspreport:", err)
			os.Exit(1)
		}
		return
	}

	exps := experiments(*tier)
	if *list {
		ids := make([]string, 0, len(exps))
		for _, e := range exps {
			ids = append(ids, fmt.Sprintf("  %-20s %s", e.id, e.desc))
		}
		sort.Strings(ids)
		fmt.Println("experiments:")
		for _, l := range ids {
			fmt.Println(l)
		}
		return
	}
	start := time.Now()
	ran := 0
	for _, e := range exps {
		if *pick != "" && e.id != *pick {
			continue
		}
		if *pick == "" && e.explicitOnly {
			continue
		}
		out, err := e.run()
		if err != nil {
			if out != "" {
				fmt.Printf("%s\n", out)
			}
			fmt.Fprintf(os.Stderr, "dspreport: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Printf("%s\n", out)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "dspreport: unknown experiment %q (try -list)\n", *pick)
		os.Exit(1)
	}
	if *tier {
		if rows := bench.TierValidations(); len(rows) > 0 {
			fmt.Printf("%s\n", bench.TierValidationTable(rows))
		}
	}
	if !*quiet {
		st := bench.MemoStats()
		fmt.Fprintf(os.Stderr, "dspreport: %d experiment(s) in %.1fs (jobs=%d; %d simulated, %d deduped, %d from cache)\n",
			ran, time.Since(start).Seconds(), bench.Jobs(), st.Runs, st.MemHits, st.DiskHits)
		if *tier {
			sc, ver, pr := bench.TierStats()
			fmt.Fprintf(os.Stderr, "dspreport: tier: %d cells screened, %d verified by simulation, %d probe request(s)\n",
				sc, ver, pr)
		}
		if jsc, jver := bench.JointStats(); jsc > 0 || jver > 0 {
			fmt.Fprintf(os.Stderr, "dspreport: joint: %d parallelism vector(s) screened, %d configuration(s) verified by simulation\n",
				jsc, jver)
		}
	}
}
