// Linear Road on the simulated four-socket server: demonstrates the
// paper's headline result end to end. The same topology runs (1) on one
// socket, (2) on four sockets with the default OS-spread placement, and
// (3) on four sockets with both optimizations — non-blocking tuple
// batching (S=8) and NUMA-aware executor placement.
//
//	go run ./examples/linearroad
package main

import (
	"fmt"

	"streamscale/internal/apps"

	"streamscale/internal/engine"
	"streamscale/internal/place"
)

func run(label string, cfg engine.SimConfig) *engine.Result {
	topo, err := apps.Build("lr", apps.Config{Events: 6000, Seed: 3, Scale: 4})
	if err != nil {
		panic(err)
	}
	res, err := engine.RunSim(topo, cfg)
	if err != nil {
		panic(err)
	}
	lo, re := res.Profile.LLCMissShares()
	fmt.Printf("%-34s %8.1f k events/s   p50 %6.2f ms   llc local/remote %4.1f%%/%4.1f%%\n",
		label, res.Throughput().KPerSecond(), res.Latency.Quantile(0.5), lo*100, re*100)
	return res
}

func main() {
	fmt.Println("Linear Road: 10-operator toll network on the simulated 4-socket Xeon E5-4640")

	run("1 socket, no optimizations", engine.SimConfig{
		System: engine.Storm(), Sockets: 1, Seed: 3,
	})
	base := run("4 sockets, no optimizations", engine.SimConfig{
		System: engine.Storm(), Sockets: 4, Seed: 3,
	})

	// NUMA-aware placement: balanced min-k-cut plans for k=1..4; pick the
	// lowest-cost balanced 4-socket plan (§VI-B tests each and keeps the
	// fastest; see cmd/dspreport -experiment fig14 for the full selection).
	topo, err := apps.Build("lr", apps.Config{Events: 6000, Seed: 3, Scale: 4})
	if err != nil {
		panic(err)
	}
	plans, err := place.PlanFor(topo, engine.Storm(), 4, place.PlaceOptions{
		CoresPerSocket: 8, Oversubscribe: 1.5, Balanced: true,
	})
	if err != nil {
		panic(err)
	}
	best := plans[len(plans)-1]
	fmt.Printf("\nplacement plan: k=%d, Eq.1 cross-socket cost %.0f\n", best.K, best.Cost)

	opt := run("4 sockets, batching S=8 + placement", engine.SimConfig{
		System: engine.Storm(), Sockets: 4, Seed: 3,
		BatchSize: 8, Placement: best.Placement(),
	})

	speedup := opt.Throughput().PerSecond() / base.Throughput().PerSecond()
	fmt.Printf("\ncombined optimizations: %.1fx over the unoptimized 4-socket run "+
		"(the paper reports 1.3-3.2x for Storm)\n", speedup)
}
