// NUMA placement walk-through: builds a custom topology, extracts its
// communication graph (the paper's Definition 4 mapping), solves min-k-cut
// for several k, and shows how Equation 1 cost relates to measured
// performance on the simulated machine.
//
//	go run ./examples/numaplacement
package main

import (
	"fmt"

	"streamscale/internal/engine"
	"streamscale/internal/place"
)

// tick emits monotonically increasing integers.
type tick struct{ n int }

func (t *tick) Prepare(engine.Context) {}
func (t *tick) Next(ctx engine.Context) bool {
	if t.n <= 0 {
		return false
	}
	t.n--
	ctx.Emit(int64(t.n), int64(t.n%64))
	return t.n > 0
}

func buildPipeline() *engine.Topology {
	topo := engine.NewTopology("pipeline")
	topo.AddSource("ticks", 1, func() engine.Source { return &tick{n: 4000} },
		engine.Stream(engine.DefaultStream, "seq", "key")).
		WithProfile(engine.WorkProfile{CodeBytes: 6 << 10, UopsPerTuple: 300, AvgTupleBytes: 48})

	// A heavy enrichment stage: wide fan-out from the source.
	topo.AddOp("enrich", 8, func() engine.Operator {
		return engine.ProcessFunc(func(ctx engine.Context, t engine.Tuple) {
			ctx.Work(2500, 30)
			ctx.Emit(t.Values[0], t.Values[1], t.Values[0].(int64)*7)
		})
	}, engine.Stream(engine.DefaultStream, "seq", "key", "score")).
		SubDefault("ticks", engine.Shuffle()).
		WithProfile(engine.WorkProfile{
			CodeBytes: 12 << 10, UopsPerTuple: 500,
			StateBytes: 1 << 20, StateAccessesPerTuple: 4, AvgTupleBytes: 64,
		})

	// Keyed aggregation, then a sink.
	topo.AddOp("aggregate", 4, func() engine.Operator {
		sums := map[int64]int64{}
		return engine.ProcessFunc(func(ctx engine.Context, t engine.Tuple) {
			k := t.Values[1].(int64)
			sums[k] += t.Values[2].(int64)
			ctx.Emit(k, sums[k])
		})
	}, engine.Stream(engine.DefaultStream, "key", "sum")).
		SubDefault("enrich", engine.Fields("key")).
		WithProfile(engine.WorkProfile{
			CodeBytes: 8 << 10, UopsPerTuple: 350,
			StateBytes: 256 << 10, StateAccessesPerTuple: 3, AvgTupleBytes: 48,
		})

	topo.AddOp("sink", 1, func() engine.Operator {
		return engine.ProcessFunc(func(engine.Context, engine.Tuple) {})
	}).SubDefault("aggregate", engine.Global())
	return topo
}

func main() {
	sys := engine.Flink()

	g, err := place.BuildCommGraph(buildPipeline(), sys)
	if err != nil {
		panic(err)
	}
	fmt.Printf("communication graph: %d executors, total weight %.1f\n\n", g.N(), g.TotalWeight())

	fmt.Println("plan            Eq.1 cost     measured throughput")
	measure := func(label string, placement map[int]int) float64 {
		res, err := engine.RunSim(buildPipeline(), engine.SimConfig{
			System: sys, Sockets: 4, Seed: 1, Placement: placement,
		})
		if err != nil {
			panic(err)
		}
		tp := res.Throughput().KPerSecond()
		cost := "-"
		if placement != nil {
			assign := make([]int, g.N())
			for v, s := range placement {
				assign[v] = s
			}
			cost = fmt.Sprintf("%9.1f", g.CutCost(assign))
		}
		fmt.Printf("%-15s %9s %18.1f k events/s\n", label, cost, tp)
		return tp
	}

	base := measure("os-spread", nil)
	rr := place.RoundRobinPlan(g, 4)
	measure("round-robin", rr.Placement())
	plans, err := place.Plans(g, 4, place.PlaceOptions{CoresPerSocket: 8, Oversubscribe: 1.5, Balanced: true})
	if err != nil {
		panic(err)
	}
	var bestTp float64
	for _, p := range plans {
		tp := measure(fmt.Sprintf("min-%d-cut", p.K), p.Placement())
		if tp > bestTp {
			bestTp = tp
		}
	}
	fmt.Printf("\nbest min-k-cut plan vs OS spread: %+.1f%%\n", (bestTp/base-1)*100)
}
