// Fraud detection: run the FD benchmark application with an interceptor
// sink on the simulated machine, comparing Storm and Flink profiles and
// showing the processor-time breakdown the paper's methodology produces.
//
//	go run ./examples/frauddetect
package main

import (
	"fmt"

	"streamscale/internal/apps"
	"streamscale/internal/engine"
)

func main() {
	for _, sys := range []struct {
		name    string
		profile engine.SystemProfile
	}{
		{"storm", engine.Storm()},
		{"flink", engine.Flink()},
	} {
		topo, err := apps.Build("fd", apps.Config{Events: 8000, Seed: 7})
		if err != nil {
			panic(err)
		}
		// Replace the sink to collect flagged customers. The simulated
		// runtime is single-threaded, so no locking is needed.
		flagged := map[string]float64{}
		topo.Node("sink").NewOp = func() engine.Operator {
			return engine.ProcessFunc(func(_ engine.Context, t engine.Tuple) {
				cust := t.Values[0].(string)
				prob := t.Values[1].(float64)
				if p, ok := flagged[cust]; !ok || prob < p {
					flagged[cust] = prob
				}
			})
		}

		res, err := engine.RunSim(topo, engine.SimConfig{
			System: sys.profile, Sockets: 1, Seed: 7,
		})
		if err != nil {
			panic(err)
		}

		bd := res.Profile.Breakdown()
		fmt.Printf("%s: %8.1f k events/s | %d customers flagged | stalls %.0f%% (front-end %.0f%%)\n",
			sys.name, res.Throughput().KPerSecond(), len(flagged),
			(1-bd.Computation)*100, bd.FrontEnd*100)
	}
	fmt.Println("\nthe missProbability detector flags customers whose state transitions")
	fmt.Println("are rare under the online-learned Markov model (threshold 0.05)")
}
