// Custom application walkthrough: how a downstream user builds their own
// streaming application, attaches simulation work profiles, and runs the
// paper's full methodology against it — throughput, processor-time
// breakdown, batching, and NUMA-aware placement.
//
// The app is a clickstream sessionizer: click events keyed by user flow
// into a sessionizer (fields grouping, per-user state) whose completed
// sessions feed a funnel analyzer.
//
//	go run ./examples/customapp
package main

import (
	"fmt"

	"streamscale/internal/engine"
	"streamscale/internal/place"
)

// clickSource synthesizes click events (user, page, ts).
type clickSource struct{ n int }

func (s *clickSource) Prepare(engine.Context) {}
func (s *clickSource) Next(ctx engine.Context) bool {
	if s.n <= 0 {
		return false
	}
	s.n--
	rng := ctx.Rand()
	user := fmt.Sprintf("u%04d", rng.Intn(800))
	page := []string{"home", "search", "item", "cart", "checkout"}[rng.Intn(5)]
	ctx.Emit(user, page, int64(s.n))
	return s.n > 0
}

// sessionizer closes a user's session after a gap of idleGap events and
// emits (user, pages-in-session).
type sessionizer struct {
	last  map[string]int64
	pages map[string]int
}

const idleGap = 40

func (s *sessionizer) Prepare(engine.Context) {
	s.last = map[string]int64{}
	s.pages = map[string]int{}
}

func (s *sessionizer) Process(ctx engine.Context, t engine.Tuple) {
	user := t.Values[0].(string)
	ts := t.Values[2].(int64)
	if prev, ok := s.last[user]; ok && prev-ts > idleGap {
		ctx.Emit(user, s.pages[user])
		s.pages[user] = 0
	}
	s.pages[user]++
	s.last[user] = ts
	ctx.Work(300, 8) // session bookkeeping beyond the profile baseline
}

// Flush closes every open session at end of stream.
func (s *sessionizer) Flush(ctx engine.Context) {
	for user, n := range s.pages {
		if n > 0 {
			ctx.Emit(user, n)
		}
	}
}

// funnel counts session-length buckets.
type funnel struct{ buckets [4]int64 }

func (f *funnel) Prepare(engine.Context) {}
func (f *funnel) Process(ctx engine.Context, t engine.Tuple) {
	n := t.Values[1].(int)
	b := 0
	switch {
	case n >= 20:
		b = 3
	case n >= 10:
		b = 2
	case n >= 3:
		b = 1
	}
	f.buckets[b]++
	ctx.Emit(b, f.buckets[b])
}

func buildApp(events int) *engine.Topology {
	t := engine.NewTopology("clickstream")
	t.AddSource("clicks", 1, func() engine.Source { return &clickSource{n: events} },
		engine.Stream(engine.DefaultStream, "user", "page", "ts")).
		WithProfile(engine.WorkProfile{
			CodeBytes: 6 << 10, UopsPerTuple: 350, BranchesPerTuple: 8,
			AvgTupleBytes: 72,
		})
	t.AddOp("sessionize", 4, func() engine.Operator { return &sessionizer{} },
		engine.Stream(engine.DefaultStream, "user", "pages")).
		SubDefault("clicks", engine.Fields("user")).
		WithProfile(engine.WorkProfile{
			CodeBytes: 10 << 10, UopsPerTuple: 400, UopsPerEmit: 80,
			BranchesPerTuple: 12,
			StateBytes:       2 << 20, StateAccessesPerTuple: 4,
			Selectivity:   0.05, // sessions close rarely
			AvgTupleBytes: 48,
		})
	t.AddOp("funnel", 2, func() engine.Operator { return &funnel{} },
		engine.Stream(engine.DefaultStream, "bucket", "count")).
		SubDefault("sessionize", engine.Fields("user")).
		WithProfile(engine.WorkProfile{
			CodeBytes: 6 << 10, UopsPerTuple: 220, UopsPerEmit: 60,
			BranchesPerTuple: 6, StateBytes: 4 << 10, AvgTupleBytes: 40,
		})
	t.AddOp("sink", 1, func() engine.Operator {
		return engine.ProcessFunc(func(engine.Context, engine.Tuple) {})
	}).SubDefault("funnel", engine.Global())
	return t
}

func run(label string, cfg engine.SimConfig) *engine.Result {
	res, err := engine.RunSim(buildApp(5000), cfg)
	if err != nil {
		panic(err)
	}
	bd := res.Profile.Breakdown()
	fmt.Printf("%-34s %9.1f k events/s | comp %4.0f%% fe %4.0f%% be %4.0f%%\n",
		label, res.Throughput().KPerSecond(),
		bd.Computation*100, bd.FrontEnd*100, bd.BackEnd*100)
	return res
}

func main() {
	fmt.Println("clickstream sessionizer on the simulated 4-socket server")
	fmt.Println()

	// 1. The paper's profiling methodology, applied to your app.
	one := run("1 socket, storm profile", engine.SimConfig{
		System: engine.Storm(), Sockets: 1, Seed: 9,
	})
	_ = one
	four := run("4 sockets (NUMA-unaware)", engine.SimConfig{
		System: engine.Storm(), Sockets: 4, Seed: 9,
	})

	// 2. Non-blocking tuple batching.
	run("4 sockets, batching S=8", engine.SimConfig{
		System: engine.Storm(), Sockets: 4, Seed: 9, BatchSize: 8,
	})

	// 3. NUMA-aware placement from the communication graph.
	plans, err := place.PlanFor(buildApp(5000), engine.Storm(), 4, place.PlaceOptions{
		CoresPerSocket: 8, Oversubscribe: 1.5, Balanced: true,
	})
	if err != nil {
		panic(err)
	}
	best := plans[len(plans)-1]
	opt := run(fmt.Sprintf("4 sockets, S=8 + placement k=%d", best.K), engine.SimConfig{
		System: engine.Storm(), Sockets: 4, Seed: 9,
		BatchSize: 8, Placement: best.Placement(),
	})

	fmt.Printf("\ncombined optimizations vs NUMA-unaware 4 sockets: %.2fx\n",
		opt.Throughput().PerSecond()/four.Throughput().PerSecond())
}
