// Quickstart: build a word-count topology and run it on the native
// (goroutine) runtime. This is the paper's Figure 4 execution graph: a
// sentence source, shuffle-grouped splitters, fields-grouped counters, and
// a global sink.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sort"
	"sync"

	"streamscale/internal/engine"
)

// sentenceSource emits a fixed corpus of sentences.
type sentenceSource struct{ n int }

func (s *sentenceSource) Prepare(engine.Context) {}
func (s *sentenceSource) Next(ctx engine.Context) bool {
	corpus := []string{
		"streams are tables in motion",
		"tables are streams at rest",
		"the cache is the new disk",
		"the disk is the new tape",
	}
	if s.n <= 0 {
		return false
	}
	s.n--
	ctx.Emit(corpus[s.n%len(corpus)])
	return s.n > 0
}

// split parses sentences into words.
type split struct{}

func (split) Prepare(engine.Context) {}
func (split) Process(ctx engine.Context, t engine.Tuple) {
	word := ""
	for _, r := range t.Values[0].(string) + " " {
		if r == ' ' {
			if word != "" {
				ctx.Emit(word)
			}
			word = ""
			continue
		}
		word += string(r)
	}
}

// count keeps per-word frequencies (one instance per executor, so the
// fields grouping guarantees each word has exactly one owner).
type count struct{ freq map[string]int64 }

func (c *count) Prepare(engine.Context) { c.freq = map[string]int64{} }
func (c *count) Process(ctx engine.Context, t engine.Tuple) {
	w := t.Values[0].(string)
	c.freq[w]++
	ctx.Emit(w, c.freq[w])
}

func main() {
	var (
		mu     sync.Mutex
		totals = map[string]int64{}
	)

	topo := engine.NewTopology("quickstart")
	topo.AddSource("source", 1, func() engine.Source { return &sentenceSource{n: 1000} },
		engine.Stream(engine.DefaultStream, "sentence"))
	topo.AddOp("split", 3, func() engine.Operator { return split{} },
		engine.Stream(engine.DefaultStream, "word")).
		SubDefault("source", engine.Shuffle())
	topo.AddOp("count", 2, func() engine.Operator { return &count{} },
		engine.Stream(engine.DefaultStream, "word", "count")).
		SubDefault("split", engine.Fields("word"))
	topo.AddOp("sink", 1, func() engine.Operator {
		return engine.ProcessFunc(func(_ engine.Context, t engine.Tuple) {
			mu.Lock()
			defer mu.Unlock()
			w, n := t.Values[0].(string), t.Values[1].(int64)
			if n > totals[w] {
				totals[w] = n
			}
		})
	}).SubDefault("count", engine.Global())

	res, err := engine.RunNative(topo, engine.NativeConfig{
		System:    engine.Storm(), // Storm-style acking: every tuple tree is tracked
		BatchSize: 4,              // the paper's non-blocking tuple batching
		Seed:      42,
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("processed %d sentences (%d tuple trees fully acked) in %.1f ms\n",
		res.SourceEvents, res.AckerCompleted, res.ElapsedSeconds*1e3)

	words := make([]string, 0, len(totals))
	for w := range totals {
		words = append(words, w)
	}
	sort.Slice(words, func(i, j int) bool { return totals[words[i]] > totals[words[j]] })
	fmt.Println("top words:")
	for i, w := range words {
		if i == 8 {
			break
		}
		fmt.Printf("  %-10s %5d\n", w, totals[w])
	}
}
