package jvm

import (
	"testing"
	"testing/quick"

	"streamscale/internal/hw"
)

func TestAllocNUMAHonorsSocket(t *testing.T) {
	h := NewHeap(4, G1())
	for sk := 0; sk < 4; sk++ {
		addr, _ := h.Alloc(sk, 64)
		if got := hw.HomeSocket(addr); got != sk {
			t.Fatalf("NUMA alloc on socket %d homed at %d", sk, got)
		}
	}
}

func TestAllocNonNUMAInterleaves(t *testing.T) {
	cfg := G1()
	cfg.UseNUMA = false
	h := NewHeap(4, cfg)
	homes := map[int]int{}
	for i := 0; i < 40; i++ {
		addr, _ := h.Alloc(0, 64) // always "from" socket 0
		homes[hw.HomeSocket(addr)]++
	}
	for sk := 0; sk < 4; sk++ {
		if homes[sk] != 10 {
			t.Fatalf("socket %d got %d allocations, want 10 (interleaved)", sk, homes[sk])
		}
	}
}

func TestAllocAddressesDisjointAndAligned(t *testing.T) {
	h := NewHeap(2, G1())
	var prevEnd uint64
	for i := 0; i < 100; i++ {
		addr, _ := h.Alloc(1, 24)
		off := hw.Offset(addr)
		if off%16 != 0 {
			t.Fatalf("allocation %d not 16-byte aligned: %#x", i, off)
		}
		if i > 0 && off < prevEnd {
			t.Fatalf("allocation %d overlaps previous (off %#x < end %#x)", i, off, prevEnd)
		}
		prevEnd = off + 24 + HeaderBytes
	}
}

func TestMinorGCTriggersAtYoungBoundary(t *testing.T) {
	cfg := G1()
	cfg.YoungBytes = 10_000
	h := NewHeap(1, cfg)
	var paused int
	for i := 0; i < 100; i++ {
		_, pause := h.Alloc(0, 200-HeaderBytes)
		if pause > 0 {
			paused++
		}
	}
	// 100 * 200 bytes = 20 KB allocated, young gen 10 KB: exactly 2 GCs.
	if h.MinorGCs() != 2 || paused != 2 {
		t.Fatalf("minor GCs = %d (paused allocs %d), want 2", h.MinorGCs(), paused)
	}
	if h.GCCycles() <= 0 {
		t.Fatal("GC cycles not accounted")
	}
}

func TestParallelGCCostsMoreThanG1(t *testing.T) {
	run := func(cfg Config) int64 {
		cfg.YoungBytes = 1 << 20
		h := NewHeap(1, cfg)
		for i := 0; i < 10_000; i++ {
			h.Alloc(0, 200)
		}
		return int64(h.GCCycles())
	}
	g1 := run(G1())
	par := run(Parallel())
	if par <= g1*3 {
		t.Fatalf("parallelGC cycles %d not substantially above G1 %d", par, g1)
	}
}

func TestGCOverheadOrderOfMagnitude(t *testing.T) {
	// Sanity-check the paper's finding is reachable: at the benchmark
	// applications' allocation intensity (~40 cycles of execution per
	// allocated byte), G1's mutator-visible overhead should be in the low
	// single-digit percent range and parallelGC's near 10-15%.
	perByteBudget := 40.0
	overhead := func(cfg Config) float64 {
		h := NewHeap(1, cfg)
		bytes := uint64(2 << 30)
		var alloc uint64
		for alloc < bytes {
			h.Alloc(0, 240)
			alloc += 256
		}
		exec := float64(alloc) * perByteBudget
		return float64(h.GCCycles()) / (exec + float64(h.GCCycles()))
	}
	if g1 := overhead(G1()); g1 < 0.005 || g1 > 0.05 {
		t.Fatalf("G1 overhead = %.3f, want roughly 1-3%%", g1)
	}
	if par := overhead(Parallel()); par < 0.06 || par > 0.25 {
		t.Fatalf("parallelGC overhead = %.3f, want roughly 10-15%%", par)
	}
}

func TestMetaspaceDistinctPagesPerClass(t *testing.T) {
	ms := NewMetaspace(4096)
	a := ms.ClassID("WordCount")
	b := ms.ClassID("Splitter")
	if a == b {
		t.Fatal("two classes share a vtable address")
	}
	if ms.ClassID("WordCount") != a {
		t.Fatal("interning is not stable")
	}
	if a>>12 == b>>12 {
		t.Fatal("two classes share a page; no DTLB pressure would result")
	}
	if hw.HomeSocket(a) != 0 {
		t.Fatal("metaspace not homed on socket 0")
	}
	if ms.Loaded() != 2 {
		t.Fatalf("loaded = %d, want 2", ms.Loaded())
	}
}

func TestAllocProperty(t *testing.T) {
	// Property: allocations never overlap, regardless of size sequence.
	f := func(sizes []uint8) bool {
		h := NewHeap(2, G1())
		type span struct{ lo, hi uint64 }
		var spans []span
		for _, s := range sizes {
			addr, _ := h.Alloc(1, int(s))
			lo := hw.Offset(addr)
			hi := lo + uint64(s) + HeaderBytes
			for _, sp := range spans {
				if lo < sp.hi && sp.lo < hi {
					return false
				}
			}
			spans = append(spans, span{lo, hi})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
