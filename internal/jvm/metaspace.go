package jvm

import "streamscale/internal/hw"

// Metaspace models the JVM's class-metadata region. Each loaded class has a
// method table (vtable) living on its own page; an invokevirtual dispatch
// touches the receiver class's vtable, which is the paper's "random
// accesses on method tables" source of DTLB pressure (§V-D). Metaspace is
// allocated once, on socket 0, as HotSpot's metaspace effectively is.
type Metaspace struct {
	classes map[string]uint64
	next    uint64
	page    uint64
}

// NewMetaspace creates an empty metaspace with the given page size.
func NewMetaspace(pageBytes int) *Metaspace {
	return &Metaspace{
		classes: make(map[string]uint64),
		page:    uint64(pageBytes),
		// Keep metaspace clear of the heap's young and tenured regions.
		next: 1 << 42,
	}
}

// ClassID interns a class name and returns the address of its vtable.
func (m *Metaspace) ClassID(name string) uint64 {
	if a, ok := m.classes[name]; ok {
		return a
	}
	a := hw.DataAddr(0, m.next)
	m.next += m.page
	m.classes[name] = a
	return a
}

// Loaded returns the number of distinct classes.
func (m *Metaspace) Loaded() int { return len(m.classes) }
