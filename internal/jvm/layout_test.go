package jvm

import (
	"testing"

	"streamscale/internal/hw"
)

// The simulated address space has four disjoint regions per socket: the
// circular young generation, the tenured region, the metaspace (socket 0),
// and the code range. Overlap would let unrelated state alias in the cache
// model.
func TestAddressRegionsDisjoint(t *testing.T) {
	cfg := G1()
	cfg.YoungBytes = 4 << 20
	h := NewHeap(4, cfg)
	ms := NewMetaspace(4096)

	youngMax := uint64(0)
	for i := 0; i < 10_000; i++ {
		a, _ := h.Alloc(2, 240)
		if off := hw.Offset(a); off > youngMax {
			youngMax = off
		}
	}
	tenured := h.AllocTenured(2, 1<<20)
	if hw.Offset(tenured) <= youngMax {
		t.Fatalf("tenured offset %#x inside young range (max %#x)", hw.Offset(tenured), youngMax)
	}

	meta := ms.ClassID("SomeClass")
	if hw.HomeSocket(meta) != 0 {
		t.Fatal("metaspace not on socket 0")
	}
	if hw.Offset(meta) <= hw.Offset(tenured) {
		t.Fatalf("metaspace offset %#x not above tenured %#x", hw.Offset(meta), hw.Offset(tenured))
	}
	if meta >= hw.CodeBase {
		t.Fatal("metaspace collides with the code range")
	}
	if !hw.IsData(meta) || !hw.IsData(tenured) {
		t.Fatal("heap addresses not classified as data")
	}
}

// The young generation wraps: allocations reuse addresses with the young
// generation's period, and never collide with tenured allocations made
// meanwhile.
func TestYoungGenerationWraps(t *testing.T) {
	cfg := G1()
	cfg.YoungBytes = 256 << 10 // 64 KB per socket
	h := NewHeap(4, cfg)
	first, _ := h.Alloc(1, 240)
	seen := map[uint64]bool{hw.Offset(first): true}
	wrapped := false
	for i := 0; i < 2_000; i++ {
		a, _ := h.Alloc(1, 240)
		if seen[hw.Offset(a)] {
			wrapped = true
			break
		}
		seen[hw.Offset(a)] = true
	}
	if !wrapped {
		t.Fatal("young generation never reused an address")
	}
	// Tenured allocations stay stable while young wraps.
	t1 := h.AllocTenured(1, 4096)
	for i := 0; i < 2_000; i++ {
		h.Alloc(1, 240)
	}
	t2 := h.AllocTenured(1, 4096)
	if t2 <= t1 {
		t.Fatal("tenured cursor moved backwards")
	}
	if hw.Offset(t1) < h.youngPer {
		t.Fatal("tenured allocation below the young region boundary")
	}
}

func TestHeapAccessors(t *testing.T) {
	h := NewHeap(2, G1())
	h.Alloc(0, 100)
	if h.AllocatedBytes() == 0 {
		t.Fatal("allocation not counted")
	}
	if h.Config().Kind != G1GC {
		t.Fatal("config accessor broken")
	}
	if G1GC.String() != "g1" || ParallelGC.String() != "parallel" {
		t.Fatal("collector names wrong")
	}
}
