// Package jvm models the runtime costs of a JVM-based stream processing
// system: a garbage-collected heap with an optional NUMA-aware allocator
// (the HotSpot -XX:+UseNUMA behaviour), generational collection with either
// a G1-like mostly-concurrent collector or a parallel stop-the-world
// collector, and the pointer-chasing data-reference model (object headers
// and invokevirtual method-table lookups) the paper identifies as the
// source of TLB pressure.
package jvm

import (
	"fmt"

	"streamscale/internal/hw"
	"streamscale/internal/sim"
)

// CollectorKind selects the garbage collector model.
type CollectorKind int

const (
	// G1GC models the Garbage-First collector: small pauses, most marking
	// and copying concurrent with mutators.
	G1GC CollectorKind = iota
	// ParallelGC models the throughput collector: full stop-the-world
	// young collections.
	ParallelGC
)

func (k CollectorKind) String() string {
	switch k {
	case G1GC:
		return "g1"
	case ParallelGC:
		return "parallel"
	}
	return fmt.Sprintf("collector(%d)", int(k))
}

// HeaderBytes is the size of a Java object header (64-bit, compressed oops
// off, as on the paper's 512 GB server).
const HeaderBytes = 16

// Config tunes the heap model.
type Config struct {
	Kind CollectorKind
	// YoungBytes is the young-generation size; a minor collection runs
	// every time this much has been allocated.
	YoungBytes uint64
	// SurvivorFraction is the fraction of the young generation still live
	// at collection time. Streaming tuples die young, so this is small.
	SurvivorFraction float64
	// CopyCyclesPerByte is the cost of evacuating one live byte.
	CopyCyclesPerByte float64
	// ScanCyclesPerByte is the cost of scanning one allocated byte for
	// liveness (root + card scanning amortized).
	ScanCyclesPerByte float64
	// PauseBase is the fixed per-collection cost (safepoint, root set).
	PauseBase sim.Cycles
	// MutatorVisibleFraction is the share of collection work that stalls
	// mutators (low for the mostly-concurrent G1, 1.0 for ParallelGC).
	MutatorVisibleFraction float64
	// UseNUMA enables the NUMA-aware allocator: objects are allocated on
	// the allocating thread's socket. When off, allocation interleaves
	// across sockets, as an unaware heap effectively does.
	UseNUMA bool
}

// G1 returns the G1GC configuration used in the paper's Table III setup.
// The per-byte cost constants are calibrated so that, at the allocation
// intensity of the benchmark applications (~100-150 cycles of execution per
// allocated byte), mutator-visible GC lands in the paper's observed 1-3%
// band; see EXPERIMENTS.md.
func G1() Config {
	return Config{
		Kind:                   G1GC,
		YoungBytes:             256 << 20,
		SurvivorFraction:       0.02,
		CopyCyclesPerByte:      1.4,
		ScanCyclesPerByte:      3.0,
		PauseBase:              200_000,
		MutatorVisibleFraction: 0.35,
		UseNUMA:                true,
	}
}

// Parallel returns the parallelGC configuration from the paper's §V-D
// sanity check: full stop-the-world young collections, roughly 6x the
// mutator-visible cost of G1 (the paper measures 10-15% vs 1-3%).
func Parallel() Config {
	c := G1()
	c.Kind = ParallelGC
	c.SurvivorFraction = 0.03
	c.CopyCyclesPerByte = 1.6
	c.ScanCyclesPerByte = 6.5
	c.MutatorVisibleFraction = 1.0
	return c
}

// tenuredBase is the per-socket offset where long-lived (tenured)
// allocations start, far above the circular young generation.
const tenuredBase = uint64(1) << 40

// Heap is the simulated JVM heap. It is driven from the single-threaded
// simulation, so it needs no locking.
//
// The young generation is modelled as a circular per-socket region: after a
// collection its memory is reused, so allocation addresses recur with the
// young generation's period. This is what makes allocation writes land on
// cache-warm lines, as they do on a real generational collector, instead of
// an endless stream of compulsory DRAM misses.
type Heap struct {
	cfg     Config
	sockets int

	cursors   []uint64 // per-socket young-gen bump pointers (circular)
	tenured   []uint64 // per-socket tenured bump pointers
	youngPer  uint64   // per-socket young region size
	rr        int      // round-robin cursor for the non-NUMA allocator
	sinceGC   uint64
	allocated uint64

	minorGCs  int64
	gcCycles  sim.Cycles // mutator-visible GC cycles charged
	gcAllWork sim.Cycles // total collection work including concurrent
}

// NewHeap creates a heap spanning the given number of sockets.
func NewHeap(sockets int, cfg Config) *Heap {
	if sockets <= 0 {
		panic("jvm: heap needs at least one socket")
	}
	if cfg.YoungBytes == 0 {
		panic("jvm: zero young generation")
	}
	youngPer := cfg.YoungBytes / uint64(sockets)
	if youngPer < 64<<10 {
		youngPer = 64 << 10
	}
	return &Heap{
		cfg: cfg, sockets: sockets,
		cursors:  make([]uint64, sockets),
		tenured:  make([]uint64, sockets),
		youngPer: youngPer,
	}
}

// Alloc allocates size bytes (plus object header) for a thread running on
// the given socket. It returns the object's simulated address and any
// mutator-visible GC pause triggered by crossing the young-generation
// boundary; the caller charges the pause to the allocating thread, which is
// where a safepoint would land.
func (h *Heap) Alloc(socket, size int) (addr uint64, pause sim.Cycles) {
	if size < 0 {
		panic("jvm: negative allocation")
	}
	total := uint64(size + HeaderBytes)
	sk := socket
	if !h.cfg.UseNUMA {
		sk = h.rr
		h.rr = (h.rr + 1) % h.sockets
	}
	// Bump allocation, 16-byte aligned like HotSpot TLABs; the region is
	// circular with the young generation's per-socket period.
	cur := (h.cursors[sk] + 15) &^ 15
	if cur+total > h.youngPer {
		cur = 0
	}
	h.cursors[sk] = cur + total
	addr = hw.DataAddr(sk, cur)

	h.sinceGC += total
	h.allocated += total
	if h.sinceGC >= h.cfg.YoungBytes {
		h.sinceGC -= h.cfg.YoungBytes
		pause = h.collect()
	}
	return addr, pause
}

// AllocTenured allocates long-lived memory (operator state, queue rings) on
// the given socket. Tenured memory is never reused or collected by the
// minor-GC model.
func (h *Heap) AllocTenured(socket, size int) uint64 {
	if size < 0 {
		panic("jvm: negative allocation")
	}
	cur := (h.tenured[socket] + 63) &^ 63
	h.tenured[socket] = cur + uint64(size)
	return hw.DataAddr(socket, tenuredBase+cur)
}

// collect models one minor collection and returns the mutator-visible pause.
func (h *Heap) collect() sim.Cycles {
	h.minorGCs++
	live := float64(h.cfg.YoungBytes) * h.cfg.SurvivorFraction
	work := h.cfg.PauseBase +
		sim.Cycles(live*h.cfg.CopyCyclesPerByte) +
		sim.Cycles(float64(h.cfg.YoungBytes)*h.cfg.ScanCyclesPerByte)
	h.gcAllWork += work
	visible := sim.Cycles(float64(work) * h.cfg.MutatorVisibleFraction)
	h.gcCycles += visible
	return visible
}

// MinorGCs returns the number of minor collections so far.
func (h *Heap) MinorGCs() int64 { return h.minorGCs }

// GCCycles returns total mutator-visible GC cycles.
func (h *Heap) GCCycles() sim.Cycles { return h.gcCycles }

// AllocatedBytes returns total bytes allocated.
func (h *Heap) AllocatedBytes() uint64 { return h.allocated }

// Config returns the heap's configuration.
func (h *Heap) Config() Config { return h.cfg }
