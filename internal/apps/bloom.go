package apps

import (
	"hash/fnv"
	"math"
)

// DecayingBloomFilter is an on-demand time-decaying Bloom filter (Bianchi
// et al., CCR 2011), the data structure the VoIP spam-detection modules
// keep their per-number history in. Cells hold real values that decay
// exponentially with stream time; Add refreshes a key's cells toward 1 and
// Estimate reads the minimum surviving cell value.
type DecayingBloomFilter struct {
	cells  []float64
	stamps []int64
	hashes int
	// beta is the per-time-unit decay factor.
	beta float64
	now  int64
}

// NewDecayingBloomFilter creates a filter with the given cell count, hash
// count, and half-life in stream time units.
func NewDecayingBloomFilter(cells, hashes int, halfLife float64) *DecayingBloomFilter {
	if cells <= 0 || hashes <= 0 {
		panic("apps: bloom filter needs positive cells and hashes")
	}
	return &DecayingBloomFilter{
		cells:  make([]float64, cells),
		stamps: make([]int64, cells),
		hashes: hashes,
		beta:   math.Exp(-math.Ln2 / halfLife),
	}
}

func (f *DecayingBloomFilter) idx(key string, i int) int {
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{byte(i)})
	return int(h.Sum64() % uint64(len(f.cells)))
}

// decayed returns cell c's value at the current time.
func (f *DecayingBloomFilter) decayed(c int) float64 {
	dt := f.now - f.stamps[c]
	if dt <= 0 {
		return f.cells[c]
	}
	return f.cells[c] * math.Pow(f.beta, float64(dt))
}

// Advance moves the filter's clock forward (monotone).
func (f *DecayingBloomFilter) Advance(now int64) {
	if now > f.now {
		f.now = now
	}
}

// Add increments the key's cells by weight (decaying their prior content).
func (f *DecayingBloomFilter) Add(key string, weight float64) {
	for i := 0; i < f.hashes; i++ {
		c := f.idx(key, i)
		f.cells[c] = f.decayed(c) + weight
		f.stamps[c] = f.now
	}
}

// Estimate returns the decayed count estimate for the key (the minimum
// over its cells, as in a counting Bloom filter).
func (f *DecayingBloomFilter) Estimate(key string) float64 {
	min := math.Inf(1)
	for i := 0; i < f.hashes; i++ {
		if v := f.decayed(f.idx(key, i)); v < min {
			min = v
		}
	}
	return min
}
