package apps

import (
	"fmt"
	"strings"
	"testing"

	"streamscale/internal/engine"
	"streamscale/internal/gen"
)

// --- WC --------------------------------------------------------------

func TestSplitOpWords(t *testing.T) {
	op := splitOp{}
	ctx := &ctxAdapter{fakeCtx: newFakeCtx()}
	op.Process(ctx, engine.Tuple{Values: []engine.Value{"  alpha beta  gamma "}})
	if len(ctx.emitted) != 3 {
		t.Fatalf("words = %d, want 3: %v", len(ctx.emitted), ctx.emitted)
	}
	want := []string{"alpha", "beta", "gamma"}
	for i, w := range want {
		if ctx.emitted[i][0].(string) != w {
			t.Fatalf("word %d = %v, want %s", i, ctx.emitted[i][0], w)
		}
	}
	// Empty sentence emits nothing.
	ctx2 := &ctxAdapter{fakeCtx: newFakeCtx()}
	op.Process(ctx2, engine.Tuple{Values: []engine.Value{"   "}})
	if len(ctx2.emitted) != 0 {
		t.Fatal("blank sentence emitted words")
	}
}

func TestCountOpIncrements(t *testing.T) {
	op := &countOp{}
	op.Prepare(nil)
	ctx := &ctxAdapter{fakeCtx: newFakeCtx()}
	for i := 0; i < 3; i++ {
		op.Process(ctx, engine.Tuple{Values: []engine.Value{"kernel"}})
	}
	last := ctx.emitted[len(ctx.emitted)-1]
	if last[1].(int64) != 3 {
		t.Fatalf("count = %v, want 3", last[1])
	}
}

// --- SD --------------------------------------------------------------

func TestMovingAvgWindow(t *testing.T) {
	op := newMovingAvgOp()
	ctx := &ctxAdapter{fakeCtx: newFakeCtx()}
	for i := 1; i <= 4; i++ {
		op.Process(ctx, engine.Tuple{Values: []engine.Value{7, int64(i), float64(i * 10)}})
	}
	// Averages: 10, 15, 20, 25.
	want := []float64{10, 15, 20, 25}
	for i, w := range want {
		if got := ctx.emitted[i][2].(float64); got != w {
			t.Fatalf("avg %d = %v, want %v", i, got, w)
		}
	}
	// Window slides: after sdWindow+ readings the oldest drops out.
	op2 := newMovingAvgOp()
	ctx2 := &ctxAdapter{fakeCtx: newFakeCtx()}
	for i := 0; i < sdWindow; i++ {
		op2.Process(ctx2, engine.Tuple{Values: []engine.Value{1, int64(i), 100.0}})
	}
	op2.Process(ctx2, engine.Tuple{Values: []engine.Value{1, int64(99), 200.0}})
	last := ctx2.emitted[len(ctx2.emitted)-1][2].(float64)
	wantAvg := (100.0*float64(sdWindow-1) + 200.0) / float64(sdWindow)
	if last != wantAvg {
		t.Fatalf("sliding avg = %v, want %v", last, wantAvg)
	}
}

func TestSpikeDetectThreshold(t *testing.T) {
	ctx := &ctxAdapter{fakeCtx: newFakeCtx()}
	// 3% above average: below threshold at exactly the edge value.
	spikeDetect(ctx, engine.Tuple{Values: []engine.Value{1, 103.0, 100.0}})
	if len(ctx.emitted) != 0 {
		t.Fatal("non-spike emitted")
	}
	spikeDetect(ctx, engine.Tuple{Values: []engine.Value{1, 104.0, 100.0}})
	if len(ctx.emitted) != 1 {
		t.Fatal("spike above threshold not emitted")
	}
}

// --- FD --------------------------------------------------------------

func TestPredictOpFlagsRareTransitions(t *testing.T) {
	op := newPredictOp()
	ctx := &ctxAdapter{fakeCtx: newFakeCtx()}
	send := func(cust string, typ int) {
		op.Process(ctx, engine.Tuple{Values: []engine.Value{cust, int64(0), typ}})
	}
	// Train: transitions 0->1 repeated well past the warm-up threshold.
	for i := 0; i < 60; i++ {
		cust := fmt.Sprintf("C%02d", i%5)
		send(cust, 0)
		send(cust, 1)
	}
	baseline := len(ctx.emitted)
	// A never-seen transition 0 -> 7 must be flagged.
	send("C00", 0)
	send("C00", 7)
	if len(ctx.emitted) <= baseline {
		t.Fatal("rare transition not flagged")
	}
	last := ctx.emitted[len(ctx.emitted)-1]
	if last[0].(string) != "C00" {
		t.Fatalf("flag names customer %v", last[0])
	}
	if last[1].(float64) >= fdThreshold {
		t.Fatalf("flag probability %v not below threshold", last[1])
	}
}

// --- VS --------------------------------------------------------------

func TestRateModuleScoresGrowWithCalls(t *testing.T) {
	m := newRateModule("ecr", 2.6, true)
	m.Prepare(nil)
	ctx := &ctxAdapter{fakeCtx: newFakeCtx()}
	cdr := func(ts int64) engine.Tuple {
		return engine.Tuple{Values: []engine.Value{"+6500000001", "+6500000002", ts, 60, true}}
	}
	m.Process(ctx, cdr(1))
	first := ctx.emitted[0][1].(float64)
	for i := int64(2); i <= 20; i++ {
		m.Process(ctx, cdr(i))
	}
	last := ctx.emitted[len(ctx.emitted)-1][1].(float64)
	if last <= first {
		t.Fatalf("score did not grow with call volume: %v -> %v", first, last)
	}
	if last <= 0 || last >= 1 {
		t.Fatalf("score %v out of (0,1)", last)
	}
}

func TestScoreOpRequiresEvidence(t *testing.T) {
	op := newScoreOp()
	ctx := &ctxAdapter{fakeCtx: newFakeCtx()}
	emit := func(mod string, score float64) {
		ctx.inOp = mod
		op.Process(ctx, engine.Tuple{Values: []engine.Value{"+6500000001", score, 2.0}})
	}
	emit("ecr24", 0.99)
	emit("ct24", 0.99)
	emit("encr", 0.99)
	if len(ctx.emitted) != 0 {
		t.Fatal("flagged with fewer than 4 modules of evidence")
	}
	emit("fofir", 0.99)
	if len(ctx.emitted) != 1 {
		t.Fatal("high fused score not flagged once evidence sufficed")
	}
	// Re-flagging the same number is suppressed.
	emit("acd", 0.99)
	if len(ctx.emitted) != 1 {
		t.Fatal("number flagged twice")
	}
}

func TestFofirFusesEcrAndRcr(t *testing.T) {
	op := newFofirOp()
	ctx := &ctxAdapter{fakeCtx: newFakeCtx()}
	ctx.inOp = "ecr"
	op.Process(ctx, engine.Tuple{Values: []engine.Value{"+65", 0.8, 2.6}})
	if len(ctx.emitted) != 0 {
		t.Fatal("fused before both sides arrived")
	}
	ctx.inOp = "rcr"
	op.Process(ctx, engine.Tuple{Values: []engine.Value{"+65", 0.5, 2.0}})
	if len(ctx.emitted) != 1 {
		t.Fatal("no fusion after both sides arrived")
	}
	fused := ctx.emitted[0][1].(float64)
	if want := 0.8 * (1 - 0.5*0.5); fused < want-1e-9 || fused > want+1e-9 {
		t.Fatalf("fused = %v, want %v", fused, want)
	}
}

// --- LG --------------------------------------------------------------

func TestGeoStatsTracksCitiesAndTotals(t *testing.T) {
	op := newGeoStatsOp()
	ctx := &ctxAdapter{fakeCtx: newFakeCtx()}
	hit := func(country, city string) {
		op.Process(ctx, engine.Tuple{Values: []engine.Value{country, city}})
	}
	hit("sg", "central")
	hit("sg", "east")
	hit("sg", "central")
	last := ctx.emitted[len(ctx.emitted)-1]
	if last[1].(int64) != 2 {
		t.Fatalf("city count = %v, want 2", last[1])
	}
	if last[2].(int64) != 3 {
		t.Fatalf("total = %v, want 3", last[2])
	}
}

func TestStatusCounter(t *testing.T) {
	op := newStatusCounterOp()
	ctx := &ctxAdapter{fakeCtx: newFakeCtx()}
	rec := func(code int) engine.Tuple {
		return engine.Tuple{Values: []engine.Value{"ip", int64(0), "/u", code, 0}}
	}
	op.Process(ctx, rec(200))
	op.Process(ctx, rec(404))
	op.Process(ctx, rec(200))
	last := ctx.emitted[len(ctx.emitted)-1]
	if last[0].(int) != 200 || last[1].(int64) != 2 {
		t.Fatalf("status row = %v, want [200 2]", last)
	}
}

// --- TM --------------------------------------------------------------

func TestMapMatchEmitsNearestRoad(t *testing.T) {
	grid := gen.NewRoadGrid(tmGridRows, tmGridCols)
	op := newMapMatchOp(grid)
	ctx := &ctxAdapter{fakeCtx: newFakeCtx()}
	lat := grid.RoadLat(3)
	lon := grid.OriginLon + 0.015
	op.Process(ctx, engine.Tuple{Values: []engine.Value{9, lat, lon, 42.0, int64(5)}})
	if len(ctx.emitted) != 1 {
		t.Fatal("no match emitted")
	}
	if ctx.emitted[0][0].(int) != 3 {
		t.Fatalf("matched road %v, want 3", ctx.emitted[0][0])
	}
	// A far-off-network point is dropped.
	ctx2 := &ctxAdapter{fakeCtx: newFakeCtx()}
	op.Process(ctx2, engine.Tuple{Values: []engine.Value{9, 0.0, 0.0, 42.0, int64(6)}})
	if len(ctx2.emitted) != 0 {
		t.Fatal("off-network point matched")
	}
}

func TestSpeedCalcEMA(t *testing.T) {
	op := newSpeedCalcOp()
	ctx := &ctxAdapter{fakeCtx: newFakeCtx()}
	send := func(speed float64) {
		op.Process(ctx, engine.Tuple{Values: []engine.Value{5, 0, speed, int64(0)}})
	}
	send(50)
	send(100)
	last := ctx.emitted[len(ctx.emitted)-1]
	if got := last[1].(float64); got != 0.8*50+0.2*100 {
		t.Fatalf("EMA = %v, want %v", got, 0.8*50+0.2*100)
	}
	if last[2].(int64) != 2 {
		t.Fatalf("count = %v, want 2", last[2])
	}
}

// sinkProfileSanity: every app's sink is a terminal no-output operator.
func TestSinksHaveNoUserStreams(t *testing.T) {
	for _, name := range BenchmarkNames() {
		topo, err := Build(name, Config{Events: 5, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		found := 0
		for _, n := range topo.Nodes() {
			if strings.HasSuffix(n.Name, "sink") {
				found++
				if len(n.Streams) != 0 {
					t.Fatalf("%s: sink %q declares output streams", name, n.Name)
				}
			}
		}
		if found == 0 {
			t.Fatalf("%s: no sink operator", name)
		}
	}
}
