package apps

import (
	"math/rand"
	"testing"

	"streamscale/internal/engine"
)

// ctxAdapter is a minimal engine.Context capturing operator emissions for
// direct operator-level tests.
type ctxAdapter struct{ *fakeCtx }

type fakeCtx struct {
	emitted  [][]engine.Value
	byStream map[string][][]engine.Value
	inOp     string
	inStream string
	rng      *rand.Rand
}

func newFakeCtx() *fakeCtx {
	return &fakeCtx{byStream: map[string][][]engine.Value{}, rng: rand.New(rand.NewSource(1))}
}

func (f *fakeCtx) Emit(values ...engine.Value) { f.EmitTo(engine.DefaultStream, values...) }
func (f *fakeCtx) EmitTo(stream string, values ...engine.Value) {
	f.emitted = append(f.emitted, values)
	f.byStream[stream] = append(f.byStream[stream], values)
}
func (f *fakeCtx) ExecutorID() int         { return 0 }
func (f *fakeCtx) Parallelism() int        { return 1 }
func (f *fakeCtx) OperatorName() string    { return "test" }
func (f *fakeCtx) Work(uops, branches int) {}
func (f *fakeCtx) AccessState(bytes int)   {}
func (f *fakeCtx) ScanState(bytes int)     {}
func (f *fakeCtx) ScanScratch(bytes int)   {}
func (f *fakeCtx) Rand() *rand.Rand        { return f.rng }
func (f *fakeCtx) Input() (string, string) { return f.inOp, f.inStream }

var _ engine.Context = &ctxAdapter{}

func TestLRAccidentDetection(t *testing.T) {
	op := newLRAccidentOp()
	ctx := &ctxAdapter{fakeCtx: newFakeCtx()}
	// posTuple mirrors the dispatcher's "position" stream layout.
	pos := func(vid, segkey, position int) engine.Tuple {
		return engine.Tuple{Values: []engine.Value{
			vid, 0, 0, 0, 0, segkey, position, int64(0),
		}}
	}
	// Two vehicles report the same position 4 times each: accident.
	for i := 0; i < lrStoppedReports; i++ {
		op.Process(ctx, pos(1, 42, 500))
		op.Process(ctx, pos(2, 42, 500))
	}
	if len(ctx.emitted) != 1 {
		t.Fatalf("accident emissions = %d, want 1 (onset)", len(ctx.emitted))
	}
	if !ctx.emitted[0][1].(bool) {
		t.Fatal("onset emitted accident=false")
	}
	// Vehicle 1 moves away: accident clears.
	op.Process(ctx, pos(1, 42, 999))
	if len(ctx.emitted) != 2 || ctx.emitted[1][1].(bool) {
		t.Fatalf("clearance not emitted: %v", ctx.emitted)
	}
}

func TestLRAccidentSingleStoppedVehicleIsNotAccident(t *testing.T) {
	op := newLRAccidentOp()
	ctx := &ctxAdapter{fakeCtx: newFakeCtx()}
	for i := 0; i < 10; i++ {
		op.Process(ctx, engine.Tuple{Values: []engine.Value{
			7, 0, 0, 0, 0, 42, 500, int64(0),
		}})
	}
	if len(ctx.emitted) != 0 {
		t.Fatalf("one stopped car flagged as accident: %v", ctx.emitted)
	}
}

func TestLRCountVehiclesDistinctPerPeriod(t *testing.T) {
	op := newLRCountOp()
	ctx := &ctxAdapter{fakeCtx: newFakeCtx()}
	pos := func(vid int, tm int64) engine.Tuple {
		return engine.Tuple{Values: []engine.Value{vid, 0, 0, 0, 0, 42, 0, tm}}
	}
	op.Process(ctx, pos(1, 10))
	op.Process(ctx, pos(1, 11)) // same vehicle, same minute: no new count
	op.Process(ctx, pos(2, 12))
	if len(ctx.emitted) != 2 {
		t.Fatalf("emissions = %d, want 2 (distinct vehicles)", len(ctx.emitted))
	}
	if got := ctx.emitted[1][1].(int); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
	// New minute resets the distinct set.
	op.Process(ctx, pos(1, 70))
	last := ctx.emitted[len(ctx.emitted)-1]
	if got := last[1].(int); got != 1 {
		t.Fatalf("count after period roll = %d, want 1", got)
	}
}

func TestLRTollNotificationFlow(t *testing.T) {
	op := newLRTollOp()
	ctx := &ctxAdapter{fakeCtx: newFakeCtx()}
	seg := lrSegKey(0, 0, 5)

	// Prime segment state via the stats streams.
	ctx.inOp = "last-average-speed"
	op.Process(ctx, engine.Tuple{Values: []engine.Value{seg, 30.0}})
	ctx.inOp = "count-vehicles"
	op.Process(ctx, engine.Tuple{Values: []engine.Value{seg, 80}})
	ctx.inOp = "accident-detection"
	op.Process(ctx, engine.Tuple{Values: []engine.Value{seg, false}})

	// A vehicle enters the segment: toll assessed.
	ctx.inOp, ctx.inStream = "dispatcher", "position"
	pos := engine.Tuple{Values: []engine.Value{9, 55, 0, 0, 5, seg, 100, int64(30)}}
	op.Process(ctx, pos)
	if len(ctx.byStream[engine.DefaultStream]) != 1 {
		t.Fatalf("toll emissions = %d, want 1", len(ctx.byStream[engine.DefaultStream]))
	}
	toll := ctx.byStream[engine.DefaultStream][0][1].(int)
	if toll != LRToll(30, 80, false) {
		t.Fatalf("toll = %d, want %d", toll, LRToll(30, 80, false))
	}
	if len(ctx.byStream["notify"]) != 1 {
		t.Fatal("positive toll did not notify")
	}
	// Same segment again: no re-assessment.
	op.Process(ctx, pos)
	if len(ctx.byStream[engine.DefaultStream]) != 1 {
		t.Fatal("toll re-assessed within the same segment")
	}
}

func TestLRBalanceAccumulatesAndAnswers(t *testing.T) {
	op := newLRBalanceOp()
	ctx := &ctxAdapter{fakeCtx: newFakeCtx()}
	ctx.inOp = "toll-notification"
	op.Process(ctx, engine.Tuple{Values: []engine.Value{7, 100, 30.0, int64(0)}})
	op.Process(ctx, engine.Tuple{Values: []engine.Value{7, 50, 30.0, int64(0)}})
	ctx.inOp = "dispatcher"
	op.Process(ctx, engine.Tuple{Values: []engine.Value{7, 99, int64(60)}})
	if len(ctx.emitted) != 1 {
		t.Fatalf("balance answers = %d, want 1", len(ctx.emitted))
	}
	if got := ctx.emitted[0][2].(int); got != 150 {
		t.Fatalf("balance = %d, want 150", got)
	}
}

func TestVolumeCounterBuckets(t *testing.T) {
	op := newVolumeCounterOp()
	ctx := &ctxAdapter{fakeCtx: newFakeCtx()}
	rec := func(ts int64) engine.Tuple {
		return engine.Tuple{Values: []engine.Value{"ip", ts, "/u", 200, 10}}
	}
	op.Process(ctx, rec(0))
	op.Process(ctx, rec(30))
	op.Process(ctx, rec(61)) // rolls the minute: bucket of 2 emitted
	if len(ctx.emitted) != 1 {
		t.Fatalf("emissions = %d, want 1", len(ctx.emitted))
	}
	if got := ctx.emitted[0][1].(int64); got != 2 {
		t.Fatalf("bucket = %d, want 2", got)
	}
	op.Flush(ctx)
	if len(ctx.emitted) != 2 {
		t.Fatal("flush did not emit the partial bucket")
	}
}
