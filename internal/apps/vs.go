package apps

import (
	"sort"

	"streamscale/internal/engine"
	"streamscale/internal/gen"
)

// VoIP spam detection sizing. The module weights follow the structure of
// the Bianchi et al. pipeline the paper references: per-number behavioural
// scores fused into one spam score at the Score operator.
const (
	vsSubscribers = 50_000
	vsSpammers    = 250
	vsBloomCells  = 1 << 17
	vsBloomHashes = 3
	vsHalfLife    = 3600 // one hour of stream time
	// vsSpamThreshold is the fused score above which a number is reported.
	vsSpamThreshold = 0.46
)

// VoIPSpam builds the VS topology (Fig 5f): a voice dispatcher feeding a
// set of filter modules over time-decaying Bloom filters (ECR, RCR, ENCR,
// CT24, ECR24, ACD, GlobalACD, URL), a fusion module (FoFIR), a Score
// operator combining module outputs, and a sink.
func VoIPSpam(cfg Config) *engine.Topology {
	cfg = cfg.fill()
	t := engine.NewTopology("vs")

	bloomProfile := func(codeKB int) engine.WorkProfile {
		return engine.WorkProfile{
			CodeBytes:             codeKB << 10,
			UopsPerTuple:          520,
			UopsPerEmit:           90,
			BranchesPerTuple:      18,
			StateBytes:            vsBloomCells * 16, // cells + timestamps
			StateAccessesPerTuple: vsBloomHashes * 2,
			AvgTupleBytes:         64,
		}
	}

	t.AddSource("source", 1, func() engine.Source {
		return &cdrSource{n: cfg.Events, seed: cfg.Seed}
	}, engine.Stream(engine.DefaultStream, "calling", "called", "ts", "dur", "established")).
		WithProfile(engine.WorkProfile{
			CodeBytes:        8 << 10,
			UopsPerTuple:     420,
			BranchesPerTuple: 10,
			AvgTupleBytes:    112,
		})

	// The dispatcher cleans records and routes them to the modules on two
	// key spaces: by caller and by callee.
	t.AddOp("dispatcher", cfg.par(2), func() engine.Operator {
		return engine.ProcessFunc(func(ctx engine.Context, tp engine.Tuple) {
			ctx.EmitTo("byCaller", tp.Values...)
			ctx.EmitTo("byCallee", tp.Values...)
		})
	},
		engine.Stream("byCaller", "calling", "called", "ts", "dur", "established"),
		engine.Stream("byCallee", "calling", "called", "ts", "dur", "established")).
		SubDefault("source", engine.Shuffle()).
		WithProfile(engine.WorkProfile{
			CodeBytes:        7 << 10,
			UopsPerTuple:     280,
			UopsPerEmit:      60,
			BranchesPerTuple: 8,
			Selectivity:      2,
			AvgTupleBytes:    112,
		})

	module := func(name string, weight float64, m func() engine.Operator) {
		t.AddOp(name, cfg.par(2), m,
			engine.Stream(engine.DefaultStream, "number", "score", "weight")).
			Sub("dispatcher", "byCaller", engine.Fields("calling")).
			WithProfile(bloomProfile(9))
		_ = weight
	}

	// Caller-side modules.
	module("ecr", 0, func() engine.Operator { return newRateModule("ecr", 2.6, true) })
	module("encr", 0, func() engine.Operator { return newNewCalleeModule() })
	module("ct24", 0, func() engine.Operator { return newRateModule("ct24", 2.2, false) })
	module("ecr24", 0, func() engine.Operator { return newRateModule("ecr24", 2.4, true) })
	module("acd", 0, func() engine.Operator { return newACDModule(false) })
	module("url", 0, func() engine.Operator { return newURLModule() })

	// Callee-side module (received call rate).
	t.AddOp("rcr", cfg.par(2), func() engine.Operator { return newRCRModule() },
		engine.Stream(engine.DefaultStream, "number", "score", "weight")).
		Sub("dispatcher", "byCallee", engine.Fields("called")).
		WithProfile(bloomProfile(9))

	// Global average call duration (global grouping: one executor).
	t.AddOp("global-acd", 1, func() engine.Operator { return newACDModule(true) },
		engine.Stream(engine.DefaultStream, "number", "score", "weight")).
		Sub("dispatcher", "byCaller", engine.Global()).
		WithProfile(bloomProfile(7))

	// FoFIR fuses ECR and RCR evidence per number.
	t.AddOp("fofir", cfg.par(1), func() engine.Operator { return newFofirOp() },
		engine.Stream(engine.DefaultStream, "number", "score", "weight")).
		SubDefault("ecr", engine.Fields("number")).
		SubDefault("rcr", engine.Fields("number")).
		WithProfile(engine.WorkProfile{
			CodeBytes:             8 << 10,
			UopsPerTuple:          360,
			UopsPerEmit:           80,
			BranchesPerTuple:      12,
			StateBytes:            1 << 20,
			StateAccessesPerTuple: 3,
			AvgTupleBytes:         56,
		})

	// Score combines the weighted module outputs per number.
	score := t.AddOp("score", cfg.par(2), func() engine.Operator { return newScoreOp() },
		engine.Stream(engine.DefaultStream, "number", "spamScore")).
		WithProfile(engine.WorkProfile{
			CodeBytes:             9 << 10,
			UopsPerTuple:          340,
			UopsPerEmit:           90,
			BranchesPerTuple:      12,
			StateBytes:            2 << 20,
			StateAccessesPerTuple: 4,
			Selectivity:           0.02,
			AvgTupleBytes:         48,
		})
	for _, m := range []string{"fofir", "encr", "ct24", "ecr24", "acd", "global-acd", "url"} {
		score.SubDefault(m, engine.Fields("number"))
	}

	t.AddOp("sink", cfg.par(1), nopSink).
		SubDefault("score", engine.Global()).
		WithProfile(sinkProfile())
	return t
}

type cdrSource struct {
	n    int
	seed int64
	g    *gen.CDRGen
}

func (s *cdrSource) Prepare(ctx engine.Context) {
	s.g = gen.NewCDRGen(s.seed+int64(ctx.ExecutorID()), vsSubscribers, vsSpammers)
}

func (s *cdrSource) Next(ctx engine.Context) bool {
	if s.n <= 0 {
		return false
	}
	s.n--
	c := s.g.Next()
	ctx.Emit(c.Calling, c.Called, c.Date, c.Duration, c.Established)
	return s.n > 0
}

// sigmoid squashes a rate into [0,1) with the given scale midpoint.
func sigmoid(x, mid float64) float64 { return x / (x + mid) }

// rateModule scores a number by its decayed call rate; onlyEstablished
// restricts counting to established calls (ECR family).
type rateModule struct {
	name            string
	weight          float64
	onlyEstablished bool
	f               *DecayingBloomFilter
}

func newRateModule(name string, weight float64, onlyEstablished bool) *rateModule {
	return &rateModule{name: name, weight: weight, onlyEstablished: onlyEstablished}
}

func (m *rateModule) Prepare(engine.Context) {
	m.f = NewDecayingBloomFilter(vsBloomCells, vsBloomHashes, vsHalfLife)
}

func (m *rateModule) Process(ctx engine.Context, t engine.Tuple) {
	caller := t.Values[0].(string)
	established := t.Values[4].(bool)
	m.f.Advance(t.Values[2].(int64))
	if m.onlyEstablished && !established {
		// High attempt rate with low established rate is itself a signal:
		// emit the current estimate without refreshing.
		ctx.Emit(caller, sigmoid(m.f.Estimate(caller), 8), m.weight)
		return
	}
	m.f.Add(caller, 1)
	ctx.Emit(caller, sigmoid(m.f.Estimate(caller), 8), m.weight)
}

// rcrModule scores callee-side rates (spammers spread calls over many
// callees, so per-callee received rates stay low; legitimate hubs score
// high and offset caller-side evidence in FoFIR).
type rcrModule struct{ f *DecayingBloomFilter }

func newRCRModule() *rcrModule { return &rcrModule{} }

func (m *rcrModule) Prepare(engine.Context) {
	m.f = NewDecayingBloomFilter(vsBloomCells, vsBloomHashes, vsHalfLife)
}

func (m *rcrModule) Process(ctx engine.Context, t engine.Tuple) {
	caller := t.Values[0].(string)
	m.f.Advance(t.Values[2].(int64))
	m.f.Add(caller, 1) // track the caller's appearances on the callee side
	ctx.Emit(caller, sigmoid(m.f.Estimate(caller), 8), 2.0)
}

// newCalleeModule estimates the rate of *distinct new* callees per caller —
// the strongest telemarketer signal.
type newCalleeModule struct {
	seen *DecayingBloomFilter
	rate *DecayingBloomFilter
}

func newNewCalleeModule() *newCalleeModule { return &newCalleeModule{} }

func (m *newCalleeModule) Prepare(engine.Context) {
	m.seen = NewDecayingBloomFilter(vsBloomCells, vsBloomHashes, vsHalfLife*24)
	m.rate = NewDecayingBloomFilter(vsBloomCells, vsBloomHashes, vsHalfLife)
}

func (m *newCalleeModule) Process(ctx engine.Context, t engine.Tuple) {
	caller := t.Values[0].(string)
	called := t.Values[1].(string)
	ts := t.Values[2].(int64)
	m.seen.Advance(ts)
	m.rate.Advance(ts)
	pair := caller + "|" + called
	if m.seen.Estimate(pair) < 0.5 {
		m.seen.Add(pair, 1)
		m.rate.Add(caller, 1)
	}
	ctx.Emit(caller, sigmoid(m.rate.Estimate(caller), 5), 3.2)
}

// acdModule scores short average call durations; global mode tracks the
// population mean as the baseline.
type acdModule struct {
	global    bool
	durSum    *DecayingBloomFilter
	durCnt    *DecayingBloomFilter
	globalSum float64
	globalCnt float64
}

func newACDModule(global bool) *acdModule { return &acdModule{global: global} }

func (m *acdModule) Prepare(engine.Context) {
	m.durSum = NewDecayingBloomFilter(vsBloomCells, vsBloomHashes, vsHalfLife)
	m.durCnt = NewDecayingBloomFilter(vsBloomCells, vsBloomHashes, vsHalfLife)
}

func (m *acdModule) Process(ctx engine.Context, t engine.Tuple) {
	caller := t.Values[0].(string)
	dur := float64(t.Values[3].(int))
	established := t.Values[4].(bool)
	if !established {
		return
	}
	ts := t.Values[2].(int64)
	m.durSum.Advance(ts)
	m.durCnt.Advance(ts)
	m.durSum.Add(caller, dur)
	m.durCnt.Add(caller, 1)
	m.globalSum += dur
	m.globalCnt++

	cnt := m.durCnt.Estimate(caller)
	if cnt < 1 {
		return
	}
	avg := m.durSum.Estimate(caller) / cnt
	baseline := 240.0
	if m.global && m.globalCnt > 0 {
		baseline = m.globalSum / m.globalCnt
	}
	// Short calls relative to baseline look spammy.
	score := 1 - sigmoid(avg, baseline/3)
	weight := 1.6
	if m.global {
		weight = 1.2
	}
	ctx.Emit(caller, score, weight)
}

// urlModule is a placeholder reputation lookup: numbers hash to a fixed
// reputation bucket (the original consults an external reputation list).
type urlModule struct{}

func newURLModule() *urlModule { return &urlModule{} }

func (m *urlModule) Prepare(engine.Context) {}
func (m *urlModule) Process(ctx engine.Context, t engine.Tuple) {
	caller := t.Values[0].(string)
	var h uint32 = 2166136261
	for i := 0; i < len(caller); i++ {
		h = (h ^ uint32(caller[i])) * 16777619
	}
	ctx.Emit(caller, float64(h%100)/400.0, 0.6) // weak prior in [0, 0.25)
}

// fofirOp fuses ECR (caller pressure) and RCR (callee-side normality):
// high ECR with low RCR is the telemarketer pattern.
type fofirOp struct {
	ecr map[string]float64
	rcr map[string]float64
}

func newFofirOp() *fofirOp {
	return &fofirOp{ecr: map[string]float64{}, rcr: map[string]float64{}}
}

func (f *fofirOp) Prepare(engine.Context) {}
func (f *fofirOp) Process(ctx engine.Context, t engine.Tuple) {
	num := t.Values[0].(string)
	score := t.Values[1].(float64)
	op, _ := ctx.Input()
	if op == "ecr" {
		f.ecr[num] = score
	} else {
		f.rcr[num] = score
	}
	e, hasE := f.ecr[num]
	r, hasR := f.rcr[num]
	if hasE && hasR {
		fused := e * (1 - 0.5*r)
		ctx.Emit(num, fused, 3.0)
	}
}

// scoreOp maintains the latest weighted module scores per number and emits
// numbers whose fused score crosses the spam threshold.
type scoreOp struct {
	scores  map[string]map[string][2]float64 // number -> module -> (score, weight)
	flagged map[string]bool
}

func newScoreOp() *scoreOp {
	return &scoreOp{
		scores:  make(map[string]map[string][2]float64),
		flagged: make(map[string]bool),
	}
}

func (s *scoreOp) Prepare(engine.Context) {}
func (s *scoreOp) Process(ctx engine.Context, t engine.Tuple) {
	num := t.Values[0].(string)
	score := t.Values[1].(float64)
	weight := t.Values[2].(float64)
	op, _ := ctx.Input()

	mods := s.scores[num]
	if mods == nil {
		mods = make(map[string][2]float64, 8)
		s.scores[num] = mods
	}
	mods[op] = [2]float64{score, weight}
	if len(mods) < 4 {
		return // not enough evidence yet
	}
	// Fuse in sorted module order: float addition is not associative, so
	// iterating the map directly would let Go's randomized iteration order
	// perturb the low bits of the fused score run to run.
	names := make([]string, 0, len(mods))
	for m := range mods {
		names = append(names, m)
	}
	sort.Strings(names)
	var num1, den float64
	for _, m := range names {
		sw := mods[m]
		num1 += sw[0] * sw[1]
		den += sw[1]
	}
	fused := num1 / den
	if fused >= vsSpamThreshold && !s.flagged[num] {
		s.flagged[num] = true
		ctx.Emit(num, fused)
	}
}
