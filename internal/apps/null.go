package apps

import "streamscale/internal/engine"

// Null builds the "null" application of §V-B: a source feeding an operator
// that performs nothing, isolating the platform's own instruction footprint
// in the Figure 9 CDF.
func Null(cfg Config) *engine.Topology {
	cfg = cfg.fill()
	t := engine.NewTopology("null")

	t.AddSource("source", 1, func() engine.Source {
		return &nullSource{n: cfg.Events}
	}, engine.Stream(engine.DefaultStream, "v")).
		WithProfile(engine.WorkProfile{
			CodeBytes:        6 << 10,
			UopsPerTuple:     60,
			BranchesPerTuple: 2,
			AvgTupleBytes:    32,
		})

	t.AddOp("null", cfg.par(2), func() engine.Operator {
		return engine.ProcessFunc(func(engine.Context, engine.Tuple) {})
	}).
		SubDefault("source", engine.Shuffle()).
		WithProfile(engine.WorkProfile{
			CodeBytes:        5 << 10,
			UopsPerTuple:     20,
			BranchesPerTuple: 1,
		})
	return t
}

type nullSource struct{ n int }

func (s *nullSource) Prepare(engine.Context) {}
func (s *nullSource) Next(ctx engine.Context) bool {
	if s.n <= 0 {
		return false
	}
	s.n--
	ctx.Emit(s.n)
	return s.n > 0
}
