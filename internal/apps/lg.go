package apps

import (
	"fmt"

	"streamscale/internal/engine"
	"streamscale/internal/gen"
)

const (
	lgClients = 4096
	lgURLs    = 512
	// lgCountries is the size of the synthetic GeoIP space.
	lgCountries = 128
)

// LogProcessing builds the LG topology (Fig 5e): the source fans out to
// three analysis chains — geo finding (-> geo stats -> sink), status-code
// statistics (-> sink), and per-minute volume counting (-> sink).
func LogProcessing(cfg Config) *engine.Topology {
	cfg = cfg.fill()
	t := engine.NewTopology("lg")

	t.AddSource("source", 1, func() engine.Source {
		return &weblogSource{n: cfg.Events, seed: cfg.Seed}
	}, engine.Stream(engine.DefaultStream, "ip", "ts", "url", "status", "bytes")).
		WithProfile(engine.WorkProfile{
			CodeBytes:        8 << 10,
			UopsPerTuple:     420,
			BranchesPerTuple: 10,
			AvgTupleBytes:    120,
		})

	t.AddOp("geo-finder", cfg.par(2), func() engine.Operator { return newGeoFinderOp() },
		engine.Stream(engine.DefaultStream, "country", "city")).
		SubDefault("source", engine.Shuffle()).
		WithProfile(engine.WorkProfile{
			CodeBytes:             10 << 10,
			UopsPerTuple:          480,
			UopsPerEmit:           80,
			BranchesPerTuple:      16,
			StateBytes:            512 << 10, // prefix -> location table
			StateAccessesPerTuple: 4,
			AvgTupleBytes:         48,
		})

	t.AddOp("geo-stats", cfg.par(1), func() engine.Operator { return newGeoStatsOp() },
		engine.Stream(engine.DefaultStream, "country", "cityCount", "total")).
		SubDefault("geo-finder", engine.Fields("country")).
		WithProfile(engine.WorkProfile{
			CodeBytes:             8 << 10,
			UopsPerTuple:          300,
			UopsPerEmit:           90,
			BranchesPerTuple:      8,
			StateBytes:            4 << 20, // all countries and cities seen so far
			StateAccessesPerTuple: 5,
			AvgTupleBytes:         56,
		})

	t.AddOp("status-counter", cfg.par(1), func() engine.Operator { return newStatusCounterOp() },
		engine.Stream(engine.DefaultStream, "status", "count")).
		SubDefault("source", engine.Fields("status")).
		WithProfile(engine.WorkProfile{
			CodeBytes:             6 << 10,
			UopsPerTuple:          200,
			UopsPerEmit:           70,
			BranchesPerTuple:      6,
			StateBytes:            4 << 10,
			StateAccessesPerTuple: 1,
			AvgTupleBytes:         40,
		})

	t.AddOp("volume-counter", cfg.par(1), func() engine.Operator { return newVolumeCounterOp() },
		engine.Stream(engine.DefaultStream, "minute", "count")).
		SubDefault("source", engine.Shuffle()).
		WithProfile(engine.WorkProfile{
			CodeBytes:             6 << 10,
			UopsPerTuple:          180,
			UopsPerEmit:           70,
			BranchesPerTuple:      5,
			StateBytes:            8 << 10,
			StateAccessesPerTuple: 1,
			Selectivity:           0.02, // one update per minute bucket roll
			AvgTupleBytes:         40,
		})

	t.AddOp("geo-sink", cfg.par(1), nopSink).
		SubDefault("geo-stats", engine.Global()).WithProfile(sinkProfile())
	t.AddOp("status-sink", cfg.par(1), nopSink).
		SubDefault("status-counter", engine.Global()).WithProfile(sinkProfile())
	t.AddOp("count-sink", cfg.par(1), nopSink).
		SubDefault("volume-counter", engine.Global()).WithProfile(sinkProfile())
	return t
}

type weblogSource struct {
	n    int
	seed int64
	g    *gen.WeblogGen
}

func (s *weblogSource) Prepare(ctx engine.Context) {
	s.g = gen.NewWeblogGen(s.seed+int64(ctx.ExecutorID()), lgClients, lgURLs)
}

func (s *weblogSource) Next(ctx engine.Context) bool {
	if s.n <= 0 {
		return false
	}
	s.n--
	r := s.g.Next()
	ctx.Emit(r.IP, r.Timestamp, r.URL, r.Status, r.Bytes)
	return s.n > 0
}

// geoFinderOp maps an IP to a (country, city) via a deterministic prefix
// table, standing in for a GeoIP database lookup.
type geoFinderOp struct{}

func newGeoFinderOp() *geoFinderOp { return &geoFinderOp{} }

func (g *geoFinderOp) Prepare(engine.Context) {}
func (g *geoFinderOp) Process(ctx engine.Context, t engine.Tuple) {
	ip := t.Values[0].(string)
	country, city := GeoLocate(ip)
	ctx.Work(len(ip)*6, 8)
	ctx.Emit(country, city)
}

// GeoLocate deterministically maps an IP string to a country and city —
// the oracle shared by the operator and its tests.
func GeoLocate(ip string) (string, string) {
	var h uint32 = 2166136261
	for i := 0; i < len(ip); i++ {
		h = (h ^ uint32(ip[i])) * 16777619
	}
	c := h % lgCountries
	return fmt.Sprintf("country-%02d", c), fmt.Sprintf("city-%03d", h/lgCountries%37)
}

// geoStatsOp maintains all countries and cities seen so far (§III-C) and
// emits running statistics.
type geoStatsOp struct {
	perCountry map[string]map[string]int64
	totals     map[string]int64
}

func newGeoStatsOp() *geoStatsOp {
	return &geoStatsOp{
		perCountry: make(map[string]map[string]int64),
		totals:     make(map[string]int64),
	}
}

func (g *geoStatsOp) Prepare(engine.Context) {}
func (g *geoStatsOp) Process(ctx engine.Context, t engine.Tuple) {
	country := t.Values[0].(string)
	city := t.Values[1].(string)
	cities := g.perCountry[country]
	if cities == nil {
		cities = make(map[string]int64)
		g.perCountry[country] = cities
	}
	cities[city]++
	g.totals[country]++
	ctx.Emit(country, int64(len(cities)), g.totals[country])
}

// statusCounterOp counts HTTP status codes.
type statusCounterOp struct{ counts map[int]int64 }

func newStatusCounterOp() *statusCounterOp { return &statusCounterOp{counts: map[int]int64{}} }

func (s *statusCounterOp) Prepare(engine.Context) {}
func (s *statusCounterOp) Process(ctx engine.Context, t engine.Tuple) {
	code := t.Values[3].(int)
	s.counts[code]++
	ctx.Emit(code, s.counts[code])
}

// volumeCounterOp counts events per minute, emitting each completed bucket.
type volumeCounterOp struct {
	minute int64
	count  int64
}

func newVolumeCounterOp() *volumeCounterOp { return &volumeCounterOp{minute: -1} }

func (v *volumeCounterOp) Prepare(engine.Context) {}
func (v *volumeCounterOp) Process(ctx engine.Context, t engine.Tuple) {
	m := t.Values[1].(int64) / 60
	if m != v.minute {
		if v.minute >= 0 {
			ctx.Emit(v.minute, v.count)
		}
		v.minute, v.count = m, 0
	}
	v.count++
}

// Flush emits the final partial minute.
func (v *volumeCounterOp) Flush(ctx engine.Context) {
	if v.minute >= 0 && v.count > 0 {
		ctx.Emit(v.minute, v.count)
	}
}
