package apps

import (
	"strings"

	"streamscale/internal/engine"
	"streamscale/internal/gen"
)

// Word-count sizing: the paper's text stream uses a Linux-kernel-dictionary
// vocabulary with skew 0.
const (
	wcVocabulary       = 4096
	wcWordsPerSentence = 8
)

// WordCount builds the Stateful Word Count topology (Fig 5a):
// source -> split (shuffle) -> count (fields word) -> sink (global).
func WordCount(cfg Config) *engine.Topology {
	cfg = cfg.fill()
	t := engine.NewTopology("wc")

	t.AddSource("source", 1, func() engine.Source {
		return &sentenceSource{n: cfg.Events, seed: cfg.Seed}
	}, engine.Stream(engine.DefaultStream, "sentence")).
		WithProfile(engine.WorkProfile{
			CodeBytes:        8 << 10,
			UopsPerTuple:     500,
			BranchesPerTuple: 10,
			Selectivity:      1,
			AvgTupleBytes:    90,
		})

	t.AddOp("split", cfg.par(2), func() engine.Operator { return &splitOp{} },
		engine.Stream(engine.DefaultStream, "word")).
		SubDefault("source", engine.Shuffle()).
		WithProfile(engine.WorkProfile{
			CodeBytes:        10 << 10,
			UopsPerTuple:     300,
			UopsPerEmit:      90,
			BranchesPerTuple: 24,
			Selectivity:      wcWordsPerSentence,
			AvgTupleBytes:    40,
		})

	t.AddOp("count", cfg.par(2), func() engine.Operator { return &countOp{} },
		engine.Stream(engine.DefaultStream, "word", "count")).
		SubDefault("split", engine.Fields("word")).
		WithProfile(engine.WorkProfile{
			CodeBytes:             9 << 10,
			UopsPerTuple:          260,
			UopsPerEmit:           80,
			BranchesPerTuple:      10,
			StateBytes:            wcVocabulary * 384, // hashmap entries + boxed values
			StateAccessesPerTuple: 5,
			Selectivity:           1,
			AvgTupleBytes:         48,
		})

	t.AddOp("sink", cfg.par(1), nopSink).
		SubDefault("count", engine.Global()).
		WithProfile(sinkProfile())
	return t
}

type sentenceSource struct {
	n    int
	seed int64
	g    *gen.SentenceGen
}

func (s *sentenceSource) Prepare(ctx engine.Context) {
	s.g = gen.NewSentenceGen(s.seed+int64(ctx.ExecutorID()), wcVocabulary, wcWordsPerSentence, 0)
}

func (s *sentenceSource) Next(ctx engine.Context) bool {
	if s.n <= 0 {
		return false
	}
	s.n--
	ctx.Emit(s.g.Next())
	return s.n > 0
}

// splitOp parses sentences into words.
type splitOp struct{}

func (splitOp) Prepare(engine.Context) {}
func (splitOp) Process(ctx engine.Context, t engine.Tuple) {
	s := t.Values[0].(string)
	words := 0
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ' ' {
			if i > start {
				ctx.Emit(s[start:i])
				words++
			}
			start = i + 1
		}
	}
	// Parsing cost scales with sentence length.
	ctx.Work(len(s)*4, words)
}

// countOp maintains word frequencies and emits the updated count — the
// hashmap is created once and updated per word, as §III-C specifies.
type countOp struct {
	counts map[string]int64
}

func (c *countOp) Prepare(engine.Context) { c.counts = make(map[string]int64, wcVocabulary) }
func (c *countOp) Process(ctx engine.Context, t engine.Tuple) {
	w := t.Values[0].(string)
	c.counts[w]++
	ctx.Emit(w, c.counts[w])
}

// WCReferenceCounts computes expected word counts for a configuration —
// the test oracle (single source executor).
func WCReferenceCounts(cfg Config) map[string]int64 {
	cfg = cfg.fill()
	counts := map[string]int64{}
	for ex := 0; ex < cfg.par(1); ex++ {
		g := gen.NewSentenceGen(cfg.Seed+int64(ex), wcVocabulary, wcWordsPerSentence, 0)
		for i := 0; i < cfg.Events; i++ {
			for _, w := range strings.Fields(g.Next()) {
				counts[w]++
			}
		}
	}
	return counts
}
