package apps

import (
	"fmt"
	"testing"

	"streamscale/internal/engine"
)

func TestRegistryBuildsAll(t *testing.T) {
	for _, name := range Names() {
		topo, err := Build(name, Config{Events: 10, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("%s topology invalid: %v", name, err)
		}
	}
	if _, err := Build("nosuch", Config{}); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestBenchmarkNamesAreSeven(t *testing.T) {
	names := BenchmarkNames()
	if len(names) != 7 {
		t.Fatalf("benchmark apps = %d, want 7", len(names))
	}
	for _, n := range names {
		if _, err := Build(n, Config{Events: 5}); err != nil {
			t.Fatalf("benchmark app %s missing: %v", n, err)
		}
	}
}

// Every app must run end-to-end on both runtimes under both system
// profiles without stalling, and Storm acking must fully complete.
func TestAppsRunEndToEnd(t *testing.T) {
	for _, name := range BenchmarkNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			events := 300
			if name == "tm" {
				events = 40 // heavy per-event cost
			}
			topo, err := Build(name, Config{Events: events, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			nat, err := engine.RunNative(topo, engine.NativeConfig{System: engine.Storm(), Seed: 11})
			if err != nil {
				t.Fatalf("native: %v", err)
			}
			if nat.SourceEvents == 0 {
				t.Fatal("native run emitted nothing")
			}
			if nat.AckerCompleted != nat.SourceEvents {
				t.Fatalf("native acking incomplete: %d of %d", nat.AckerCompleted, nat.SourceEvents)
			}

			topo2, _ := Build(name, Config{Events: events, Seed: 11})
			sim, err := engine.RunSim(topo2, engine.SimConfig{System: engine.Flink(), Seed: 11, Sockets: 1})
			if err != nil {
				t.Fatalf("sim: %v", err)
			}
			if sim.SourceEvents != nat.SourceEvents {
				t.Fatalf("source events differ: native %d, sim %d", nat.SourceEvents, sim.SourceEvents)
			}
			if sim.Profile.Total() == 0 {
				t.Fatal("sim charged no cycles")
			}
		})
	}
}

// Sim and native runtimes must deliver identical sink tuple counts for the
// same seed: the runtimes change performance, never semantics.
func TestSimNativeSemanticEquivalence(t *testing.T) {
	for _, name := range []string{"wc", "fd", "sd", "lg", "lr"} {
		topoN, _ := Build(name, Config{Events: 200, Seed: 21})
		topoS, _ := Build(name, Config{Events: 200, Seed: 21})
		nat, err := engine.RunNative(topoN, engine.NativeConfig{System: engine.Flink(), Seed: 21})
		if err != nil {
			t.Fatalf("%s native: %v", name, err)
		}
		sim, err := engine.RunSim(topoS, engine.SimConfig{System: engine.Flink(), Seed: 21})
		if err != nil {
			t.Fatalf("%s sim: %v", name, err)
		}
		if nat.SinkEvents != sim.SinkEvents {
			t.Fatalf("%s: sink events native %d != sim %d", name, nat.SinkEvents, sim.SinkEvents)
		}
	}
}

func TestWordCountReference(t *testing.T) {
	cfg := Config{Events: 150, Seed: 33}
	ref := WCReferenceCounts(cfg)
	if len(ref) == 0 {
		t.Fatal("empty reference")
	}
	var total int64
	for _, c := range ref {
		total += c
	}
	if total != int64(150*wcWordsPerSentence) {
		t.Fatalf("reference words = %d, want %d", total, 150*wcWordsPerSentence)
	}
	// The sink receives one update per word processed.
	topo := WordCount(cfg)
	res, err := engine.RunNative(topo, engine.NativeConfig{System: engine.Flink(), Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	if res.SinkEvents != total {
		t.Fatalf("sink events = %d, want %d", res.SinkEvents, total)
	}
}

func TestGeoLocateDeterministicAndBounded(t *testing.T) {
	c1, city1 := GeoLocate("10.1.2.3")
	c2, city2 := GeoLocate("10.1.2.3")
	if c1 != c2 || city1 != city2 {
		t.Fatal("GeoLocate not deterministic")
	}
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		c, _ := GeoLocate(string(rune('a'+i%26)) + string(rune('0'+i%10)))
		seen[c] = true
	}
	if len(seen) < 20 || len(seen) > lgCountries {
		t.Fatalf("country spread = %d", len(seen))
	}
}

func TestLRTollOracle(t *testing.T) {
	if LRToll(30, 80, false) != 2*30*30 {
		t.Fatalf("congested toll = %d, want 1800", LRToll(30, 80, false))
	}
	if LRToll(30, 80, true) != 0 {
		t.Fatal("toll assessed despite accident")
	}
	if LRToll(55, 80, false) != 0 {
		t.Fatal("toll assessed despite free flow")
	}
	if LRToll(30, 20, false) != 0 {
		t.Fatal("toll assessed despite low occupancy")
	}
	if LRToll(0, 80, false) != 0 {
		t.Fatal("toll assessed with no speed data")
	}
}

func TestDecayingBloomFilter(t *testing.T) {
	f := NewDecayingBloomFilter(1024, 3, 100)
	f.Advance(0)
	for i := 0; i < 10; i++ {
		f.Add("spammer", 1)
	}
	if got := f.Estimate("spammer"); got < 9.5 {
		t.Fatalf("estimate = %v, want ~10", got)
	}
	if got := f.Estimate("quiet"); got > 1 {
		t.Fatalf("unseen key estimate = %v, want ~0", got)
	}
	// After one half-life the estimate halves.
	f.Advance(100)
	got := f.Estimate("spammer")
	if got < 4 || got > 6 {
		t.Fatalf("post-half-life estimate = %v, want ~5", got)
	}
	// Decay continues monotonically.
	f.Advance(1000)
	if late := f.Estimate("spammer"); late >= got {
		t.Fatalf("estimate did not keep decaying: %v -> %v", got, late)
	}
}

func TestBloomFilterMinSemantic(t *testing.T) {
	f := NewDecayingBloomFilter(64, 4, 1000) // tiny: collisions certain
	f.Advance(1)
	for i := 0; i < 50; i++ {
		f.Add(string(rune('a'+i%26))+"x", 1)
	}
	// Minimum-cell estimates never go below zero and unadded keys stay
	// bounded by collision noise.
	if f.Estimate("zzz-unseen") < 0 {
		t.Fatal("negative estimate")
	}
}

// VS end-to-end: spammers should dominate the sink output. The sim runtime
// is single-threaded, so the interceptor sink needs no locking.
func TestVoIPSpamFlagsSpammers(t *testing.T) {
	topo := VoIPSpam(Config{Events: 4000, Seed: 5})
	flagged := map[string]bool{}
	topo.Node("sink").NewOp = func() engine.Operator {
		return engine.ProcessFunc(func(_ engine.Context, tp engine.Tuple) {
			flagged[tp.Values[0].(string)] = true
		})
	}
	if _, err := engine.RunSim(topo, engine.SimConfig{System: engine.Flink(), Seed: 5, Sockets: 1}); err != nil {
		t.Fatal(err)
	}
	if len(flagged) == 0 {
		t.Fatal("no numbers flagged")
	}
	spam := 0
	for num := range flagged {
		var id int
		if _, err := fmt.Sscanf(num, "+65%08d", &id); err == nil && id < vsSpammers {
			spam++
		}
	}
	precision := float64(spam) / float64(len(flagged))
	if precision < 0.6 {
		t.Fatalf("spam precision = %.2f (%d of %d), want >= 0.6", precision, spam, len(flagged))
	}
}
