package apps

import (
	"streamscale/internal/engine"
	"streamscale/internal/gen"
)

const (
	sdMotes = 64
	// sdWindow is the moving-average window length.
	sdWindow = 90
	// sdThreshold is the spike threshold on the relative deviation from
	// the moving average (0.03 per §III-C).
	sdThreshold = 0.03
	sdSpikePct  = 0.01
)

// SpikeDetection builds the SD topology (Fig 5c): source -> moving-average
// (fields mote) -> spike-detection (shuffle) -> sink.
func SpikeDetection(cfg Config) *engine.Topology {
	cfg = cfg.fill()
	t := engine.NewTopology("sd")

	t.AddSource("source", 1, func() engine.Source {
		return &sensorSource{n: cfg.Events, seed: cfg.Seed}
	}, engine.Stream(engine.DefaultStream, "mote", "ts", "temp")).
		WithProfile(engine.WorkProfile{
			CodeBytes:        6 << 10,
			UopsPerTuple:     300,
			BranchesPerTuple: 6,
			AvgTupleBytes:    48,
		})

	t.AddOp("moving-average", cfg.par(2), func() engine.Operator { return newMovingAvgOp() },
		engine.Stream(engine.DefaultStream, "mote", "value", "avg")).
		SubDefault("source", engine.Fields("mote")).
		WithProfile(engine.WorkProfile{
			CodeBytes:             8 << 10,
			UopsPerTuple:          260,
			UopsPerEmit:           70,
			BranchesPerTuple:      8,
			StateBytes:            sdMotes * sdWindow * 48, // boxed window entries
			StateAccessesPerTuple: 4,
			AvgTupleBytes:         56,
		})

	t.AddOp("spike-detection", cfg.par(2), func() engine.Operator {
		return engine.ProcessFunc(spikeDetect)
	}, engine.Stream(engine.DefaultStream, "mote", "value", "avg")).
		SubDefault("moving-average", engine.Shuffle()).
		WithProfile(engine.WorkProfile{
			CodeBytes:        6 << 10,
			UopsPerTuple:     160,
			UopsPerEmit:      70,
			BranchesPerTuple: 5,
			Selectivity:      sdSpikePct * 3,
			AvgTupleBytes:    56,
		})

	t.AddOp("sink", cfg.par(1), nopSink).
		SubDefault("spike-detection", engine.Global()).
		WithProfile(sinkProfile())
	return t
}

type sensorSource struct {
	n    int
	seed int64
	g    *gen.SensorGen
}

func (s *sensorSource) Prepare(ctx engine.Context) {
	s.g = gen.NewSensorGen(s.seed+int64(ctx.ExecutorID()), sdMotes, sdSpikePct)
}

func (s *sensorSource) Next(ctx engine.Context) bool {
	if s.n <= 0 {
		return false
	}
	s.n--
	r := s.g.Next()
	ctx.Emit(r.MoteID, r.Timestamp, r.Temperature)
	return s.n > 0
}

// movingAvgOp keeps a per-mote sliding window and emits each value with
// its current moving average.
type movingAvgOp struct {
	windows map[int][]float64
	sums    map[int]float64
}

func newMovingAvgOp() *movingAvgOp {
	return &movingAvgOp{windows: make(map[int][]float64), sums: make(map[int]float64)}
}

func (m *movingAvgOp) Prepare(engine.Context) {}

func (m *movingAvgOp) Process(ctx engine.Context, t engine.Tuple) {
	mote := t.Values[0].(int)
	v := t.Values[2].(float64)
	w := m.windows[mote]
	m.sums[mote] += v
	w = append(w, v)
	if len(w) > sdWindow {
		m.sums[mote] -= w[0]
		w = w[1:]
	}
	m.windows[mote] = w
	ctx.Emit(mote, v, m.sums[mote]/float64(len(w)))
}

// spikeDetect forwards values that exceed the moving average by the
// threshold.
func spikeDetect(ctx engine.Context, t engine.Tuple) {
	v := t.Values[1].(float64)
	avg := t.Values[2].(float64)
	if avg > 0 && (v-avg) > sdThreshold*avg {
		ctx.Emit(t.Values...)
	}
}
