// Package apps implements the paper's seven-application micro benchmark
// (§III-C) on the streamscale engine, plus the "null" application used to
// isolate platform instruction footprints in Figure 9:
//
//	WC — Stateful Word Count        FD — Fraud Detection
//	LG — Log Processing             SD — Spike Detection
//	VS — Spam Detection in VoIP     TM — Traffic Monitoring
//	LR — Linear Road
//
// Each constructor returns a topology with tuned per-operator parallelism
// (scaled by Config.Scale) and simulation work profiles derived from the
// applications' real computational and memory behaviour.
package apps

import (
	"fmt"
	"sort"

	"streamscale/internal/engine"
)

// Config parameterizes one application instance.
type Config struct {
	// Events is the number of input events each source executor emits.
	Events int
	// Seed drives all generator randomness.
	Seed int64
	// Scale multiplies every operator's tuned parallelism (>= 1).
	Scale int
}

func (c Config) fill() Config {
	if c.Events <= 0 {
		c.Events = 5000
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	return c
}

func (c Config) par(n int) int { return n * c.Scale }

// Builder constructs one benchmark application.
type Builder func(Config) *engine.Topology

var registry = map[string]Builder{
	"wc":   WordCount,
	"fd":   FraudDetection,
	"lg":   LogProcessing,
	"sd":   SpikeDetection,
	"vs":   VoIPSpam,
	"tm":   TrafficMonitoring,
	"lr":   LinearRoad,
	"null": Null,
}

// Names returns the registered application names in sorted order, the
// seven benchmark applications first.
func Names() []string {
	var out []string
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// BenchmarkNames returns the paper's seven applications in figure order.
func BenchmarkNames() []string {
	return []string{"wc", "fd", "lg", "sd", "vs", "tm", "lr"}
}

// Build constructs a registered application.
func Build(name string, cfg Config) (*engine.Topology, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("apps: unknown application %q (have %v)", name, Names())
	}
	return b(cfg), nil
}

// nopSink returns a sink operator factory (the paper measures throughput
// with a simple sink operator).
func nopSink() engine.Operator {
	return engine.ProcessFunc(func(engine.Context, engine.Tuple) {})
}

// sinkProfile is the lightweight profile shared by sink operators.
func sinkProfile() engine.WorkProfile {
	return engine.WorkProfile{
		CodeBytes:        4 << 10,
		UopsPerTuple:     120,
		BranchesPerTuple: 4,
	}
}
