package apps

import (
	"streamscale/internal/engine"
	"streamscale/internal/gen"
)

// Linear Road constants (Arasu et al.; paper §III-C follows Sax et al.'s
// implementation).
const (
	// lrCongestionCars: tolls apply above this many cars in a segment.
	lrCongestionCars = 50
	// lrCongestionSpeed: tolls apply below this average speed (mph).
	lrCongestionSpeed = 40
	// lrBaseToll scales the congestion toll 2*(cars-50)^2.
	lrBaseToll = 2
	// lrStoppedReports: consecutive same-position reports meaning stopped.
	lrStoppedReports = 4
	lrHistoryDays    = 69
)

func lrSegKey(xway, dir, seg int) int { return (xway*2+dir)*1000 + seg }

// LinearRoad builds the LR topology (Fig 5g): a dispatcher routes position
// reports and historical queries to per-segment statistics operators
// (average speed, last average speed, vehicle counts, accident detection),
// a toll notifier, account-balance and daily-expenditure answerers, and an
// accident notifier, all draining into one sink.
func LinearRoad(cfg Config) *engine.Topology {
	cfg = cfg.fill()
	t := engine.NewTopology("lr")
	lrCfg := gen.DefaultLRConfig()

	posFields := []string{"vid", "speed", "xway", "dir", "seg", "segkey", "pos", "time"}

	t.AddSource("source", 1, func() engine.Source {
		return &lrSource{n: cfg.Events, seed: cfg.Seed, cfg: lrCfg}
	}, engine.Stream(engine.DefaultStream, "type", "time", "vid", "speed", "xway", "lane", "dir", "seg", "pos", "qid", "day")).
		WithProfile(engine.WorkProfile{
			CodeBytes:        9 << 10,
			UopsPerTuple:     480,
			BranchesPerTuple: 12,
			AvgTupleBytes:    140,
		})

	t.AddOp("dispatcher", cfg.par(2), func() engine.Operator {
		return engine.ProcessFunc(lrDispatch)
	},
		engine.Stream("position", posFields...),
		engine.Stream("balq", "vid", "qid", "time"),
		engine.Stream("dayq", "vid", "xway", "day", "qid")).
		SubDefault("source", engine.Shuffle()).
		WithProfile(engine.WorkProfile{
			CodeBytes:        8 << 10,
			UopsPerTuple:     320,
			UopsPerEmit:      70,
			BranchesPerTuple: 14,
			AvgTupleBytes:    110,
		})

	t.AddOp("average-speed", cfg.par(2), func() engine.Operator { return newLRAvgSpeedOp() },
		engine.Stream(engine.DefaultStream, "segkey", "avg")).
		Sub("dispatcher", "position", engine.Fields("segkey")).
		WithProfile(engine.WorkProfile{
			CodeBytes:             7 << 10,
			UopsPerTuple:          260,
			UopsPerEmit:           70,
			BranchesPerTuple:      8,
			StateBytes:            512 << 10,
			StateAccessesPerTuple: 2,
			AvgTupleBytes:         40,
		})

	t.AddOp("last-average-speed", cfg.par(1), func() engine.Operator { return newLRLavOp() },
		engine.Stream(engine.DefaultStream, "segkey", "lav")).
		SubDefault("average-speed", engine.Fields("segkey")).
		WithProfile(engine.WorkProfile{
			CodeBytes:             6 << 10,
			UopsPerTuple:          200,
			UopsPerEmit:           60,
			BranchesPerTuple:      6,
			StateBytes:            256 << 10,
			StateAccessesPerTuple: 2,
			AvgTupleBytes:         40,
		})

	t.AddOp("count-vehicles", cfg.par(2), func() engine.Operator { return newLRCountOp() },
		engine.Stream(engine.DefaultStream, "segkey", "cars")).
		Sub("dispatcher", "position", engine.Fields("segkey")).
		WithProfile(engine.WorkProfile{
			CodeBytes:             7 << 10,
			UopsPerTuple:          260,
			UopsPerEmit:           60,
			BranchesPerTuple:      8,
			StateBytes:            2 << 20,
			StateAccessesPerTuple: 5,
			AvgTupleBytes:         40,
		})

	t.AddOp("accident-detection", cfg.par(1), func() engine.Operator { return newLRAccidentOp() },
		engine.Stream(engine.DefaultStream, "segkey", "accident")).
		Sub("dispatcher", "position", engine.Fields("segkey")).
		WithProfile(engine.WorkProfile{
			CodeBytes:             8 << 10,
			UopsPerTuple:          280,
			UopsPerEmit:           60,
			BranchesPerTuple:      10,
			StateBytes:            512 << 10,
			StateAccessesPerTuple: 3,
			Selectivity:           0.01,
			AvgTupleBytes:         40,
		})

	toll := t.AddOp("toll-notification", cfg.par(2), func() engine.Operator { return newLRTollOp() },
		engine.Stream(engine.DefaultStream, "vid", "toll", "lav", "time"),
		engine.Stream("notify", "vid", "toll", "time")).
		WithProfile(engine.WorkProfile{
			CodeBytes:             11 << 10,
			UopsPerTuple:          380,
			UopsPerEmit:           80,
			BranchesPerTuple:      16,
			StateBytes:            4 << 20,
			StateAccessesPerTuple: 6,
			AvgTupleBytes:         56,
		})
	toll.Sub("dispatcher", "position", engine.Fields("segkey"))
	toll.SubDefault("last-average-speed", engine.Fields("segkey"))
	toll.SubDefault("count-vehicles", engine.Fields("segkey"))
	toll.SubDefault("accident-detection", engine.Fields("segkey"))

	t.AddOp("accident-notification", cfg.par(1), func() engine.Operator { return newLRAccNotifyOp() },
		engine.Stream(engine.DefaultStream, "segkey", "time")).
		SubDefault("accident-detection", engine.Fields("segkey")).
		WithProfile(engine.WorkProfile{
			CodeBytes:        6 << 10,
			UopsPerTuple:     180,
			UopsPerEmit:      60,
			BranchesPerTuple: 6,
			StateBytes:       64 << 10,
			AvgTupleBytes:    40,
		})

	balance := t.AddOp("account-balance", cfg.par(2), func() engine.Operator { return newLRBalanceOp() },
		engine.Stream(engine.DefaultStream, "qid", "vid", "balance")).
		WithProfile(engine.WorkProfile{
			CodeBytes:             8 << 10,
			UopsPerTuple:          240,
			UopsPerEmit:           70,
			BranchesPerTuple:      8,
			StateBytes:            1 << 20,
			StateAccessesPerTuple: 2,
			AvgTupleBytes:         48,
		})
	balance.SubDefault("toll-notification", engine.Fields("vid"))
	balance.Sub("dispatcher", "balq", engine.Fields("vid"))

	t.AddOp("daily-expenses", cfg.par(1), func() engine.Operator {
		return newLRDailyOp(cfg.Seed, lrCfg.Vehicles)
	},
		engine.Stream(engine.DefaultStream, "qid", "vid", "day", "total")).
		Sub("dispatcher", "dayq", engine.Fields("vid")).
		WithProfile(engine.WorkProfile{
			CodeBytes:             7 << 10,
			UopsPerTuple:          300,
			UopsPerEmit:           70,
			BranchesPerTuple:      8,
			StateBytes:            lrHistoryDays * 500 * 16,
			SharedState:           true, // one historical table
			StateAccessesPerTuple: 3,
			AvgTupleBytes:         48,
		})

	sink := t.AddOp("sink", cfg.par(1), nopSink).WithProfile(sinkProfile())
	sink.Sub("toll-notification", "notify", engine.Global())
	sink.SubDefault("accident-notification", engine.Global())
	sink.SubDefault("account-balance", engine.Global())
	sink.SubDefault("daily-expenses", engine.Global())
	return t
}

type lrSource struct {
	n    int
	seed int64
	cfg  gen.LRConfig
	g    *gen.LRGen
}

func (s *lrSource) Prepare(ctx engine.Context) {
	s.g = gen.NewLRGen(s.seed+int64(ctx.ExecutorID()), s.cfg)
}

func (s *lrSource) Next(ctx engine.Context) bool {
	if s.n <= 0 {
		return false
	}
	s.n--
	r := s.g.Next()
	ctx.Emit(r.Type, r.Time, r.VID, r.Speed, r.XWay, r.Lane, r.Dir, r.Seg, r.Pos, r.QID, r.Day)
	return s.n > 0
}

// lrDispatch routes input records by type.
func lrDispatch(ctx engine.Context, t engine.Tuple) {
	typ := t.Values[0].(int)
	switch typ {
	case gen.LRPosition:
		xway := t.Values[4].(int)
		dir := t.Values[6].(int)
		seg := t.Values[7].(int)
		ctx.EmitTo("position",
			t.Values[2], t.Values[3], xway, dir, seg,
			lrSegKey(xway, dir, seg), t.Values[8], t.Values[1])
	case gen.LRAccountBal:
		ctx.EmitTo("balq", t.Values[2], t.Values[9], t.Values[1])
	case gen.LRDailyExp:
		ctx.EmitTo("dayq", t.Values[2], t.Values[4], t.Values[10], t.Values[9])
	}
}

// lrAvgSpeedOp computes per-segment running average speeds per reporting
// period and emits the updated value.
type lrAvgSpeedOp struct {
	sum map[int]float64
	n   map[int]int64
}

func newLRAvgSpeedOp() *lrAvgSpeedOp {
	return &lrAvgSpeedOp{sum: map[int]float64{}, n: map[int]int64{}}
}

func (o *lrAvgSpeedOp) Prepare(engine.Context) {}
func (o *lrAvgSpeedOp) Process(ctx engine.Context, t engine.Tuple) {
	key := t.Values[5].(int)
	speed := float64(t.Values[1].(int))
	o.sum[key] += speed
	o.n[key]++
	ctx.Emit(key, o.sum[key]/float64(o.n[key]))
}

// lrLavOp tracks the latest average speed (LAV) per segment, emitting on
// meaningful change.
type lrLavOp struct{ lav map[int]float64 }

func newLRLavOp() *lrLavOp { return &lrLavOp{lav: map[int]float64{}} }

func (o *lrLavOp) Prepare(engine.Context) {}
func (o *lrLavOp) Process(ctx engine.Context, t engine.Tuple) {
	key := t.Values[0].(int)
	avg := t.Values[1].(float64)
	prev, seen := o.lav[key]
	o.lav[key] = avg
	if !seen || prev != avg {
		ctx.Emit(key, avg)
	}
}

// lrCountOp counts distinct vehicles per segment per reporting period.
type lrCountOp struct {
	period int64
	seen   map[int]map[int]bool
}

func newLRCountOp() *lrCountOp { return &lrCountOp{seen: map[int]map[int]bool{}} }

func (o *lrCountOp) Prepare(engine.Context) {}
func (o *lrCountOp) Process(ctx engine.Context, t engine.Tuple) {
	key := t.Values[5].(int)
	vid := t.Values[0].(int)
	tm := t.Values[7].(int64) / 60
	if tm != o.period {
		o.period = tm
		o.seen = map[int]map[int]bool{}
	}
	s := o.seen[key]
	if s == nil {
		s = map[int]bool{}
		o.seen[key] = s
	}
	if !s[vid] {
		s[vid] = true
		ctx.Emit(key, len(s))
	}
}

// lrAccidentOp detects accidents: a vehicle reporting the same position
// lrStoppedReports times is stopped; two stopped vehicles at one position
// is an accident. Emits onset and clearance per segment.
type lrAccidentOp struct {
	lastPos  map[int][2]int      // vid -> (pos, repeats)
	stopped  map[int]map[int]int // segkey -> pos -> stopped count
	accident map[int]bool
}

func newLRAccidentOp() *lrAccidentOp {
	return &lrAccidentOp{
		lastPos:  map[int][2]int{},
		stopped:  map[int]map[int]int{},
		accident: map[int]bool{},
	}
}

func (o *lrAccidentOp) Prepare(engine.Context) {}
func (o *lrAccidentOp) Process(ctx engine.Context, t engine.Tuple) {
	vid := t.Values[0].(int)
	key := t.Values[5].(int)
	pos := t.Values[6].(int)

	lp := o.lastPos[vid]
	oldPos := lp[0]
	wasStopped := lp[1] >= lrStoppedReports
	if lp[0] == pos {
		lp[1]++
	} else {
		lp = [2]int{pos, 1}
	}
	o.lastPos[vid] = lp
	isStopped := lp[1] >= lrStoppedReports

	segStops := o.stopped[key]
	if segStops == nil {
		segStops = map[int]int{}
		o.stopped[key] = segStops
	}
	if isStopped && !wasStopped {
		segStops[pos]++
	}
	if !isStopped && wasStopped {
		// The vehicle drove off: clear its stop at the old position.
		if segStops[oldPos] > 0 {
			segStops[oldPos]--
		}
	}
	acc := false
	for _, n := range segStops {
		if n >= 2 {
			acc = true
			break
		}
	}
	if acc != o.accident[key] {
		o.accident[key] = acc
		ctx.Emit(key, acc)
	}
}

// lrTollOp assesses tolls when a vehicle enters a new segment: congestion
// tolls apply when the segment's LAV is low, it is crowded, and has no
// accident.
type lrTollOp struct {
	lav      map[int]float64
	cars     map[int]int
	accident map[int]bool
	lastSeg  map[int]int
}

func newLRTollOp() *lrTollOp {
	return &lrTollOp{
		lav:      map[int]float64{},
		cars:     map[int]int{},
		accident: map[int]bool{},
		lastSeg:  map[int]int{},
	}
}

func (o *lrTollOp) Prepare(engine.Context) {}
func (o *lrTollOp) Process(ctx engine.Context, t engine.Tuple) {
	op, stream := ctx.Input()
	switch {
	case op == "last-average-speed":
		o.lav[t.Values[0].(int)] = t.Values[1].(float64)
	case op == "count-vehicles":
		o.cars[t.Values[0].(int)] = t.Values[1].(int)
	case op == "accident-detection":
		o.accident[t.Values[0].(int)] = t.Values[1].(bool)
	case stream == "position":
		vid := t.Values[0].(int)
		key := t.Values[5].(int)
		if o.lastSeg[vid] == key {
			return // toll assessed on segment entry only
		}
		o.lastSeg[vid] = key
		toll := LRToll(o.lav[key], o.cars[key], o.accident[key])
		tm := t.Values[7].(int64)
		ctx.Emit(vid, toll, o.lav[key], tm)
		if toll > 0 {
			ctx.EmitTo("notify", vid, toll, tm)
		}
	}
}

// LRToll computes the Linear Road congestion toll — exported as the test
// oracle.
func LRToll(lav float64, cars int, accident bool) int {
	if accident || cars <= lrCongestionCars || !(lav > 0 && lav < lrCongestionSpeed) {
		return 0
	}
	d := cars - lrCongestionCars
	return lrBaseToll * d * d
}

// lrAccNotifyOp notifies on accident onsets.
type lrAccNotifyOp struct{}

func newLRAccNotifyOp() *lrAccNotifyOp { return &lrAccNotifyOp{} }

func (o *lrAccNotifyOp) Prepare(engine.Context) {}
func (o *lrAccNotifyOp) Process(ctx engine.Context, t engine.Tuple) {
	if t.Values[1].(bool) {
		ctx.Emit(t.Values[0], int64(0))
	}
}

// lrBalanceOp accumulates assessed tolls per vehicle and answers account
// balance queries.
type lrBalanceOp struct{ balance map[int]int }

func newLRBalanceOp() *lrBalanceOp { return &lrBalanceOp{balance: map[int]int{}} }

func (o *lrBalanceOp) Prepare(engine.Context) {}
func (o *lrBalanceOp) Process(ctx engine.Context, t engine.Tuple) {
	op, _ := ctx.Input()
	if op == "toll-notification" {
		o.balance[t.Values[0].(int)] += t.Values[1].(int)
		return
	}
	// Balance query: (vid, qid, time).
	vid := t.Values[0].(int)
	ctx.Emit(t.Values[1], vid, o.balance[vid])
}

// lrDailyOp answers daily expenditure queries from the historical table.
type lrDailyOp struct {
	seed     int64
	vehicles int
	hist     map[[2]int]int
}

func newLRDailyOp(seed int64, vehicles int) *lrDailyOp {
	return &lrDailyOp{seed: seed, vehicles: vehicles}
}

func (o *lrDailyOp) Prepare(engine.Context) {
	o.hist = gen.HistoricalTolls(o.seed, o.vehicles, lrHistoryDays)
}

func (o *lrDailyOp) Process(ctx engine.Context, t engine.Tuple) {
	vid := t.Values[0].(int)
	day := t.Values[2].(int)
	qid := t.Values[3].(int)
	ctx.Emit(qid, vid, day, o.hist[[2]int{vid, day}])
}
