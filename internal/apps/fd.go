package apps

import (
	"streamscale/internal/engine"
	"streamscale/internal/gen"
)

const (
	fdCustomers = 20_000
	fdFraudPct  = 0.02
	// fdWindow is the state-transition sequence window (2 events, §III-C).
	fdWindow = 2
	// fdThreshold flags transitions rarer than this under the learned model.
	fdThreshold = 0.05
)

// FraudDetection builds the FD topology (Fig 5b): source -> predict
// (fields customer) -> sink. The predict operator runs the missProbability
// outlier detector over per-customer state-transition sequences.
func FraudDetection(cfg Config) *engine.Topology {
	cfg = cfg.fill()
	t := engine.NewTopology("fd")

	t.AddSource("source", 1, func() engine.Source {
		return &txnSource{n: cfg.Events, seed: cfg.Seed}
	}, engine.Stream(engine.DefaultStream, "customer", "trans", "type")).
		WithProfile(engine.WorkProfile{
			CodeBytes:        7 << 10,
			UopsPerTuple:     350,
			BranchesPerTuple: 8,
			AvgTupleBytes:    56,
		})

	t.AddOp("predict", cfg.par(4), func() engine.Operator { return newPredictOp() },
		engine.Stream(engine.DefaultStream, "customer", "score")).
		SubDefault("source", engine.Fields("customer")).
		WithProfile(engine.WorkProfile{
			CodeBytes:             11 << 10,
			UopsPerTuple:          420,
			UopsPerEmit:           90,
			BranchesPerTuple:      14,
			StateBytes:            fdCustomers * 112, // per-customer sequences
			StateAccessesPerTuple: 5,
			Selectivity:           0.05, // only outliers flow downstream
			AvgTupleBytes:         48,
		})

	t.AddOp("sink", cfg.par(1), nopSink).
		SubDefault("predict", engine.Global()).
		WithProfile(sinkProfile())
	return t
}

type txnSource struct {
	n    int
	seed int64
	g    *gen.TransactionGen
}

func (s *txnSource) Prepare(ctx engine.Context) {
	s.g = gen.NewTransactionGen(s.seed+int64(ctx.ExecutorID()), fdCustomers, fdFraudPct)
}

func (s *txnSource) Next(ctx engine.Context) bool {
	if s.n <= 0 {
		return false
	}
	s.n--
	tx := s.g.Next()
	ctx.Emit(tx.CustomerID, tx.TransID, tx.Type)
	return s.n > 0
}

// predictOp implements the missProbability detector: it learns a global
// transition-count model online and flags customers whose recent
// transition sequence has low probability under it.
type predictOp struct {
	last   map[string][fdWindow]int
	seen   map[string]bool
	counts [gen.TransactionTypes][gen.TransactionTypes]float64
	rows   [gen.TransactionTypes]float64
}

func newPredictOp() *predictOp {
	return &predictOp{
		last: make(map[string][fdWindow]int),
		seen: make(map[string]bool),
	}
}

func (p *predictOp) Prepare(engine.Context) {}

func (p *predictOp) Process(ctx engine.Context, t engine.Tuple) {
	cust := t.Values[0].(string)
	typ := t.Values[2].(int)

	w := p.last[cust]
	known := p.seen[cust]
	prev := w[fdWindow-1]

	// Update the learned model with the observed transition.
	if known {
		p.counts[prev][typ]++
		p.rows[prev]++
	}
	// Score: probability of the transition under the model so far.
	if known && p.rows[prev] >= 20 {
		prob := p.counts[prev][typ] / p.rows[prev]
		if prob < fdThreshold {
			ctx.Emit(cust, prob)
		}
	}
	// Slide the window.
	copy(w[:], w[1:])
	w[fdWindow-1] = typ
	p.last[cust] = w
	p.seen[cust] = true
	ctx.Work(160, 6)
}
