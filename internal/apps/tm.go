package apps

import (
	"math"

	"streamscale/internal/engine"
	"streamscale/internal/gen"
)

// Traffic-monitoring sizing. Map matching scans a large road-network table
// per point, which is what gives TM the highest CPU and memory-bandwidth
// demand of the benchmark (Table IV: 98% CPU, 60% bandwidth).
const (
	tmGridRows = 1200
	tmGridCols = 1200
	tmVehicles = 200
	// tmIndexBytes is the shared spatial road index (R-tree nodes, road
	// headers): one object shared by all executors, so 3/4 of its
	// accesses are remote on a four-socket run (Table V).
	tmIndexBytes = 64 << 20
	// tmIndexTouchBytes is the per-event random access volume into the
	// shared index (pointer-chased node walks).
	tmIndexTouchBytes = 1 << 20
	// tmScratchBytes is the per-event candidate-corridor working buffer
	// (geometry copies, alignment lattices) streamed from executor-local
	// memory — the dominant bandwidth consumer, which scales per socket.
	tmScratchBytes = 120 << 20
	// tmMatchUops is the trajectory-alignment math per event.
	tmMatchUops = 210_000_000
)

// TrafficMonitoring builds the TM topology (Fig 5d): source -> map-match
// (shuffle) -> speed-calculate (fields road) -> sink.
func TrafficMonitoring(cfg Config) *engine.Topology {
	cfg = cfg.fill()
	t := engine.NewTopology("tm")
	grid := gen.NewRoadGrid(tmGridRows, tmGridCols)

	t.AddSource("source", 1, func() engine.Source {
		return &gpsSource{n: cfg.Events, seed: cfg.Seed, grid: grid}
	}, engine.Stream(engine.DefaultStream, "vehicle", "lat", "lon", "speed", "ts")).
		WithProfile(engine.WorkProfile{
			CodeBytes:        7 << 10,
			UopsPerTuple:     380,
			BranchesPerTuple: 8,
			AvgTupleBytes:    88,
		})

	t.AddOp("map-match", cfg.par(8), func() engine.Operator { return newMapMatchOp(grid) },
		engine.Stream(engine.DefaultStream, "road", "vehicle", "speed", "ts")).
		SubDefault("source", engine.Shuffle()).
		WithProfile(engine.WorkProfile{
			CodeBytes:             14 << 10,
			UopsPerTuple:          800 + tmMatchUops, // alignment math dominates
			UopsPerEmit:           90,
			BranchesPerTuple:      30 + tmMatchUops/8000,
			StateBytes:            tmIndexBytes,
			SharedState:           true, // one road index shared by all executors
			StateAccessesPerTuple: 6,
			AvgTupleBytes:         56,
		})

	t.AddOp("speed-calculate", cfg.par(2), func() engine.Operator { return newSpeedCalcOp() },
		engine.Stream(engine.DefaultStream, "road", "avgSpeed", "count")).
		SubDefault("map-match", engine.Fields("road")).
		WithProfile(engine.WorkProfile{
			CodeBytes:             8 << 10,
			UopsPerTuple:          280,
			UopsPerEmit:           80,
			BranchesPerTuple:      8,
			StateBytes:            (tmGridRows + tmGridCols) * 32,
			StateAccessesPerTuple: 2,
			AvgTupleBytes:         48,
		})

	t.AddOp("sink", cfg.par(1), nopSink).
		SubDefault("speed-calculate", engine.Global()).
		WithProfile(sinkProfile())
	return t
}

type gpsSource struct {
	n    int
	seed int64
	grid *gen.RoadGrid
	g    *gen.GPSGen
}

func (s *gpsSource) Prepare(ctx engine.Context) {
	s.g = gen.NewGPSGen(s.seed+int64(ctx.ExecutorID()), s.grid, tmVehicles)
}

func (s *gpsSource) Next(ctx engine.Context) bool {
	if s.n <= 0 {
		return false
	}
	s.n--
	p := s.g.Next()
	ctx.Emit(p.VehicleID, p.Lat, p.Lon, p.Speed, p.Timestamp)
	return s.n > 0
}

// mapMatchOp matches a GPS point to its road. The functional answer uses
// the grid's analytic structure; the cost model charges the real system's
// work — a candidate scan over a large share of the road-network table
// with per-road point-to-segment math.
type mapMatchOp struct {
	grid *gen.RoadGrid
}

func newMapMatchOp(g *gen.RoadGrid) *mapMatchOp { return &mapMatchOp{grid: g} }

func (m *mapMatchOp) Prepare(engine.Context) {}

func (m *mapMatchOp) Process(ctx engine.Context, t engine.Tuple) {
	lat := t.Values[1].(float64)
	lon := t.Values[2].(float64)

	road, dist := m.grid.NearestRoad(lat, lon)
	if dist > m.grid.Spacing {
		return // off-network point
	}
	// Charge the memory side of the real system's work: the shared
	// spatial index is pointer-chased (remote for most executors on a
	// multi-socket run) and a candidate corridor is materialized and
	// streamed through local working buffers. The alignment math itself
	// is part of the operator's WorkProfile, where the placement
	// optimizer can see it.
	ctx.AccessState(tmIndexTouchBytes)
	ctx.ScanScratch(tmScratchBytes)

	ctx.Emit(road, t.Values[0], t.Values[3], t.Values[4])
}

// speedCalcOp maintains per-road exponential average speeds.
type speedCalcOp struct {
	avg   map[int]float64
	count map[int]int64
}

func newSpeedCalcOp() *speedCalcOp {
	return &speedCalcOp{avg: map[int]float64{}, count: map[int]int64{}}
}

func (s *speedCalcOp) Prepare(engine.Context) {}
func (s *speedCalcOp) Process(ctx engine.Context, t engine.Tuple) {
	road := t.Values[0].(int)
	speed := t.Values[2].(float64)
	if math.IsNaN(speed) {
		return
	}
	s.count[road]++
	if s.count[road] == 1 {
		s.avg[road] = speed
	} else {
		s.avg[road] = 0.8*s.avg[road] + 0.2*speed
	}
	ctx.Emit(road, s.avg[road], s.count[road])
}
