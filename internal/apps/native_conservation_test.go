package apps

import (
	"testing"

	"streamscale/internal/engine"
)

// TestNativeConservationAllApps runs every benchmark application on the
// native runtime under both system profiles and checks the tuple-flow
// conservation invariants that hold regardless of operator semantics:
// sources emit, sink executor stats sum to the sink-event counter, and —
// under Storm's profile — every emitted root tuple tree is fully XOR-acked
// before the run drains (the strongest end-to-end "nothing was lost in a
// ring" check available).
func TestNativeConservationAllApps(t *testing.T) {
	for _, app := range BenchmarkNames() {
		for _, sysName := range []string{"storm", "flink"} {
			app, sysName := app, sysName
			t.Run(app+"/"+sysName, func(t *testing.T) {
				t.Parallel()
				sys := engine.Storm()
				if sysName == "flink" {
					sys = engine.Flink()
				}
				topo, err := Build(app, Config{Events: 300, Seed: 9})
				if err != nil {
					t.Fatal(err)
				}
				res, err := engine.RunNative(topo, engine.NativeConfig{
					System: sys, BatchSize: 4, Seed: 9,
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.SourceEvents == 0 {
					t.Fatal("no source events")
				}
				sinks := make(map[string]bool)
				for _, n := range topo.Nodes() {
					if !n.System && !n.IsSource() && len(topo.Consumers(n.Name)) == 0 {
						sinks[n.Name] = true
					}
				}
				var sinkSum, opTuples int64
				for _, e := range res.Executors {
					if sinks[e.Op] {
						sinkSum += e.Tuples
					}
					if e.Op != engine.AckerName {
						opTuples += e.Tuples
					}
				}
				if sinkSum != res.SinkEvents {
					t.Errorf("sink executor tuples %d != SinkEvents %d", sinkSum, res.SinkEvents)
				}
				switch sysName {
				case "storm":
					if res.AckerCompleted != res.SourceEvents {
						t.Errorf("acked %d of %d tuple trees", res.AckerCompleted, res.SourceEvents)
					}
				case "flink":
					if res.AckerCompleted != 0 {
						t.Errorf("flink profile acked %d trees, want 0", res.AckerCompleted)
					}
				}
				if opTuples == 0 && res.SinkEvents > 0 {
					t.Error("sink events recorded but no operator processed tuples")
				}
			})
		}
	}
}

// TestNativeChainingPreservesCounts verifies operator fusion on the native
// runtime: SD's moving-average -> spike-detection hop is chainable (equal
// parallelism, single shuffle subscription), and fusing it must not change
// what reaches the sink.
func TestNativeChainingPreservesCounts(t *testing.T) {
	build := func() *engine.Topology {
		topo, err := Build("sd", Config{Events: 500, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		return topo
	}
	if _, fused, err := engine.ChainTopology(build()); err != nil {
		t.Fatal(err)
	} else if len(fused) == 0 {
		t.Fatal("sd topology has no chainable pair; the fusion test is vacuous")
	}
	for _, sysName := range []string{"storm", "flink"} {
		sys := engine.Storm()
		if sysName == "flink" {
			sys = engine.Flink()
		}
		var events [2]int64
		for i, chain := range []bool{false, true} {
			res, err := engine.RunNative(build(), engine.NativeConfig{
				System: sys, BatchSize: 4, Seed: 4, Chaining: chain,
			})
			if err != nil {
				t.Fatal(err)
			}
			events[i] = res.SinkEvents
			if sysName == "storm" && res.AckerCompleted != res.SourceEvents {
				t.Errorf("%s chaining=%v: acked %d of %d tuple trees",
					sysName, chain, res.AckerCompleted, res.SourceEvents)
			}
		}
		if events[0] != events[1] {
			t.Errorf("%s: sink events unchained %d != chained %d", sysName, events[0], events[1])
		}
	}
}
