package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHistogramBasicStats(t *testing.T) {
	h := NewHistogram(0)
	for _, v := range []float64{1, 2, 3, 4, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Mean() != 3 {
		t.Fatalf("mean = %v, want 3", h.Mean())
	}
	if got := h.Stddev(); math.Abs(got-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("stddev = %v, want sqrt(2)", got)
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Fatalf("min/max = %v/%v, want 1/5", h.Min(), h.Max())
	}
}

// TestHistogramEmptyContract pins the unified empty-histogram contract:
// every accessor reads as 0 on an empty histogram (the ±Inf min/max
// sentinels are internal state only), and NaN arguments return NaN from
// both Quantile and CDFAt.
func TestHistogramEmptyContract(t *testing.T) {
	h := NewHistogram(0)
	if h.Mean() != 0 || h.Stddev() != 0 || h.Quantile(0.5) != 0 || h.CDFAt(10) != 0 {
		t.Fatal("empty histogram returned nonzero statistics")
	}
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty Min/Max = %v/%v, want 0/0", h.Min(), h.Max())
	}
	if got := h.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Fatalf("empty Quantile(NaN) = %v, want NaN", got)
	}
	if got := h.CDFAt(math.NaN()); !math.IsNaN(got) {
		t.Fatalf("empty CDFAt(NaN) = %v, want NaN", got)
	}
	if len(h.Samples()) != 0 {
		t.Fatalf("empty Samples() = %v, want empty", h.Samples())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if q := h.Quantile(0.5); q < 45 || q > 55 {
		t.Fatalf("median = %v, want ~50", q)
	}
	if q := h.Quantile(0.99); q < 95 {
		t.Fatalf("p99 = %v, want >= 95", q)
	}
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("p0 = %v, want 1", q)
	}
}

func TestHistogramCDF(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 10; i++ {
		h.Observe(float64(i))
	}
	if got := h.CDFAt(5); got != 0.5 {
		t.Fatalf("CDF(5) = %v, want 0.5", got)
	}
	if got := h.CDFAt(100); got != 1.0 {
		t.Fatalf("CDF(100) = %v, want 1", got)
	}
	if got := h.CDFAt(0); got != 0 {
		t.Fatalf("CDF(0) = %v, want 0", got)
	}
	if got := h.CDFAt(math.NaN()); !math.IsNaN(got) {
		t.Fatalf("CDFAt(NaN) = %v, want NaN", got)
	}
	if got := h.CDFAt(-3); got != 0 {
		t.Fatalf("CDFAt(-3) = %v, want 0", got)
	}
}

// TestQuantileNearestRank pins the clamped nearest-rank definition. Every
// expectation is exact: integer observations land on sub-bucket lower
// edges, so the bucket representative reproduces the sample bit-for-bit.
func TestQuantileNearestRank(t *testing.T) {
	obs := func(vals ...float64) *Histogram {
		h := NewHistogram(0)
		for _, v := range vals {
			h.Observe(v)
		}
		return h
	}
	tests := []struct {
		name string
		h    *Histogram
		q    float64
		want float64
	}{
		{"p0 is min", obs(1, 2, 3, 4, 5), 0, 1},
		{"p100 is max", obs(1, 2, 3, 4, 5), 1, 5},
		{"p50 odd n", obs(1, 2, 3, 4, 5), 0.5, 3},
		{"p50 even n", obs(1, 2, 3, 4), 0.5, 2},
		{"p99 small n is max", obs(1, 2, 3, 4, 5), 0.99, 5},
		{"p99 n=100", func() *Histogram {
			h := NewHistogram(0)
			for i := 1; i <= 100; i++ {
				h.Observe(float64(i))
			}
			return h
		}(), 0.99, 99},
		{"single sample", obs(7), 0.5, 7},
		{"q below range clamps", obs(1, 2, 3), -0.5, 1},
		{"q above range clamps", obs(1, 2, 3), 1.5, 3},
	}
	for _, tc := range tests {
		if got := tc.h.Quantile(tc.q); got != tc.want {
			t.Errorf("%s: Quantile(%v) = %v, want %v", tc.name, tc.q, got, tc.want)
		}
	}
	if got := obs(1, 2, 3).Quantile(math.NaN()); !math.IsNaN(got) {
		t.Errorf("Quantile(NaN) = %v, want NaN", got)
	}
	if got := NewHistogram(0).Quantile(math.NaN()); !math.IsNaN(got) {
		t.Errorf("empty Quantile(NaN) = %v, want NaN", got)
	}
}

// TestHistogramMomentsExact: the HDR buckets never touch the moment
// accumulators — count/mean/min/max stay exact regardless of volume.
func TestHistogramMomentsExact(t *testing.T) {
	h := NewHistogram(128)
	rng := rand.New(rand.NewSource(3))
	var sum float64
	n := 10_000
	for i := 0; i < n; i++ {
		v := rng.Float64() * 100
		sum += v
		h.Observe(v)
	}
	if h.Count() != int64(n) {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
	if math.Abs(h.Mean()-sum/float64(n)) > 1e-9 {
		t.Fatal("mean drifted")
	}
	if q := h.Quantile(0.5); q < 45 || q > 55 {
		t.Fatalf("median = %v, want ~50", q)
	}
}

// exactQuantile is the reference nearest-rank quantile over raw samples.
func exactQuantile(sorted []float64, q float64) float64 {
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// checkBoundedError asserts every probed quantile of h is within the
// documented bound of the exact nearest-rank quantile: relative error
// < 2^-(bits-1) for values in the relative regime, absolute error
// < 2^-20 below it. The histogram only ever reports the *lower edge* of
// the matched bucket clamped into [min, max], so the error is one-sided
// (underestimate) — checked too.
func checkBoundedError(t *testing.T, name string, h *Histogram, raw []float64, bits int) {
	t.Helper()
	sorted := append([]float64(nil), raw...)
	sort.Float64s(sorted)
	relBound := math.Ldexp(1, -(bits - 1))
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 0.9999, 1} {
		got := h.Quantile(q)
		want := exactQuantile(sorted, q)
		if got > want+1e-12 {
			t.Errorf("%s: Quantile(%v) = %v overestimates exact %v", name, q, got, want)
			continue
		}
		errAbs := want - got
		if errAbs <= 1.0/valueUnits {
			continue // absolute regime
		}
		if want > 0 && errAbs/want >= relBound {
			t.Errorf("%s: Quantile(%v) = %v, exact %v, rel err %.5f >= bound %.5f",
				name, q, got, want, errAbs/want, relBound)
		}
	}
}

// TestHistogramPropertyBoundedError exercises the documented error bound
// against adversarial distributions: heavy-tailed Zipf, bimodal with five
// orders of magnitude between the modes, and a uniform stream with a
// single enormous outlier.
func TestHistogramPropertyBoundedError(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dists := []struct {
		name string
		gen  func(i int) float64
	}{
		{"zipf", func() func(int) float64 {
			z := rand.NewZipf(rng, 1.2, 1, 1<<30)
			return func(int) float64 { return float64(z.Uint64()) + 0.5 }
		}()},
		{"bimodal", func(i int) float64 {
			if rng.Intn(100) < 95 {
				return 0.01 + rng.Float64()*0.02 // fast mode ~10-30us
			}
			return 1000 + rng.Float64()*500 // stall mode ~1-1.5s
		}},
		{"single-outlier", func(i int) float64 {
			if i == 123_456 {
				return 9e6
			}
			return 1 + rng.Float64()
		}},
	}
	for _, bits := range []int{6, 8, 10} {
		for _, d := range dists {
			h := NewHistogramPrecision(bits)
			raw := make([]float64, 200_000)
			for i := range raw {
				raw[i] = d.gen(i)
				h.Observe(raw[i])
			}
			checkBoundedError(t, d.name, h, raw, bits)
		}
	}
}

// TestPlantedOutlierSurfaces is the regression the decimating buffer
// provably failed: in a 10M-observation stream, (a) one planted outlier
// must survive to Quantile(1)/Max exactly (the old buffer kept ~65k strided
// samples, so a single outlier was dropped with probability ~1 - 65k/10M ≈
// 99.3%), and (b) a 0.011%-mass slow mode sitting just past the p99.99 rank
// must be visible at Quantile(0.9999) within the documented 0.79% bound.
func TestPlantedOutlierSurfaces(t *testing.T) {
	const n = 10_000_000
	rng := rand.New(rand.NewSource(42))
	h := NewHistogram(0)
	const outlier = 31337.5
	slow := 0
	for i := 0; i < n; i++ {
		switch {
		case i == n/2:
			h.Observe(outlier) // the single planted outlier
		case rng.Intn(100_000) < 11: // ~0.011% slow mode, beyond the p99.99 rank
			slow++
			h.Observe(500 + rng.Float64())
		default:
			h.Observe(rng.Float64()) // sub-ms bulk
		}
	}
	if got := h.Max(); got != outlier {
		t.Fatalf("Max = %v, want planted outlier %v", got, outlier)
	}
	if got := h.Quantile(1); got != outlier {
		t.Fatalf("Quantile(1) = %v, want planted outlier %v", got, outlier)
	}
	p9999 := h.Quantile(0.9999)
	if p9999 < 500*(1-1.0/128) || p9999 > 501 {
		t.Fatalf("p99.99 = %v, want within 0.79%% of the ~500 slow mode (%d slow obs)", p9999, slow)
	}
	if got := h.Count(); got != n {
		t.Fatalf("count = %d, want %d", got, n)
	}
}

// TestMergeMatchesSequential: merging per-shard histograms must reproduce
// the bucket state of a single histogram that saw every observation —
// quantiles and CDF bit-identical, count/min/max exact.
func TestMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	whole := NewHistogram(0)
	shards := []*Histogram{NewHistogram(0), NewHistogram(0), NewHistogram(0)}
	for i := 0; i < 30_000; i++ {
		v := math.Exp(rng.NormFloat64() * 3)
		whole.Observe(v)
		shards[i%3].Observe(v)
	}
	merged := NewHistogram(0)
	for _, s := range shards {
		merged.Merge(s)
	}
	if merged.Count() != whole.Count() || merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("merged count/min/max diverged: %d/%v/%v vs %d/%v/%v",
			merged.Count(), merged.Min(), merged.Max(), whole.Count(), whole.Min(), whole.Max())
	}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 0.9999, 1} {
		if a, b := merged.Quantile(q), whole.Quantile(q); a != b {
			t.Fatalf("Quantile(%v): merged %v != sequential %v", q, a, b)
		}
	}
	for _, x := range []float64{0.01, 1, 100, 1e6} {
		if a, b := merged.CDFAt(x), whole.CDFAt(x); a != b {
			t.Fatalf("CDFAt(%v): merged %v != sequential %v", x, a, b)
		}
	}
	if rel := math.Abs(merged.Mean()-whole.Mean()) / whole.Mean(); rel > 1e-12 {
		t.Fatalf("merged mean off by %v relative", rel)
	}
}

// TestMergeAssociative: (a⊕b)⊕c and a⊕(b⊕c) must agree on all
// bucket-derived statistics exactly (integer bucket counts are associative)
// and on moments up to float-addition reordering.
func TestMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	mk := func() *Histogram {
		h := NewHistogram(0)
		for i := 0; i < 5000; i++ {
			h.Observe(rng.Float64() * math.Pow(10, float64(rng.Intn(6))))
		}
		return h
	}
	a1, b1, c1 := mk(), mk(), mk()
	// Merge mutates the receiver, so run both orders on fresh copies.
	copyOf := func(h *Histogram) *Histogram {
		out := NewHistogram(0)
		out.Merge(h)
		return out
	}
	left := copyOf(a1)
	left.Merge(b1)
	left.Merge(c1)
	bc := copyOf(b1)
	bc.Merge(c1)
	right := copyOf(a1)
	right.Merge(bc)
	if left.Count() != right.Count() || left.Min() != right.Min() || left.Max() != right.Max() {
		t.Fatal("associativity broke count/min/max")
	}
	for _, q := range []float64{0, 0.5, 0.99, 0.9999, 1} {
		if x, y := left.Quantile(q), right.Quantile(q); x != y {
			t.Fatalf("Quantile(%v): (a+b)+c = %v, a+(b+c) = %v", q, x, y)
		}
	}
	if rel := math.Abs(left.Mean()-right.Mean()) / left.Mean(); rel > 1e-12 {
		t.Fatalf("associative merge mean off by %v relative", rel)
	}
}

// TestMergeMixedPrecision: merging across precisions re-buckets by
// representative — counts stay exact, values within the coarser bound.
func TestMergeMixedPrecision(t *testing.T) {
	coarse := NewHistogramPrecision(6)
	fine := NewHistogramPrecision(10)
	for i := 1; i <= 1000; i++ {
		coarse.Observe(float64(i))
		fine.Observe(float64(i) + 1000)
	}
	coarse.Merge(fine)
	if coarse.Count() != 2000 {
		t.Fatalf("count = %d, want 2000", coarse.Count())
	}
	if coarse.Min() != 1 || coarse.Max() != 2000 {
		t.Fatalf("min/max = %v/%v, want 1/2000", coarse.Min(), coarse.Max())
	}
	med := coarse.Quantile(0.5)
	if med < 1000*(1-1.0/32) || med > 1000 {
		t.Fatalf("median = %v, want within 2^-5 of 1000", med)
	}
}

// TestQuantileCachedAndAllocFree pins the satellite fix for the
// sort-per-call Quantile: repeated reads on an unchanged histogram are
// byte-identical and allocation-free, and an Observe invalidates the cache
// so the next read sees the new observation.
func TestQuantileCachedAndAllocFree(t *testing.T) {
	h := NewHistogram(0)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100_000; i++ {
		h.Observe(rng.ExpFloat64() * 10)
	}
	first := h.Quantile(0.99)
	for i := 0; i < 10; i++ {
		if got := h.Quantile(0.99); math.Float64bits(got) != math.Float64bits(first) {
			t.Fatalf("repeated Quantile drifted: %v vs %v", got, first)
		}
	}
	if allocs := testing.AllocsPerRun(100, func() {
		_ = h.Quantile(0.99)
		_ = h.CDFAt(5)
	}); allocs != 0 {
		t.Fatalf("Quantile/CDFAt on warm cache allocated %v times per run", allocs)
	}
	// Invalidation: a new maximum must show up at Quantile(1) immediately.
	h.Observe(1e9)
	if got := h.Quantile(1); got != 1e9 {
		t.Fatalf("Quantile(1) after Observe = %v, want 1e9 (stale cache?)", got)
	}
}

// TestZeroAndNegativeObservations: values <= 0 pool in the zero bucket;
// quantile ranks covered by it clamp into the exact [min, max] range.
func TestZeroAndNegativeObservations(t *testing.T) {
	h := NewHistogram(0)
	for i := 0; i < 10; i++ {
		h.Observe(0)
	}
	for i := 1; i <= 10; i++ {
		h.Observe(float64(i))
	}
	if got := h.Quantile(0.25); got != 0 {
		t.Fatalf("Quantile(0.25) = %v, want 0", got)
	}
	if got := h.CDFAt(0); got != 0.5 {
		t.Fatalf("CDFAt(0) = %v, want 0.5", got)
	}
	if got := h.Quantile(1); got != 10 {
		t.Fatalf("Quantile(1) = %v, want 10", got)
	}
	neg := NewHistogram(0)
	neg.Observe(-5)
	neg.Observe(-1)
	if neg.Min() != -5 || neg.Max() != -1 {
		t.Fatalf("negative min/max = %v/%v", neg.Min(), neg.Max())
	}
	// Negatives collapse into the zero bucket: the representative clamps to
	// the exact observed range.
	if got := neg.Quantile(0.5); got != -1 {
		t.Fatalf("all-negative Quantile(0.5) = %v, want clamp to max -1", got)
	}
}

// TestSamplesExpansion: Samples() synthesizes a sorted count-faithful
// expansion (representatives, not raw values).
func TestSamplesExpansion(t *testing.T) {
	h := NewHistogram(0)
	vals := []float64{5, 1, 0, 3, 3}
	for _, v := range vals {
		h.Observe(v)
	}
	s := h.Samples()
	if len(s) != len(vals) {
		t.Fatalf("len(Samples) = %d, want %d", len(s), len(vals))
	}
	if !sort.Float64sAreSorted(s) {
		t.Fatalf("Samples not sorted: %v", s)
	}
	want := []float64{0, 1, 3, 3, 5} // integers land on exact bucket edges
	for i, v := range s {
		if v != want[i] {
			t.Fatalf("Samples[%d] = %v, want %v (full %v)", i, v, want[i], s)
		}
	}
}

func TestHistogramPrecisionClamp(t *testing.T) {
	if h := NewHistogramPrecision(0); h.bits != defaultBits {
		t.Fatalf("bits(0) = %d, want default %d", h.bits, defaultBits)
	}
	if h := NewHistogramPrecision(1); h.bits != minBits {
		t.Fatalf("bits(1) = %d, want clamp %d", h.bits, minBits)
	}
	if h := NewHistogramPrecision(99); h.bits != maxBits {
		t.Fatalf("bits(99) = %d, want clamp %d", h.bits, maxBits)
	}
}

// TestBucketRoundTrip: bucketLow must be the exact inverse lower edge of
// bucketIndex across the linear and exponential regimes — every bucket's
// own lower edge re-buckets to itself.
func TestBucketRoundTrip(t *testing.T) {
	h := NewHistogramPrecision(8)
	for idx := 0; idx < 6000; idx++ {
		low := h.bucketLow(idx)
		u := low * valueUnits
		if u == 0 {
			continue
		}
		if got := h.bucketIndex(u); got != idx {
			t.Fatalf("bucketIndex(bucketLow(%d)) = %d", idx, got)
		}
	}
	// Saturation: enormous values must not index past the top bucket.
	hugeIdx := h.bucketIndex(maxUnits)
	h.Observe(1e300)
	topIdx := h.base + len(h.counts) - 1
	if h.counts[len(h.counts)-1] == 0 || topIdx > hugeIdx {
		t.Fatalf("saturating observation escaped the top bucket (top %d, cap %d)", topIdx, hugeIdx)
	}
	if h.Max() != 1e300 {
		t.Fatal("saturating observation lost exact max")
	}
}

func TestHistogramPropertyMeanWithinRange(t *testing.T) {
	f := func(vals []float64) bool {
		h := NewHistogram(64)
		for _, v := range vals {
			// Constrain to magnitudes metrics actually see (latencies,
			// byte counts); sumSq overflows near MaxFloat64 by design.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				continue
			}
			h.Observe(v)
		}
		if h.Count() == 0 {
			return true
		}
		return h.Mean() >= h.Min()-1e-9 && h.Mean() <= h.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramPropertyQuantileMonotone: quantiles are monotone in q and
// confined to [Min, Max] for arbitrary observation sets.
func TestHistogramPropertyQuantileMonotone(t *testing.T) {
	f := func(vals []float64, qs []float64) bool {
		h := NewHistogram(0)
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				continue
			}
			h.Observe(v)
		}
		if h.Count() == 0 {
			return true
		}
		sort.Float64s(qs)
		prev := math.Inf(-1)
		for _, q := range qs {
			if math.IsNaN(q) {
				continue
			}
			v := h.Quantile(q)
			if v < prev || v < h.Min() || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestThroughput(t *testing.T) {
	tp := Throughput{Events: 50_000, Seconds: 2}
	if tp.PerSecond() != 25_000 {
		t.Fatalf("rate = %v, want 25000", tp.PerSecond())
	}
	if tp.KPerSecond() != 25 {
		t.Fatalf("krate = %v, want 25", tp.KPerSecond())
	}
	if (Throughput{Events: 5}).PerSecond() != 0 {
		t.Fatal("zero-duration throughput not zero")
	}
}
