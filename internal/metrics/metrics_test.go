package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistogramBasicStats(t *testing.T) {
	h := NewHistogram(0)
	for _, v := range []float64{1, 2, 3, 4, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Mean() != 3 {
		t.Fatalf("mean = %v, want 3", h.Mean())
	}
	if got := h.Stddev(); math.Abs(got-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("stddev = %v, want sqrt(2)", got)
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Fatalf("min/max = %v/%v, want 1/5", h.Min(), h.Max())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0)
	if h.Mean() != 0 || h.Stddev() != 0 || h.Quantile(0.5) != 0 || h.CDFAt(10) != 0 {
		t.Fatal("empty histogram returned nonzero statistics")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if q := h.Quantile(0.5); q < 45 || q > 55 {
		t.Fatalf("median = %v, want ~50", q)
	}
	if q := h.Quantile(0.99); q < 95 {
		t.Fatalf("p99 = %v, want >= 95", q)
	}
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("p0 = %v, want 1", q)
	}
}

func TestHistogramCDF(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 10; i++ {
		h.Observe(float64(i))
	}
	if got := h.CDFAt(5); got != 0.5 {
		t.Fatalf("CDF(5) = %v, want 0.5", got)
	}
	if got := h.CDFAt(100); got != 1.0 {
		t.Fatalf("CDF(100) = %v, want 1", got)
	}
	if got := h.CDFAt(0); got != 0 {
		t.Fatalf("CDF(0) = %v, want 0", got)
	}
}

func TestHistogramDecimationKeepsExactMoments(t *testing.T) {
	h := NewHistogram(128)
	rng := rand.New(rand.NewSource(3))
	var sum float64
	n := 10_000
	for i := 0; i < n; i++ {
		v := rng.Float64() * 100
		sum += v
		h.Observe(v)
	}
	if h.Count() != int64(n) {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
	if math.Abs(h.Mean()-sum/float64(n)) > 1e-9 {
		t.Fatal("mean drifted under decimation")
	}
	if len(h.Samples()) > 128 {
		t.Fatalf("retained %d samples, cap 128", len(h.Samples()))
	}
	// Retained samples still approximate the distribution.
	if q := h.Quantile(0.5); q < 35 || q > 65 {
		t.Fatalf("median after decimation = %v, want ~50", q)
	}
}

// TestSamplesHeldAcrossDecimation pins the aliasing fix: a slice handed out
// by Samples() must keep its contents even when a later Observe triggers a
// decimation (the old code rebuilt the retained set in place over the same
// backing array, corrupting held slices).
func TestSamplesHeldAcrossDecimation(t *testing.T) {
	h := NewHistogram(8)
	for i := 0; i < 8; i++ {
		h.Observe(float64(i))
	}
	held := h.Samples()
	want := append([]float64(nil), held...)
	// Push the histogram through two more decimations.
	for i := 8; i < 64; i++ {
		h.Observe(float64(i))
	}
	for i, v := range held {
		if v != want[i] {
			t.Fatalf("held Samples() slice corrupted at %d: got %v, want %v (full: got %v, want %v)",
				i, v, want[i], held, want)
		}
	}
}

// TestQuantileNearestRank pins the clamped nearest-rank definition.
func TestQuantileNearestRank(t *testing.T) {
	obs := func(vals ...float64) *Histogram {
		h := NewHistogram(0)
		for _, v := range vals {
			h.Observe(v)
		}
		return h
	}
	tests := []struct {
		name string
		h    *Histogram
		q    float64
		want float64
	}{
		{"p0 is min", obs(1, 2, 3, 4, 5), 0, 1},
		{"p100 is max", obs(1, 2, 3, 4, 5), 1, 5},
		{"p50 odd n", obs(1, 2, 3, 4, 5), 0.5, 3},
		{"p50 even n", obs(1, 2, 3, 4), 0.5, 2},
		{"p99 small n is max", obs(1, 2, 3, 4, 5), 0.99, 5},
		{"p99 n=100", func() *Histogram {
			h := NewHistogram(0)
			for i := 1; i <= 100; i++ {
				h.Observe(float64(i))
			}
			return h
		}(), 0.99, 99},
		{"single sample", obs(7), 0.5, 7},
		{"q below range clamps", obs(1, 2, 3), -0.5, 1},
		{"q above range clamps", obs(1, 2, 3), 1.5, 3},
	}
	for _, tc := range tests {
		if got := tc.h.Quantile(tc.q); got != tc.want {
			t.Errorf("%s: Quantile(%v) = %v, want %v", tc.name, tc.q, got, tc.want)
		}
	}
	if got := obs(1, 2, 3).Quantile(math.NaN()); !math.IsNaN(got) {
		t.Errorf("Quantile(NaN) = %v, want NaN", got)
	}
	if got := NewHistogram(0).Quantile(math.NaN()); !math.IsNaN(got) {
		t.Errorf("empty Quantile(NaN) = %v, want NaN", got)
	}
}

// TestDecimationUniformStride feeds a monotone ramp (value == observation
// index) through several decimations and asserts the retained samples are a
// uniform stride of the observation stream — for both even and odd caps.
// The odd-cap case is the regression: keeping even buffer positions left
// the incoming observation half a stride behind the last retained one.
func TestDecimationUniformStride(t *testing.T) {
	for _, cap := range []int{8, 9, 64, 101} {
		h := NewHistogram(cap)
		n := cap * 16 // >= 4 decimations
		for i := 0; i < n; i++ {
			h.Observe(float64(i))
		}
		s := h.Samples()
		if len(s) < 3 {
			t.Fatalf("cap %d: retained only %d samples", cap, len(s))
		}
		first := s[1] - s[0]
		for i := 1; i < len(s); i++ {
			if d := s[i] - s[i-1]; d != first {
				t.Errorf("cap %d: non-uniform stride: gap %v at %d, want %v (retained %v)",
					cap, d, i, first, s)
				break
			}
		}
	}
}

func TestHistogramPropertyMeanWithinRange(t *testing.T) {
	f := func(vals []float64) bool {
		h := NewHistogram(64)
		for _, v := range vals {
			// Constrain to magnitudes metrics actually see (latencies,
			// byte counts); sumSq overflows near MaxFloat64 by design.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				continue
			}
			h.Observe(v)
		}
		if h.Count() == 0 {
			return true
		}
		return h.Mean() >= h.Min()-1e-9 && h.Mean() <= h.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestThroughput(t *testing.T) {
	tp := Throughput{Events: 50_000, Seconds: 2}
	if tp.PerSecond() != 25_000 {
		t.Fatalf("rate = %v, want 25000", tp.PerSecond())
	}
	if tp.KPerSecond() != 25 {
		t.Fatalf("krate = %v, want 25", tp.KPerSecond())
	}
	if (Throughput{Events: 5}).PerSecond() != 0 {
		t.Fatal("zero-duration throughput not zero")
	}
}
