// Package metrics provides the measurement primitives used by both the
// native and simulated runtimes: throughput meters, latency histograms with
// quantiles, and simple gauges.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Histogram collects float64 observations (latencies, footprints) and
// reports distribution statistics. For bounded memory it keeps up to a cap
// of raw samples using reservoir-free striding: after the cap is hit it
// keeps every k-th observation, doubling k each time the buffer refills.
// Mean, count, and standard deviation are always exact.
type Histogram struct {
	samples []float64
	cap     int
	stride  int
	skip    int

	count int64
	sum   float64
	sumSq float64
	min   float64
	max   float64
}

// NewHistogram creates a histogram keeping at most cap raw samples
// (cap <= 0 selects a default of 65536).
func NewHistogram(cap int) *Histogram {
	if cap <= 0 {
		cap = 65536
	}
	return &Histogram{cap: cap, stride: 1, min: math.Inf(1), max: math.Inf(-1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.count++
	h.sum += v
	h.sumSq += v * v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	if h.skip > 0 {
		h.skip--
		return
	}
	h.skip = h.stride - 1
	if len(h.samples) >= h.cap {
		// Decimate: keep every other sample, double the stride. Two
		// subtleties are load-bearing here.
		//
		// The kept samples go into a fresh slice: Samples() hands out the
		// live backing array, so rewriting it in place would corrupt a
		// slice a caller still holds from before the decimation.
		//
		// The retained samples are spaced `stride` observations apart and
		// the incoming observation v sits exactly `stride` past the last
		// one. Keeping even positions of an odd-length buffer would retain
		// the last sample and then append v only one old stride (half the
		// new stride) behind it, breaking uniform coverage of the
		// observation stream; an odd-length buffer therefore keeps odd
		// positions, whose last element sits one old stride earlier.
		start := 0
		if len(h.samples)%2 == 1 {
			start = 1
		}
		kept := make([]float64, 0, (len(h.samples)-start+1)/2+1)
		for i := start; i < len(h.samples); i += 2 {
			kept = append(kept, h.samples[i])
		}
		h.samples = kept
		h.stride *= 2
		h.skip = h.stride - 1
	}
	h.samples = append(h.samples, v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the exact mean of all observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Stddev returns the exact population standard deviation.
func (h *Histogram) Stddev() float64 {
	if h.count == 0 {
		return 0
	}
	m := h.Mean()
	v := h.sumSq/float64(h.count) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the q-quantile over the retained samples using the
// nearest-rank definition: the smallest retained sample whose cumulative
// frequency is >= q. q is clamped into [0, 1] (the old floor(q*(len-1))
// indexing biased high quantiles low on small sample sets and silently
// mis-indexed for out-of-range q). A NaN q returns NaN; an empty histogram
// returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	if math.IsNaN(q) {
		return math.NaN()
	}
	if len(h.samples) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	s := append([]float64(nil), h.samples...)
	sort.Float64s(s)
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// CDFAt returns the fraction of retained samples <= x.
func (h *Histogram) CDFAt(x float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	n := 0
	for _, v := range h.samples {
		if v <= x {
			n++
		}
	}
	return float64(n) / float64(len(h.samples))
}

// Samples returns the retained samples (shared slice; do not mutate).
// The histogram never rewrites elements already handed out — later
// observations only append past the returned length, and decimation
// rebuilds into a fresh slice — so a held slice stays valid across
// further Observe calls.
func (h *Histogram) Samples() []float64 { return h.samples }

// Throughput expresses a count over a duration in events per second.
type Throughput struct {
	Events  int64
	Seconds float64
}

// PerSecond returns events per second (0 for a zero duration).
func (t Throughput) PerSecond() float64 {
	if t.Seconds <= 0 {
		return 0
	}
	return float64(t.Events) / t.Seconds
}

// KPerSecond returns thousands of events per second.
func (t Throughput) KPerSecond() float64 { return t.PerSecond() / 1e3 }

func (t Throughput) String() string {
	return fmt.Sprintf("%.1f k events/s", t.KPerSecond())
}
