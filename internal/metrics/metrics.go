// Package metrics provides the measurement primitives used by both the
// native and simulated runtimes: throughput meters, latency histograms with
// quantiles, and simple gauges.
package metrics

import (
	"fmt"
	"math"
)

// Histogram collects float64 observations (latencies, footprints) and
// reports distribution statistics. It is an HDR-style bounded-relative-error
// histogram: observations are bucketed into power-of-two exponent ranges,
// each split into 2^bits linear sub-buckets, so memory is O(log(range)) and
// *every* observation contributes to every quantile — there is no sample
// decimation and therefore no tail loss, no matter how many observations
// stream in. Count, mean, standard deviation, min, and max are always exact.
//
// Precision: a bucket spanning [low, low+width) reports its lower edge, so a
// quantile underestimates the true nearest-rank value by a relative error
// < 2^-(bits-1) (0.79% at the default bits=8) for any value >= 2^(bits-1)
// valueUnits (~1.2e-4 at the default precision); below that the error is
// absolute and < 1/valueUnits (~1e-6). Values are scaled by valueUnits
// (2^20) before bucketing so sub-millisecond latencies retain fine absolute
// resolution before the relative regime takes over. Values <= 0 (and NaN,
// which has no order) are counted in a dedicated zero bucket; values above
// 2^42 valueUnits saturate into the top bucket (min/max stay exact).
type Histogram struct {
	bits   int     // sub-bucket bits; relative error < 2^-(bits-1)
	counts []int64 // dense bucket counts; counts[i] is bucket base+i
	base   int     // global index of counts[0]
	zero   int64   // observations <= 0 (or NaN)

	count int64
	sum   float64
	sumSq float64
	min   float64
	max   float64

	cum   []int64 // cached cumulative counts; cum[i+1] = zero + sum(counts[:i+1])
	cumOK bool
}

const (
	// valueUnits scales observations into fixed-point bucket units.
	valueUnits = 1 << 20
	// defaultBits gives 256 linear sub-buckets per power of two:
	// relative error < 1/128 = 0.79%, comfortably under the 1% target.
	defaultBits = 8
	minBits     = 4
	maxBits     = 14
)

// maxUnits caps the bucketable range; larger scaled values saturate into
// the top bucket (their exact magnitude survives in min/max/sum).
var maxUnits = math.Ldexp(1, 62)

// NewHistogram creates a histogram at the default precision (bits=8,
// relative error < 0.79%). The capHint parameter is retained for
// compatibility with the former fixed-capacity sample buffer and is
// ignored: bucket storage grows on demand and is O(log(range)).
func NewHistogram(capHint int) *Histogram {
	_ = capHint
	return NewHistogramPrecision(defaultBits)
}

// NewHistogramPrecision creates a histogram with 2^bits linear sub-buckets
// per power of two, i.e. relative error < 2^-(bits-1). bits is clamped into
// [4, 14]; bits <= 0 selects the default (8).
func NewHistogramPrecision(bits int) *Histogram {
	if bits <= 0 {
		bits = defaultBits
	}
	if bits < minBits {
		bits = minBits
	}
	if bits > maxBits {
		bits = maxBits
	}
	return &Histogram{bits: bits, min: math.Inf(1), max: math.Inf(-1)}
}

// bucketIndex maps a scaled value u (in [0, maxUnits]) to a global bucket
// index. Indices [0, 2^bits) are the linear region (width one unit); above
// that each power of two is split into 2^(bits-1) sub-buckets.
func (h *Histogram) bucketIndex(u float64) int {
	top := 1 << h.bits
	if u < float64(top) {
		return int(u)
	}
	exp := math.Ilogb(u)            // floor(log2 u) >= bits
	bkt := exp - h.bits + 1         // power-of-two bucket, >= 1
	sub := int(math.Ldexp(u, -bkt)) // floor(u / 2^bkt) in [2^(bits-1), 2^bits)
	half := top >> 1
	return top + (bkt-1)*half + (sub - half)
}

// bucketLow is the inverse of bucketIndex: the lower edge of bucket idx,
// in observation units (already divided back by valueUnits).
func (h *Histogram) bucketLow(idx int) float64 {
	top := 1 << h.bits
	if idx < top {
		return float64(idx) / valueUnits
	}
	half := top >> 1
	r := idx - top
	bkt := r/half + 1
	sub := r%half + half
	return math.Ldexp(float64(sub), bkt) / valueUnits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h.bits == 0 {
		h.bits = defaultBits // zero-value receiver adopts the default precision
	}
	h.count++
	h.sum += v
	h.sumSq += v * v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.cumOK = false
	if v <= 0 || math.IsNaN(v) {
		h.zero++
		return
	}
	u := v * valueUnits
	if u > maxUnits {
		u = maxUnits
	}
	h.addCount(h.bucketIndex(u), 1)
}

// addCount adds n observations to global bucket idx, growing the dense
// counts window as needed (amortized doubling on the high side; low-side
// growth is exact because values trending downward are rare).
func (h *Histogram) addCount(idx int, n int64) {
	switch {
	case len(h.counts) == 0:
		if cap(h.counts) == 0 {
			h.counts = make([]int64, 1, 64)
		} else {
			h.counts = h.counts[:1]
			h.counts[0] = 0
		}
		h.base = idx
	case idx < h.base:
		grown := make([]int64, len(h.counts)+(h.base-idx))
		copy(grown[h.base-idx:], h.counts)
		h.counts = grown
		h.base = idx
	case idx >= h.base+len(h.counts):
		need := idx - h.base + 1
		if need <= cap(h.counts) {
			tail := h.counts[len(h.counts):need]
			for i := range tail {
				tail[i] = 0
			}
			h.counts = h.counts[:need]
		} else {
			c := 2 * cap(h.counts)
			if c < need {
				c = need
			}
			grown := make([]int64, need, c)
			copy(grown, h.counts)
			h.counts = grown
		}
	}
	h.counts[idx-h.base] += n
}

// Merge folds every observation of o into h, exactly: bucket counts add
// integer-wise (re-bucketed by representative if precisions differ),
// count/min/max are exact, and sum/sumSq add as float64 partial sums (so
// the merged mean equals the sequential mean up to float addition order).
// Merging is the lossless way to combine per-executor histograms — unlike
// re-observing Samples(), no count or tail mass is dropped.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	if h.bits == 0 {
		h.bits = o.bits
	}
	h.cumOK = false
	h.count += o.count
	h.sum += o.sum
	h.sumSq += o.sumSq
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.zero += o.zero
	if o.bits == h.bits {
		for i, c := range o.counts {
			if c != 0 {
				h.addCount(o.base+i, c)
			}
		}
		return
	}
	for i, c := range o.counts {
		if c == 0 {
			continue
		}
		u := o.bucketLow(o.base+i) * valueUnits
		if u > maxUnits {
			u = maxUnits
		}
		h.addCount(h.bucketIndex(u), c)
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the exact mean of all observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Stddev returns the exact population standard deviation.
func (h *Histogram) Stddev() float64 {
	if h.count == 0 {
		return 0
	}
	m := h.Mean()
	v := h.sumSq/float64(h.count) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Min returns the smallest observation. An empty histogram returns 0 (the
// internal state and gob wire keep the +Inf sentinel; the accessor contract
// is uniformly "empty reads as 0", matching Mean/Quantile).
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 when empty, as Min).
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// cumulative returns the cached cumulative-count view, rebuilding it only
// when observations arrived since the last quantile read. cum[0] is the
// zero bucket; cum[i+1] adds counts[i]. Repeated Quantile/CDFAt calls on an
// unchanged histogram are O(log buckets) and allocation-free.
func (h *Histogram) cumulative() []int64 {
	if h.cumOK && len(h.cum) == len(h.counts)+1 {
		return h.cum
	}
	if cap(h.cum) < len(h.counts)+1 {
		h.cum = make([]int64, len(h.counts)+1)
	}
	h.cum = h.cum[:len(h.counts)+1]
	h.cum[0] = h.zero
	for i, c := range h.counts {
		h.cum[i+1] = h.cum[i] + c
	}
	h.cumOK = true
	return h.cum
}

// clamp pins a bucket representative into the exact observed range, so
// Quantile(0) is exactly Min and no quantile escapes [Min, Max].
func (h *Histogram) clamp(v float64) float64 {
	if v < h.min {
		return h.min
	}
	if v > h.max {
		return h.max
	}
	return v
}

// Quantile returns the q-quantile over all observations using the
// nearest-rank definition: the lower edge of the bucket holding the
// smallest observation whose cumulative frequency is >= q, clamped into
// [Min, Max]. The result underestimates the true nearest-rank sample by a
// relative error < 2^-(bits-1) (0.79% at default precision); q >= 1 returns
// the exact Max, so a single planted outlier always surfaces. q is clamped
// into [0, 1]; a NaN q returns NaN; an empty histogram returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	if math.IsNaN(q) {
		return math.NaN()
	}
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank >= h.count {
		return h.max
	}
	cum := h.cumulative()
	if rank <= cum[0] {
		return h.clamp(0)
	}
	// Smallest bucket i (1-based in cum) with cum[i] >= rank.
	lo, hi := 1, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] >= rank {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return h.clamp(h.bucketLow(h.base + lo - 1))
}

// CDFAt returns the fraction of observations <= x, resolved at bucket
// granularity: the bucket containing x counts fully, so the result may
// overestimate by at most the bucket's mass (relative width < 2^-(bits-1)).
// A NaN x returns NaN (matching Quantile's NaN contract); an empty
// histogram returns 0; x < 0 returns 0 (sub-zero observations are pooled
// in the zero bucket and cannot be resolved below it).
func (h *Histogram) CDFAt(x float64) float64 {
	if math.IsNaN(x) {
		return math.NaN()
	}
	if h.count == 0 {
		return 0
	}
	if x < 0 {
		return 0
	}
	cum := h.cumulative()
	u := x * valueUnits
	if u > maxUnits {
		u = maxUnits
	}
	j := h.bucketIndex(u) - h.base
	if j < 0 {
		return float64(cum[0]) / float64(h.count)
	}
	if j >= len(h.counts) {
		j = len(h.counts) - 1
	}
	return float64(cum[j+1]) / float64(h.count)
}

// Samples synthesizes a sorted expansion of the histogram: each bucket's
// lower-edge representative repeated once per observation (the zero bucket
// expands to 0s). It allocates O(Count) — prefer Merge to combine
// histograms and Quantile/CDFAt to read them; Samples exists for
// compatibility with callers that iterate raw values.
func (h *Histogram) Samples() []float64 {
	out := make([]float64, 0, h.count)
	for i := int64(0); i < h.zero; i++ {
		out = append(out, 0)
	}
	for i, c := range h.counts {
		v := h.bucketLow(h.base + i)
		for ; c > 0; c-- {
			out = append(out, v)
		}
	}
	return out
}

// Throughput expresses a count over a duration in events per second.
type Throughput struct {
	Events  int64
	Seconds float64
}

// PerSecond returns events per second (0 for a zero duration).
func (t Throughput) PerSecond() float64 {
	if t.Seconds <= 0 {
		return 0
	}
	return float64(t.Events) / t.Seconds
}

// KPerSecond returns thousands of events per second.
func (t Throughput) KPerSecond() float64 { return t.PerSecond() / 1e3 }

func (t Throughput) String() string {
	return fmt.Sprintf("%.1f k events/s", t.KPerSecond())
}
