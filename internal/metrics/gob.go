package metrics

import (
	"bytes"
	"encoding/gob"
)

// histogramWire mirrors Histogram's unexported state one-for-one so the
// persistent result cache can round-trip histograms losslessly. Every
// field participates: quantiles depend on the retained samples, and
// resuming observation after a decode needs cap/stride/skip to continue
// the decimation schedule exactly where it stopped.
type histogramWire struct {
	Samples []float64
	Cap     int
	Stride  int
	Skip    int
	Count   int64
	Sum     float64
	SumSq   float64
	Min     float64
	Max     float64
}

// GobEncode implements gob.GobEncoder, serializing the full histogram
// state including the ±Inf min/max sentinels of an empty histogram.
func (h *Histogram) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(histogramWire{
		Samples: h.samples,
		Cap:     h.cap,
		Stride:  h.stride,
		Skip:    h.skip,
		Count:   h.count,
		Sum:     h.sum,
		SumSq:   h.sumSq,
		Min:     h.min,
		Max:     h.max,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder, replacing the receiver's state.
func (h *Histogram) GobDecode(data []byte) error {
	var w histogramWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	*h = Histogram{
		samples: w.Samples,
		cap:     w.Cap,
		stride:  w.Stride,
		skip:    w.Skip,
		count:   w.Count,
		sum:     w.Sum,
		sumSq:   w.SumSq,
		min:     w.Min,
		max:     w.Max,
	}
	return nil
}
