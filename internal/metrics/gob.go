package metrics

import (
	"bytes"
	"encoding/gob"
)

// histogramWire mirrors Histogram's unexported state one-for-one so the
// persistent result cache can round-trip histograms losslessly. Every
// field participates: quantiles depend on the bucket counts and window
// offset, and resuming observation after a decode needs the precision and
// exact moments to continue exactly where the encode stopped. The cached
// cumulative view is derived state and is rebuilt on demand after decode.
type histogramWire struct {
	Bits   int
	Base   int
	Counts []int64
	Zero   int64
	Count  int64
	Sum    float64
	SumSq  float64
	Min    float64
	Max    float64
}

// GobEncode implements gob.GobEncoder, serializing the full histogram
// state including the ±Inf min/max sentinels of an empty histogram.
func (h *Histogram) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(histogramWire{
		Bits:   h.bits,
		Base:   h.base,
		Counts: h.counts,
		Zero:   h.zero,
		Count:  h.count,
		Sum:    h.sum,
		SumSq:  h.sumSq,
		Min:    h.min,
		Max:    h.max,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder, replacing the receiver's state.
func (h *Histogram) GobDecode(data []byte) error {
	var w histogramWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	*h = Histogram{
		bits:   w.Bits,
		base:   w.Base,
		counts: w.Counts,
		zero:   w.Zero,
		count:  w.Count,
		sum:    w.Sum,
		sumSq:  w.SumSq,
		min:    w.Min,
		max:    w.Max,
	}
	return nil
}
