package metrics

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func roundTrip(t *testing.T, h *Histogram) *Histogram {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(h); err != nil {
		t.Fatalf("encode: %v", err)
	}
	out := new(Histogram)
	if err := gob.NewDecoder(&buf).Decode(out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out
}

// wireEqual compares the wire-relevant state (everything but the derived
// quantile cache, which is rebuilt on demand after decode).
func wireEqual(a, b *Histogram) bool {
	return a.bits == b.bits && a.base == b.base && a.zero == b.zero &&
		a.count == b.count && a.sum == b.sum && a.sumSq == b.sumSq &&
		(a.min == b.min || (math.IsInf(a.min, 1) && math.IsInf(b.min, 1))) &&
		(a.max == b.max || (math.IsInf(a.max, -1) && math.IsInf(b.max, -1))) &&
		reflect.DeepEqual(a.counts, b.counts)
}

func TestHistogramGobRoundTrip(t *testing.T) {
	cases := map[string]*Histogram{
		"empty": NewHistogram(0),
		"small": func() *Histogram {
			h := NewHistogram(16)
			for i := 0; i < 10; i++ {
				h.Observe(float64(i) * 1.5)
			}
			return h
		}(),
		"wide": func() *Histogram {
			// Span several orders of magnitude plus the zero bucket so the
			// dense window, base offset, and zero count all participate.
			h := NewHistogramPrecision(10)
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < 5000; i++ {
				h.Observe(math.Exp(rng.NormFloat64()*4) - 1)
			}
			return h
		}(),
	}
	for name, h := range cases {
		t.Run(name, func(t *testing.T) {
			got := roundTrip(t, h)
			if !wireEqual(h, got) {
				t.Fatalf("round trip not lossless:\n have %+v\n got  %+v", h, got)
			}
			// The decode must also leave the histogram usable: further
			// observations land in identical buckets with identical moments
			// — the mid-stream round-trip contract the memo cache needs.
			h.Observe(42)
			got.Observe(42)
			h.Observe(0.0001)
			got.Observe(0.0001)
			if !wireEqual(h, got) {
				t.Fatalf("post-decode Observe diverged:\n have %+v\n got  %+v", h, got)
			}
			for _, q := range []float64{0, 0.5, 0.99, 1} {
				if a, b := h.Quantile(q), got.Quantile(q); a != b {
					t.Fatalf("post-decode Quantile(%v): %v vs %v", q, a, b)
				}
			}
		})
	}
}

// TestHistogramGobMidStreamInterleaved round-trips at several points of a
// single observation stream and checks the decoded copy tracks the
// original bit-for-bit to the end.
func TestHistogramGobMidStreamInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h := NewHistogram(0)
	var snap *Histogram
	for i := 0; i < 20_000; i++ {
		v := rng.ExpFloat64() * 50
		h.Observe(v)
		if snap != nil {
			snap.Observe(v)
		}
		if i == 4999 {
			snap = roundTrip(t, h)
		}
		if i == 14_999 {
			snap = roundTrip(t, snap) // second hop: decode of a decode
		}
	}
	if !wireEqual(h, snap) {
		t.Fatalf("mid-stream round-trip diverged:\n have %+v\n got  %+v", h, snap)
	}
}

func TestHistogramGobPreservesStats(t *testing.T) {
	h := NewHistogram(64)
	for _, v := range []float64{3, 1, 4, 1, 5, 9, 2, 6} {
		h.Observe(v)
	}
	got := roundTrip(t, h)
	if got.Count() != h.Count() || got.Mean() != h.Mean() ||
		got.Stddev() != h.Stddev() || got.Min() != h.Min() || got.Max() != h.Max() {
		t.Fatalf("summary stats changed: %+v vs %+v", got, h)
	}
	if got.Quantile(0.5) != h.Quantile(0.5) || got.CDFAt(4) != h.CDFAt(4) {
		t.Fatalf("sample-derived stats changed")
	}
}
