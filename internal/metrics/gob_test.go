package metrics

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
)

func roundTrip(t *testing.T, h *Histogram) *Histogram {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(h); err != nil {
		t.Fatalf("encode: %v", err)
	}
	out := new(Histogram)
	if err := gob.NewDecoder(&buf).Decode(out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out
}

func TestHistogramGobRoundTrip(t *testing.T) {
	cases := map[string]*Histogram{
		"empty": NewHistogram(0),
		"small": func() *Histogram {
			h := NewHistogram(16)
			for i := 0; i < 10; i++ {
				h.Observe(float64(i) * 1.5)
			}
			return h
		}(),
		"decimated": func() *Histogram {
			// Overflow the sample cap several times so stride/skip are
			// mid-schedule and the retained set is a strided subset.
			h := NewHistogram(32)
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i%97) / 3)
			}
			return h
		}(),
	}
	for name, h := range cases {
		t.Run(name, func(t *testing.T) {
			got := roundTrip(t, h)
			if !reflect.DeepEqual(h, got) {
				t.Fatalf("round trip not lossless:\n have %+v\n got  %+v", h, got)
			}
			// The decode must also leave the histogram usable: further
			// observations continue the decimation schedule identically.
			h.Observe(42)
			got.Observe(42)
			if !reflect.DeepEqual(h, got) {
				t.Fatalf("post-decode Observe diverged:\n have %+v\n got  %+v", h, got)
			}
		})
	}
}

func TestHistogramGobPreservesStats(t *testing.T) {
	h := NewHistogram(64)
	for _, v := range []float64{3, 1, 4, 1, 5, 9, 2, 6} {
		h.Observe(v)
	}
	got := roundTrip(t, h)
	if got.Count() != h.Count() || got.Mean() != h.Mean() ||
		got.Stddev() != h.Stddev() || got.Min() != h.Min() || got.Max() != h.Max() {
		t.Fatalf("summary stats changed: %+v vs %+v", got, h)
	}
	if got.Quantile(0.5) != h.Quantile(0.5) || got.CDFAt(4) != h.CDFAt(4) {
		t.Fatalf("sample-derived stats changed")
	}
}
