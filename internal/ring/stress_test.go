package ring

import (
	"os"
	"runtime"
	"sync"
	"testing"
)

// TestRingStress is the high-iteration race-detector stress test ci.sh
// runs with DSP_STRESS=1 and -race. A tiny capacity forces constant wrap,
// full-ring backpressure, and waiter park/wake cycles; mixing the blocking,
// Try, and batch variants on both sides exercises every ordering the
// protocol allows. Sequence checks make lost or reordered items failures
// even when the race detector stays quiet.
func TestRingStress(t *testing.T) {
	if os.Getenv("DSP_STRESS") == "" {
		t.Skip("set DSP_STRESS=1 to run the high-iteration stress test")
	}

	t.Run("SPSC", func(t *testing.T) {
		// Sized for a single race-instrumented core: every full/empty
		// encounter costs a spin-yield phase, so the item count buys park
		// cycles, not throughput.
		const total = 1 << 17
		r := NewSPSC[uint64](32, nil)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			var batch [7]uint64
			next := uint64(0)
			for next < total {
				switch next % 3 {
				case 0:
					r.Push(next)
					next++
				case 1:
					if !r.TryPush(next) {
						runtime.Gosched()
						continue
					}
					next++
				default:
					n := 0
					for i := range batch {
						if next+uint64(i) >= total {
							break
						}
						batch[i] = next + uint64(i)
						n++
					}
					next += uint64(r.PushN(batch[:n]))
				}
			}
		}()

		got := uint64(0)
		check := func(v uint64) {
			if v != got {
				t.Fatalf("popped %d, want %d", v, got)
			}
			got++
		}
		var buf [5]uint64
		for got < total {
			switch got % 3 {
			case 0:
				check(r.Pop())
			case 1:
				if v, ok := r.TryPop(); ok {
					check(v)
				} else {
					runtime.Gosched()
				}
			default:
				n := r.PopN(buf[:])
				for i := 0; i < n; i++ {
					check(buf[i])
				}
				if n == 0 {
					runtime.Gosched()
				}
			}
		}
		wg.Wait()
		if v, ok := r.TryPop(); ok {
			t.Fatalf("ring not empty after drain: %d", v)
		}
	})

	t.Run("MPSC", func(t *testing.T) {
		const (
			producers = 4
			perProd   = 1 << 14
		)
		m := NewMPSC[uint64]()
		lanes := make([]*SPSC[uint64], producers)
		for i := range lanes {
			lanes[i] = m.AddProducer(32)
		}
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				lane := lanes[p]
				for seq := uint64(0); seq < perProd; seq++ {
					v := uint64(p)<<32 | seq
					if seq%2 == 0 {
						lane.Push(v)
					} else {
						for !lane.TryPush(v) {
							runtime.Gosched()
						}
					}
				}
			}(p)
		}

		next := make([]uint64, producers)
		for n := 0; n < producers*perProd; n++ {
			v, lane := m.Pop()
			p := int(v >> 32)
			if p != lane {
				t.Fatalf("value tagged producer %d arrived on lane %d", p, lane)
			}
			if seq := v & (1<<32 - 1); seq != next[p] {
				t.Fatalf("lane %d: got seq %d, want %d", p, seq, next[p])
			}
			next[p]++
		}
		wg.Wait()
		if _, _, ok := m.TryPop(); ok {
			t.Fatal("MPSC not empty after drain")
		}
	})
}
