package ring

import (
	"testing"
	"unsafe"
)

// TestSPSCFieldLineLayout pins the repadded SPSC layout with real offsets.
// The original padding assumed head began cache-line-aligned when it began
// at offset 120, which put cachedTail (consumer-written) and tail
// (producer-written) on the same 64-byte line — false sharing on the two
// hottest words in the ring. dsplint's linelayout analyzer checks the same
// property symbolically; this test checks it on the compiled struct, so it
// also guards against a Go layout-rule change shifting the offsets.
func TestSPSCFieldLineLayout(t *testing.T) {
	var r SPSC[int64]
	offs := map[string]uintptr{
		"head":       unsafe.Offsetof(r.head),
		"cachedTail": unsafe.Offsetof(r.cachedTail),
		"tail":       unsafe.Offsetof(r.tail),
		"cachedHead": unsafe.Offsetof(r.cachedHead),
	}
	line := func(name string) uintptr { return offs[name] / cacheLine }

	if offs["head"]%cacheLine != 0 {
		t.Errorf("head at offset %d, not line-aligned", offs["head"])
	}
	if offs["tail"]%cacheLine != 0 {
		t.Errorf("tail at offset %d, not line-aligned", offs["tail"])
	}
	// Each domain's pair shares a line (one miss loads both words)…
	if line("head") != line("cachedTail") {
		t.Errorf("consumer pair split across lines: head@%d cachedTail@%d", offs["head"], offs["cachedTail"])
	}
	if line("tail") != line("cachedHead") {
		t.Errorf("producer pair split across lines: tail@%d cachedHead@%d", offs["tail"], offs["cachedHead"])
	}
	// …and the two domains never share one (the regression this pins).
	if line("head") == line("tail") {
		t.Errorf("consumer and producer lines collide: head@%d tail@%d", offs["head"], offs["tail"])
	}
	// The trailing pad keeps whatever is allocated after the ring off the
	// producer line.
	if unsafe.Sizeof(r)-offs["tail"] < cacheLine {
		t.Errorf("producer line extends past the struct: size %d, tail@%d", unsafe.Sizeof(r), offs["tail"])
	}

	// The layout must not depend on the element type: buf is a slice
	// header, so a byte-array element changes nothing.
	var rb SPSC[[3]byte]
	if unsafe.Offsetof(rb.head) != offs["head"] || unsafe.Offsetof(rb.tail) != offs["tail"] {
		t.Errorf("layout depends on element type: head@%d tail@%d", unsafe.Offsetof(rb.head), unsafe.Offsetof(rb.tail))
	}
}
