package ring

import "runtime"

// MPSC multiplexes many producers onto one consumer without any shared
// mutable state between producers: each producer owns a private SPSC lane,
// and the consumer drains the lanes round-robin. This is the structure
// BriskStream and Jet use instead of a true multi-producer queue — it
// avoids CAS contention on a shared tail entirely, at the cost of a small
// round-robin scan on the consumer side (bounded by the lane count, which
// in a topology is the producer-executor fan-in of one operator).
//
// AddProducer is build-time only; it must not race with Pop.
type MPSC[T any] struct {
	cons *Waiter
	// lanes grows only during topology construction, before any producer
	// or the consumer runs.
	lanes []*SPSC[T] //dsp:owned(setup)
	// next is the round-robin drain cursor, touched only by the single
	// consumer goroutine.
	next int //dsp:owned(consumer)
}

// NewMPSC returns an empty MPSC front.
func NewMPSC[T any]() *MPSC[T] { return &MPSC[T]{cons: NewWaiter()} }

// AddProducer creates and returns a new producer lane with at least the
// given capacity. The lane shares the front's consumer waiter, so a push
// into any lane can wake the parked consumer.
func (m *MPSC[T]) AddProducer(capacity int) *SPSC[T] {
	l := NewSPSC[T](capacity, m.cons)
	m.lanes = append(m.lanes, l)
	return l
}

// Lanes returns the number of producer lanes.
func (m *MPSC[T]) Lanes() int { return len(m.lanes) }

// TryPop scans the lanes round-robin from the cursor and returns the first
// available item plus the index of the lane it came from. The cursor
// persists across calls so a chatty lane cannot starve the others.
//
//dsp:hotpath
func (m *MPSC[T]) TryPop() (T, int, bool) {
	for i := 0; i < len(m.lanes); i++ {
		lane := m.next
		m.next++
		if m.next == len(m.lanes) {
			m.next = 0
		}
		if v, ok := m.lanes[lane].TryPop(); ok {
			return v, lane, true
		}
	}
	var zero T
	return zero, 0, false
}

// Pop blocks until an item is available on any lane, returning it and its
// lane index.
//
//dsp:hotpath
func (m *MPSC[T]) Pop() (T, int) {
	for i := 0; i < spinYields; i++ {
		if v, lane, ok := m.TryPop(); ok {
			return v, lane
		}
		runtime.Gosched()
	}
	for {
		m.cons.arm()
		if v, lane, ok := m.TryPop(); ok {
			m.cons.disarm()
			return v, lane
		}
		m.cons.park()
	}
}
