//go:build race

package ring

// RaceEnabled reports whether the race detector is compiled in. The
// zero-allocation assertions on the ring transfer path are skipped under
// the detector: its instrumentation allocates shadow state that would fail
// them for reasons unrelated to the ring.
const RaceEnabled = true
