package ring

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

func TestSPSCCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024}, {1024, 1024},
	} {
		if got := NewSPSC[int](tc.ask, nil).Cap(); got != tc.want {
			t.Errorf("Cap(%d) = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

// Single-threaded wraparound: fill and drain a tiny ring many times so the
// indices wrap the mask repeatedly.
func TestSPSCWraparound(t *testing.T) {
	r := NewSPSC[int](4, nil)
	next := 0
	for round := 0; round < 1000; round++ {
		for i := 0; i < r.Cap(); i++ {
			if !r.TryPush(next + i) {
				t.Fatalf("round %d: push %d refused on non-full ring", round, i)
			}
		}
		if r.TryPush(-1) {
			t.Fatalf("round %d: push accepted on full ring", round)
		}
		for i := 0; i < r.Cap(); i++ {
			v, ok := r.TryPop()
			if !ok || v != next+i {
				t.Fatalf("round %d: pop = (%d,%v), want (%d,true)", round, v, ok, next+i)
			}
		}
		if _, ok := r.TryPop(); ok {
			t.Fatalf("round %d: pop succeeded on empty ring", round)
		}
		next += r.Cap()
	}
}

func TestSPSCPushNPopN(t *testing.T) {
	r := NewSPSC[int](8, nil)
	in := []int{1, 2, 3, 4, 5, 6}
	if n := r.PushN(in); n != 6 {
		t.Fatalf("PushN = %d, want 6", n)
	}
	// Only 2 slots left: partial push.
	if n := r.PushN([]int{7, 8, 9}); n != 2 {
		t.Fatalf("partial PushN = %d, want 2", n)
	}
	dst := make([]int, 5)
	if n := r.PopN(dst); n != 5 {
		t.Fatalf("PopN = %d, want 5", n)
	}
	for i, v := range dst {
		if v != i+1 {
			t.Fatalf("dst[%d] = %d, want %d", i, v, i+1)
		}
	}
	// 3 left (6,7,8); ask for 10.
	dst = make([]int, 10)
	if n := r.PopN(dst); n != 3 {
		t.Fatalf("partial PopN = %d, want 3", n)
	}
	if dst[0] != 6 || dst[1] != 7 || dst[2] != 8 {
		t.Fatalf("partial PopN contents = %v", dst[:3])
	}
	if n := r.PopN(dst); n != 0 {
		t.Fatalf("PopN on empty = %d, want 0", n)
	}
}

// Concurrent FIFO: everything pushed arrives in order, through a ring much
// smaller than the item count (so both blocking paths engage).
func TestSPSCConcurrentFIFO(t *testing.T) {
	const items = 100_000
	r := NewSPSC[int](8, nil)
	done := make(chan error, 1)
	go func() {
		for i := 0; i < items; i++ {
			if v := r.Pop(); v != i {
				done <- errf("pop %d: got %d", i, v)
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < items; i++ {
		r.Push(i)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// Concurrent batch transfer with mixed batch sizes.
func TestSPSCConcurrentBatches(t *testing.T) {
	const items = 50_000
	r := NewSPSC[int](16, nil)
	done := make(chan error, 1)
	go func() {
		buf := make([]int, 7)
		seen := 0
		for seen < items {
			n := r.PopN(buf)
			if n == 0 {
				// Blocking pop for the next one to avoid a spin loop.
				if v := r.Pop(); v != seen {
					done <- errf("pop %d: got %d", seen, v)
					return
				}
				seen++
				continue
			}
			for i := 0; i < n; i++ {
				if buf[i] != seen {
					done <- errf("popN %d: got %d", seen, buf[i])
					return
				}
				seen++
			}
		}
		done <- nil
	}()
	batch := make([]int, 0, 5)
	for i := 0; i < items; {
		batch = batch[:0]
		for k := 0; k < cap(batch) && i+k < items; k++ {
			batch = append(batch, i+k)
		}
		sent := 0
		for sent < len(batch) {
			n := r.PushN(batch[sent:])
			if n == 0 {
				runtime.Gosched() // full: let the consumer drain
			}
			sent += n
		}
		i += len(batch)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// Pointer slots must be zeroed on pop so the ring does not retain the last
// Cap() references forever.
func TestSPSCPopClearsSlot(t *testing.T) {
	r := NewSPSC[*int](2, nil)
	v := new(int)
	r.TryPush(v)
	r.TryPop()
	for _, slot := range r.buf {
		if slot != nil {
			t.Fatal("popped slot still holds its pointer")
		}
	}
}

func TestMPSCRoundRobinAndLaneIndex(t *testing.T) {
	const producers, items = 4, 10_000
	m := NewMPSC[[2]int]()
	lanes := make([]*SPSC[[2]int], producers)
	for p := range lanes {
		lanes[p] = m.AddProducer(8)
	}
	var wg sync.WaitGroup
	for p := range lanes {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < items; i++ {
				lanes[p].Push([2]int{p, i})
			}
		}(p)
	}
	seen := make([]int, producers) // next expected sequence per producer
	for k := 0; k < producers*items; k++ {
		v, lane := m.Pop()
		if v[0] != lane {
			t.Fatalf("item from producer %d reported on lane %d", v[0], lane)
		}
		if v[1] != seen[lane] {
			t.Fatalf("lane %d out of order: got %d, want %d", lane, v[1], seen[lane])
		}
		seen[lane]++
	}
	wg.Wait()
	if _, _, ok := m.TryPop(); ok {
		t.Fatal("items left after draining all lanes")
	}
}

// A parked consumer must be woken by a push on any lane (the shared-waiter
// lost-wakeup race this protocol exists to prevent).
func TestMPSCParkedConsumerWakes(t *testing.T) {
	m := NewMPSC[int]()
	lane := m.AddProducer(2)
	got := make(chan int)
	go func() {
		v, _ := m.Pop() // parks: ring is empty
		got <- v
	}()
	lane.Push(42)
	if v := <-got; v != 42 {
		t.Fatalf("woke with %d, want 42", v)
	}
}

// Ring transfer must not allocate in steady state (the acceptance bar the
// hotalloc lint guards statically; this checks it dynamically).
func TestRingTransferZeroAllocs(t *testing.T) {
	if RaceEnabled {
		t.Skip("race instrumentation allocates")
	}
	r := NewSPSC[int](64, nil)
	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 32; i++ {
			r.TryPush(i)
		}
		for i := 0; i < 32; i++ {
			r.TryPop()
		}
	})
	if allocs != 0 {
		t.Fatalf("ring transfer allocates %.1f per round, want 0", allocs)
	}
}

func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }
