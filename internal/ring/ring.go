// Package ring provides the bounded lock-free queues of the native
// runtime's data path: a single-producer/single-consumer (SPSC) ring with
// batch transfer, and an MPSC front composed of per-producer SPSC lanes
// (mpsc.go). The design follows the shared-memory engines the paper's
// successors converged on (BriskStream, Hazelcast Jet): no locks on the
// data path, cache-line-padded head/tail indices so producer and consumer
// never write the same line, cached peer indices so the common case reads
// only core-local state, and a spin-then-park waiter so a stalled peer
// costs a futex-style sleep instead of a burned core.
package ring

import (
	"runtime"
	"sync/atomic"
)

// cacheLine is the assumed coherence granule; padding head and tail onto
// separate lines stops producer/consumer index updates from ping-ponging a
// single line between cores (the classic false-sharing failure of naive
// ring buffers).
const cacheLine = 64

// spinYields bounds the cooperative-spin phase of blocking operations:
// Push/Pop retry this many times (yielding the processor between attempts)
// before arming the waiter and parking on its channel. Yielding rather
// than busy-spinning keeps single-core and oversubscribed hosts live.
const spinYields = 24

// Waiter is a spin-then-park rendezvous between one sleeper and any number
// of signalers. The sleeper follows arm → recheck → park; Signal wakes an
// armed sleeper with one buffered channel send. Both sides tolerate
// spurious wakeups (the sleeper always rechecks its condition), which
// keeps the protocol free of the lost-wakeup race: a Signal that lands
// between recheck and park leaves a token the park consumes immediately.
type Waiter struct {
	armed atomic.Int32
	// ch is allocated once in init, before the waiter is shared; the
	// channel itself synchronizes park/wake after that.
	ch chan struct{} //dsp:owned(setup)
}

// NewWaiter returns a ready-to-use waiter.
func NewWaiter() *Waiter {
	w := &Waiter{}
	w.init()
	return w
}

func (w *Waiter) init() { w.ch = make(chan struct{}, 1) }

// Signal wakes the sleeper if one is armed. The fast path — nobody is
// parked, the common case on a busy ring — is a single atomic load.
//
//dsp:hotpath
func (w *Waiter) Signal() {
	if w.armed.Load() != 0 && w.armed.Swap(0) != 0 {
		select {
		case w.ch <- struct{}{}: //dsplint:ignore hotsync the park-wake handoff itself: a send on a 1-buffered channel with a default case never blocks
		default:
		}
	}
}

func (w *Waiter) arm()    { w.armed.Store(1) }
func (w *Waiter) disarm() { w.armed.Store(0) }
func (w *Waiter) park()   { <-w.ch }

// SPSC is a bounded single-producer/single-consumer ring queue. Capacity
// is rounded up to a power of two so slot indexing is a mask, not a
// modulo. head (next slot to pop) is written only by the consumer; tail
// (next slot to push) only by the producer. Each side keeps a cached copy
// of the other's index and refreshes it only when the cached value implies
// the ring is full/empty — in steady state a push or pop touches no
// shared-written cache line but its own.
//
// The layout below is a checked property (dsplint's linelayout analyzer,
// plus TestSPSCFieldLineLayout): the consumer-written pair (head,
// cachedTail) and the producer-written pair (tail, cachedHead) each start
// on their own 64-byte line. The original padding arithmetic assumed head
// began line-aligned when it actually began at offset 120, which put
// cachedTail and tail — a consumer-written and a producer-written index —
// on the same line: false sharing on the two hottest words in the ring.
//
//dsp:padded
type SPSC[T any] struct {
	buf  []T     // 24 bytes: slice header, layout is T-independent
	mask uint64  // 32
	cons *Waiter // 40: parked consumer (shared across lanes in an MPSC)
	prod Waiter  // 56: parked producer (exclusive to this ring)

	_          [cacheLine - 56%cacheLine]byte // align the consumer line
	head       atomic.Uint64                  //dsp:owned(consumer)
	cachedTail uint64                         //dsp:owned(consumer)
	_          [cacheLine - 16]byte           // separate the producer line
	tail       atomic.Uint64                  //dsp:owned(producer)
	cachedHead uint64                         //dsp:owned(producer)
	_          [cacheLine - 16]byte           // keep trailing neighbors off the producer line
}

// NewSPSC returns a ring with at least the requested capacity (rounded up
// to a power of two, minimum 2). cons is the consumer-side waiter; pass
// nil for a dedicated one, or a shared waiter when the ring is one lane of
// an MPSC front.
func NewSPSC[T any](capacity int, cons *Waiter) *SPSC[T] {
	n := 2
	for n < capacity {
		n <<= 1
	}
	if cons == nil {
		cons = NewWaiter()
	}
	r := &SPSC[T]{buf: make([]T, n), mask: uint64(n - 1), cons: cons}
	r.prod.init()
	return r
}

// Cap returns the ring's (power-of-two) capacity.
func (r *SPSC[T]) Cap() int { return len(r.buf) }

// Len returns the number of buffered items (racy snapshot).
func (r *SPSC[T]) Len() int { return int(r.tail.Load() - r.head.Load()) }

// TryPush appends v if the ring has room, reporting whether it did.
//
//dsp:hotpath
func (r *SPSC[T]) TryPush(v T) bool {
	t := r.tail.Load()
	if t-r.cachedHead >= uint64(len(r.buf)) {
		r.cachedHead = r.head.Load()
		if t-r.cachedHead >= uint64(len(r.buf)) {
			return false
		}
	}
	r.buf[t&r.mask] = v
	r.tail.Store(t + 1)
	r.cons.Signal()
	return true
}

// PushN appends as many of vs as fit and returns how many it took.
//
//dsp:hotpath
func (r *SPSC[T]) PushN(vs []T) int {
	t := r.tail.Load()
	free := uint64(len(r.buf)) - (t - r.cachedHead)
	if free < uint64(len(vs)) {
		r.cachedHead = r.head.Load()
		free = uint64(len(r.buf)) - (t - r.cachedHead)
	}
	n := len(vs)
	if uint64(n) > free {
		n = int(free)
	}
	for i := 0; i < n; i++ {
		r.buf[(t+uint64(i))&r.mask] = vs[i]
	}
	if n > 0 {
		r.tail.Store(t + uint64(n))
		r.cons.Signal()
	}
	return n
}

// TryPop removes and returns the oldest item, reporting whether one was
// available. The vacated slot is zeroed so the ring never retains
// references past consumption.
//
//dsp:hotpath
func (r *SPSC[T]) TryPop() (T, bool) {
	var zero T
	h := r.head.Load()
	if h == r.cachedTail {
		r.cachedTail = r.tail.Load()
		if h == r.cachedTail {
			return zero, false
		}
	}
	v := r.buf[h&r.mask]
	r.buf[h&r.mask] = zero
	r.head.Store(h + 1)
	r.prod.Signal()
	return v, true
}

// PopN fills dst with up to len(dst) items and returns how many it took.
//
//dsp:hotpath
func (r *SPSC[T]) PopN(dst []T) int {
	var zero T
	h := r.head.Load()
	avail := r.cachedTail - h
	if avail < uint64(len(dst)) {
		r.cachedTail = r.tail.Load()
		avail = r.cachedTail - h
	}
	n := len(dst)
	if uint64(n) > avail {
		n = int(avail)
	}
	for i := 0; i < n; i++ {
		idx := (h + uint64(i)) & r.mask
		dst[i] = r.buf[idx]
		r.buf[idx] = zero
	}
	if n > 0 {
		r.head.Store(h + uint64(n))
		r.prod.Signal()
	}
	return n
}

// Push blocks until v is enqueued: spin-with-yield first, then park on the
// producer waiter until the consumer frees a slot. This is the native
// runtime's credit-based backpressure — a producer ahead of its consumer
// sleeps instead of growing a queue or burning a core.
//
//dsp:hotpath
func (r *SPSC[T]) Push(v T) {
	for i := 0; i < spinYields; i++ {
		if r.TryPush(v) {
			return
		}
		runtime.Gosched()
	}
	for {
		r.prod.arm()
		if r.TryPush(v) {
			r.prod.disarm()
			return
		}
		r.prod.park()
	}
}

// Pop blocks until an item is available. Only valid when the ring owns its
// consumer waiter (not a shared MPSC lane — park there via MPSC.Pop).
//
//dsp:hotpath
func (r *SPSC[T]) Pop() T {
	for i := 0; i < spinYields; i++ {
		if v, ok := r.TryPop(); ok {
			return v
		}
		runtime.Gosched()
	}
	for {
		r.cons.arm()
		if v, ok := r.TryPop(); ok {
			r.cons.disarm()
			return v
		}
		r.cons.park()
	}
}
