package engine

import "streamscale/internal/sim"

// CodeRegion is a chunk of JIT-compiled framework code executed on the hot
// path of every executor invocation. Regions are materialized into the
// simulated code address space at runtime-build time.
type CodeRegion struct {
	Name  string
	Bytes int
}

// ColdRegion is framework code executed only periodically — metrics
// flushing, reconnect paths, JIT recompilation, safepoint cleanup. Cold
// regions produce the multi-megabyte tail of the paper's Figure 9
// instruction-footprint CDF and pollute the instruction caches when they
// run.
type ColdRegion struct {
	Name string
	// Bytes of code touched per occurrence.
	Bytes int
	// Every is the period in invocations between occurrences (per executor).
	Every int
}

// SystemProfile captures the engine-level design differences between the
// two studied systems. Both share the three common design aspects; they
// differ in platform code footprint, reliability mechanism (tuple acking
// vs. checkpoint barriers), and framework overhead per message.
type SystemProfile struct {
	Name string

	// HotRegions is the framework code executed on every invocation
	// (dispatch loop, queue operations, serialization, routing).
	HotRegions []CodeRegion
	// ColdRegions is periodically executed framework code.
	ColdRegions []ColdRegion

	// UopsPerInvoke is framework computation per executor invocation
	// (dequeue, dispatch, context bookkeeping).
	UopsPerInvoke int
	// UopsPerTuple is framework computation per tuple moved (routing,
	// field access, ack bookkeeping).
	UopsPerTuple int
	// BranchesPerTuple is framework branch pressure per tuple.
	BranchesPerTuple int
	// MispredictRate is the misprediction probability per counted branch.
	MispredictRate float64

	// QueueCap is the bounded executor input queue capacity, in messages.
	QueueCap int

	// AckEnabled adds Storm-style XOR tuple-tracking acker executors and
	// per-tuple ack messages.
	AckEnabled bool
	// AckerExecutors is the acker parallelism when acking is enabled.
	AckerExecutors int

	// DeliveryUops is framework computation per delivered batch (network
	// buffer claim/publish, channel selection). Batching amortizes it.
	DeliveryUops int
	// DeliveryUopsPerByte is the per-byte (de)serialization cost of moving
	// a batch between executors. Flink 1.0 serializes records into network
	// buffers even locally; Storm passes references within a worker.
	DeliveryUopsPerByte float64

	// CheckpointInterval injects Flink-style checkpoint barriers from the
	// sources every interval of simulated time (0 disables).
	CheckpointInterval sim.Cycles
	// SnapshotUopsPerStateByte is the cost of snapshotting operator state
	// at a barrier.
	SnapshotUopsPerStateByte float64

	// MetadataAccessesPerTuple models invokevirtual method-table lookups
	// per tuple processed (the paper's §V-D pointer-referencing source of
	// DTLB pressure).
	MetadataAccessesPerTuple int
}

// Storm returns the profile modelled on Apache Storm 1.0.0 with
// acknowledgements enabled, as in the paper's Table III setup. Storm's
// platform instruction footprint is larger (Fig 9 shows its CDF turning
// point near 10 MB and platform-dominated footprints independent of the
// user application).
func Storm() SystemProfile {
	return SystemProfile{
		Name: "storm",
		HotRegions: []CodeRegion{
			{Name: "executor-loop", Bytes: 13 << 10},
			{Name: "disruptor-queue", Bytes: 11 << 10},
			{Name: "tuple-serde", Bytes: 12 << 10},
			{Name: "routing-ack", Bytes: 11 << 10},
		},
		ColdRegions: []ColdRegion{
			{Name: "metrics", Bytes: 160 << 10, Every: 1_500},
			{Name: "heartbeat-zk", Bytes: 900 << 10, Every: 20_000},
			{Name: "jit-deopt-sweep", Bytes: 9 << 20, Every: 250_000},
		},
		UopsPerInvoke:            900,
		UopsPerTuple:             700,
		BranchesPerTuple:         30,
		MispredictRate:           0.04,
		QueueCap:                 1024,
		DeliveryUops:             250,
		DeliveryUopsPerByte:      0.2,
		AckEnabled:               true,
		AckerExecutors:           1,
		MetadataAccessesPerTuple: 3,
	}
}

// Flink returns the profile modelled on Apache Flink 1.0.2 with
// checkpointing enabled, as in the paper's Table III setup. Flink's
// platform footprint is smaller (Fig 9 turning point near 1 MB) and it
// tracks progress with checkpoint barriers instead of per-tuple acks.
func Flink() SystemProfile {
	return SystemProfile{
		Name: "flink",
		HotRegions: []CodeRegion{
			{Name: "task-loop", Bytes: 11 << 10},
			{Name: "network-buffers", Bytes: 10 << 10},
			{Name: "record-serde", Bytes: 10 << 10},
			{Name: "channel-selector", Bytes: 7 << 10},
		},
		ColdRegions: []ColdRegion{
			{Name: "metrics", Bytes: 90 << 10, Every: 1_500},
			{Name: "checkpoint-coordinator", Bytes: 300 << 10, Every: 20_000},
			{Name: "jit-deopt-sweep", Bytes: 1 << 20, Every: 250_000},
		},
		UopsPerInvoke:       700,
		UopsPerTuple:        500,
		BranchesPerTuple:    22,
		MispredictRate:      0.04,
		QueueCap:            1024,
		DeliveryUops:        900,
		DeliveryUopsPerByte: 1.4,
		AckEnabled:          false,
		// The real deployment checkpoints every 500 ms over hour-long
		// runs; simulation cells run tens of simulated milliseconds, so
		// the interval is scaled to keep checkpoints-per-event realistic.
		CheckpointInterval:       48_000_000, // 20 ms at 2.4 GHz
		SnapshotUopsPerStateByte: 1.2,
		MetadataAccessesPerTuple: 2,
	}
}

// HotBytes returns the total hot platform code size.
func (p SystemProfile) HotBytes() int {
	n := 0
	for _, r := range p.HotRegions {
		n += r.Bytes
	}
	return n
}
