package engine

import (
	"fmt"
	"sort"
)

// AddressedBatch is a batch of tuples routed to one consumer executor.
type AddressedBatch struct {
	Consumer int // consumer executor index within the consumer operator
	Tuples   []Tuple
}

// edgeRouter routes one producer stream to one consumer subscription,
// implementing the paper's non-blocking tuple batching (Algorithm 1): all
// tuples emitted during a single invocation are grouped into per-consumer
// batches and emitted at the end of the invocation — no cross-invocation
// buffering, hence no added buffering delay.
type edgeRouter struct {
	group     Grouping
	consumers int
	fieldIdx  []int // resolved key field indices for fields grouping
	rr        int   // rotating block cursor for shuffle grouping
}

func newEdgeRouter(producer StreamSpec, sub Subscription, consumers int) *edgeRouter {
	r := &edgeRouter{group: sub.Group, consumers: consumers}
	if sub.Group.Kind == GroupFields {
		r.fieldIdx = FieldIndices(producer, sub.Group.Fields)
	}
	return r
}

// route partitions the tuples of one invocation into addressed batches of
// at most batchCap tuples each (batchCap <= 0 means unbounded). Fields
// grouping follows Algorithm 1: the new key is the hash of the combined
// grouping attributes modulo the consumer count, so tuples sharing original
// keys always share a destination, while tuples with different keys that
// map to the same destination ride the same batch.
func (r *edgeRouter) route(tuples []Tuple, batchCap int) []AddressedBatch {
	if len(tuples) == 0 {
		return nil
	}
	switch r.group.Kind {
	case GroupShuffle:
		return r.routeShuffle(tuples, batchCap)
	case GroupFields:
		return r.routeFields(tuples, batchCap)
	case GroupGlobal:
		return capBatches(0, tuples, batchCap)
	case GroupAll:
		var out []AddressedBatch
		for c := 0; c < r.consumers; c++ {
			cp := make([]Tuple, len(tuples))
			copy(cp, tuples)
			out = append(out, capBatches(c, cp, batchCap)...)
		}
		return out
	}
	panic(fmt.Sprintf("engine: unknown grouping %v", r.group.Kind))
}

// routeShuffle assigns tuples round-robin across consumers (the cursor
// persists between invocations, so cumulative imbalance never exceeds one
// tuple) and emits each consumer's share as a batch.
func (r *edgeRouter) routeShuffle(tuples []Tuple, batchCap int) []AddressedBatch {
	groups := make([][]Tuple, r.consumers)
	for _, t := range tuples {
		groups[r.rr] = append(groups[r.rr], t)
		r.rr = (r.rr + 1) % r.consumers
	}
	var out []AddressedBatch
	for c, g := range groups {
		if len(g) > 0 {
			out = append(out, capBatches(c, g, batchCap)...)
		}
	}
	return out
}

// routeFields is Algorithm 1. The multi-valued hash map is keyed by
// newkey = hash(combined grouping attributes) mod consumers.
func (r *edgeRouter) routeFields(tuples []Tuple, batchCap int) []AddressedBatch {
	cache := make(map[int][]Tuple) // the HashMultimap of Algorithm 1
	for _, t := range tuples {
		newkey := int(HashFields(t.Values, r.fieldIdx) % uint64(r.consumers))
		cache[newkey] = append(cache[newkey], t)
	}
	keys := make([]int, 0, len(cache))
	for k := range cache {
		keys = append(keys, k)
	}
	sort.Ints(keys) // deterministic emission order
	var out []AddressedBatch
	for _, k := range keys {
		out = append(out, capBatches(k, cache[k], batchCap)...)
	}
	return out
}

func capBatches(consumer int, tuples []Tuple, batchCap int) []AddressedBatch {
	if batchCap <= 0 || len(tuples) <= batchCap {
		return []AddressedBatch{{Consumer: consumer, Tuples: tuples}}
	}
	var out []AddressedBatch
	for i := 0; i < len(tuples); i += batchCap {
		end := i + batchCap
		if end > len(tuples) {
			end = len(tuples)
		}
		out = append(out, AddressedBatch{Consumer: consumer, Tuples: tuples[i:end]})
	}
	return out
}
