package engine

import (
	"fmt"
	"sort"
)

// DefaultStream is the stream name used by Emit and single-stream operators.
const DefaultStream = "default"

// WorkProfile describes an operator's resource behaviour for the simulated
// runtime. Fixed per-tuple costs live here; data-dependent costs are
// reported at runtime via Context.Work / Context.AccessState. The native
// runtime ignores profiles entirely.
type WorkProfile struct {
	// CodeBytes is the operator's JIT-compiled hot-path size. The paper
	// measured an average of up to 20 KB of native code per executor.
	CodeBytes int
	// UopsPerTuple is the baseline computation per input tuple.
	UopsPerTuple int
	// UopsPerEmit is the additional computation per emitted tuple.
	UopsPerEmit int
	// BranchesPerTuple is the number of hard-to-predict branches per tuple.
	BranchesPerTuple int
	// StateBytes is the executor's private working set (hash maps, windows).
	StateBytes int
	// SharedState marks the state as one object shared by all of the
	// operator's executors (e.g. a reference road network). It is
	// allocated once, on the socket of whichever executor prepares first
	// — the NUMA first-touch behaviour of a shared JVM object.
	SharedState bool
	// StateAccessesPerTuple is how many random cache lines of that state
	// one tuple touches.
	StateAccessesPerTuple int
	// ExtraAllocPerTuple is garbage allocated per tuple beyond output
	// tuples (temporaries, boxing).
	ExtraAllocPerTuple int
	// Selectivity is the average number of output tuples per input tuple
	// (sources: per Next call), used by the placement optimizer to
	// estimate inter-operator flow. Zero means 1.0.
	Selectivity float64
	// AvgTupleBytes is the average output tuple payload size for flow
	// estimation. Zero means 64.
	AvgTupleBytes int
}

// EffSelectivity returns Selectivity with its default applied.
func (p WorkProfile) EffSelectivity() float64 {
	if p.Selectivity <= 0 {
		return 1.0
	}
	return p.Selectivity
}

// EffTupleBytes returns AvgTupleBytes with its default applied.
func (p WorkProfile) EffTupleBytes() int {
	if p.AvgTupleBytes <= 0 {
		return 64
	}
	return p.AvgTupleBytes
}

// DefaultWorkProfile returns a modest profile for lightweight operators.
func DefaultWorkProfile() WorkProfile {
	return WorkProfile{
		CodeBytes:             8 << 10,
		UopsPerTuple:          400,
		UopsPerEmit:           150,
		BranchesPerTuple:      12,
		StateBytes:            16 << 10,
		StateAccessesPerTuple: 2,
		ExtraAllocPerTuple:    48,
	}
}

// StreamSpec declares a named output stream and its field names.
type StreamSpec struct {
	Name   string
	Fields []string
}

// Subscription connects an operator to a producer's stream with a grouping.
type Subscription struct {
	Operator string
	Stream   string
	Group    Grouping
}

// Node is one operator (or source) in a topology.
type Node struct {
	Name        string
	Parallelism int

	// Exactly one of NewOp / NewSource is set.
	NewOp     func() Operator
	NewSource func() Source

	Streams []StreamSpec
	Subs    []Subscription
	Profile WorkProfile

	// System marks engine-internal operators (the acker).
	System bool

	topo *Topology
}

// IsSource reports whether the node is a data source.
func (n *Node) IsSource() bool { return n.NewSource != nil }

// OutStream looks up a declared stream by name.
func (n *Node) OutStream(name string) (StreamSpec, bool) {
	for _, s := range n.Streams {
		if s.Name == name {
			return s, true
		}
	}
	return StreamSpec{}, false
}

// Topology is a dataflow graph of named operators.
type Topology struct {
	Name  string
	nodes []*Node
	index map[string]*Node
}

// NewTopology creates an empty topology.
func NewTopology(name string) *Topology {
	return &Topology{Name: name, index: make(map[string]*Node)}
}

// Nodes returns the topology's nodes in insertion order.
func (t *Topology) Nodes() []*Node { return t.nodes }

// Node looks up a node by name.
func (t *Topology) Node(name string) *Node { return t.index[name] }

func (t *Topology) add(n *Node) *Node {
	if n.Parallelism <= 0 {
		panic(fmt.Sprintf("engine: node %q has non-positive parallelism", n.Name))
	}
	if _, dup := t.index[n.Name]; dup {
		panic(fmt.Sprintf("engine: duplicate node name %q", n.Name))
	}
	n.topo = t
	t.nodes = append(t.nodes, n)
	t.index[n.Name] = n
	return n
}

// AddSource registers a data source with the given parallelism and output
// streams (at least one).
func (t *Topology) AddSource(name string, parallelism int, factory func() Source, streams ...StreamSpec) *Node {
	if len(streams) == 0 {
		panic("engine: source must declare at least one stream")
	}
	return t.add(&Node{
		Name: name, Parallelism: parallelism, NewSource: factory,
		Streams: streams, Profile: DefaultWorkProfile(),
	})
}

// AddOp registers a processing operator. Operators without outputs (sinks)
// pass no streams.
func (t *Topology) AddOp(name string, parallelism int, factory func() Operator, streams ...StreamSpec) *Node {
	return t.add(&Node{
		Name: name, Parallelism: parallelism, NewOp: factory,
		Streams: streams, Profile: DefaultWorkProfile(),
	})
}

// Stream declares an output stream with named fields.
func Stream(name string, fields ...string) StreamSpec {
	return StreamSpec{Name: name, Fields: fields}
}

// WithProfile sets the node's simulation work profile and returns the node.
func (n *Node) WithProfile(p WorkProfile) *Node {
	n.Profile = p
	return n
}

// Sub subscribes the node to a producer's named stream.
func (n *Node) Sub(operator, stream string, g Grouping) *Node {
	n.Subs = append(n.Subs, Subscription{Operator: operator, Stream: stream, Group: g})
	return n
}

// SubDefault subscribes to a producer's default stream.
func (n *Node) SubDefault(operator string, g Grouping) *Node {
	return n.Sub(operator, DefaultStream, g)
}

// Validate checks the topology: subscriptions must reference declared
// streams, fields groupings must name existing fields, the graph must have
// at least one source, and every non-source must be reachable from a source.
func (t *Topology) Validate() error {
	hasSource := false
	for _, n := range t.nodes {
		if n.IsSource() {
			hasSource = true
			if len(n.Subs) > 0 {
				return fmt.Errorf("source %q has subscriptions", n.Name)
			}
		} else if len(n.Subs) == 0 {
			return fmt.Errorf("operator %q has no inputs", n.Name)
		}
		for _, sub := range n.Subs {
			p := t.index[sub.Operator]
			if p == nil {
				return fmt.Errorf("node %q subscribes to unknown operator %q", n.Name, sub.Operator)
			}
			ss, ok := p.OutStream(sub.Stream)
			if !ok {
				return fmt.Errorf("node %q subscribes to undeclared stream %q of %q", n.Name, sub.Stream, sub.Operator)
			}
			if sub.Group.Kind == GroupFields {
				for _, f := range sub.Group.Fields {
					if fieldIndex(ss.Fields, f) < 0 {
						return fmt.Errorf("node %q groups on field %q not in stream %s.%s%v",
							n.Name, f, sub.Operator, sub.Stream, ss.Fields)
					}
				}
			}
		}
	}
	if !hasSource {
		return fmt.Errorf("topology %q has no source", t.Name)
	}
	if err := t.checkReachable(); err != nil {
		return err
	}
	return nil
}

func (t *Topology) checkReachable() error {
	reach := map[string]bool{}
	for _, n := range t.nodes {
		if n.IsSource() {
			reach[n.Name] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range t.nodes {
			if reach[n.Name] {
				continue
			}
			for _, sub := range n.Subs {
				if reach[sub.Operator] {
					reach[n.Name] = true
					changed = true
					break
				}
			}
		}
	}
	var missing []string
	for _, n := range t.nodes {
		if !reach[n.Name] {
			missing = append(missing, n.Name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("nodes unreachable from any source: %v", missing)
	}
	return nil
}

// Consumers returns, for each node, the subscriptions other nodes hold on
// its streams, as (consumer, subscription) pairs in deterministic order.
func (t *Topology) Consumers(producer string) []Edge {
	var edges []Edge
	for _, n := range t.nodes {
		for _, sub := range n.Subs {
			if sub.Operator == producer {
				edges = append(edges, Edge{Consumer: n, Sub: sub})
			}
		}
	}
	return edges
}

// Edge is one producer→consumer subscription.
type Edge struct {
	Consumer *Node
	Sub      Subscription
}

func fieldIndex(fields []string, name string) int {
	for i, f := range fields {
		if f == name {
			return i
		}
	}
	return -1
}

// FieldIndices resolves grouping field names to indices in a stream's
// schema, panicking on unknown fields (Validate catches these earlier).
func FieldIndices(ss StreamSpec, fields []string) []int {
	idx := make([]int, len(fields))
	for i, f := range fields {
		j := fieldIndex(ss.Fields, f)
		if j < 0 {
			panic(fmt.Sprintf("engine: field %q not in stream %q %v", f, ss.Name, ss.Fields))
		}
		idx[i] = j
	}
	return idx
}
