package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// This file preserves the pre-ring native runtime — buffered Go channels,
// map-indexed emit buffers, per-tuple clock reads — as a test-only
// reference implementation. It exists for exactly one purpose: to be the
// baseline that BenchmarkNativePipeline compares the lock-free runtime
// against, on the same machine in the same process. It must not be used
// outside benchmarks and A/B tests.

type chanRefRuntime struct {
	cfg  NativeConfig
	topo *Topology

	execs   []*chanRefExec
	byOp    map[string][]*chanRefExec
	rootCtr int64

	sourceEvents int64
	sinkEvents   int64
}

type chanRefEdge struct {
	router    *edgeRouter
	stream    string
	consumers []*chanRefExec
	system    bool
}

type chanRefExec struct {
	rt     *chanRefRuntime
	node   *Node
	index  int
	global int

	op  Operator
	src Source

	in         chan Msg
	nProducers int
	edges      map[string][]*chanRefEdge

	rng    *rand.Rand
	sinkN  int64
	isSink bool

	ctx      *chanRefCtx
	buffers  map[string][]Tuple
	ackAccum map[int64]int64
}

// runNativeChannels is the channel-runtime twin of RunNative.
func runNativeChannels(t *Topology, cfg NativeConfig) (*Result, error) {
	cfg.fill()
	xt, err := BuildExecTopology(t, cfg.System)
	if err != nil {
		return nil, err
	}
	rt := &chanRefRuntime{cfg: cfg, topo: xt}
	rt.build()
	return rt.run(t.Name)
}

func (rt *chanRefRuntime) build() {
	rt.byOp = make(map[string][]*chanRefExec)
	global := 0
	for _, n := range rt.topo.Nodes() {
		for i := 0; i < n.Parallelism; i++ {
			e := &chanRefExec{
				rt: rt, node: n, index: i, global: global,
				rng:     rand.New(rand.NewSource(rt.cfg.Seed + int64(global)*7919 + 1)),
				buffers: make(map[string][]Tuple),
				edges:   make(map[string][]*chanRefEdge),
			}
			if n.IsSource() {
				e.src = n.NewSource()
			} else {
				e.op = n.NewOp()
				e.in = make(chan Msg, rt.cfg.QueueCap)
			}
			e.isSink = isSink(n)
			rt.execs = append(rt.execs, e)
			rt.byOp[n.Name] = append(rt.byOp[n.Name], e)
			global++
		}
	}
	for _, n := range rt.topo.Nodes() {
		for _, ed := range rt.topo.Consumers(n.Name) {
			ss, _ := n.OutStream(ed.Sub.Stream)
			for _, pe := range rt.byOp[n.Name] {
				pe.edges[ed.Sub.Stream] = append(pe.edges[ed.Sub.Stream], &chanRefEdge{
					router:    newEdgeRouter(ss, ed.Sub, ed.Consumer.Parallelism),
					stream:    ed.Sub.Stream,
					consumers: rt.byOp[ed.Consumer.Name],
					system:    ed.Consumer.System,
				})
			}
			for _, ce := range rt.byOp[ed.Consumer.Name] {
				ce.nProducers += n.Parallelism
			}
		}
	}
}

func (rt *chanRefRuntime) run(app string) (*Result, error) {
	start := time.Now()
	var wg sync.WaitGroup
	for _, e := range rt.execs {
		wg.Add(1)
		go func(e *chanRefExec) {
			defer wg.Done()
			e.loop()
		}(e)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	res := &Result{
		App:            app,
		System:         rt.cfg.System.Name,
		SourceEvents:   atomic.LoadInt64(&rt.sourceEvents),
		SinkEvents:     atomic.LoadInt64(&rt.sinkEvents),
		ElapsedSeconds: elapsed,
	}
	for _, e := range rt.execs {
		res.Executors = append(res.Executors, ExecStat{
			Op: e.node.Name, Index: e.index, Socket: -1, Tuples: e.sinkN,
		})
		if a, ok := e.op.(*Acker); ok {
			res.AckerCompleted += a.Completed()
		}
	}
	return res, nil
}

func (e *chanRefExec) loop() {
	e.ctx = &chanRefCtx{ex: e}
	if e.src != nil {
		e.src.Prepare(e.ctx)
		for e.sourceInvocation() {
		}
		e.finish()
		return
	}
	e.op.Prepare(e.ctx)
	eos := 0
	for eos < e.nProducers {
		msg := <-e.in
		if msg.EOS {
			eos++
			continue
		}
		e.processBatch(msg)
	}
	e.finish()
}

func (e *chanRefExec) sourceInvocation() bool {
	target := e.rt.cfg.BatchSize
	n := 0
	alive := true
	for n < target && alive {
		before := e.emittedThisInvocation()
		alive = e.src.Next(e.ctx)
		n += e.emittedThisInvocation() - before
	}
	e.endInvocation()
	return alive
}

func (e *chanRefExec) emittedThisInvocation() int {
	n := 0
	for _, b := range e.buffers {
		n += len(b)
	}
	return n
}

func (e *chanRefExec) processBatch(msg Msg) {
	for i := range msg.Batch {
		t := &msg.Batch[i]
		e.ctx.curInput = t
		if e.ackTracking() {
			e.accumAck(t.Root, t.Edge)
		}
		if e.isSink {
			e.sinkN++
			atomic.AddInt64(&e.rt.sinkEvents, 1)
		}
		e.op.Process(e.ctx, *t)
	}
	e.ctx.curInput = nil
	e.endInvocation()
}

func (e *chanRefExec) ackTracking() bool {
	return e.rt.cfg.System.AckEnabled && !e.node.System
}

func (e *chanRefExec) accumAck(root, edge int64) {
	if root == 0 {
		return
	}
	if e.ackAccum == nil {
		e.ackAccum = make(map[int64]int64)
	}
	e.ackAccum[root] ^= edge
}

func (e *chanRefExec) endInvocation() {
	for _, n := range e.node.Streams {
		buf := e.buffers[n.Name]
		if len(buf) == 0 {
			continue
		}
		e.buffers[n.Name] = nil
		for _, ed := range e.edges[n.Name] {
			cap := 4 * e.rt.cfg.BatchSize
			if n.Name == AckStream {
				cap = 0
			}
			for _, b := range ed.router.route(buf, cap) {
				if e.ackTracking() && !ed.system {
					for i := range b.Tuples {
						edge := e.rng.Int63()
						b.Tuples[i].Edge = edge
						e.accumAck(b.Tuples[i].Root, edge)
					}
				}
				ed.consumers[b.Consumer].in <- Msg{
					FromGlobal: e.global, FromOp: e.node.Name,
					Stream: n.Name, Batch: b.Tuples,
				}
			}
		}
	}
	e.flushAcks()
}

func (e *chanRefExec) flushAcks() {
	if len(e.ackAccum) == 0 {
		return
	}
	accum := e.ackAccum
	e.ackAccum = nil
	for root, x := range accum {
		e.buffers[AckStream] = append(e.buffers[AckStream], Tuple{
			Values: []Value{root, x}, Root: root,
		})
	}
	buf := e.buffers[AckStream]
	e.buffers[AckStream] = nil
	for _, ed := range e.edges[AckStream] {
		for _, b := range ed.router.route(buf, 0) {
			ed.consumers[b.Consumer].in <- Msg{
				FromGlobal: e.global, FromOp: e.node.Name,
				Stream: AckStream, Batch: b.Tuples,
			}
		}
	}
}

func (e *chanRefExec) finish() {
	if f, ok := e.op.(Flusher); ok {
		e.ctx.curInput = nil
		f.Flush(e.ctx)
		e.endInvocation()
	}
	for _, n := range e.node.Streams {
		for _, ed := range e.edges[n.Name] {
			for _, c := range ed.consumers {
				c.in <- Msg{FromGlobal: e.global, FromOp: e.node.Name, Stream: n.Name, EOS: true}
			}
		}
	}
}

type chanRefCtx struct {
	ex       *chanRefExec
	curInput *Tuple
}

func (c *chanRefCtx) Emit(values ...Value) { c.EmitTo(DefaultStream, values...) }

func (c *chanRefCtx) EmitTo(stream string, values ...Value) {
	n := c.ex.node
	if _, ok := n.OutStream(stream); !ok {
		panic(fmt.Sprintf("engine: %q emits to undeclared stream %q", n.Name, stream))
	}
	t := Tuple{Values: values, Size: int32(TupleBytes(values))}
	if c.curInput != nil {
		t.Born = c.curInput.Born
		t.Root = c.curInput.Root
	} else {
		t.Born = time.Now().UnixNano()
		if n.IsSource() {
			t.Root = atomic.AddInt64(&c.ex.rt.rootCtr, 1)
		}
	}
	if n.IsSource() && stream != AckStream {
		atomic.AddInt64(&c.ex.rt.sourceEvents, 1)
	}
	c.ex.buffers[stream] = append(c.ex.buffers[stream], t)
}

func (c *chanRefCtx) ExecutorID() int      { return c.ex.index }
func (c *chanRefCtx) Parallelism() int     { return c.ex.node.Parallelism }
func (c *chanRefCtx) OperatorName() string { return c.ex.node.Name }
func (c *chanRefCtx) Work(uops, branches int) {}
func (c *chanRefCtx) AccessState(bytes int)   {}
func (c *chanRefCtx) ScanState(bytes int)     {}
func (c *chanRefCtx) ScanScratch(bytes int)   {}
func (c *chanRefCtx) Rand() *rand.Rand        { return c.ex.rng }
func (c *chanRefCtx) Input() (string, string) { return "", "" }
