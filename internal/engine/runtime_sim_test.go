package engine

import (
	"testing"

	"streamscale/internal/hw"
)

// countingSink tallies tuples; safe in the single-threaded sim runtime.
type countingSink struct {
	counts map[string]int64
	total  *int64
}

func (s *countingSink) Prepare(Context) {}
func (s *countingSink) Process(_ Context, t Tuple) {
	w := t.Values[0].(string)
	n := t.Values[1].(int64)
	if s.counts != nil && n > s.counts[w] {
		s.counts[w] = n
	}
	*s.total++
}

func simWC(t *testing.T, cfg SimConfig, sentences int) (*Result, map[string]int64, int64) {
	t.Helper()
	counts := map[string]int64{}
	var total int64
	topo := wcTopology(sentences, func() Operator { return &countingSink{counts: counts, total: &total} })
	res, err := RunSim(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, counts, total
}

func TestSimWordCountMatchesNative(t *testing.T) {
	res, counts, total := simWC(t, SimConfig{System: Flink(), Seed: 5}, 100)
	if res.SourceEvents != 200 {
		t.Fatalf("source events = %d, want 200", res.SourceEvents)
	}
	if total != 800 {
		t.Fatalf("sink updates = %d, want 800", total)
	}
	if counts["the"] != 200 {
		t.Fatalf(`count["the"] = %d, want 200`, counts["the"])
	}
	if res.ElapsedSeconds <= 0 {
		t.Fatal("no simulated time elapsed")
	}
	if res.Profile.Total() == 0 {
		t.Fatal("no cycles charged to the profile")
	}
}

func TestSimStormAckingCompletes(t *testing.T) {
	res, _, _ := simWC(t, SimConfig{System: Storm(), Seed: 5}, 80)
	if res.AckerCompleted != res.SourceEvents {
		t.Fatalf("acker completed %d of %d roots", res.AckerCompleted, res.SourceEvents)
	}
}

func TestSimDeterministicAcrossRuns(t *testing.T) {
	r1, _, _ := simWC(t, SimConfig{System: Storm(), Seed: 9}, 60)
	r2, _, _ := simWC(t, SimConfig{System: Storm(), Seed: 9}, 60)
	if r1.ElapsedSeconds != r2.ElapsedSeconds {
		t.Fatalf("elapsed differs across identical runs: %v vs %v", r1.ElapsedSeconds, r2.ElapsedSeconds)
	}
	if r1.Profile.Total() != r2.Profile.Total() {
		t.Fatalf("profile totals differ: %d vs %d", r1.Profile.Total(), r2.Profile.Total())
	}
}

func TestSimBatchingPreservesCountsAndHelps(t *testing.T) {
	r1, c1, t1 := simWC(t, SimConfig{System: Storm(), Seed: 3}, 150)
	r8, c8, t8 := simWC(t, SimConfig{System: Storm(), Seed: 3, BatchSize: 8}, 150)
	if t1 != t8 {
		t.Fatalf("batched totals differ: %d vs %d", t1, t8)
	}
	for k, v := range c1 {
		if c8[k] != v {
			t.Fatalf("count[%q]: %d vs %d", k, c8[k], v)
		}
	}
	tp1 := r1.Throughput().PerSecond()
	tp8 := r8.Throughput().PerSecond()
	if tp8 <= tp1 {
		t.Fatalf("batching did not help: %.0f -> %.0f events/s", tp1, tp8)
	}
}

func TestSimSingleSocketFasterThanFourForLightApp(t *testing.T) {
	// FD/SD-like light workloads degrade on multiple sockets (Fig 6).
	// The word-count micro-topology is light: one socket should be at
	// least competitive with four.
	r1, _, _ := simWC(t, SimConfig{System: Flink(), Seed: 4, Sockets: 1}, 150)
	r4, _, _ := simWC(t, SimConfig{System: Flink(), Seed: 4, Sockets: 4}, 150)
	if r4.QPIBytes == 0 {
		t.Fatal("four-socket run moved no QPI traffic")
	}
	if r1.QPIBytes != 0 {
		t.Fatalf("single-socket run moved %d QPI bytes", r1.QPIBytes)
	}
	lo, re := r4.Profile.LLCMissShares()
	if re == 0 {
		t.Fatalf("four-socket run shows no remote LLC stalls (local %.3f)", lo)
	}
}

func TestSimPlacementPinsExecutors(t *testing.T) {
	counts := map[string]int64{}
	var total int64
	topo := wcTopology(100, func() Operator { return &countingSink{counts: counts, total: &total} })
	xt, err := BuildExecTopology(topo, Flink())
	if err != nil {
		t.Fatal(err)
	}
	placement := map[int]int{}
	for _, ref := range ExecGraph(xt) {
		placement[ref.Global] = 0 // everything on socket 0
	}
	res, err := RunSim(topo, SimConfig{System: Flink(), Seed: 4, Sockets: 4, Placement: placement})
	if err != nil {
		t.Fatal(err)
	}
	if res.QPIBytes != 0 {
		t.Fatalf("fully co-located placement moved %d QPI bytes", res.QPIBytes)
	}
	for _, e := range res.Executors {
		if e.Socket != 0 {
			t.Fatalf("executor %s[%d] state on socket %d, want 0", e.Op, e.Index, e.Socket)
		}
	}
}

func TestSimPlacementOnDisabledSocketFails(t *testing.T) {
	topo := wcTopology(10, func() Operator { return ProcessFunc(func(Context, Tuple) {}) })
	_, err := RunSim(topo, SimConfig{
		System: Flink(), Seed: 1, Sockets: 1,
		Placement: map[int]int{0: 3},
	})
	if err == nil {
		t.Fatal("placement on a disabled socket did not error")
	}
}

func TestSimProfileHasFrontEndStalls(t *testing.T) {
	res, _, _ := simWC(t, SimConfig{System: Storm(), Seed: 2}, 150)
	bd := res.Profile.Breakdown()
	if bd.FrontEnd <= 0.05 {
		t.Fatalf("front-end share = %.3f, implausibly low for unbatched Storm", bd.FrontEnd)
	}
	if bd.Computation <= 0 {
		t.Fatal("no computation share")
	}
	fe := res.Profile.FrontEnd()
	if fe.L1IMiss == 0 || fe.IDecoding == 0 {
		t.Fatalf("front-end components missing: %+v", fe)
	}
	if res.Profile.Footprint.Count() == 0 {
		t.Fatal("no instruction-footprint samples")
	}
}

func TestSimGCAccountedButSmall(t *testing.T) {
	res, _, _ := simWC(t, SimConfig{System: Flink(), Seed: 2}, 200)
	if res.MinorGCs == 0 {
		t.Skip("run too small to trigger GC at this young-gen size")
	}
	if res.GCShare > 0.15 {
		t.Fatalf("GC share = %.3f, implausibly high", res.GCShare)
	}
}

func TestSimLatencyMeasured(t *testing.T) {
	res, _, _ := simWC(t, SimConfig{System: Flink(), Seed: 2, LatencySampleEvery: 1}, 100)
	if res.Latency.Count() == 0 {
		t.Fatal("no latency samples")
	}
	if res.Latency.Min() < 0 {
		t.Fatal("negative latency")
	}
}

func TestSimCPUAndMemUtilBounded(t *testing.T) {
	res, _, _ := simWC(t, SimConfig{System: Storm(), Seed: 7, Sockets: 1}, 100)
	if res.CPUUtil <= 0 || res.CPUUtil > 1 {
		t.Fatalf("CPU utilization = %v", res.CPUUtil)
	}
	if res.MemUtil < 0 || res.MemUtil > 1 {
		t.Fatalf("memory utilization = %v", res.MemUtil)
	}
}

func TestSimCoreLimitRestricts(t *testing.T) {
	res, _, _ := simWC(t, SimConfig{System: Flink(), Seed: 7, Sockets: 1, Cores: 1}, 400)
	if res.ElapsedSeconds <= 0 {
		t.Fatal("no time elapsed")
	}
	// With 1 core the same work serializes and takes clearly longer than
	// with 8 cores.
	res8, _, _ := simWC(t, SimConfig{System: Flink(), Seed: 7, Sockets: 1}, 400)
	if res.ElapsedSeconds <= res8.ElapsedSeconds*1.5 {
		t.Fatalf("1 core (%.4fs) not clearly slower than 8 cores (%.4fs)",
			res.ElapsedSeconds, res8.ElapsedSeconds)
	}
}

func TestSimFlinkBarriersFlow(t *testing.T) {
	// Force very frequent checkpoints and verify snapshots do not corrupt
	// results or deadlock alignment.
	sys := Flink()
	sys.CheckpointInterval = 3_000_000 // ~1.25 ms: many barriers per run
	res, _, total := simWC(t, SimConfig{System: sys, Seed: 6}, 120)
	if total != 120*2*4 {
		t.Fatalf("sink updates = %d with barriers, want %d", total, 120*2*4)
	}
	if res.SinkEvents != total {
		t.Fatalf("sink events %d != %d", res.SinkEvents, total)
	}
}

func TestSimMachineSpecOverride(t *testing.T) {
	spec := hw.TableIII()
	spec.Sockets = 2
	res, _, _ := simWC(t, SimConfig{System: Flink(), Seed: 1, Spec: spec}, 50)
	if res.SourceEvents != 100 {
		t.Fatalf("source events = %d", res.SourceEvents)
	}
}

// Open-loop source pacing: a throttled run's throughput matches the offered
// rate, and its latency is far below the saturated closed-loop run's.
func TestSimOpenLoopSourceRate(t *testing.T) {
	counts := map[string]int64{}
	var total int64
	mk := func() *Topology {
		return wcTopology(400, func() Operator { return &countingSink{counts: counts, total: &total} })
	}
	closed, err := RunSim(mk(), SimConfig{System: Flink(), Seed: 5, Sockets: 1, LatencySampleEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	rate := closed.Throughput().PerSecond() / 2 / 2 // half load, per source executor
	open, err := RunSim(mk(), SimConfig{
		System: Flink(), Seed: 5, Sockets: 1, SourceRate: rate, LatencySampleEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := open.Throughput().PerSecond()
	want := rate * 2 // two source executors
	if got < want*0.8 || got > want*1.2 {
		t.Fatalf("open-loop throughput %.0f, offered %.0f", got, want)
	}
	if open.Latency.Quantile(0.5) >= closed.Latency.Quantile(0.5) {
		t.Fatalf("open-loop p50 %.2f ms not below saturated p50 %.2f ms",
			open.Latency.Quantile(0.5), closed.Latency.Quantile(0.5))
	}
}

// Coordinated-omission correction: an overloaded open-loop run measures
// latency against the *intended* arrival schedule, so a throttled source
// that falls behind cannot forgive its own backpressure stalls. The
// corrected distribution must dominate the CoordinatedOmission ablation
// (latency against actual emission) at every quantile, and the flag must
// be inert on closed-loop runs.
func TestSimCoordinatedOmissionCorrection(t *testing.T) {
	mk := func() *Topology {
		return wcTopology(400, func() Operator { return ProcessFunc(func(Context, Tuple) {}) })
	}
	sat, err := RunSim(mk(), SimConfig{System: Storm(), Seed: 5, Sockets: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Offer 2x the measured capacity per source executor: the intended
	// schedule outruns what the machine can emit, so intended-arrival
	// latency must exceed emission-based latency.
	rate := sat.Throughput().PerSecond()
	base := SimConfig{System: Storm(), Seed: 5, Sockets: 1, SourceRate: rate, LatencySampleEvery: 1}
	corrected, err := RunSim(mk(), base)
	if err != nil {
		t.Fatal(err)
	}
	ablated := base
	ablated.CoordinatedOmission = true
	uncorrected, err := RunSim(mk(), ablated)
	if err != nil {
		t.Fatal(err)
	}
	if corrected.Latency.Count() != uncorrected.Latency.Count() {
		t.Fatalf("sample counts differ: corrected %d uncorrected %d",
			corrected.Latency.Count(), uncorrected.Latency.Count())
	}
	strictly := false
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 0.9999, 1} {
		c, u := corrected.Latency.Quantile(q), uncorrected.Latency.Quantile(q)
		if c < u {
			t.Errorf("corrected Quantile(%v) %.6f ms below uncorrected %.6f ms", q, c, u)
		}
		if c > u {
			strictly = true
		}
	}
	if !strictly {
		t.Error("correction had no effect at any quantile on a backpressured run")
	}

	// Closed-loop runs have no intended schedule: the ablation flag must
	// change nothing, quantile for quantile.
	closedOff, err := RunSim(mk(), SimConfig{System: Storm(), Seed: 5, Sockets: 1, LatencySampleEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	closedOn, err := RunSim(mk(), SimConfig{System: Storm(), Seed: 5, Sockets: 1, LatencySampleEvery: 1,
		CoordinatedOmission: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0.5, 0.99, 0.9999, 1} {
		if a, b := closedOff.Latency.Quantile(q), closedOn.Latency.Quantile(q); a != b {
			t.Errorf("CoordinatedOmission flag perturbed a closed-loop run: Quantile(%v) %v vs %v", q, a, b)
		}
	}
}

// Per-operator profiles partition the total account.
func TestSimOperatorProfiles(t *testing.T) {
	res, _, _ := simWC(t, SimConfig{System: Storm(), Seed: 2}, 100)
	if len(res.OperatorProfiles) == 0 {
		t.Fatal("no operator profiles")
	}
	var sum int64
	for op, p := range res.OperatorProfiles {
		if p.Total() <= 0 {
			t.Fatalf("operator %s charged no cycles", op)
		}
		sum += int64(p.Total())
	}
	if sum != int64(res.Profile.Total()) {
		t.Fatalf("operator profiles sum to %d, total is %d", sum, res.Profile.Total())
	}
	if _, ok := res.OperatorProfiles[AckerName]; !ok {
		t.Fatal("acker has no profile under the Storm profile")
	}
}

// TestSimPerExecutorAccounts pins the calibration inputs the placement cost
// model (internal/place) reads off a probe run: per-executor cost vectors
// must partition the global profile exactly, and the per-edge traffic
// account must be sorted, self-consistent, and cover all sink arrivals.
func TestSimPerExecutorAccounts(t *testing.T) {
	res, _, _ := simWC(t, SimConfig{System: Storm(), Seed: 5}, 80)

	var sum hw.CostVec
	for i := range res.Executors {
		e := &res.Executors[i]
		sum.AddVec(&e.Costs)
		if e.Tuples > 0 && e.Invocations == 0 {
			t.Errorf("executor %s[%d] processed %d tuples with zero invocations", e.Op, e.Index, e.Tuples)
		}
	}
	for b := hw.Bucket(0); b < hw.NumBuckets; b++ {
		if sum[b] != res.Profile.Costs[b] {
			t.Errorf("bucket %v: executor sum %d != profile %d", b, sum[b], res.Profile.Costs[b])
		}
	}

	if len(res.Edges) == 0 {
		t.Fatal("no edge traffic recorded")
	}
	var tuples int64
	for i, ed := range res.Edges {
		if i > 0 {
			prev := res.Edges[i-1]
			if ed.From < prev.From || (ed.From == prev.From && ed.To <= prev.To) {
				t.Errorf("edges not strictly sorted at %d: %+v after %+v", i, ed, prev)
			}
		}
		if ed.Msgs <= 0 || ed.Tuples < 0 || ed.Bytes < 0 {
			t.Errorf("implausible edge stat %+v", ed)
		}
		if ed.From == ed.To {
			t.Errorf("self-edge recorded: %+v", ed)
		}
		tuples += ed.Tuples
	}
	// Every tuple any executor consumed arrived over some recorded edge.
	var consumed int64
	for _, e := range res.Executors {
		if e.Op != res.Executors[0].Op { // skip sources (index 0 is the source op)
			consumed += e.Tuples
		}
	}
	if tuples < consumed {
		t.Errorf("edge tuples %d < consumed tuples %d", tuples, consumed)
	}
}

// TestSimExecutorProfileView checks the per-executor Profile view renders
// the same breakdown the global profile would for the same vector.
func TestSimExecutorProfileView(t *testing.T) {
	res, _, _ := simWC(t, SimConfig{System: Flink(), Seed: 7}, 40)
	for i := range res.Executors {
		e := &res.Executors[i]
		if e.Costs.Total() == 0 {
			continue
		}
		p := e.Profile()
		if p.Total() != e.Costs.Total() {
			t.Fatalf("executor %s[%d]: profile total %d != costs total %d",
				e.Op, e.Index, p.Total(), e.Costs.Total())
		}
	}
}
