package engine

import (
	"testing"
)

// burstSource emits many tuples per Next call to stress output queues.
type burstSource struct {
	n, per int
}

func (s *burstSource) Prepare(Context) {}
func (s *burstSource) Next(ctx Context) bool {
	if s.n <= 0 {
		return false
	}
	s.n--
	for i := 0; i < s.per; i++ {
		ctx.Emit(s.n, i)
	}
	return s.n > 0
}

// slowFanout amplifies each input (stressing downstream queues further).
type slowFanout struct{}

func (slowFanout) Prepare(Context) {}
func (slowFanout) Process(ctx Context, t Tuple) {
	ctx.Work(50_000, 100) // slow consumer
	ctx.Emit(t.Values[0], t.Values[1])
	ctx.Emit(t.Values[0], t.Values[1])
}

// With queue capacity 2 and bursty, amplifying producers, the simulation
// must neither deadlock nor lose tuples: bounded queues exert backpressure
// through the blocking protocol.
func TestSimTinyQueuesBackpressure(t *testing.T) {
	for _, sys := range []SystemProfile{Storm(), Flink()} {
		topo := NewTopology("bp")
		topo.AddSource("src", 1, func() Source { return &burstSource{n: 100, per: 7} },
			Stream(DefaultStream, "a", "b"))
		topo.AddOp("fan", 2, func() Operator { return slowFanout{} },
			Stream(DefaultStream, "a", "b")).
			SubDefault("src", Shuffle())
		topo.AddOp("sink", 1, func() Operator { return ProcessFunc(func(Context, Tuple) {}) }).
			SubDefault("fan", Fields("a"))

		res, err := RunSim(topo, SimConfig{System: sys, Seed: 3, Sockets: 1, QueueCap: 2})
		if err != nil {
			t.Fatalf("%s: %v", sys.Name, err)
		}
		if res.SourceEvents != 700 {
			t.Fatalf("%s: source events = %d, want 700", sys.Name, res.SourceEvents)
		}
		if res.SinkEvents != 1400 {
			t.Fatalf("%s: sink events = %d, want 1400 (2x amplification)", sys.Name, res.SinkEvents)
		}
		if sys.AckEnabled && res.AckerCompleted != res.SourceEvents {
			t.Fatalf("%s: acking incomplete under backpressure: %d/%d",
				sys.Name, res.AckerCompleted, res.SourceEvents)
		}
	}
}

// Native runtime under the same pressure.
func TestNativeTinyQueuesBackpressure(t *testing.T) {
	topo := NewTopology("bp")
	topo.AddSource("src", 2, func() Source { return &burstSource{n: 50, per: 5} },
		Stream(DefaultStream, "a", "b"))
	topo.AddOp("fan", 3, func() Operator { return slowFanout{} },
		Stream(DefaultStream, "a", "b")).
		SubDefault("src", Shuffle())
	topo.AddOp("sink", 2, func() Operator { return ProcessFunc(func(Context, Tuple) {}) }).
		SubDefault("fan", Fields("b"))

	res, err := RunNative(topo, NativeConfig{System: Storm(), Seed: 3, QueueCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.SinkEvents != 2*2*50*5 {
		t.Fatalf("sink events = %d, want %d", res.SinkEvents, 2*2*50*5)
	}
	if res.AckerCompleted != res.SourceEvents {
		t.Fatalf("acking incomplete: %d/%d", res.AckerCompleted, res.SourceEvents)
	}
}

// A Flusher that emits a large burst at EOS while downstream queues are
// tiny: the finish path must handle blocked flushes without losing data.
type burstFlusher struct{ seen int }

func (b *burstFlusher) Prepare(Context) {}
func (b *burstFlusher) Process(_ Context, t Tuple) {
	b.seen++
}
func (b *burstFlusher) Flush(ctx Context) {
	for i := 0; i < b.seen; i++ {
		ctx.Emit(i)
	}
}

func TestSimFlushBurstThroughTinyQueues(t *testing.T) {
	topo := NewTopology("fb")
	topo.AddSource("src", 1, func() Source { return &burstSource{n: 60, per: 1} },
		Stream(DefaultStream, "a", "b"))
	topo.AddOp("hold", 1, func() Operator { return &burstFlusher{} },
		Stream(DefaultStream, "i")).
		SubDefault("src", Shuffle())
	topo.AddOp("sink", 1, func() Operator { return ProcessFunc(func(Context, Tuple) {}) }).
		SubDefault("hold", Shuffle())

	res, err := RunSim(topo, SimConfig{System: Flink(), Seed: 1, Sockets: 1, QueueCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.SinkEvents != 60 {
		t.Fatalf("sink events = %d, want 60 (flush burst lost)", res.SinkEvents)
	}
}

// Determinism must hold under extreme queue pressure too.
func TestSimBackpressureDeterminism(t *testing.T) {
	run := func() (float64, int64) {
		topo := NewTopology("bp")
		topo.AddSource("src", 1, func() Source { return &burstSource{n: 80, per: 4} },
			Stream(DefaultStream, "a", "b"))
		topo.AddOp("fan", 2, func() Operator { return slowFanout{} },
			Stream(DefaultStream, "a", "b")).
			SubDefault("src", Shuffle())
		topo.AddOp("sink", 1, func() Operator { return ProcessFunc(func(Context, Tuple) {}) }).
			SubDefault("fan", Fields("a"))
		res, err := RunSim(topo, SimConfig{System: Storm(), Seed: 11, Sockets: 1, QueueCap: 3})
		if err != nil {
			t.Fatal(err)
		}
		return res.ElapsedSeconds, res.SinkEvents
	}
	e1, s1 := run()
	e2, s2 := run()
	if e1 != e2 || s1 != s2 {
		t.Fatalf("nondeterministic under backpressure: (%v,%d) vs (%v,%d)", e1, s1, e2, s2)
	}
}

// Failure injection: a zombie executor drops its share of tuples; Storm's
// XOR accounting surfaces exactly that loss as incomplete tuple trees.
func TestSimFailureInjectionSurfacesInAcking(t *testing.T) {
	build := func() *Topology {
		topo := NewTopology("fi")
		topo.AddSource("src", 1, func() Source { return &burstSource{n: 200, per: 1} },
			Stream(DefaultStream, "a", "b"))
		topo.AddOp("work", 2, func() Operator {
			return ProcessFunc(func(ctx Context, tp Tuple) { ctx.Emit(tp.Values...) })
		}, Stream(DefaultStream, "a", "b")).
			SubDefault("src", Shuffle())
		topo.AddOp("sink", 1, func() Operator { return ProcessFunc(func(Context, Tuple) {}) }).
			SubDefault("work", Shuffle())
		return topo
	}
	healthy, err := RunSim(build(), SimConfig{System: Storm(), Seed: 2, Sockets: 1})
	if err != nil {
		t.Fatal(err)
	}
	if healthy.AckerCompleted != healthy.SourceEvents {
		t.Fatalf("healthy run incomplete: %d/%d", healthy.AckerCompleted, healthy.SourceEvents)
	}

	// Fail work[1] (global index 3: src=0, acker injected last) after 20
	// tuples. Find its global index robustly via the exec graph.
	xt, err := BuildExecTopology(build(), Storm())
	if err != nil {
		t.Fatal(err)
	}
	fail := map[int]int64{}
	for _, ref := range ExecGraph(xt) {
		if ref.Op == "work" && ref.Index == 1 {
			fail[ref.Global] = 20
		}
	}
	if len(fail) != 1 {
		t.Fatalf("could not locate work[1]: %v", fail)
	}
	broken, err := RunSim(build(), SimConfig{System: Storm(), Seed: 2, Sockets: 1, FailAfter: fail})
	if err != nil {
		t.Fatal(err)
	}
	lost := broken.SourceEvents - broken.AckerCompleted
	if lost <= 0 {
		t.Fatalf("zombie executor lost no tuple trees (%d/%d complete)",
			broken.AckerCompleted, broken.SourceEvents)
	}
	// Roughly half the stream routes through the failed executor; all of
	// it after the first 20 tuples should be lost.
	if lost < 50 || lost > 150 {
		t.Fatalf("lost %d of %d trees; expected roughly half", lost, broken.SourceEvents)
	}
	if broken.SinkEvents >= healthy.SinkEvents {
		t.Fatal("sink saw as many tuples despite the failure")
	}
}
