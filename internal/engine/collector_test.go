package engine

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mkTuples(keys ...string) []Tuple {
	ts := make([]Tuple, len(keys))
	for i, k := range keys {
		ts[i] = Tuple{Values: []Value{k, i}}
	}
	return ts
}

var wordStream = Stream(DefaultStream, "word", "n")

func fieldsRouter(consumers int) *edgeRouter {
	return newEdgeRouter(wordStream, Subscription{Group: Fields("word")}, consumers)
}

func TestFieldsRoutingSameKeySameConsumer(t *testing.T) {
	r := fieldsRouter(3)
	batches := r.route(mkTuples("a", "b", "a", "c", "a", "b"), 0)
	dest := map[string]int{}
	for _, b := range batches {
		for _, tu := range b.Tuples {
			w := tu.Values[0].(string)
			if prev, ok := dest[w]; ok && prev != b.Consumer {
				t.Fatalf("key %q routed to consumers %d and %d", w, prev, b.Consumer)
			}
			dest[w] = b.Consumer
		}
	}
	// Per Algorithm 1, one batch per destination (no cap): at most 3.
	if len(batches) > 3 {
		t.Fatalf("%d batches for 3 consumers, want <= 3", len(batches))
	}
}

func TestFieldsRoutingStableAcrossInvocations(t *testing.T) {
	r1 := fieldsRouter(4)
	r2 := fieldsRouter(4)
	b1 := r1.route(mkTuples("x"), 0)
	b2 := r2.route(mkTuples("x", "y", "x"), 0)
	var c1, c2 = -1, -1
	c1 = b1[0].Consumer
	for _, b := range b2 {
		for _, tu := range b.Tuples {
			if tu.Values[0].(string) == "x" {
				c2 = b.Consumer
			}
		}
	}
	if c1 != c2 {
		t.Fatalf("key routed to %d then %d across invocations", c1, c2)
	}
}

func TestShuffleRoutingBalancesBlocks(t *testing.T) {
	r := newEdgeRouter(wordStream, Subscription{Group: Shuffle()}, 2)
	counts := map[int]int{}
	for inv := 0; inv < 10; inv++ {
		for _, b := range r.route(mkTuples("a", "b", "c", "d"), 2) {
			if len(b.Tuples) != 2 {
				t.Fatalf("block size %d, want 2", len(b.Tuples))
			}
			counts[b.Consumer] += len(b.Tuples)
		}
	}
	if counts[0] != counts[1] {
		t.Fatalf("shuffle imbalance: %v", counts)
	}
}

func TestShuffleRotatesStartConsumer(t *testing.T) {
	r := newEdgeRouter(wordStream, Subscription{Group: Shuffle()}, 3)
	first := r.route(mkTuples("a"), 1)[0].Consumer
	second := r.route(mkTuples("a"), 1)[0].Consumer
	if first == second {
		t.Fatalf("consecutive single-tuple invocations hit the same consumer %d", first)
	}
}

func TestGlobalRoutingAllToZero(t *testing.T) {
	r := newEdgeRouter(wordStream, Subscription{Group: Global()}, 5)
	for _, b := range r.route(mkTuples("a", "b", "c"), 0) {
		if b.Consumer != 0 {
			t.Fatalf("global routed to %d", b.Consumer)
		}
	}
}

func TestAllRoutingReplicates(t *testing.T) {
	r := newEdgeRouter(wordStream, Subscription{Group: All()}, 3)
	batches := r.route(mkTuples("a", "b"), 0)
	got := map[int]int{}
	for _, b := range batches {
		got[b.Consumer] += len(b.Tuples)
	}
	for c := 0; c < 3; c++ {
		if got[c] != 2 {
			t.Fatalf("consumer %d got %d tuples, want 2", c, got[c])
		}
	}
}

func TestBatchCapSplits(t *testing.T) {
	r := newEdgeRouter(wordStream, Subscription{Group: Global()}, 1)
	batches := r.route(mkTuples("a", "b", "c", "d", "e"), 2)
	if len(batches) != 3 {
		t.Fatalf("got %d batches, want 3 (2+2+1)", len(batches))
	}
	if len(batches[2].Tuples) != 1 {
		t.Fatalf("last batch size %d, want 1", len(batches[2].Tuples))
	}
}

func TestEmptyRouteReturnsNil(t *testing.T) {
	r := fieldsRouter(3)
	if got := r.route(nil, 0); got != nil {
		t.Fatalf("routing no tuples produced %v", got)
	}
}

// Property (Algorithm 1 correctness): for any batch of keyed tuples and any
// consumer count, (1) every input tuple appears in exactly one output batch,
// (2) all tuples with equal keys land on the same consumer, and (3) the
// destination matches hash(key) mod n, i.e. agrees with unbatched fields
// grouping.
func TestFieldsRoutingProperty(t *testing.T) {
	f := func(raw []uint8, nc uint8) bool {
		consumers := int(nc%7) + 1
		keys := make([]string, len(raw))
		for i, b := range raw {
			keys[i] = string(rune('a' + b%16))
		}
		r := fieldsRouter(consumers)
		in := mkTuples(keys...)
		out := r.route(in, 0)

		seen := 0
		for _, b := range out {
			for _, tu := range b.Tuples {
				seen++
				k := tu.Values[0].(string)
				want := int(HashFields([]Value{k}, []int{0}) % uint64(consumers))
				if b.Consumer != want {
					return false
				}
			}
		}
		return seen == len(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: shuffle routing delivers every tuple exactly once and stays
// balanced within one block size across consumers over many invocations.
func TestShuffleRoutingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		consumers := rng.Intn(6) + 1
		capSize := rng.Intn(8) + 1
		r := newEdgeRouter(wordStream, Subscription{Group: Shuffle()}, consumers)
		counts := make([]int, consumers)
		total := 0
		for inv := 0; inv < 30; inv++ {
			n := rng.Intn(12)
			in := make([]Tuple, n)
			for i := range in {
				in[i] = Tuple{Values: []Value{"k", i}}
			}
			got := 0
			for _, b := range r.route(in, capSize) {
				counts[b.Consumer] += len(b.Tuples)
				got += len(b.Tuples)
			}
			if got != n {
				return false
			}
			total += n
		}
		min, max := counts[0], counts[0]
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		_ = total
		return max-min <= capSize*2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
