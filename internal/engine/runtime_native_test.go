package engine

import (
	"fmt"
	"sync"
	"testing"
)

// testWordSource emits n fixed sentences.
type testWordSource struct {
	n, emitted int
}

func (s *testWordSource) Prepare(Context) {}
func (s *testWordSource) Next(ctx Context) bool {
	if s.emitted >= s.n {
		return false
	}
	ctx.Emit(fmt.Sprintf("the quick fox %d", s.emitted%5))
	s.emitted++
	return s.emitted < s.n
}

// testSplit splits sentences into words.
type testSplit struct{}

func (testSplit) Prepare(Context) {}
func (testSplit) Process(ctx Context, t Tuple) {
	s := t.Values[0].(string)
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ' ' {
			if i > start {
				ctx.Emit(s[start:i])
			}
			start = i + 1
		}
	}
}

// testCount maintains word counts and emits updates.
type testCount struct{ counts map[string]int64 }

func (c *testCount) Prepare(Context) { c.counts = make(map[string]int64) }
func (c *testCount) Process(ctx Context, t Tuple) {
	w := t.Values[0].(string)
	c.counts[w]++
	ctx.Emit(w, c.counts[w])
}

// collectSink records everything it sees, concurrency-safe.
type collectSink struct {
	mu    *sync.Mutex
	got   *map[string]int64
	total *int64
}

func (s *collectSink) Prepare(Context) {}
func (s *collectSink) Process(_ Context, t Tuple) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := t.Values[0].(string)
	n := t.Values[1].(int64)
	if n > (*s.got)[w] {
		(*s.got)[w] = n
	}
	*s.total++
}

func wcTopology(sentences int, sink func() Operator) *Topology {
	t := NewTopology("wc-test")
	t.AddSource("source", 2, func() Source { return &testWordSource{n: sentences} },
		Stream(DefaultStream, "sentence"))
	t.AddOp("split", 3, func() Operator { return testSplit{} },
		Stream(DefaultStream, "word")).
		SubDefault("source", Shuffle())
	t.AddOp("count", 2, func() Operator { return &testCount{} },
		Stream(DefaultStream, "word", "count")).
		SubDefault("split", Fields("word"))
	t.AddOp("sink", 1, sink).SubDefault("count", Global())
	return t
}

func runWC(t *testing.T, sys SystemProfile, batch int) (*Result, map[string]int64, int64) {
	t.Helper()
	var mu sync.Mutex
	got := map[string]int64{}
	var total int64
	topo := wcTopology(100, func() Operator { return &collectSink{mu: &mu, got: &got, total: &total} })
	res, err := RunNative(topo, NativeConfig{System: sys, BatchSize: batch, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return res, got, total
}

func TestNativeWordCountExactCounts(t *testing.T) {
	res, got, total := runWC(t, Flink(), 1)
	// 2 source executors x 100 sentences x 4 words each.
	if res.SourceEvents != 200 {
		t.Fatalf("source events = %d, want 200", res.SourceEvents)
	}
	if total != 800 {
		t.Fatalf("sink saw %d count updates, want 800", total)
	}
	// "the" appears once per sentence: 200 total across 2 sources.
	if got["the"] != 200 {
		t.Fatalf(`count["the"] = %d, want 200`, got["the"])
	}
	// Sentences cycle through 5 numeric suffixes: 40 each per source.
	for i := 0; i < 5; i++ {
		k := fmt.Sprintf("%d", i)
		if got[k] != 40 {
			t.Fatalf("count[%q] = %d, want 40", k, got[k])
		}
	}
	if res.SinkEvents != 800 {
		t.Fatalf("SinkEvents = %d, want 800", res.SinkEvents)
	}
}

func TestNativeBatchingPreservesResults(t *testing.T) {
	_, base, baseTotal := runWC(t, Flink(), 1)
	for _, S := range []int{2, 4, 8} {
		_, got, total := runWC(t, Flink(), S)
		if total != baseTotal {
			t.Fatalf("S=%d: total %d != unbatched %d", S, total, baseTotal)
		}
		for k, v := range base {
			if got[k] != v {
				t.Fatalf("S=%d: count[%q] = %d, want %d", S, k, got[k], v)
			}
		}
	}
}

func TestNativeStormAckingCompletesAllRoots(t *testing.T) {
	res, _, _ := runWC(t, Storm(), 1)
	// Every source tuple tree must fully XOR to zero at the acker.
	if res.AckerCompleted != res.SourceEvents {
		t.Fatalf("acker completed %d of %d roots", res.AckerCompleted, res.SourceEvents)
	}
}

func TestNativeStormAckingWithBatching(t *testing.T) {
	res, _, _ := runWC(t, Storm(), 8)
	if res.AckerCompleted != res.SourceEvents {
		t.Fatalf("batched acking completed %d of %d roots", res.AckerCompleted, res.SourceEvents)
	}
}

func TestNativeLatencyObserved(t *testing.T) {
	res, _, _ := runWC(t, Flink(), 1)
	if res.Latency.Count() == 0 {
		t.Fatal("no latency samples collected")
	}
	if res.Latency.Mean() < 0 {
		t.Fatal("negative latency")
	}
}

// Replication (all grouping) with acking: each delivered copy is its own
// anchor edge and the tree must still complete.
func TestNativeAllGroupingAcking(t *testing.T) {
	topo := NewTopology("all-test")
	topo.AddSource("src", 1, func() Source { return &testWordSource{n: 50} },
		Stream(DefaultStream, "sentence"))
	topo.AddOp("fan", 3, func() Operator {
		return ProcessFunc(func(ctx Context, t Tuple) { ctx.Emit(t.Values[0]) })
	}, Stream(DefaultStream, "sentence")).SubDefault("src", All())
	topo.AddOp("sink", 2, func() Operator {
		return ProcessFunc(func(Context, Tuple) {})
	}).SubDefault("fan", Shuffle())

	res, err := RunNative(topo, NativeConfig{System: Storm(), BatchSize: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.AckerCompleted != res.SourceEvents {
		t.Fatalf("replicated acking completed %d of %d roots", res.AckerCompleted, res.SourceEvents)
	}
	// 1 source tuple -> 3 fan copies -> 3 sink tuples each... fan emits one
	// tuple per copy, so sinks see 3x the source events.
	if res.SinkEvents != 3*res.SourceEvents {
		t.Fatalf("sink events = %d, want %d", res.SinkEvents, 3*res.SourceEvents)
	}
}

// A Flusher operator must drain its buffer exactly once at EOS.
type bufferingOp struct {
	buf []Tuple
}

func (b *bufferingOp) Prepare(Context) {}
func (b *bufferingOp) Process(_ Context, t Tuple) {
	b.buf = append(b.buf, t)
}
func (b *bufferingOp) Flush(ctx Context) {
	for _, t := range b.buf {
		ctx.Emit(t.Values...)
	}
	b.buf = nil
}

func TestNativeFlusherDrainsAtEOS(t *testing.T) {
	topo := NewTopology("flush-test")
	topo.AddSource("src", 1, func() Source { return &testWordSource{n: 30} },
		Stream(DefaultStream, "sentence"))
	topo.AddOp("buffer", 1, func() Operator { return &bufferingOp{} },
		Stream(DefaultStream, "sentence")).SubDefault("src", Shuffle())
	topo.AddOp("sink", 1, func() Operator {
		return ProcessFunc(func(Context, Tuple) {})
	}).SubDefault("buffer", Shuffle())

	res, err := RunNative(topo, NativeConfig{System: Flink(), BatchSize: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.SinkEvents != res.SourceEvents {
		t.Fatalf("sink events = %d, want %d (flush lost tuples)", res.SinkEvents, res.SourceEvents)
	}
}

func TestNativeEmitToUndeclaredStreamPanics(t *testing.T) {
	topo := NewTopology("bad")
	topo.AddSource("src", 1, func() Source { return &badSource{} }, Stream(DefaultStream, "v"))
	topo.AddOp("sink", 1, func() Operator { return ProcessFunc(func(Context, Tuple) {}) }).
		SubDefault("src", Shuffle())
	defer func() {
		if recover() == nil {
			t.Fatal("emit to undeclared stream did not panic")
		}
	}()
	// Run on the calling goroutine path far enough to trigger the panic:
	// the source's first Next panics inside a worker goroutine, so instead
	// invoke the context directly.
	rt := &nativeRuntime{cfg: NativeConfig{System: Flink(), BatchSize: 1, QueueCap: 8, LatencySampleEvery: 16}, topo: mustExec(topo, Flink())}
	rt.build()
	src := rt.byOp["src"][0]
	src.ctx = &nativeCtx{ex: src}
	src.ctx.EmitTo("nosuch", "x")
}

type badSource struct{}

func (badSource) Prepare(Context) {}
func (badSource) Next(ctx Context) bool {
	ctx.EmitTo("nosuch", "x")
	return false
}

func mustExec(t *Topology, sys SystemProfile) *Topology {
	xt, err := BuildExecTopology(t, sys)
	if err != nil {
		panic(err)
	}
	return xt
}

func TestBuildExecTopologyAckerWiring(t *testing.T) {
	topo := wcTopology(10, func() Operator { return ProcessFunc(func(Context, Tuple) {}) })
	xt, err := BuildExecTopology(topo, Storm())
	if err != nil {
		t.Fatal(err)
	}
	acker := xt.Node(AckerName)
	if acker == nil {
		t.Fatal("no acker injected under the Storm profile")
	}
	if len(acker.Subs) != 4 {
		t.Fatalf("acker subscribes to %d nodes, want 4", len(acker.Subs))
	}
	for _, n := range xt.Nodes() {
		if n.System {
			continue
		}
		if _, ok := n.OutStream(AckStream); !ok {
			t.Fatalf("node %q lacks an __ack stream", n.Name)
		}
	}
	// Original topology untouched.
	if _, ok := topo.Node("source").OutStream(AckStream); ok {
		t.Fatal("BuildExecTopology mutated the input topology")
	}
	// Flink profile: no acker.
	xt2, _ := BuildExecTopology(topo, Flink())
	if xt2.Node(AckerName) != nil {
		t.Fatal("acker injected under the Flink profile")
	}
}

func TestAckerXORSemantics(t *testing.T) {
	a := NewAcker()
	emit := func(root, x int64) {
		a.Process(nil, Tuple{Values: []Value{root, x}})
	}
	// Root 1: edges 5 and 9 each reported twice -> completes.
	emit(1, 5)
	emit(1, 9^5)
	emit(1, 9)
	if a.Completed() != 1 {
		t.Fatalf("completed = %d, want 1", a.Completed())
	}
	// Root 2: unbalanced -> stays pending.
	emit(2, 7)
	if a.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", a.Pending())
	}
}
