package engine

import (
	"fmt"
	"testing"
)

// identityWord re-emits each word unchanged — a fusable middle stage whose
// only purpose is to give the chainer a shuffle-connected equal-parallelism
// pair to work with.
type identityWord struct{}

func (identityWord) Prepare(Context) {}
func (identityWord) Process(ctx Context, t Tuple) {
	ctx.Emit(t.Values...)
}

// wcScaledTopology is the word-count pipeline with an explicit per-operator
// parallelism vector (the shape Cell.ParallelismOverride produces) and a
// chainable split->norm hop: norm runs at split's parallelism over a
// shuffle subscription, so ChainTopology fuses exactly that pair.
func wcScaledTopology(sentences, srcPar, splitPar, countPar int) *Topology {
	t := NewTopology("wc-chain-par")
	t.AddSource("source", srcPar, func() Source { return &testWordSource{n: sentences} },
		Stream(DefaultStream, "sentence"))
	t.AddOp("split", splitPar, func() Operator { return testSplit{} },
		Stream(DefaultStream, "word")).
		SubDefault("source", Shuffle())
	t.AddOp("norm", splitPar, func() Operator { return identityWord{} },
		Stream(DefaultStream, "word")).
		SubDefault("split", Shuffle())
	t.AddOp("count", countPar, func() Operator { return &testCount{} },
		Stream(DefaultStream, "word", "count")).
		SubDefault("norm", Fields("word"))
	t.AddOp("sink", 1, func() Operator { return ProcessFunc(func(Context, Tuple) {}) }).
		SubDefault("count", Global())
	return t
}

// TestChainScaledPreservesCounts pins chaining x parallelism: fusing the
// chainable pair of a topology running a non-default parallelism vector
// must not change what flows. Per-operator input-tuple totals are
// preserved (the fused node sees the head's inputs; downstream operators
// see the same stream), sink totals match, and the XOR-ack ledger still
// completes every source tuple tree — on both the simulator and the
// native runtime.
func TestChainScaledPreservesCounts(t *testing.T) {
	const sentences = 60
	vectors := [][3]int{
		{2, 3, 2}, // seed default shape
		{2, 4, 3}, // scaled: wider split/norm and count
		{1, 6, 2}, // skewed: heavy fusable stage, single source
	}
	for _, sys := range []SystemProfile{Storm(), Flink()} {
		for _, v := range vectors {
			name := fmt.Sprintf("%s/src=%d,split=%d,count=%d", sys.Name, v[0], v[1], v[2])
			t.Run(name, func(t *testing.T) {
				chained, fused, err := ChainTopology(wcScaledTopology(sentences, v[0], v[1], v[2]))
				if err != nil {
					t.Fatal(err)
				}
				if len(fused) != 1 || fused[0] != "split->norm" {
					t.Fatalf("fused pairs %v, want [split->norm]", fused)
				}

				plain, err := RunSim(wcScaledTopology(sentences, v[0], v[1], v[2]),
					SimConfig{System: sys, Seed: 7, Sockets: 1})
				if err != nil {
					t.Fatal(err)
				}
				sim, err := RunSim(chained, SimConfig{System: sys, Seed: 7, Sockets: 1})
				if err != nil {
					t.Fatal(err)
				}
				checkChainedCounts(t, "sim", plain, sim, sys)

				chained, _, err = ChainTopology(wcScaledTopology(sentences, v[0], v[1], v[2]))
				if err != nil {
					t.Fatal(err)
				}
				nplain, err := RunNative(wcScaledTopology(sentences, v[0], v[1], v[2]),
					NativeConfig{System: sys, Seed: 7})
				if err != nil {
					t.Fatal(err)
				}
				nat, err := RunNative(chained, NativeConfig{System: sys, Seed: 7})
				if err != nil {
					t.Fatal(err)
				}
				checkChainedCounts(t, "native", nplain, nat, sys)
			})
		}
	}
}

// checkChainedCounts compares an unchained run against its chained
// counterpart: identical source/sink totals, a complete ack ledger, the
// fused node charged with the head's input tuples, and untouched inputs
// everywhere else.
func checkChainedCounts(t *testing.T, runtime string, plain, chained *Result, sys SystemProfile) {
	t.Helper()
	if plain.SourceEvents != chained.SourceEvents {
		t.Errorf("%s: source events %d unchained, %d chained", runtime, plain.SourceEvents, chained.SourceEvents)
	}
	if plain.SinkEvents != chained.SinkEvents {
		t.Errorf("%s: sink events %d unchained, %d chained", runtime, plain.SinkEvents, chained.SinkEvents)
	}
	if sys.AckEnabled {
		// XOR-ack completeness: every source tuple tree must fully ack in
		// BOTH shapes — fusing a hop removes an anchor link, and the ledger
		// has to stay balanced without it.
		if plain.AckerCompleted != plain.SourceEvents {
			t.Errorf("%s: unchained acked %d of %d trees", runtime, plain.AckerCompleted, plain.SourceEvents)
		}
		if chained.AckerCompleted != chained.SourceEvents {
			t.Errorf("%s: chained acked %d of %d trees", runtime, chained.AckerCompleted, chained.SourceEvents)
		}
	}
	want := opTupleTotals(plain)
	got := opTupleTotals(chained)
	for op, n := range got {
		if op == AckerName {
			continue // acker invocation counts differ by construction
		}
		if op == "split+norm" {
			if n != want["split"] {
				t.Errorf("%s: fused split+norm saw %d tuples, want head's %d", runtime, n, want["split"])
			}
			continue
		}
		if n != want[op] {
			t.Errorf("%s: operator %q saw %d tuples chained, %d unchained", runtime, op, n, want[op])
		}
	}
}
