package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"streamscale/internal/metrics"
)

// NativeConfig configures a run on the native (goroutine) runtime.
type NativeConfig struct {
	// System selects the engine profile; only its acking/batching plumbing
	// affects the native runtime (the cost model is simulation-only).
	System SystemProfile
	// BatchSize is the source batch size S of the paper's §VI-A;
	// 1 (or 0) disables batching.
	BatchSize int
	// QueueCap overrides the profile's executor queue capacity.
	QueueCap int
	// Seed drives all per-executor randomness.
	Seed int64
	// LatencySampleEvery samples end-to-end latency every n-th sink tuple
	// (default 16).
	LatencySampleEvery int
}

func (c *NativeConfig) fill() {
	if c.BatchSize <= 0 {
		c.BatchSize = 1
	}
	if c.QueueCap <= 0 {
		c.QueueCap = c.System.QueueCap
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 1024
	}
	if c.LatencySampleEvery <= 0 {
		c.LatencySampleEvery = 16
	}
}

// RunNative executes the topology with real goroutines and channels and
// returns measured wall-clock results. It blocks until all sources are
// exhausted and the pipeline has fully drained.
func RunNative(t *Topology, cfg NativeConfig) (*Result, error) {
	cfg.fill()
	xt, err := BuildExecTopology(t, cfg.System)
	if err != nil {
		return nil, err
	}
	rt := &nativeRuntime{cfg: cfg, topo: xt}
	rt.build()
	return rt.run(t.Name)
}

type nativeRuntime struct {
	cfg  NativeConfig
	topo *Topology

	execs   []*nativeExec
	byOp    map[string][]*nativeExec
	rootCtr int64

	sourceEvents int64
	sinkEvents   int64
}

type nativeEdge struct {
	router    *edgeRouter
	stream    string
	consumers []*nativeExec
	system    bool // consumer is a system node (acker): no ack tracking
}

type nativeExec struct {
	rt     *nativeRuntime
	node   *Node
	index  int
	global int

	op  Operator
	src Source

	in         chan Msg
	nProducers int
	edges      map[string][]*nativeEdge // by stream name

	rng     *rand.Rand
	latency *metrics.Histogram
	sinkN   int64
	isSink  bool

	// per-invocation state
	ctx      *nativeCtx
	buffers  map[string][]Tuple
	ackAccum map[int64]int64
}

func (rt *nativeRuntime) build() {
	rt.byOp = make(map[string][]*nativeExec)
	global := 0
	for _, n := range rt.topo.Nodes() {
		for i := 0; i < n.Parallelism; i++ {
			e := &nativeExec{
				rt: rt, node: n, index: i, global: global,
				rng:     rand.New(rand.NewSource(rt.cfg.Seed + int64(global)*7919 + 1)),
				buffers: make(map[string][]Tuple),
				edges:   make(map[string][]*nativeEdge),
				latency: metrics.NewHistogram(1 << 14),
			}
			if n.IsSource() {
				e.src = n.NewSource()
			} else {
				e.op = n.NewOp()
				e.in = make(chan Msg, rt.cfg.QueueCap)
			}
			e.isSink = isSink(n)
			rt.execs = append(rt.execs, e)
			rt.byOp[n.Name] = append(rt.byOp[n.Name], e)
			global++
		}
	}
	// Wire edges and count producers.
	for _, n := range rt.topo.Nodes() {
		for _, ed := range rt.topo.Consumers(n.Name) {
			ss, _ := n.OutStream(ed.Sub.Stream)
			for _, pe := range rt.byOp[n.Name] {
				pe.edges[ed.Sub.Stream] = append(pe.edges[ed.Sub.Stream], &nativeEdge{
					router:    newEdgeRouter(ss, ed.Sub, ed.Consumer.Parallelism),
					stream:    ed.Sub.Stream,
					consumers: rt.byOp[ed.Consumer.Name],
					system:    ed.Consumer.System,
				})
			}
			for _, ce := range rt.byOp[ed.Consumer.Name] {
				ce.nProducers += n.Parallelism
			}
		}
	}
}

// isSink reports whether a node has no user output streams.
func isSink(n *Node) bool {
	for _, s := range n.Streams {
		if s.Name != AckStream {
			return false
		}
	}
	return !n.System
}

func (rt *nativeRuntime) run(app string) (*Result, error) {
	start := time.Now()
	var wg sync.WaitGroup
	for _, e := range rt.execs {
		wg.Add(1)
		go func(e *nativeExec) {
			defer wg.Done()
			e.loop()
		}(e)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	res := &Result{
		App:            app,
		System:         rt.cfg.System.Name,
		SourceEvents:   atomic.LoadInt64(&rt.sourceEvents),
		SinkEvents:     atomic.LoadInt64(&rt.sinkEvents),
		ElapsedSeconds: elapsed,
		Latency:        metrics.NewHistogram(1 << 16),
	}
	for _, e := range rt.execs {
		for _, s := range e.latency.Samples() {
			res.Latency.Observe(s)
		}
		res.Executors = append(res.Executors, ExecStat{
			Op: e.node.Name, Index: e.index, Socket: -1, Tuples: e.sinkN,
		})
		if a, ok := e.op.(*Acker); ok {
			res.AckerCompleted += a.Completed()
		}
	}
	return res, nil
}

func (e *nativeExec) loop() {
	e.ctx = &nativeCtx{ex: e}
	if e.src != nil {
		e.src.Prepare(e.ctx)
		for e.sourceInvocation() {
		}
		e.finish()
		return
	}
	e.op.Prepare(e.ctx)
	eos := 0
	for eos < e.nProducers {
		msg := <-e.in
		if msg.EOS {
			eos++
			continue
		}
		e.processBatch(msg)
	}
	e.finish()
}

// sourceInvocation emits up to BatchSize tuples; returns false at EOS.
func (e *nativeExec) sourceInvocation() bool {
	target := e.rt.cfg.BatchSize
	n := 0
	alive := true
	for n < target && alive {
		before := e.emittedThisInvocation()
		alive = e.src.Next(e.ctx)
		n += e.emittedThisInvocation() - before
	}
	e.endInvocation()
	return alive
}

func (e *nativeExec) emittedThisInvocation() int {
	n := 0
	for _, b := range e.buffers {
		n += len(b)
	}
	return n
}

func (e *nativeExec) processBatch(msg Msg) {
	for i := range msg.Batch {
		t := &msg.Batch[i]
		e.ctx.curInput = t
		e.ctx.inOp, e.ctx.inStream = msg.FromOp, msg.Stream
		if e.ackTracking() {
			e.accumAck(t.Root, t.Edge)
		}
		if e.isSink {
			e.observeSink(t)
		}
		e.op.Process(e.ctx, *t)
	}
	e.ctx.curInput = nil
	e.endInvocation()
}

func (e *nativeExec) ackTracking() bool {
	return e.rt.cfg.System.AckEnabled && !e.node.System
}

func (e *nativeExec) accumAck(root, edge int64) {
	if root == 0 {
		return // unanchored tuple tree
	}
	if e.ackAccum == nil {
		e.ackAccum = make(map[int64]int64)
	}
	e.ackAccum[root] ^= edge
}

func (e *nativeExec) observeSink(t *Tuple) {
	e.sinkN++
	atomic.AddInt64(&e.rt.sinkEvents, 1)
	if e.sinkN%int64(e.rt.cfg.LatencySampleEvery) == 0 {
		e.latency.Observe(float64(time.Now().UnixNano()-t.Born) / 1e6)
	}
}

// endInvocation implements the non-blocking batching boundary: everything
// emitted during this invocation is routed now, per-consumer batches are
// delivered, ack messages are generated from the delivered edges, and
// nothing is held back for a later flush.
func (e *nativeExec) endInvocation() {
	for _, n := range e.node.Streams {
		buf := e.buffers[n.Name]
		if len(buf) == 0 {
			continue
		}
		e.buffers[n.Name] = nil
		for _, ed := range e.edges[n.Name] {
			batches := ed.router.route(buf, e.batchCap(n.Name))
			for _, b := range batches {
				if e.ackTracking() && !ed.system {
					for i := range b.Tuples {
						edge := e.rng.Int63()
						b.Tuples[i].Edge = edge
						e.accumAck(b.Tuples[i].Root, edge)
					}
				}
				ed.consumers[b.Consumer].in <- Msg{
					FromGlobal: e.global, FromOp: e.node.Name,
					Stream: n.Name, Batch: b.Tuples,
				}
			}
		}
	}
	e.flushAcks()
}

// batchCap bounds delivered batch sizes. Ack batches may grow unbounded
// within an invocation; user batches are capped at 4x the source batch
// size to keep downstream invocations bounded.
func (e *nativeExec) batchCap(stream string) int {
	if stream == AckStream {
		return 0
	}
	return 4 * e.rt.cfg.BatchSize
}

func (e *nativeExec) flushAcks() {
	if len(e.ackAccum) == 0 {
		return
	}
	accum := e.ackAccum
	e.ackAccum = nil
	for root, x := range accum {
		e.buffers[AckStream] = append(e.buffers[AckStream], Tuple{
			Values: []Value{root, x}, Root: root,
		})
	}
	buf := e.buffers[AckStream]
	e.buffers[AckStream] = nil
	for _, ed := range e.edges[AckStream] {
		for _, b := range ed.router.route(buf, 0) {
			ed.consumers[b.Consumer].in <- Msg{
				FromGlobal: e.global, FromOp: e.node.Name,
				Stream: AckStream, Batch: b.Tuples,
			}
		}
	}
}

// finish drains buffered operator state and propagates EOS downstream.
func (e *nativeExec) finish() {
	if f, ok := e.op.(Flusher); ok {
		e.ctx.curInput = nil
		f.Flush(e.ctx)
		e.endInvocation()
	}
	for _, n := range e.node.Streams {
		for _, ed := range e.edges[n.Name] {
			for _, c := range ed.consumers {
				c.in <- Msg{FromGlobal: e.global, FromOp: e.node.Name, Stream: n.Name, EOS: true}
			}
		}
	}
}

// nativeCtx implements Context for the native runtime.
type nativeCtx struct {
	ex       *nativeExec
	curInput *Tuple
	inOp     string
	inStream string
}

func (c *nativeCtx) Emit(values ...Value) { c.EmitTo(DefaultStream, values...) }

func (c *nativeCtx) EmitTo(stream string, values ...Value) {
	n := c.ex.node
	if _, ok := n.OutStream(stream); !ok {
		panic(fmt.Sprintf("engine: %q emits to undeclared stream %q", n.Name, stream))
	}
	t := Tuple{Values: values, Size: int32(TupleBytes(values))}
	if c.curInput != nil {
		t.Born = c.curInput.Born
		t.Root = c.curInput.Root
	} else {
		t.Born = time.Now().UnixNano()
		if n.IsSource() {
			t.Root = atomic.AddInt64(&c.ex.rt.rootCtr, 1)
		}
		// Non-source emissions without an input anchor (e.g. Flush) are
		// unanchored, as in Storm: Root stays 0 and is never ack-tracked.
	}
	if n.IsSource() && stream != AckStream {
		atomic.AddInt64(&c.ex.rt.sourceEvents, 1)
	}
	c.ex.buffers[stream] = append(c.ex.buffers[stream], t)
}

func (c *nativeCtx) ExecutorID() int  { return c.ex.index }
func (c *nativeCtx) Parallelism() int { return c.ex.node.Parallelism }
func (c *nativeCtx) OperatorName() string {
	return c.ex.node.Name
}
func (c *nativeCtx) Work(uops, branches int) {}
func (c *nativeCtx) AccessState(bytes int)   {}
func (c *nativeCtx) ScanState(bytes int)     {}
func (c *nativeCtx) ScanScratch(bytes int)   {}
func (c *nativeCtx) Rand() *rand.Rand        { return c.ex.rng }
func (c *nativeCtx) Input() (string, string) { return c.inOp, c.inStream }
