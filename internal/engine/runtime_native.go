package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"streamscale/internal/metrics"
	"streamscale/internal/ring"
)

// The native runtime executes a topology with one goroutine per executor,
// connected by the lock-free SPSC rings of internal/ring rather than Go
// channels. Its data path is built around the same costs the paper's
// profiling identified — message passing, acking, batching — so the
// simulator's predicted effect ratios can be validated against real
// hardware (internal/bench ValidateNative):
//
//   - every producer→consumer executor pair owns a private SPSC ring;
//     a consumer drains its rings round-robin through an MPSC front
//   - batch slabs ([]Tuple) are recycled consumer→producer over a second
//     tiny ring per pair, so steady-state transfer does not allocate
//   - emit buffers are a stream-indexed array, ack accumulators are
//     reused maps, Born timestamps are taken once per source invocation,
//     and the sink clock is read only when the latency sampler fires
//   - backpressure is credit-based: a producer facing a full ring parks
//     on the ring's waiter and is woken by the consumer's next pop
//   - operator chaining (chaining.go) optionally fuses forwardable
//     operator pairs before the executor graph is built, removing the
//     queue hop entirely

// NativeConfig configures a run on the native (goroutine) runtime.
type NativeConfig struct {
	// System selects the engine profile; only its acking/batching plumbing
	// affects the native runtime (the cost model is simulation-only).
	System SystemProfile
	// BatchSize is the source batch size S of the paper's §VI-A;
	// 1 (or 0) disables batching.
	BatchSize int
	// QueueCap overrides the profile's executor queue capacity (messages
	// buffered per consumer, split across its producer rings).
	QueueCap int
	// Seed drives all per-executor randomness.
	Seed int64
	// SourceRate throttles each source executor to the given event rate
	// (events per wall-clock second). Zero runs sources closed-loop at full
	// speed; a nonzero rate yields open-loop latency at a fixed offered
	// load, with tuples stamped at their *scheduled* emission instant so
	// backpressure stalls stay inside the measured latency (coordinated-
	// omission correction), mirroring the simulator's SourceRate semantics.
	SourceRate float64
	// CoordinatedOmission re-enables the coordinated-omission bug for
	// ablation: open-loop tuples are stamped with the actual emission
	// instant instead of the scheduled one. Ignored when SourceRate is 0.
	CoordinatedOmission bool
	// LatencySampleEvery samples end-to-end latency every n-th sink tuple
	// (default 8, matching the simulator's cadence so the two runtimes
	// sample identical tuple positions; capped at 2^30 so countdown
	// arithmetic cannot overflow).
	LatencySampleEvery int
	// Chaining fuses forwardable operator pairs (ChainTopology) before
	// building the executor graph.
	Chaining bool
}

// maxLatencySampleEvery caps the sampling period; beyond this a run simply
// never samples, which is what an absurd config is asking for anyway.
const maxLatencySampleEvery = 1 << 30

func (c *NativeConfig) fill() {
	if c.BatchSize <= 0 {
		c.BatchSize = 1
	}
	if c.QueueCap <= 0 {
		c.QueueCap = c.System.QueueCap
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 1024
	}
	if c.LatencySampleEvery <= 0 {
		c.LatencySampleEvery = 8
	}
	if c.LatencySampleEvery > maxLatencySampleEvery {
		c.LatencySampleEvery = maxLatencySampleEvery
	}
}

// RunNative executes the topology with real goroutines and lock-free ring
// queues and returns measured wall-clock results. It blocks until all
// sources are exhausted and the pipeline has fully drained.
func RunNative(t *Topology, cfg NativeConfig) (*Result, error) {
	cfg.fill()
	name := t.Name
	if cfg.Chaining {
		chained, _, err := ChainTopology(t)
		if err != nil {
			return nil, err
		}
		t = chained
	}
	xt, err := BuildExecTopology(t, cfg.System)
	if err != nil {
		return nil, err
	}
	rt := &nativeRuntime{cfg: cfg, topo: xt}
	rt.build()
	return rt.run(name)
}

type nativeRuntime struct {
	cfg  NativeConfig
	topo *Topology

	execs []*nativeExec
	byOp  map[string][]*nativeExec
}

// nativeConn is one producer-executor → consumer-executor link: a data
// ring carrying Msg batches downstream and a free ring recycling drained
// batch slabs back upstream. Both ends are single-producer/single-consumer
// by construction (each conn belongs to exactly one producer goroutine and
// one consumer goroutine), which is what lets the rings stay lock-free.
type nativeConn struct {
	to   *nativeExec
	data *ring.SPSC[Msg]
	free *ring.SPSC[[]Tuple]
}

// nativeEdge routes one producer stream to one consumer subscription.
// pending holds the open (unsent) batch per consumer executor; a batch is
// sealed and pushed when it reaches batchCap or at the invocation end —
// the paper's non-blocking batching, nothing is held across invocations.
type nativeEdge struct {
	stream   string
	kind     GroupKind
	fieldIdx []int // resolved key indices for fields grouping
	system   bool  // consumer is a system node (acker): no ack tracking
	batchCap int   // max tuples per delivered batch (<=0: unbounded)
	rr       int   // shuffle round-robin cursor, persists across invocations
	conns    []*nativeConn
	pending  [][]Tuple
}

type nativeExec struct {
	rt     *nativeRuntime
	node   *Node
	index  int
	global int

	op  Operator
	src Source

	in      *ring.MPSC[Msg]
	inConns []*nativeConn // parallel to in's lanes; run ends after one EOS per lane

	outConns []*nativeConn       // distinct downstream executors (one EOS each)
	connFor  map[int]*nativeConn // consumer global index → conn
	edges    [][]*nativeEdge     // indexed by out-stream position in node.Streams
	ackIdx   int                 // position of AckStream in node.Streams, -1 if none

	// buffers collects the current invocation's emissions per out stream
	// (stream-indexed array, not a map: EmitTo is the hottest user call).
	buffers [][]Tuple
	emitted int // tuples emitted this invocation (batch-target counter)

	rng     *rand.Rand
	latency *metrics.Histogram
	isSink  bool

	// Per-executor counters, summed after the run (no hot-path atomics).
	srcEvents   int64
	sinkN       int64
	tuples      int64 // input tuples processed (sim ExecStat parity)
	invocations int64
	rootSeq     int64 // per-source root counter; IDs are global<<40|seq
	born        int64 // coarse Born stamp, one clock read per invocation
	sampleIn    int   // countdown to the next latency sample

	// Open-loop pacing state (SourceRate > 0). nextEmitNs is the wall
	// instant the next invocation may start; bornSched/bornStep hold the
	// intended-arrival schedule each emitted tuple is stamped with
	// (coordinated-omission correction). bornStep == 0 means unpaced.
	nextEmitNs int64
	bornSched  float64
	bornStep   float64

	ctx      *nativeCtx
	ackAccum []ackPair // per-invocation XOR accumulator, reused
}

// ackPair is one root's running XOR for the current invocation. A slice
// with linear search beats a map here: an invocation touches at most a
// batch's worth of distinct roots, and the slice iterates in insertion
// order without hashing.
type ackPair struct{ root, xor int64 }

func (rt *nativeRuntime) build() {
	rt.byOp = make(map[string][]*nativeExec)
	global := 0
	for _, n := range rt.topo.Nodes() {
		for i := 0; i < n.Parallelism; i++ {
			e := &nativeExec{
				rt: rt, node: n, index: i, global: global,
				rng:      rand.New(rand.NewSource(rt.cfg.Seed + int64(global)*7919 + 1)),
				latency:  metrics.NewHistogram(1 << 14),
				buffers:  make([][]Tuple, len(n.Streams)),
				edges:    make([][]*nativeEdge, len(n.Streams)),
				ackIdx:   -1,
				connFor:  make(map[int]*nativeConn),
				sampleIn: rt.cfg.LatencySampleEvery,
			}
			for si := range n.Streams {
				if n.Streams[si].Name == AckStream {
					e.ackIdx = si
				}
			}
			if n.IsSource() {
				e.src = n.NewSource()
			} else {
				e.op = n.NewOp()
				e.in = ring.NewMPSC[Msg]()
			}
			e.isSink = isSink(n)
			rt.execs = append(rt.execs, e)
			rt.byOp[n.Name] = append(rt.byOp[n.Name], e)
			global++
		}
	}

	// Ring sizing: QueueCap is the consumer's total message budget, split
	// across its distinct producer executors (each of which gets its own
	// SPSC lane). Count distinct producer *nodes* once even when several
	// streams connect the same pair.
	producerExecs := make(map[string]int)
	for _, n := range rt.topo.Nodes() {
		seen := make(map[string]bool)
		for _, ed := range rt.topo.Consumers(n.Name) {
			if !seen[ed.Consumer.Name] {
				seen[ed.Consumer.Name] = true
				producerExecs[ed.Consumer.Name] += n.Parallelism
			}
		}
	}

	for _, n := range rt.topo.Nodes() {
		for _, ed := range rt.topo.Consumers(n.Name) {
			ss, _ := n.OutStream(ed.Sub.Stream)
			si := streamIndex(n.Streams, ed.Sub.Stream)
			var fieldIdx []int
			if ed.Sub.Group.Kind == GroupFields {
				fieldIdx = FieldIndices(ss, ed.Sub.Group.Fields)
			}
			batchCap := 4 * rt.cfg.BatchSize
			if ed.Sub.Stream == AckStream {
				batchCap = 0 // ack batches may grow within an invocation
			}
			for _, pe := range rt.byOp[n.Name] {
				ne := &nativeEdge{
					stream:   ed.Sub.Stream,
					kind:     ed.Sub.Group.Kind,
					fieldIdx: fieldIdx,
					system:   ed.Consumer.System,
					batchCap: batchCap,
				}
				for _, ce := range rt.byOp[ed.Consumer.Name] {
					ne.conns = append(ne.conns, pe.connTo(ce, producerExecs[ce.node.Name]))
				}
				ne.pending = make([][]Tuple, len(ne.conns))
				pe.edges[si] = append(pe.edges[si], ne)
			}
		}
	}

	// Pre-fill every free ring to capacity: the slab arena is allocated
	// once here, at build time, so steady-state transfer allocates nothing
	// even before the first recycled slab comes back.
	slabCap := 4 * rt.cfg.BatchSize
	if slabCap < 16 {
		slabCap = 16
	}
	for _, e := range rt.execs {
		for _, c := range e.outConns {
			for c.free.TryPush(make([]Tuple, 0, slabCap)) {
			}
		}
	}
}

// maxConnMsgs caps one producer→consumer ring's depth. Beyond a few dozen
// in-flight batches, extra depth only adds latency and slab population —
// a consumer that far behind needs backpressure, not buffer.
const maxConnMsgs = 64

// connTo returns (creating on first use) the producer→consumer link. Each
// distinct executor pair gets exactly one conn regardless of how many
// streams or subscriptions connect the operators, so EOS accounting is
// one marker per pair.
func (e *nativeExec) connTo(ce *nativeExec, producers int) *nativeConn {
	if c, ok := e.connFor[ce.global]; ok {
		return c
	}
	capMsgs := e.rt.cfg.QueueCap / producers
	if capMsgs < 2 {
		capMsgs = 2
	}
	if capMsgs > maxConnMsgs {
		capMsgs = maxConnMsgs
	}
	// The free ring matches the data ring's capacity: every slab that can
	// be in flight has a recycling slot, so a lagging consumer never
	// forces the producer to allocate (slabs overflowing it go to GC).
	c := &nativeConn{
		to:   ce,
		data: ce.in.AddProducer(capMsgs),
		free: ring.NewSPSC[[]Tuple](capMsgs, nil),
	}
	ce.inConns = append(ce.inConns, c) // same order as the MPSC lanes
	e.connFor[ce.global] = c
	e.outConns = append(e.outConns, c)
	return c
}

func streamIndex(streams []StreamSpec, name string) int {
	for i := range streams {
		if streams[i].Name == name {
			return i
		}
	}
	return -1
}

// isSink reports whether a node has no user output streams.
func isSink(n *Node) bool {
	for _, s := range n.Streams {
		if s.Name != AckStream {
			return false
		}
	}
	return !n.System
}

func (rt *nativeRuntime) run(app string) (*Result, error) {
	start := time.Now()
	var wg sync.WaitGroup
	for _, e := range rt.execs {
		wg.Add(1)
		go func(e *nativeExec) {
			defer wg.Done()
			e.loop()
		}(e)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	res := &Result{
		App:            app,
		System:         rt.cfg.System.Name,
		ElapsedSeconds: elapsed,
		WallSeconds:    elapsed,
		Latency:        metrics.NewHistogram(1 << 16),
	}
	for _, e := range rt.execs {
		res.SourceEvents += e.srcEvents
		res.SinkEvents += e.sinkN
		// Exact bucket-count merge (no sampled observation dropped).
		res.Latency.Merge(e.latency)
		res.Executors = append(res.Executors, ExecStat{
			Op: e.node.Name, Index: e.index, Socket: -1,
			Tuples: e.tuples, Invocations: e.invocations,
		})
		if a, ok := e.op.(*Acker); ok {
			res.AckerCompleted += a.Completed()
		}
	}
	return res, nil
}

// loop is one executor goroutine: sources run invocation after invocation
// until exhausted; operators pop batches from the MPSC front until every
// input lane has delivered its EOS marker.
//
//dsp:hotpath
func (e *nativeExec) loop() {
	e.ctx = &nativeCtx{ex: e} //dsplint:ignore hotalloc one context per executor per run, allocated before the first tuple moves
	if e.src != nil {
		e.src.Prepare(e.ctx)
		for e.sourceInvocation() {
		}
		e.finish()
		return
	}
	e.op.Prepare(e.ctx)
	live := len(e.inConns)
	for live > 0 {
		msg, lane := e.in.Pop()
		if msg.EOS {
			live--
			continue
		}
		e.processBatch(msg, lane)
	}
	e.finish()
}

// sourceInvocation emits up to BatchSize tuples; returns false at EOS.
// One clock read stamps every tuple born this invocation (coarse Born):
// at batch sizes worth measuring, per-tuple timestamps are themselves a
// measurable cost, exactly the effect the runtime exists to quantify.
// Under SourceRate the invocation first sleeps until its scheduled start,
// then advances the schedule by the events actually emitted — identical
// open-loop semantics to the simulator's nextEmit pacing.
//
//dsp:hotpath
//dsplint:wallclock
func (e *nativeExec) sourceInvocation() bool {
	e.invocations++
	now := time.Now().UnixNano()
	rate := e.rt.cfg.SourceRate
	if rate > 0 {
		if e.bornStep == 0 {
			e.nextEmitNs = now
			e.bornSched = float64(now)
			e.bornStep = 1e9 / rate
		}
		for now < e.nextEmitNs {
			time.Sleep(time.Duration(e.nextEmitNs - now))
			now = time.Now().UnixNano()
		}
	}
	e.born = now
	before := e.srcEvents
	e.emitted = 0
	alive := true
	for e.emitted < e.rt.cfg.BatchSize && alive {
		alive = e.src.Next(e.ctx)
	}
	if rate > 0 {
		e.nextEmitNs += int64(float64(e.srcEvents-before) * e.bornStep)
	}
	e.endInvocation()
	return alive
}

// processBatch runs the operator over one popped batch, accumulating acks
// and sink observations inline, then recycles the slab and seals the
// invocation's output batches.
//
//dsp:hotpath
func (e *nativeExec) processBatch(msg Msg, lane int) {
	e.invocations++
	e.tuples += int64(len(msg.Batch))
	ack := e.ackTracking()
	for i := range msg.Batch {
		t := &msg.Batch[i]
		e.ctx.curInput = t
		e.ctx.inOp, e.ctx.inStream = msg.FromOp, msg.Stream
		if ack {
			e.accumAck(t.Root, t.Edge)
		}
		if e.isSink {
			e.observeSink(t)
		}
		e.op.Process(e.ctx, *t)
	}
	e.ctx.curInput = nil
	e.recycle(lane, msg.Batch)
	e.endInvocation()
}

// recycle clears a drained batch slab and offers it back to the producer.
// Tuples were handed to the operator by value, so dropping the slab's
// references here is safe; if the free ring is full the slab goes to GC.
//
//dsp:hotpath
func (e *nativeExec) recycle(lane int, batch []Tuple) {
	if batch == nil {
		return
	}
	clear(batch)
	e.inConns[lane].free.TryPush(batch[:0])
}

func (e *nativeExec) ackTracking() bool {
	return e.rt.cfg.System.AckEnabled && !e.node.System
}

// accumAck folds one (root, edge) pair into the invocation's XOR
// accumulator; linear search over the reused slice, no hashing.
//
//dsp:hotpath
func (e *nativeExec) accumAck(root, edge int64) {
	if root == 0 {
		return // unanchored tuple tree
	}
	for i := range e.ackAccum {
		if e.ackAccum[i].root == root {
			e.ackAccum[i].xor ^= edge
			return
		}
	}
	e.ackAccum = append(e.ackAccum, ackPair{root: root, xor: edge})
}

// observeSink counts the tuple and samples end-to-end latency on a
// countdown — the clock is read only when the sampler actually fires.
//
//dsp:hotpath
//dsplint:wallclock
func (e *nativeExec) observeSink(t *Tuple) {
	e.sinkN++
	e.sampleIn--
	if e.sampleIn <= 0 {
		e.sampleIn = e.rt.cfg.LatencySampleEvery
		e.latency.Observe(float64(time.Now().UnixNano()-t.Born) / 1e6)
	}
}

// endInvocation implements the non-blocking batching boundary: everything
// emitted during this invocation is routed into per-consumer batches and
// delivered now — nothing is held back for a later flush.
//
//dsp:hotpath
func (e *nativeExec) endInvocation() {
	for si := range e.buffers {
		if si != e.ackIdx && len(e.buffers[si]) > 0 {
			e.routeStream(si)
		}
	}
	e.flushAcks()
}

// routeStream routes one stream's emit buffer over all its edges, seals
// every open batch, and resets the buffer for reuse.
//
//dsp:hotpath
func (e *nativeExec) routeStream(si int) {
	buf := e.buffers[si]
	for _, ed := range e.edges[si] {
		e.routeTo(ed, buf)
		for ci := range ed.pending {
			if len(ed.pending[ci]) > 0 {
				e.send(ed, ci)
			}
		}
	}
	clear(buf) // drop Tuple references; the backing array is reused
	e.buffers[si] = buf[:0]
}

// routeTo appends each tuple of buf to the edge's open per-consumer batch
// according to the grouping, matching the simulated runtime's semantics
// (persistent shuffle cursor, FNV fields hash, executor 0 for global,
// replication for all).
//
//dsp:hotpath
func (e *nativeExec) routeTo(ed *nativeEdge, buf []Tuple) {
	n := len(ed.conns)
	if n == 1 && ed.kind != GroupAll {
		// One consumer executor: every grouping degenerates to "send it".
		for i := range buf {
			e.deliver(ed, 0, buf[i])
		}
		return
	}
	switch ed.kind {
	case GroupShuffle:
		for i := range buf {
			e.deliver(ed, ed.rr, buf[i])
			ed.rr++
			if ed.rr == n {
				ed.rr = 0
			}
		}
	case GroupFields:
		for i := range buf {
			var h uint64
			if len(buf[i].Values) == 0 {
				// Values-free native ack tuple: the key is the root, and
				// the hash must match what the sim computes for the same
				// field (HashFields over a single int64 root value).
				h = hashAckRoot(buf[i].Root)
			} else {
				h = HashFields(buf[i].Values, ed.fieldIdx)
			}
			ci := int(h % uint64(n))
			e.deliver(ed, ci, buf[i])
		}
	case GroupGlobal:
		for i := range buf {
			e.deliver(ed, 0, buf[i])
		}
	case GroupAll:
		for ci := 0; ci < n; ci++ {
			for i := range buf {
				e.deliver(ed, ci, buf[i])
			}
		}
	default:
		//dsplint:ignore hotalloc fatal-error path, never taken in steady state
		panic(fmt.Sprintf("engine: unknown grouping %v", ed.kind))
	}
}

// deliver stamps the tuple's anchor edge (Storm XOR tracking assigns a
// fresh edge ID per delivered copy), appends it to the consumer's open
// batch, and seals the batch when it reaches the edge's cap.
//
//dsp:hotpath
func (e *nativeExec) deliver(ed *nativeEdge, ci int, t Tuple) {
	if !ed.system && t.Root != 0 && e.ackTracking() {
		edge := e.rng.Int63()
		t.Edge = edge
		e.accumAck(t.Root, edge)
	}
	p := ed.pending[ci]
	if p == nil {
		p = e.newSlab(ed.conns[ci], ed.batchCap)
	}
	p = append(p, t)
	ed.pending[ci] = p
	if ed.batchCap > 0 && len(p) >= ed.batchCap {
		e.send(ed, ci)
	}
}

// newSlab reuses a recycled batch slab from the conn's free ring when one
// is available, else allocates.
func (e *nativeExec) newSlab(c *nativeConn, batchCap int) []Tuple {
	if s, ok := c.free.TryPop(); ok {
		return s
	}
	if batchCap <= 0 {
		batchCap = 16
	}
	return make([]Tuple, 0, batchCap)
}

// send seals the open batch for one consumer and pushes it, blocking (and
// eventually parking) when the ring is full: this is where backpressure
// propagates upstream.
//
//dsp:hotpath
func (e *nativeExec) send(ed *nativeEdge, ci int) {
	ed.conns[ci].data.Push(Msg{
		FromGlobal: e.global, FromOp: e.node.Name,
		Stream: ed.stream, Batch: ed.pending[ci],
	})
	ed.pending[ci] = nil
}

// flushAcks turns the invocation's XOR accumulator into ack tuples on the
// __ack stream and routes them to the acker. Native ack tuples carry the
// (root, xor) pair in the Root and Edge fields — no boxed Values (the
// Acker accepts both representations). The accumulator is truncated and
// reused, never reallocated.
//
//dsp:hotpath
func (e *nativeExec) flushAcks() {
	if e.ackIdx < 0 || len(e.ackAccum) == 0 {
		return
	}
	buf := e.buffers[e.ackIdx]
	for _, p := range e.ackAccum {
		buf = append(buf, Tuple{Root: p.root, Edge: p.xor})
	}
	e.buffers[e.ackIdx] = buf
	e.ackAccum = e.ackAccum[:0]
	e.routeStream(e.ackIdx)
}

// finish drains buffered operator state and sends one EOS marker to every
// downstream executor this one is connected to.
func (e *nativeExec) finish() {
	if f, ok := e.op.(Flusher); ok {
		e.ctx.curInput = nil
		e.born = time.Now().UnixNano()
		f.Flush(e.ctx)
		e.endInvocation()
	}
	for _, c := range e.outConns {
		c.data.Push(Msg{FromGlobal: e.global, FromOp: e.node.Name, EOS: true})
	}
}

// nativeCtx implements Context for the native runtime.
type nativeCtx struct {
	ex       *nativeExec
	curInput *Tuple
	inOp     string
	inStream string
}

// Emit forwards to EmitTo on the default stream.
//
//dsp:hotpath
func (c *nativeCtx) Emit(values ...Value) { c.EmitTo(DefaultStream, values...) }

// EmitTo appends a tuple to the stream's emit buffer — the hottest
// user-facing call in the runtime (every operator output passes through).
//
//dsp:hotpath
func (c *nativeCtx) EmitTo(stream string, values ...Value) {
	e := c.ex
	si := streamIndex(e.node.Streams, stream)
	if si < 0 {
		//dsplint:ignore hotalloc fatal-error path, never taken in steady state
		panic(fmt.Sprintf("engine: %q emits to undeclared stream %q", e.node.Name, stream))
	}
	t := Tuple{Values: values, Size: int32(TupleBytes(values))}
	if c.curInput != nil {
		t.Born = c.curInput.Born
		t.Root = c.curInput.Root
	} else {
		t.Born = e.born
		if e.node.IsSource() {
			if e.bornStep != 0 && !e.rt.cfg.CoordinatedOmission && stream != AckStream {
				// Open-loop: stamp the scheduled emission instant so
				// backpressure stalls at the throttled source stay inside
				// the measured latency (coordinated-omission correction).
				t.Born = int64(e.bornSched)
				e.bornSched += e.bornStep
			}
			// Per-executor root sequence: unique across executors without
			// a shared atomic counter.
			e.rootSeq++
			t.Root = int64(e.global+1)<<40 | e.rootSeq
		}
		// Non-source emissions without an input anchor (e.g. Flush) are
		// unanchored, as in Storm: Root stays 0 and is never ack-tracked.
	}
	e.emitted++
	if e.node.IsSource() && stream != AckStream {
		e.srcEvents++
	}
	e.buffers[si] = append(e.buffers[si], t)
}

func (c *nativeCtx) ExecutorID() int  { return c.ex.index }
func (c *nativeCtx) Parallelism() int { return c.ex.node.Parallelism }
func (c *nativeCtx) OperatorName() string {
	return c.ex.node.Name
}
func (c *nativeCtx) Work(uops, branches int) {}
func (c *nativeCtx) AccessState(bytes int)   {}
func (c *nativeCtx) ScanState(bytes int)     {}
func (c *nativeCtx) ScanScratch(bytes int)   {}
func (c *nativeCtx) Rand() *rand.Rand        { return c.ex.rng }
func (c *nativeCtx) Input() (string, string) { return c.inOp, c.inStream }
