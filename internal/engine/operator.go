package engine

import "math/rand"

// Operator is a data processing operator. One instance is created per
// executor (via the factory registered with the topology), so instances
// need no internal locking.
type Operator interface {
	// Prepare is called once before any tuples arrive.
	Prepare(ctx Context)
	// Process handles one input tuple, emitting results through ctx.
	Process(ctx Context, t Tuple)
}

// Source produces the input stream. Next emits zero or more tuples through
// ctx and returns false when the source is exhausted. One instance is
// created per source executor.
type Source interface {
	Prepare(ctx Context)
	Next(ctx Context) bool
}

// Flusher is implemented by operators with buffered or windowed state that
// must be drained when the input stream ends.
type Flusher interface {
	Flush(ctx Context)
}

// Context is the operator's interface to the runtime. The cost hooks
// (Work, AccessState) let operators with data-dependent effort report it to
// the simulated machine; they are no-ops under the native runtime.
type Context interface {
	// Emit sends a tuple on the operator's default stream.
	Emit(values ...Value)
	// EmitTo sends a tuple on a named declared stream.
	EmitTo(stream string, values ...Value)

	// ExecutorID is this executor's index within the operator [0,Parallelism).
	ExecutorID() int
	// Parallelism is the operator's executor count.
	Parallelism() int
	// OperatorName returns the operator's topology name.
	OperatorName() string

	// Work charges additional computation: uops micro-operations of which
	// branches are conditional branches (subject to misprediction).
	Work(uops, branches int)
	// AccessState charges random accesses touching the given number of
	// bytes of the executor's private state region.
	AccessState(bytes int)
	// ScanState charges a sequential, bandwidth-bound sweep over the given
	// number of bytes of the executor's state region (e.g. a brute-force
	// scan of a large lookup table).
	ScanState(bytes int)
	// ScanScratch charges a sequential sweep over a per-executor private
	// scratch region (working buffers that are always node-local), sized
	// by the largest sweep requested.
	ScanScratch(bytes int)

	// Rand returns this executor's deterministic random source.
	Rand() *rand.Rand

	// Input reports the operator and stream the current tuple arrived on
	// (empty strings for sources).
	Input() (operator, stream string)
}

// ProcessFunc adapts a function to the Operator interface for stateless
// operators.
type ProcessFunc func(ctx Context, t Tuple)

// Prepare implements Operator.
func (f ProcessFunc) Prepare(Context) {}

// Process implements Operator.
func (f ProcessFunc) Process(ctx Context, t Tuple) { f(ctx, t) }
