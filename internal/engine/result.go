package engine

import (
	"fmt"

	"streamscale/internal/hw"
	"streamscale/internal/metrics"
	"streamscale/internal/profiler"
	"streamscale/internal/sim"
)

// ExecStat summarizes one executor's run.
type ExecStat struct {
	Op     string
	Index  int
	Socket int // -1 when unplaced / native
	// Tuples is the number of input tuples processed (source: emitted).
	Tuples int64
	// MeanTupleMs is the mean processing time charged per tuple
	// (simulated runtime only) — the paper's Fig 10 "process latency".
	MeanTupleMs float64
	// Invocations counts executor invocations (framework dispatches).
	Invocations int64
	// Costs is this executor's share of the run's Table II cycle account
	// (sim only). Summing Costs over Executors reproduces Profile.Costs;
	// the placement cost model calibrates per-executor compute demand and
	// memory-stall composition from it.
	Costs hw.CostVec
}

// Profile returns the executor's cycle account as a profiler.Profile, so
// per-executor breakdowns render exactly like the global ones.
func (e *ExecStat) Profile() *profiler.Profile { return profiler.FromCosts(e.Costs) }

// EdgeStat aggregates the traffic one producer executor delivered to one
// consumer executor's input queue (sim only). Executors are identified by
// global index (see ExecGraph); Bytes counts tuple payload. The placement
// cost model calibrates per-edge communication volumes from these.
type EdgeStat struct {
	From, To int
	// Msgs is delivered messages (batches; EOS and barriers included).
	Msgs int64
	// Tuples is delivered data tuples.
	Tuples int64
	// Bytes is delivered tuple payload bytes.
	Bytes int64
}

// Result is the outcome of one topology run on either runtime.
type Result struct {
	App    string
	System string

	// SourceEvents is the number of events emitted by data sources; the
	// paper's throughput metric counts these.
	SourceEvents int64
	// SinkEvents is the number of tuples received at sink operators.
	SinkEvents int64
	// ElapsedSeconds is wall (native) or simulated (sim) run duration.
	ElapsedSeconds float64
	// WallSeconds is the host wall-clock time the run took to compute.
	// Unlike everything else in Result it is not deterministic; it exists
	// so the harness can report how fast the simulator itself is.
	WallSeconds float64

	// Latency is the end-to-end tuple latency distribution in ms.
	Latency *metrics.Histogram

	// Profile is the processor-time account (simulated runtime only).
	Profile *profiler.Profile
	// ChargedCycles is the hardware model's cycle-conservation ledger:
	// the total cycles its charging methods returned during the run (sim
	// only). It must equal Profile.Costs.Total(); package profiler's
	// conservation test enforces the invariant.
	ChargedCycles sim.Cycles
	// OperatorProfiles breaks the account down per operator (sim only).
	OperatorProfiles map[string]*profiler.Profile
	// CPUUtil is mean core utilization over enabled cores (sim only).
	CPUUtil float64
	// MemUtil is mean DRAM bandwidth utilization over enabled sockets.
	MemUtil float64
	// QPIBytes is total cross-socket traffic (sim only).
	QPIBytes uint64

	// AckerCompleted counts fully XOR-acked tuple trees (Storm profile).
	AckerCompleted int64
	// MinorGCs and GCShare report the collector's activity (sim only).
	MinorGCs int64
	GCShare  float64

	Executors []ExecStat
	// Edges is the per-edge delivered-traffic account (sim only), sorted
	// by (From, To). Together with Executors' Costs it is the calibration
	// input for the placement cost model (internal/place).
	Edges []EdgeStat
}

// Throughput returns source events per second.
func (r *Result) Throughput() metrics.Throughput {
	return metrics.Throughput{Events: r.SourceEvents, Seconds: r.ElapsedSeconds}
}

// ExecStatsFor returns the stats of all executors of one operator.
func (r *Result) ExecStatsFor(op string) []ExecStat {
	var out []ExecStat
	for _, e := range r.Executors {
		if e.Op == op {
			out = append(out, e)
		}
	}
	return out
}

// MeanExecLatencyMs returns the mean and population standard deviation of
// per-executor mean tuple processing latencies for one operator — the two
// series of the paper's Figure 10a.
func (r *Result) MeanExecLatencyMs(op string) (mean, stddev float64) {
	h := metrics.NewHistogram(0)
	for _, e := range r.ExecStatsFor(op) {
		h.Observe(e.MeanTupleMs)
	}
	return h.Mean(), h.Stddev()
}

func (r *Result) String() string {
	return fmt.Sprintf("%s/%s: %s, %d sink events, p50 %.2f ms",
		r.App, r.System, r.Throughput(), r.SinkEvents, r.Latency.Quantile(0.5))
}
