package engine

import (
	"fmt"

	"streamscale/internal/metrics"
	"streamscale/internal/profiler"
	"streamscale/internal/sim"
)

// ExecStat summarizes one executor's run.
type ExecStat struct {
	Op     string
	Index  int
	Socket int // -1 when unplaced / native
	// Tuples is the number of input tuples processed (source: emitted).
	Tuples int64
	// MeanTupleMs is the mean processing time charged per tuple
	// (simulated runtime only) — the paper's Fig 10 "process latency".
	MeanTupleMs float64
}

// Result is the outcome of one topology run on either runtime.
type Result struct {
	App    string
	System string

	// SourceEvents is the number of events emitted by data sources; the
	// paper's throughput metric counts these.
	SourceEvents int64
	// SinkEvents is the number of tuples received at sink operators.
	SinkEvents int64
	// ElapsedSeconds is wall (native) or simulated (sim) run duration.
	ElapsedSeconds float64
	// WallSeconds is the host wall-clock time the run took to compute.
	// Unlike everything else in Result it is not deterministic; it exists
	// so the harness can report how fast the simulator itself is.
	WallSeconds float64

	// Latency is the end-to-end tuple latency distribution in ms.
	Latency *metrics.Histogram

	// Profile is the processor-time account (simulated runtime only).
	Profile *profiler.Profile
	// ChargedCycles is the hardware model's cycle-conservation ledger:
	// the total cycles its charging methods returned during the run (sim
	// only). It must equal Profile.Costs.Total(); package profiler's
	// conservation test enforces the invariant.
	ChargedCycles sim.Cycles
	// OperatorProfiles breaks the account down per operator (sim only).
	OperatorProfiles map[string]*profiler.Profile
	// CPUUtil is mean core utilization over enabled cores (sim only).
	CPUUtil float64
	// MemUtil is mean DRAM bandwidth utilization over enabled sockets.
	MemUtil float64
	// QPIBytes is total cross-socket traffic (sim only).
	QPIBytes uint64

	// AckerCompleted counts fully XOR-acked tuple trees (Storm profile).
	AckerCompleted int64
	// MinorGCs and GCShare report the collector's activity (sim only).
	MinorGCs int64
	GCShare  float64

	Executors []ExecStat
}

// Throughput returns source events per second.
func (r *Result) Throughput() metrics.Throughput {
	return metrics.Throughput{Events: r.SourceEvents, Seconds: r.ElapsedSeconds}
}

// ExecStatsFor returns the stats of all executors of one operator.
func (r *Result) ExecStatsFor(op string) []ExecStat {
	var out []ExecStat
	for _, e := range r.Executors {
		if e.Op == op {
			out = append(out, e)
		}
	}
	return out
}

// MeanExecLatencyMs returns the mean and population standard deviation of
// per-executor mean tuple processing latencies for one operator — the two
// series of the paper's Figure 10a.
func (r *Result) MeanExecLatencyMs(op string) (mean, stddev float64) {
	h := metrics.NewHistogram(0)
	for _, e := range r.ExecStatsFor(op) {
		h.Observe(e.MeanTupleMs)
	}
	return h.Mean(), h.Stddev()
}

func (r *Result) String() string {
	return fmt.Sprintf("%s/%s: %s, %d sink events, p50 %.2f ms",
		r.App, r.System, r.Throughput(), r.SinkEvents, r.Latency.Quantile(0.5))
}
