package engine

import "testing"

// A chained head must not emit to named streams: the chain contract is a
// single default-stream hop.
func TestChainCtxRejectsNamedStreams(t *testing.T) {
	topo := NewTopology("badchain")
	topo.AddSource("src", 1, func() Source { return &burstSource{n: 3, per: 1} },
		Stream(DefaultStream, "a", "b"))
	topo.AddOp("head", 1, func() Operator {
		return ProcessFunc(func(ctx Context, tp Tuple) {
			ctx.EmitTo(DefaultStream, tp.Values...) // allowed: routes to tail
		})
	}, Stream(DefaultStream, "a", "b")).
		SubDefault("src", Shuffle())
	topo.AddOp("tail", 1, func() Operator {
		return ProcessFunc(func(ctx Context, tp Tuple) { ctx.Emit(tp.Values...) })
	}, Stream(DefaultStream, "a", "b")).
		SubDefault("head", Shuffle())
	topo.AddOp("sink", 1, func() Operator { return ProcessFunc(func(Context, Tuple) {}) }).
		SubDefault("tail", Shuffle())

	chained, fused, err := ChainTopology(topo)
	if err != nil {
		t.Fatal(err)
	}
	if len(fused) == 0 {
		t.Fatal("nothing fused")
	}
	// EmitTo(DefaultStream, ...) through the chain works fine.
	res, err := RunSim(chained, SimConfig{System: Flink(), Seed: 1, Sockets: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.SinkEvents != 3 {
		t.Fatalf("sink events = %d, want 3", res.SinkEvents)
	}
}

func TestChainCtxPanicsOnOtherStream(t *testing.T) {
	cc := &chainCtx{tail: nopOp{}}
	defer func() {
		if recover() == nil {
			t.Fatal("EmitTo on a named stream through a chain did not panic")
		}
	}()
	cc.EmitTo("side", "x")
}

// Chaining composes transitively: a 3-stage forward pipeline collapses to
// one operator.
func TestChainTopologyTransitive(t *testing.T) {
	topo := NewTopology("triple")
	topo.AddSource("src", 1, func() Source { return &burstSource{n: 20, per: 1} },
		Stream(DefaultStream, "a", "b"))
	mk := func() Operator {
		return ProcessFunc(func(ctx Context, tp Tuple) { ctx.Emit(tp.Values...) })
	}
	topo.AddOp("s1", 2, mk, Stream(DefaultStream, "a", "b")).SubDefault("src", Shuffle())
	topo.AddOp("s2", 2, mk, Stream(DefaultStream, "a", "b")).SubDefault("s1", Shuffle())
	topo.AddOp("s3", 2, mk, Stream(DefaultStream, "a", "b")).SubDefault("s2", Shuffle())
	topo.AddOp("sink", 1, func() Operator { return ProcessFunc(func(Context, Tuple) {}) }).
		SubDefault("s3", Global())

	chained, fused, err := ChainTopology(topo)
	if err != nil {
		t.Fatal(err)
	}
	if len(fused) != 2 {
		t.Fatalf("fused %d pairs, want 2 (three stages -> one)", len(fused))
	}
	ops := 0
	for _, n := range chained.Nodes() {
		if !n.IsSource() {
			ops++
		}
	}
	if ops != 2 { // fused pipeline + sink
		t.Fatalf("non-source nodes = %d, want 2", ops)
	}
	res, err := RunSim(chained, SimConfig{System: Flink(), Seed: 2, Sockets: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.SinkEvents != 20 {
		t.Fatalf("sink events = %d, want 20", res.SinkEvents)
	}
}
