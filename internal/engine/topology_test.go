package engine

import (
	"strings"
	"testing"
)

type nopOp struct{}

func (nopOp) Prepare(Context)        {}
func (nopOp) Process(Context, Tuple) {}

type nopSource struct{ n int }

func (s *nopSource) Prepare(Context) {}
func (s *nopSource) Next(ctx Context) bool {
	if s.n == 0 {
		return false
	}
	s.n--
	ctx.Emit("x")
	return true
}

func newNopOp() Operator { return nopOp{} }
func newNopSrc() Source  { return &nopSource{n: 10} }
func strm() StreamSpec   { return Stream(DefaultStream, "v") }
func twoNode() *Topology {
	t := NewTopology("t")
	t.AddSource("src", 1, newNopSrc, strm())
	t.AddOp("sink", 1, newNopOp).SubDefault("src", Shuffle())
	return t
}

func TestValidateAcceptsGoodTopology(t *testing.T) {
	if err := twoNode().Validate(); err != nil {
		t.Fatalf("valid topology rejected: %v", err)
	}
}

func TestValidateRejectsUnknownProducer(t *testing.T) {
	to := NewTopology("t")
	to.AddSource("src", 1, newNopSrc, strm())
	to.AddOp("op", 1, newNopOp).SubDefault("ghost", Shuffle())
	if err := to.Validate(); err == nil || !strings.Contains(err.Error(), "unknown operator") {
		t.Fatalf("err = %v, want unknown operator", err)
	}
}

func TestValidateRejectsUndeclaredStream(t *testing.T) {
	to := NewTopology("t")
	to.AddSource("src", 1, newNopSrc, strm())
	to.AddOp("op", 1, newNopOp).Sub("src", "nosuch", Shuffle())
	if err := to.Validate(); err == nil || !strings.Contains(err.Error(), "undeclared stream") {
		t.Fatalf("err = %v, want undeclared stream", err)
	}
}

func TestValidateRejectsBadGroupingField(t *testing.T) {
	to := NewTopology("t")
	to.AddSource("src", 1, newNopSrc, strm())
	to.AddOp("op", 1, newNopOp).SubDefault("src", Fields("nokey"))
	if err := to.Validate(); err == nil || !strings.Contains(err.Error(), "field") {
		t.Fatalf("err = %v, want bad field", err)
	}
}

func TestValidateRejectsNoSource(t *testing.T) {
	to := NewTopology("t")
	to.AddOp("a", 1, newNopOp, strm())
	to.AddOp("b", 1, newNopOp).SubDefault("a", Shuffle())
	// "a" has no inputs, reported first.
	if err := to.Validate(); err == nil {
		t.Fatal("sourceless topology accepted")
	}
}

func TestValidateRejectsUnreachable(t *testing.T) {
	to := twoNode()
	to.AddOp("island", 1, newNopOp, strm()).SubDefault("island", Shuffle()) // self-loop island
	err := to.Validate()
	if err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("err = %v, want unreachable", err)
	}
}

func TestValidateRejectsSourceWithInputs(t *testing.T) {
	to := twoNode()
	to.Node("src").SubDefault("sink", Shuffle())
	if err := to.Validate(); err == nil || !strings.Contains(err.Error(), "source") {
		t.Fatalf("err = %v, want source-with-subscriptions", err)
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate node name did not panic")
		}
	}()
	to := twoNode()
	to.AddOp("sink", 1, newNopOp)
}

func TestConsumersEnumeratesEdges(t *testing.T) {
	to := NewTopology("t")
	to.AddSource("src", 1, newNopSrc, strm())
	to.AddOp("a", 2, newNopOp).SubDefault("src", Shuffle())
	to.AddOp("b", 3, newNopOp).SubDefault("src", Fields("v"))
	edges := to.Consumers("src")
	if len(edges) != 2 {
		t.Fatalf("edges = %d, want 2", len(edges))
	}
	if edges[0].Consumer.Name != "a" || edges[1].Consumer.Name != "b" {
		t.Fatalf("edge order not deterministic: %v, %v", edges[0].Consumer.Name, edges[1].Consumer.Name)
	}
}

func TestHashValueStability(t *testing.T) {
	if HashValue("word") != HashValue("word") {
		t.Fatal("string hash unstable")
	}
	if HashValue(int64(7)) != HashValue(int64(7)) {
		t.Fatal("int hash unstable")
	}
	if HashValue("a") == HashValue("b") {
		t.Fatal("suspicious collision between distinct keys")
	}
}

func TestHashFieldsDistinguishesFieldOrder(t *testing.T) {
	vals := []Value{"x", "y"}
	if HashFields(vals, []int{0, 1}) == HashFields(vals, []int{1, 0}) {
		t.Fatal("combined hash ignores field order")
	}
}

func TestTupleBytesEstimates(t *testing.T) {
	small := TupleBytes([]Value{int64(1)})
	large := TupleBytes([]Value{"a long sentence with many characters in it", int64(1)})
	if large <= small {
		t.Fatalf("size estimate not monotone: %d <= %d", large, small)
	}
	if small < 24+8+8 {
		t.Fatalf("single-int tuple estimate %d too small", small)
	}
}

func TestWithProfileAttaches(t *testing.T) {
	to := twoNode()
	p := WorkProfile{CodeBytes: 999}
	to.Node("sink").WithProfile(p)
	if to.Node("sink").Profile.CodeBytes != 999 {
		t.Fatal("WithProfile did not set profile")
	}
}
