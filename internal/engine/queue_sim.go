package engine

import "streamscale/internal/sim"

// simQueue is a bounded executor input queue for the simulated runtime: a
// ring of messages with blocking semantics expressed through the simulated
// scheduler. The ring buffer itself occupies simulated memory (on the
// consumer's socket, like a Storm disruptor queue owned by its executor),
// so push/pop traffic participates in the cache and NUMA model.
type simQueue struct {
	buf       []Msg
	head, n   int
	baseAddr  uint64
	slotBytes int

	waitData  *sim.Thread
	waitSpace []*sim.Thread
	sched     *sim.Scheduler
}

func newSimQueue(capacity int, base uint64, sched *sim.Scheduler) *simQueue {
	return &simQueue{
		buf:       make([]Msg, capacity),
		baseAddr:  base,
		slotBytes: 32, // a tuple-batch reference + sequence bookkeeping
		sched:     sched,
	}
}

// slotAddr returns the simulated address of ring slot i.
func (q *simQueue) slotAddr(i int) uint64 {
	return q.baseAddr + uint64(i)*uint64(q.slotBytes)
}

// tryPush appends a message. On success it returns the written slot index
// and wakes a waiting consumer; on a full queue it returns ok=false.
func (q *simQueue) tryPush(m Msg) (slot int, ok bool) {
	if q.n == len(q.buf) {
		return 0, false
	}
	slot = (q.head + q.n) % len(q.buf)
	q.buf[slot] = m
	q.n++
	if q.waitData != nil {
		w := q.waitData
		q.waitData = nil
		q.sched.Wake(w)
	}
	return slot, true
}

// tryPop removes the oldest message. On success it wakes writers blocked on
// a full ring.
func (q *simQueue) tryPop() (m Msg, slot int, ok bool) {
	if q.n == 0 {
		return Msg{}, 0, false
	}
	slot = q.head
	m = q.buf[slot]
	q.buf[slot] = Msg{}
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	if len(q.waitSpace) > 0 {
		ws := q.waitSpace
		q.waitSpace = nil
		for _, w := range ws {
			q.sched.Wake(w)
		}
	}
	return m, slot, true
}

// awaitData registers the consumer thread to be woken on the next push.
func (q *simQueue) awaitData(t *sim.Thread) { q.waitData = t }

// awaitSpace registers a producer thread to be woken on the next pop.
func (q *simQueue) awaitSpace(t *sim.Thread) {
	for _, w := range q.waitSpace {
		if w == t {
			return
		}
	}
	q.waitSpace = append(q.waitSpace, t)
}

// len reports queued messages.
func (q *simQueue) size() int { return q.n }
