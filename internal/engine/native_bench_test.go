package engine

import (
	"os"
	"testing"

	"streamscale/internal/ring"
)

// BenchmarkNativeRingTransfer measures the raw executor-to-executor
// message hop: one producer pushing Msg batches through an SPSC ring to
// one consumer, slabs recycled over the free ring — the steady-state
// transfer the acceptance bar requires at 0 allocs/op.
func BenchmarkNativeRingTransfer(b *testing.B) {
	const batch = 4
	data := ring.NewSPSC[Msg](256, nil)
	free := ring.NewSPSC[[]Tuple](8, nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			m := data.Pop()
			clear(m.Batch)
			free.TryPush(m.Batch[:0])
		}
	}()
	vals := []Value{int64(1), int64(2)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slab, ok := free.TryPop()
		if !ok {
			slab = make([]Tuple, 0, batch)
		}
		for k := 0; k < batch; k++ {
			slab = append(slab, Tuple{Values: vals, Root: int64(i)})
		}
		data.Push(Msg{Stream: DefaultStream, Batch: slab})
	}
	<-done
}

// benchPipeline runs the word-count topology (wc shape: source → split →
// count → sink) once on the given runner and reports events/sec.
func benchPipeline(b *testing.B, run func(*Topology, NativeConfig) (*Result, error), sentences int) float64 {
	topo := wcTopology(sentences, func() Operator {
		return ProcessFunc(func(Context, Tuple) {})
	})
	res, err := run(topo, NativeConfig{System: Storm(), BatchSize: 4, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	if res.SinkEvents == 0 {
		b.Fatal("pipeline delivered nothing")
	}
	return float64(res.SourceEvents) / res.ElapsedSeconds
}

// BenchmarkNativePipeline: the acceptance-criteria cell — wc, Storm
// profile (acking on), batch S=4 — on the lock-free ring runtime.
func BenchmarkNativePipeline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eps := benchPipeline(b, RunNative, 2000)
		b.ReportMetric(eps, "events/s")
	}
}

// BenchmarkNativePipelineChannels is the same cell on the preserved
// channel-based runtime (runtime_native_chanref_test.go).
func BenchmarkNativePipelineChannels(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eps := benchPipeline(b, runNativeChannels, 2000)
		b.ReportMetric(eps, "events/s")
	}
}

// TestNativePipelineSpeedup asserts the acceptance bar — ≥2x tuples/sec
// over the channel runtime on wc/storm/S=4. Wall-clock performance
// assertions are inherently host-sensitive, so the test only runs when
// DSP_PERF=1 (ci.sh runs it in a dedicated non-race stage).
func TestNativePipelineSpeedup(t *testing.T) {
	if os.Getenv("DSP_PERF") != "1" {
		t.Skip("set DSP_PERF=1 to run wall-clock performance assertions")
	}
	best := func(run func(*Topology, NativeConfig) (*Result, error)) float64 {
		var m float64
		for rep := 0; rep < 5; rep++ {
			topo := wcTopology(3000, func() Operator {
				return ProcessFunc(func(Context, Tuple) {})
			})
			res, err := run(topo, NativeConfig{System: Storm(), BatchSize: 4, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			if eps := float64(res.SourceEvents) / res.ElapsedSeconds; eps > m {
				m = eps
			}
		}
		return m
	}
	rings := best(RunNative)
	chans := best(runNativeChannels)
	ratio := rings / chans
	t.Logf("ring runtime %.0f events/s, channel runtime %.0f events/s, ratio %.2fx", rings, chans, ratio)
	if ratio < 2 {
		t.Fatalf("ring runtime only %.2fx the channel runtime, want >= 2x", ratio)
	}
}

// TestRingMsgTransferZeroAllocs: the engine-level twin of the ring
// package's zero-alloc test, through Msg-typed rings with slab recycling
// (the exact hop BenchmarkNativeRingTransfer measures).
func TestRingMsgTransferZeroAllocs(t *testing.T) {
	if ring.RaceEnabled {
		t.Skip("race instrumentation allocates")
	}
	data := ring.NewSPSC[Msg](64, nil)
	free := ring.NewSPSC[[]Tuple](8, nil)
	free.TryPush(make([]Tuple, 0, 4))
	vals := []Value{int64(1)}
	allocs := testing.AllocsPerRun(2000, func() {
		slab, ok := free.TryPop()
		if !ok {
			t.Fatal("free ring dry")
		}
		slab = append(slab, Tuple{Values: vals})
		if !data.TryPush(Msg{Batch: slab}) {
			t.Fatal("data ring full")
		}
		m, _ := data.TryPop()
		clear(m.Batch)
		free.TryPush(m.Batch[:0])
	})
	if allocs != 0 {
		t.Fatalf("Msg ring transfer allocates %.1f per op, want 0", allocs)
	}
}

