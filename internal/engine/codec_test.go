package engine

import (
	"bytes"
	"reflect"
	"testing"

	"streamscale/internal/hw"
	"streamscale/internal/metrics"
	"streamscale/internal/profiler"
	"streamscale/internal/sim"
)

func sampleHistogram(seed int, n int) *metrics.Histogram {
	h := metrics.NewHistogram(128)
	for i := 0; i < n; i++ {
		h.Observe(float64((i*seed)%251) / 7)
	}
	return h
}

func sampleProfile(seed int) *profiler.Profile {
	p := profiler.New()
	var v hw.CostVec
	for b := hw.Bucket(0); b < hw.NumBuckets; b++ {
		v[b] = sim.Cycles(int64(seed) * (int64(b) + 3))
	}
	p.Add(&v)
	p.GCCycles = sim.Cycles(int64(seed) * 17)
	for i := 0; i < 40*seed; i++ {
		p.NoteFootprint(i * 64)
	}
	return p
}

// TestResultCodecRoundTrip populates every Result field — including nested
// histograms with mid-schedule decimation state and per-operator profiles
// — and asserts the decode is deep-equal to the original.
func TestResultCodecRoundTrip(t *testing.T) {
	r := &Result{
		App:            "WC",
		System:         "storm",
		SourceEvents:   123456,
		SinkEvents:     120001,
		ElapsedSeconds: 12.75,
		WallSeconds:    3.25,
		Latency:        sampleHistogram(3, 500),
		Profile:        sampleProfile(2),
		ChargedCycles:  987654321,
		OperatorProfiles: map[string]*profiler.Profile{
			"split":   sampleProfile(3),
			"count":   sampleProfile(5),
			"monitor": sampleProfile(7),
		},
		CPUUtil:        0.82,
		MemUtil:        0.41,
		QPIBytes:       1 << 30,
		AckerCompleted: 119998,
		MinorGCs:       42,
		GCShare:        0.07,
		Executors: []ExecStat{
			{Op: "split", Index: 0, Socket: 0, Tuples: 61000, MeanTupleMs: 0.02,
				Invocations: 6100, Costs: sampleProfile(4).Costs},
			{Op: "split", Index: 1, Socket: 1, Tuples: 59001, MeanTupleMs: 0.021,
				Invocations: 5900, Costs: sampleProfile(6).Costs},
			{Op: "count", Index: 0, Socket: -1, Tuples: 120001, MeanTupleMs: 0.005},
		},
		Edges: []EdgeStat{
			{From: 0, To: 2, Msgs: 6100, Tuples: 61000, Bytes: 2440000},
			{From: 1, To: 2, Msgs: 5900, Tuples: 59001, Bytes: 2360040},
		},
	}

	var buf bytes.Buffer
	if err := EncodeResult(&buf, r); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeResult(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Fatalf("round trip not lossless:\n have %+v\n got  %+v", r, got)
	}
}

// TestResultCodecNilPointers checks the sparse shapes the native runtime
// produces (no profile, no operator breakdown) survive the round trip.
func TestResultCodecNilPointers(t *testing.T) {
	r := &Result{
		App:            "FD",
		System:         "native",
		SourceEvents:   10,
		ElapsedSeconds: 1,
		Latency:        metrics.NewHistogram(0), // empty: ±Inf min/max sentinels
	}
	var buf bytes.Buffer
	if err := EncodeResult(&buf, r); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeResult(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Fatalf("round trip not lossless:\n have %+v\n got  %+v", r, got)
	}
}
