package engine

import (
	"fmt"
	"math/rand"
	"testing"
)

// Random-topology equivalence: generate random layered DAGs with random
// groupings, parallelism, and selectivities, and check that the native and
// simulated runtimes deliver exactly the same number of tuples to every
// operator — the runtimes must differ in performance, never in semantics.

// echoN emits each input tuple's key n times.
type echoN struct{ n int }

func (e echoN) Prepare(Context) {}
func (e echoN) Process(ctx Context, t Tuple) {
	for i := 0; i < e.n; i++ {
		ctx.Emit(t.Values[0], i)
	}
}

// keyedSource emits tuples with keys cycling over a small space.
type keyedSource struct{ n, keys int }

func (s *keyedSource) Prepare(Context) {}
func (s *keyedSource) Next(ctx Context) bool {
	if s.n <= 0 {
		return false
	}
	s.n--
	ctx.Emit(fmt.Sprintf("k%02d", s.n%s.keys), s.n)
	return s.n > 0
}

// randomTopology builds a layered DAG: a source layer, 1-3 middle layers,
// and a sink. Each middle node subscribes to 1-2 nodes of earlier layers
// with a random grouping.
func randomTopology(rng *rand.Rand, events int) *Topology {
	t := NewTopology("random")
	t.AddSource("src", 1+rng.Intn(2), func() Source {
		return &keyedSource{n: events, keys: 4 + rng.Intn(12)}
	}, Stream(DefaultStream, "key", "seq"))

	groupings := []func() Grouping{
		Shuffle,
		func() Grouping { return Fields("key") },
		Global,
	}
	prev := []string{"src"}
	layers := 1 + rng.Intn(3)
	id := 0
	for l := 0; l < layers; l++ {
		width := 1 + rng.Intn(2)
		var cur []string
		for w := 0; w < width; w++ {
			name := fmt.Sprintf("op%d", id)
			id++
			fan := 1 + rng.Intn(2)
			node := t.AddOp(name, 1+rng.Intn(3), func() Operator {
				return echoN{n: fan}
			}, Stream(DefaultStream, "key", "seq"))
			// Subscribe to 1..2 distinct nodes from the previous layer.
			subs := 1
			if len(prev) > 1 && rng.Intn(2) == 0 {
				subs = 2
			}
			perm := rng.Perm(len(prev))
			for s := 0; s < subs; s++ {
				node.SubDefault(prev[perm[s]], groupings[rng.Intn(len(groupings))]())
			}
			cur = append(cur, name)
		}
		prev = cur
	}
	sink := t.AddOp("sink", 1+rng.Intn(2), func() Operator {
		return ProcessFunc(func(Context, Tuple) {})
	})
	for _, p := range prev {
		sink.SubDefault(p, groupings[rng.Intn(3)]())
	}
	return t
}

func TestRandomTopologySimNativeEquivalence(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		seed := int64(trial)*997 + 13
		rng := rand.New(rand.NewSource(seed))
		events := 40 + rng.Intn(80)

		// Build twice from the same seed: factories capture rng state at
		// build time, so each runtime needs its own topology instance.
		rngA := rand.New(rand.NewSource(seed))
		rngB := rand.New(rand.NewSource(seed))
		topoA := randomTopology(rngA, events)
		topoB := randomTopology(rngB, events)

		sysIdx := trial % 2
		sys := Storm()
		if sysIdx == 1 {
			sys = Flink()
		}
		nat, err := RunNative(topoA, NativeConfig{System: sys, Seed: seed, BatchSize: 1 + trial%8})
		if err != nil {
			t.Fatalf("trial %d native: %v", trial, err)
		}
		sim, err := RunSim(topoB, SimConfig{System: sys, Seed: seed, Sockets: 1 + trial%4, BatchSize: 1 + trial%8})
		if err != nil {
			t.Fatalf("trial %d sim: %v", trial, err)
		}

		if nat.SourceEvents != sim.SourceEvents {
			t.Fatalf("trial %d: source events native %d != sim %d", trial, nat.SourceEvents, sim.SourceEvents)
		}
		if nat.SinkEvents != sim.SinkEvents {
			t.Fatalf("trial %d: sink events native %d != sim %d (seed %d)",
				trial, nat.SinkEvents, sim.SinkEvents, seed)
		}
		// Per-operator tuple counts must match too (sinks tracked above;
		// compare totals for every operator present in both runs).
		natCounts := map[string]int64{}
		for _, e := range nat.Executors {
			natCounts[e.Op] += e.Tuples
		}
		simCounts := map[string]int64{}
		for _, e := range sim.Executors {
			simCounts[e.Op] += e.Tuples
		}
		for op, n := range simCounts {
			if op == AckerName || natCounts[op] == 0 && n == 0 {
				continue
			}
			// Native runs do not track per-executor input tuples for
			// non-sink operators; only compare where both have data.
			if natCounts[op] != 0 && natCounts[op] != n {
				t.Fatalf("trial %d: operator %s tuples native %d != sim %d", trial, op, natCounts[op], n)
			}
		}
		if sys.AckEnabled && nat.AckerCompleted != nat.SourceEvents {
			t.Fatalf("trial %d: native acking incomplete %d/%d", trial, nat.AckerCompleted, nat.SourceEvents)
		}
		if sys.AckEnabled && sim.AckerCompleted != sim.SourceEvents {
			t.Fatalf("trial %d: sim acking incomplete %d/%d", trial, sim.AckerCompleted, sim.SourceEvents)
		}
	}
}
