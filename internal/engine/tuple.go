// Package engine implements a data stream processing engine organized
// around the three design aspects the paper studies: pipelined processing
// with pass-by-reference message passing, on-demand data parallelism
// (per-operator executor counts with grouping strategies), and a JVM-style
// runtime (garbage-collected tuple allocation, pointer-chasing data access).
//
// A Topology is a graph of operators built with NewTopology. It can execute
// on two runtimes: RunNative uses real goroutines and channels and measures
// wall-clock performance; RunSim executes the same operators on a simulated
// multi-socket machine (internal/sim + internal/hw) and produces the
// cycle-accurate breakdowns of the paper's methodology.
package engine

import (
	"fmt"
)

// Value is one tuple field. Supported dynamic types for fields-grouping
// hashing are string, int, int32, int64, uint64, float64 and bool; any
// other type may be carried but not used as a grouping key.
type Value = any

// Tuple is one unit of data flowing between operators. Tuples are passed by
// reference: Addr/Size locate the simulated payload the receiving operator
// dereferences (zero under the native runtime).
type Tuple struct {
	Values []Value

	// Addr is the simulated address of the payload (sim runtime only).
	Addr uint64
	// Size is the estimated payload size in bytes.
	Size int32
	// Born is the tuple tree's birth time: cycles (sim) or ns (native).
	Born int64
	// Root identifies the source tuple this descends from (acking).
	Root int64
	// Edge is this tuple's random edge ID for XOR ack tracking.
	Edge int64
	// EmitAt is the simulated instant this tuple was emitted into its
	// producer's output buffer (sim runtime only) — the start of its
	// batch/delivery residency in the trace's deliver spans.
	EmitAt int64
}

// String renders a tuple for debugging.
func (t Tuple) String() string { return fmt.Sprintf("Tuple%v", t.Values) }

// ValueBytes estimates the serialized/heap size of one field value,
// mirroring Java object sizes (8-byte primitives, strings with headers).
func ValueBytes(v Value) int {
	switch x := v.(type) {
	case nil:
		return 8
	case bool, int8, uint8:
		return 8
	case int, int32, int64, uint32, uint64, float32, float64:
		return 8
	case string:
		return 24 + len(x) // String header + char data (compact strings)
	case []byte:
		return 24 + len(x)
	case []Value:
		n := 24
		for _, e := range x {
			n += ValueBytes(e)
		}
		return n
	default:
		return 16
	}
}

// TupleBytes estimates a tuple's payload size: a fields array plus each
// boxed value.
func TupleBytes(values []Value) int {
	n := 24 + 8*len(values) // Object[] header + references
	for _, v := range values {
		n += ValueBytes(v)
	}
	return n
}
