package engine

import (
	"strings"
	"testing"
)

// chainableTopology: src -> a (shuffle, equal par) -> b -> sink, where
// a->b is chainable and b->sink is not (global grouping).
func chainableTopology(events int, sink func() Operator) *Topology {
	t := NewTopology("chain")
	t.AddSource("src", 1, func() Source { return &burstSource{n: events, per: 1} },
		Stream(DefaultStream, "a", "b"))
	t.AddOp("double", 2, func() Operator {
		return ProcessFunc(func(ctx Context, tp Tuple) {
			ctx.Emit(tp.Values[0].(int)*2, tp.Values[1])
		})
	}, Stream(DefaultStream, "a", "b")).
		SubDefault("src", Shuffle())
	t.AddOp("inc", 2, func() Operator {
		return ProcessFunc(func(ctx Context, tp Tuple) {
			ctx.Emit(tp.Values[0].(int)+1, tp.Values[1])
		})
	}, Stream(DefaultStream, "a", "b")).
		SubDefault("double", Shuffle())
	t.AddOp("sink", 1, sink).SubDefault("inc", Global())
	return t
}

func TestChainTopologyFusesPairs(t *testing.T) {
	topo := chainableTopology(10, func() Operator { return ProcessFunc(func(Context, Tuple) {}) })
	chained, fused, err := ChainTopology(topo)
	if err != nil {
		t.Fatal(err)
	}
	if len(fused) != 1 || fused[0] != "double->inc" {
		t.Fatalf("fused = %v, want [double->inc]", fused)
	}
	if chained.Node("double+inc") == nil {
		t.Fatal("fused node missing")
	}
	if chained.Node("double") != nil || chained.Node("inc") != nil {
		t.Fatal("original nodes not absorbed")
	}
	// Sink's subscription moved to the fused node.
	sink := chained.Node("sink")
	if sink.Subs[0].Operator != "double+inc" {
		t.Fatalf("sink subscribes to %q", sink.Subs[0].Operator)
	}
	// Original topology untouched.
	if topo.Node("double") == nil {
		t.Fatal("input topology was modified")
	}
}

func TestChainedSemanticsIdentical(t *testing.T) {
	run := func(chain bool) map[int]int {
		got := map[int]int{}
		topo := chainableTopology(50, func() Operator {
			return ProcessFunc(func(_ Context, tp Tuple) { got[tp.Values[0].(int)]++ })
		})
		if chain {
			c, fused, err := ChainTopology(topo)
			if err != nil {
				t.Fatal(err)
			}
			if len(fused) == 0 {
				t.Fatal("nothing fused")
			}
			topo = c
		}
		if _, err := RunSim(topo, SimConfig{System: Flink(), Seed: 5, Sockets: 1}); err != nil {
			t.Fatal(err)
		}
		return got
	}
	plain := run(false)
	chained := run(true)
	if len(plain) != len(chained) {
		t.Fatalf("distinct values differ: %d vs %d", len(plain), len(chained))
	}
	for k, v := range plain {
		if chained[k] != v {
			t.Fatalf("value %d: %d vs %d", k, chained[k], v)
		}
	}
}

func TestChainingImprovesThroughput(t *testing.T) {
	tp := func(chain bool) float64 {
		topo := chainableTopology(400, func() Operator { return ProcessFunc(func(Context, Tuple) {}) })
		if chain {
			c, _, err := ChainTopology(topo)
			if err != nil {
				t.Fatal(err)
			}
			topo = c
		}
		res, err := RunSim(topo, SimConfig{System: Flink(), Seed: 5, Sockets: 1})
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput().PerSecond()
	}
	plain, chained := tp(false), tp(true)
	if chained <= plain {
		t.Fatalf("chaining did not help: %.0f -> %.0f events/s", plain, chained)
	}
}

func TestChainingSkipsNonChainable(t *testing.T) {
	// Fields grouping, unequal parallelism, multi-consumer: none may fuse.
	topo := NewTopology("nochain")
	topo.AddSource("src", 1, func() Source { return &burstSource{n: 5, per: 1} },
		Stream(DefaultStream, "a", "b"))
	topo.AddOp("fieldsOp", 2, func() Operator {
		return ProcessFunc(func(ctx Context, tp Tuple) { ctx.Emit(tp.Values...) })
	}, Stream(DefaultStream, "a", "b")).
		SubDefault("src", Fields("a"))
	topo.AddOp("uneven", 3, func() Operator {
		return ProcessFunc(func(ctx Context, tp Tuple) { ctx.Emit(tp.Values...) })
	}, Stream(DefaultStream, "a", "b")).
		SubDefault("fieldsOp", Shuffle())
	topo.AddOp("sinkA", 1, func() Operator { return ProcessFunc(func(Context, Tuple) {}) }).
		SubDefault("uneven", Shuffle())
	topo.AddOp("sinkB", 1, func() Operator { return ProcessFunc(func(Context, Tuple) {}) }).
		SubDefault("uneven", Shuffle())

	_, fused, err := ChainTopology(topo)
	if err != nil {
		t.Fatal(err)
	}
	if len(fused) != 0 {
		t.Fatalf("fused %v; nothing is chainable here", fused)
	}
}

// A Flusher head's buffered tuples must still reach the sink through the
// fused chain's Flush path.
func TestChainingPreservesFlushSemantics(t *testing.T) {
	var got int64
	topo := NewTopology("flusher")
	topo.AddSource("src", 1, func() Source { return &burstSource{n: 30, per: 1} },
		Stream(DefaultStream, "a", "b"))
	topo.AddOp("buf", 1, func() Operator { return &bufferingOp{} },
		Stream(DefaultStream, "a", "b")).
		SubDefault("src", Shuffle())
	topo.AddOp("pass", 1, func() Operator {
		return ProcessFunc(func(ctx Context, tp Tuple) { ctx.Emit(tp.Values...) })
	}, Stream(DefaultStream, "a", "b")).
		SubDefault("buf", Shuffle())
	topo.AddOp("sink", 1, func() Operator {
		return ProcessFunc(func(Context, Tuple) { got++ })
	}).SubDefault("pass", Shuffle())

	chained, fused, err := ChainTopology(topo)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(fused, ","), "buf->pass") {
		t.Fatalf("flusher pair not fused: %v", fused)
	}
	res, err := RunSim(chained, SimConfig{System: Flink(), Seed: 1, Sockets: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != 30 || res.SinkEvents != 30 {
		t.Fatalf("sink saw %d/%d tuples; flush lost data through the chain", got, res.SinkEvents)
	}
}

func TestFuseProfileScalesBySelectivity(t *testing.T) {
	head := WorkProfile{CodeBytes: 10, UopsPerTuple: 100, Selectivity: 4}
	tail := WorkProfile{CodeBytes: 20, UopsPerTuple: 50, AvgTupleBytes: 96}
	f := fuseProfile(head, tail)
	if f.CodeBytes != 30 {
		t.Fatalf("code = %d", f.CodeBytes)
	}
	if f.UopsPerTuple != 100+200 {
		t.Fatalf("uops = %d, want 300 (tail scaled by selectivity 4)", f.UopsPerTuple)
	}
	if f.EffSelectivity() != 4 {
		t.Fatalf("selectivity = %v, want 4 (tail default 1)", f.EffSelectivity())
	}
	if f.AvgTupleBytes != 96 {
		t.Fatalf("tuple bytes = %d, want tail's 96", f.AvgTupleBytes)
	}
}
