package engine

import (
	"strings"
	"testing"

	"streamscale/internal/metrics"
)

func TestResultThroughputAndStats(t *testing.T) {
	r := &Result{
		App: "wc", System: "storm",
		SourceEvents: 10_000, SinkEvents: 40_000,
		ElapsedSeconds: 2,
		Latency:        metrics.NewHistogram(0),
		Executors: []ExecStat{
			{Op: "count", Index: 0, Socket: 0, Tuples: 100, MeanTupleMs: 2},
			{Op: "count", Index: 1, Socket: 1, Tuples: 100, MeanTupleMs: 4},
			{Op: "split", Index: 0, Socket: 0, Tuples: 50, MeanTupleMs: 1},
		},
	}
	r.Latency.Observe(3)
	if got := r.Throughput().KPerSecond(); got != 5 {
		t.Fatalf("throughput = %v k/s, want 5", got)
	}
	if got := len(r.ExecStatsFor("count")); got != 2 {
		t.Fatalf("count executors = %d, want 2", got)
	}
	mean, sd := r.MeanExecLatencyMs("count")
	if mean != 3 || sd != 1 {
		t.Fatalf("exec latency mean/sd = %v/%v, want 3/1", mean, sd)
	}
	if s := r.String(); !strings.Contains(s, "wc/storm") {
		t.Fatalf("render malformed: %s", s)
	}
}

func TestExecGraphOrdering(t *testing.T) {
	topo := wcTopology(5, func() Operator { return nopOp{} })
	refs := ExecGraph(topo)
	// 2 source + 3 split + 2 count + 1 sink = 8 executors, globals 0..7.
	if len(refs) != 8 {
		t.Fatalf("executors = %d, want 8", len(refs))
	}
	for i, r := range refs {
		if r.Global != i {
			t.Fatalf("ref %d has global %d", i, r.Global)
		}
	}
	if refs[0].Op != "source" || refs[7].Op != "sink" {
		t.Fatalf("ordering broken: first=%s last=%s", refs[0].Op, refs[7].Op)
	}
}

func TestValueBytesCoverage(t *testing.T) {
	cases := []struct {
		v   Value
		min int
	}{
		{nil, 8}, {true, 8}, {int8(1), 8}, {uint8(1), 8},
		{int32(1), 8}, {uint32(1), 8}, {float32(1), 8},
		{[]byte("abc"), 27}, {[]Value{int64(1), "ab"}, 24 + 8 + 26},
		{struct{}{}, 16},
	}
	for _, c := range cases {
		if got := ValueBytes(c.v); got < c.min {
			t.Fatalf("ValueBytes(%T) = %d, want >= %d", c.v, got, c.min)
		}
	}
}

func TestEffProfileDefaults(t *testing.T) {
	var p WorkProfile
	if p.EffSelectivity() != 1.0 || p.EffTupleBytes() != 64 {
		t.Fatal("zero profile defaults wrong")
	}
	p.Selectivity, p.AvgTupleBytes = 3, 128
	if p.EffSelectivity() != 3 || p.EffTupleBytes() != 128 {
		t.Fatal("explicit profile values ignored")
	}
}
