package engine

import (
	"fmt"
	"math/rand"

	"streamscale/internal/hw"
	"streamscale/internal/metrics"
	"streamscale/internal/sim"
)

// simEdge routes one stream of one producer executor to a consumer
// operator's executors in the simulated runtime.
type simEdge struct {
	router    *edgeRouter
	stream    string
	consumers []*simExecutor
	system    bool
}

// delivery is one routed message awaiting space in a consumer queue.
type delivery struct {
	q   *simQueue
	to  int // consumer executor global index, for the edge-traffic account
	msg Msg
}

type execStage int

const (
	stageRun execStage = iota
	stageFinish
	stageDone
)

// simExecutor is one executor thread in the simulated runtime. It
// implements sim.Runner: the scheduler calls Step, and all work performed
// during the step is charged to the simulated machine in cycles.
type simExecutor struct {
	rt     *simRuntime
	node   *Node
	index  int
	global int

	op  Operator
	src Source

	in         *simQueue
	nProducers int
	eosSeen    int
	edges      map[string][]*simEdge

	thread  *sim.Thread
	curCore int

	rng     *rand.Rand
	ctx     *simCtx
	buffers map[string][]Tuple
	ackAck  map[int64]int64

	// costs accumulates this executor's Table II charges for the run.
	costs    hw.CostVec
	consumed sim.Cycles // cycles consumed in the current step
	stepAt   sim.Cycles // kernel time at step start

	stateBase   uint64
	stateSocket int
	scratchBase uint64
	scratchSize int
	classAddr   uint64
	prepared    bool
	srcDone     bool
	stage       execStage

	pending    []delivery
	pendingEOS bool

	invocations int64
	tuples      int64
	procCycles  sim.Cycles
	waitCycles  sim.Cycles // queue sojourn of processed messages
	firstTuple  sim.Cycles // wall span of the executor's active period
	lastTuple   sim.Cycles

	// nextEmit is the next arrival instant under open-loop source pacing.
	nextEmit sim.Cycles

	// Open-loop intended-arrival schedule (coordinated-omission correction):
	// tuple j from this source is *scheduled* at firstEmit + j*bornStep
	// cycles regardless of when backpressure actually let it out, and is
	// stamped with that instant. bornStep == 0 means uninitialized.
	bornSched float64
	bornStep  float64

	// Flink barrier alignment: checkpoint id -> producers seen.
	barrierSeen map[int64]int
	nextBarrier sim.Cycles
	barrierID   int64

	latency *metrics.Histogram
	isSink  bool
	sinkN   int64
	// sampleIn counts down sink tuples to the next latency sample; both
	// runtimes use the identical countdown so they sample the same tuple
	// positions (N, 2N, ...) for the same config.
	sampleIn int
}

func newSimExecutor(rt *simRuntime, n *Node, index, global int) *simExecutor {
	e := &simExecutor{
		rt: rt, node: n, index: index, global: global,
		rng:         rand.New(rand.NewSource(rt.cfg.Seed + int64(global)*7919 + 11)),
		buffers:     make(map[string][]Tuple),
		edges:       make(map[string][]*simEdge),
		latency:     metrics.NewHistogram(1 << 14),
		sampleIn:    rt.cfg.LatencySampleEvery,
		isSink:      isSink(n),
		stateSocket: -1,
		barrierSeen: make(map[int64]int),
	}
	if n.IsSource() {
		e.src = n.NewSource()
	} else {
		e.op = n.NewOp()
	}
	return e
}

// now returns the current simulated instant within this step.
func (e *simExecutor) now() sim.Cycles { return e.stepAt + e.consumed }

// Step implements sim.Runner.
func (e *simExecutor) Step(quantum sim.Cycles) (sim.Cycles, sim.Disposition) {
	e.consumed = 0
	e.stepAt = e.rt.kernel.Now()
	if !e.prepared {
		e.prepare()
	}
	if !e.flushPending() {
		return e.consumed, sim.Blocked
	}
	if e.stage == stageFinish {
		return e.completeFinish()
	}
	for e.consumed < quantum {
		if e.src != nil {
			if e.srcDone {
				return e.beginFinish()
			}
			if rate := e.rt.cfg.SourceRate; rate > 0 && e.now() < e.nextEmit {
				// Open-loop pacing: sleep until the next arrival instant.
				at := e.nextEmit
				th := e.thread
				e.rt.kernel.At(at, func() { e.rt.sched.Wake(th) })
				return e.consumed, sim.Blocked
			}
			e.maybeEmitBarrier()
			before := e.rt.sourceEvents
			if !e.sourceInvocation() {
				e.srcDone = true
			}
			if rate := e.rt.cfg.SourceRate; rate > 0 {
				emitted := e.rt.sourceEvents - before
				gap := sim.Cycles(float64(emitted) / rate * float64(e.rt.cfg.Spec.ClockHz))
				if e.nextEmit == 0 {
					e.nextEmit = e.stepAt
				}
				e.nextEmit += gap
			}
		} else {
			msg, slot, ok := e.in.tryPop()
			if !ok {
				if e.eosSeen == e.nProducers {
					return e.beginFinish()
				}
				e.in.awaitData(e.thread)
				return e.consumed, sim.Blocked
			}
			e.access(e.in.slotAddr(slot), e.in.slotBytes)
			e.handleMsg(msg)
		}
		if !e.flushPending() {
			return e.consumed, sim.Blocked
		}
	}
	return e.consumed, sim.Yield
}

func (e *simExecutor) prepare() {
	e.prepared = true
	e.classAddr = e.rt.meta.ClassID(e.node.Name)
	// First-touch allocation of executor-private state on the socket the
	// thread happens to start on — exactly how an unaware JVM behaves.
	// Shared state is allocated once for the whole operator by whichever
	// executor prepares first.
	e.stateSocket = e.rt.machine.SocketOfCore(e.curCore)
	if p := &e.node.Profile; p.StateBytes > 0 {
		if p.SharedState {
			if base, ok := e.rt.sharedState[e.node.Name]; ok {
				e.stateBase = base
			} else {
				e.stateBase = e.allocRaw(p.StateBytes)
				e.rt.sharedState[e.node.Name] = e.stateBase
			}
		} else {
			e.stateBase = e.allocRaw(p.StateBytes)
		}
	}
	e.ctx = &simCtx{ex: e}
	if e.src != nil {
		e.src.Prepare(e.ctx)
		if iv := e.rt.cfg.System.CheckpointInterval; iv > 0 {
			e.nextBarrier = iv
		}
	} else {
		e.op.Prepare(e.ctx)
	}
}

// allocRaw allocates long-lived (tenured) memory on the executor's current
// socket — operator state maps, windows, and similar structures that
// survive across tuples.
func (e *simExecutor) allocRaw(size int) uint64 {
	return e.rt.heap.AllocTenured(e.rt.machine.SocketOfCore(e.curCore), size)
}

// alloc allocates tuple/garbage memory, charging any GC pause triggered.
func (e *simExecutor) alloc(size int) uint64 {
	addr, pause := e.rt.heap.Alloc(e.rt.machine.SocketOfCore(e.curCore), size)
	if pause > 0 {
		e.consumed += pause
	}
	return addr
}

func (e *simExecutor) access(addr uint64, size int) {
	e.consumed += e.rt.machine.DataAccess(e.curCore, addr, size, e.now(), &e.costs)
}

func (e *simExecutor) write(addr uint64, size int) {
	e.consumed += e.rt.machine.DataWrite(e.curCore, addr, size, e.now(), &e.costs)
}

func (e *simExecutor) fetchRegion(r *codeRegion) {
	// Invocations take data-dependent paths: each executes a variable
	// extent of the region's code.
	bytes := r.bytes
	if bytes > 2048 {
		bytes = int(float64(bytes) * (0.55 + 0.45*e.rng.Float64()))
	}
	fp := e.rt.machine.NoteInvocation(e.curCore, r.id, bytes)
	e.rt.profile.NoteFootprint(fp)
	e.consumed += e.rt.machine.FetchCode(e.curCore, r.base, bytes, e.now(), &e.costs)
}

func (e *simExecutor) compute(uops, branches int) {
	mis := e.mispredicts(branches)
	e.consumed += e.rt.machine.Compute(uops, mis, &e.costs)
}

func (e *simExecutor) mispredicts(branches int) int {
	rate := e.rt.cfg.System.MispredictRate
	if branches <= 0 || rate <= 0 {
		return 0
	}
	exp := float64(branches) * rate
	mis := int(exp)
	if e.rng.Float64() < exp-float64(mis) {
		mis++
	}
	return mis
}

// chargeInvocationOverhead models one executor invocation's framework work:
// the platform hot path plus the operator's own code are fetched through
// the instruction hierarchy, and dispatch computation is charged.
func (e *simExecutor) chargeInvocationOverhead() {
	e.invocations++
	hot := e.rt.hotRegions
	uops := e.rt.cfg.System.UopsPerInvoke
	if e.node.System {
		// System operators (the acker) run a lean dispatch path: Storm's
		// acker is a minimal system bolt, not a full user executor.
		if len(hot) > 2 {
			hot = hot[:2]
		}
		uops /= 2
	}
	for _, r := range hot {
		e.fetchRegion(r)
	}
	e.fetchRegion(e.rt.userRegions[e.node.Name])
	e.compute(uops, 4)
	for i, r := range e.rt.coldRegions {
		if every := e.rt.coldEvery[i]; every > 0 && e.invocations%int64(every) == 0 {
			e.fetchRegion(r)
		}
	}
}

// chargeTupleOverhead models per-tuple framework and profile costs: the
// pass-by-reference payload dereference (possibly remote), invokevirtual
// metadata lookups, private state accesses, and computation.
func (e *simExecutor) chargeTupleOverhead(t *Tuple) {
	sys := &e.rt.cfg.System
	p := &e.node.Profile
	if t.Addr != 0 {
		e.access(t.Addr, int(t.Size))
	}
	for i := 0; i < sys.MetadataAccessesPerTuple; i++ {
		base := e.classAddr
		if i > 0 {
			base = e.rt.frameworkClasses[(i-1)%len(e.rt.frameworkClasses)]
		}
		e.access(base+uint64(e.rng.Intn(512))*8, 8)
	}
	for i := 0; i < p.StateAccessesPerTuple && p.StateBytes > 0; i++ {
		e.access(e.stateBase+uint64(e.rng.Intn(p.StateBytes/8))*8, 8)
	}
	e.compute(p.UopsPerTuple+sys.UopsPerTuple, p.BranchesPerTuple+sys.BranchesPerTuple)
	if p.ExtraAllocPerTuple > 0 {
		addr := e.alloc(p.ExtraAllocPerTuple)
		e.write(addr, min(p.ExtraAllocPerTuple, 64))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// sourceInvocation emits up to BatchSize tuples; returns false at source
// exhaustion.
func (e *simExecutor) sourceInvocation() bool {
	e.chargeInvocationOverhead()
	target := e.rt.cfg.BatchSize
	n := 0
	alive := true
	for n < target && alive {
		before := len(e.buffers[DefaultStream]) + e.otherBuffered()
		alive = e.src.Next(e.ctx)
		n += len(e.buffers[DefaultStream]) + e.otherBuffered() - before
	}
	e.endInvocation()
	return alive
}

func (e *simExecutor) otherBuffered() int {
	n := 0
	for s, b := range e.buffers {
		if s != DefaultStream {
			n += len(b)
		}
	}
	return n
}

func (e *simExecutor) handleMsg(msg Msg) {
	if msg.EOS {
		e.eosSeen++
		return
	}
	if msg.Barrier != 0 {
		e.handleBarrier(msg.Barrier)
		return
	}
	if limit, ok := e.rt.cfg.FailAfter[e.global]; ok && e.tuples >= limit {
		// Injected failure: the executor zombies — it keeps draining its
		// queue (so upstream backpressure resolves) but drops everything.
		e.tuples += int64(len(msg.Batch))
		e.compute(40, 1)
		return
	}
	start := e.consumed
	tr := e.rt.tr
	sampled := false
	if tr != nil {
		for i := range msg.Batch {
			if tr.Sampled(msg.Batch[i].Root) {
				sampled = true
				if msg.EnqueuedAt > 0 {
					tr.QueueWait(e.global, msg.FromOp, e.node.Name,
						msg.Batch[i].Root, sim.Cycles(msg.EnqueuedAt), e.now())
				}
			}
		}
	}
	if msg.EnqueuedAt > 0 {
		if wait := e.now() - sim.Cycles(msg.EnqueuedAt); wait > 0 {
			e.waitCycles += wait * sim.Cycles(len(msg.Batch))
		}
	}
	if sampled {
		invStart := e.now()
		preInv := e.costs
		e.chargeInvocationOverhead()
		tr.Invoke(e.global, e.node.Name, invStart, e.now()-invStart, preInv, e.costs)
	} else {
		e.chargeInvocationOverhead()
	}
	for i := range msg.Batch {
		t := &msg.Batch[i]
		e.ctx.curInput = t
		e.ctx.inOp, e.ctx.inStream = msg.FromOp, msg.Stream
		if e.ackTracking() {
			e.accumAck(t.Root, t.Edge)
		}
		if tr != nil && tr.Sampled(t.Root) {
			tStart := e.now()
			preCosts := e.costs
			e.processTuple(t)
			tr.Execute(e.global, e.node.Name, t.Root, tStart, e.now()-tStart, preCosts, e.costs)
		} else {
			e.processTuple(t)
		}
	}
	e.ctx.curInput = nil
	if e.tuples == 0 {
		e.firstTuple = e.stepAt + start
	}
	e.tuples += int64(len(msg.Batch))
	e.endInvocation()
	e.procCycles += e.consumed - start
	e.lastTuple = e.now()
}

// processTuple runs one input tuple through the executor: framework and
// profile charges, sink observation, and the operator's Process.
func (e *simExecutor) processTuple(t *Tuple) {
	e.chargeTupleOverhead(t)
	if e.isSink {
		e.observeSink(t)
	}
	e.op.Process(e.ctx, *t)
}

func (e *simExecutor) ackTracking() bool {
	return e.rt.cfg.System.AckEnabled && !e.node.System
}

func (e *simExecutor) accumAck(root, edge int64) {
	if root == 0 {
		return // unanchored tuple tree
	}
	if e.ackAck == nil {
		e.ackAck = make(map[int64]int64)
	}
	e.ackAck[root] ^= edge
}

func (e *simExecutor) observeSink(t *Tuple) {
	e.sinkN++
	e.rt.sinkEvents++
	if tr := e.rt.tr; tr != nil && tr.Sampled(t.Root) {
		e2e := e.now() - sim.Cycles(t.Born)
		if e2e < 0 {
			e2e = 0
		}
		tr.Sink(e.global, e.node.Name, t.Root, e.now(), e2e)
	}
	e.sampleIn--
	if e.sampleIn <= 0 {
		e.sampleIn = e.rt.cfg.LatencySampleEvery
		// Step execution windows overlap, so a tuple can be observed up to
		// one quantum before its producer's window closes; clamp at zero.
		lat := e.now() - sim.Cycles(t.Born)
		if lat < 0 {
			lat = 0
		}
		e.latency.Observe(lat.Millis(e.rt.cfg.Spec.ClockHz))
	}
}

// endInvocation routes everything emitted during the invocation (Algorithm
// 1 batching), assigns ack edges per delivered copy, generates ack
// messages, and enqueues deliveries.
func (e *simExecutor) endInvocation() {
	for _, s := range e.node.Streams {
		buf := e.buffers[s.Name]
		if len(buf) == 0 {
			continue
		}
		e.buffers[s.Name] = nil
		e.routeBuffer(s.Name, buf)
	}
	e.flushAcks()
}

func (e *simExecutor) routeBuffer(stream string, buf []Tuple) {
	for _, ed := range e.edges[stream] {
		for _, b := range ed.router.route(buf, e.batchCap(stream)) {
			if e.ackTracking() && !ed.system {
				for i := range b.Tuples {
					edge := e.rng.Int63()
					b.Tuples[i].Edge = edge
					e.accumAck(b.Tuples[i].Root, edge)
				}
			}
			c := ed.consumers[b.Consumer]
			e.pending = append(e.pending, delivery{
				q: c.in, to: c.global,
				msg: Msg{
					FromGlobal: e.global, FromOp: e.node.Name,
					Stream: stream, Batch: b.Tuples,
				},
			})
		}
	}
}

func (e *simExecutor) batchCap(stream string) int {
	if stream == AckStream {
		return 0
	}
	return 4 * e.rt.cfg.BatchSize
}

func (e *simExecutor) flushAcks() {
	if len(e.ackAck) == 0 {
		return
	}
	accum := e.ackAck
	e.ackAck = nil
	var buf []Tuple
	for _, root := range sortedRoots(accum) {
		vals := []Value{root, accum[root]}
		t := Tuple{Values: vals, Root: root, Size: int32(TupleBytes(vals))}
		t.Addr = e.alloc(int(t.Size))
		e.write(t.Addr, int(t.Size))
		e.compute(e.node.Profile.UopsPerEmit+120, 2)
		t.EmitAt = int64(e.now())
		buf = append(buf, t)
	}
	e.routeBuffer(AckStream, buf)
}

// flushPending pushes queued deliveries; false means blocked on a full
// consumer queue.
func (e *simExecutor) flushPending() bool {
	sys := &e.rt.cfg.System
	for len(e.pending) > 0 {
		d := e.pending[0]
		d.msg.EnqueuedAt = int64(e.now())
		slot, ok := d.q.tryPush(d.msg)
		if !ok {
			d.q.awaitSpace(e.thread)
			return false
		}
		e.write(d.q.slotAddr(slot), d.q.slotBytes)
		// Per-delivery framework cost: buffer claim/publish plus the
		// per-byte (de)serialization of the batch's payload.
		bytes := 0
		for i := range d.msg.Batch {
			bytes += int(d.msg.Batch[i].Size)
		}
		e.compute(sys.DeliveryUops+int(float64(bytes)*sys.DeliveryUopsPerByte), 3)
		e.rt.noteDelivery(e.global, d.to, len(d.msg.Batch), bytes)
		if tr := e.rt.tr; tr != nil {
			for i := range d.msg.Batch {
				t := &d.msg.Batch[i]
				if tr.Sampled(t.Root) {
					// The consumer's queue ring lives on its home socket;
					// comparing it against the producer's current socket
					// marks cross-socket transfers (Fig 3 step 2).
					tr.Deliver(e.global, e.node.Name, e.rt.execs[d.to].node.Name,
						t.Root, sim.Cycles(t.EmitAt), e.now(),
						e.rt.machine.SocketOfCore(e.curCore), hw.HomeSocket(d.q.baseAddr))
				}
			}
		}
		e.pending = e.pending[1:]
	}
	e.pending = nil
	return true
}

// beginFinish runs the operator's flush and stages EOS broadcasts.
func (e *simExecutor) beginFinish() (sim.Cycles, sim.Disposition) {
	e.stage = stageFinish
	if f, ok := e.op.(Flusher); ok {
		e.ctx.curInput = nil
		e.chargeInvocationOverhead()
		f.Flush(e.ctx)
		e.endInvocation()
	}
	for _, s := range e.node.Streams {
		for _, ed := range e.edges[s.Name] {
			for _, c := range ed.consumers {
				e.pending = append(e.pending, delivery{
					q: c.in, to: c.global,
					msg: Msg{FromGlobal: e.global, FromOp: e.node.Name, Stream: s.Name, EOS: true},
				})
			}
		}
	}
	if !e.flushPending() {
		return e.consumed, sim.Blocked
	}
	return e.completeFinish()
}

func (e *simExecutor) completeFinish() (sim.Cycles, sim.Disposition) {
	e.stage = stageDone
	if e.consumed == 0 {
		e.consumed = 1
	}
	return e.consumed, sim.Done
}

// maybeEmitBarrier injects a checkpoint barrier from a source executor.
func (e *simExecutor) maybeEmitBarrier() {
	iv := e.rt.cfg.System.CheckpointInterval
	if iv <= 0 || e.now() < e.nextBarrier {
		return
	}
	e.nextBarrier += iv
	e.barrierID++
	e.broadcastBarrier(e.barrierID)
	if tr := e.rt.tr; tr != nil {
		tr.Barrier(e.global, e.node.Name, e.barrierID, e.now())
	}
}

func (e *simExecutor) broadcastBarrier(id int64) {
	for _, s := range e.node.Streams {
		if s.Name == AckStream {
			continue
		}
		for _, ed := range e.edges[s.Name] {
			for _, c := range ed.consumers {
				e.pending = append(e.pending, delivery{
					q: c.in, to: c.global,
					msg: Msg{FromGlobal: e.global, FromOp: e.node.Name, Stream: s.Name, Barrier: id},
				})
			}
		}
	}
}

// handleBarrier aligns barriers from all producers, snapshots state, and
// forwards the barrier downstream (Flink's checkpointing).
func (e *simExecutor) handleBarrier(id int64) {
	e.barrierSeen[id]++
	if e.barrierSeen[id] < e.nProducers {
		return
	}
	delete(e.barrierSeen, id)
	p := &e.node.Profile
	sys := &e.rt.cfg.System
	snapUops := int(sys.SnapshotUopsPerStateByte * float64(p.StateBytes))
	e.compute(snapUops, 8)
	if p.StateBytes > 0 {
		// Sweep a quarter of the state working set (dirty regions).
		sweep := p.StateBytes / 4
		for off := 0; off < sweep; off += 256 {
			e.access(e.stateBase+uint64(off), 8)
		}
	}
	e.broadcastBarrier(id)
	if tr := e.rt.tr; tr != nil {
		tr.Barrier(e.global, e.node.Name, id, e.now())
	}
}

// simCtx implements Context for the simulated runtime.
type simCtx struct {
	ex       *simExecutor
	curInput *Tuple
	inOp     string
	inStream string
}

func (c *simCtx) Emit(values ...Value) { c.EmitTo(DefaultStream, values...) }

func (c *simCtx) EmitTo(stream string, values ...Value) {
	e := c.ex
	if _, ok := e.node.OutStream(stream); !ok {
		panic(fmt.Sprintf("engine: %q emits to undeclared stream %q", e.node.Name, stream))
	}
	t := Tuple{Values: values, Size: int32(TupleBytes(values))}
	if c.curInput != nil {
		t.Born = c.curInput.Born
		t.Root = c.curInput.Root
	} else {
		t.Born = int64(e.now())
		if e.node.IsSource() {
			if rate := e.rt.cfg.SourceRate; rate > 0 && !e.rt.cfg.CoordinatedOmission && stream != AckStream {
				// Open-loop: stamp the *scheduled* emission instant, not the
				// actual one. When backpressure stalls the throttled source,
				// the wait the schedule would have imposed on a real client
				// stays inside the measured latency instead of being
				// silently forgiven (coordinated omission). The schedule
				// base matches the nextEmit pacing base (first invocation's
				// step start), so an unloaded source stamps ~the actual
				// instant and closed-loop behavior is untouched.
				if e.bornStep == 0 {
					e.bornSched = float64(e.stepAt)
					e.bornStep = float64(e.rt.cfg.Spec.ClockHz) / rate
				}
				t.Born = int64(e.bornSched)
				e.bornSched += e.bornStep
			}
			e.rt.rootCtr++
			t.Root = e.rt.rootCtr
			if tr := e.rt.tr; tr != nil {
				tr.SpoutEmit(t.Root)
			}
		}
		// Non-source emissions without an input anchor (e.g. Flush) are
		// unanchored, as in Storm: Root stays 0 and is never ack-tracked.
	}
	// Output data is written to the producer's local memory (Fig 3 step 1).
	t.Addr = e.alloc(int(t.Size))
	e.write(t.Addr, int(t.Size))
	e.compute(e.node.Profile.UopsPerEmit, 3)
	t.EmitAt = int64(e.now())
	if e.node.IsSource() && stream != AckStream {
		e.rt.sourceEvents++
	}
	e.buffers[stream] = append(e.buffers[stream], t)
}

func (c *simCtx) ExecutorID() int         { return c.ex.index }
func (c *simCtx) Parallelism() int        { return c.ex.node.Parallelism }
func (c *simCtx) OperatorName() string    { return c.ex.node.Name }
func (c *simCtx) Rand() *rand.Rand        { return c.ex.rng }
func (c *simCtx) Input() (string, string) { return c.inOp, c.inStream }

func (c *simCtx) Work(uops, branches int) { c.ex.compute(uops, branches) }

func (c *simCtx) ScanState(bytes int) {
	e := c.ex
	if e.node.Profile.StateBytes <= 0 || bytes <= 0 {
		return
	}
	if max := e.node.Profile.StateBytes; bytes > max {
		bytes = max
	}
	e.consumed += e.rt.machine.StreamAccess(e.curCore, e.stateBase, bytes, e.now(), &e.costs)
}

func (c *simCtx) ScanScratch(bytes int) {
	e := c.ex
	if bytes <= 0 {
		return
	}
	if bytes > e.scratchSize {
		e.scratchBase = e.allocRaw(bytes)
		e.scratchSize = bytes
	}
	e.consumed += e.rt.machine.StreamAccess(e.curCore, e.scratchBase, bytes, e.now(), &e.costs)
}

func (c *simCtx) AccessState(bytes int) {
	e := c.ex
	p := &e.node.Profile
	if p.StateBytes <= 0 || bytes <= 0 {
		return
	}
	lines := (bytes + 63) / 64
	for i := 0; i < lines; i++ {
		e.access(e.stateBase+uint64(e.rng.Intn(p.StateBytes/8))*8, 8)
	}
}
