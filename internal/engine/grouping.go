package engine

import (
	"fmt"
	"math"
)

// GroupKind enumerates the stream partitioning strategies of §II-B.
type GroupKind int

const (
	// GroupShuffle distributes tuples uniformly (round-robin) across the
	// consumer's executors.
	GroupShuffle GroupKind = iota
	// GroupFields routes by the hash of selected key fields, so the same
	// key always reaches the same executor.
	GroupFields
	// GroupGlobal sends every tuple to executor 0 of the consumer.
	GroupGlobal
	// GroupAll replicates every tuple to all executors of the consumer.
	GroupAll
)

func (k GroupKind) String() string {
	switch k {
	case GroupShuffle:
		return "shuffle"
	case GroupFields:
		return "fields"
	case GroupGlobal:
		return "global"
	case GroupAll:
		return "all"
	}
	return fmt.Sprintf("grouping(%d)", int(k))
}

// Grouping selects how a subscription partitions a stream.
type Grouping struct {
	Kind   GroupKind
	Fields []string // key field names, for GroupFields
}

// Shuffle returns a shuffle grouping.
func Shuffle() Grouping { return Grouping{Kind: GroupShuffle} }

// Fields returns a fields (key) grouping on the named fields.
func Fields(fields ...string) Grouping {
	if len(fields) == 0 {
		panic("engine: fields grouping needs at least one field")
	}
	return Grouping{Kind: GroupFields, Fields: fields}
}

// Global returns a global grouping (everything to executor 0).
func Global() Grouping { return Grouping{Kind: GroupGlobal} }

// All returns an all grouping (replicate to every executor).
func All() Grouping { return Grouping{Kind: GroupAll} }

// FNV-1a parameters; the inlined loops below must stay bit-identical to
// hash/fnv's New64a over the same byte sequences (fnvEquivalence test),
// because fields-grouping distributions — and with them every simulated
// result — depend on these exact values.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvU64 is FNV-1a over x's eight little-endian bytes, allocation-free
// (hash/fnv's hasher object escapes; this runs per routed tuple).
func fnvU64(x uint64) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(x >> (8 * i)))
		h *= fnvPrime64
	}
	return h
}

// fnvString is FNV-1a over the string's bytes.
func fnvString(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// HashValue hashes one grouping key field. It is stable across runs and
// platforms (FNV-1a), which fields grouping correctness depends on.
func HashValue(v Value) uint64 {
	switch x := v.(type) {
	case string:
		return fnvString(x)
	case int:
		return fnvU64(uint64(x))
	case int32:
		return fnvU64(uint64(x))
	case int64:
		return fnvU64(uint64(x))
	case uint64:
		return fnvU64(x)
	case float64:
		return fnvU64(math.Float64bits(x))
	case bool:
		if x {
			return fnvU64(1)
		}
		return fnvU64(0)
	default:
		panic(fmt.Sprintf("engine: unhashable grouping key type %T", v))
	}
}

// HashFields combines the selected field indices of a tuple into one key
// hash, the paper's Algorithm 1 "Combine" step.
func HashFields(values []Value, idx []int) uint64 {
	var acc uint64 = 1469598103934665603 // FNV offset basis
	for _, i := range idx {
		acc = acc*1099511628211 ^ HashValue(values[i])
	}
	return acc
}

// hashAckRoot is HashFields for a Values-free native ack tuple: identical
// to HashFields([]Value{root}, []int{0}) without boxing the root.
func hashAckRoot(root int64) uint64 {
	var acc uint64 = 1469598103934665603
	return acc*1099511628211 ^ fnvU64(uint64(root))
}
