package engine

import (
	"fmt"
	"hash/fnv"
	"math"
)

// GroupKind enumerates the stream partitioning strategies of §II-B.
type GroupKind int

const (
	// GroupShuffle distributes tuples uniformly (round-robin) across the
	// consumer's executors.
	GroupShuffle GroupKind = iota
	// GroupFields routes by the hash of selected key fields, so the same
	// key always reaches the same executor.
	GroupFields
	// GroupGlobal sends every tuple to executor 0 of the consumer.
	GroupGlobal
	// GroupAll replicates every tuple to all executors of the consumer.
	GroupAll
)

func (k GroupKind) String() string {
	switch k {
	case GroupShuffle:
		return "shuffle"
	case GroupFields:
		return "fields"
	case GroupGlobal:
		return "global"
	case GroupAll:
		return "all"
	}
	return fmt.Sprintf("grouping(%d)", int(k))
}

// Grouping selects how a subscription partitions a stream.
type Grouping struct {
	Kind   GroupKind
	Fields []string // key field names, for GroupFields
}

// Shuffle returns a shuffle grouping.
func Shuffle() Grouping { return Grouping{Kind: GroupShuffle} }

// Fields returns a fields (key) grouping on the named fields.
func Fields(fields ...string) Grouping {
	if len(fields) == 0 {
		panic("engine: fields grouping needs at least one field")
	}
	return Grouping{Kind: GroupFields, Fields: fields}
}

// Global returns a global grouping (everything to executor 0).
func Global() Grouping { return Grouping{Kind: GroupGlobal} }

// All returns an all grouping (replicate to every executor).
func All() Grouping { return Grouping{Kind: GroupAll} }

// HashValue hashes one grouping key field. It is stable across runs and
// platforms (FNV-1a), which fields grouping correctness depends on.
func HashValue(v Value) uint64 {
	h := fnv.New64a()
	switch x := v.(type) {
	case string:
		h.Write([]byte(x))
	case int:
		writeU64(h, uint64(x))
	case int32:
		writeU64(h, uint64(x))
	case int64:
		writeU64(h, uint64(x))
	case uint64:
		writeU64(h, x)
	case float64:
		writeU64(h, math.Float64bits(x))
	case bool:
		if x {
			writeU64(h, 1)
		} else {
			writeU64(h, 0)
		}
	default:
		panic(fmt.Sprintf("engine: unhashable grouping key type %T", v))
	}
	return h.Sum64()
}

func writeU64(h interface{ Write([]byte) (int, error) }, x uint64) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(x >> (8 * i))
	}
	h.Write(b[:])
}

// HashFields combines the selected field indices of a tuple into one key
// hash, the paper's Algorithm 1 "Combine" step.
func HashFields(values []Value, idx []int) uint64 {
	var acc uint64 = 1469598103934665603 // FNV offset basis
	for _, i := range idx {
		acc = acc*1099511628211 ^ HashValue(values[i])
	}
	return acc
}
