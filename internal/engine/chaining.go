package engine

import "fmt"

// Operator chaining (Flink's task-fusion optimization): a producer whose
// single output stream feeds exactly one consumer with equal parallelism
// over a shuffle (forward-able) connection is fused with that consumer
// into one operator. The chained hop then costs a function call instead of
// a queue transfer — no serialization, no scheduling, no remote access.
//
// ChainTopology rewrites a topology by repeatedly fusing every chainable
// pair. The rewrite is semantics-preserving: the fused operator runs the
// head's Process and feeds each emission straight into the tail's Process;
// downstream subscriptions move to the fused node.

// chainable reports whether producer p can fuse with its sole consumer,
// returning that consumer.
func chainable(t *Topology, p *Node) (*Node, bool) {
	if p.IsSource() || p.System || len(p.Streams) != 1 || p.Streams[0].Name != DefaultStream {
		return nil, false
	}
	edges := t.Consumers(p.Name)
	if len(edges) != 1 {
		return nil, false
	}
	c := edges[0].Consumer
	if c.System || c.IsSource() || len(c.Subs) != 1 {
		return nil, false
	}
	sub := c.Subs[0]
	if sub.Group.Kind != GroupShuffle || c.Parallelism != p.Parallelism {
		return nil, false
	}
	return c, true
}

// chainedOp runs head then tail in one invocation.
type chainedOp struct {
	head Operator
	tail Operator
}

func (c *chainedOp) Prepare(ctx Context) {
	c.head.Prepare(ctx)
	c.tail.Prepare(ctx)
}

func (c *chainedOp) Process(ctx Context, t Tuple) {
	c.head.Process(&chainCtx{Context: ctx, tail: c.tail}, t)
}

// Flush drains both stages at end of stream: the head's flush output flows
// through the tail, then the tail flushes itself.
func (c *chainedOp) Flush(ctx Context) {
	if f, ok := c.head.(Flusher); ok {
		f.Flush(&chainCtx{Context: ctx, tail: c.tail})
	}
	if f, ok := c.tail.(Flusher); ok {
		f.Flush(ctx)
	}
}

// chainCtx intercepts the head's emissions and feeds them to the tail
// synchronously; the tail's own emissions go to the real context (the
// fused node declares the tail's output streams).
type chainCtx struct {
	Context
	tail Operator
}

func (c *chainCtx) Emit(values ...Value) {
	c.tail.Process(c.Context, Tuple{Values: values, Size: int32(TupleBytes(values))})
}

func (c *chainCtx) EmitTo(stream string, values ...Value) {
	if stream != DefaultStream {
		panic(fmt.Sprintf("engine: chained head emitted to stream %q; only the default stream is chainable", stream))
	}
	c.Emit(values...)
}

// fuseProfile combines the work profiles of a chained pair: the tail runs
// once per head output, so its per-tuple costs scale by the head's
// selectivity.
func fuseProfile(head, tail WorkProfile) WorkProfile {
	sel := head.EffSelectivity()
	scale := func(v int) int { return int(float64(v)*sel + 0.5) }
	return WorkProfile{
		CodeBytes:             head.CodeBytes + tail.CodeBytes,
		UopsPerTuple:          head.UopsPerTuple + scale(tail.UopsPerTuple),
		UopsPerEmit:           tail.UopsPerEmit,
		BranchesPerTuple:      head.BranchesPerTuple + scale(tail.BranchesPerTuple),
		StateBytes:            head.StateBytes + tail.StateBytes,
		SharedState:           head.SharedState || tail.SharedState,
		StateAccessesPerTuple: head.StateAccessesPerTuple + scale(tail.StateAccessesPerTuple),
		ExtraAllocPerTuple:    head.ExtraAllocPerTuple + scale(tail.ExtraAllocPerTuple),
		Selectivity:           head.EffSelectivity() * tail.EffSelectivity(),
		AvgTupleBytes:         tail.EffTupleBytes(),
	}
}

// ChainTopology returns a rewritten topology with every chainable pair
// fused, plus the list of fused pairs as "head->tail" strings. The input
// topology is not modified.
func ChainTopology(t *Topology) (*Topology, []string, error) {
	if err := t.Validate(); err != nil {
		return nil, nil, err
	}
	// Work on a copy.
	cur := NewTopology(t.Name)
	for _, n := range t.nodes {
		cp := *n
		cp.Streams = append([]StreamSpec(nil), n.Streams...)
		cp.Subs = append([]Subscription(nil), n.Subs...)
		cur.add(&cp)
	}

	var fused []string
	for {
		var head, tail *Node
		for _, n := range cur.nodes {
			if c, ok := chainable(cur, n); ok {
				head, tail = n, c
				break
			}
		}
		if head == nil {
			break
		}
		fused = append(fused, head.Name+"->"+tail.Name)

		next := NewTopology(cur.Name)
		fusedName := head.Name + "+" + tail.Name
		for _, n := range cur.nodes {
			switch n.Name {
			case head.Name:
				newHead, newTail := head.NewOp, tail.NewOp
				fn := &Node{
					Name:        fusedName,
					Parallelism: head.Parallelism,
					NewOp: func() Operator {
						return &chainedOp{head: newHead(), tail: newTail()}
					},
					Streams: append([]StreamSpec(nil), tail.Streams...),
					Subs:    append([]Subscription(nil), head.Subs...),
					Profile: fuseProfile(head.Profile, tail.Profile),
				}
				next.add(fn)
			case tail.Name:
				// absorbed into the fused node
			default:
				cp := *n
				cp.Streams = append([]StreamSpec(nil), n.Streams...)
				cp.Subs = make([]Subscription, len(n.Subs))
				for i, s := range n.Subs {
					if s.Operator == tail.Name {
						s.Operator = fusedName
					}
					cp.Subs[i] = s
				}
				next.add(&cp)
			}
		}
		cur = next
	}
	if err := cur.Validate(); err != nil {
		return nil, nil, fmt.Errorf("engine: chaining produced an invalid topology: %w", err)
	}
	return cur, fused, nil
}
