package engine

import (
	"encoding/gob"
	"io"
)

// EncodeResult writes a Result to w in a self-describing binary form that
// DecodeResult inverts losslessly (histograms keep their retained samples
// and decimation state, so quantiles and CDFs survive the round trip).
// The persistent cell cache in internal/bench/memo stores results this
// way; the encoding is not required to be byte-stable across runs — cache
// keys come from the cell, never from the encoded result.
func EncodeResult(w io.Writer, r *Result) error {
	return gob.NewEncoder(w).Encode(r)
}

// DecodeResult reads a Result previously written by EncodeResult.
func DecodeResult(r io.Reader) (*Result, error) {
	var res Result
	if err := gob.NewDecoder(r).Decode(&res); err != nil {
		return nil, err
	}
	return &res, nil
}
