package engine

import (
	"fmt"
	"sort"
	"time"

	"streamscale/internal/hw"
	"streamscale/internal/jvm"
	"streamscale/internal/metrics"
	"streamscale/internal/profiler"
	"streamscale/internal/sim"
	"streamscale/internal/trace"
)

// SimConfig configures a run on the simulated multi-socket machine.
type SimConfig struct {
	// System selects the engine profile (Storm or Flink).
	System SystemProfile
	// BatchSize is the source batch size S (§VI-A); 1 or 0 disables
	// batching.
	BatchSize int

	// Spec is the machine; zero value selects the paper's Table III server.
	Spec hw.MachineSpec
	// Sockets enables the first n sockets (0 = all). Cores, if nonzero,
	// further restricts to the first Cores cores — the paper's 1..8-core
	// sweep within one socket.
	Sockets int
	Cores   int

	// Placement maps executor global index -> socket. Executors absent
	// from the map (or all, when nil) float across all enabled cores, as
	// threads do without a NUMA-aware scheduler.
	Placement map[int]int

	// GC selects the collector model; zero value selects G1 with a young
	// generation scaled for simulation-length runs.
	GC jvm.Config

	// FailAfter injects executor failures: executor global index -> number
	// of input tuples after which the executor turns into a zombie that
	// drains its queue but neither processes, emits, nor acks. Storm's XOR
	// accounting then reports the lost tuple trees as incomplete
	// (AckerCompleted < SourceEvents) — the signal its replay logic keys
	// on.
	FailAfter map[int]int64

	// SourceRate throttles each source executor to the given event rate
	// (events per simulated second). Zero runs sources closed-loop at full
	// speed, as the paper's throughput experiments do; a nonzero rate
	// yields open-loop latency measurements at a fixed offered load.
	SourceRate float64

	// CoordinatedOmission re-enables the coordinated-omission bug for
	// ablation studies: open-loop sources stamp tuples with the *actual*
	// emission instant instead of the scheduled one, so queueing delay at
	// the throttled source (i.e. backpressure) is silently forgiven.
	// Leave false for honest open-loop latency. Ignored when SourceRate
	// is 0 — closed-loop runs have no arrival schedule to correct against.
	CoordinatedOmission bool

	// Seed drives all randomness.
	Seed int64
	// QueueCap overrides the profile's queue capacity.
	QueueCap int
	// LatencySampleEvery samples end-to-end latency every n-th sink tuple.
	LatencySampleEvery int
	// TimeLimit aborts the simulation after this many cycles (safety
	// net; 0 = one simulated hour).
	TimeLimit sim.Cycles

	// Trace, if non-nil, records a cycle-exact trace of the run (sampled
	// tuple span chains, scheduler timelines, queue depths, folded stall
	// stacks). All hooks are nil-guarded: a nil Trace costs nothing on the
	// simulation hot paths.
	Trace *trace.Tracer
}

func (c *SimConfig) fill() {
	if c.Spec.Sockets == 0 {
		c.Spec = hw.TableIII()
	}
	if c.Sockets <= 0 || c.Sockets > c.Spec.Sockets {
		c.Sockets = c.Spec.Sockets
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 1
	}
	if c.QueueCap <= 0 {
		c.QueueCap = c.System.QueueCap
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 1024
	}
	if c.LatencySampleEvery <= 0 {
		c.LatencySampleEvery = 8
	}
	if c.GC.YoungBytes == 0 {
		c.GC = jvm.G1()
	}
	if c.GC.YoungBytes >= 64<<20 {
		// Simulation runs process orders of magnitude fewer events than
		// the hour-long hardware runs; scale the young generation down so
		// collections actually occur and the allocation-to-collection
		// ratio (hence the GC overhead share) matches production behaviour.
		c.GC.YoungBytes = 2 << 20
	}
	if c.TimeLimit <= 0 {
		c.TimeLimit = sim.Cycles(c.Spec.ClockHz) * 3600
	}
}

// EnabledCores returns the core IDs the configuration enables.
func (c *SimConfig) EnabledCores() []int {
	n := c.Sockets * c.Spec.CoresPerSocket
	if c.Cores > 0 && c.Cores < n {
		n = c.Cores
	}
	cores := make([]int, n)
	for i := range cores {
		cores[i] = i
	}
	return cores
}

// EnabledSockets returns the socket IDs covered by the enabled cores.
func (c *SimConfig) EnabledSockets() []int {
	cores := c.EnabledCores()
	last := cores[len(cores)-1] / c.Spec.CoresPerSocket
	s := make([]int, last+1)
	for i := range s {
		s[i] = i
	}
	return s
}

// codeRegion is a materialized chunk of simulated code.
type codeRegion struct {
	id    uint32
	name  string
	base  uint64
	bytes int
}

// simRuntime holds the state of one simulated run.
type simRuntime struct {
	cfg  SimConfig
	topo *Topology

	kernel  *sim.Kernel
	sched   *sim.Scheduler
	machine *hw.Machine
	heap    *jvm.Heap
	meta    *jvm.Metaspace
	profile *profiler.Profile

	execs       []*simExecutor
	byOp        map[string][]*simExecutor
	sharedState map[string]uint64 // operator -> shared state base address

	hotRegions  []*codeRegion
	coldRegions []*codeRegion
	coldEvery   []int
	userRegions map[string]*codeRegion
	codeCursor  uint64
	regionCount uint32

	frameworkClasses []uint64

	rootCtr      int64
	sourceEvents int64
	sinkEvents   int64
	enabledCores []int

	// edgeTraffic accumulates delivered traffic per (producer, consumer)
	// executor pair. The kernel runs every executor on one goroutine, so a
	// plain map is race-free; extraction into Result.Edges sorts the keys.
	edgeTraffic map[[2]int]*EdgeStat

	// tr mirrors cfg.Trace for the executors' nil-guarded trace hooks.
	tr *trace.Tracer
}

// noteDelivery records one successfully enqueued message on the edge
// (from, to), with its data-tuple count and payload bytes.
func (rt *simRuntime) noteDelivery(from, to, tuples, bytes int) {
	key := [2]int{from, to}
	es := rt.edgeTraffic[key]
	if es == nil {
		es = &EdgeStat{From: from, To: to}
		rt.edgeTraffic[key] = es
	}
	es.Msgs++
	es.Tuples += int64(tuples)
	es.Bytes += int64(bytes)
}

// RunSim executes the topology on the simulated machine and returns both
// performance results and the full processor-time profile.
//
// The time.Now pair below measures real wall time spent simulating (for
// Result.WallSeconds, a harness-side metric); simulated time comes only
// from the kernel clock.
//
//dsplint:wallclock
func RunSim(t *Topology, cfg SimConfig) (*Result, error) {
	start := time.Now()
	cfg.fill()
	xt, err := BuildExecTopology(t, cfg.System)
	if err != nil {
		return nil, err
	}
	rt := &simRuntime{cfg: cfg, topo: xt}
	if err := rt.build(); err != nil {
		return nil, err
	}
	res, err := rt.run(t.Name)
	if err != nil {
		return nil, err
	}
	res.WallSeconds = time.Since(start).Seconds()
	return res, nil
}

func (rt *simRuntime) newRegion(name string, bytes int) *codeRegion {
	r := &codeRegion{
		id:    rt.regionCount,
		name:  name,
		base:  hw.CodeBase + rt.codeCursor,
		bytes: bytes,
	}
	rt.regionCount++
	// Pad between regions so they never share an instruction block.
	rt.codeCursor += uint64(bytes) + 4096
	return r
}

func (rt *simRuntime) build() error {
	cfg := &rt.cfg
	rt.kernel = sim.NewKernel()
	rt.sched = sim.NewScheduler(rt.kernel, cfg.Spec.TotalCores(), cfg.Spec.CoresPerSocket,
		sim.DefaultSchedulerConfig())
	rt.machine = hw.NewMachine(cfg.Spec)
	rt.heap = jvm.NewHeap(cfg.Spec.Sockets, cfg.GC)
	rt.meta = jvm.NewMetaspace(4096)
	rt.profile = profiler.New()
	rt.byOp = make(map[string][]*simExecutor)
	rt.sharedState = make(map[string]uint64)
	rt.edgeTraffic = make(map[[2]int]*EdgeStat)
	rt.userRegions = make(map[string]*codeRegion)
	rt.enabledCores = cfg.EnabledCores()

	for _, r := range cfg.System.HotRegions {
		rt.hotRegions = append(rt.hotRegions, rt.newRegion("sys:"+r.Name, r.Bytes))
	}
	for _, r := range cfg.System.ColdRegions {
		rt.coldRegions = append(rt.coldRegions, rt.newRegion("cold:"+r.Name, r.Bytes))
		rt.coldEvery = append(rt.coldEvery, r.Every)
	}
	for _, cls := range []string{"Tuple", "Fields", "Collector"} {
		rt.frameworkClasses = append(rt.frameworkClasses, rt.meta.ClassID(cls))
	}

	sockets := cfg.EnabledSockets()
	global := 0
	for _, n := range rt.topo.Nodes() {
		rt.userRegions[n.Name] = rt.newRegion("op:"+n.Name, n.Profile.CodeBytes)
		for i := 0; i < n.Parallelism; i++ {
			e := newSimExecutor(rt, n, i, global)
			// Input queue ring memory lives on the executor's socket if
			// placed, else on a deterministic enabled socket.
			qSocket := sockets[global%len(sockets)]
			if s, ok := cfg.Placement[global]; ok {
				qSocket = s
			}
			if !n.IsSource() {
				base := rt.heap.AllocTenured(qSocket, cfg.QueueCap*32)
				e.in = newSimQueue(cfg.QueueCap, base, rt.sched)
			}
			rt.execs = append(rt.execs, e)
			rt.byOp[n.Name] = append(rt.byOp[n.Name], e)
			global++
		}
	}
	// Wire edges and count producers.
	for _, n := range rt.topo.Nodes() {
		for _, ed := range rt.topo.Consumers(n.Name) {
			ss, _ := n.OutStream(ed.Sub.Stream)
			for _, pe := range rt.byOp[n.Name] {
				pe.edges[ed.Sub.Stream] = append(pe.edges[ed.Sub.Stream], &simEdge{
					router:    newEdgeRouter(ss, ed.Sub, ed.Consumer.Parallelism),
					stream:    ed.Sub.Stream,
					consumers: rt.byOp[ed.Consumer.Name],
					system:    ed.Consumer.System,
				})
			}
			for _, ce := range rt.byOp[ed.Consumer.Name] {
				ce.nProducers += n.Parallelism
			}
		}
	}
	// Spawn threads.
	for _, e := range rt.execs {
		affinity := rt.enabledCores
		if s, ok := cfg.Placement[e.global]; ok {
			affinity = intersect(rt.sched.CoresOnSockets([]int{s}), rt.enabledCores)
			if len(affinity) == 0 {
				return fmt.Errorf("engine: executor %d placed on disabled socket %d", e.global, s)
			}
		}
		name := fmt.Sprintf("%s[%d]", e.node.Name, e.index)
		e.thread = rt.sched.Spawn(name, e, affinity)
		e.thread.OnCoreChange = func(prev, next int) { e.curCore = next }
	}
	if tr := cfg.Trace; tr != nil {
		rt.tr = tr
		// Thread IDs are assigned in spawn order, which matches executor
		// global indices — span events and timeline tracks share tids.
		for _, e := range rt.execs {
			tr.NameThread(e.thread.ID, e.thread.Name)
		}
		rt.sched.OnSlice = func(t *sim.Thread, core int, start, dur sim.Cycles, d sim.Disposition) {
			tr.Slice(t.ID, t.Name, core, start, dur, d.String())
		}
		rt.armQueueSampler()
	}
	return nil
}

// armQueueSampler installs the queue-depth sampler as the kernel's
// after-event observer: at the first event boundary past each cadence
// interval it snapshots every input queue's depth. Observing at event
// boundaries (rather than via self-rescheduled events) keeps the tracer a
// pure observer — no extra heap events, so the kernel's seq ordering and
// final clock are byte-for-byte those of an untraced run.
func (rt *simRuntime) armQueueSampler() {
	cadence := rt.tr.QueueCadence()
	if cadence <= 0 {
		return
	}
	next := cadence
	rt.kernel.AfterEvent = func() {
		now := rt.kernel.Now()
		if now < next {
			return
		}
		for _, e := range rt.execs {
			if e.in != nil {
				rt.tr.QueueDepth(e.global, e.thread.Name, now, e.in.size())
			}
		}
		next = now + cadence
	}
}

func intersect(a, b []int) []int {
	in := map[int]bool{}
	for _, x := range b {
		in[x] = true
	}
	var out []int
	for _, x := range a {
		if in[x] {
			out = append(out, x)
		}
	}
	return out
}

func (rt *simRuntime) run(app string) (*Result, error) {
	if rt.tr != nil {
		rt.tr.Begin(app, rt.cfg.System.Name, rt.cfg.Spec.ClockHz)
	}
	rt.kernel.Run(rt.cfg.TimeLimit)
	if live := rt.sched.Live(); live > 0 {
		return nil, fmt.Errorf("engine: simulation stalled with %d live executors at %d cycles (deadlock or time limit)",
			live, rt.kernel.Now())
	}
	elapsed := rt.kernel.Now()
	clock := rt.cfg.Spec.ClockHz

	res := &Result{
		App:            app,
		System:         rt.cfg.System.Name,
		SourceEvents:   rt.sourceEvents,
		SinkEvents:     rt.sinkEvents,
		ElapsedSeconds: elapsed.Seconds(clock),
		Latency:        metrics.NewHistogram(1 << 16),
		Profile:        rt.profile,
		ChargedCycles:  rt.machine.ChargedCycles(),
		CPUUtil:        rt.sched.Utilization(rt.enabledCores),
		MemUtil:        rt.machine.DRAMUtilization(rt.cfg.EnabledSockets(), elapsed),
		QPIBytes:       rt.machine.QPIBytes(),
		MinorGCs:       rt.heap.MinorGCs(),
	}
	res.OperatorProfiles = map[string]*profiler.Profile{}
	for _, e := range rt.execs {
		rt.profile.Add(&e.costs)
		opProf := res.OperatorProfiles[e.node.Name]
		if opProf == nil {
			opProf = profiler.New()
			res.OperatorProfiles[e.node.Name] = opProf
		}
		opProf.Add(&e.costs)
		// Exact bucket-count merge: unlike re-observing Samples(), no
		// sampled observation (and in particular no tail mass) is lost.
		res.Latency.Merge(e.latency)
		stat := ExecStat{
			Op: e.node.Name, Index: e.index, Socket: e.stateSocket,
			Tuples: e.tuples, Invocations: e.invocations, Costs: e.costs,
		}
		if e.tuples > 0 {
			// "Process latency" per event, as Fig 10 reports it: the wall
			// time each event occupies at this executor, including the
			// waits imposed by time-sharing cores with other executors and
			// by remote memory stalls.
			span := e.lastTuple - e.firstTuple
			if span < e.procCycles {
				span = e.procCycles
			}
			stat.MeanTupleMs = sim.Cycles(int64(span) / e.tuples).Millis(clock)
		}
		res.Executors = append(res.Executors, stat)
		if a, ok := e.op.(*Acker); ok {
			res.AckerCompleted += a.Completed()
		}
	}
	rt.profile.GCCycles = rt.heap.GCCycles()
	res.GCShare = rt.profile.GCShare()
	res.Edges = sortedEdges(rt.edgeTraffic)
	if rt.tr != nil {
		// Fold the executors' Table II charges per operator, in topology
		// node order (deterministic). The totals reconcile exactly against
		// the machine ledger: every charge path adds to both an executor's
		// CostVec and Machine.charged, and GC pauses are in neither.
		ops := make([]trace.OpCost, 0, len(rt.topo.Nodes()))
		for _, n := range rt.topo.Nodes() {
			oc := trace.OpCost{Op: n.Name}
			for _, e := range rt.byOp[n.Name] {
				oc.Costs.AddVec(&e.costs)
			}
			ops = append(ops, oc)
		}
		rt.tr.Finish(res.ChargedCycles, ops)
	}
	return res, nil
}

// sortedEdges flattens the edge-traffic map in deterministic (From, To)
// order.
func sortedEdges(m map[[2]int]*EdgeStat) []EdgeStat {
	keys := make([][2]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	out := make([]EdgeStat, len(keys))
	for i, k := range keys {
		out[i] = *m[k]
	}
	return out
}

// sortedRoots returns map keys in deterministic order.
func sortedRoots(m map[int64]int64) []int64 {
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
