package engine

import (
	"testing"

	"streamscale/internal/sim"
)

func newTestQueue(cap int) (*simQueue, *sim.Scheduler, *sim.Kernel) {
	k := sim.NewKernel()
	s := sim.NewScheduler(k, 1, 1, sim.DefaultSchedulerConfig())
	return newSimQueue(cap, 0x1000, s), s, k
}

func TestSimQueueFIFO(t *testing.T) {
	q, _, _ := newTestQueue(4)
	for i := 0; i < 4; i++ {
		if _, ok := q.tryPush(Msg{FromGlobal: i}); !ok {
			t.Fatalf("push %d failed on non-full queue", i)
		}
	}
	if _, ok := q.tryPush(Msg{}); ok {
		t.Fatal("push succeeded on full queue")
	}
	for i := 0; i < 4; i++ {
		m, _, ok := q.tryPop()
		if !ok {
			t.Fatalf("pop %d failed on non-empty queue", i)
		}
		if m.FromGlobal != i {
			t.Fatalf("pop %d returned message %d: not FIFO", i, m.FromGlobal)
		}
	}
	if _, _, ok := q.tryPop(); ok {
		t.Fatal("pop succeeded on empty queue")
	}
}

func TestSimQueueWrapsRing(t *testing.T) {
	q, _, _ := newTestQueue(2)
	for round := 0; round < 10; round++ {
		q.tryPush(Msg{FromGlobal: round})
		m, _, _ := q.tryPop()
		if m.FromGlobal != round {
			t.Fatalf("round %d: got %d", round, m.FromGlobal)
		}
	}
	if q.size() != 0 {
		t.Fatalf("size = %d after balanced push/pop", q.size())
	}
}

func TestSimQueueSlotAddresses(t *testing.T) {
	q, _, _ := newTestQueue(4)
	s0, _ := q.tryPush(Msg{})
	s1, _ := q.tryPush(Msg{})
	if q.slotAddr(s0) == q.slotAddr(s1) {
		t.Fatal("consecutive slots share an address")
	}
	if q.slotAddr(s0) < 0x1000 {
		t.Fatal("slot address below ring base")
	}
}

// A push must wake a consumer registered via awaitData, and a pop must wake
// producers registered via awaitSpace.
func TestSimQueueWakeups(t *testing.T) {
	k := sim.NewKernel()
	s := sim.NewScheduler(k, 2, 2, sim.DefaultSchedulerConfig())
	q := newSimQueue(1, 0, s)

	woken := map[string]bool{}
	mk := func(name string) *sim.Thread {
		first := true
		return s.Spawn(name, stepFunc(func(quantum sim.Cycles) (sim.Cycles, sim.Disposition) {
			if first {
				first = false
				return 1, sim.Blocked
			}
			woken[name] = true
			return 1, sim.Done
		}), nil)
	}
	consumer := mk("consumer")
	producer := mk("producer")
	k.Run(0) // both block

	q.awaitData(consumer)
	q.tryPush(Msg{})
	k.Run(0)
	if !woken["consumer"] {
		t.Fatal("push did not wake the waiting consumer")
	}

	q.awaitSpace(producer)
	q.awaitSpace(producer) // duplicate registration must be idempotent
	q.tryPop()
	k.Run(0)
	if !woken["producer"] {
		t.Fatal("pop did not wake the waiting producer")
	}
}

func TestSystemProfilesSanity(t *testing.T) {
	storm, flink := Storm(), Flink()
	if !storm.AckEnabled || flink.AckEnabled {
		t.Fatal("acking: storm on, flink off")
	}
	if flink.CheckpointInterval == 0 {
		t.Fatal("flink must checkpoint")
	}
	if storm.HotBytes() <= flink.HotBytes() {
		t.Fatalf("storm platform (%d) must exceed flink (%d), per Fig 9",
			storm.HotBytes(), flink.HotBytes())
	}
	for _, p := range []SystemProfile{storm, flink} {
		if p.QueueCap <= 0 || p.UopsPerTuple <= 0 || p.MispredictRate <= 0 {
			t.Fatalf("%s profile has zero-valued knobs", p.Name)
		}
		for _, c := range p.ColdRegions {
			if c.Every <= 0 {
				t.Fatalf("%s cold region %s has no period", p.Name, c.Name)
			}
		}
	}
}

func TestGroupingConstructors(t *testing.T) {
	if Shuffle().Kind != GroupShuffle || Global().Kind != GroupGlobal || All().Kind != GroupAll {
		t.Fatal("grouping constructors mislabeled")
	}
	f := Fields("a", "b")
	if f.Kind != GroupFields || len(f.Fields) != 2 {
		t.Fatal("fields grouping malformed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty fields grouping did not panic")
		}
	}()
	Fields()
}

func TestGroupKindStrings(t *testing.T) {
	for k, want := range map[GroupKind]string{
		GroupShuffle: "shuffle", GroupFields: "fields",
		GroupGlobal: "global", GroupAll: "all",
	} {
		if k.String() != want {
			t.Fatalf("%v != %s", k, want)
		}
	}
}

// stepFunc adapts a function to sim.Runner for queue wake tests.
type stepFunc func(sim.Cycles) (sim.Cycles, sim.Disposition)

func (f stepFunc) Step(q sim.Cycles) (sim.Cycles, sim.Disposition) { return f(q) }
