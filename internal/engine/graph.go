package engine

// AckStream is the system stream carrying Storm-style XOR ack messages.
const AckStream = "__ack"

// AckerName is the name of the injected acker operator.
const AckerName = "__acker"

// BuildExecTopology derives the executable topology for a system profile:
// when acking is enabled it adds an __ack stream to every user node and an
// acker operator subscribed (fields-grouped by root ID) to all of them,
// exactly mirroring Storm's tuple-tracking plumbing. The input topology is
// not modified.
func BuildExecTopology(t *Topology, sys SystemProfile) (*Topology, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	out := NewTopology(t.Name)
	for _, n := range t.nodes {
		cp := *n
		cp.Streams = append([]StreamSpec(nil), n.Streams...)
		cp.Subs = append([]Subscription(nil), n.Subs...)
		out.add(&cp)
	}
	if sys.AckEnabled {
		acker := &Node{
			Name:        AckerName,
			Parallelism: sys.AckerExecutors,
			NewOp:       func() Operator { return NewAcker() },
			System:      true,
			Profile: WorkProfile{
				CodeBytes:             6 << 10,
				UopsPerTuple:          180,
				BranchesPerTuple:      6,
				StateBytes:            512 << 10, // pending-root XOR table
				StateAccessesPerTuple: 2,
			},
		}
		for _, n := range out.nodes {
			n.Streams = append(n.Streams, Stream(AckStream, "root", "xor"))
			acker.Subs = append(acker.Subs, Subscription{
				Operator: n.Name, Stream: AckStream, Group: Fields("root"),
			})
		}
		out.add(acker)
	}
	return out, nil
}

// Acker implements Storm's XOR tuple tracking: every executor reports, per
// root tuple, the XOR of the edge IDs it consumed and produced. When a
// root's running XOR returns to zero, the whole tuple tree has been fully
// processed.
type Acker struct {
	pending   map[int64]int64
	completed int64
}

// NewAcker returns an empty acker.
func NewAcker() *Acker { return &Acker{pending: make(map[int64]int64)} }

// Prepare implements Operator.
func (a *Acker) Prepare(Context) {}

// Process implements Operator: values are (root int64, xor int64). Ack
// tuples from the native runtime carry the pair in the Root and Edge
// fields instead (no boxed Values — the ack path is hot enough that two
// interface allocations per ack message are measurable); an empty Values
// slice selects that representation.
func (a *Acker) Process(_ Context, t Tuple) {
	root, x := t.Root, t.Edge
	if len(t.Values) >= 2 {
		root = t.Values[0].(int64)
		x = t.Values[1].(int64)
	}
	v := a.pending[root] ^ x
	if v == 0 {
		delete(a.pending, root)
		a.completed++
	} else {
		a.pending[root] = v
	}
}

// Completed returns the number of fully acked tuple trees.
func (a *Acker) Completed() int64 { return a.completed }

// Pending returns the number of tuple trees still being tracked.
func (a *Acker) Pending() int { return len(a.pending) }

// ExecutorRef identifies one executor in the execution graph.
type ExecutorRef struct {
	Global int // global executor index across the topology
	Op     string
	Index  int // index within the operator
}

// ExecGraph enumerates executors for a topology in deterministic order:
// nodes in insertion order, executor indices ascending.
func ExecGraph(t *Topology) []ExecutorRef {
	var refs []ExecutorRef
	g := 0
	for _, n := range t.nodes {
		for i := 0; i < n.Parallelism; i++ {
			refs = append(refs, ExecutorRef{Global: g, Op: n.Name, Index: i})
			g++
		}
	}
	return refs
}
