package engine

// Msg is the unit of transfer between executors: a batch of tuples from one
// producer executor on one stream, or an end-of-stream marker.
//
// On the native runtime Msg values travel by copy through SPSC rings
// (internal/ring) and the Batch slab is recycled: after the consumer
// processes a batch it clears the slab and returns it to the producer over
// a free-list ring, so steady-state transfer allocates nothing. A consumer
// must therefore never retain Batch (or a sub-slice of it) past the
// processBatch call that delivered it.
type Msg struct {
	// FromGlobal is the producing executor's global index.
	FromGlobal int
	// FromOp and Stream identify the producing operator and stream.
	FromOp string
	Stream string
	// Batch is nil for EOS messages.
	Batch []Tuple
	// EOS marks the producer executor's end of stream.
	EOS bool
	// Barrier carries a Flink-style checkpoint barrier ID (0 = none).
	Barrier int64
	// EnqueuedAt is the simulated time the message was pushed (sim runtime
	// only), for queue-sojourn accounting.
	EnqueuedAt int64
}
