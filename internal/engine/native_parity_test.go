package engine

import (
	"hash/fnv"
	"testing"
)

// TestNativeMatchesSimCounts runs the same word-count topology through the
// cycle-level simulator and the native runtime and checks they agree on
// every count the two runtimes share: source events, sink events, acked
// tuple trees, and per-operator input-tuple totals. This is the core
// parity contract behind the simulator-validation loop — if the runtimes
// diverge on *what* flows, comparing *how fast* it flows is meaningless.
func TestNativeMatchesSimCounts(t *testing.T) {
	// Topology shapes under test: the default word count, the same pipeline
	// under a non-default parallelism vector (the shape the joint search's
	// ParallelismOverride produces), and that scaled pipeline with its
	// chainable pair fused — parity must hold across parallelism and
	// chaining, not just the seed shape.
	shapes := []struct {
		name  string
		build func() *Topology
	}{
		{"default", func() *Topology {
			return wcTopology(100, func() Operator {
				return ProcessFunc(func(Context, Tuple) {})
			})
		}},
		{"scaled", func() *Topology {
			return wcScaledTopology(100, 2, 4, 3)
		}},
		{"scaled+chain", func() *Topology {
			chained, _, err := ChainTopology(wcScaledTopology(100, 2, 4, 3))
			if err != nil {
				t.Fatal(err)
			}
			return chained
		}},
	}
	for _, sys := range []SystemProfile{Storm(), Flink()} {
		for _, batch := range []int{1, 4} {
			for _, shape := range shapes {
				sim, err := RunSim(shape.build(), SimConfig{System: sys, BatchSize: batch, Seed: 11, Sockets: 1})
				if err != nil {
					t.Fatal(err)
				}
				nat, err := RunNative(shape.build(), NativeConfig{System: sys, BatchSize: batch, Seed: 11})
				if err != nil {
					t.Fatal(err)
				}
				name := sys.Name + "/batch=" + string(rune('0'+batch)) + "/" + shape.name
				if sim.SourceEvents != nat.SourceEvents {
					t.Errorf("%s: source events sim %d native %d", name, sim.SourceEvents, nat.SourceEvents)
				}
				if sim.SinkEvents != nat.SinkEvents {
					t.Errorf("%s: sink events sim %d native %d", name, sim.SinkEvents, nat.SinkEvents)
				}
				if sim.AckerCompleted != nat.AckerCompleted {
					t.Errorf("%s: acked roots sim %d native %d", name, sim.AckerCompleted, nat.AckerCompleted)
				}
				simOps := opTupleTotals(sim)
				natOps := opTupleTotals(nat)
				for op, want := range simOps {
					if op == AckerName {
						continue // acker batching differs; per-root completion is compared above
					}
					if got := natOps[op]; got != want {
						t.Errorf("%s: operator %q input tuples sim %d native %d", name, op, want, got)
					}
				}
			}
		}
	}
}

func opTupleTotals(r *Result) map[string]int64 {
	out := make(map[string]int64)
	for _, e := range r.Executors {
		out[e.Op] += e.Tuples
	}
	return out
}

// TestHashValueMatchesFNV pins the inlined FNV-1a loops in grouping.go to
// hash/fnv's reference implementation. Fields-grouping distributions (and
// therefore all simulated results) depend on these hashes bit-for-bit, so
// the allocation-free rewrite must not drift.
func TestHashValueMatchesFNV(t *testing.T) {
	refU64 := func(x uint64) uint64 {
		h := fnv.New64a()
		var b [8]byte
		for i := range b {
			b[i] = byte(x >> (8 * i))
		}
		h.Write(b[:])
		return h.Sum64()
	}
	refString := func(s string) uint64 {
		h := fnv.New64a()
		h.Write([]byte(s))
		return h.Sum64()
	}
	for _, x := range []uint64{0, 1, 42, 1 << 32, ^uint64(0), 0xdeadbeefcafe} {
		if got, want := fnvU64(x), refU64(x); got != want {
			t.Errorf("fnvU64(%#x) = %#x, want %#x", x, got, want)
		}
	}
	for _, s := range []string{"", "a", "the quick fox", "\x00\xff"} {
		if got, want := fnvString(s), refString(s); got != want {
			t.Errorf("fnvString(%q) = %#x, want %#x", s, got, want)
		}
	}
	// hashAckRoot must equal HashFields over the boxed representation the
	// simulator routes acks with, or native ack distribution would diverge.
	for _, root := range []int64{1, 77, 1 << 41, -9} {
		if got, want := hashAckRoot(root), HashFields([]Value{root}, []int{0}); got != want {
			t.Errorf("hashAckRoot(%d) = %#x, want HashFields %#x", root, got, want)
		}
	}
}

// TestLatencySampleEveryCapped: a huge sampling interval must clamp
// instead of overflowing the countdown arithmetic in observeSink.
func TestLatencySampleEveryCapped(t *testing.T) {
	cfg := NativeConfig{System: Flink(), LatencySampleEvery: int(^uint(0) >> 1)}
	cfg.fill()
	if cfg.LatencySampleEvery != maxLatencySampleEvery {
		t.Fatalf("LatencySampleEvery = %d, want clamp to %d", cfg.LatencySampleEvery, maxLatencySampleEvery)
	}
	topo := wcTopology(50, func() Operator { return ProcessFunc(func(Context, Tuple) {}) })
	res, err := RunNative(topo, NativeConfig{
		System: Flink(), BatchSize: 2, Seed: 1,
		LatencySampleEvery: int(^uint(0) >> 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SinkEvents == 0 {
		t.Fatal("no sink events")
	}
}

// TestNativeMatchesSimLatencySampling extends the parity contract to the
// latency sampling cadence: both runtimes use the same per-executor
// countdown (positions n, 2n, ... of each sink executor's tuple stream),
// so for the same explicit LatencySampleEvery they must observe the same
// number of latency samples. Both test shapes run a single sink executor,
// making the per-executor streams directly comparable.
func TestNativeMatchesSimLatencySampling(t *testing.T) {
	for _, sys := range []SystemProfile{Storm(), Flink()} {
		for _, batch := range []int{1, 4} {
			for _, every := range []int{1, 4} {
				topo := func() *Topology {
					return wcTopology(100, func() Operator {
						return ProcessFunc(func(Context, Tuple) {})
					})
				}
				sim, err := RunSim(topo(), SimConfig{System: sys, BatchSize: batch, Seed: 11, Sockets: 1,
					LatencySampleEvery: every})
				if err != nil {
					t.Fatal(err)
				}
				nat, err := RunNative(topo(), NativeConfig{System: sys, BatchSize: batch, Seed: 11,
					LatencySampleEvery: every})
				if err != nil {
					t.Fatal(err)
				}
				name := sys.Name + "/batch=" + string(rune('0'+batch))
				if sim.Latency.Count() == 0 {
					t.Errorf("%s every=%d: sim observed no latency samples", name, every)
				}
				if sim.Latency.Count() != nat.Latency.Count() {
					t.Errorf("%s every=%d: latency samples sim %d native %d (cadences misaligned)",
						name, every, sim.Latency.Count(), nat.Latency.Count())
				}
				// The countdown observes positions n, 2n, ...: every sink
				// tuple at n=1, floor(events/n) on the single sink executor.
				want := sim.SinkEvents / int64(every)
				if got := sim.Latency.Count(); got != want {
					t.Errorf("%s every=%d: %d samples from %d sink events, want %d",
						name, every, got, sim.SinkEvents, want)
				}
			}
		}
	}
}
