// Package hw models the processor and memory system of a multi-socket
// multi-core machine: per-core L1I/L1D/L2 caches and TLBs, a decoded-µop
// cache, per-socket last-level caches, per-socket DRAM channels, and QPI
// links between sockets. Every cycle the model charges is attributed to one
// of the measurement components of Table II in the paper, so an execution
// can be broken down exactly the way the paper's VTune methodology does.
package hw

import "streamscale/internal/sim"

// Bucket identifies one measurement component from Table II of the paper.
type Bucket int

const (
	// TC is effective computation time (issued µops that retire).
	TC Bucket = iota
	// TBr is branch misprediction stall time.
	TBr
	// FeITLB is front-end stall time due to ITLB misses.
	FeITLB
	// FeL1I is front-end stall time due to L1 instruction cache misses.
	FeL1I
	// FeILD is instruction length decoder (and IQ-full) stall time.
	FeILD
	// FeIDQ is instruction decode queue stall time (dominated by
	// decoded-µop-cache misses and switch penalties).
	FeIDQ
	// BeDTLB is back-end stall time due to DTLB misses.
	BeDTLB
	// BeL1D is stall time due to L1 data cache misses that hit L2.
	BeL1D
	// BeL2 is stall time due to L2 misses that hit the LLC.
	BeL2
	// BeLLCLocal is stall time due to LLC misses served by local memory.
	BeLLCLocal
	// BeLLCRemote is stall time due to LLC misses served by another
	// socket's memory across QPI.
	BeLLCRemote

	// NumBuckets is the number of measurement components.
	NumBuckets
)

var bucketNames = [NumBuckets]string{
	"computation", "branch-misprediction",
	"itlb", "l1i-miss", "ild", "idq",
	"dtlb", "l1d-miss", "l2-miss", "llc-miss-local", "llc-miss-remote",
}

func (b Bucket) String() string {
	if b >= 0 && b < NumBuckets {
		return bucketNames[b]
	}
	return "bucket(?)"
}

// CostVec accumulates cycles per measurement component.
type CostVec [NumBuckets]sim.Cycles

// Add charges c cycles to bucket b.
func (v *CostVec) Add(b Bucket, c sim.Cycles) { v[b] += c }

// AddVec accumulates another cost vector into v.
func (v *CostVec) AddVec(o *CostVec) {
	for i := range v {
		v[i] += o[i]
	}
}

// Total returns the sum over all buckets.
func (v *CostVec) Total() sim.Cycles {
	var t sim.Cycles
	for _, c := range v {
		t += c
	}
	return t
}

// FrontEnd returns total front-end stall time (TFe).
func (v *CostVec) FrontEnd() sim.Cycles { return v.GroupTotal(GroupFrontEnd) }

// BackEnd returns total back-end stall time (TBe).
func (v *CostVec) BackEnd() sim.Cycles { return v.GroupTotal(GroupBackEnd) }

// GroupTotal returns the sum over the buckets belonging to group g.
func (v *CostVec) GroupTotal(g BucketGroup) sim.Cycles {
	var t sim.Cycles
	for b := Bucket(0); b < NumBuckets; b++ {
		if b.Group() == g {
			t += v[b]
		}
	}
	return t
}

// Stalls returns all non-computation time.
func (v *CostVec) Stalls() sim.Cycles { return v.Total() - v[TC] }

// BucketGroup is one of the paper's four top-level execution-time
// components (Figure 7): effective computation, bad speculation, and
// front-end and back-end stalls.
type BucketGroup int

const (
	GroupComputation BucketGroup = iota
	GroupBadSpec
	GroupFrontEnd
	GroupBackEnd
	// NumGroups is the number of top-level components.
	NumGroups
)

var groupNames = [NumGroups]string{"computation", "bad-speculation", "front-end", "back-end"}

func (g BucketGroup) String() string {
	if g >= 0 && g < NumGroups {
		return groupNames[g]
	}
	return "group(?)"
}

// Group returns the top-level component b belongs to. Every bucket belongs
// to exactly one group, so the groups partition total accounted time; the
// switch must stay exhaustive (dsplint's bucketswitch analyzer rejects a
// new bucket that is not classified here), and an out-of-range value is a
// caller bug worth a panic rather than a silent misattribution.
func (b Bucket) Group() BucketGroup {
	switch b {
	case TC:
		return GroupComputation
	case TBr:
		return GroupBadSpec
	case FeITLB, FeL1I, FeILD, FeIDQ:
		return GroupFrontEnd
	case BeDTLB, BeL1D, BeL2, BeLLCLocal, BeLLCRemote:
		return GroupBackEnd
	default:
		panic("hw: Group of out-of-range bucket " + b.String())
	}
}
