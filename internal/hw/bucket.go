// Package hw models the processor and memory system of a multi-socket
// multi-core machine: per-core L1I/L1D/L2 caches and TLBs, a decoded-µop
// cache, per-socket last-level caches, per-socket DRAM channels, and QPI
// links between sockets. Every cycle the model charges is attributed to one
// of the measurement components of Table II in the paper, so an execution
// can be broken down exactly the way the paper's VTune methodology does.
package hw

import "streamscale/internal/sim"

// Bucket identifies one measurement component from Table II of the paper.
type Bucket int

const (
	// TC is effective computation time (issued µops that retire).
	TC Bucket = iota
	// TBr is branch misprediction stall time.
	TBr
	// FeITLB is front-end stall time due to ITLB misses.
	FeITLB
	// FeL1I is front-end stall time due to L1 instruction cache misses.
	FeL1I
	// FeILD is instruction length decoder (and IQ-full) stall time.
	FeILD
	// FeIDQ is instruction decode queue stall time (dominated by
	// decoded-µop-cache misses and switch penalties).
	FeIDQ
	// BeDTLB is back-end stall time due to DTLB misses.
	BeDTLB
	// BeL1D is stall time due to L1 data cache misses that hit L2.
	BeL1D
	// BeL2 is stall time due to L2 misses that hit the LLC.
	BeL2
	// BeLLCLocal is stall time due to LLC misses served by local memory.
	BeLLCLocal
	// BeLLCRemote is stall time due to LLC misses served by another
	// socket's memory across QPI.
	BeLLCRemote

	// NumBuckets is the number of measurement components.
	NumBuckets
)

var bucketNames = [NumBuckets]string{
	"computation", "branch-misprediction",
	"itlb", "l1i-miss", "ild", "idq",
	"dtlb", "l1d-miss", "l2-miss", "llc-miss-local", "llc-miss-remote",
}

func (b Bucket) String() string {
	if b >= 0 && b < NumBuckets {
		return bucketNames[b]
	}
	return "bucket(?)"
}

// CostVec accumulates cycles per measurement component.
type CostVec [NumBuckets]sim.Cycles

// Add charges c cycles to bucket b.
func (v *CostVec) Add(b Bucket, c sim.Cycles) { v[b] += c }

// AddVec accumulates another cost vector into v.
func (v *CostVec) AddVec(o *CostVec) {
	for i := range v {
		v[i] += o[i]
	}
}

// Total returns the sum over all buckets.
func (v *CostVec) Total() sim.Cycles {
	var t sim.Cycles
	for _, c := range v {
		t += c
	}
	return t
}

// FrontEnd returns total front-end stall time (TFe).
func (v *CostVec) FrontEnd() sim.Cycles {
	return v[FeITLB] + v[FeL1I] + v[FeILD] + v[FeIDQ]
}

// BackEnd returns total back-end stall time (TBe).
func (v *CostVec) BackEnd() sim.Cycles {
	return v[BeDTLB] + v[BeL1D] + v[BeL2] + v[BeLLCLocal] + v[BeLLCRemote]
}

// Stalls returns all non-computation time.
func (v *CostVec) Stalls() sim.Cycles { return v.Total() - v[TC] }
