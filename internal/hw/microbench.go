package hw

import "streamscale/internal/sim"

// Memory-hierarchy microbenchmarks over the simulated machine — the
// model's equivalent of lmbench: measure effective load-to-use latency at
// each working-set size and the achievable bandwidths, to validate the
// machine against its spec (and against the real Sandy Bridge numbers the
// spec encodes).

// LatencyPoint is one working-set measurement.
type LatencyPoint struct {
	WorkingSetBytes int
	// Cycles is the mean charged cycles per 64 B line access once warm.
	Cycles float64
	// Level names the hierarchy level the working set lands in.
	Level string
}

// MeasureLatency walks working sets from 16 KB to maxBytes on one core,
// local socket, and reports warm per-access costs.
func MeasureLatency(m *Machine, maxBytes int) []LatencyPoint {
	var out []LatencyPoint
	for ws := 16 << 10; ws <= maxBytes; ws *= 2 {
		out = append(out, LatencyPoint{
			WorkingSetBytes: ws,
			Cycles:          strideCost(m, 0, DataAddr(0, 1<<30), ws),
			Level:           levelFor(&m.Spec, ws),
		})
	}
	return out
}

// MeasureRemoteLatency is MeasureLatency against another socket's memory.
func MeasureRemoteLatency(m *Machine, maxBytes int) []LatencyPoint {
	var out []LatencyPoint
	for ws := 16 << 10; ws <= maxBytes; ws *= 2 {
		out = append(out, LatencyPoint{
			WorkingSetBytes: ws,
			Cycles:          strideCost(m, 0, DataAddr(1, 1<<30), ws),
			Level:           levelFor(&m.Spec, ws) + "/remote",
		})
	}
	return out
}

// strideCost strides a working set twice (warm-up pass, measured pass) and
// returns the measured mean cycles per line.
func strideCost(m *Machine, core int, base uint64, ws int) float64 {
	var sink CostVec
	now := sim.Cycles(0)
	pass := func(charge bool) float64 {
		var total sim.Cycles
		for off := 0; off < ws; off += LineBytes {
			c := m.DataAccess(core, base+uint64(off), 8, now, &sink)
			now += c + 4
			if charge {
				total += c
			}
		}
		return float64(total) / float64(ws/LineBytes)
	}
	pass(false)
	return pass(true)
}

func levelFor(spec *MachineSpec, ws int) string {
	switch {
	case ws <= spec.L1D.CapacityBytes:
		return "L1D"
	case ws <= spec.L2.CapacityBytes:
		return "L2"
	case ws <= spec.LLC.CapacityBytes:
		return "LLC"
	}
	return "DRAM"
}

// BandwidthPoint is one streaming-bandwidth measurement.
type BandwidthPoint struct {
	// Streams is the number of concurrent streaming cores.
	Streams int
	// GBps is the aggregate achieved bandwidth in GB/s.
	GBps float64
	// Remote streams cross QPI.
	Remote bool
}

// MeasureBandwidth streams bytes from n cores of socket 0 (locally, or from
// socket 1's memory when remote) and reports aggregate throughput.
func MeasureBandwidth(m *Machine, streams int, remote bool) BandwidthPoint {
	const perStream = 64 << 20
	home := 0
	if remote {
		home = 1
	}
	var worst sim.Cycles
	for c := 0; c < streams; c++ {
		var sink CostVec
		base := DataAddr(home, uint64(2<<30+c*perStream*2))
		cost := m.StreamAccess(c, base, perStream, 0, &sink)
		if cost > worst {
			worst = cost
		}
	}
	seconds := worst.Seconds(m.Spec.ClockHz)
	total := float64(perStream*streams) / 1e9
	return BandwidthPoint{Streams: streams, GBps: total / seconds, Remote: remote}
}
