package hw

import (
	"testing"
	"testing/quick"

	"streamscale/internal/sim"
)

// The version-tag coherence proxy: a write makes copies cached by other
// cores stale, the writer's own copy upgrades in place, and a subsequent
// read by another core is served by a dirty-copy forward rather than home
// memory.
func TestCoherenceWriterRewriteHitsOwnCache(t *testing.T) {
	m := NewMachine(testSpec())
	addr := DataAddr(0, 4096)
	var v CostVec
	m.DataWrite(0, addr, 64, 0, &v) // cold
	cost := m.DataWrite(0, addr, 64, 100, &v)
	if cost != 0 {
		t.Fatalf("rewrite of own cached line cost %d, want 0 (M-state hit)", cost)
	}
}

func TestCoherenceRemoteCopyGoesStale(t *testing.T) {
	m := NewMachine(testSpec())
	addr := DataAddr(0, 4096)
	var v CostVec
	// Core 0 writes, core 9 (socket 1) reads and caches, core 0 rewrites.
	m.DataWrite(0, addr, 64, 0, &v)
	m.DataAccess(9, addr, 64, 100, &v)
	if c := m.DataAccess(9, addr, 64, 200, &v); c != 0 {
		t.Fatalf("re-read of cached copy cost %d, want 0", c)
	}
	m.DataWrite(0, addr, 64, 300, &v)
	var after CostVec
	if c := m.DataAccess(9, addr, 64, 400, &after); c == 0 {
		t.Fatal("remote reader hit a stale copy after the writer's update")
	}
	if after[BeLLCRemote] == 0 {
		t.Fatalf("invalidated read not served remotely: %+v", after)
	}
}

func TestCoherenceDirtyForwardSameSocket(t *testing.T) {
	m := NewMachine(testSpec())
	addr := DataAddr(0, 1<<20)
	var v CostVec
	m.DataWrite(0, addr, 64, 0, &v) // dirty in core 0's private caches
	var read CostVec
	m.DataAccess(3, addr, 64, 100, &read) // same socket, different core
	if read[BeLLCLocal] != 0 {
		t.Fatalf("same-socket dirty read charged to DRAM: %+v", read)
	}
	if read[BeL2] == 0 {
		t.Fatalf("same-socket dirty read not served as on-die forward: %+v", read)
	}
}

func TestCoherenceDirtyForwardCrossSocket(t *testing.T) {
	m := NewMachine(testSpec())
	// Line homed on socket 1, written by a core on socket 1, read from
	// socket 0: should be a QPI snoop forward, charged remote, even though
	// the READER's home calculation would call socket-1 memory "remote"
	// anyway; the interesting case is home == reader's socket:
	addr := DataAddr(0, 1<<20) // homed on socket 0
	var v CostVec
	m.DataWrite(8, addr, 64, 0, &v) // written by socket 1
	var read CostVec
	m.DataAccess(0, addr, 64, 100, &read) // reader on the home socket
	if read[BeLLCRemote] == 0 {
		t.Fatalf("cross-socket dirty line not fetched over QPI: %+v", read)
	}
	if read[BeLLCLocal] != 0 {
		t.Fatalf("cross-socket dirty line charged to local DRAM: %+v", read)
	}
}

func TestCoherenceNeverWrittenReadsUseHome(t *testing.T) {
	m := NewMachine(testSpec())
	var local, remote CostVec
	m.DataAccess(0, DataAddr(0, 2<<20), 64, 0, &local)
	m.DataAccess(0, DataAddr(2, 2<<20), 64, 0, &remote)
	if local[BeLLCLocal] == 0 || local[BeLLCRemote] != 0 {
		t.Fatalf("unwritten local line misattributed: %+v", local)
	}
	if remote[BeLLCRemote] == 0 || remote[BeLLCLocal] != 0 {
		t.Fatalf("unwritten remote line misattributed: %+v", remote)
	}
}

// Property: any interleaving of writes and reads from two cores never
// lets a reader observe a free (zero-cost) access immediately after the
// other core's write to the same line.
func TestCoherenceProperty(t *testing.T) {
	f := func(ops []bool) bool {
		m := NewMachine(testSpec())
		addr := DataAddr(0, 8192)
		var v CostVec
		now := int64(0)
		lastWriter := -1
		for _, isWrite := range ops {
			now += 1000
			if isWrite {
				m.DataWrite(0, addr, 64, simc(now), &v)
				lastWriter = 0
				continue
			}
			cost := m.DataAccess(9, addr, 64, simc(now), &v)
			if lastWriter == 0 && cost == 0 {
				return false // reader skipped the other core's update
			}
			lastWriter = -1 // reader now holds a fresh copy
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteAccessVUpgradeSemantics(t *testing.T) {
	c := NewCache(1, 2)
	if c.WriteAccessV(5, 1) {
		t.Fatal("cold write reported hit")
	}
	if !c.WriteAccessV(5, 2) {
		t.Fatal("ver-1 upgrade write missed")
	}
	if !c.AccessV(5, 2) {
		t.Fatal("read at current version missed after upgrade")
	}
	if c.AccessV(5, 7) {
		t.Fatal("read at future version hit a stale copy")
	}
}

// simc converts a test timestamp into sim cycles.
func simc(n int64) sim.Cycles { return sim.Cycles(n) }
