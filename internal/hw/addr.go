package hw

// Simulated address space layout.
//
// Data addresses carry their NUMA home socket in bits 44..46 with bit 47
// set; code addresses live above bit 48. The two ranges never collide, so
// code and data can share cache tag space safely.
const (
	dataBit    = uint64(1) << 47
	sockShift  = 44
	sockMask   = uint64(7) << sockShift
	offsetMask = (uint64(1) << sockShift) - 1

	// CodeBase is the start of the simulated code address range.
	CodeBase = uint64(1) << 48

	// LineBytes is the data cache line size.
	LineBytes = 64
)

// DataAddr builds a data address homed on the given socket.
func DataAddr(socket int, offset uint64) uint64 {
	return dataBit | uint64(socket)<<sockShift | (offset & offsetMask)
}

// HomeSocket returns the NUMA home of a data address.
func HomeSocket(addr uint64) int {
	return int((addr & sockMask) >> sockShift)
}

// IsData reports whether addr is in the data range.
func IsData(addr uint64) bool { return addr&dataBit != 0 && addr < CodeBase }

// Offset returns the within-socket offset of a data address.
func Offset(addr uint64) uint64 { return addr & offsetMask }
