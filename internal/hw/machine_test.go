package hw

import (
	"testing"

	"streamscale/internal/sim"
)

func testSpec() MachineSpec { return TableIII() }

func TestAddrRoundTrip(t *testing.T) {
	for sk := 0; sk < 4; sk++ {
		a := DataAddr(sk, 0xdeadbe)
		if !IsData(a) {
			t.Fatalf("DataAddr(%d) not recognized as data", sk)
		}
		if HomeSocket(a) != sk {
			t.Fatalf("home = %d, want %d", HomeSocket(a), sk)
		}
		if Offset(a) != 0xdeadbe {
			t.Fatalf("offset = %#x, want 0xdeadbe", Offset(a))
		}
	}
	if IsData(CodeBase + 100) {
		t.Fatal("code address classified as data")
	}
}

func TestDataAccessColdThenWarm(t *testing.T) {
	m := NewMachine(testSpec())
	addr := DataAddr(0, 4096)
	var cold, warm CostVec
	c1 := m.DataAccess(0, addr, 64, 0, &cold)
	c2 := m.DataAccess(0, addr, 64, c1, &warm)
	if c1 <= 0 {
		t.Fatalf("cold access cost = %d, want > 0", c1)
	}
	if c2 != 0 {
		t.Fatalf("warm access cost = %d, want 0 (L1 hit, TLB hit)", c2)
	}
	if cold[BeLLCLocal] == 0 {
		t.Fatal("cold local access did not charge LLC-miss-local")
	}
	if cold[BeLLCRemote] != 0 {
		t.Fatal("local access charged remote bucket")
	}
}

func TestDataAccessRemoteCostsMore(t *testing.T) {
	// Same access pattern from core 0 (socket 0): remote-homed data must
	// cost strictly more than local-homed data.
	mLocal := NewMachine(testSpec())
	mRemote := NewMachine(testSpec())
	var a, b CostVec
	local := mLocal.DataAccess(0, DataAddr(0, 0), 64, 0, &a)
	remote := mRemote.DataAccess(0, DataAddr(2, 0), 64, 0, &b)
	if remote <= local {
		t.Fatalf("remote cost %d <= local cost %d", remote, local)
	}
	if b[BeLLCRemote] == 0 {
		t.Fatal("remote access did not charge the remote bucket")
	}
	if mRemote.QPIBytes() == 0 {
		t.Fatal("remote access moved no QPI bytes")
	}
	if mLocal.QPIBytes() != 0 {
		t.Fatal("local access moved QPI bytes")
	}
}

func TestDataAccessSpansLines(t *testing.T) {
	m := NewMachine(testSpec())
	var v CostVec
	// 256 bytes starting at a line boundary: 4 lines; all cold.
	m.DataAccess(0, DataAddr(0, 0), 256, 0, &v)
	if got := m.DRAMBytes(0); got != 4*LineBytes {
		t.Fatalf("DRAM bytes = %d, want %d", got, 4*LineBytes)
	}
	// Unaligned 2-byte access crossing a line boundary touches 2 lines.
	m2 := NewMachine(testSpec())
	m2.DataAccess(0, DataAddr(0, 63), 2, 0, &v)
	if got := m2.DRAMBytes(0); got != 2*LineBytes {
		t.Fatalf("unaligned DRAM bytes = %d, want %d", got, 2*LineBytes)
	}
}

func TestDataAccessHierarchyBuckets(t *testing.T) {
	spec := testSpec()
	m := NewMachine(spec)
	addr := DataAddr(0, 1<<20)

	var v1 CostVec
	m.DataAccess(0, addr, 64, 0, &v1) // cold: DRAM

	// Evict from L1 by streaming > 32 KB of other lines, keeping L2.
	var junk CostVec
	for off := uint64(0); off < 64<<10; off += 64 {
		m.DataAccess(0, DataAddr(0, 2<<20+off), 64, 0, &junk)
	}
	var v2 CostVec
	m.DataAccess(0, addr, 64, 0, &v2)
	if v2[BeL1D] == 0 {
		t.Fatalf("expected L2 hit after L1 eviction, got %+v", v2)
	}
	if v2[BeLLCLocal] != 0 {
		t.Fatalf("re-access went to DRAM, expected L2: %+v", v2)
	}
}

func TestFetchCodeWarmPathIsFree(t *testing.T) {
	m := NewMachine(testSpec())
	var cold, warm CostVec
	c1 := m.FetchCode(0, CodeBase, 4096, 0, &cold)
	c2 := m.FetchCode(0, CodeBase, 4096, c1, &warm)
	if c1 <= 0 {
		t.Fatal("cold code fetch was free")
	}
	if cold[FeL1I] == 0 {
		t.Fatal("cold fetch did not charge L1I misses")
	}
	// 4 KB fits in both L1I and the µop cache: fully free when warm.
	if c2 != 0 {
		t.Fatalf("warm fetch of cached code cost %d, want 0", c2)
	}
}

func TestFetchCodeUopCacheTooSmall(t *testing.T) {
	spec := testSpec()
	m := NewMachine(spec)
	size := 16 << 10 // fits L1I (32 KB) but not the 6 KB µop cache
	var cold CostVec
	m.FetchCode(0, CodeBase, size, 0, &cold)
	var warm CostVec
	c := m.FetchCode(0, CodeBase, size, 0, &warm)
	if c == 0 {
		t.Fatal("warm fetch of µop-cache-exceeding code was free")
	}
	if warm[FeL1I] != 0 {
		t.Fatalf("16 KB region missed L1I when warm: %+v", warm)
	}
	if warm[FeILD] == 0 || warm[FeIDQ] == 0 {
		t.Fatalf("legacy decode not charged: %+v", warm)
	}
}

func TestFetchCodeThrashBetweenFunctions(t *testing.T) {
	// Two 24 KB functions do not fit a 32 KB L1I together: alternating
	// invocations must keep missing (the paper's L1I thrashing).
	m := NewMachine(testSpec())
	a, b := CodeBase, CodeBase+uint64(1<<20)
	var v CostVec
	m.FetchCode(0, a, 24<<10, 0, &v)
	m.FetchCode(0, b, 24<<10, 0, &v)
	var again CostVec
	m.FetchCode(0, a, 24<<10, 0, &again)
	if again[FeL1I] == 0 {
		t.Fatal("no L1I misses when re-fetching thrashed code")
	}
}

func TestComputeCharges(t *testing.T) {
	m := NewMachine(testSpec())
	var v CostVec
	c := m.Compute(1000, 2, &v)
	if v[TC] == 0 || v[TBr] != 2*m.Spec.MispredictPenalty {
		t.Fatalf("compute charge wrong: %+v", v)
	}
	if c != v[TC]+v[TBr] {
		t.Fatalf("returned %d, want %d", c, v[TC]+v[TBr])
	}
	if m.Compute(0, 0, &v) != 0 {
		t.Fatal("zero uops charged cycles")
	}
}

func TestNoteInvocationFootprint(t *testing.T) {
	m := NewMachine(testSpec())
	const fnA, fnB, fnC = 1, 2, 3
	if got := m.NoteInvocation(0, fnA, 1000); got != -1 {
		t.Fatalf("first invocation footprint = %d, want -1", got)
	}
	m.NoteInvocation(0, fnB, 500)
	m.NoteInvocation(0, fnC, 300)
	if got := m.NoteInvocation(0, fnA, 1000); got != 800 {
		t.Fatalf("footprint = %d, want 800 (B+C executed in between)", got)
	}
	// Immediately repeated invocation: nothing else in between.
	if got := m.NoteInvocation(0, fnA, 1000); got != 0 {
		t.Fatalf("back-to-back footprint = %d, want 0", got)
	}
	// Footprints are per-core.
	if got := m.NoteInvocation(1, fnA, 1000); got != -1 {
		t.Fatalf("other-core first invocation = %d, want -1", got)
	}
}

func TestChannelQueueing(t *testing.T) {
	ch := NewChannelWindow(1.0, 10) // 1 byte/cycle, 10-byte windows
	// 25 bytes at t=0: windows 0,1 fill, 5 bytes spill to window 2.
	if w := ch.Transfer(0, 25); w != 20 {
		t.Fatalf("saturating transfer waited %d, want 20", w)
	}
	// 10 more at t=5: 5 fit window 2, 5 spill to window 3 -> wait 30-5.
	if w := ch.Transfer(5, 10); w != 25 {
		t.Fatalf("queued transfer waited %d, want 25", w)
	}
	// Far in the future the channel is idle again.
	if w := ch.Transfer(200, 10); w != 0 {
		t.Fatalf("idle transfer waited %d, want 0", w)
	}
	if ch.Bytes() != 45 {
		t.Fatalf("bytes = %d, want 45", ch.Bytes())
	}
	if got := ch.Utilization(90); got != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", got)
	}
}

func TestChannelOrderInsensitive(t *testing.T) {
	// Two requests in overlapping windows must see the same total wait
	// regardless of arrival order (the discrete-event engine delivers
	// overlapping execution windows out of order).
	run := func(order [][2]int) sim.Cycles {
		ch := NewChannelWindow(1.0, 10)
		var total sim.Cycles
		for _, r := range order {
			total += ch.Transfer(sim.Cycles(r[0]), r[1])
		}
		return total
	}
	a := run([][2]int{{0, 15}, {3, 15}})
	b := run([][2]int{{3, 15}, {0, 15}})
	if a != b {
		t.Fatalf("order-dependent waits: %d vs %d", a, b)
	}
}

func TestChannelLightLoadNeverWaits(t *testing.T) {
	ch := NewChannel(21.3) // DRAM-like
	for i := 0; i < 1000; i++ {
		if w := ch.Transfer(sim.Cycles(i*100), 64); w != 0 {
			t.Fatalf("light load waited %d at access %d", w, i)
		}
	}
}

func TestDRAMUtilizationSelectsSockets(t *testing.T) {
	m := NewMachine(testSpec())
	var v CostVec
	for off := uint64(0); off < 1<<20; off += 64 {
		m.DataAccess(0, DataAddr(0, off), 64, sim.Cycles(off), &v)
	}
	if m.DRAMUtilization([]int{0}, 1<<20) <= 0 {
		t.Fatal("socket 0 utilization is zero after heavy traffic")
	}
	if m.DRAMUtilization([]int{1}, 1<<20) != 0 {
		t.Fatal("socket 1 shows utilization without traffic")
	}
}
