package hw

// lineVerTable maps a data line number to its coherence state. It is a
// linear-probing open-addressing hash table specialized for the simulator's
// hottest map: dataAccess consults it once per simulated line touched, so
// the generic map's hashing and bucket walk showed up as several percent of
// total run time. Entries are only ever inserted (a line's version starts
// at 1 on its first write and never returns to 0), so a slot is free iff
// its ver is 0 and no tombstones are needed. Lookups of unwritten lines
// return the zero lineState, matching the map's missing-key behaviour.
type lineVerTable struct {
	slots []lineSlot
	count int
	shift uint // 64 - log2(len(slots))
}

type lineSlot struct {
	key    uint64
	ver    uint32
	writer int8
}

const lineVerInitialSlots = 1 << 12

func newLineVerTable() *lineVerTable {
	return &lineVerTable{
		slots: make([]lineSlot, lineVerInitialSlots),
		shift: 64 - 12,
	}
}

// idx is a Fibonacci-multiplicative hash; line numbers are dense-ish per
// region but differ in high bits across regions, and the multiply mixes
// both into the top bits the shift keeps.
//
//dsp:hotpath
func (t *lineVerTable) idx(key uint64) int {
	return int((key * 0x9E3779B97F4A7C15) >> t.shift)
}

//dsp:hotpath
func (t *lineVerTable) get(key uint64) lineState {
	mask := len(t.slots) - 1
	for i := t.idx(key); ; i = (i + 1) & mask {
		s := &t.slots[i]
		if s.ver == 0 {
			return lineState{}
		}
		if s.key == key {
			return lineState{ver: s.ver, writer: s.writer}
		}
	}
}

// put inserts or updates a line's state. Amortized growth lives in the
// cold grow helper so the hot body itself never allocates.
//
//dsp:hotpath
func (t *lineVerTable) put(key uint64, st lineState) {
	mask := len(t.slots) - 1
	for i := t.idx(key); ; i = (i + 1) & mask {
		s := &t.slots[i]
		if s.key == key && s.ver != 0 {
			s.ver = st.ver
			s.writer = st.writer
			return
		}
		if s.ver == 0 {
			s.key = key
			s.ver = st.ver
			s.writer = st.writer
			t.count++
			if t.count*4 > len(t.slots)*3 {
				t.grow()
			}
			return
		}
	}
}

func (t *lineVerTable) grow() {
	old := t.slots
	t.slots = make([]lineSlot, 2*len(old))
	t.shift--
	mask := len(t.slots) - 1
	for _, s := range old {
		if s.ver == 0 {
			continue
		}
		i := t.idx(s.key)
		for t.slots[i].ver != 0 {
			i = (i + 1) & mask
		}
		t.slots[i] = s
	}
}
