package hw

import (
	"streamscale/internal/sim"
)

// Machine is the hardware state of one simulated server: per-core private
// caches and TLBs, per-socket LLCs and DRAM channels, and QPI links.
// A Machine is not safe for concurrent use; the discrete-event simulation
// drives it from a single goroutine.
type Machine struct {
	Spec    MachineSpec
	cores   []*coreHW
	sockets []*socketHW
	qpi     [][]*Channel // [from][to], nil on the diagonal

	iBlockBytes int
	pageShift   uint

	// versions holds per written data line its coherence version (a write
	// bumps it, so copies cached elsewhere become stale; see Cache.AccessV)
	// and the socket of the last writer (so a read miss can be served by a
	// dirty-copy forward instead of home memory).
	versions *lineVerTable

	// charged is the cycle-conservation ledger: every charging method
	// (dataAccess, FetchCode, StreamAccess, Compute) adds the cycles it
	// returns here as well as to the caller's CostVec, so ChargedCycles
	// can be reconciled against the profiler's per-bucket aggregate.
	charged sim.Cycles
}

type lineState struct {
	ver    uint32
	writer int8
}

type coreHW struct {
	id     int
	socket int

	l1i  *Cache
	l1d  *Cache
	l2   *Cache
	itlb *Cache
	dtlb *Cache
	stlb *Cache
	uop  *Cache // decoded-µop cache, keyed by instruction block

	// Instruction-footprint tracking (Fig 9): per function, the logical
	// sequence numbers of its last invocation, plus sizes of everything
	// executed on this core.
	seq      uint64
	lastExec map[uint32]uint64
	lastInv  map[uint32]uint64
	fnSizes  map[uint32]int
}

type socketHW struct {
	id   int
	llc  *Cache
	dram *Channel
}

// NewMachine builds the hardware state for spec.
func NewMachine(spec MachineSpec) *Machine {
	m := &Machine{
		Spec:        spec,
		iBlockBytes: spec.L1I.BlockBytes,
		versions:    newLineVerTable(),
	}
	for s := 1 << 12; s < spec.PageBytes; s <<= 1 {
		m.pageShift++
	}
	m.pageShift += 12

	for sk := 0; sk < spec.Sockets; sk++ {
		m.sockets = append(m.sockets, &socketHW{
			id:   sk,
			llc:  CacheFor(spec.LLC.CapacityBytes, spec.LLC.BlockBytes, spec.LLC.Assoc),
			dram: NewChannel(spec.LocalBWBytesPerCycle),
		})
	}
	for c := 0; c < spec.TotalCores(); c++ {
		core := &coreHW{
			id:       c,
			socket:   c / spec.CoresPerSocket,
			l1i:      CacheFor(spec.L1I.CapacityBytes, spec.L1I.BlockBytes, spec.L1I.Assoc),
			l1d:      CacheFor(spec.L1D.CapacityBytes, spec.L1D.BlockBytes, spec.L1D.Assoc),
			l2:       CacheFor(spec.L2.CapacityBytes, spec.L2.BlockBytes, spec.L2.Assoc),
			itlb:     NewCache(pow2Sets(spec.ITLB), spec.ITLB.Assoc),
			dtlb:     NewCache(pow2Sets(spec.DTLB), spec.DTLB.Assoc),
			stlb:     NewCache(pow2Sets(spec.STLB), spec.STLB.Assoc),
			lastExec: make(map[uint32]uint64),
			lastInv:  make(map[uint32]uint64),
			fnSizes:  make(map[uint32]int),
		}
		// The decoded-µop cache can be disabled (UopCacheBytes = 0) for the
		// D-ICache ablation: every fetch then pays legacy decode.
		if ways := spec.Decode.UopCacheBytes / spec.L1I.BlockBytes; ways > 0 {
			core.uop = NewCache(1, ways)
			// An L1I eviction invalidates the corresponding decoded µops.
			uop := core.uop
			core.l1i.OnEvict = func(block uint64) { uop.Invalidate(block) }
		}
		m.cores = append(m.cores, core)
	}
	m.qpi = make([][]*Channel, spec.Sockets)
	for i := range m.qpi {
		m.qpi[i] = make([]*Channel, spec.Sockets)
		for j := range m.qpi[i] {
			if i != j {
				m.qpi[i][j] = NewChannel(spec.QPIBWBytesPerCycle)
			}
		}
	}
	return m
}

func pow2Sets(t TLBSpec) int {
	sets := t.Entries / t.Assoc
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	return p
}

// SocketOfCore returns the socket a core belongs to.
func (m *Machine) SocketOfCore(core int) int { return m.cores[core].socket }

// DataAccess charges the cost of reading size bytes of data starting at
// addr from the given core at simulated time now, attributing stall cycles
// into out. It returns the total cycles charged.
func (m *Machine) DataAccess(core int, addr uint64, size int, now sim.Cycles, out *CostVec) sim.Cycles {
	return m.dataAccess(core, addr, size, false, now, out)
}

// DataWrite is DataAccess for a store: it additionally bumps each written
// line's coherence version, so copies cached by other cores become stale.
func (m *Machine) DataWrite(core int, addr uint64, size int, now sim.Cycles, out *CostVec) sim.Cycles {
	return m.dataAccess(core, addr, size, true, now, out)
}

// dataAccess walks the simulated memory hierarchy line by line — the
// single hottest loop in the model.
//
//dsp:hotpath
func (m *Machine) dataAccess(core int, addr uint64, size int, write bool, now sim.Cycles, out *CostVec) sim.Cycles {
	if size <= 0 {
		return 0
	}
	c := m.cores[core]
	mySock := c.socket
	spec := &m.Spec

	var total sim.Cycles
	first := addr &^ uint64(LineBytes-1)
	last := (addr + uint64(size) - 1) &^ uint64(LineBytes-1)
	// lastPage tracks the page the previous line resolved: consecutive
	// lines usually share it, and a re-probe of the page just translated
	// is a guaranteed TLB hit that charges nothing and leaves the TLB's
	// relative LRU order unchanged, so it is skipped outright.
	lastPage := ^uint64(0)
	for line := first; ; line += LineBytes {
		// Address translation.
		page := line >> m.pageShift
		if page != lastPage {
			lastPage = page
			if !c.dtlb.Access(page) {
				var cost sim.Cycles
				if c.stlb.Access(page) {
					cost = spec.Latency.STLBHit
				} else {
					cost = spec.Latency.PageWalk
				}
				out.Add(BeDTLB, cost)
				total += cost
			}
		}

		key := line / LineBytes
		st := m.versions.get(key)
		written := st.ver != 0
		if write {
			st.ver++
			st.writer = int8(mySock)
			m.versions.put(key, st)
		}
		var l1Hit, l2Hit, llcHit bool
		if write {
			l1Hit = c.l1d.WriteAccessV(key, st.ver)
			if !l1Hit {
				l2Hit = c.l2.WriteAccessV(key, st.ver)
				if !l2Hit {
					llcHit = m.sockets[mySock].llc.WriteAccessV(key, st.ver)
				}
			}
		} else {
			l1Hit = c.l1d.AccessV(key, st.ver)
			if !l1Hit {
				l2Hit = c.l2.AccessV(key, st.ver)
				if !l2Hit {
					llcHit = m.sockets[mySock].llc.AccessV(key, st.ver)
				}
			}
		}
		switch {
		case l1Hit:
			// L1 hit: latency hidden by the out-of-order engine.
		case l2Hit:
			out.Add(BeL1D, spec.Latency.L2)
			total += spec.Latency.L2
		case llcHit:
			out.Add(BeL2, spec.Latency.LLC)
			total += spec.Latency.LLC
		case written && int(st.writer) == mySock:
			// The current copy is dirty in a same-socket private cache:
			// an on-die cache-to-cache forward, served at LLC-like cost.
			cost := spec.Latency.LLC + 12
			out.Add(BeL2, cost)
			total += cost
		case written && int(st.writer) != mySock:
			// Dirty in another socket's caches: a QPI snoop forward.
			qwait := m.qpi[mySock][int(st.writer)].Transfer(now+total, LineBytes)
			cost := spec.Latency.RemoteDRAM + qwait
			out.Add(BeLLCRemote, cost)
			total += cost
		default:
			home := mySock
			if IsData(line) {
				home = HomeSocket(line)
			}
			if home == mySock {
				wait := m.sockets[home].dram.Transfer(now+total, LineBytes)
				cost := spec.Latency.LocalDRAM + wait
				out.Add(BeLLCLocal, cost)
				total += cost
			} else {
				qwait := m.qpi[mySock][home].Transfer(now+total, LineBytes)
				dwait := m.sockets[home].dram.Transfer(now+total+qwait, LineBytes)
				cost := spec.Latency.RemoteDRAM + qwait + dwait
				out.Add(BeLLCRemote, cost)
				total += cost
			}
		}
		if line == last {
			break
		}
	}
	m.charged += total
	return total
}

// FetchCode charges the cost of fetching and decoding a code region of the
// given size at base on core, at simulated time now. This models one pass
// over the region's hot path, as executed by a function invocation.
func (m *Machine) FetchCode(core int, base uint64, size int, now sim.Cycles, out *CostVec) sim.Cycles {
	if size <= 0 {
		return 0
	}
	c := m.cores[core]
	spec := &m.Spec
	ib := uint64(m.iBlockBytes)

	var total sim.Cycles
	first := base &^ (ib - 1)
	last := (base + uint64(size) - 1) &^ (ib - 1)
	// As in dataAccess: a page probe identical to the previous block's is
	// a guaranteed hit charging nothing, so it is skipped.
	lastPage := ^uint64(0)
	for block := first; ; block += ib {
		page := block >> m.pageShift
		if page != lastPage {
			lastPage = page
			if !c.itlb.Access(page) {
				var cost sim.Cycles
				if c.stlb.Access(page) {
					cost = spec.Latency.STLBHit
				} else {
					cost = spec.Latency.PageWalk
				}
				out.Add(FeITLB, cost)
				total += cost
			}
		}

		key := block / ib
		if c.l1i.Access(key) {
			if c.uop != nil && c.uop.Access(key) {
				// Served by the decoded-µop cache: fetch+decode skipped.
				if block == last {
					break
				}
				continue
			}
			// L1I hit, µop-cache miss: legacy decode.
			out.Add(FeILD, spec.Decode.ILDPerBlock)
			out.Add(FeIDQ, spec.Decode.IDQPerBlock)
			total += spec.Decode.ILDPerBlock + spec.Decode.IDQPerBlock
			if block == last {
				break
			}
			continue
		}

		// L1I miss: fetch from the unified hierarchy, invalidate the µop
		// cache entry, pay the decode-pipeline switch penalty, re-decode.
		var fetch sim.Cycles
		switch {
		case c.l2.Access(key):
			fetch = spec.Latency.L2
		case m.sockets[c.socket].llc.Access(key):
			fetch = spec.Latency.LLC
		default:
			wait := m.sockets[c.socket].dram.Transfer(now+total, m.iBlockBytes)
			fetch = spec.Latency.LocalDRAM + wait
		}
		out.Add(FeL1I, fetch)
		total += fetch

		out.Add(FeIDQ, spec.Decode.SwitchPenalty+spec.Decode.IDQPerBlock)
		out.Add(FeILD, spec.Decode.ILDPerBlock)
		total += spec.Decode.SwitchPenalty + spec.Decode.IDQPerBlock + spec.Decode.ILDPerBlock
		if c.uop != nil {
			c.uop.Replace(key, 0)
		}

		if block == last {
			break
		}
	}
	m.charged += total
	return total
}

// StreamAccess charges a sequential streaming sweep over a large region
// (e.g. a map-matching scan of a road-network table). Hardware prefetchers
// hide per-line latency on such sweeps, so the cost is bandwidth-dominated:
// the region's bytes are booked on the home memory channel (and QPI when
// remote) and the cycles are charged to the LLC-miss bucket. The sweep is
// treated as non-temporal: it does not pollute the cache models.
func (m *Machine) StreamAccess(core int, addr uint64, size int, now sim.Cycles, out *CostVec) sim.Cycles {
	if size <= 0 {
		return 0
	}
	c := m.cores[core]
	home := c.socket
	if IsData(addr) {
		home = HomeSocket(addr)
	}
	var total sim.Cycles
	streamCycles := sim.Cycles(float64(size) / m.Spec.LocalBWBytesPerCycle * 1.15)
	if home == c.socket {
		wait := m.sockets[home].dram.Transfer(now, size)
		total = streamCycles + wait
		out.Add(BeLLCLocal, total)
	} else {
		qwait := m.qpi[c.socket][home].Transfer(now, size)
		dwait := m.sockets[home].dram.Transfer(now+qwait, size)
		qpiCycles := sim.Cycles(float64(size) / m.Spec.QPIBWBytesPerCycle)
		total = streamCycles + qpiCycles + qwait + dwait
		out.Add(BeLLCRemote, total)
	}
	m.charged += total
	return total
}

// Compute charges uops of straight-line computation plus branch
// misprediction stalls and returns the cycles charged.
func (m *Machine) Compute(uops int, mispredicts int, out *CostVec) sim.Cycles {
	tc := sim.Cycles(float64(uops) * m.Spec.CyclesPerUop)
	if uops > 0 && tc < 1 {
		tc = 1
	}
	tbr := sim.Cycles(mispredicts) * m.Spec.MispredictPenalty
	out.Add(TC, tc)
	out.Add(TBr, tbr)
	m.charged += tc + tbr
	return tc + tbr
}

// ChargedCycles returns the conservation ledger: the total cycles returned
// by every charging method since the machine was built. Because each method
// attributes exactly the cycles it returns to cost-vector buckets, this
// must equal the sum over buckets of all CostVecs charged against this
// machine; package profiler's conservation test enforces the invariant
// end to end.
func (m *Machine) ChargedCycles() sim.Cycles { return m.charged }

// NoteInvocation records that function fn (with the given hot-code size in
// bytes) was invoked on core, and returns the instruction footprint — the
// bytes of other code executed on that core since fn's previous invocation.
// It returns -1 for the first invocation of fn on that core.
func (m *Machine) NoteInvocation(core int, fn uint32, size int) int {
	c := m.cores[core]
	c.seq++
	c.fnSizes[fn] = size
	lastInv, seen := c.lastInv[fn]
	footprint := -1
	if seen {
		footprint = 0
		for g, execSeq := range c.lastExec {
			if g != fn && execSeq > lastInv {
				footprint += c.fnSizes[g]
			}
		}
	}
	c.lastInv[fn] = c.seq
	c.lastExec[fn] = c.seq
	return footprint
}

// DRAMUtilization returns the mean DRAM channel utilization over the given
// sockets (all sockets if ids is nil) for the elapsed time.
func (m *Machine) DRAMUtilization(ids []int, elapsed sim.Cycles) float64 {
	want := map[int]bool{}
	for _, id := range ids {
		want[id] = true
	}
	var sum float64
	n := 0
	for _, s := range m.sockets {
		if len(ids) > 0 && !want[s.id] {
			continue
		}
		sum += s.dram.Utilization(elapsed)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// QPIBytes returns total bytes moved over all QPI links.
func (m *Machine) QPIBytes() uint64 {
	var b uint64
	for i := range m.qpi {
		for j := range m.qpi[i] {
			if m.qpi[i][j] != nil {
				b += m.qpi[i][j].Bytes()
			}
		}
	}
	return b
}

// DRAMBytes returns total bytes read from the given socket's memory.
func (m *Machine) DRAMBytes(socket int) uint64 { return m.sockets[socket].dram.Bytes() }

// L1IMissRate returns the aggregate L1I miss rate across cores.
func (m *Machine) L1IMissRate() float64 {
	var h, ms uint64
	for _, c := range m.cores {
		h += c.l1i.Hits()
		ms += c.l1i.Misses()
	}
	if h+ms == 0 {
		return 0
	}
	return float64(ms) / float64(h+ms)
}
