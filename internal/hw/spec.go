package hw

import (
	"fmt"

	"streamscale/internal/sim"
)

// CacheSpec sizes one cache level.
type CacheSpec struct {
	CapacityBytes int
	BlockBytes    int
	Assoc         int
}

// TLBSpec sizes one TLB.
type TLBSpec struct {
	Entries int
	Assoc   int
}

// LatencySpec holds load-to-use latencies in cycles for each level of the
// memory hierarchy (uncontended; DRAM adds queueing under load).
type LatencySpec struct {
	L2         sim.Cycles // L1 miss served by L2
	LLC        sim.Cycles // L2 miss served by LLC
	LocalDRAM  sim.Cycles // LLC miss served by local memory
	RemoteDRAM sim.Cycles // LLC miss served by a remote socket's memory
	STLBHit    sim.Cycles // first-level TLB miss that hits the STLB
	PageWalk   sim.Cycles // STLB miss page walk
}

// DecodeSpec holds front-end decode-path costs.
type DecodeSpec struct {
	// UopCacheBytes is the code span the decoded-µop cache (D-ICache) can
	// cover (1.5 kµop on Sandy Bridge, roughly 6 KB of hot code).
	UopCacheBytes int
	// ILDPerBlock is the instruction-length-decode (and IQ pressure) cost
	// of legacy-decoding one instruction block that missed the µop cache.
	ILDPerBlock sim.Cycles
	// IDQPerBlock is the decode-queue cost of the same event.
	IDQPerBlock sim.Cycles
	// SwitchPenalty is charged when the front-end falls back from the µop
	// cache to the legacy decode pipeline after an L1I miss invalidation.
	SwitchPenalty sim.Cycles
}

// MachineSpec describes a simulated machine. The default corresponds to
// Table III of the paper: a 4-socket Intel Xeon E5-4640 (Sandy Bridge EP).
type MachineSpec struct {
	Sockets        int
	CoresPerSocket int
	ClockHz        int64

	L1I CacheSpec
	L1D CacheSpec
	L2  CacheSpec
	LLC CacheSpec // per socket

	ITLB TLBSpec
	DTLB TLBSpec
	STLB TLBSpec

	PageBytes int // 4096, or 2 MB with huge pages enabled

	Latency LatencySpec
	Decode  DecodeSpec

	// LocalBWBytesPerCycle is the per-socket DRAM bandwidth
	// (51.2 GB/s at 2.4 GHz = 21.33 B/cycle).
	LocalBWBytesPerCycle float64
	// QPIBWBytesPerCycle is the bandwidth of one QPI link direction
	// (8 GB/s of the 16 GB/s bidirectional pair = 3.33 B/cycle).
	QPIBWBytesPerCycle float64

	// MispredictPenalty is the pipeline flush cost of one branch
	// misprediction.
	MispredictPenalty sim.Cycles
	// CyclesPerUop is the retirement-limited cost of one µop on an
	// otherwise unstalled out-of-order core (issue width 4, sustained
	// IPC ~2.9 for this class of code).
	CyclesPerUop float64
}

// TableIII returns the machine from the paper's Table III.
func TableIII() MachineSpec {
	return MachineSpec{
		Sockets:        4,
		CoresPerSocket: 8,
		ClockHz:        2_400_000_000,

		// Instruction-side state is tracked at 512 B block granularity: the
		// model charges fetch/decode per block, trading tag-level fidelity
		// for simulation speed while preserving capacity behaviour.
		L1I: CacheSpec{CapacityBytes: 32 << 10, BlockBytes: 512, Assoc: 8},
		L1D: CacheSpec{CapacityBytes: 32 << 10, BlockBytes: 64, Assoc: 8},
		L2:  CacheSpec{CapacityBytes: 256 << 10, BlockBytes: 64, Assoc: 8},
		LLC: CacheSpec{CapacityBytes: 20 << 20, BlockBytes: 64, Assoc: 20},

		ITLB: TLBSpec{Entries: 128, Assoc: 4},
		DTLB: TLBSpec{Entries: 64, Assoc: 4},
		STLB: TLBSpec{Entries: 512, Assoc: 4},

		PageBytes: 4096,

		Latency: LatencySpec{
			L2:         12,
			LLC:        40,
			LocalDRAM:  180,
			RemoteDRAM: 310,
			STLBHit:    7,
			PageWalk:   45,
		},
		Decode: DecodeSpec{
			UopCacheBytes: 6 << 10,
			ILDPerBlock:   5,
			IDQPerBlock:   4,
			SwitchPenalty: 7,
		},

		LocalBWBytesPerCycle: 51.2e9 / 2.4e9,
		QPIBWBytesPerCycle:   8.0e9 / 2.4e9,

		MispredictPenalty: 17,
		CyclesPerUop:      0.34,
	}
}

// TotalCores returns the machine's core count.
func (s MachineSpec) TotalCores() int { return s.Sockets * s.CoresPerSocket }

// Validate rejects machine shapes the models downstream would turn into
// +Inf or NaN bottlenecks (zero sockets make every per-socket bound divide
// by zero; zero link bandwidth prices any crossing byte as infinite). It
// checks only the fields the analytical cost models consume, so a spec
// carved from TableIII by a variant always passes; anything constructed by
// hand is caught at calibration time with a descriptive error instead of a
// poisoned ranking.
func (s MachineSpec) Validate() error {
	checks := []struct {
		name string
		bad  bool
	}{
		{"sockets", s.Sockets <= 0},
		{"cores per socket", s.CoresPerSocket <= 0},
		{"clock rate", s.ClockHz <= 0},
		{"local DRAM bandwidth", s.LocalBWBytesPerCycle <= 0},
		{"QPI link bandwidth", s.QPIBWBytesPerCycle <= 0},
		{"local DRAM latency", s.Latency.LocalDRAM <= 0},
		{"remote DRAM latency", s.Latency.RemoteDRAM <= 0},
		{"LLC block size", s.LLC.BlockBytes <= 0},
	}
	for _, c := range checks {
		if c.bad {
			return fmt.Errorf("hw: machine spec has zero or negative %s", c.name)
		}
	}
	if s.Latency.RemoteDRAM < s.Latency.LocalDRAM {
		return fmt.Errorf("hw: machine spec has remote DRAM latency %d below local %d",
			s.Latency.RemoteDRAM, s.Latency.LocalDRAM)
	}
	return nil
}

// Variant returns a named machine-spec variant. The empty name is the
// Table III baseline; the others reshape it along one axis at a time so
// sweeps can attribute differences to a single hardware parameter. Core
// count, aggregate LLC, and aggregate DRAM bandwidth are conserved where
// the shape allows it (a socket carries its proportional share), so
// "2x16" vs "8x4" isolates NUMA topology rather than total capacity.
// The bool reports whether the name is known.
func Variant(name string) (MachineSpec, bool) {
	s := TableIII()
	switch name {
	case "":
		// Table III as-is.
	case "2x16":
		// Two fat sockets: same 32 cores, LLC and DRAM channels
		// consolidated pairwise, half as many QPI crossings possible.
		s.Sockets, s.CoresPerSocket = 2, 16
		s.LLC.CapacityBytes *= 2
		s.LocalBWBytesPerCycle *= 2
	case "8x4":
		// Eight thin sockets: same 32 cores spread over twice the NUMA
		// domains, each with half the cache and memory bandwidth.
		s.Sockets, s.CoresPerSocket = 8, 4
		s.LLC.CapacityBytes /= 2
		s.LocalBWBytesPerCycle /= 2
	case "turbo":
		// Same machine at 3.2 GHz: absolute DRAM/QPI bandwidth is
		// unchanged, so the per-cycle figures shrink and memory-bound
		// workloads gain nothing.
		s.ClockHz = 3_200_000_000
		s.LocalBWBytesPerCycle = 51.2e9 / 3.2e9
		s.QPIBWBytesPerCycle = 8.0e9 / 3.2e9
	case "slowmem":
		// Higher-latency, lower-bandwidth DRAM (cheap DIMM population).
		s.Latency.LocalDRAM = 280
		s.Latency.RemoteDRAM = 480
		s.LocalBWBytesPerCycle *= 0.75
	case "fatlink":
		// Doubled interconnect bandwidth per link direction.
		s.QPIBWBytesPerCycle *= 2
	default:
		return MachineSpec{}, false
	}
	return s, true
}

// VariantNames lists the spec-variant names Variant accepts, baseline
// first, in the fixed order sweeps iterate them.
func VariantNames() []string {
	return []string{"", "2x16", "8x4", "turbo", "slowmem", "fatlink"}
}

// WithHugePages returns the spec with 2 MB pages.
func (s MachineSpec) WithHugePages() MachineSpec {
	s.PageBytes = 2 << 20
	return s
}
