package hw

import "streamscale/internal/sim"

// Channel models a bandwidth-limited transfer resource (a DRAM channel
// group or one direction of a QPI link) as a windowed token bucket: each
// window of W cycles offers rate*W bytes of capacity, and a transfer that
// finds its window exhausted spills into later windows, observing the spill
// as queueing delay. Unlike a FIFO server, the model is insensitive to the
// order requests arrive in, which matters because the discrete-event
// engine processes overlapping execution windows out of order.
type Channel struct {
	rate   float64 // bytes per cycle
	window sim.Cycles

	base int64     // window index of ring[0]
	ring []float64 // bytes consumed per window

	bytes uint64
}

// retainWindows is how much window history the channel keeps behind the
// highest window seen. Discrete-event steps may overshoot their quantum by
// one indivisible operation (tens of millions of cycles for heavy tuples),
// so requests can arrive that far "late" in kernel order; their windows
// must still exist or they would be clamped forward and charged a phantom
// wait.
const retainWindows = 1 << 15 // ~268 M cycles of history at the default window

// DefaultChannelWindow is the accounting window: ~3.4 us at 2.4 GHz, fine
// enough to capture bursts, coarse enough to absorb event reordering.
const DefaultChannelWindow sim.Cycles = 8192

// maxSpillWindows caps how far demand may queue ahead; beyond this the
// model saturates (requests still pay the maximum wait). The cap must
// comfortably exceed the largest single transfer's occupancy (a ~150 MB
// sweep over QPI spans ~5600 windows) or aggregate bandwidth would leak
// past the channel's rate.
const maxSpillWindows = 1 << 16

// NewChannel creates a channel with the given peak rate in bytes/cycle.
func NewChannel(bytesPerCycle float64) *Channel {
	return NewChannelWindow(bytesPerCycle, DefaultChannelWindow)
}

// NewChannelWindow creates a channel with an explicit accounting window.
func NewChannelWindow(bytesPerCycle float64, window sim.Cycles) *Channel {
	if bytesPerCycle <= 0 {
		panic("hw: non-positive channel rate")
	}
	if window <= 0 {
		panic("hw: non-positive channel window")
	}
	return &Channel{rate: bytesPerCycle, window: window}
}

// Transfer books a transfer of the given size at time now and returns the
// queueing delay the requester observes (fixed access latency is charged by
// the caller).
func (ch *Channel) Transfer(now sim.Cycles, bytes int) sim.Cycles {
	if bytes <= 0 {
		return 0
	}
	ch.bytes += uint64(bytes)
	w := int64(now / ch.window)
	// Advance the base only far enough to bound memory, keeping
	// retainWindows of history for late-arriving requests.
	if w-ch.base > retainWindows {
		newBase := w - retainWindows
		drop := newBase - ch.base
		if drop >= int64(len(ch.ring)) {
			ch.ring = ch.ring[:0]
		} else {
			ch.ring = ch.ring[drop:]
		}
		ch.base = newBase
	}
	if w < ch.base {
		w = ch.base // request older than all retained history
	}
	capPerWin := ch.rate * float64(ch.window)
	remaining := float64(bytes)
	i := w
	for remaining > 0 {
		idx := i - ch.base
		for int64(len(ch.ring)) <= idx {
			ch.ring = append(ch.ring, 0)
		}
		free := capPerWin - ch.ring[idx]
		if free > 0 {
			take := free
			if remaining < take {
				take = remaining
			}
			ch.ring[idx] += take
			remaining -= take
		}
		if remaining > 0 {
			if i-w >= maxSpillWindows {
				// Saturated: charge the cap and stop accounting.
				break
			}
			i++
		}
	}
	if i == w {
		return 0
	}
	wait := sim.Cycles(i)*ch.window - now
	if wait < 0 {
		wait = 0
	}
	return wait
}

// Bytes returns the total bytes transferred.
func (ch *Channel) Bytes() uint64 { return ch.bytes }

// BusyCycles returns the cycles of channel occupancy implied by the bytes
// moved at peak rate.
func (ch *Channel) BusyCycles() sim.Cycles { return sim.Cycles(float64(ch.bytes) / ch.rate) }

// Utilization returns implied occupancy over elapsed simulated time.
func (ch *Channel) Utilization(elapsed sim.Cycles) float64 {
	if elapsed <= 0 {
		return 0
	}
	u := float64(ch.BusyCycles()) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}
