package hw

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCacheHitAfterInsert(t *testing.T) {
	c := NewCache(4, 2)
	if c.Access(100) {
		t.Fatal("first access hit")
	}
	if !c.Access(100) {
		t.Fatal("second access missed")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", c.Hits(), c.Misses())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(1, 2) // one set, two ways
	c.Access(1)
	c.Access(2)
	c.Access(1) // refresh 1; 2 is now LRU
	c.Access(3) // evicts 2
	if !c.Contains(1) {
		t.Fatal("block 1 evicted despite being MRU")
	}
	if c.Contains(2) {
		t.Fatal("block 2 not evicted despite being LRU")
	}
	if !c.Contains(3) {
		t.Fatal("block 3 not inserted")
	}
}

func TestCacheSetIndexing(t *testing.T) {
	c := NewCache(4, 1)
	// Blocks 0..3 map to distinct sets: all coexist despite assoc 1.
	for b := uint64(0); b < 4; b++ {
		c.Access(b)
	}
	for b := uint64(0); b < 4; b++ {
		if !c.Contains(b) {
			t.Fatalf("block %d missing; set conflict where none expected", b)
		}
	}
	// Block 4 conflicts with block 0 only.
	c.Access(4)
	if c.Contains(0) {
		t.Fatal("block 0 survived a direct-mapped conflict with block 4")
	}
	if !c.Contains(1) || !c.Contains(2) || !c.Contains(3) {
		t.Fatal("non-conflicting blocks were evicted")
	}
}

func TestCacheOnEvictFires(t *testing.T) {
	var evicted []uint64
	c := NewCache(1, 1)
	c.OnEvict = func(b uint64) { evicted = append(evicted, b) }
	c.Access(7)
	c.Access(9)
	if len(evicted) != 1 || evicted[0] != 7 {
		t.Fatalf("evicted = %v, want [7]", evicted)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(2, 2)
	c.Access(5)
	c.Invalidate(5)
	if c.Contains(5) {
		t.Fatal("block present after Invalidate")
	}
	c.Invalidate(999) // absent: must not panic
}

func TestCacheReset(t *testing.T) {
	c := NewCache(2, 2)
	c.Access(1)
	c.Access(1)
	c.Reset()
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Fatal("stats survived Reset")
	}
	if c.Contains(1) {
		t.Fatal("contents survived Reset")
	}
}

func TestCacheForSizes(t *testing.T) {
	// 32 KB, 64 B lines, 8-way: 512 lines, 64 sets.
	c := CacheFor(32<<10, 64, 8)
	if got := c.Sets(); got != 64 {
		t.Fatalf("sets = %d, want 64", got)
	}
	if c.Assoc() != 8 {
		t.Fatalf("assoc = %d, want 8", c.Assoc())
	}
}

// CacheFor rounds the set count down to a power of two; pin the effective
// capacity of every Table III cache level (all divide exactly — no bytes
// are shed) and document a shape that does lose capacity.
func TestCacheForEffectiveBytes(t *testing.T) {
	spec := TableIII()
	for _, tc := range []struct {
		name string
		cs   CacheSpec
	}{
		{"L1I", spec.L1I},
		{"L1D", spec.L1D},
		{"L2", spec.L2},
		{"LLC", spec.LLC},
	} {
		c := CacheFor(tc.cs.CapacityBytes, tc.cs.BlockBytes, tc.cs.Assoc)
		if got := c.EffectiveBytes(); got != tc.cs.CapacityBytes {
			t.Errorf("%s: effective = %d bytes, want the requested %d", tc.name, got, tc.cs.CapacityBytes)
		}
	}

	// A 24 MB, 20-way, 64 B-line request computes 19660 sets, which rounds
	// down to 16384: only 20 MB of the requested capacity is indexable.
	c := CacheFor(24<<20, 64, 20)
	if got := c.EffectiveBytes(); got != 20<<20 {
		t.Errorf("24 MB request: effective = %d bytes, want %d (rounding documented in CacheFor)", got, 20<<20)
	}
	if got := c.Sets(); got != 16384 {
		t.Errorf("24 MB request: sets = %d, want 16384", got)
	}

	// NewCache has no block granularity (TLBs key by page number).
	if got := NewCache(16, 4).EffectiveBytes(); got != 0 {
		t.Errorf("NewCache effective bytes = %d, want 0", got)
	}
}

func TestCacheMissRate(t *testing.T) {
	c := NewCache(1, 4)
	if c.MissRate() != 0 {
		t.Fatal("miss rate nonzero before any access")
	}
	c.Access(1)
	c.Access(1)
	c.Access(1)
	c.Access(1)
	if got := c.MissRate(); got != 0.25 {
		t.Fatalf("miss rate = %v, want 0.25", got)
	}
}

// Property: the cache never holds more distinct resident blocks than its
// capacity, and a working set no larger than one set's associativity that is
// repeatedly accessed always hits after the first pass.
func TestCacheProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sets := 1 << rng.Intn(4)
		assoc := 1 + rng.Intn(4)
		c := NewCache(sets, assoc)

		// Random workload: capacity invariant.
		for i := 0; i < 500; i++ {
			c.Access(uint64(rng.Intn(64)))
		}
		resident := 0
		for b := uint64(0); b < 64; b++ {
			if c.Contains(b) {
				resident++
			}
		}
		if resident > sets*assoc {
			return false
		}

		// Small working set: second pass must be all hits.
		c.Reset()
		ws := make([]uint64, assoc) // fits one set even in the worst case
		for i := range ws {
			ws[i] = uint64(rng.Intn(1 << 20))
			for j := 0; j < i; j++ {
				if ws[j] == ws[i] {
					ws[i]++ // crude dedup; collision chance is negligible anyway
				}
			}
		}
		// Force same set by stride: use multiples of sets to land in set 0.
		for i := range ws {
			ws[i] = ws[i] * uint64(sets)
		}
		for _, b := range ws {
			c.Access(b)
		}
		before := c.Hits()
		for _, b := range ws {
			if !c.Access(b) {
				return false
			}
		}
		return c.Hits() == before+uint64(len(ws))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCachePanicsOnBadShape(t *testing.T) {
	for _, tc := range []struct{ sets, assoc int }{{3, 2}, {0, 2}, {4, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCache(%d,%d) did not panic", tc.sets, tc.assoc)
				}
			}()
			NewCache(tc.sets, tc.assoc)
		}()
	}
}
