package hw

import (
	"strings"
	"testing"
)

// Every named variant — including the Table III baseline — must construct
// a valid machine: Validate is the gate the analytical models rely on, so
// a variant that fails it could never be swept.
func TestVariantSpecsValidate(t *testing.T) {
	for _, name := range VariantNames() {
		spec, ok := Variant(name)
		if !ok {
			t.Fatalf("Variant(%q) unknown", name)
		}
		if err := spec.Validate(); err != nil {
			t.Errorf("variant %q: %v", name, err)
		}
		if err := spec.WithHugePages().Validate(); err != nil {
			t.Errorf("variant %q with huge pages: %v", name, err)
		}
	}
}

// Validate must reject each degenerate shape with an error naming the
// offending field, for every variant it could be derived from.
func TestValidateRejectsDegenerateShapes(t *testing.T) {
	breaks := []struct {
		name string
		want string
		mut  func(*MachineSpec)
	}{
		{"zero sockets", "sockets", func(s *MachineSpec) { s.Sockets = 0 }},
		{"negative sockets", "sockets", func(s *MachineSpec) { s.Sockets = -4 }},
		{"zero cores", "cores per socket", func(s *MachineSpec) { s.CoresPerSocket = 0 }},
		{"negative cores", "cores per socket", func(s *MachineSpec) { s.CoresPerSocket = -8 }},
		{"zero clock", "clock rate", func(s *MachineSpec) { s.ClockHz = 0 }},
		{"zero local bw", "local DRAM bandwidth", func(s *MachineSpec) { s.LocalBWBytesPerCycle = 0 }},
		{"negative local bw", "local DRAM bandwidth", func(s *MachineSpec) { s.LocalBWBytesPerCycle = -1 }},
		{"zero link bw", "QPI link bandwidth", func(s *MachineSpec) { s.QPIBWBytesPerCycle = 0 }},
		{"negative link bw", "QPI link bandwidth", func(s *MachineSpec) { s.QPIBWBytesPerCycle = -3.3 }},
		{"zero local latency", "local DRAM latency", func(s *MachineSpec) { s.Latency.LocalDRAM = 0 }},
		{"zero remote latency", "remote DRAM latency", func(s *MachineSpec) { s.Latency.RemoteDRAM = 0 }},
		{"zero line size", "LLC block size", func(s *MachineSpec) { s.LLC.BlockBytes = 0 }},
		{"remote below local", "remote DRAM latency", func(s *MachineSpec) {
			s.Latency.RemoteDRAM = s.Latency.LocalDRAM - 1
		}},
	}
	for _, variant := range VariantNames() {
		for _, b := range breaks {
			spec, _ := Variant(variant)
			b.mut(&spec)
			err := spec.Validate()
			if err == nil {
				t.Errorf("variant %q, %s: accepted", variant, b.name)
				continue
			}
			if !strings.Contains(err.Error(), b.want) {
				t.Errorf("variant %q, %s: error %q does not name %q", variant, b.name, err, b.want)
			}
		}
	}
}
