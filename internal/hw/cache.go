package hw

// Cache is a set-associative cache with LRU replacement. Keys are block
// numbers (the caller chooses the granularity: 64 B lines for data, 256 B
// blocks for instructions, 4 KB pages for TLBs). The zero value is not
// usable; construct with NewCache.
//
// The model is the simulator's hottest code: every simulated memory access
// probes up to four levels. Each set keeps an MRU way hint — the way of
// its most recent hit — plus a shadow copy of that way's tag in a
// set-indexed array. A lookup probes the shadow tag first: a probe hit
// (the common case for the looping code fetches the simulator issues)
// touches only the hinted way, while a probe miss costs one set-indexed
// compare and a predictable branch before the ordinary scan, so
// hint-averse access patterns (round-robin probing where consecutive
// lookups in a set never repeat a block) pay almost nothing for it. The
// probe never decides a lookup by itself: hintBlock[s] always mirrors the
// hinted way's tag, so a shadow-tag match is exactly a tag match, and
// hit/miss/eviction decisions — and therefore simulation results — stay
// bit-identical to the plain scan.
type Cache struct {
	sets    [][]way
	setMask uint64
	assoc   int

	// hints holds one MRU hint per set: a shadow copy of the most
	// recently hit way's tag plus a pointer to that way (tag noBlock when
	// the hint is invalid). Invariant: hints[s].block != noBlock implies
	// hints[s].w is a valid way of set s holding that block — every site
	// that installs or invalidates a block restores it, so a shadow match
	// never names a wrong way. One struct per set keeps the probe to a
	// single bounds-checked load.
	hints []setHint

	blockBytes int // granularity CacheFor was sized with (0 if NewCache)

	hits      uint64
	misses    uint64
	evictions uint64

	// OnEvict, if non-nil, is called with each evicted block. The machine
	// uses this to keep the decoded-µop cache coherent with L1I.
	OnEvict func(block uint64)

	tick uint64 // logical LRU clock
}

type way struct {
	block uint64 // tag, or noBlock when the way is invalid
	used  uint64 // last-use tick; 0 = never used (victim scan prefers it)
	ver   uint32 // coherence version the copy was filled at
}

// setHint is a set's MRU hint: the shadow tag and the way it shadows.
type setHint struct {
	block uint64 // tag of the most recently hit way, or noBlock
	w     *way   // the way holding block; nil only while block == noBlock
}

// noBlock marks an invalid way or shadow tag. Real keys never reach it:
// data and code tags are addresses divided by the block size (< 2^49),
// pages < 2^36 — so tagging invalid ways with noBlock lets every scan
// match on the tag alone, with no separate validity compare per way.
const noBlock = ^uint64(0)

// NewCache builds a cache with the given number of sets and associativity.
// Sets must be a power of two.
func NewCache(sets, assoc int) *Cache {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("hw: cache sets must be a positive power of two")
	}
	if assoc <= 0 {
		panic("hw: cache associativity must be positive")
	}
	c := &Cache{
		setMask: uint64(sets - 1),
		assoc:   assoc,
		hints:   make([]setHint, sets),
	}
	c.sets = make([][]way, sets)
	for i := range c.sets {
		ws := make([]way, assoc)
		for j := range ws {
			ws[j].block = noBlock
		}
		c.sets[i] = ws
	}
	for i := range c.hints {
		c.hints[i].block = noBlock
	}
	return c
}

// CacheFor builds a cache sized capacityBytes with blockBytes blocks and the
// given associativity. Because the set count must be a power of two, the
// requested capacity is rounded DOWN to the nearest power-of-two set count:
// a capacity whose set count is not a power of two can shed up to half the
// requested bytes (e.g. a 24 MB, 20-way, 64 B-line request yields 16384
// sets and only 20 MB effective). Check EffectiveBytes when sizing caches;
// every Table III level divides exactly and loses nothing.
func CacheFor(capacityBytes, blockBytes, assoc int) *Cache {
	blocks := capacityBytes / blockBytes
	sets := blocks / assoc
	if sets == 0 {
		sets = 1
	}
	// Round down to a power of two.
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	c := NewCache(p, assoc)
	c.blockBytes = blockBytes
	return c
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return int(c.setMask) + 1 }

// Assoc returns the associativity.
func (c *Cache) Assoc() int { return c.assoc }

// EffectiveBytes returns the capacity the cache actually indexes
// (sets x assoc x block bytes) after CacheFor's power-of-two set rounding.
// It returns 0 for caches built directly with NewCache, which have no byte
// granularity (e.g. TLBs keyed by page number).
func (c *Cache) EffectiveBytes() int {
	return c.Sets() * c.assoc * c.blockBytes
}

// Access looks up a block, inserting it on miss (evicting LRU if needed),
// and reports whether it hit. Equivalent to AccessV with version 0.
//
//dsp:hotpath
func (c *Cache) Access(block uint64) bool { return c.AccessV(block, 0) }

// WriteAccessV is AccessV for a store that just bumped the line's version
// to ver: a copy at ver-1 belongs to this cache's core from its previous
// write or read and is upgraded in place (an M-state rewrite), counting as
// a hit.
//
//dsp:hotpath
func (c *Cache) WriteAccessV(block uint64, ver uint32) bool {
	si := block & c.setMask
	h := &c.hints[si]
	if h.block == block {
		if w := h.w; w.ver == ver || w.ver == ver-1 {
			c.tick++
			w.ver = ver
			w.used = c.tick
			c.hits++
			return true
		}
	}
	set := c.sets[si]
	for i := range set {
		w := &set[i]
		if w.block == block && (w.ver == ver || w.ver == ver-1) {
			c.tick++
			w.ver = ver
			w.used = c.tick
			c.hits++
			return true
		}
	}
	return c.AccessV(block, ver)
}

// AccessV looks up a block requiring coherence version ver: a resident copy
// filled at an older version is stale (another core wrote the line since)
// and counts as a miss, refilled at ver. This is the model's lightweight
// stand-in for MESI invalidations.
//
//dsp:hotpath
func (c *Cache) AccessV(block uint64, ver uint32) bool {
	c.tick++
	si := block & c.setMask
	h := &c.hints[si]
	if h.block == block {
		if w := h.w; w.ver == ver {
			w.used = c.tick
			c.hits++
			return true
		}
	}
	set := c.sets[si]
	var victim *way
	for i := range set {
		w := &set[i]
		if w.block == block {
			if w.ver == ver {
				w.used = c.tick
				c.hits++
				return true
			}
			// Stale copy: refill in place at the current version.
			c.misses++
			w.ver = ver
			w.used = c.tick
			h.block = block
			h.w = w
			return false
		}
		if victim == nil || w.used < victim.used {
			victim = w
		}
	}
	c.misses++
	if victim.used != 0 {
		c.evictions++
		if c.OnEvict != nil {
			c.OnEvict(victim.block)
		}
	}
	victim.block = block
	victim.used = c.tick
	victim.ver = ver
	h.block = block
	h.w = victim
	return false
}

// Replace forcibly (re)installs a block as most recently used at version
// ver, counting a miss — observably equivalent to Invalidate(block)
// followed by AccessV(block, ver), in one set scan instead of two. The
// machine uses it on an L1I miss, where the decoded-µop entry must be
// dropped and immediately re-decoded. If the block was resident it is
// refreshed in place; the pair could land it on a different empty way, but
// way identity is unobservable (lookups are tag-keyed, LRU compares used
// ticks, and a refill over an empty or self way never fires OnEvict).
//
//dsp:hotpath
func (c *Cache) Replace(block uint64, ver uint32) {
	c.tick++
	si := block & c.setMask
	set := c.sets[si]
	var victim *way
	for i := range set {
		w := &set[i]
		if w.block == block {
			victim = w
			break
		}
		if victim == nil || w.used < victim.used {
			victim = w
		}
	}
	c.misses++
	if victim.used != 0 && victim.block != block {
		c.evictions++
		if c.OnEvict != nil {
			c.OnEvict(victim.block)
		}
	}
	victim.block = block
	victim.used = c.tick
	victim.ver = ver
	h := &c.hints[si]
	h.block = block
	h.w = victim
}

// Contains reports whether a block is resident without touching LRU state.
func (c *Cache) Contains(block uint64) bool {
	set := c.sets[block&c.setMask]
	for i := range set {
		if set[i].block == block {
			return true
		}
	}
	return false
}

// Invalidate removes a block if present. If the set's shadow tag named
// this block it is cleared (a block resides in at most one way, so the
// hint necessarily points at the emptied way); probes then fall through to
// the scan until the next hit or install re-arms the hint.
func (c *Cache) Invalidate(block uint64) {
	si := block & c.setMask
	if h := &c.hints[si]; h.block == block {
		h.block = noBlock
	}
	set := c.sets[si]
	for i := range set {
		if set[i].block == block {
			set[i].block = noBlock
			set[i].used = 0
			return
		}
	}
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = way{block: noBlock}
		}
	}
	for i := range c.hints {
		c.hints[i] = setHint{block: noBlock}
	}
	c.hits, c.misses, c.evictions, c.tick = 0, 0, 0, 0
}

// Hits returns the number of hits observed.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the number of misses observed.
func (c *Cache) Misses() uint64 { return c.misses }

// MissRate returns misses / accesses (0 when no accesses).
func (c *Cache) MissRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.misses) / float64(total)
}
