package hw

// Cache is a set-associative cache with LRU replacement. Keys are block
// numbers (the caller chooses the granularity: 64 B lines for data, 256 B
// blocks for instructions, 4 KB pages for TLBs). The zero value is not
// usable; construct with NewCache.
//
// The model is the simulator's hottest code: every simulated memory access
// probes up to four levels. Two layout decisions keep probes cheap while
// leaving hit/miss/eviction decisions — and therefore simulation results —
// bit-identical to the straightforward array-of-structs scan:
//
//   - Ways are stored structure-of-arrays (tags, LRU ticks, and coherence
//     versions in separate flat set-major arrays), so the combined
//     tag-match + LRU-victim scan touches 16 bytes per way instead of 24.
//   - Each set keeps an MRU way hint (the way of its most recent hit).
//     AccessV/WriteAccessV probe it first and are small enough to inline
//     into their callers, so a hint hit — the common case for the looping
//     code fetches the simulator issues — costs a handful of instructions
//     and no function call; only hint misses pay for the outlined scan.
type Cache struct {
	// blocks holds each way's tag, or noBlock when the way is invalid.
	// used holds the LRU tick (0 = never used); ver the coherence version.
	blocks []uint64
	used   []uint64
	vers   []uint32
	// hint holds, per set, the absolute blocks/used/vers index of the
	// set's most recent hit (initially the set's way 0). A hint may go
	// stale (Invalidate, eviction); probes verify the tag, so stale
	// hints cost a fallthrough, never a wrong answer.
	hint    []int32
	setMask uint64
	assoc   int

	blockBytes int // granularity CacheFor was sized with (0 if NewCache)

	hits      uint64
	misses    uint64
	evictions uint64

	// OnEvict, if non-nil, is called with each evicted block. The machine
	// uses this to keep the decoded-µop cache coherent with L1I.
	OnEvict func(block uint64)

	tick uint64 // logical LRU clock
}

// noBlock marks an invalid way. Real keys never reach it: data/code tags
// are addresses divided by the block size (< 2^49), pages < 2^36.
const noBlock = ^uint64(0)

// NewCache builds a cache with the given number of sets and associativity.
// Sets must be a power of two.
func NewCache(sets, assoc int) *Cache {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("hw: cache sets must be a positive power of two")
	}
	if assoc <= 0 {
		panic("hw: cache associativity must be positive")
	}
	c := &Cache{
		setMask: uint64(sets - 1),
		assoc:   assoc,
		blocks:  make([]uint64, sets*assoc),
		used:    make([]uint64, sets*assoc),
		vers:    make([]uint32, sets*assoc),
		hint:    make([]int32, sets),
	}
	for i := range c.blocks {
		c.blocks[i] = noBlock
	}
	for i := range c.hint {
		c.hint[i] = int32(i * assoc)
	}
	return c
}

// CacheFor builds a cache sized capacityBytes with blockBytes blocks and the
// given associativity. Because the set count must be a power of two, the
// requested capacity is rounded DOWN to the nearest power-of-two set count:
// a capacity whose set count is not a power of two can shed up to half the
// requested bytes (e.g. a 24 MB, 20-way, 64 B-line request yields 16384
// sets and only 20 MB effective). Check EffectiveBytes when sizing caches;
// every Table III level divides exactly and loses nothing.
func CacheFor(capacityBytes, blockBytes, assoc int) *Cache {
	blocks := capacityBytes / blockBytes
	sets := blocks / assoc
	if sets == 0 {
		sets = 1
	}
	// Round down to a power of two.
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	c := NewCache(p, assoc)
	c.blockBytes = blockBytes
	return c
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return int(c.setMask) + 1 }

// Assoc returns the associativity.
func (c *Cache) Assoc() int { return c.assoc }

// EffectiveBytes returns the capacity the cache actually indexes
// (sets x assoc x block bytes) after CacheFor's power-of-two set rounding.
// It returns 0 for caches built directly with NewCache, which have no byte
// granularity (e.g. TLBs keyed by page number).
func (c *Cache) EffectiveBytes() int {
	return c.Sets() * c.assoc * c.blockBytes
}

// Access looks up a block, inserting it on miss (evicting LRU if needed),
// and reports whether it hit. Equivalent to AccessV with version 0.
//
//dsp:hotpath
func (c *Cache) Access(block uint64) bool { return c.AccessV(block, 0) }

// WriteAccessV is AccessV for a store that just bumped the line's version
// to ver: a copy at ver-1 belongs to this cache's core from its previous
// write or read and is upgraded in place (an M-state rewrite), counting as
// a hit.
//
//dsp:hotpath
func (c *Cache) WriteAccessV(block uint64, ver uint32) bool {
	si := block & c.setMask
	if h := c.hint[si]; c.blocks[h] == block && (c.vers[h] == ver || c.vers[h] == ver-1) {
		c.tick++
		c.vers[h] = ver
		c.used[h] = c.tick
		c.hits++
		return true
	}
	return c.writeSlow(block, ver, si)
}

//dsp:hotpath
func (c *Cache) writeSlow(block uint64, ver uint32, si uint64) bool {
	base := int(si) * c.assoc
	for i := base; i < base+c.assoc; i++ {
		if c.blocks[i] == block && (c.vers[i] == ver || c.vers[i] == ver-1) {
			c.tick++
			c.vers[i] = ver
			c.used[i] = c.tick
			c.hits++
			c.hint[si] = int32(i)
			return true
		}
	}
	c.tick++
	return c.accessSlow(block, ver, si)
}

// AccessV looks up a block requiring coherence version ver: a resident copy
// filled at an older version is stale (another core wrote the line since)
// and counts as a miss, refilled at ver. This is the model's lightweight
// stand-in for MESI invalidations.
//
//dsp:hotpath
func (c *Cache) AccessV(block uint64, ver uint32) bool {
	c.tick++
	si := block & c.setMask
	// Fast path: the MRU way hint.
	if h := c.hint[si]; c.blocks[h] == block && c.vers[h] == ver {
		c.used[h] = c.tick
		c.hits++
		return true
	}
	return c.accessSlow(block, ver, si)
}

// accessSlow is the full lookup behind AccessV's hint probe: a single pass
// that both matches the tag and tracks the LRU victim (first minimum,
// preserving the original combined scan's strict-< tie-break). The caller
// has already advanced c.tick.
//
//dsp:hotpath
func (c *Cache) accessSlow(block uint64, ver uint32, si uint64) bool {
	base := int(si) * c.assoc
	bl := c.blocks[base : base+c.assoc]
	us := c.used[base : base+c.assoc : base+c.assoc]
	vi := 0
	min := ^uint64(0)
	for i, b := range bl {
		if b == block {
			if c.vers[base+i] == ver {
				us[i] = c.tick
				c.hits++
				c.hint[si] = int32(base + i)
				return true
			}
			// Stale copy: refill in place at the current version.
			c.misses++
			c.vers[base+i] = ver
			us[i] = c.tick
			c.hint[si] = int32(base + i)
			return false
		}
		if us[i] < min {
			min = us[i]
			vi = i
		}
	}
	// Full miss: evict the LRU victim.
	c.misses++
	if min != 0 {
		c.evictions++
		if c.OnEvict != nil {
			c.OnEvict(bl[vi])
		}
	}
	bl[vi] = block
	us[vi] = c.tick
	c.vers[base+vi] = ver
	c.hint[si] = int32(base + vi)
	return false
}

// Replace forcibly (re)installs a block as most recently used at version
// ver, counting a miss — observably equivalent to Invalidate(block)
// followed by AccessV(block, ver), in one set scan instead of two. The
// machine uses it on an L1I miss, where the decoded-µop entry must be
// dropped and immediately re-decoded. If the block was resident it is
// refreshed in place; the pair could land it on a different empty way, but
// way identity is unobservable (lookups are tag-keyed, LRU compares used
// ticks, and a refill over an empty or self way never fires OnEvict).
//
//dsp:hotpath
func (c *Cache) Replace(block uint64, ver uint32) {
	c.tick++
	si := block & c.setMask
	base := int(si) * c.assoc
	bl := c.blocks[base : base+c.assoc]
	us := c.used[base : base+c.assoc : base+c.assoc]
	vi := 0
	min := ^uint64(0)
	for i, b := range bl {
		if b == block {
			vi, min = i, 0
			break
		}
		if us[i] < min {
			min = us[i]
			vi = i
		}
	}
	c.misses++
	if min != 0 {
		c.evictions++
		if c.OnEvict != nil {
			c.OnEvict(bl[vi])
		}
	}
	bl[vi] = block
	us[vi] = c.tick
	c.vers[base+vi] = ver
	c.hint[si] = int32(base + vi)
}

// Contains reports whether a block is resident without touching LRU state.
func (c *Cache) Contains(block uint64) bool {
	base := int(block&c.setMask) * c.assoc
	for i := base; i < base+c.assoc; i++ {
		if c.blocks[i] == block {
			return true
		}
	}
	return false
}

// Invalidate removes a block if present. The set's way hint may keep
// pointing at the emptied way; hint probes verify the tag, so a stale
// hint is harmless.
func (c *Cache) Invalidate(block uint64) {
	base := int(block&c.setMask) * c.assoc
	for i := base; i < base+c.assoc; i++ {
		if c.blocks[i] == block {
			c.blocks[i] = noBlock
			c.used[i] = 0
			return
		}
	}
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.blocks {
		c.blocks[i] = noBlock
		c.used[i] = 0
		c.vers[i] = 0
	}
	for i := range c.hint {
		c.hint[i] = int32(i * c.assoc)
	}
	c.hits, c.misses, c.evictions, c.tick = 0, 0, 0, 0
}

// Hits returns the number of hits observed.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the number of misses observed.
func (c *Cache) Misses() uint64 { return c.misses }

// MissRate returns misses / accesses (0 when no accesses).
func (c *Cache) MissRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.misses) / float64(total)
}
