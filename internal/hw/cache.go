package hw

// Cache is a set-associative cache with LRU replacement. Keys are block
// numbers (the caller chooses the granularity: 64 B lines for data, 256 B
// blocks for instructions, 4 KB pages for TLBs). The zero value is not
// usable; construct with NewCache.
type Cache struct {
	sets    [][]way
	setMask uint64
	assoc   int

	hits      uint64
	misses    uint64
	evictions uint64

	// OnEvict, if non-nil, is called with each evicted block. The machine
	// uses this to keep the decoded-µop cache coherent with L1I.
	OnEvict func(block uint64)

	tick uint64 // logical LRU clock
}

type way struct {
	block uint64
	used  uint64 // last-use tick; 0 = invalid
	ver   uint32 // coherence version the copy was filled at
}

// NewCache builds a cache with the given number of sets and associativity.
// Sets must be a power of two.
func NewCache(sets, assoc int) *Cache {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("hw: cache sets must be a positive power of two")
	}
	if assoc <= 0 {
		panic("hw: cache associativity must be positive")
	}
	c := &Cache{setMask: uint64(sets - 1), assoc: assoc}
	c.sets = make([][]way, sets)
	for i := range c.sets {
		c.sets[i] = make([]way, assoc)
	}
	return c
}

// CacheFor builds a cache sized capacityBytes with blockBytes blocks and the
// given associativity.
func CacheFor(capacityBytes, blockBytes, assoc int) *Cache {
	blocks := capacityBytes / blockBytes
	sets := blocks / assoc
	if sets == 0 {
		sets = 1
	}
	// Round down to a power of two.
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	return NewCache(p, assoc)
}

// Access looks up a block, inserting it on miss (evicting LRU if needed),
// and reports whether it hit. Equivalent to AccessV with version 0.
func (c *Cache) Access(block uint64) bool { return c.AccessV(block, 0) }

// WriteAccessV is AccessV for a store that just bumped the line's version
// to ver: a copy at ver-1 belongs to this cache's core from its previous
// write or read and is upgraded in place (an M-state rewrite), counting as
// a hit.
func (c *Cache) WriteAccessV(block uint64, ver uint32) bool {
	set := c.sets[block&c.setMask]
	for i := range set {
		w := &set[i]
		if w.used != 0 && w.block == block && (w.ver == ver || w.ver == ver-1) {
			c.tick++
			w.ver = ver
			w.used = c.tick
			c.hits++
			return true
		}
	}
	return c.AccessV(block, ver)
}

// AccessV looks up a block requiring coherence version ver: a resident copy
// filled at an older version is stale (another core wrote the line since)
// and counts as a miss, refilled at ver. This is the model's lightweight
// stand-in for MESI invalidations.
func (c *Cache) AccessV(block uint64, ver uint32) bool {
	c.tick++
	set := c.sets[block&c.setMask]
	var victim *way
	for i := range set {
		w := &set[i]
		if w.used != 0 && w.block == block {
			if w.ver == ver {
				w.used = c.tick
				c.hits++
				return true
			}
			// Stale copy: refill in place at the current version.
			c.misses++
			w.ver = ver
			w.used = c.tick
			return false
		}
		if victim == nil || w.used < victim.used {
			victim = w
		}
	}
	c.misses++
	if victim.used != 0 {
		c.evictions++
		if c.OnEvict != nil {
			c.OnEvict(victim.block)
		}
	}
	victim.block = block
	victim.used = c.tick
	victim.ver = ver
	return false
}

// Contains reports whether a block is resident without touching LRU state.
func (c *Cache) Contains(block uint64) bool {
	set := c.sets[block&c.setMask]
	for i := range set {
		if set[i].used != 0 && set[i].block == block {
			return true
		}
	}
	return false
}

// Invalidate removes a block if present.
func (c *Cache) Invalidate(block uint64) {
	set := c.sets[block&c.setMask]
	for i := range set {
		if set[i].used != 0 && set[i].block == block {
			set[i].used = 0
			return
		}
	}
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = way{}
		}
	}
	c.hits, c.misses, c.evictions, c.tick = 0, 0, 0, 0
}

// Hits returns the number of hits observed.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the number of misses observed.
func (c *Cache) Misses() uint64 { return c.misses }

// MissRate returns misses / accesses (0 when no accesses).
func (c *Cache) MissRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.misses) / float64(total)
}
