package hw

import "testing"

func TestMeasureLatencyHierarchy(t *testing.T) {
	m := NewMachine(TableIII())
	pts := MeasureLatency(m, 64<<20)

	byLevel := map[string]float64{}
	for _, p := range pts {
		byLevel[p.Level] = p.Cycles // deepest working set per level wins
	}
	// Warm L1-resident sets are effectively free in the model.
	if byLevel["L1D"] > 1 {
		t.Fatalf("L1D working set costs %.1f cycles/access", byLevel["L1D"])
	}
	// Each level down costs strictly more.
	if !(byLevel["L1D"] < byLevel["L2"] && byLevel["L2"] < byLevel["LLC"] && byLevel["LLC"] < byLevel["DRAM"]) {
		t.Fatalf("latency not monotone down the hierarchy: %v", byLevel)
	}
	// DRAM-resident sets approach the spec's local latency.
	spec := TableIII()
	if byLevel["DRAM"] < float64(spec.Latency.LocalDRAM)*0.6 {
		t.Fatalf("DRAM latency %.0f cycles implausibly below spec %d", byLevel["DRAM"], spec.Latency.LocalDRAM)
	}
}

func TestMeasureRemoteLatencyAboveLocal(t *testing.T) {
	m1 := NewMachine(TableIII())
	m2 := NewMachine(TableIII())
	local := MeasureLatency(m1, 64<<20)
	remote := MeasureRemoteLatency(m2, 64<<20)
	lastL := local[len(local)-1].Cycles
	lastR := remote[len(remote)-1].Cycles
	if lastR <= lastL {
		t.Fatalf("remote DRAM (%.0f) not above local (%.0f)", lastR, lastL)
	}
}

func TestMeasureBandwidthScalesAndSaturates(t *testing.T) {
	spec := TableIII()
	peak := spec.LocalBWBytesPerCycle * float64(spec.ClockHz) / 1e9 // GB/s

	one := MeasureBandwidth(NewMachine(spec), 1, false)
	eight := MeasureBandwidth(NewMachine(spec), 8, false)
	if eight.GBps <= one.GBps {
		t.Fatalf("bandwidth did not scale with streams: %.1f -> %.1f GB/s", one.GBps, eight.GBps)
	}
	if eight.GBps > peak*1.05 {
		t.Fatalf("aggregate %.1f GB/s exceeds the %.1f GB/s channel", eight.GBps, peak)
	}
	// Saturation: 8 streams should reach a large fraction of peak.
	if eight.GBps < peak*0.5 {
		t.Fatalf("8 streams reach only %.1f of %.1f GB/s", eight.GBps, peak)
	}
}

func TestMeasureBandwidthRemoteBelowLocal(t *testing.T) {
	local := MeasureBandwidth(NewMachine(TableIII()), 4, false)
	remote := MeasureBandwidth(NewMachine(TableIII()), 4, true)
	if remote.GBps >= local.GBps {
		t.Fatalf("remote streaming %.1f GB/s not below local %.1f (QPI cap)", remote.GBps, local.GBps)
	}
	// Remote aggregate is bounded by one QPI link direction.
	qpiPeak := TableIII().QPIBWBytesPerCycle * 2.4 // GB/s
	if remote.GBps > qpiPeak*1.2 {
		t.Fatalf("remote %.1f GB/s implausibly above the QPI link (%.1f GB/s)", remote.GBps, qpiPeak)
	}
}
