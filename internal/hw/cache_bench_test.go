package hw

import "testing"

// BenchmarkCacheAccess measures the per-lookup cost of the set-associative
// cache model under the three regimes the simulator lives in: a repeat-heavy
// mix (the same few blocks re-probed back to back, as the TLBs and L1D see
// from a tuple's metadata/state accesses — the MRU way-hint's home turf), a
// hit-heavy mix (hot working set smaller than the cache but cycled
// round-robin, so the hint never matches and every hit pays the way scan),
// and a miss-heavy mix (streaming a working set far larger than the cache,
// exercising the victim search on every access).
func BenchmarkCacheAccess(b *testing.B) {
	b.Run("repeat-heavy", func(b *testing.B) {
		c := CacheFor(32<<10, 64, 8) // L1D-shaped: 64 sets x 8 ways
		// One hot block per set across 8 sets, each behind seven colder
		// ways — a resident line lands on an arbitrary way, so a plain
		// scan pays mismatches before finding it, while the MRU hint
		// matches on the first probe regardless of way position.
		const hot = 8
		for i := 0; i < hot; i++ {
			for j := 1; j < 8; j++ {
				c.AccessV(uint64(i+j*64), 0)
			}
			c.AccessV(uint64(i), 0)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.AccessV(uint64(i%hot), 0)
		}
	})
	b.Run("hit-heavy", func(b *testing.B) {
		c := CacheFor(32<<10, 64, 8) // L1D-shaped: 64 sets x 8 ways
		const hot = 256              // 16 KB working set: fits, ~4 ways/set
		for i := 0; i < hot; i++ {
			c.AccessV(uint64(i), 0)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.AccessV(uint64(i%hot), 0)
		}
	})
	b.Run("miss-heavy", func(b *testing.B) {
		c := CacheFor(32<<10, 64, 8)
		const span = 1 << 20 // 64 MB of lines: every access evicts
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.AccessV(uint64(i)%span, 0)
		}
	})
}
