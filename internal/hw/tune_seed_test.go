package hw

import "testing"

// seedCache is a frozen copy of the pre-PR1 array-of-structs cache model.
// It exists only as the measurement baseline for BenchmarkCacheAccessSeed:
// the way-hint acceptance numbers ("within 10% of seed", ">= 2x over
// seed") are ratios against this implementation measured in the same
// process, which cancels host frequency drift between runs.
type seedCache struct {
	sets    [][]seedWay
	setMask uint64
	assoc   int

	hits      uint64
	misses    uint64
	evictions uint64

	OnEvict func(block uint64)

	tick uint64
}

type seedWay struct {
	block uint64
	used  uint64
	ver   uint32
}

func newSeedCache(capacityBytes, blockBytes, assoc int) *seedCache {
	blocks := capacityBytes / blockBytes
	sets := blocks / assoc
	if sets == 0 {
		sets = 1
	}
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	c := &seedCache{setMask: uint64(p - 1), assoc: assoc}
	c.sets = make([][]seedWay, p)
	for i := range c.sets {
		c.sets[i] = make([]seedWay, assoc)
	}
	return c
}

func (c *seedCache) AccessV(block uint64, ver uint32) bool {
	c.tick++
	set := c.sets[block&c.setMask]
	var victim *seedWay
	for i := range set {
		w := &set[i]
		if w.used != 0 && w.block == block {
			if w.ver == ver {
				w.used = c.tick
				c.hits++
				return true
			}
			c.misses++
			w.ver = ver
			w.used = c.tick
			return false
		}
		if victim == nil || w.used < victim.used {
			victim = w
		}
	}
	c.misses++
	if victim.used != 0 {
		c.evictions++
		if c.OnEvict != nil {
			c.OnEvict(victim.block)
		}
	}
	victim.block = block
	victim.used = c.tick
	victim.ver = ver
	return false
}

// BenchmarkCacheAccessSeed mirrors BenchmarkCacheAccess against the seed
// implementation so the two can be compared within one process.
func BenchmarkCacheAccessSeed(b *testing.B) {
	b.Run("repeat-heavy", func(b *testing.B) {
		c := newSeedCache(32<<10, 64, 8)
		const hot = 8
		for i := 0; i < hot; i++ {
			for j := 1; j < 8; j++ {
				c.AccessV(uint64(i+j*64), 0)
			}
			c.AccessV(uint64(i), 0)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.AccessV(uint64(i%hot), 0)
		}
	})
	b.Run("hit-heavy", func(b *testing.B) {
		c := newSeedCache(32<<10, 64, 8)
		const hot = 256
		for i := 0; i < hot; i++ {
			c.AccessV(uint64(i), 0)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.AccessV(uint64(i%hot), 0)
		}
	})
	b.Run("miss-heavy", func(b *testing.B) {
		c := newSeedCache(32<<10, 64, 8)
		const span = 1 << 20
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.AccessV(uint64(i)%span, 0)
		}
	})
}
