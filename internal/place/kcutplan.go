package place

import (
	"fmt"
	"math"

	"streamscale/internal/engine"
)

// Plan is an executor placement P(T,k): an assignment of every executor
// (by global index) to one of k sockets.
type Plan struct {
	K      int
	Assign []int // executor global index -> socket
	// Cost is the Equation 1 cross-socket communication cost estimate.
	Cost float64
}

// Placement converts the plan to the engine's placement map.
func (p *Plan) Placement() map[int]int {
	m := make(map[int]int, len(p.Assign))
	for g, s := range p.Assign {
		m[g] = s
	}
	return m
}

// PlaceOptions tunes the placement optimizer.
type PlaceOptions struct {
	// CoresPerSocket bounds how many executors fit one socket, scaled by
	// Oversubscribe (executors time-share cores).
	CoresPerSocket int
	// Oversubscribe is the executors-per-core budget (default 4).
	Oversubscribe float64
	// Refinements bounds greedy improvement passes (default 8).
	Refinements int
	// Balanced switches the capacity constraint from executor count to
	// estimated CPU load (CommGraph.Load), with a 5% slack over the even
	// split. Without it, min-k-cut gladly packs most executors onto one
	// socket, which is Equation-1-optimal but CPU-bound.
	Balanced bool
}

func (o *PlaceOptions) fill() {
	if o.CoresPerSocket <= 0 {
		o.CoresPerSocket = 8
	}
	if o.Oversubscribe <= 0 {
		o.Oversubscribe = 4
	}
	if o.Refinements <= 0 {
		o.Refinements = 8
	}
}

// loadsAndCapacity returns per-vertex loads and the per-socket capacity for
// the chosen balance mode.
func loadsAndCapacity(g *CommGraph, k int, opts PlaceOptions) ([]float64, float64) {
	n := g.N()
	if opts.Balanced && len(g.Load) == n && g.TotalLoad() > 0 {
		return g.Load, g.TotalLoad() / float64(k) * 1.05
	}
	loads := make([]float64, n)
	for i := range loads {
		loads[i] = 1
	}
	if opts.Balanced {
		return loads, float64((n+k-1)/k + 1)
	}
	return loads, float64(opts.CoresPerSocket) * opts.Oversubscribe
}

// PlanForK computes a capacity-constrained placement of the graph onto k
// sockets minimizing Equation 1: min-k-cut seeds the partition, then a
// Kernighan-Lin-style pass moves executors between sockets while capacity
// allows. For k=1 everything goes to socket 0.
func PlanForK(g *CommGraph, k int, opts PlaceOptions) (*Plan, error) {
	opts.fill()
	n := g.N()
	loads, capacity := loadsAndCapacity(g, k, opts)
	var total float64
	for _, l := range loads {
		total += l
	}
	if capacity*float64(k) < total {
		return nil, fmt.Errorf("place: load %.1f exceeds capacity %.1f of %d sockets", total, capacity*float64(k), k)
	}
	assign := make([]int, n)
	if k > 1 {
		seed, _ := MinKCut(g.W, k)
		copy(assign, seed)
		enforceCapacity(g, assign, loads, k, capacity)
		refine(g, assign, loads, k, capacity, opts.Refinements)
	}
	return &Plan{K: k, Assign: assign, Cost: g.CutCost(assign)}, nil
}

// Plans computes placements for every k in 1..maxK, for performance-based
// selection among them (the paper tests each plan and keeps the fastest).
func Plans(g *CommGraph, maxK int, opts PlaceOptions) ([]*Plan, error) {
	var out []*Plan
	for k := 1; k <= maxK; k++ {
		p, err := PlanForK(g, k, opts)
		if err != nil {
			// Smaller k may be infeasible for large graphs; skip it.
			continue
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("place: no feasible placement up to %d sockets", maxK)
	}
	return out, nil
}

func socketLoads(assign []int, loads []float64, k int) []float64 {
	out := make([]float64, k)
	for v, s := range assign {
		out[s] += loads[v]
	}
	return out
}

// enforceCapacity moves vertices out of overfull sockets, preferring moves
// with the smallest Equation 1 penalty.
func enforceCapacity(g *CommGraph, assign []int, loads []float64, k int, capacity float64) {
	n := g.N()
	cur := socketLoads(assign, loads, k)
	for s := 0; s < k; s++ {
		for cur[s] > capacity {
			bestV, bestT, bestDelta := -1, -1, math.Inf(1)
			for v := 0; v < n; v++ {
				if assign[v] != s {
					continue
				}
				for t := 0; t < k; t++ {
					if t == s || cur[t]+loads[v] > capacity {
						continue
					}
					if d := moveDelta(g, assign, v, t); d < bestDelta {
						bestV, bestT, bestDelta = v, t, d
					}
				}
			}
			if bestV < 0 {
				return // nowhere to move; caller validated total capacity
			}
			cur[s] -= loads[bestV]
			cur[bestT] += loads[bestV]
			assign[bestV] = bestT
		}
	}
}

// moveDelta returns the Equation 1 cost change of moving v to socket t.
func moveDelta(g *CommGraph, assign []int, v, t int) float64 {
	var cur, next float64
	for u := 0; u < g.N(); u++ {
		if u == v || g.W[v][u] == 0 {
			continue
		}
		if assign[u] != assign[v] {
			cur += g.W[v][u]
		}
		if assign[u] != t {
			next += g.W[v][u]
		}
	}
	return next - cur
}

// refine runs greedy improvement passes: each pass applies the single best
// capacity-respecting move until no move improves the cost.
func refine(g *CommGraph, assign []int, loads []float64, k int, capacity float64, passes int) {
	n := g.N()
	cur := socketLoads(assign, loads, k)
	for p := 0; p < passes; p++ {
		improved := false
		for v := 0; v < n; v++ {
			bestT, bestDelta := -1, -1e-9 // only strictly improving moves
			for t := 0; t < k; t++ {
				if t == assign[v] || cur[t]+loads[v] > capacity {
					continue
				}
				if d := moveDelta(g, assign, v, t); d < bestDelta {
					bestT, bestDelta = t, d
				}
			}
			if bestT >= 0 {
				cur[assign[v]] -= loads[v]
				cur[bestT] += loads[v]
				assign[v] = bestT
				improved = true
			}
		}
		if !improved {
			break
		}
	}
}

// RoundRobinPlan spreads executors across k sockets ignoring communication
// — the ablation baseline for Figure 14.
func RoundRobinPlan(g *CommGraph, k int) *Plan {
	assign := make([]int, g.N())
	for i := range assign {
		assign[i] = i % k
	}
	return &Plan{K: k, Assign: assign, Cost: g.CutCost(assign)}
}

// PlanFor is a convenience wrapper: build the communication graph for the
// topology under the given system profile and return plans for k=1..maxK.
func PlanFor(t *engine.Topology, sys engine.SystemProfile, maxK int, opts PlaceOptions) ([]*Plan, error) {
	g, err := BuildCommGraph(t, sys)
	if err != nil {
		return nil, err
	}
	return Plans(g, maxK, opts)
}
