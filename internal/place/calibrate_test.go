package place

import (
	"testing"

	"streamscale/internal/engine"
	"streamscale/internal/hw"
)

// probe runs a small word-count topology on the simulated machine and
// returns its result — the calibration input the bench harness will use.
func probe(t *testing.T) (*engine.Result, engine.SystemProfile) {
	t.Helper()
	sys := engine.Storm()
	topo := engine.NewTopology("wc-probe")
	topo.AddSource("src", 2, func() engine.Source { return &lineSource{n: 60} },
		engine.Stream(engine.DefaultStream, "line"))
	topo.AddOp("split", 2, func() engine.Operator { return &splitOp{} },
		engine.Stream(engine.DefaultStream, "word", "n")).
		SubDefault("src", engine.Shuffle())
	topo.AddOp("count", 2, func() engine.Operator { return &countOp{} }).
		SubDefault("split", engine.Fields("word"))
	res, err := engine.RunSim(topo, engine.SimConfig{System: sys, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return res, sys
}

type lineSource struct{ n, i int }

func (s *lineSource) Prepare(engine.Context) {}
func (s *lineSource) Next(ctx engine.Context) bool {
	if s.i >= s.n {
		return false
	}
	s.i++
	ctx.Emit("the quick brown fox")
	return true
}

type splitOp struct{}

func (splitOp) Prepare(engine.Context) {}
func (splitOp) Process(ctx engine.Context, tu engine.Tuple) {
	ctx.Work(40, 4)
	for _, w := range []string{"the", "quick", "brown", "fox"} {
		ctx.Emit(w, int64(1))
	}
	_ = tu
}

type countOp struct{ seen int64 }

func (c *countOp) Prepare(engine.Context) {}
func (c *countOp) Process(ctx engine.Context, tu engine.Tuple) {
	c.seen++
	ctx.Work(25, 2)
}

func TestCalibrateFromProbe(t *testing.T) {
	res, sys := probe(t)
	m, err := Calibrate(res, hw.TableIII(), sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != len(res.Executors) {
		t.Fatalf("model has %d executors, probe %d", m.N(), len(res.Executors))
	}
	if m.RemotePenalty <= 0 {
		t.Fatalf("remote penalty %v", m.RemotePenalty)
	}
	var total float64
	for i, c := range m.Compute {
		if c < 0 {
			t.Fatalf("executor %d negative compute %v", i, c)
		}
		total += c
	}
	if total <= 0 {
		t.Fatal("no compute demand calibrated")
	}
	// Local-equivalent demand never exceeds the probe's raw account.
	var raw float64
	for i := range res.Executors {
		raw += float64(res.Executors[i].Costs.Total())
	}
	if total > raw {
		t.Fatalf("local-equivalent %v exceeds raw %v", total, raw)
	}
	if len(m.Edges) != len(res.Edges) {
		t.Fatalf("model edges %d != probe edges %d", len(m.Edges), len(res.Edges))
	}

	// A search over the calibrated model must produce exact, positive,
	// deterministic predictions.
	cands := m.Search(SearchOptions{TopM: 4, Workers: 3})
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	for _, c := range cands {
		if tp := m.PredictThroughput(c.Assign); tp <= 0 {
			t.Fatalf("non-positive predicted throughput for %v", c.Assign)
		}
	}
}
