package place

import (
	"math"
	"testing"

	"streamscale/internal/engine"
	"streamscale/internal/hw"
)

// assignments returns a few structurally different full assignments for a
// model with n executors on a machine with `sockets` sockets.
func assignments(n, sockets int) [][]int {
	all0 := make([]int, n)
	rr := make([]int, n)
	split := make([]int, n)
	for i := 0; i < n; i++ {
		rr[i] = i % sockets
		if i >= n/2 {
			split[i] = sockets - 1
		}
	}
	return [][]int{all0, rr, split}
}

// TestBottleneckOnMatchesBottleneck pins the equivalence BottleneckOn
// promises in its doc comment: with no slice restriction (sockets=0,
// cores=0) it must reproduce Bottleneck exactly, for assignments that
// exercise the serial, socket-aggregate, QPI, and interference terms.
func TestBottleneckOnMatchesBottleneck(t *testing.T) {
	res, sys := probe(t)
	m, err := Calibrate(res, hw.TableIII(), sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range assignments(m.N(), m.Sockets) {
		want := m.Bottleneck(a)
		got := m.BottleneckOn(a, 0, 0)
		if got != want {
			t.Errorf("BottleneckOn(%v, 0, 0) = %v, Bottleneck = %v", a, got, want)
		}
		if m.BottleneckOn(a, m.Sockets, m.Sockets*m.CoresPerSocket) != want {
			t.Errorf("full-machine slice diverges from Bottleneck for %v", a)
		}
	}
}

// TestBottleneckOnSlices pins the slice semantics: a partial-core slice
// can only raise the bottleneck, an executor on a disabled socket is
// infeasible (+Inf), and the feasible slices convert to positive predicted
// throughput.
func TestBottleneckOnSlices(t *testing.T) {
	res, sys := probe(t)
	m, err := Calibrate(res, hw.TableIII(), sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	zeros := make([]int, m.N())
	full := m.BottleneckOn(zeros, 0, 0)
	// Two enabled cores for six executors: the compute-over-cores and
	// interference terms must not shrink the bottleneck.
	if two := m.BottleneckOn(zeros, 1, 2); two < full {
		t.Errorf("2-core slice bottleneck %v < full-machine %v", two, full)
	}
	if tp := m.PredictThroughputOn(zeros, 1, 2); tp <= 0 {
		t.Errorf("feasible slice predicted non-positive throughput %v", tp)
	}
	// Any executor on socket 1 while only socket 0 is enabled is infeasible.
	rr := make([]int, m.N())
	for i := range rr {
		rr[i] = i % 2
	}
	if b := m.BottleneckOn(rr, 1, 0); !math.IsInf(b, 1) {
		t.Errorf("disabled-socket assignment scored %v, want +Inf", b)
	}
	if tp := m.PredictThroughputOn(rr, 1, 0); tp != 0 {
		t.Errorf("infeasible slice predicted throughput %v, want 0", tp)
	}
}

// TestCalibrateSingleSocketSpec pins that calibration and prediction work
// on a machine with one socket: no cross-socket terms exist, every
// all-zeros assignment is feasible, and the model's socket shape follows
// the spec rather than the Table III default.
func TestCalibrateSingleSocketSpec(t *testing.T) {
	res, sys := probe(t)
	spec := hw.TableIII()
	spec.Sockets = 1
	m, err := Calibrate(res, spec, sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Sockets != 1 {
		t.Fatalf("model sockets = %d, want 1", m.Sockets)
	}
	zeros := make([]int, m.N())
	b := m.Bottleneck(zeros)
	if b <= 0 || math.IsInf(b, 1) {
		t.Fatalf("single-socket bottleneck %v", b)
	}
	if got := m.BottleneckOn(zeros, 0, 0); got != b {
		t.Fatalf("BottleneckOn = %v, Bottleneck = %v", got, b)
	}
}

// soloSource is a self-contained source for the single-executor probe.
type soloSource struct{ n, i int }

func (s *soloSource) Prepare(engine.Context) {}
func (s *soloSource) Next(ctx engine.Context) bool {
	if s.i >= s.n {
		return false
	}
	s.i++
	ctx.Emit("tick")
	return true
}

// TestCalibrateSingleExecutorTopology pins the n==1 edge case: a topology
// with one executor and no edges must calibrate (the no-edge-account error
// applies only to multi-executor probes) and predict a positive
// throughput for the only possible assignment. Flink's profile keeps the
// executor count at one — Storm would add its acker.
func TestCalibrateSingleExecutorTopology(t *testing.T) {
	topo := engine.NewTopology("solo")
	topo.AddSource("src", 1, func() engine.Source { return &soloSource{n: 40} },
		engine.Stream(engine.DefaultStream, "t"))
	res, err := engine.RunSim(topo, engine.SimConfig{System: engine.Flink(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Calibrate(res, hw.TableIII(), engine.Flink(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 1 || len(m.Edges) != 0 {
		t.Fatalf("model shape N=%d edges=%d, want 1 and 0", m.N(), len(m.Edges))
	}
	if tp := m.PredictThroughput([]int{0}); tp <= 0 {
		t.Fatalf("predicted throughput %v for the only assignment", tp)
	}
}

// TestRetarget pins the re-pricing contract: retargeting onto the
// calibration spec is an exact no-op for predictions, and a slower-memory
// variant can only raise the predicted bottleneck.
func TestRetarget(t *testing.T) {
	res, sys := probe(t)
	spec := hw.TableIII()
	m, err := Calibrate(res, spec, sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	same := m.Retarget(spec)
	slow, ok := hw.Variant("slowmem")
	if !ok {
		t.Fatal("slowmem variant missing")
	}
	rt := m.Retarget(slow)
	for _, a := range assignments(m.N(), m.Sockets) {
		base := m.Bottleneck(a)
		if got := same.Bottleneck(a); got != base {
			t.Errorf("same-spec retarget changed bottleneck: %v != %v for %v", got, base, a)
		}
		if got := rt.Bottleneck(a); got < base {
			t.Errorf("slowmem retarget lowered bottleneck: %v < %v for %v", got, base, a)
		}
	}
}
