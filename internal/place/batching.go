package place

// Batching policy for the paper's §VI-A non-blocking tuple batching. The
// mechanism (Algorithm 1) is implemented in the engine's output collector;
// this file holds the tunables and the sweep the paper reports.

// BatchSizes are the S values the paper evaluates in Figures 12 and 13.
var BatchSizes = []int{2, 4, 8}

// DefaultBatchSize is the S used for the combined optimization (Fig 15).
const DefaultBatchSize = 8
