package place

import (
	"math"
	"testing"

	"streamscale/internal/hw"
)

// relClose reports whether a and b agree to within rel relative error
// (absolute for values near zero).
func relClose(a, b, rel float64) bool {
	d := math.Abs(a - b)
	if d <= rel {
		return true
	}
	return d <= rel*math.Max(math.Abs(a), math.Abs(b))
}

// modelsAgree compares the fields Retarget re-prices plus the predictions
// they feed, to within rel.
func modelsAgree(t *testing.T, tag string, got, want *Model, rel float64) {
	t.Helper()
	if got.N() != want.N() {
		t.Fatalf("%s: executor count %d != %d", tag, got.N(), want.N())
	}
	for i := range want.Compute {
		if !relClose(got.Compute[i], want.Compute[i], rel) {
			t.Errorf("%s: Compute[%d] = %v, want %v", tag, i, got.Compute[i], want.Compute[i])
		}
		if !relClose(got.MemBytes[i], want.MemBytes[i], rel) {
			t.Errorf("%s: MemBytes[%d] = %v, want %v", tag, i, got.MemBytes[i], want.MemBytes[i])
		}
	}
	for _, f := range []struct {
		name      string
		got, want float64
	}{
		{"LocalBW", got.LocalBW, want.LocalBW},
		{"QPIBW", got.QPIBW, want.QPIBW},
		{"RemotePenalty", got.RemotePenalty, want.RemotePenalty},
		{"CrossMsgCycles", got.CrossMsgCycles, want.CrossMsgCycles},
		{"invokeCycles", got.invokeCycles, want.invokeCycles},
		{"deliveryCycles", got.deliveryCycles, want.deliveryCycles},
	} {
		if !relClose(f.got, f.want, rel) {
			t.Errorf("%s: %s = %v, want %v", tag, f.name, f.got, f.want)
		}
	}
	if got.Sockets != want.Sockets || got.CoresPerSocket != want.CoresPerSocket {
		t.Errorf("%s: shape %dx%d, want %dx%d", tag,
			got.Sockets, got.CoresPerSocket, want.Sockets, want.CoresPerSocket)
	}
	for _, a := range assignments(want.N(), want.Sockets) {
		if gb, wb := got.Bottleneck(a), want.Bottleneck(a); !relClose(gb, wb, rel) {
			t.Errorf("%s: Bottleneck(%v) = %v, want %v", tag, a, gb, wb)
		}
	}
}

// TestRetargetRoundTrip pins that retargeting is invertible: for every
// ordered pair of spec variants (A, B), a model calibrated on A and
// retargeted A -> B -> A reproduces the original to float precision. The
// re-pricing preserves the probe's line counts and µop totals (only the
// latency and retirement-rate pricing moves), so the round trip must not
// drift — drift here would mean the fast tier's per-variant estimates
// depend on the order sweeps visit specs.
func TestRetargetRoundTrip(t *testing.T) {
	res, sys := probe(t)
	const rel = 1e-12
	for _, na := range hw.VariantNames() {
		specA, ok := hw.Variant(na)
		if !ok {
			t.Fatalf("variant %q missing", na)
		}
		m, err := Calibrate(res, specA, sys, 1)
		if err != nil {
			t.Fatalf("calibrate on %q: %v", na, err)
		}
		// Seed CrossMsgCycles the way the fast tier does (two remote DRAM
		// latencies) so its remote-latency-ratio re-pricing is exercised.
		m.CrossMsgCycles = 2 * float64(specA.Latency.RemoteDRAM)
		for _, nb := range hw.VariantNames() {
			if nb == na {
				continue
			}
			specB, ok := hw.Variant(nb)
			if !ok {
				t.Fatalf("variant %q missing", nb)
			}
			rt := m.Retarget(specB).Retarget(specA)
			modelsAgree(t, na+"->"+nb+"->"+na, rt, m, rel)
		}
	}
}

// TestRetargetComposes pins that retargeting is path-independent: going
// A -> B -> C lands on the same model as A -> C directly, for every pair
// of intermediate and final variants. Line counts are spec-invariant and
// every priced quantity rescales by a ratio of spec scalars, so the
// intermediate hop must cancel out; a composition failure would make
// JointShift's per-variant optima depend on the baseline they happened to
// be derived from.
func TestRetargetComposes(t *testing.T) {
	res, sys := probe(t)
	base, err := Calibrate(res, hw.TableIII(), sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	base.CrossMsgCycles = 2 * float64(hw.TableIII().Latency.RemoteDRAM)
	const rel = 1e-12
	for _, nb := range hw.VariantNames() {
		specB, _ := hw.Variant(nb)
		via := base.Retarget(specB)
		for _, nc := range hw.VariantNames() {
			specC, _ := hw.Variant(nc)
			got := via.Retarget(specC)
			want := base.Retarget(specC)
			modelsAgree(t, "via-"+nb+"->"+nc, got, want, rel)
		}
	}
}

// TestRetargetPricesLatencyDelta pins the arithmetic of one hop against
// the calibration identities: retargeting the Table III baseline onto the
// slowmem variant must add exactly (localB - localA) cycles per DRAM line
// to each executor's compute demand and leave the line count (MemBytes /
// block size) unchanged, and onto the turbo variant must leave compute
// untouched while shrinking the per-cycle bandwidths by the clock ratio.
func TestRetargetPricesLatencyDelta(t *testing.T) {
	res, sys := probe(t)
	specA := hw.TableIII()
	m, err := Calibrate(res, specA, sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	slow, _ := hw.Variant("slowmem")
	rt := m.Retarget(slow)
	dLat := float64(slow.Latency.LocalDRAM - specA.Latency.LocalDRAM)
	line := float64(specA.LLC.BlockBytes)
	for i := range m.Compute {
		lines := m.MemBytes[i] / line
		want := m.Compute[i] + lines*dLat
		if !relClose(rt.Compute[i], want, 1e-12) {
			t.Errorf("slowmem Compute[%d] = %v, want %v (+%v cycles/line over %v lines)",
				i, rt.Compute[i], want, dLat, lines)
		}
		if !relClose(rt.MemBytes[i], m.MemBytes[i], 1e-12) {
			t.Errorf("slowmem MemBytes[%d] = %v, want unchanged %v", i, rt.MemBytes[i], m.MemBytes[i])
		}
	}

	turbo, _ := hw.Variant("turbo")
	tb := m.Retarget(turbo)
	for i := range m.Compute {
		if tb.Compute[i] != m.Compute[i] {
			t.Errorf("turbo Compute[%d] = %v, want unchanged %v (same DRAM latency)",
				i, tb.Compute[i], m.Compute[i])
		}
	}
	if tb.LocalBW != turbo.LocalBWBytesPerCycle || tb.QPIBW != turbo.QPIBWBytesPerCycle {
		t.Errorf("turbo bandwidths %v/%v, want %v/%v",
			tb.LocalBW, tb.QPIBW, turbo.LocalBWBytesPerCycle, turbo.QPIBWBytesPerCycle)
	}
	if tb.ClockHz != turbo.ClockHz {
		t.Errorf("turbo ClockHz = %d, want %d", tb.ClockHz, turbo.ClockHz)
	}
}
