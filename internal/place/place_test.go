package place

import (
	"reflect"
	"testing"
)

// toyModel builds a small synthetic workload: a source feeding two heavy
// workers that feed a sink, with asymmetric traffic so placement matters.
func toyModel(n, sockets int) *Model {
	m := &Model{
		Sockets:        sockets,
		CoresPerSocket: 2,
		ClockHz:        2_400_000_000,
		LocalBW:        21.33,
		QPIBW:          3.33,
		RemotePenalty:  2.03,
		SourceEvents:   1000,
		Batch:          1,
		invokeCycles:   300,
		deliveryCycles: 85,
	}
	m.Compute = make([]float64, n)
	m.MemBytes = make([]float64, n)
	m.Invocations = make([]float64, n)
	m.OutMsgs = make([]float64, n)
	for i := 0; i < n; i++ {
		m.Compute[i] = float64(1000 + 700*(i%3))
		m.MemBytes[i] = float64(50 * (i + 1))
		m.Invocations[i] = float64(10 + i)
	}
	for i := 0; i+1 < n; i++ {
		m.Edges = append(m.Edges, Edge{From: i, To: i + 1, Bytes: float64(400 * (1 + i%2)), Msgs: float64(8 + i)})
		m.OutMsgs[i] += float64(8 + i)
	}
	// A skip edge makes the graph non-chain so cuts are nontrivial.
	if n > 3 {
		m.Edges = append(m.Edges, Edge{From: 0, To: n - 1, Bytes: 900, Msgs: 4})
		m.OutMsgs[0] += 4
	}
	return m
}

func TestCanonicalRelabelsByFirstOccurrence(t *testing.T) {
	got := Canonical([]int{2, 2, 0, 3, 0, 2})
	want := []int{0, 0, 1, 2, 1, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Canonical = %v, want %v", got, want)
	}
}

func TestBottleneckSocketSymmetric(t *testing.T) {
	m := toyModel(6, 3)
	a := []int{0, 1, 1, 2, 0, 2}
	b := []int{2, 0, 0, 1, 2, 1} // same partition, relabeled
	if m.Bottleneck(a) != m.Bottleneck(b) {
		t.Fatalf("bottleneck differs under socket relabeling: %v vs %v", m.Bottleneck(a), m.Bottleneck(b))
	}
}

func TestRemoteEdgesRaiseBottleneck(t *testing.T) {
	m := toyModel(4, 2)
	all0 := []int{0, 0, 0, 0}
	split := []int{0, 1, 0, 1}
	if m.Bottleneck(split) <= 0 || m.Bottleneck(all0) <= 0 {
		t.Fatal("bottleneck must be positive")
	}
	// The split plan carries QPI traffic and remote penalties all0 avoids;
	// with only 2 cores/socket, all0 pays a worse compute bound instead.
	perfLocal := m.Bottleneck(all0)
	var totalCompute float64
	for _, c := range m.Compute {
		totalCompute += c
	}
	if perfLocal < totalCompute/float64(m.CoresPerSocket) {
		t.Fatalf("single-socket bound %v below compute floor %v", perfLocal, totalCompute/2)
	}
}

// TestSearchMatchesBruteForce compares the B&B result on a small model
// against exhaustive enumeration of all assignments.
func TestSearchMatchesBruteForce(t *testing.T) {
	m := toyModel(7, 3)
	bestScore := 1e308
	var bestAssign []int
	assign := make([]int, 7)
	var enum func(d int)
	enum = func(d int) {
		if d == 7 {
			c := Canonical(assign)
			s := m.Bottleneck(c)
			if s < bestScore || (s == bestScore && Less(c, bestAssign)) {
				bestScore = s
				bestAssign = c
			}
			return
		}
		for s := 0; s < 3; s++ {
			assign[d] = s
			enum(d + 1)
		}
	}
	enum(0)

	got := m.Search(SearchOptions{TopM: 4})
	if len(got) == 0 {
		t.Fatal("empty search result")
	}
	if got[0].Score != bestScore {
		t.Fatalf("search best %v != brute force best %v", got[0].Score, bestScore)
	}
	if !reflect.DeepEqual(got[0].Assign, bestAssign) {
		t.Fatalf("search best assign %v != brute force %v", got[0].Assign, bestAssign)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Score < got[i-1].Score {
			t.Fatalf("results not sorted: %v", got)
		}
	}
}

// TestSearchDeterministicAcrossWorkers pins the central determinism
// property: worker count must not change the result.
func TestSearchDeterministicAcrossWorkers(t *testing.T) {
	m := toyModel(12, 4)
	seeds := [][]int{
		make([]int, 12),
		{0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1},
	}
	r1 := m.Search(SearchOptions{TopM: 6, Workers: 1, Seeds: seeds})
	r4 := m.Search(SearchOptions{TopM: 6, Workers: 4, Seeds: seeds})
	r9 := m.Search(SearchOptions{TopM: 6, Workers: 9, Seeds: seeds})
	if !reflect.DeepEqual(r1, r4) || !reflect.DeepEqual(r1, r9) {
		t.Fatalf("results vary with worker count:\n1: %v\n4: %v\n9: %v", r1, r4, r9)
	}
}

// TestSearchNeverWorseThanSeeds: the best returned score is at most the
// best seed's score, and a tiny node budget cannot break that.
func TestSearchNeverWorseThanSeeds(t *testing.T) {
	m := toyModel(10, 4)
	seed := []int{0, 1, 2, 3, 0, 1, 2, 3, 0, 1}
	seedScore := m.Bottleneck(Canonical(seed))
	got := m.Search(SearchOptions{TopM: 3, NodeBudget: 1, Seeds: [][]int{seed}})
	if len(got) == 0 {
		t.Fatal("empty result")
	}
	if got[0].Score > seedScore {
		t.Fatalf("search best %v worse than seed %v", got[0].Score, seedScore)
	}
	// The seed itself must appear somewhere in the pool unless displaced
	// by topM strictly better plans.
	better := 0
	found := false
	for _, c := range got {
		if c.Score < seedScore {
			better++
		}
		if reflect.DeepEqual(c.Assign, Canonical(seed)) {
			found = true
		}
	}
	if !found && better < len(got) {
		t.Fatalf("seed dropped from ranking without being displaced: %v", got)
	}
}

func TestSearchScoresAreExact(t *testing.T) {
	m := toyModel(9, 4)
	for _, c := range m.Search(SearchOptions{TopM: 5}) {
		if got := m.Bottleneck(c.Assign); got != c.Score {
			t.Fatalf("candidate score %v != Bottleneck %v for %v", c.Score, got, c.Assign)
		}
	}
}

func TestWithBatchReducesOverheads(t *testing.T) {
	m := toyModel(6, 2)
	m8 := m.WithBatch(8)
	if m8.Batch != 8 {
		t.Fatalf("batch = %d", m8.Batch)
	}
	for i := range m.Compute {
		if m8.Compute[i] > m.Compute[i] {
			t.Fatalf("executor %d: batching increased compute %v -> %v", i, m.Compute[i], m8.Compute[i])
		}
		if m8.Compute[i] < 0.1*m.Compute[i] {
			t.Fatalf("executor %d: batching savings unclamped: %v -> %v", i, m.Compute[i], m8.Compute[i])
		}
	}
	if !reflect.DeepEqual(m.Compute, m.WithBatch(1).Compute) {
		t.Fatal("WithBatch(same) must be identity")
	}
}

// TestOversubscriptionInterference: packing more executors than cores on
// one socket charges every resident the per-invocation scheduling delay;
// a spread assignment with headroom on every socket pays nothing.
func TestOversubscriptionInterference(t *testing.T) {
	m := toyModel(5, 3) // 2 cores per socket
	m.interferenceCycles = oversubInterferenceCycles
	// Kill the edges so the only difference between plans is interference.
	m.Edges = nil
	packed := []int{0, 0, 0, 1, 2} // socket 0 holds 3 executors on 2 cores
	spread := []int{0, 0, 1, 1, 2} // every socket has core headroom
	// The hottest executor is index 2 (compute 2400). Packed puts it on the
	// oversubscribed socket, so its serial bound grows by interference(2).
	if m.interference(2) <= 0 {
		t.Fatal("interference term must be positive for a batch-1 model")
	}
	bPacked := m.Bottleneck(packed)
	bSpread := m.Bottleneck(spread)
	if bPacked <= bSpread {
		t.Fatalf("packed bottleneck %v not above spread %v despite interference", bPacked, bSpread)
	}
	// Exactly two executors per socket: no socket oversubscribed, the term
	// must vanish and the bottleneck revert to pure compute/core bounds.
	m2 := toyModel(4, 2)
	m2.interferenceCycles = oversubInterferenceCycles
	m2.Edges = nil
	with := m2.Bottleneck([]int{0, 0, 1, 1})
	m2.interferenceCycles = 0
	without := m2.Bottleneck([]int{0, 0, 1, 1})
	if with != without {
		t.Fatalf("interference charged on a non-oversubscribed socket: %v vs %v", with, without)
	}
}

func TestPredictThroughputPositive(t *testing.T) {
	m := toyModel(5, 2)
	if tp := m.PredictThroughput([]int{0, 0, 1, 1, 0}); tp <= 0 {
		t.Fatalf("predicted throughput %v", tp)
	}
}
