package place

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Candidate is one scored placement plan. Assign is in canonical form
// (sockets relabeled by first occurrence in global-index order) so equal
// plans compare equal and ties break reproducibly.
type Candidate struct {
	Assign []int
	// Score is the predicted bottleneck in cycles (lower is better).
	Score float64
}

// SearchOptions tunes the branch-and-bound search. The zero value picks
// usable defaults.
type SearchOptions struct {
	// TopM is how many best plans to return (default 8).
	TopM int
	// Workers bounds parallel subtree workers (default 1). Results are
	// identical for any worker count: subtrees are independent, each has
	// its own node budget, and the merge is order-insensitive.
	Workers int
	// NodeBudget bounds nodes expanded per frontier subtree (default
	// 60000); the search degrades gracefully on wide graphs instead of
	// exploding.
	NodeBudget int
	// SplitDepth is the executor depth at which the assignment tree is
	// split into independent frontier subtrees (default 3).
	SplitDepth int
	// Seeds are known-good assignments (e.g. the min-k-cut plans). Their
	// exact scores initialize the pruning bound, and they always appear
	// in the returned ranking, so the search can never do worse than the
	// best seed.
	Seeds [][]int
}

func (o *SearchOptions) fill() {
	if o.TopM <= 0 {
		o.TopM = 8
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.NodeBudget <= 0 {
		o.NodeBudget = 60000
	}
	if o.SplitDepth <= 0 {
		o.SplitDepth = 3
	}
}

// Canonical relabels sockets by first occurrence in global-index order:
// the first executor's socket becomes 0, the next distinct socket 1, and
// so on. Socket-symmetric plans map to the same canonical form.
func Canonical(assign []int) []int {
	out := make([]int, len(assign))
	relabel := make([]int, 0, 8)
	for i, s := range assign {
		j := -1
		for k, orig := range relabel {
			if orig == s {
				j = k
				break
			}
		}
		if j < 0 {
			j = len(relabel)
			relabel = append(relabel, s)
		}
		out[i] = j
	}
	return out
}

// Less orders assignments lexicographically.
func Less(a, b []int) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// assignKey serializes an assignment for dedup maps.
func assignKey(assign []int) string {
	b := make([]byte, len(assign))
	for i, s := range assign {
		b[i] = byte('0' + s)
	}
	return string(b)
}

// Search runs deterministic branch-and-bound over full per-executor
// socket assignments and returns the top-M plans by predicted bottleneck,
// ties broken by lexicographically smallest canonical assignment. Seeds
// are scored exactly and merged into the ranking.
func (m *Model) Search(opts SearchOptions) []Candidate {
	opts.fill()
	n := m.N()

	// Score the seeds: they initialize the pruning bound and are always
	// part of the returned pool.
	pool := make([]Candidate, 0, opts.TopM+len(opts.Seeds))
	for _, s := range opts.Seeds {
		if len(s) != n {
			continue
		}
		c := Canonical(s)
		pool = append(pool, Candidate{Assign: c, Score: m.Bottleneck(c)})
	}
	pool = append(pool, m.greedy())
	initialBound := pruneBound(pool, opts.TopM)

	// Branch order: heaviest executors first, so the compute bound bites
	// early and symmetry breaking anchors on load-bearing decisions.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return m.Compute[order[a]] > m.Compute[order[b]] })

	// Split the tree into independent subtrees at SplitDepth: every
	// symmetry-broken prefix of the first SplitDepth executors.
	frontier := m.prefixes(order, opts.SplitDepth)
	results := make([][]Candidate, len(frontier))
	// Concurrency audit: workers share only the atomic claim cursor;
	// results are written at distinct claimed indices and read after
	// wg.Wait. Each subtree search is otherwise self-contained.
	var cursor atomic.Int64
	var wg sync.WaitGroup
	workers := opts.Workers
	if workers > len(frontier) {
		workers = len(frontier)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(frontier) {
					return
				}
				results[i] = m.searchSubtree(order, frontier[i], initialBound, opts)
			}
		}()
	}
	wg.Wait()
	for _, r := range results {
		pool = append(pool, r...)
	}
	return rank(pool, opts.TopM)
}

// greedy builds one full assignment by placing executors heaviest-first
// on the socket that minimizes the incremental bottleneck — a cheap
// incumbent that tightens the initial pruning bound.
func (m *Model) greedy() Candidate {
	n := m.N()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return m.Compute[order[a]] > m.Compute[order[b]] })
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	st := m.newSearchState(order)
	for d := 0; d < n; d++ {
		v := order[d]
		bestS, bestB := 0, 1e308
		limit := st.maxUsed + 1
		if limit >= m.Sockets {
			limit = m.Sockets - 1
		}
		for s := 0; s <= limit; s++ {
			st.place(v, s, assign)
			b := st.bound(assign)
			st.unplace(assign)
			if b < bestB {
				bestS, bestB = s, b
			}
		}
		st.place(v, bestS, assign)
	}
	c := Canonical(assign)
	return Candidate{Assign: c, Score: m.Bottleneck(c)}
}

// prefixes enumerates symmetry-broken partial assignments of the first
// depth executors in branch order.
func (m *Model) prefixes(order []int, depth int) [][]int {
	if depth > len(order) {
		depth = len(order)
	}
	out := [][]int{{}}
	for d := 0; d < depth; d++ {
		var next [][]int
		for _, p := range out {
			maxUsed := -1
			for _, s := range p {
				if s > maxUsed {
					maxUsed = s
				}
			}
			limit := maxUsed + 1
			if limit >= m.Sockets {
				limit = m.Sockets - 1
			}
			for s := 0; s <= limit; s++ {
				np := make([]int, d+1)
				copy(np, p)
				np[d] = s
				next = append(next, np)
			}
		}
		out = next
	}
	return out
}

// searchSubtree runs bounded DFS below one frontier prefix and returns
// its local top-M. Pruning uses only the shared initial bound plus the
// subtree's own discoveries, so the outcome is independent of scheduling.
func (m *Model) searchSubtree(order, prefix []int, initialBound float64, opts SearchOptions) []Candidate {
	n := m.N()
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	st := m.newSearchState(order)
	for d, s := range prefix {
		st.place(order[d], s, assign)
	}
	var local []Candidate
	bound := initialBound
	budget := opts.NodeBudget

	var dfs func(d int)
	dfs = func(d int) {
		if budget <= 0 {
			return
		}
		budget--
		if d == n {
			c := Canonical(assign)
			local = append(local, Candidate{Assign: c, Score: st.bound(assign)})
			if nb := pruneBound(local, opts.TopM); nb < bound {
				bound = nb
			}
			return
		}
		v := order[d]
		limit := st.maxUsed + 1
		if limit >= m.Sockets {
			limit = m.Sockets - 1
		}
		for s := 0; s <= limit; s++ {
			st.place(v, s, assign)
			if st.bound(assign) < bound {
				dfs(d + 1)
			}
			st.unplace(assign)
		}
	}
	dfs(len(prefix))
	return rank(local, opts.TopM)
}

// pruneBound returns the score a new plan must beat to enter the top-M:
// the M-th best score in the pool, or +Inf headroom when fewer than M.
func pruneBound(pool []Candidate, topM int) float64 {
	if len(pool) < topM {
		return 1e308
	}
	scores := make([]float64, len(pool))
	for i, c := range pool {
		scores[i] = c.Score
	}
	sort.Float64s(scores)
	return scores[topM-1]
}

// rank dedups canonical assignments and returns the top-M by (score,
// lexicographic canonical assignment).
func rank(pool []Candidate, topM int) []Candidate {
	sort.Slice(pool, func(i, j int) bool {
		if pool[i].Score != pool[j].Score {
			return pool[i].Score < pool[j].Score
		}
		return Less(pool[i].Assign, pool[j].Assign)
	})
	seen := make(map[string]bool, len(pool))
	out := make([]Candidate, 0, topM)
	for _, c := range pool {
		k := assignKey(c.Assign)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, c)
		if len(out) == topM {
			break
		}
	}
	return out
}

// searchState supports incremental admissible bounds during DFS with
// exact undo. The bound is exact at leaves (it equals Bottleneck).
type searchState struct {
	m *Model

	sockCompute []float64 // per-socket assigned compute incl. penalties
	sockMem     []float64
	sockCount   []int     // per-socket assigned executor count
	qpi         []float64 // directed socket pair -> crossing bytes
	perExec     []float64 // assigned executors' demand incl. penalties

	// in/out index edges by endpoint for incremental penalty updates.
	in, out [][]int

	totalFloor float64 // all compute / all cores: constant lower bound

	maxUsed int
	trail   []trailEntry
	marks   []int
}

type trailEntry struct {
	v       int
	prevMax int
}

func (m *Model) newSearchState(order []int) *searchState {
	n := m.N()
	st := &searchState{
		m:           m,
		sockCompute: make([]float64, m.Sockets),
		sockMem:     make([]float64, m.Sockets),
		sockCount:   make([]int, m.Sockets),
		qpi:         make([]float64, m.Sockets*m.Sockets),
		perExec:     make([]float64, n),
		in:          make([][]int, n),
		out:         make([][]int, n),
		maxUsed:     -1,
	}
	var total float64
	for _, c := range m.Compute {
		total += c
	}
	st.totalFloor = total / float64(m.Sockets*m.CoresPerSocket)
	for i, e := range m.Edges {
		st.out[e.From] = append(st.out[e.From], i)
		st.in[e.To] = append(st.in[e.To], i)
	}
	return st
}

// place assigns executor v to socket s and applies incremental penalties
// for every edge whose other endpoint is already assigned.
func (st *searchState) place(v, s int, assign []int) {
	m := st.m
	te := trailEntry{v: v, prevMax: st.maxUsed}
	assign[v] = s
	if s > st.maxUsed {
		st.maxUsed = s
	}
	st.perExec[v] = m.Compute[v]
	st.sockMem[s] += m.MemBytes[v]
	st.sockCount[s]++

	// Incoming edges: v is the consumer; cross edges stall v.
	for _, ei := range st.in[v] {
		e := &m.Edges[ei]
		if u := e.From; assign[u] >= 0 && assign[u] != s && u != v {
			pen := m.RemotePenalty * e.Bytes
			st.perExec[v] += pen
			st.qpi[assign[u]*m.Sockets+s] += e.Bytes
		}
	}
	// Outgoing edges: v is the producer; cross edges stall the (already
	// assigned) consumer u — adjust u's demand and its socket's total.
	for _, ei := range st.out[v] {
		e := &m.Edges[ei]
		if u := e.To; assign[u] >= 0 && assign[u] != s && u != v {
			pen := m.RemotePenalty * e.Bytes
			st.perExec[u] += pen
			st.sockCompute[assign[u]] += pen
			st.qpi[s*m.Sockets+assign[u]] += e.Bytes
		}
	}
	st.sockCompute[s] += st.perExec[v]
	st.trail = append(st.trail, te)
}

// unplace reverts the most recent place, iterating the same edges in the
// same cross-socket conditions so every increment is undone exactly.
func (st *searchState) unplace(assign []int) {
	m := st.m
	te := st.trail[len(st.trail)-1]
	st.trail = st.trail[:len(st.trail)-1]
	v := te.v
	s := assign[v]

	st.sockCompute[s] -= st.perExec[v]
	for _, ei := range st.in[v] {
		e := &m.Edges[ei]
		if u := e.From; assign[u] >= 0 && assign[u] != s && u != v {
			st.qpi[assign[u]*m.Sockets+s] -= e.Bytes
		}
	}
	for _, ei := range st.out[v] {
		e := &m.Edges[ei]
		if u := e.To; assign[u] >= 0 && assign[u] != s && u != v {
			pen := m.RemotePenalty * e.Bytes
			st.perExec[u] -= pen
			st.sockCompute[assign[u]] -= pen
			st.qpi[s*m.Sockets+assign[u]] -= e.Bytes
		}
	}
	st.sockMem[s] -= m.MemBytes[v]
	st.sockCount[s]--
	st.perExec[v] = 0
	st.maxUsed = te.prevMax
	assign[v] = -1
}

// bound returns an admissible lower bound on the bottleneck of any
// completion of the current partial assignment; at a full assignment it
// is exact and equals Model.Bottleneck.
func (st *searchState) bound(assign []int) float64 {
	m := st.m
	b := st.totalFloor
	cores := float64(m.CoresPerSocket)
	for s := 0; s <= st.maxUsed; s++ {
		b = maxf(b, st.sockCompute[s]/cores)
		b = maxf(b, st.sockMem[s]/m.LocalBW)
	}
	for _, bytes := range st.qpi {
		b = maxf(b, bytes/m.QPIBW)
	}
	for v, s := range assign {
		if s >= 0 {
			// Interference is computed on the fly from the socket's current
			// count; counts only grow along a DFS path, so this term is
			// admissible and exact at leaves (it matches Model.Bottleneck).
			pe := st.perExec[v]
			if st.sockCount[s] > m.CoresPerSocket {
				pe += m.interference(v)
			}
			b = maxf(b, pe)
		} else {
			// Unassigned executors still owe at least their own serial
			// demand, wherever they land.
			b = maxf(b, m.Compute[v])
		}
	}
	return b
}
