package place

import "fmt"

// Problem bundles the inputs a placement strategy may consume. Strategies
// differ in how much they need: min-k-cut works from the static
// communication graph alone, the placement branch-and-bound needs the
// calibrated cost model, and the joint RLAS search additionally needs the
// operator structure to rescale parallelism. A strategy errors if its
// required input is absent.
type Problem struct {
	// Graph is the static communication graph (Equation 1 weights).
	Graph *CommGraph
	// Model is the probe-calibrated analytical cost model.
	Model *Model
	// Workload is the operator structure over Model, for joint search.
	Workload *Workload
	// Sockets is the socket budget. Zero defaults to Model.Sockets when a
	// model is present, else 4.
	Sockets int
}

func (p Problem) sockets() int {
	if p.Sockets > 0 {
		return p.Sockets
	}
	if p.Model != nil {
		return p.Model.Sockets
	}
	return 4
}

// Decision is one plan a strategy proposes: a socket assignment, an
// optional parallelism vector (nil keeps the probe's), and the strategy's
// own score for it. Scores are comparable within a strategy's output, not
// across strategies (min-k-cut scores Equation 1 bytes, the model-driven
// strategies score bottleneck cycles).
type Decision struct {
	Assign []int
	Par    []int
	Score  float64
}

// Strategy is one placement-planning algorithm: it maps a Problem to a
// ranked list of candidate decisions, best first.
type Strategy interface {
	Name() string
	Plan(p Problem) ([]Decision, error)
}

// KCutStrategy is the static strategy from the paper's Figure 14 ablation:
// capacity-constrained min-k-cut over the communication graph, blind to
// compute load unless balanced. It proposes one plan per socket count
// 1..Sockets, re-ranked by cut cost.
type KCutStrategy struct {
	Opts PlaceOptions
}

func (KCutStrategy) Name() string { return "min-k-cut" }

func (s KCutStrategy) Plan(p Problem) ([]Decision, error) {
	if p.Graph == nil {
		return nil, fmt.Errorf("place: %s strategy needs a communication graph", s.Name())
	}
	plans, err := Plans(p.Graph, p.sockets(), s.Opts)
	if err != nil {
		return nil, err
	}
	out := make([]Decision, 0, len(plans))
	for _, pl := range plans {
		out = append(out, Decision{Assign: append([]int(nil), pl.Assign...), Score: pl.Cost})
	}
	// Plans are per-k; rank by cut cost, ties to fewer sockets (the
	// enumeration is already ascending in k, and the sort is stable).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Score < out[j-1].Score; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out, nil
}

// BnBStrategy is the model-driven placement-only strategy: the
// deterministic branch-and-bound over socket assignments, scored by the
// calibrated model's predicted bottleneck at the probe's parallelism.
type BnBStrategy struct {
	Opts SearchOptions
}

func (BnBStrategy) Name() string { return "bnb" }

func (s BnBStrategy) Plan(p Problem) ([]Decision, error) {
	if p.Model == nil {
		return nil, fmt.Errorf("place: %s strategy needs a calibrated model", s.Name())
	}
	out := []Decision{}
	for _, c := range p.Model.Search(s.Opts) {
		out = append(out, Decision{Assign: c.Assign, Score: c.Score})
	}
	return out, nil
}

// JointStrategy is the joint parallelism + placement strategy: co-search
// executor counts with socket assignment (BriskStream's relative-
// location-aware scheduling), scored on the re-priced model.
type JointStrategy struct {
	Opts JointOptions
}

func (JointStrategy) Name() string { return "joint" }

func (s JointStrategy) Plan(p Problem) ([]Decision, error) {
	if p.Workload == nil {
		return nil, fmt.Errorf("place: %s strategy needs a workload (model + operator structure)", s.Name())
	}
	res, err := p.Workload.SearchJoint(s.Opts)
	if err != nil {
		return nil, err
	}
	out := []Decision{}
	for _, c := range res.Candidates {
		out = append(out, Decision{Assign: c.Assign, Par: c.Par, Score: c.Score})
	}
	return out, nil
}

// Strategies returns the built-in strategies with default options, in
// ablation-table order (static to joint).
func Strategies() []Strategy {
	return []Strategy{
		KCutStrategy{Opts: PlaceOptions{Balanced: true}},
		BnBStrategy{},
		JointStrategy{},
	}
}

// StrategyByName looks up a built-in strategy.
func StrategyByName(name string) (Strategy, bool) {
	for _, s := range Strategies() {
		if s.Name() == name {
			return s, true
		}
	}
	return nil, false
}
