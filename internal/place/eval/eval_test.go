package eval_test

import (
	"math"
	"testing"

	"streamscale/internal/engine"
	"streamscale/internal/hw"
	"streamscale/internal/place/eval"
)

type lineSource struct{ n, i int }

func (s *lineSource) Prepare(engine.Context) {}
func (s *lineSource) Next(ctx engine.Context) bool {
	if s.i >= s.n {
		return false
	}
	s.i++
	ctx.Emit("the quick brown fox")
	return true
}

type splitOp struct{}

func (splitOp) Prepare(engine.Context) {}
func (splitOp) Process(ctx engine.Context, tu engine.Tuple) {
	ctx.Work(40, 4)
	for _, w := range []string{"the", "quick", "brown", "fox"} {
		ctx.Emit(w, int64(1))
	}
	_ = tu
}

type countOp struct{ seen int64 }

func (c *countOp) Prepare(engine.Context) {}
func (c *countOp) Process(ctx engine.Context, tu engine.Tuple) {
	c.seen++
	ctx.Work(25, 2)
}

// estimator calibrates one fast-tier estimator from an unplaced
// full-machine probe of a small word-count topology.
func estimator(t *testing.T) *eval.Estimator {
	t.Helper()
	sys := engine.Storm()
	topo := engine.NewTopology("wc-probe")
	topo.AddSource("src", 2, func() engine.Source { return &lineSource{n: 60} },
		engine.Stream(engine.DefaultStream, "line"))
	topo.AddOp("split", 2, func() engine.Operator { return &splitOp{} },
		engine.Stream(engine.DefaultStream, "word", "n")).
		SubDefault("src", engine.Shuffle())
	topo.AddOp("count", 2, func() engine.Operator { return &countOp{} }).
		SubDefault("split", engine.Fields("word"))
	res, err := engine.RunSim(topo, engine.SimConfig{System: sys, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	e, err := eval.New(res, hw.TableIII(), sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestEstimateAtProbePoint pins the calibration anchor: estimating the
// probe's own configuration reproduces the probe's score exactly, so the
// latency scale factor is 1 and the only uncertainty is the modeled OS
// spread of unpinned executors.
func TestEstimateAtProbePoint(t *testing.T) {
	e := estimator(t)
	p, err := e.Estimate(eval.Target{})
	if err != nil {
		t.Fatal(err)
	}
	if p.ThroughputEPS <= 0 || p.LatencyMs <= 0 || p.BottleneckCycles <= 0 {
		t.Fatalf("probe-point estimate not positive: %+v", p)
	}
	if p.Uncertainty != 0.05 {
		t.Errorf("probe-point uncertainty = %v, want 0.05 (OS spread only)", p.Uncertainty)
	}
	// Same target twice: estimates are pure functions of the probe.
	q, err := e.Estimate(eval.Target{})
	if err != nil {
		t.Fatal(err)
	}
	if p != q {
		t.Errorf("estimate not deterministic: %+v vs %+v", p, q)
	}
}

// TestEstimateBatching pins the analytical batch adjustment: batching
// amortizes framework overhead so predicted throughput never drops below
// the probe point, latency grows with the accumulation delay, and
// uncertainty grows with analytical distance (one unit per doubling).
func TestEstimateBatching(t *testing.T) {
	e := estimator(t)
	base, err := e.Estimate(eval.Target{})
	if err != nil {
		t.Fatal(err)
	}
	prevUnc := base.Uncertainty
	for _, b := range []int{2, 4, 16} {
		p, err := e.Estimate(eval.Target{Batch: b})
		if err != nil {
			t.Fatal(err)
		}
		if p.ThroughputEPS < base.ThroughputEPS {
			t.Errorf("batch %d predicted %v eps < unbatched %v", b, p.ThroughputEPS, base.ThroughputEPS)
		}
		if p.LatencyMs <= 0 {
			t.Errorf("batch %d latency %v", b, p.LatencyMs)
		}
		if p.Uncertainty <= prevUnc {
			t.Errorf("batch %d uncertainty %v did not grow past %v", b, p.Uncertainty, prevUnc)
		}
		prevUnc = p.Uncertainty
	}
}

// TestEstimateUncertaintyOrdering pins the screening priority: a spec
// retarget is a bigger analytical leap than a machine-slice change, which
// in turn exceeds the probe point.
func TestEstimateUncertaintyOrdering(t *testing.T) {
	e := estimator(t)
	probe, err := e.Estimate(eval.Target{})
	if err != nil {
		t.Fatal(err)
	}
	slice, err := e.Estimate(eval.Target{Sockets: 1})
	if err != nil {
		t.Fatal(err)
	}
	slow, ok := hw.Variant("slowmem")
	if !ok {
		t.Fatal("slowmem variant missing")
	}
	retarget, err := e.Estimate(eval.Target{Spec: slow})
	if err != nil {
		t.Fatal(err)
	}
	if !(retarget.Uncertainty > slice.Uncertainty) {
		t.Errorf("retarget unc %v not above slice unc %v", retarget.Uncertainty, slice.Uncertainty)
	}
	// The 1-socket slice swaps the probe point's OS-spread term (executors
	// pinned by the single covered socket) for the slice-change term, so it
	// stays nonzero but need not exceed the probe point.
	if slice.Uncertainty <= 0 || slice.Uncertainty < probe.Uncertainty {
		t.Errorf("slice unc %v, probe-point unc %v", slice.Uncertainty, probe.Uncertainty)
	}
	// No throughput ordering is asserted between the two slices: packing
	// onto one socket trades cross-socket penalties for fewer cores, and
	// either side can win depending on the workload — that trade-off is
	// exactly what the tier exists to screen.
}

// TestEstimateErrors pins the two rejection paths: an assignment of the
// wrong length, and an assignment that lands on a disabled socket.
func TestEstimateErrors(t *testing.T) {
	e := estimator(t)
	if _, err := e.Estimate(eval.Target{Assign: []int{0}}); err == nil {
		t.Error("short assignment accepted")
	}
	bad := make([]int, e.N())
	bad[0] = 1 // socket 1 with a 1-socket slice
	if _, err := e.Estimate(eval.Target{Sockets: 1, Assign: bad}); err == nil {
		t.Error("disabled-socket assignment accepted")
	}
}

// TestEstimateOversubscribed pins that restricting the slice below the
// executor count adds the oversubscription term and keeps the prediction
// finite and positive.
func TestEstimateOversubscribed(t *testing.T) {
	e := estimator(t)
	p, err := e.Estimate(eval.Target{Sockets: 1, Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	if p.ThroughputEPS <= 0 || math.IsInf(p.BottleneckCycles, 1) {
		t.Fatalf("oversubscribed slice estimate %+v", p)
	}
	single, err := e.Estimate(eval.Target{Sockets: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !(p.Uncertainty > single.Uncertainty) {
		t.Errorf("oversubscribed unc %v not above single-socket unc %v", p.Uncertainty, single.Uncertainty)
	}
	if p.ThroughputEPS > single.ThroughputEPS {
		t.Errorf("2-core slice predicted %v eps above 8-core %v", p.ThroughputEPS, single.ThroughputEPS)
	}
}
