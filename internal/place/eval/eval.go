// Package eval is the fast-evaluation tier: it generalizes the calibrated
// placement cost model (internal/place) from "rank socket assignments for
// one cell" into an estimator that predicts throughput and latency for ANY
// experiment cell — machine slice, batch size, placement, spec variant —
// from ONE cycle-exact probe simulation per workload. An estimate costs
// microseconds where a simulation costs seconds, so a sweep can screen
// thousands of cells analytically and spend simulations only where the
// screen says they matter (internal/bench's tiered runner).
//
// Every estimate carries an Uncertainty score: zero at the calibration
// point, growing with each analytical extrapolation applied (batch
// adjustment, spec retarget, machine-slice change, modeled OS spread,
// oversubscription). The tiered runner verifies high-uncertainty cells
// preferentially, so the score is a screening priority, not a confidence
// interval.
package eval

import (
	"fmt"
	"math"

	"streamscale/internal/engine"
	"streamscale/internal/hw"
	"streamscale/internal/place"
)

// Uncertainty weights: one unit of "analytical distance" per extrapolation
// the estimate takes beyond what the probe measured. The relative order is
// what matters (spec retarget > slice change > batch step), calibrated so
// the tier-smoke sweep's worst cells rank above its best-understood ones.
const (
	uncPerBatchDoubling = 0.03 // batch moved 2x away from the probe's
	uncSpecRetarget     = 0.15 // machine spec re-priced analytically
	uncSliceChange      = 0.05 // different socket/core slice than probed
	uncOSSpread         = 0.05 // floating threads modeled as round-robin
	uncOversubscribed   = 0.10 // more executors than enabled cores
)

// Target describes the configuration to estimate, relative to the probe's
// workload (same app, system, scale, seed — those are baked into the
// estimator; anything that changes them needs its own probe).
type Target struct {
	// Sockets enables the first n sockets (0 = all); Cores, if nonzero,
	// restricts to the machine's first n cores. SimConfig semantics.
	Sockets int
	Cores   int
	// Batch is the tuple-batching S (0/1 = off).
	Batch int
	// Assign pins each executor (global index) to a socket; nil models
	// the simulator's OS-spread default as round-robin over the enabled
	// sockets (matching its queue-memory placement rule).
	Assign []int
	// Spec retargets the estimate onto a different machine; the zero
	// value keeps the probe's spec.
	Spec hw.MachineSpec
}

// Prediction is one analytical estimate.
type Prediction struct {
	// ThroughputEPS is predicted source throughput in events/s, anchored
	// to the probe's measurement: the analytical model supplies the
	// *ratio* between the target and the probe configuration, the probe's
	// measured throughput supplies the scale. Anchoring cancels the
	// model's per-workload bound looseness (its bottleneck terms are
	// admissible lower bounds, so raw analytical throughput overshoots by
	// a workload-dependent factor), which keeps estimates calibrated
	// against different probes comparable within one sweep group.
	ThroughputEPS float64
	// LatencyMs is a coarse mean-latency estimate: the probe's measured
	// mean scaled by the predicted service-time ratio and the batch
	// accumulation delay. Useful for trends, not for absolute SLOs.
	LatencyMs float64
	// BottleneckCycles is the model's raw score (lower is better).
	BottleneckCycles float64
	// Uncertainty is the accumulated analytical distance from the probe.
	Uncertainty float64
}

// Estimator predicts cell performance from one calibrated probe.
type Estimator struct {
	base *place.Model
	spec hw.MachineSpec // the spec the probe simulated

	probeBatch   int
	probeScore   float64 // base model's score of the probe's own run
	probeEPS     float64 // events/s, measured by the probe
	probeMeanLat float64 // ms, measured by the probe
}

// New calibrates an estimator from a probe simulation's result. The probe
// should be an UNPLACED full-machine run of the workload (the same cell
// the placement search probes with), simulated on spec under sys at
// probeBatch (almost always 1, the cheapest and sharpest calibration
// point: batching effects are then modeled, never baked in).
func New(res *engine.Result, spec hw.MachineSpec, sys engine.SystemProfile, probeBatch int) (*Estimator, error) {
	if probeBatch <= 0 {
		probeBatch = 1
	}
	m, err := place.Calibrate(res, spec, sys, probeBatch)
	if err != nil {
		return nil, err
	}
	// The placement search compares assignments that share a slice, where
	// per-byte crossing penalties suffice; the tier also compares *slices*
	// against each other, where the fixed per-message cost of a crossing
	// delivery is what makes ack-heavy cross-socket traffic expensive:
	// the queue's slot line and its index line each take a remote
	// round-trip the consumer cannot hide, so price a crossing message at
	// two remote latencies. Calibrate leaves the term zero so the
	// placement search (and the default report) is unchanged.
	m.CrossMsgCycles = 2 * float64(spec.Latency.RemoteDRAM)
	e := &Estimator{
		base:         m,
		spec:         spec,
		probeBatch:   probeBatch,
		probeEPS:     res.Throughput().PerSecond(),
		probeMeanLat: res.Latency.Mean(),
	}
	e.probeScore = m.BottleneckOn(roundRobin(m.N(), spec.Sockets), 0, 0)
	if e.probeScore <= 0 || math.IsInf(e.probeScore, 1) {
		return nil, fmt.Errorf("eval: probe model has no positive bottleneck")
	}
	if e.probeEPS <= 0 {
		return nil, fmt.Errorf("eval: probe measured no throughput")
	}
	return e, nil
}

// N returns the workload's executor count.
func (e *Estimator) N() int { return e.base.N() }

// Estimate predicts the workload's performance at the target
// configuration. It never simulates; cost is microseconds.
func (e *Estimator) Estimate(t Target) (Prediction, error) {
	m := e.base
	spec := e.spec
	var unc float64

	if t.Spec != (hw.MachineSpec{}) && t.Spec != e.spec {
		m = m.Retarget(t.Spec)
		spec = t.Spec
		unc += uncSpecRetarget
	}
	batch := t.Batch
	if batch <= 0 {
		batch = 1
	}
	if batch != e.probeBatch {
		m = m.WithBatch(batch)
		r := float64(batch) / float64(e.probeBatch)
		if r < 1 {
			r = 1 / r
		}
		unc += uncPerBatchDoubling * math.Log2(r)
	}

	sockets := t.Sockets
	if sockets <= 0 || sockets > spec.Sockets {
		sockets = spec.Sockets
	}
	enabled := sockets * spec.CoresPerSocket
	if t.Cores > 0 && t.Cores < enabled {
		enabled = t.Cores
	}
	if sockets != spec.Sockets || enabled != spec.TotalCores() {
		unc += uncSliceChange
	}
	// Sockets covered by the enabled cores (the last may be partial) —
	// the only sockets an unpinned executor's queue can land on.
	covered := (enabled + spec.CoresPerSocket - 1) / spec.CoresPerSocket

	assign := t.Assign
	if assign == nil {
		assign = roundRobin(m.N(), covered)
		if covered > 1 {
			unc += uncOSSpread
		}
	} else if len(assign) != m.N() {
		return Prediction{}, fmt.Errorf("eval: assignment has %d executors, workload %d", len(assign), m.N())
	}
	if m.N() > enabled {
		unc += uncOversubscribed
	}

	score := m.BottleneckOn(assign, sockets, t.Cores)
	if math.IsInf(score, 1) {
		return Prediction{}, fmt.Errorf("eval: assignment uses a disabled socket")
	}
	// Anchor: predicted/probe analytical throughput gives the model's
	// ratio (clock changes from a retarget included via PredictThroughputOn),
	// and the probe's measured throughput gives the scale.
	probeAnalytic := float64(e.base.SourceEvents) * float64(e.base.ClockHz) / e.probeScore
	p := Prediction{
		BottleneckCycles: score,
		ThroughputEPS:    e.probeEPS * m.PredictThroughputOn(assign, sockets, t.Cores) / probeAnalytic,
		Uncertainty:      unc,
	}
	// Coarse latency: service time scales with the bottleneck ratio, and
	// a tuple waits on average half a batch before dispatch.
	p.LatencyMs = e.probeMeanLat * (score / e.probeScore) * (1 + 0.5*float64(batch-1))
	return p, nil
}

// roundRobin models the simulator's OS-spread default: executor i's queue
// memory lands on enabled socket i%covered.
func roundRobin(n, covered int) []int {
	if covered < 1 {
		covered = 1
	}
	a := make([]int, n)
	for i := range a {
		a[i] = i % covered
	}
	return a
}
