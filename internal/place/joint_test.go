package place

import (
	"math"
	"reflect"
	"testing"

	"streamscale/internal/apps"
	"streamscale/internal/engine"
)

// toyWorkload builds a synthetic four-operator workload over a hand-built
// model: source(1) -shuffle-> split(2) -fields-> count(2) -global-> sink(1),
// with skewed count executors so the key-share model has something to see.
func toyWorkload() *Workload {
	m := &Model{
		Sockets:        3,
		CoresPerSocket: 2,
		ClockHz:        2_400_000_000,
		LocalBW:        21.33,
		QPIBW:          3.33,
		RemotePenalty:  2.03,
		SourceEvents:   1000,
		Batch:          1,
		invokeCycles:   300,
		deliveryCycles: 85,
	}
	// Executors: 0=source, 1-2=split, 3-4=count (skewed), 5=sink.
	m.Compute = []float64{800, 1500, 1500, 2600, 1400, 300}
	m.MemBytes = []float64{100, 400, 400, 900, 500, 50}
	m.Invocations = []float64{10, 40, 40, 60, 35, 20}
	m.OutMsgs = make([]float64, 6)
	add := func(from, to int, bytes, msgs float64) {
		m.Edges = append(m.Edges, Edge{From: from, To: to, Bytes: bytes, Msgs: msgs})
		m.OutMsgs[from] += msgs
	}
	add(0, 1, 500, 10)
	add(0, 2, 500, 10)
	add(1, 3, 700, 20) // fields: the hot key mass lands on count exec 3
	add(1, 4, 300, 10)
	add(2, 3, 700, 20)
	add(2, 4, 300, 10)
	add(3, 5, 400, 12)
	add(4, 5, 200, 6)

	w := &Workload{
		Model: m,
		Ops: []OpShape{
			{Name: "source", First: 0, Count: 1, Source: true},
			{Name: "split", First: 1, Count: 2},
			{Name: "count", First: 3, Count: 2, Keyed: true},
			{Name: "sink", First: 5, Count: 1, GlobalOnly: true},
		},
		Edges: []OpEdge{
			{From: 0, To: 1, Group: engine.GroupShuffle},
			{From: 1, To: 2, Group: engine.GroupFields},
			{From: 2, To: 3, Group: engine.GroupGlobal},
		},
		opOf: []int{0, 1, 1, 2, 2, 3},
	}
	return w
}

// syntheticModelFor builds a model with n executors of plausible values —
// enough for NewWorkload, which only checks the count.
func syntheticModelFor(n int) *Model {
	m := &Model{
		Sockets: 4, CoresPerSocket: 8, ClockHz: 2_400_000_000,
		LocalBW: 21.33, QPIBW: 3.33, RemotePenalty: 2.03,
		SourceEvents: 1000, Batch: 1,
	}
	m.Compute = make([]float64, n)
	m.MemBytes = make([]float64, n)
	m.Invocations = make([]float64, n)
	m.OutMsgs = make([]float64, n)
	for i := range m.Compute {
		m.Compute[i] = float64(500 + 100*i)
		m.MemBytes[i] = float64(40 * (i + 1))
		m.Invocations[i] = 10
	}
	return m
}

// TestNewWorkloadWordCount derives the operator structure from the real
// word-count topology and pins the grouping-driven flags the joint search
// keys off: sources and the acker are fixed, the fields-grouped counter is
// keyed, and the globally-grouped sink is excluded from the search.
func TestNewWorkloadWordCount(t *testing.T) {
	topo, err := apps.Build("wc", apps.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sys := engine.Storm()
	xt, err := engine.BuildExecTopology(topo, sys)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, node := range xt.Nodes() {
		n += node.Parallelism
	}
	w, err := NewWorkload(syntheticModelFor(n), topo, sys)
	if err != nil {
		t.Fatal(err)
	}

	byName := map[string]OpShape{}
	for _, op := range w.Ops {
		byName[op.Name] = op
	}
	if !byName["source"].Source {
		t.Error("source not flagged Source")
	}
	if !byName[engine.AckerName].System {
		t.Errorf("%s not flagged System", engine.AckerName)
	}
	if !byName["count"].Keyed {
		t.Error("count (fields-grouped) not flagged Keyed")
	}
	if !byName["sink"].GlobalOnly {
		t.Error("sink (globally grouped) not flagged GlobalOnly")
	}

	var names []string
	for _, i := range w.Searchable() {
		names = append(names, w.Ops[i].Name)
	}
	if !reflect.DeepEqual(names, []string{"split", "count"}) {
		t.Errorf("searchable ops = %v, want [split count]", names)
	}

	// Executor layout must line up with the exec topology's contiguous
	// global indexing.
	total := 0
	for i, node := range xt.Nodes() {
		if w.Ops[i].First != total || w.Ops[i].Count != node.Parallelism {
			t.Errorf("op %s layout {%d,%d}, want {%d,%d}",
				node.Name, w.Ops[i].First, w.Ops[i].Count, total, node.Parallelism)
		}
		total += node.Parallelism
	}
}

// TestReparallelizeIdentity: the probe's own vector returns the calibrated
// model itself — fixed-parallelism plans score identically under joint and
// placement-only search.
func TestReparallelizeIdentity(t *testing.T) {
	w := toyWorkload()
	m, err := w.Reparallelize(w.DefaultPar())
	if err != nil {
		t.Fatal(err)
	}
	if m != w.Model {
		t.Fatal("identity vector did not return the base model")
	}
}

func TestReparallelizeRejectsBadVectors(t *testing.T) {
	w := toyWorkload()
	if _, err := w.Reparallelize([]int{1, 2}); err == nil {
		t.Error("short vector accepted")
	}
	if _, err := w.Reparallelize([]int{1, 0, 2, 1}); err == nil {
		t.Error("zero parallelism accepted")
	}
	if _, err := w.Reparallelize([]int{2, 2, 2, 1}); err == nil {
		t.Error("source rescale accepted")
	}
}

// TestReparallelizeConservation: rescaling must conserve the calibrated
// totals — compute, memory, invocations, and per-pair edge traffic are
// redistributed, never created or destroyed.
func TestReparallelizeConservation(t *testing.T) {
	w := toyWorkload()
	base := w.Model
	sum := func(xs []float64) float64 {
		var t float64
		for _, x := range xs {
			t += x
		}
		return t
	}
	for _, par := range [][]int{
		{1, 4, 2, 1}, {1, 1, 4, 1}, {1, 3, 3, 1}, {1, 4, 4, 1},
	} {
		m, err := w.Reparallelize(par)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := m.N(), par[0]+par[1]+par[2]+par[3]; got != want {
			t.Fatalf("par %v: n = %d, want %d", par, got, want)
		}
		for name, pair := range map[string][2]float64{
			"compute":     {sum(m.Compute), sum(base.Compute)},
			"mem":         {sum(m.MemBytes), sum(base.MemBytes)},
			"invocations": {sum(m.Invocations), sum(base.Invocations)},
		} {
			if math.Abs(pair[0]-pair[1]) > 1e-9*pair[1] {
				t.Errorf("par %v: %s total %v, want %v", par, name, pair[0], pair[1])
			}
		}
		var bytes, baseBytes float64
		for _, e := range m.Edges {
			bytes += e.Bytes
		}
		for _, e := range base.Edges {
			baseBytes += e.Bytes
		}
		if math.Abs(bytes-baseBytes) > 1e-9*baseBytes {
			t.Errorf("par %v: edge bytes %v, want %v", par, bytes, baseBytes)
		}
		if got, want := sum(m.OutMsgs), sum(base.OutMsgs); math.Abs(got-want) > 1e-9*want {
			t.Errorf("par %v: out msgs %v, want %v", par, got, want)
		}
	}
}

// TestReparallelizeShuffleSplitsEvenly: doubling a shuffle-fed operator
// halves its per-executor demand.
func TestReparallelizeShuffleSplitsEvenly(t *testing.T) {
	w := toyWorkload()
	m, err := w.Reparallelize([]int{1, 4, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Split executors are now globals 1..4; probe total was 3000.
	for i := 1; i <= 4; i++ {
		if math.Abs(m.Compute[i]-750) > 1e-9 {
			t.Errorf("split exec %d compute %v, want 750", i, m.Compute[i])
		}
	}
	// The unchanged count op keeps its measured skew (globals 5,6).
	if m.Compute[5] != 2600 || m.Compute[6] != 1400 {
		t.Errorf("count kept %v/%v, want 2600/1400", m.Compute[5], m.Compute[6])
	}
}

// TestReparallelizeKeyShare pins the fields-grouping skew model: at the
// probe parallelism the measured hot share is kept; growing the executor
// count shrinks the hot bucket toward — but never below — the uniform
// share, and the remainder splits evenly.
func TestReparallelizeKeyShare(t *testing.T) {
	w := toyWorkload()
	hot := 2600.0 / 4000.0 // probe hot share of the count op

	m4, err := w.Reparallelize([]int{1, 2, 4, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Count executors are globals 3..6; hot bucket rehashed over 4 buckets
	// holds hot * 2/4 of the mass.
	wantHot := 4000 * hot * 2 / 4
	if math.Abs(m4.Compute[3]-wantHot) > 1e-9 {
		t.Errorf("hot bucket at k=4: %v, want %v", m4.Compute[3], wantHot)
	}
	for i := 4; i <= 6; i++ {
		want := (4000 - wantHot) / 3
		if math.Abs(m4.Compute[i]-want) > 1e-9 {
			t.Errorf("cold bucket %d at k=4: %v, want %v", i, m4.Compute[i], want)
		}
	}

	// At very large k the skew floors at the uniform share.
	m16, err := w.Reparallelize([]int{1, 2, 16, 1})
	if err != nil {
		t.Fatal(err)
	}
	uniform := 4000.0 / 16
	if m16.Compute[3] < uniform-1e-9 {
		t.Errorf("hot bucket fell below uniform: %v < %v", m16.Compute[3], uniform)
	}
	for i := 3; i < 19; i++ {
		if m16.Compute[i] > 4000*hot {
			t.Errorf("bucket %d exceeds probe hot mass: %v", i, m16.Compute[i])
		}
	}
}

// TestReparallelizeGlobalEdges: traffic into a globally grouped consumer
// lands entirely on its executor 0, whatever the producer's parallelism.
func TestReparallelizeGlobalEdges(t *testing.T) {
	w := toyWorkload()
	m, err := w.Reparallelize([]int{1, 2, 4, 1})
	if err != nil {
		t.Fatal(err)
	}
	sink := 1 + 2 + 4 // global index of the sink executor
	var toSink float64
	for _, e := range m.Edges {
		if e.To == sink {
			toSink += e.Bytes
		}
		if e.From >= 3 && e.From < 7 && e.To != sink {
			t.Errorf("count edge to non-sink executor %d", e.To)
		}
	}
	if math.Abs(toSink-600) > 1e-9 { // probe pair total 400+200
		t.Errorf("sink inbound bytes %v, want 600", toSink)
	}
}

// TestReparallelizeAllGrouping: an all-grouped consumer receives the full
// producer output per replica, so pair traffic and consumer demand scale
// with the replica count.
func TestReparallelizeAllGrouping(t *testing.T) {
	m := &Model{
		Sockets: 2, CoresPerSocket: 4, ClockHz: 2_400_000_000,
		LocalBW: 21.33, QPIBW: 3.33, RemotePenalty: 2.03,
		SourceEvents: 100, Batch: 1,
		Compute:     []float64{500, 900, 900},
		MemBytes:    []float64{50, 80, 80},
		Invocations: []float64{10, 20, 20},
		OutMsgs:     []float64{8, 0, 0},
		Edges: []Edge{
			{From: 0, To: 1, Bytes: 300, Msgs: 4},
			{From: 0, To: 2, Bytes: 300, Msgs: 4},
		},
	}
	w := &Workload{
		Model: m,
		Ops: []OpShape{
			{Name: "src", First: 0, Count: 1, Source: true},
			{Name: "bcast", First: 1, Count: 2, AllOnly: true},
		},
		Edges: []OpEdge{{From: 0, To: 1, Group: engine.GroupAll}},
		opOf:  []int{0, 1, 1},
	}
	out, err := w.Reparallelize([]int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	// Each replica still carries the full per-replica demand.
	for i := 1; i <= 4; i++ {
		if math.Abs(out.Compute[i]-900) > 1e-9 {
			t.Errorf("replica %d compute %v, want 900", i, out.Compute[i])
		}
	}
	var bytes float64
	for _, e := range out.Edges {
		bytes += e.Bytes
	}
	if math.Abs(bytes-1200) > 1e-9 { // 300 per replica x 4
		t.Errorf("broadcast bytes %v, want 1200", bytes)
	}
}

// TestVectorFloorAdmissible: the cheap per-vector bound never exceeds the
// bottleneck of ANY assignment of the re-priced model — checked against
// the greedy assignment, which upper-bounds the optimum.
func TestVectorFloorAdmissible(t *testing.T) {
	w := toyWorkload()
	for _, par := range [][]int{
		{1, 2, 2, 1}, {1, 1, 1, 1}, {1, 4, 2, 1}, {1, 2, 4, 1}, {1, 4, 4, 1}, {1, 3, 2, 1},
	} {
		m, err := w.Reparallelize(par)
		if err != nil {
			t.Fatal(err)
		}
		floor := w.vectorFloor(par)
		if g := m.greedy(); floor > g.Score+1e-9 {
			t.Errorf("par %v: floor %v above greedy score %v", par, floor, g.Score)
		}
	}
}

// TestSearchJointDeterministicAcrossWorkers pins the joint search's
// worker-count independence — the property the CI jobs-diff stage gates.
func TestSearchJointDeterministicAcrossWorkers(t *testing.T) {
	w := toyWorkload()
	run := func(workers int) *JointResult {
		r, err := w.SearchJoint(JointOptions{Search: SearchOptions{Workers: workers}})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1, r4, r9 := run(1), run(4), run(9)
	if !reflect.DeepEqual(r1, r4) || !reflect.DeepEqual(r1, r9) {
		t.Fatalf("joint results vary with worker count:\n1: %+v\n4: %+v\n9: %+v", r1, r4, r9)
	}
	if r1.VectorsScreened == 0 || r1.VectorsSearched == 0 {
		t.Fatalf("counters empty: %+v", r1)
	}
}

// TestSearchJointNeverWorseThanDefault: the joint optimum scores at least
// as well as the best placement-only plan under the same model — the
// default vector is always searched in full.
func TestSearchJointNeverWorseThanDefault(t *testing.T) {
	w := toyWorkload()
	r, err := w.SearchJoint(JointOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	fixed := w.Model.Search(SearchOptions{TopM: 1})
	if r.Candidates[0].Score > fixed[0].Score {
		t.Fatalf("joint best %v worse than fixed-parallelism best %v",
			r.Candidates[0].Score, fixed[0].Score)
	}
	// Even with the vector budget squeezed to the default vector alone.
	r1, err := w.SearchJoint(JointOptions{VectorBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Candidates[0].Score > fixed[0].Score {
		t.Fatalf("budget-1 joint best %v worse than fixed best %v",
			r1.Candidates[0].Score, fixed[0].Score)
	}
}

// TestSearchJointScoresAreExact: every returned candidate's score equals
// the re-priced model's bottleneck for its assignment.
func TestSearchJointScoresAreExact(t *testing.T) {
	w := toyWorkload()
	r, err := w.SearchJoint(JointOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range r.Candidates {
		m, err := w.Reparallelize(c.Par)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Bottleneck(c.Assign); math.Abs(got-c.Score) > 1e-9 {
			t.Errorf("par %v assign %v: score %v != bottleneck %v", c.Par, c.Assign, c.Score, got)
		}
		if len(c.Assign) != m.N() {
			t.Errorf("par %v: assignment length %d != n %d", c.Par, len(c.Assign), m.N())
		}
	}
}

// TestSearchJointFindsSerialBottleneckFix: a workload whose default shape
// pins all its compute in one executor must improve when the joint search
// is allowed to scale that operator out.
func TestSearchJointFindsSerialBottleneckFix(t *testing.T) {
	m := &Model{
		Sockets: 2, CoresPerSocket: 4, ClockHz: 2_400_000_000,
		LocalBW: 21.33, QPIBW: 3.33, RemotePenalty: 2.03,
		SourceEvents: 100, Batch: 1,
		Compute:     []float64{400, 6000, 200},
		MemBytes:    []float64{40, 600, 20},
		Invocations: []float64{10, 50, 10},
		OutMsgs:     []float64{8, 4, 0},
		Edges: []Edge{
			{From: 0, To: 1, Bytes: 300, Msgs: 8},
			{From: 1, To: 2, Bytes: 150, Msgs: 4},
		},
	}
	w := &Workload{
		Model: m,
		Ops: []OpShape{
			{Name: "src", First: 0, Count: 1, Source: true},
			{Name: "heavy", First: 1, Count: 1},
			{Name: "sink", First: 2, Count: 1},
		},
		Edges: []OpEdge{
			{From: 0, To: 1, Group: engine.GroupShuffle},
			{From: 1, To: 2, Group: engine.GroupShuffle},
		},
		opOf: []int{0, 1, 2},
	}
	r, err := w.SearchJoint(JointOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fixed := m.Search(SearchOptions{TopM: 1})
	if r.Candidates[0].Score >= fixed[0].Score {
		t.Fatalf("joint best %v did not beat the serial bottleneck %v",
			r.Candidates[0].Score, fixed[0].Score)
	}
	if r.Candidates[0].Par[1] <= 1 {
		t.Fatalf("winner did not scale the heavy op: par %v", r.Candidates[0].Par)
	}
}

// TestVectorChoicesClamped: candidate parallelism values are halve / keep /
// double, clamped and deduplicated, in ascending order.
func TestVectorChoicesClamped(t *testing.T) {
	w := toyWorkload()
	if got := w.vectorChoices(1, 64); !reflect.DeepEqual(got, []int{1, 2, 4}) {
		t.Errorf("choices(split) = %v, want [1 2 4]", got)
	}
	if got := w.vectorChoices(1, 3); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Errorf("choices clamped to 3 = %v, want [1 2 3]", got)
	}
	if got := w.vectorChoices(1, 2); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("choices clamped to 2 = %v, want [1 2]", got)
	}
}
