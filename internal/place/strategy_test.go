package place

import (
	"reflect"
	"testing"

	"streamscale/internal/apps"
	"streamscale/internal/engine"
)

// TestStrategiesAgreeWithDirectCalls pins that the Strategy interface is a
// pure adapter: each strategy's decisions match the underlying algorithm
// invoked directly, so routing a caller through the interface changes
// nothing.
func TestStrategiesAgreeWithDirectCalls(t *testing.T) {
	topo, err := apps.Build("wc", apps.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildCommGraph(topo, engine.Storm())
	if err != nil {
		t.Fatal(err)
	}
	w := toyWorkload()
	prob := Problem{Graph: g, Model: w.Model, Workload: w, Sockets: w.Model.Sockets}

	t.Run("min-k-cut", func(t *testing.T) {
		opts := PlaceOptions{Balanced: true}
		got, err := (KCutStrategy{Opts: opts}).Plan(prob)
		if err != nil {
			t.Fatal(err)
		}
		plans, err := Plans(g, prob.Sockets, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(plans) {
			t.Fatalf("%d decisions, %d plans", len(got), len(plans))
		}
		for i := 1; i < len(got); i++ {
			if got[i].Score < got[i-1].Score {
				t.Fatalf("decisions not ranked by cut cost: %v", got)
			}
		}
		// Every plan appears exactly once, with its own cut cost.
		for _, pl := range plans {
			found := false
			for _, d := range got {
				found = found || reflect.DeepEqual(d.Assign, pl.Assign) && d.Score == pl.Cost
			}
			if !found {
				t.Errorf("plan k=%d missing from decisions", pl.K)
			}
		}
	})

	t.Run("bnb", func(t *testing.T) {
		got, err := (BnBStrategy{}).Plan(prob)
		if err != nil {
			t.Fatal(err)
		}
		want := w.Model.Search(SearchOptions{})
		if len(got) != len(want) {
			t.Fatalf("%d decisions, %d candidates", len(got), len(want))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i].Assign, want[i].Assign) || got[i].Score != want[i].Score {
				t.Fatalf("decision %d = %+v, want %+v", i, got[i], want[i])
			}
			if got[i].Par != nil {
				t.Fatalf("placement-only decision carries a parallelism vector: %+v", got[i])
			}
		}
	})

	t.Run("joint", func(t *testing.T) {
		got, err := (JointStrategy{}).Plan(prob)
		if err != nil {
			t.Fatal(err)
		}
		res, err := w.SearchJoint(JointOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(res.Candidates) {
			t.Fatalf("%d decisions, %d candidates", len(got), len(res.Candidates))
		}
		for i, c := range res.Candidates {
			if !reflect.DeepEqual(got[i].Assign, c.Assign) ||
				!reflect.DeepEqual(got[i].Par, c.Par) || got[i].Score != c.Score {
				t.Fatalf("decision %d = %+v, want %+v", i, got[i], c)
			}
		}
	})
}

// TestStrategiesRejectMissingInputs: each strategy names its missing input
// instead of panicking on a partial problem.
func TestStrategiesRejectMissingInputs(t *testing.T) {
	if _, err := (KCutStrategy{}).Plan(Problem{}); err == nil {
		t.Error("min-k-cut accepted a problem without a graph")
	}
	if _, err := (BnBStrategy{}).Plan(Problem{}); err == nil {
		t.Error("bnb accepted a problem without a model")
	}
	if _, err := (JointStrategy{}).Plan(Problem{}); err == nil {
		t.Error("joint accepted a problem without a workload")
	}
}

func TestStrategyByName(t *testing.T) {
	for _, want := range []string{"min-k-cut", "bnb", "joint"} {
		s, ok := StrategyByName(want)
		if !ok || s.Name() != want {
			t.Errorf("StrategyByName(%q) = %v, %v", want, s, ok)
		}
	}
	if _, ok := StrategyByName("annealing"); ok {
		t.Error("unknown strategy name resolved")
	}
}
