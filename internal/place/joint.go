package place

import (
	"fmt"
	"math"
	"sort"

	"streamscale/internal/engine"
)

// The joint parallelism + placement search (BriskStream's relative-
// location-aware scheduling): the calibrated Model learns to re-price the
// workload under a different per-operator parallelism vector from the one
// probe it was calibrated on, and SearchJoint enumerates (parallelism
// vector x socket assignment) jointly — an admissible per-vector lower
// bound prunes the parallelism axis exactly the way the branch-and-bound's
// incremental bound prunes the assignment axis.

// OpShape describes one operator of the calibrated workload: where its
// executors sit in the model's global index space and how it may be
// rescaled.
type OpShape struct {
	Name  string
	First int // global index of the operator's executor 0
	Count int // probe parallelism
	// Source and System operators keep their probe parallelism: a source's
	// event budget is per executor (rescaling would change the workload),
	// and System executors (the acker) are sized by the engine profile.
	Source bool
	System bool
	// Keyed marks operators fed by a fields grouping: their per-executor
	// load is a key-share distribution, not an even split.
	Keyed bool
	// GlobalOnly marks operators whose every input is globally grouped:
	// only executor 0 ever receives tuples, so extra executors idle.
	GlobalOnly bool
	// AllOnly marks operators whose every input is all-grouped: each
	// executor receives the full input stream, so total demand scales with
	// the executor count instead of splitting across it.
	AllOnly bool
}

// OpEdge is one producer→consumer operator pair with the grouping rule
// that decides how its traffic redistributes when either side rescales.
type OpEdge struct {
	From, To int // indices into Workload.Ops
	Group    engine.GroupKind
}

// Workload binds a calibrated Model to the operator structure of the
// topology it was probed on — the information the per-executor model alone
// lacks but re-parallelization needs.
type Workload struct {
	Model *Model
	Ops   []OpShape
	// Edges are the operator-level pairs, deduplicated: parallel
	// subscriptions between one pair collapse to the dominant rule
	// (all > global > fields > shuffle) so each pair redistributes one way.
	Edges []OpEdge

	opOf []int // executor global index -> op index
}

// NewWorkload derives the operator structure for a calibrated model from
// the topology and system profile the probe ran under. The topology is
// expanded exactly like the probe expanded it (the acker participates), so
// executor indices line up with the model's.
func NewWorkload(m *Model, topo *engine.Topology, sys engine.SystemProfile) (*Workload, error) {
	xt, err := engine.BuildExecTopology(topo, sys)
	if err != nil {
		return nil, err
	}
	w := &Workload{Model: m}
	opIdx := make(map[string]int)
	total := 0
	for _, n := range xt.Nodes() {
		opIdx[n.Name] = len(w.Ops)
		w.Ops = append(w.Ops, OpShape{
			Name: n.Name, First: total, Count: n.Parallelism,
			Source: n.IsSource(), System: n.System,
		})
		total += n.Parallelism
	}
	if total != m.N() {
		return nil, fmt.Errorf("place: topology has %d executors, model %d", total, m.N())
	}

	// Operator pairs, collapsing parallel subscriptions to one rule.
	rank := func(k engine.GroupKind) int {
		switch k {
		case engine.GroupAll:
			return 3
		case engine.GroupGlobal:
			return 2
		case engine.GroupFields:
			return 1
		}
		return 0
	}
	pair := make(map[[2]int]engine.GroupKind)
	var order [][2]int
	for _, n := range xt.Nodes() {
		for _, ed := range xt.Consumers(n.Name) {
			key := [2]int{opIdx[n.Name], opIdx[ed.Consumer.Name]}
			g, seen := pair[key]
			if !seen {
				order = append(order, key)
				pair[key] = ed.Sub.Group.Kind
			} else if rank(ed.Sub.Group.Kind) > rank(g) {
				pair[key] = ed.Sub.Group.Kind
			}
		}
	}
	for _, key := range order {
		w.Edges = append(w.Edges, OpEdge{From: key[0], To: key[1], Group: pair[key]})
	}

	// Input-rule flags per consumer op.
	for i := range w.Ops {
		hasIn, allGlobal, allAll := false, true, true
		for _, e := range w.Edges {
			if e.To != i {
				continue
			}
			hasIn = true
			if e.Group == engine.GroupFields {
				w.Ops[i].Keyed = true
			}
			if e.Group != engine.GroupGlobal {
				allGlobal = false
			}
			if e.Group != engine.GroupAll {
				allAll = false
			}
		}
		w.Ops[i].GlobalOnly = hasIn && allGlobal
		w.Ops[i].AllOnly = hasIn && allAll
	}

	w.opOf = make([]int, m.N())
	for i, op := range w.Ops {
		for j := 0; j < op.Count; j++ {
			w.opOf[op.First+j] = i
		}
	}
	return w, nil
}

// DefaultPar returns the probe's parallelism vector.
func (w *Workload) DefaultPar() []int {
	par := make([]int, len(w.Ops))
	for i, op := range w.Ops {
		par[i] = op.Count
	}
	return par
}

// Searchable returns the op indices whose parallelism the joint search may
// vary: not sources (per-executor event budgets), not System executors
// (profile-sized), and not globally-grouped consumers (extra executors
// would idle).
func (w *Workload) Searchable() []int {
	var out []int
	for i, op := range w.Ops {
		if op.Source || op.System || op.GlobalOnly {
			continue
		}
		out = append(out, i)
	}
	return out
}

// shares returns op i's per-executor load distribution at parallelism k:
// fractions summing to 1 (except AllOnly ops, where every executor carries
// the full unit load and fractions sum to k — total demand scales with the
// replica count, the all-grouping semantics).
func (w *Workload) shares(i, k int) []float64 {
	op := w.Ops[i]
	out := make([]float64, k)
	switch {
	case op.AllOnly:
		for j := range out {
			out[j] = 1
		}
	case op.GlobalOnly:
		out[0] = 1
	case op.Keyed && k > 1:
		// Key-share model: the probe's hottest executor holds a fraction
		// `hot` of the operator's key mass. Rehashing over k buckets scales
		// a bucket's expected share by kProbe/k, floored at the uniform
		// share (a bucket cannot hold less than its even slice on average)
		// and capped at 1. Exact at k = kProbe; monotone toward uniform as
		// k grows. The hottest bucket lands on the op's first executor so
		// the skew is visible to the serial-executor bound.
		hot := w.hotShare(i)
		s := hot * float64(op.Count) / float64(k)
		if u := 1 / float64(k); s < u {
			s = u
		}
		if s > 1 {
			s = 1
		}
		out[0] = s
		rest := (1 - s) / float64(k-1)
		for j := 1; j < k; j++ {
			out[j] = rest
		}
	default:
		for j := range out {
			out[j] = 1 / float64(k)
		}
	}
	return out
}

// hotShare returns the probe's hottest-executor compute fraction for op i.
func (w *Workload) hotShare(i int) float64 {
	op := w.Ops[i]
	var total, hot float64
	for j := 0; j < op.Count; j++ {
		c := w.Model.Compute[op.First+j]
		total += c
		if c > hot {
			hot = c
		}
	}
	if total <= 0 {
		return 1 / float64(op.Count)
	}
	return hot / total
}

// probeShares returns op i's measured per-executor compute distribution.
func (w *Workload) probeShares(i int) []float64 {
	op := w.Ops[i]
	out := make([]float64, op.Count)
	var total float64
	for j := 0; j < op.Count; j++ {
		total += w.Model.Compute[op.First+j]
	}
	for j := 0; j < op.Count; j++ {
		if total > 0 {
			out[j] = w.Model.Compute[op.First+j] / total
		} else {
			out[j] = 1 / float64(op.Count)
		}
	}
	if op.AllOnly {
		// Unit-load convention: each replica carries the full stream.
		for j := range out {
			out[j] *= float64(op.Count)
		}
	}
	return out
}

// Reparallelize re-prices the calibrated model under a new per-operator
// parallelism vector without a second probe. Each operator's calibrated
// compute/DRAM/invocation totals are split across its new executor count
// by its grouping semantics (even for shuffle, key-share skewed for fields
// consumers, replica-scaled for all-grouped consumers), and edge traffic
// is re-derived per grouping: a producer executor's output follows its
// load share, and the consumer side splits evenly (shuffle), by key share
// (fields), to executor 0 (global), or replicates (all). Operator pairs
// whose parallelism is unchanged keep the probe's measured per-executor
// edges verbatim. The identity vector returns the calibrated model itself.
func (w *Workload) Reparallelize(par []int) (*Model, error) {
	m := w.Model
	if len(par) != len(w.Ops) {
		return nil, fmt.Errorf("place: parallelism vector has %d ops, workload %d", len(par), len(w.Ops))
	}
	identity := true
	for i, op := range w.Ops {
		if par[i] < 1 {
			return nil, fmt.Errorf("place: op %q parallelism %d < 1", op.Name, par[i])
		}
		if (op.Source || op.System) && par[i] != op.Count {
			return nil, fmt.Errorf("place: op %q is fixed at parallelism %d", op.Name, op.Count)
		}
		if par[i] != op.Count {
			identity = false
		}
	}
	if identity {
		return m, nil
	}

	// New executor layout: same op order, counts from the vector.
	first := make([]int, len(w.Ops))
	n := 0
	for i := range w.Ops {
		first[i] = n
		n += par[i]
	}

	out := *m
	out.Compute = make([]float64, n)
	out.MemBytes = make([]float64, n)
	out.Invocations = make([]float64, n)
	out.OutMsgs = make([]float64, n)
	out.Edges = nil

	shares := make([][]float64, len(w.Ops))
	for i, op := range w.Ops {
		if par[i] == op.Count {
			shares[i] = w.probeShares(i)
		} else {
			shares[i] = w.shares(i, par[i])
		}
		var comp, mem, inv float64
		for j := 0; j < op.Count; j++ {
			g := op.First + j
			comp += m.Compute[g]
			mem += m.MemBytes[g]
			inv += m.Invocations[g]
		}
		if op.AllOnly {
			// Totals are per-replica under the unit-load convention.
			comp /= float64(op.Count)
			mem /= float64(op.Count)
			inv /= float64(op.Count)
		}
		if par[i] == op.Count {
			// Unchanged op: keep the probe's measured per-executor stats.
			for j := 0; j < op.Count; j++ {
				g, ng := op.First+j, first[i]+j
				out.Compute[ng] = m.Compute[g]
				out.MemBytes[ng] = m.MemBytes[g]
				out.Invocations[ng] = m.Invocations[g]
			}
			continue
		}
		for j := 0; j < par[i]; j++ {
			s := shares[i][j]
			ng := first[i] + j
			out.Compute[ng] = comp * s
			out.MemBytes[ng] = mem * s
			out.Invocations[ng] = inv * s
		}
	}

	// Edge re-derivation. Probe edges are aggregated per op pair, then
	// distributed under the pair's grouping rule; pairs with both sides
	// unchanged keep their measured per-executor detail.
	type agg struct{ bytes, msgs float64 }
	pairAgg := make(map[[2]int]agg, len(w.Edges))
	for _, e := range m.Edges {
		key := [2]int{w.opOf[e.From], w.opOf[e.To]}
		a := pairAgg[key]
		a.bytes += e.Bytes
		a.msgs += e.Msgs
		pairAgg[key] = a
	}
	addEdge := func(from, to int, bytes, msgs float64) {
		if bytes <= 0 && msgs <= 0 {
			return
		}
		out.Edges = append(out.Edges, Edge{From: from, To: to, Bytes: bytes, Msgs: msgs})
		out.OutMsgs[from] += msgs
	}
	for _, oe := range w.Edges {
		P, C := w.Ops[oe.From], w.Ops[oe.To]
		kp, kc := par[oe.From], par[oe.To]
		if kp == P.Count && kc == C.Count {
			// Copy measured executor edges for this pair (indices remapped).
			for _, e := range m.Edges {
				if w.opOf[e.From] == oe.From && w.opOf[e.To] == oe.To {
					addEdge(first[oe.From]+(e.From-P.First), first[oe.To]+(e.To-C.First), e.Bytes, e.Msgs)
				}
			}
			continue
		}
		a := pairAgg[[2]int{oe.From, oe.To}]
		if a.bytes <= 0 && a.msgs <= 0 {
			continue
		}
		// Producer split: output follows the producer's load distribution
		// (selectivity is a per-tuple property, invariant to the split).
		pShare := shares[oe.From]
		if P.AllOnly {
			// Replicas each see the full stream but emit the same logical
			// output once per replica: normalize to fractions of the pair
			// total so replica-count changes on the producer side scale
			// traffic with the replica count.
			pShare = append([]float64(nil), pShare...)
			var t float64
			for _, s := range pShare {
				t += s
			}
			for j := range pShare {
				pShare[j] /= t / (float64(kp) / float64(P.Count))
			}
		}
		switch oe.Group {
		case engine.GroupGlobal:
			for p := 0; p < kp; p++ {
				addEdge(first[oe.From]+p, first[oe.To], a.bytes*pShare[p], a.msgs*pShare[p])
			}
		case engine.GroupAll:
			// Each consumer executor receives the full producer output; the
			// probe aggregate counted C.Count replicas of it.
			perRep := 1 / float64(C.Count)
			for p := 0; p < kp; p++ {
				for c := 0; c < kc; c++ {
					addEdge(first[oe.From]+p, first[oe.To]+c, a.bytes*pShare[p]*perRep, a.msgs*pShare[p]*perRep)
				}
			}
		default: // shuffle, fields: consumer side follows its load shares
			cShare := shares[oe.To]
			if C.AllOnly {
				cShare = evenShares(kc)
			}
			for p := 0; p < kp; p++ {
				for c := 0; c < kc; c++ {
					addEdge(first[oe.From]+p, first[oe.To]+c, a.bytes*pShare[p]*cShare[c], a.msgs*pShare[p]*cShare[c])
				}
			}
		}
	}
	return &out, nil
}

func evenShares(k int) []float64 {
	out := make([]float64, k)
	for i := range out {
		out[i] = 1 / float64(k)
	}
	return out
}

// JointCandidate is one scored (parallelism vector, socket assignment)
// configuration. Assign indexes executors of the RESCALED layout (op
// order unchanged, counts from Par), in canonical socket labels.
type JointCandidate struct {
	Par    []int
	Assign []int
	// Score is the predicted bottleneck in cycles (lower is better),
	// comparable across vectors: every model derives from the same probe.
	Score float64
}

// JointOptions tunes SearchJoint. The zero value picks usable defaults.
type JointOptions struct {
	// TopM is how many joint configurations to return (default 6).
	TopM int
	// TopVectors is how many screened vectors get the full assignment
	// branch-and-bound (default 6); the rest stop at the greedy screen.
	TopVectors int
	// MaxPar caps any operator's parallelism (default 2x its probe value,
	// never above the machine's core count).
	MaxPar int
	// VectorBudget bounds enumerated vectors (default 4096); enumeration
	// order is deterministic, so a truncation is reproducible.
	VectorBudget int
	// Search tunes the per-vector assignment search. Defaults are reduced
	// from the placement-only search (TopM 4, NodeBudget 8000, SplitDepth
	// 2): the joint search runs many inner searches, and the screened
	// vectors' greedy incumbents already bound them tightly.
	Search SearchOptions
}

func (o *JointOptions) fill(w *Workload) {
	if o.TopM <= 0 {
		o.TopM = 6
	}
	if o.TopVectors <= 0 {
		o.TopVectors = 6
	}
	if o.MaxPar <= 0 {
		o.MaxPar = w.Model.Sockets * w.Model.CoresPerSocket
	}
	if o.VectorBudget <= 0 {
		o.VectorBudget = 4096
	}
	if o.Search.TopM <= 0 {
		o.Search.TopM = 4
	}
	if o.Search.NodeBudget <= 0 {
		o.Search.NodeBudget = 8000
	}
	if o.Search.SplitDepth <= 0 {
		o.Search.SplitDepth = 2
	}
}

// JointResult is the outcome of one joint search.
type JointResult struct {
	// Candidates are the top joint configurations, best first.
	Candidates []JointCandidate
	// DefaultPar is the probe's parallelism vector (always screened, so
	// the joint optimum can never rank below the best fixed-parallelism
	// plan under the same model).
	DefaultPar []int
	// DefaultScore is the best bottleneck score found at DefaultPar (the
	// default vector is always fully searched). Verification flows use it
	// as the gate: a joint candidate is only worth simulating when its
	// score beats this by more than the model's resolution.
	DefaultScore float64
	// VectorsScreened counts parallelism vectors enumerated and scored
	// analytically; VectorsSearched those that got the full inner search.
	VectorsScreened int
	VectorsSearched int
}

// vectorChoices returns the candidate parallelism values for op i:
// halve / keep / double, clamped to [1, MaxPar], deduplicated, ascending.
func (w *Workload) vectorChoices(i, maxPar int) []int {
	k := w.Ops[i].Count
	cand := []int{k / 2, k, 2 * k}
	var out []int
	for _, c := range cand {
		if c < 1 {
			c = 1
		}
		if c > maxPar {
			c = maxPar
		}
		dup := false
		for _, o := range out {
			dup = dup || o == c
		}
		if !dup {
			out = append(out, c)
		}
	}
	sort.Ints(out)
	return out
}

// vectorFloor is an admissible lower bound on any assignment's bottleneck
// under vector par, computed from op totals alone (no model rebuild, no
// edges: crossing penalties are nonnegative, so dropping them keeps the
// bound admissible). It prunes the parallelism axis the way the
// branch-and-bound's incremental bound prunes the assignment axis.
func (w *Workload) vectorFloor(par []int) float64 {
	m := w.Model
	var total, mem, serial float64
	for i, op := range w.Ops {
		var comp, opMem float64
		for j := 0; j < op.Count; j++ {
			comp += m.Compute[op.First+j]
			opMem += m.MemBytes[op.First+j]
		}
		scale := 1.0
		if op.AllOnly {
			// Per-replica totals scale with the replica count.
			scale = float64(par[i]) / float64(op.Count)
		}
		total += comp * scale
		mem += opMem * scale
		sh := w.shares(i, par[i])
		if par[i] == op.Count {
			sh = w.probeShares(i)
		}
		maxShare := 0.0
		for _, s := range sh {
			maxShare = maxf(maxShare, s)
		}
		if op.AllOnly {
			serial = maxf(serial, comp/float64(op.Count)*maxShare)
		} else {
			serial = maxf(serial, comp*maxShare)
		}
	}
	b := total / float64(m.Sockets*m.CoresPerSocket)
	b = maxf(b, serial)
	b = maxf(b, mem/(float64(m.Sockets)*m.LocalBW))
	return b
}

// SearchJoint enumerates per-operator parallelism vectors (halve / keep /
// double per searchable op) jointly with socket assignments: every vector
// is lower-bounded and screened with a greedy assignment on its re-priced
// model, and the top screened vectors get the deterministic assignment
// branch-and-bound. Results are deterministic and worker-count-independent
// (the only parallelism is the inner search's, which is itself
// worker-count-independent).
func (w *Workload) SearchJoint(opts JointOptions) (*JointResult, error) {
	opts.fill(w)
	res := &JointResult{DefaultPar: w.DefaultPar()}

	// Enumerate vectors depth-first over searchable ops, deterministic
	// lexicographic order, budget-bounded.
	idx := w.Searchable()
	vectors := [][]int{res.DefaultPar}
	var enum func(d int, cur []int)
	enum = func(d int, cur []int) {
		if len(vectors) >= opts.VectorBudget {
			return
		}
		if d == len(idx) {
			identity := true
			for i := range cur {
				identity = identity && cur[i] == w.Ops[i].Count
			}
			if !identity {
				vectors = append(vectors, append([]int(nil), cur...))
			}
			return
		}
		for _, c := range w.vectorChoices(idx[d], opts.MaxPar) {
			cur[idx[d]] = c
			enum(d+1, cur)
		}
		cur[idx[d]] = w.Ops[idx[d]].Count
	}
	enum(0, w.DefaultPar())

	// Screen: admissible floor first (cheap), greedy assignment on the
	// re-priced model when the floor might make the searched set.
	type screened struct {
		par    []int
		model  *Model
		greedy Candidate
		execs  int
	}
	var pool []screened
	worstKept := func() float64 {
		if len(pool) < opts.TopVectors {
			return 1e308
		}
		scores := make([]float64, len(pool))
		for i, s := range pool {
			scores[i] = s.greedy.Score
		}
		sort.Float64s(scores)
		return scores[opts.TopVectors-1]
	}
	for vi, par := range vectors {
		res.VectorsScreened++
		// The default vector is always screened in full: it anchors the
		// comparison against the fixed-parallelism search.
		if vi > 0 && w.vectorFloor(par) > worstKept() {
			continue
		}
		m, err := w.Reparallelize(par)
		if err != nil {
			return nil, err
		}
		execs := 0
		for _, p := range par {
			execs += p
		}
		pool = append(pool, screened{par: par, model: m, greedy: m.greedy(), execs: execs})
	}

	// Rank screened vectors; ties prefer fewer executors, then the
	// lexicographically smallest vector.
	sort.SliceStable(pool, func(i, j int) bool {
		if pool[i].greedy.Score != pool[j].greedy.Score {
			return pool[i].greedy.Score < pool[j].greedy.Score
		}
		if pool[i].execs != pool[j].execs {
			return pool[i].execs < pool[j].execs
		}
		return Less(pool[i].par, pool[j].par)
	})
	searched := pool
	if len(searched) > opts.TopVectors {
		searched = searched[:opts.TopVectors]
	}
	// The default vector is always searched in full, even when its greedy
	// score misses the cut: it anchors the never-worse-than-fixed
	// guarantee (the joint optimum cannot rank below the best
	// fixed-parallelism plan under the same model).
	hasDefault := false
	for _, s := range searched {
		hasDefault = hasDefault || equalInts(s.par, res.DefaultPar)
	}
	if !hasDefault {
		for _, s := range pool {
			if equalInts(s.par, res.DefaultPar) {
				searched = append(searched, s)
				break
			}
		}
	}

	// Full assignment search per kept vector; the greedy incumbent seeds
	// the bound. All candidates land in one ranked pool: scores are
	// probe-anchored cycles, comparable across vectors.
	var all []JointCandidate
	for _, s := range searched {
		res.VectorsSearched++
		inner := opts.Search
		inner.Seeds = append([][]int(nil), opts.Search.Seeds...)
		inner.Seeds = append(inner.Seeds, s.greedy.Assign)
		for _, c := range s.model.Search(inner) {
			all = append(all, JointCandidate{Par: s.par, Assign: c.Assign, Score: c.Score})
		}
	}
	res.DefaultScore = math.Inf(1)
	for _, c := range all {
		if equalInts(c.Par, res.DefaultPar) && c.Score < res.DefaultScore {
			res.DefaultScore = c.Score
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score < all[j].Score
		}
		ei, ej := len(all[i].Assign), len(all[j].Assign)
		if ei != ej {
			return ei < ej
		}
		if !equalInts(all[i].Par, all[j].Par) {
			return Less(all[i].Par, all[j].Par)
		}
		return Less(all[i].Assign, all[j].Assign)
	})
	seen := make(map[string]bool, len(all))
	for _, c := range all {
		key := assignKey(c.Par) + "|" + assignKey(c.Assign)
		if seen[key] {
			continue
		}
		seen[key] = true
		res.Candidates = append(res.Candidates, c)
		if len(res.Candidates) == opts.TopM {
			break
		}
	}
	return res, nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
