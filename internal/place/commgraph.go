// Package core implements the paper's two optimizations for stream
// processing on multi-socket machines (§VI):
//
//   - Non-blocking tuple batching (Algorithm 1) is implemented inside the
//     engine's output collector (package engine routes each invocation's
//     emissions as per-destination batches); this package provides the
//     policy layer: choosing the batch size and analyzing its effect.
//
//   - NUMA-aware executor placement: the communication-cost model of
//     Definition 2 (Equation 1), the mapping of an execution graph to a
//     weighted graph (Definition 4), a min-k-cut solver, and a
//     capacity-constrained partitioner that produces placements for
//     k = 1..#sockets for performance-based selection, as §VI-B describes.
package place

import (
	"fmt"

	"streamscale/internal/engine"
)

// CommGraph is an undirected weighted graph over executors; edge weights
// are the estimated communication volumes R*Trans(w,w') of Definition 2.
type CommGraph struct {
	// Names labels each vertex "op[i]".
	Names []string
	// Ops maps each vertex to its operator name.
	Ops []string
	// W is the symmetric weight matrix.
	W [][]float64
	// Load estimates each executor's CPU demand (input rate x per-tuple
	// computation), used by load-balanced placement. A heavy operator like
	// TM's map-matcher must not be count-balanced onto one socket.
	Load []float64
}

// TotalLoad returns the summed CPU demand estimate.
func (g *CommGraph) TotalLoad() float64 {
	var t float64
	for _, l := range g.Load {
		t += l
	}
	return t
}

// N returns the vertex count.
func (g *CommGraph) N() int { return len(g.Names) }

// TotalWeight returns the sum of all edge weights.
func (g *CommGraph) TotalWeight() float64 {
	var t float64
	for i := 0; i < g.N(); i++ {
		for j := i + 1; j < g.N(); j++ {
			t += g.W[i][j]
		}
	}
	return t
}

// CutCost evaluates Equation 1 for an assignment of vertices to partitions:
// the total weight of edges whose endpoints are placed on different
// sockets. R (the remote-access penalty per unit) is already folded into
// the weights.
func (g *CommGraph) CutCost(assign []int) float64 {
	var c float64
	for i := 0; i < g.N(); i++ {
		for j := i + 1; j < g.N(); j++ {
			if assign[i] != assign[j] {
				c += g.W[i][j]
			}
		}
	}
	return c
}

// BuildCommGraph maps a topology's execution graph to a weighted graph
// (the Definition 4 mapping): one vertex per executor, one edge per
// producer-consumer pair, weighted by the estimated bytes flowing between
// that pair. Flows are estimated by propagating each source's unit event
// rate through operator selectivities and dividing across executor pairs
// according to the grouping strategy.
//
// The topology is first expanded for the system profile, so Storm-style
// acker executors participate in placement like any other executor.
func BuildCommGraph(t *engine.Topology, sys engine.SystemProfile) (*CommGraph, error) {
	xt, err := engine.BuildExecTopology(t, sys)
	if err != nil {
		return nil, err
	}

	// Vertex numbering follows the execution graph's global order.
	refs := engine.ExecGraph(xt)
	g := &CommGraph{W: make([][]float64, len(refs))}
	base := map[string]int{} // operator -> first global index
	for _, r := range refs {
		g.Names = append(g.Names, fmt.Sprintf("%s[%d]", r.Op, r.Index))
		g.Ops = append(g.Ops, r.Op)
		if _, ok := base[r.Op]; !ok {
			base[r.Op] = r.Global
		}
	}
	for i := range g.W {
		g.W[i] = make([]float64, len(refs))
	}

	rates := operatorRates(xt)

	// Per-executor CPU demand: the operator's input rate split across its
	// executors, times its per-tuple computation estimate.
	g.Load = make([]float64, len(refs))
	for _, n := range xt.Nodes() {
		perExec := rates[n.Name] / float64(n.Parallelism)
		cost := float64(n.Profile.UopsPerTuple + 1500 + 60*n.Profile.StateAccessesPerTuple)
		for i := 0; i < n.Parallelism; i++ {
			g.Load[base[n.Name]+i] = perExec * cost
		}
	}

	for _, n := range xt.Nodes() {
		outRate := rates[n.Name] * n.Profile.EffSelectivity()
		bytesPerTuple := float64(n.Profile.EffTupleBytes())
		for _, ed := range xt.Consumers(n.Name) {
			c := ed.Consumer
			// Total bytes/s on this edge, split across producer executors.
			edgeBytes := outRate * bytesPerTuple
			if ed.Sub.Stream == engine.AckStream {
				// Ack messages are small and proportional to tuple rate.
				edgeBytes = rates[n.Name] * 48
			}
			perProducer := edgeBytes / float64(n.Parallelism)
			for pi := 0; pi < n.Parallelism; pi++ {
				p := base[n.Name] + pi
				switch ed.Sub.Group.Kind {
				case engine.GroupGlobal:
					q := base[c.Name]
					g.W[p][q] += perProducer
					g.W[q][p] += perProducer
				case engine.GroupAll:
					for ci := 0; ci < c.Parallelism; ci++ {
						q := base[c.Name] + ci
						g.W[p][q] += perProducer
						g.W[q][p] += perProducer
					}
				default: // shuffle, fields: uniform split on average
					share := perProducer / float64(c.Parallelism)
					for ci := 0; ci < c.Parallelism; ci++ {
						q := base[c.Name] + ci
						g.W[p][q] += share
						g.W[q][p] += share
					}
				}
			}
		}
	}
	return g, nil
}

// operatorRates propagates unit source rates through the topology,
// yielding each operator's input event rate.
func operatorRates(t *engine.Topology) map[string]float64 {
	rates := map[string]float64{}
	for _, n := range t.Nodes() {
		if n.IsSource() {
			rates[n.Name] = 1.0
		}
	}
	// The graph is a DAG in practice; iterate to a fixed point with a
	// bounded pass count to stay safe on accidental cycles.
	for pass := 0; pass < len(t.Nodes())+1; pass++ {
		changed := false
		for _, n := range t.Nodes() {
			if n.IsSource() {
				continue
			}
			var in float64
			for _, sub := range n.Subs {
				p := t.Node(sub.Operator)
				if p == nil {
					continue
				}
				pr := rates[p.Name] * p.Profile.EffSelectivity()
				if sub.Stream == engine.AckStream {
					pr = rates[p.Name]
				}
				if sub.Group.Kind == engine.GroupAll {
					pr *= float64(n.Parallelism)
				}
				in += pr
			}
			if in != rates[n.Name] {
				rates[n.Name] = in
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return rates
}
