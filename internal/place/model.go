// Package place implements model-guided NUMA placement search: a
// calibrated analytical cost model over per-executor compute demand,
// remote-memory penalties, and interconnect bandwidth, and a deterministic
// branch-and-bound search over full per-executor socket assignments
// (BriskStream's relative-rate approach, built on this repo's cycle-exact
// probe simulations instead of hardware profiling runs).
//
// The model is calibrated from ONE profiled probe simulation per
// (app, system, batch): engine.Result's per-executor Table II cost vectors
// give each executor's cycle demand (with the probe's incidental
// remote-DRAM stalls converted to their local-equivalent), and the
// per-edge traffic account gives the bytes that cross sockets under any
// candidate assignment. Predicting a plan then costs microseconds instead
// of a full simulation; only the top-ranked plans are verified exactly.
package place

import (
	"fmt"
	"math"

	"streamscale/internal/engine"
	"streamscale/internal/hw"
)

// Edge is one producer→consumer executor edge's delivered traffic over
// the probe run (executors by global index, bytes of tuple payload).
type Edge struct {
	From, To int
	Bytes    float64
	Msgs     float64
}

// Model is the calibrated analytical cost model of one workload. All
// cycle quantities are totals over the probe run, so predicted bottleneck
// cycles are directly comparable to the probe's elapsed cycles and convert
// to predicted throughput via SourceEvents and ClockHz.
type Model struct {
	Sockets        int
	CoresPerSocket int
	ClockHz        int64

	// LocalBW and QPIBW are bytes per cycle (per socket / per link
	// direction); RemotePenalty is the extra consumer-side stall cycles
	// per byte when a tuple dereference crosses sockets.
	LocalBW       float64
	QPIBW         float64
	RemotePenalty float64
	// CrossMsgCycles is an optional consumer-side fixed cost per CROSSING
	// message (the queue-slot and header line transfers a crossing
	// delivery pays regardless of payload size — what makes small control
	// messages like acks expensive across sockets). Calibrate leaves it
	// zero, so the placement search's ranking (and the default report) is
	// unchanged; the fast-evaluation tier sets it to two remote DRAM
	// latencies (queue slot line + index line each round-trip), where
	// per-byte pricing alone underprices ack-heavy cross-socket traffic.
	// WithBatch scales it with 1/S (batching coalesces messages);
	// Retarget re-prices it by the remote-latency ratio.
	CrossMsgCycles float64

	// Compute is each executor's local-equivalent cycle demand: its probe
	// cost total with remote LLC-miss stalls re-priced at local latency.
	Compute []float64
	// MemBytes is each executor's DRAM traffic (LLC-miss line transfers).
	MemBytes []float64
	// Invocations and OutMsgs drive the analytical batch-size adjustment.
	Invocations []float64
	OutMsgs     []float64

	Edges []Edge

	// SourceEvents and Batch identify what the probe measured.
	SourceEvents int64
	Batch        int

	// invokeCycles and deliveryCycles are the per-invocation and
	// per-message framework costs used by WithBatch.
	invokeCycles   float64
	deliveryCycles float64
	// interferenceCycles is the per-invocation scheduling delay an
	// executor suffers when its socket runs more executors than cores.
	interferenceCycles float64
	// lineBytes, localLat, and cyclesPerUop record the calibration spec's
	// scalars so Retarget can re-price the model onto a different machine
	// without a second probe.
	lineBytes    float64
	localLat     float64
	cyclesPerUop float64
}

// oversubInterferenceCycles is the modeled per-invocation cost of running
// on a socket with more executors than hardware cores: under the
// simulator's CFS-style scheduler (context switch 7,200 cycles, wake-time
// placement), a hot executor on an oversubscribed socket loses wake-to-run
// delays amortizing to ~200 cycles per invocation. Calibrated against
// probe simulations; without this term every assignment of a workload with
// one dominant executor scores identically and the ranking degenerates.
//
// oversubInterferenceCap bounds the term at a fraction of the executor's
// own compute: a saturated executor drains many queued tuples per wakeup,
// so its loss is preemption-rate bound (~8% of its runtime), not
// per-invocation. The cap keeps aggregate-bound crowding plans — whose
// score is the socket compute-over-cores bound, which interference never
// touches — competitive, matching the simulator, while still breaking the
// serial-bottleneck tie the term exists for. At the fd calibration point
// the two expressions cross (200 cyc x 10,000 invocations vs 8% of 2.5e7
// compute cycles), so the cap is inert exactly where the per-invocation
// slope was measured.
const (
	oversubInterferenceCycles = 200.0
	oversubInterferenceCap    = 0.08
)

// N returns the executor count.
func (m *Model) N() int { return len(m.Compute) }

// Calibrate builds the cost model from a probe simulation's result.
// res.Executors must be in global-index order (engine.RunSim emits them
// that way) and res must carry the per-executor cost vectors and edge
// traffic of a simulated run.
func Calibrate(res *engine.Result, spec hw.MachineSpec, sys engine.SystemProfile, batch int) (*Model, error) {
	n := len(res.Executors)
	if n == 0 {
		return nil, fmt.Errorf("place: probe result has no executor stats")
	}
	if len(res.Edges) == 0 && n > 1 {
		return nil, fmt.Errorf("place: probe result has no edge traffic account")
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("place: calibration spec: %w", err)
	}
	if batch <= 0 {
		batch = 1
	}
	local := float64(spec.Latency.LocalDRAM)
	remote := float64(spec.Latency.RemoteDRAM)
	line := float64(spec.LLC.BlockBytes)
	m := &Model{
		Sockets:            spec.Sockets,
		CoresPerSocket:     spec.CoresPerSocket,
		ClockHz:            spec.ClockHz,
		LocalBW:            spec.LocalBWBytesPerCycle,
		QPIBW:              spec.QPIBWBytesPerCycle,
		RemotePenalty:      (remote - local) / line,
		Compute:            make([]float64, n),
		MemBytes:           make([]float64, n),
		Invocations:        make([]float64, n),
		OutMsgs:            make([]float64, n),
		SourceEvents:       res.SourceEvents,
		Batch:              batch,
		invokeCycles:       float64(sys.UopsPerInvoke) * spec.CyclesPerUop,
		deliveryCycles:     float64(sys.DeliveryUops) * spec.CyclesPerUop,
		interferenceCycles: oversubInterferenceCycles,
		lineBytes:          line,
		localLat:           local,
		cyclesPerUop:       spec.CyclesPerUop,
	}
	for i := range res.Executors {
		e := &res.Executors[i]
		total := float64(e.Costs.Total())
		rem := float64(e.Costs[hw.BeLLCRemote])
		loc := float64(e.Costs[hw.BeLLCLocal])
		// Local-equivalent demand: the probe's incidental cross-socket
		// stalls re-priced as if served locally. Candidate assignments add
		// their own remote penalties back per crossing edge.
		m.Compute[i] = total - rem + rem*(local/remote)
		m.MemBytes[i] = (loc/local + rem/remote) * line
		m.Invocations[i] = float64(e.Invocations)
	}
	m.Edges = make([]Edge, 0, len(res.Edges))
	for _, ed := range res.Edges {
		if ed.From < 0 || ed.From >= n || ed.To < 0 || ed.To >= n {
			return nil, fmt.Errorf("place: edge %d->%d outside executor range %d", ed.From, ed.To, n)
		}
		m.Edges = append(m.Edges, Edge{
			From: ed.From, To: ed.To,
			Bytes: float64(ed.Bytes), Msgs: float64(ed.Msgs),
		})
		m.OutMsgs[ed.From] += float64(ed.Msgs)
	}
	return m, nil
}

// WithBatch returns a model adjusted to predict the workload at a new
// batch size without a second probe: invocation and per-message delivery
// overheads scale with 1/batch (Algorithm 1 batching amortizes the
// framework's per-dispatch work), while per-byte and per-tuple costs are
// unchanged. Calibrated from a batch-1 probe this reproduces the batching
// gain analytically; the verified plans are still simulated at the real
// batch size, so model error here only affects ranking.
func (m *Model) WithBatch(batch int) *Model {
	if batch <= 0 {
		batch = 1
	}
	if batch == m.Batch {
		return m
	}
	out := *m
	out.Batch = batch
	out.Compute = make([]float64, m.N())
	ratio := 1 - float64(m.Batch)/float64(batch)
	if ratio < 0 {
		ratio = 0 // coarser probe than target: no savings modeled
	}
	for i, c := range m.Compute {
		saved := m.Invocations[i]*ratio*m.invokeCycles + m.OutMsgs[i]*ratio*m.deliveryCycles
		if saved > 0.9*c {
			saved = 0.9 * c // overheads never exceed the executor's total
		}
		out.Compute[i] = c - saved
	}
	// Batching coalesces deliveries, so the probe's per-message crossing
	// cost amortizes the same way the delivery overhead does.
	out.CrossMsgCycles = m.CrossMsgCycles * float64(m.Batch) / float64(batch)
	return &out
}

// Retarget returns a model re-priced for a different machine spec without
// a second probe. Per-executor µop work is clock-rate invariant (cycles
// per µop comes from the spec), so only the memory-stall component moves:
// each DRAM line the probe observed is re-priced at the new local latency,
// and the framework per-invocation/per-message costs rescale with the new
// retirement rate. Bandwidths, socket shape, and the remote penalty come
// from the new spec. The probe's traffic volumes (lines, edge bytes,
// invocation counts) are workload properties and carry over unchanged;
// capacity effects the probe never observed (a smaller LLC missing more)
// are NOT modeled, which is why retargeted estimates carry extra
// uncertainty in the fast tier.
func (m *Model) Retarget(spec hw.MachineSpec) *Model {
	local := float64(spec.Latency.LocalDRAM)
	remote := float64(spec.Latency.RemoteDRAM)
	line := float64(spec.LLC.BlockBytes)
	out := *m
	out.Sockets = spec.Sockets
	out.CoresPerSocket = spec.CoresPerSocket
	out.ClockHz = spec.ClockHz
	out.LocalBW = spec.LocalBWBytesPerCycle
	out.QPIBW = spec.QPIBWBytesPerCycle
	out.RemotePenalty = (remote - local) / line
	if oldRemote := m.localLat + m.RemotePenalty*m.lineBytes; m.CrossMsgCycles != 0 && oldRemote > 0 {
		out.CrossMsgCycles = m.CrossMsgCycles * remote / oldRemote
	}
	if m.cyclesPerUop > 0 {
		r := spec.CyclesPerUop / m.cyclesPerUop
		out.invokeCycles = m.invokeCycles * r
		out.deliveryCycles = m.deliveryCycles * r
	}
	out.Compute = make([]float64, m.N())
	out.MemBytes = make([]float64, m.N())
	dLat := local - m.localLat
	for i := range m.Compute {
		var lines float64
		if m.lineBytes > 0 {
			lines = m.MemBytes[i] / m.lineBytes
		}
		c := m.Compute[i] + lines*dLat
		// A latency drop can never erase an executor's non-memory work:
		// keep at least the compute that was not stall-priced.
		if floor := 0.1 * m.Compute[i]; c < floor {
			c = floor
		}
		out.Compute[i] = c
		out.MemBytes[i] = lines * line
	}
	out.lineBytes = line
	out.localLat = local
	out.cyclesPerUop = spec.CyclesPerUop
	return &out
}

// Bottleneck returns the predicted bottleneck cycles of one full
// assignment (executor global index -> socket): the max over every
// executor's serial demand (one thread cannot split across cores), every
// socket's compute demand spread over its cores, every socket's DRAM
// traffic against local bandwidth, and every directed socket pair's
// crossing traffic against one QPI link. Lower is better; the minimum
// over assignments is the model's choice.
func (m *Model) Bottleneck(assign []int) float64 {
	n := m.N()
	if len(assign) != n {
		panic(fmt.Sprintf("place: assignment length %d != %d executors", len(assign), n))
	}
	perExec := make([]float64, n)
	copy(perExec, m.Compute)
	sockCompute := make([]float64, m.Sockets)
	sockMem := make([]float64, m.Sockets)
	sockCount := make([]int, m.Sockets)
	qpi := make([]float64, m.Sockets*m.Sockets)
	for _, e := range m.Edges {
		if assign[e.From] != assign[e.To] {
			perExec[e.To] += m.RemotePenalty*e.Bytes + m.CrossMsgCycles*e.Msgs
			qpi[assign[e.From]*m.Sockets+assign[e.To]] += e.Bytes
		}
	}
	for i, s := range assign {
		sockCompute[s] += perExec[i]
		sockMem[s] += m.MemBytes[i]
		sockCount[s]++
	}
	// Oversubscription interference: a socket with more executors than
	// cores time-shares, and every resident pays scheduling delays on each
	// invocation (kept out of the socket compute aggregate: switch costs
	// delay the executor, they do not add throughput-relevant core work).
	for i, s := range assign {
		if sockCount[s] > m.CoresPerSocket {
			perExec[i] += m.interference(i)
		}
	}
	var b float64
	for _, c := range perExec {
		b = maxf(b, c)
	}
	cores := float64(m.CoresPerSocket)
	for s := 0; s < m.Sockets; s++ {
		b = maxf(b, sockCompute[s]/cores)
		b = maxf(b, sockMem[s]/m.LocalBW)
	}
	for _, bytes := range qpi {
		b = maxf(b, bytes/m.QPIBW)
	}
	return b
}

// interference returns executor i's total scheduling-delay cycles when
// its socket is oversubscribed. Batching reduces invocation counts, so the
// probe's batch-1 invocation total scales down with the model's batch; the
// cap (a fraction of the executor's own compute) is batch-independent.
func (m *Model) interference(i int) float64 {
	d := m.interferenceCycles * m.Invocations[i] / float64(m.Batch)
	if lim := oversubInterferenceCap * m.Compute[i]; d > lim {
		return lim
	}
	return d
}

// BottleneckOn is Bottleneck generalized to a machine slice: the first
// `sockets` sockets are enabled (0 or out of range = all), and a nonzero
// `cores` further restricts the slice to the machine's first n cores, so
// the last covered socket may run only a few (exactly the simulator's
// SimConfig.Sockets/Cores semantics). Per-socket compute spreads over that
// socket's enabled cores only, and the oversubscription interference term
// triggers against the same reduced count; DRAM bandwidth is per socket
// and does not shrink with disabled cores. An executor assigned to a
// socket with no enabled cores is infeasible and scores +Inf.
// BottleneckOn(a, 0, 0) equals Bottleneck(a) (pinned by test).
func (m *Model) BottleneckOn(assign []int, sockets, cores int) float64 {
	n := m.N()
	if len(assign) != n {
		panic(fmt.Sprintf("place: assignment length %d != %d executors", len(assign), n))
	}
	if sockets <= 0 || sockets > m.Sockets {
		sockets = m.Sockets
	}
	enabled := sockets * m.CoresPerSocket
	if cores > 0 && cores < enabled {
		enabled = cores
	}
	coresOn := func(s int) int {
		c := enabled - s*m.CoresPerSocket
		if c > m.CoresPerSocket {
			c = m.CoresPerSocket
		}
		if c < 0 {
			c = 0
		}
		return c
	}
	perExec := make([]float64, n)
	copy(perExec, m.Compute)
	sockCompute := make([]float64, m.Sockets)
	sockMem := make([]float64, m.Sockets)
	sockCount := make([]int, m.Sockets)
	qpi := make([]float64, m.Sockets*m.Sockets)
	for _, s := range assign {
		if s < 0 || s >= m.Sockets || coresOn(s) == 0 {
			return math.Inf(1)
		}
	}
	for _, e := range m.Edges {
		if assign[e.From] != assign[e.To] {
			perExec[e.To] += m.RemotePenalty*e.Bytes + m.CrossMsgCycles*e.Msgs
			qpi[assign[e.From]*m.Sockets+assign[e.To]] += e.Bytes
		}
	}
	for i, s := range assign {
		sockCompute[s] += perExec[i]
		sockMem[s] += m.MemBytes[i]
		sockCount[s]++
	}
	for i, s := range assign {
		if sockCount[s] > coresOn(s) {
			perExec[i] += m.interference(i)
		}
	}
	var b float64
	for _, c := range perExec {
		b = maxf(b, c)
	}
	for s := 0; s < m.Sockets; s++ {
		if c := coresOn(s); c > 0 {
			b = maxf(b, sockCompute[s]/float64(c))
		}
		b = maxf(b, sockMem[s]/m.LocalBW)
	}
	for _, bytes := range qpi {
		b = maxf(b, bytes/m.QPIBW)
	}
	return b
}

// PredictThroughputOn converts a slice-aware predicted bottleneck to
// events per second.
func (m *Model) PredictThroughputOn(assign []int, sockets, cores int) float64 {
	b := m.BottleneckOn(assign, sockets, cores)
	if b <= 0 || math.IsInf(b, 1) {
		return 0
	}
	return float64(m.SourceEvents) * float64(m.ClockHz) / b
}

// PredictThroughput converts a predicted bottleneck to events per second.
func (m *Model) PredictThroughput(assign []int) float64 {
	b := m.Bottleneck(assign)
	if b <= 0 {
		return 0
	}
	return float64(m.SourceEvents) * float64(m.ClockHz) / b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
