package place

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"streamscale/internal/engine"
)

// --- GlobalMinCut -----------------------------------------------------

func TestGlobalMinCutTwoClusters(t *testing.T) {
	// Two triangles joined by one light edge: the min cut is that edge.
	w := zeros(6)
	link := func(a, b int, x float64) { w[a][b], w[b][a] = x, x }
	link(0, 1, 5)
	link(1, 2, 5)
	link(0, 2, 5)
	link(3, 4, 5)
	link(4, 5, 5)
	link(3, 5, 5)
	link(2, 3, 1)

	cost, side := GlobalMinCut(w)
	if cost != 1 {
		t.Fatalf("min cut = %v, want 1", cost)
	}
	if len(side) != 3 {
		t.Fatalf("cut side size = %d, want 3", len(side))
	}
	in := map[int]bool{}
	for _, v := range side {
		in[v] = true
	}
	if in[0] != in[1] || in[1] != in[2] || in[0] == in[3] {
		t.Fatalf("cut separates the wrong vertices: %v", side)
	}
}

func TestGlobalMinCutStar(t *testing.T) {
	// A star: min cut isolates the lightest leaf.
	w := zeros(4)
	w[0][1], w[1][0] = 3, 3
	w[0][2], w[2][0] = 7, 7
	w[0][3], w[3][0] = 9, 9
	cost, side := GlobalMinCut(w)
	if cost != 3 {
		t.Fatalf("min cut = %v, want 3", cost)
	}
	if len(side) != 1 && len(side) != 3 {
		t.Fatalf("unexpected side %v", side)
	}
}

// Property: Stoer-Wagner never reports a cut heavier than any single-vertex
// cut, and the reported weight matches the weight of the returned side.
func TestGlobalMinCutProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		w := zeros(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				x := float64(rng.Intn(10))
				w[i][j], w[j][i] = x, x
			}
		}
		cost, side := GlobalMinCut(w)
		// Verify reported cost matches the side.
		assign := make([]int, n)
		for _, v := range side {
			assign[v] = 1
		}
		if len(side) == 0 || len(side) == n {
			return false
		}
		if math.Abs(cutWeight(w, assign)-cost) > 1e-9 {
			return false
		}
		// Compare against each single-vertex cut.
		for v := 0; v < n; v++ {
			var c float64
			for u := 0; u < n; u++ {
				c += w[v][u]
			}
			if cost > c+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Exhaustive check on small graphs: Stoer-Wagner is exact.
func TestGlobalMinCutExactSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(4) // 3..6 vertices
		w := zeros(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				x := float64(rng.Intn(7))
				w[i][j], w[j][i] = x, x
			}
		}
		got, _ := GlobalMinCut(w)
		want := math.Inf(1)
		for mask := 1; mask < (1<<n)-1; mask++ {
			assign := make([]int, n)
			for v := 0; v < n; v++ {
				if mask&(1<<v) != 0 {
					assign[v] = 1
				}
			}
			if c := cutWeight(w, assign); c < want {
				want = c
			}
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: min cut %v, brute force %v", trial, got, want)
		}
	}
}

// --- MinKCut ----------------------------------------------------------

func TestMinKCutProducesKComponents(t *testing.T) {
	w := zeros(9)
	for c := 0; c < 3; c++ { // three cliques of 3
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				a, b := c*3+i, c*3+j
				w[a][b], w[b][a] = 10, 10
			}
		}
	}
	// Light links between cliques.
	w[2][3], w[3][2] = 1, 1
	w[5][6], w[6][5] = 1, 1

	assign, cost := MinKCut(w, 3)
	comps := map[int]bool{}
	for _, a := range assign {
		comps[a] = true
	}
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	if cost != 2 {
		t.Fatalf("k-cut cost = %v, want 2", cost)
	}
	// Cliques must stay together.
	for c := 0; c < 3; c++ {
		if assign[c*3] != assign[c*3+1] || assign[c*3] != assign[c*3+2] {
			t.Fatalf("clique %d split: %v", c, assign)
		}
	}
}

func TestMinKCutK1AndKN(t *testing.T) {
	w := zeros(4)
	w[0][1], w[1][0] = 2, 2
	assign, cost := MinKCut(w, 1)
	if cost != 0 {
		t.Fatalf("k=1 cost = %v", cost)
	}
	for _, a := range assign {
		if a != 0 {
			t.Fatal("k=1 did not place everything together")
		}
	}
	_, cost = MinKCut(w, 4)
	if cost != 2 {
		t.Fatalf("k=n cost = %v, want total weight 2", cost)
	}
}

// --- CommGraph --------------------------------------------------------

func chainTopology() *engine.Topology {
	t := engine.NewTopology("chain")
	t.AddSource("src", 2, func() engine.Source { return nil },
		engine.Stream(engine.DefaultStream, "v"))
	t.AddOp("mid", 2, func() engine.Operator { return nil },
		engine.Stream(engine.DefaultStream, "v")).
		SubDefault("src", engine.Shuffle())
	t.AddOp("sink", 1, func() engine.Operator { return nil }).
		SubDefault("mid", engine.Global())
	return t
}

func TestBuildCommGraphShape(t *testing.T) {
	g, err := BuildCommGraph(chainTopology(), engine.Flink())
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 5 {
		t.Fatalf("vertices = %d, want 5", g.N())
	}
	// src executors talk to mid executors, not to each other.
	if g.W[0][1] != 0 {
		t.Fatal("source executors connected to each other")
	}
	if g.W[0][2] == 0 || g.W[0][3] == 0 {
		t.Fatal("source not connected to mid executors")
	}
	// Global grouping: both mid executors feed the single sink.
	if g.W[2][4] == 0 || g.W[3][4] == 0 {
		t.Fatal("mid not connected to sink")
	}
	// Symmetry.
	for i := 0; i < g.N(); i++ {
		for j := 0; j < g.N(); j++ {
			if g.W[i][j] != g.W[j][i] {
				t.Fatal("weight matrix not symmetric")
			}
		}
	}
}

func TestBuildCommGraphStormIncludesAcker(t *testing.T) {
	g, err := BuildCommGraph(chainTopology(), engine.Storm())
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 6 {
		t.Fatalf("vertices = %d, want 6 (5 + acker)", g.N())
	}
	ackerIdx := 5
	if g.Ops[ackerIdx] != engine.AckerName {
		t.Fatalf("vertex 5 = %s, want acker", g.Ops[ackerIdx])
	}
	var ackerW float64
	for v := 0; v < 5; v++ {
		ackerW += g.W[v][ackerIdx]
	}
	if ackerW == 0 {
		t.Fatal("acker has no communication weight")
	}
}

func TestBuildCommGraphSelectivityScalesFlow(t *testing.T) {
	mk := func(sel float64) float64 {
		topo := chainTopology()
		p := topo.Node("src").Profile
		p.Selectivity = sel
		topo.Node("src").WithProfile(p)
		g, err := BuildCommGraph(topo, engine.Flink())
		if err != nil {
			t.Fatal(err)
		}
		return g.W[0][2]
	}
	if mk(10) <= mk(1) {
		t.Fatal("higher selectivity did not increase edge weight")
	}
}

// --- Placement --------------------------------------------------------

func TestPlanForKRespectsCapacity(t *testing.T) {
	g, err := BuildCommGraph(chainTopology(), engine.Storm())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanForK(g, 2, PlaceOptions{CoresPerSocket: 2, Oversubscribe: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	count := map[int]int{}
	for _, s := range plan.Assign {
		if s < 0 || s >= 2 {
			t.Fatalf("socket out of range: %d", s)
		}
		count[s]++
	}
	for s, c := range count {
		if c > 3 {
			t.Fatalf("socket %d holds %d executors, capacity 3", s, c)
		}
	}
}

func TestPlanForKOneSocketIsZeroCost(t *testing.T) {
	g, _ := BuildCommGraph(chainTopology(), engine.Flink())
	plan, err := PlanForK(g, 1, PlaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cost != 0 {
		t.Fatalf("k=1 cost = %v, want 0", plan.Cost)
	}
}

func TestPlanBeatsRoundRobin(t *testing.T) {
	// On a communication-heavy chain, the optimizer must not be worse
	// than round-robin placement.
	g, _ := BuildCommGraph(chainTopology(), engine.Storm())
	plan, err := PlanForK(g, 2, PlaceOptions{CoresPerSocket: 8})
	if err != nil {
		t.Fatal(err)
	}
	rr := RoundRobinPlan(g, 2)
	if plan.Cost > rr.Cost+1e-9 {
		t.Fatalf("optimized cost %v worse than round-robin %v", plan.Cost, rr.Cost)
	}
}

func TestPlansEnumerateK(t *testing.T) {
	plans, err := PlanFor(chainTopology(), engine.Flink(), 4, PlaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 4 {
		t.Fatalf("plans = %d, want 4", len(plans))
	}
	// Costs are monotone-ish: k=1 cheapest.
	if plans[0].Cost != 0 {
		t.Fatalf("k=1 plan cost = %v", plans[0].Cost)
	}
}

func TestPlanForKInfeasible(t *testing.T) {
	g, _ := BuildCommGraph(chainTopology(), engine.Storm()) // 6 executors
	if _, err := PlanForK(g, 1, PlaceOptions{CoresPerSocket: 2, Oversubscribe: 1}); err == nil {
		t.Fatal("infeasible capacity accepted")
	}
}

// Property: refinement never increases Equation 1 cost over the seed, and
// plans always assign within [0, k).
func TestPlacementProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		g := &CommGraph{W: zeros(n)}
		for i := 0; i < n; i++ {
			g.Names = append(g.Names, "v")
			g.Ops = append(g.Ops, "v")
			for j := i + 1; j < n; j++ {
				x := float64(rng.Intn(20))
				g.W[i][j], g.W[j][i] = x, x
			}
		}
		k := 1 + rng.Intn(4)
		plan, err := PlanForK(g, k, PlaceOptions{CoresPerSocket: 8, Oversubscribe: 4})
		if err != nil {
			return true // infeasible is allowed
		}
		for _, s := range plan.Assign {
			if s < 0 || s >= k {
				return false
			}
		}
		return math.Abs(plan.Cost-g.CutCost(plan.Assign)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func zeros(n int) [][]float64 {
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	return w
}

// Load estimation: a heavy operator dominates the communication graph's
// load vector, so balanced plans must spread its executors.
func TestCommGraphLoadReflectsHeavyOperators(t *testing.T) {
	topo := engine.NewTopology("heavy")
	topo.AddSource("src", 1, func() engine.Source { return nil },
		engine.Stream(engine.DefaultStream, "v"))
	topo.AddOp("heavy", 4, func() engine.Operator { return nil },
		engine.Stream(engine.DefaultStream, "v")).
		SubDefault("src", engine.Shuffle()).
		WithProfile(engine.WorkProfile{UopsPerTuple: 1_000_000})
	topo.AddOp("light", 4, func() engine.Operator { return nil }).
		SubDefault("heavy", engine.Shuffle()).
		WithProfile(engine.WorkProfile{UopsPerTuple: 100})

	g, err := BuildCommGraph(topo, engine.Flink())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Load) != g.N() {
		t.Fatalf("load vector length %d != %d vertices", len(g.Load), g.N())
	}
	var heavy, light float64
	for v := range g.Ops {
		switch g.Ops[v] {
		case "heavy":
			heavy += g.Load[v]
		case "light":
			light += g.Load[v]
		}
	}
	if heavy < light*100 {
		t.Fatalf("heavy operator load %.1f not dominating light %.1f", heavy, light)
	}

	// Balanced 2-way plan splits the heavy executors 2/2.
	plan, err := PlanForK(g, 2, PlaceOptions{Balanced: true})
	if err != nil {
		t.Fatal(err)
	}
	perSock := map[int]int{}
	for v := range g.Ops {
		if g.Ops[v] == "heavy" {
			perSock[plan.Assign[v]]++
		}
	}
	if perSock[0] != 2 || perSock[1] != 2 {
		t.Fatalf("heavy executors split %v, want 2/2", perSock)
	}
}
