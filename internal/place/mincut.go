package place

import "math"

// GlobalMinCut computes a global minimum cut of the weighted graph using
// the Stoer-Wagner algorithm and returns the cut weight and one side of the
// cut as vertex indices. The graph must have at least two vertices.
func GlobalMinCut(w [][]float64) (float64, []int) {
	n := len(w)
	if n < 2 {
		panic("place: min cut needs at least two vertices")
	}
	// Work on a copy; vertices merge as the algorithm proceeds.
	g := make([][]float64, n)
	for i := range g {
		g[i] = append([]float64(nil), w[i]...)
	}
	// groups[i] is the set of original vertices merged into i.
	groups := make([][]int, n)
	for i := range groups {
		groups[i] = []int{i}
	}
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}

	best := math.Inf(1)
	var bestSide []int

	for len(active) > 1 {
		// Maximum adjacency (minimum cut phase) on the active vertices.
		inA := map[int]bool{}
		wsum := map[int]float64{}
		order := make([]int, 0, len(active))
		for len(order) < len(active) {
			// Pick the most tightly connected remaining vertex.
			sel, selW := -1, math.Inf(-1)
			for _, v := range active {
				if inA[v] {
					continue
				}
				if wsum[v] > selW {
					sel, selW = v, wsum[v]
				}
			}
			inA[sel] = true
			order = append(order, sel)
			for _, v := range active {
				if !inA[v] {
					wsum[v] += g[sel][v]
				}
			}
		}
		t := order[len(order)-1]
		cutOfPhase := 0.0
		for _, v := range active {
			if v != t {
				cutOfPhase += g[t][v]
			}
		}
		if cutOfPhase < best {
			best = cutOfPhase
			bestSide = append([]int(nil), groups[t]...)
		}
		// Merge t into s (the second-to-last vertex of the phase).
		s := order[len(order)-2]
		groups[s] = append(groups[s], groups[t]...)
		for _, v := range active {
			if v != s && v != t {
				g[s][v] += g[t][v]
				g[v][s] = g[s][v]
			}
		}
		// Remove t from the active set.
		for i, v := range active {
			if v == t {
				active = append(active[:i], active[i+1:]...)
				break
			}
		}
	}
	return best, bestSide
}

// MinKCut partitions the graph into k non-empty components by recursive
// minimum cuts (the classical (2-2/k)-approximation): at each step the
// component whose internal minimum cut is cheapest is split. It returns the
// per-vertex component assignment and the total weight of edges across
// components.
func MinKCut(w [][]float64, k int) ([]int, float64) {
	n := len(w)
	if k < 1 {
		panic("place: k must be >= 1")
	}
	if k > n {
		k = n
	}
	assign := make([]int, n)
	if k == 1 {
		return assign, 0
	}
	comps := [][]int{allVertices(n)}
	for len(comps) < k {
		// Find the component with the cheapest internal min cut.
		bestIdx, bestCost := -1, math.Inf(1)
		var bestSplit []int
		for ci, comp := range comps {
			if len(comp) < 2 {
				continue
			}
			sub := subMatrix(w, comp)
			cost, side := GlobalMinCut(sub)
			if cost < bestCost {
				bestIdx, bestCost = ci, cost
				bestSplit = make([]int, len(side))
				for i, v := range side {
					bestSplit[i] = comp[v]
				}
			}
		}
		if bestIdx < 0 {
			break // all components are singletons
		}
		inSide := map[int]bool{}
		for _, v := range bestSplit {
			inSide[v] = true
		}
		var rest []int
		for _, v := range comps[bestIdx] {
			if !inSide[v] {
				rest = append(rest, v)
			}
		}
		comps[bestIdx] = bestSplit
		comps = append(comps, rest)
	}
	for ci, comp := range comps {
		for _, v := range comp {
			assign[v] = ci
		}
	}
	return assign, cutWeight(w, assign)
}

func allVertices(n int) []int {
	vs := make([]int, n)
	for i := range vs {
		vs[i] = i
	}
	return vs
}

func subMatrix(w [][]float64, vs []int) [][]float64 {
	m := make([][]float64, len(vs))
	for i := range vs {
		m[i] = make([]float64, len(vs))
		for j := range vs {
			m[i][j] = w[vs[i]][vs[j]]
		}
	}
	return m
}

func cutWeight(w [][]float64, assign []int) float64 {
	var c float64
	for i := range w {
		for j := i + 1; j < len(w); j++ {
			if assign[i] != assign[j] {
				c += w[i][j]
			}
		}
	}
	return c
}
