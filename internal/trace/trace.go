// Package trace is an opt-in, cycle-exact tracing layer for the simulated
// runtime. A Tracer attached to an engine.SimConfig collects three streams
// while a cell runs:
//
//   - span traces: every n-th source tuple tree is sampled at the spout and
//     followed along its causal path — framework invocation overhead, queue
//     wait, per-tuple execution with the per-Bucket stall breakdown taken
//     from hw.Machine's charge path, batch/delivery residency (with
//     cross-socket transfer marks), ack and barrier hops, and sink arrival;
//   - timeline streams: per-core and per-executor run/yield/block slices
//     from the simulated scheduler, plus per-queue depth counters sampled
//     at a configurable cadence on the simulation kernel;
//   - a folded-stack stall account (`app;operator;bucket cycles`) over the
//     whole run, reconciled against hw.Machine.ChargedCycles so the trace
//     is provably lossless.
//
// The span and timeline streams serialize as Chrome trace_event JSON
// (loadable in Perfetto / chrome://tracing); the folded stacks feed
// standard flamegraph tooling. Every timestamp derives from the simulation
// kernel's cycle clock — never the wall clock — with one cycle rendered as
// one nanosecond tick, so traces are byte-identical across repeat runs and
// harness worker counts. A nil *Tracer disables tracing: the runtime's
// hooks are nil-guarded on the hot paths and charge nothing when off.
package trace

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"streamscale/internal/hw"
	"streamscale/internal/sim"
)

// Config tunes a Tracer. Zero values select the defaults.
type Config struct {
	// SampleEvery samples every n-th source tuple tree at the spout
	// (default 64; 1 traces every tree).
	SampleEvery int
	// QueueCadence is the queue-depth sampling period in simulated cycles
	// (default 25000, ~10 µs at 2.4 GHz). Negative disables depth sampling.
	QueueCadence sim.Cycles
}

// Defaults for Config's zero values.
const (
	DefaultSampleEvery  = 64
	DefaultQueueCadence = sim.Cycles(25_000)
)

// Chrome trace_event process IDs: one synthetic "process" per stream so
// Perfetto groups tracks meaningfully.
const (
	pidSpans     = 1 // tuple span chains, per-executor tids
	pidCores     = 2 // scheduler slices, per-core tids
	pidExecutors = 3 // scheduler slices, per-thread tids
	pidQueues    = 4 // queue-depth counters
)

// event is one Chrome trace_event entry, held in memory until Encode.
type event struct {
	ph   byte
	name string
	cat  string
	pid  int32
	tid  int32
	ts   sim.Cycles
	dur  sim.Cycles // ph 'X' only
	id   int64      // async/flow id; negative = absent
	args string     // pre-rendered JSON object (with braces); "" = absent
}

// OpCost is one operator's share of the run's cycle account, the input to
// the folded-stack view.
type OpCost struct {
	Op    string
	Costs hw.CostVec
}

// TailRecord aggregates one sampled tuple tree's causal-path account: the
// same deltas the span events carry, folded per root so the tail experiment
// can name the stall that put a tuple in the tail. Buckets accumulates the
// execute spans' per-bucket charge-path deltas over the whole tree;
// QueueWait and Deliver accumulate queue sojourn and emission→enqueue
// residency. Invocation overhead is batch-shared and deliberately excluded
// — per-root attribution covers only charges causally tied to the tree.
type TailRecord struct {
	Root      int64
	E2ECycles int64 // worst sink arrival for the tree (intended-arrival based under SourceRate)
	SinkOp    string
	Buckets   hw.CostVec
	QueueWait int64
	Deliver   int64
	Spans     int // execute spans folded in
}

// Dominant names the single largest component of the record's account:
// a hw bucket name, "queue-wait", or "deliver". Ties resolve in fixed
// bucket order (then queue-wait, then deliver), so the answer is
// deterministic across runs.
func (r *TailRecord) Dominant() (string, int64) {
	name, best := "", int64(-1)
	for bk := hw.Bucket(0); bk < hw.NumBuckets; bk++ {
		if c := int64(r.Buckets[bk]); c > best {
			name, best = bk.String(), c
		}
	}
	if r.QueueWait > best {
		name, best = "queue-wait", r.QueueWait
	}
	if r.Deliver > best {
		name, best = "deliver", r.Deliver
	}
	return name, best
}

// AttributedCycles is the total causally-attributed cycle account of the
// tree: execute-span bucket charges plus queue and delivery residency.
func (r *TailRecord) AttributedCycles() int64 {
	return int64(r.Buckets.Total()) + r.QueueWait + r.Deliver
}

// Tracer accumulates trace streams for one simulated run. It is not safe
// for concurrent use: like the kernel that feeds it, it belongs to a single
// simulation goroutine.
type Tracer struct {
	cfg Config

	// Run identity, set by Begin/Finish.
	app     string
	system  string
	clockHz int64
	charged sim.Cycles
	ops     []OpCost
	done    bool

	spoutSeen   int64
	sampled     map[int64]bool // root -> flow-start already emitted
	asyncSeq    int64
	spanCount   int64
	sliceCount  int64
	sampleCount int64

	events []event

	// tails folds the span deltas per sampled root (see TailRecord).
	tails map[int64]*TailRecord

	// Thread-name metadata for the span and executor tracks, keyed by tid.
	names     map[int32]string
	nameOrder []int32
}

// New returns a Tracer with cfg's zero values defaulted.
func New(cfg Config) *Tracer {
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = DefaultSampleEvery
	}
	if cfg.QueueCadence == 0 {
		cfg.QueueCadence = DefaultQueueCadence
	}
	return &Tracer{
		cfg:     cfg,
		sampled: make(map[int64]bool),
		tails:   make(map[int64]*TailRecord),
		names:   make(map[int32]string),
	}
}

// QueueCadence returns the configured queue-depth sampling period
// (non-positive = disabled).
func (t *Tracer) QueueCadence() sim.Cycles { return t.cfg.QueueCadence }

// ClockHz returns the traced machine's clock, for cycle-to-wallclock
// conversion of the per-root tail accounts (0 before Begin).
func (t *Tracer) ClockHz() int64 { return t.clockHz }

// Begin records the run identity. The engine calls it once before the
// simulation starts.
func (t *Tracer) Begin(app, system string, clockHz int64) {
	t.app, t.system, t.clockHz = app, system, clockHz
}

// NameThread registers the display name for an executor's span and
// timeline tracks.
func (t *Tracer) NameThread(tid int, name string) {
	id := int32(tid)
	if _, ok := t.names[id]; !ok {
		t.names[id] = name
		t.nameOrder = append(t.nameOrder, id)
	}
}

// SpoutEmit notes one source tuple-tree emission and samples every n-th:
// a sampled root's whole causal tree (children inherit the root id) is
// followed by the span hooks below. Returns whether root was sampled.
func (t *Tracer) SpoutEmit(root int64) bool {
	if root == 0 {
		return false
	}
	t.spoutSeen++
	if (t.spoutSeen-1)%int64(t.cfg.SampleEvery) != 0 {
		return false
	}
	if _, ok := t.sampled[root]; !ok {
		t.sampled[root] = false
		t.sampleCount++
	}
	return true
}

// Sampled reports whether root belongs to a sampled tuple tree.
func (t *Tracer) Sampled(root int64) bool {
	if root == 0 || len(t.sampled) == 0 {
		return false
	}
	_, ok := t.sampled[root]
	return ok
}

// Invoke records one framework-dispatch span (executor invocation overhead
// charged before a batch containing sampled tuples is processed). before
// and after are the executor's cycle account around the charge.
func (t *Tracer) Invoke(exec int, op string, start, dur sim.Cycles, before, after hw.CostVec) {
	t.spanCount++
	t.events = append(t.events, event{
		ph: 'X', name: "invoke", cat: "span", pid: pidSpans, tid: int32(exec),
		ts: start, dur: dur, id: -1,
		args: `{"op":` + quote(op) + bucketArgs(before, after) + `}`,
	})
}

// QueueWait records the time a sampled tuple spent in a consumer's input
// queue, as an async span on the consumer's track.
func (t *Tracer) QueueWait(exec int, fromOp, toOp string, root int64, enqueued, popped sim.Cycles) {
	if popped < enqueued {
		popped = enqueued
	}
	t.spanCount++
	t.tail(root).QueueWait += int64(popped - enqueued)
	id := t.nextAsync()
	args := fmt.Sprintf(`{"root":%d,"from":%s,"to":%s,"cycles":%d}`,
		root, quote(fromOp), quote(toOp), int64(popped-enqueued))
	t.events = append(t.events,
		event{ph: 'b', name: "queue-wait", cat: "queue", pid: pidSpans, tid: int32(exec), ts: enqueued, id: id, args: args},
		event{ph: 'e', name: "queue-wait", cat: "queue", pid: pidSpans, tid: int32(exec), ts: popped, id: id})
}

// Execute records the processing of one sampled tuple on an executor: a
// complete span carrying the per-bucket stall breakdown accumulated by the
// hardware model's charge path during the span, plus the flow step that
// links the tuple's hops into one chain.
func (t *Tracer) Execute(exec int, op string, root int64, start, dur sim.Cycles, before, after hw.CostVec) {
	t.spanCount++
	rec := t.tail(root)
	rec.Spans++
	for bk := hw.Bucket(0); bk < hw.NumBuckets; bk++ {
		rec.Buckets.Add(bk, after[bk]-before[bk])
	}
	t.events = append(t.events, event{
		ph: 'X', name: "execute", cat: "span", pid: pidSpans, tid: int32(exec),
		ts: start, dur: dur, id: -1,
		args: fmt.Sprintf(`{"op":%s,"root":%d,"cycles":%d%s}`, quote(op), root, int64(dur), bucketArgs(before, after)),
	})
	ph := byte('t')
	if started := t.sampled[root]; !started {
		ph = 's'
		t.sampled[root] = true
	}
	t.events = append(t.events, event{
		ph: ph, name: "tuple", cat: "flow", pid: pidSpans, tid: int32(exec), ts: start, id: root,
	})
}

// Deliver records a sampled tuple's residency between its emission and the
// successful enqueue into the consumer's queue (output buffering, Algorithm
// 1 batch formation, and backpressure wait), with the cross-socket transfer
// marked when producer and consumer queue memory live on different sockets.
func (t *Tracer) Deliver(exec int, fromOp, toOp string, root int64, emitAt, enqueueAt sim.Cycles, fromSocket, toSocket int) {
	if enqueueAt < emitAt {
		enqueueAt = emitAt
	}
	t.spanCount++
	t.tail(root).Deliver += int64(enqueueAt - emitAt)
	id := t.nextAsync()
	args := fmt.Sprintf(`{"root":%d,"from":%s,"to":%s,"cycles":%d,"xsocket":%t}`,
		root, quote(fromOp), quote(toOp), int64(enqueueAt-emitAt), fromSocket != toSocket)
	t.events = append(t.events,
		event{ph: 'b', name: "deliver", cat: "deliver", pid: pidSpans, tid: int32(exec), ts: emitAt, id: id, args: args},
		event{ph: 'e', name: "deliver", cat: "deliver", pid: pidSpans, tid: int32(exec), ts: enqueueAt, id: id})
	if fromSocket != toSocket {
		t.events = append(t.events, event{
			ph: 'i', name: "xsocket", cat: "deliver", pid: pidSpans, tid: int32(exec), ts: enqueueAt, id: -1,
			args: fmt.Sprintf(`{"root":%d,"from_socket":%d,"to_socket":%d}`, root, fromSocket, toSocket),
		})
	}
}

// Barrier records a checkpoint-barrier hop: emission at a source or aligned
// forwarding at a downstream executor.
func (t *Tracer) Barrier(exec int, op string, barrierID int64, at sim.Cycles) {
	t.events = append(t.events, event{
		ph: 'i', name: "barrier", cat: "span", pid: pidSpans, tid: int32(exec), ts: at, id: -1,
		args: fmt.Sprintf(`{"op":%s,"id":%d}`, quote(op), barrierID),
	})
}

// Sink records a sampled tuple's arrival at a sink: the end of its flow
// chain, with the end-to-end latency in cycles.
func (t *Tracer) Sink(exec int, op string, root int64, at, e2e sim.Cycles) {
	if rec := t.tail(root); int64(e2e) >= rec.E2ECycles {
		// A tree can reach sinks many times (e.g. one count per word);
		// the tree's tail latency is its *worst* sink arrival.
		rec.E2ECycles = int64(e2e)
		rec.SinkOp = op
	}
	t.events = append(t.events,
		event{ph: 'i', name: "sink", cat: "span", pid: pidSpans, tid: int32(exec), ts: at, id: -1,
			args: fmt.Sprintf(`{"op":%s,"root":%d,"e2e_cycles":%d}`, quote(op), root, int64(e2e))},
		event{ph: 'f', name: "tuple", cat: "flow", pid: pidSpans, tid: int32(exec), ts: at, id: root})
}

// Slice records one scheduler dispatch: thread tid ran on core for
// [start, start+dur) and left in state disp ("yield", "blocked", "done").
// The slice lands on both the per-core and the per-executor timeline.
func (t *Tracer) Slice(tid int, name string, core int, start, dur sim.Cycles, disp string) {
	t.sliceCount++
	args := fmt.Sprintf(`{"thread":%s,"core":%d,"disp":%s}`, quote(name), core, quote(disp))
	t.events = append(t.events,
		event{ph: 'X', name: name, cat: "sched", pid: pidCores, tid: int32(core), ts: start, dur: dur, id: -1, args: args},
		event{ph: 'X', name: "run", cat: "sched", pid: pidExecutors, tid: int32(tid), ts: start, dur: dur, id: -1, args: args})
}

// QueueDepth records one sample of an executor input queue's depth.
func (t *Tracer) QueueDepth(exec int, label string, at sim.Cycles, depth int) {
	t.events = append(t.events, event{
		ph: 'C', name: "q " + label, cat: "queue", pid: pidQueues, tid: 0, ts: at, id: -1,
		args: fmt.Sprintf(`{"depth":%d}`, depth),
	})
}

// Finish closes the run: it stores the folded-stack input (per-operator
// cycle accounts) and the machine's conservation ledger the folded view is
// reconciled against.
func (t *Tracer) Finish(charged sim.Cycles, ops []OpCost) {
	t.charged = charged
	t.ops = ops
	t.done = true
}

// SampledRoots returns how many tuple trees were sampled.
func (t *Tracer) SampledRoots() int64 { return t.sampleCount }

// tail returns (creating on first touch) the root's tail record. A zero
// root is the shared "unanchored" record — callers filter it out of tail
// rankings.
func (t *Tracer) tail(root int64) *TailRecord {
	rec := t.tails[root]
	if rec == nil {
		rec = &TailRecord{Root: root}
		t.tails[root] = rec
	}
	return rec
}

// Tails returns the k worst sampled tuple trees by end-to-end latency
// (all of them for k <= 0), sorted by descending E2ECycles with the root
// id as a deterministic tie-break. Unanchored spans (root 0) and trees
// that never reached a sink are excluded.
func (t *Tracer) Tails(k int) []TailRecord {
	out := make([]TailRecord, 0, len(t.tails))
	//dsplint:ignore maporder the full sort below has a total order (E2ECycles desc, Root asc), so collection order cannot leak
	for root, rec := range t.tails {
		if root == 0 || rec.SinkOp == "" {
			continue
		}
		out = append(out, *rec)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].E2ECycles != out[j].E2ECycles {
			return out[i].E2ECycles > out[j].E2ECycles
		}
		return out[i].Root < out[j].Root
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

func (t *Tracer) nextAsync() int64 {
	t.asyncSeq++
	return t.asyncSeq
}

// bucketArgs renders the charge-path delta between two cycle-account
// snapshots as JSON members (leading comma), one per nonzero bucket.
func bucketArgs(before, after hw.CostVec) string {
	var b strings.Builder
	for bk := hw.Bucket(0); bk < hw.NumBuckets; bk++ {
		if d := after[bk] - before[bk]; d != 0 {
			fmt.Fprintf(&b, `,%s:%d`, quote(bk.String()), int64(d))
		}
	}
	return b.String()
}

func quote(s string) string { return strconv.Quote(s) }
