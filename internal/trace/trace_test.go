package trace

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"streamscale/internal/hw"
	"streamscale/internal/sim"
)

func TestSpoutSampling(t *testing.T) {
	tr := New(Config{SampleEvery: 4})
	var hits int
	for root := int64(1); root <= 16; root++ {
		if tr.SpoutEmit(root) {
			hits++
			if !tr.Sampled(root) {
				t.Fatalf("root %d sampled but Sampled() false", root)
			}
		} else if tr.Sampled(root) {
			t.Fatalf("root %d not sampled but Sampled() true", root)
		}
	}
	if hits != 4 {
		t.Fatalf("sampled %d of 16 at every=4, want 4", hits)
	}
	if tr.SampledRoots() != 4 {
		t.Fatalf("SampledRoots = %d, want 4", tr.SampledRoots())
	}
	if tr.SpoutEmit(0) || tr.Sampled(0) {
		t.Fatal("root 0 (untracked) must never sample")
	}
}

func TestDefaults(t *testing.T) {
	tr := New(Config{})
	if tr.cfg.SampleEvery != DefaultSampleEvery {
		t.Fatalf("SampleEvery default = %d", tr.cfg.SampleEvery)
	}
	if tr.QueueCadence() != DefaultQueueCadence {
		t.Fatalf("QueueCadence default = %d", tr.QueueCadence())
	}
	if New(Config{QueueCadence: -1}).QueueCadence() >= 0 {
		t.Fatal("negative cadence must stay disabled")
	}
}

func TestTimestampRendering(t *testing.T) {
	for _, tc := range []struct {
		c    sim.Cycles
		want string
	}{
		{0, "0.000"},
		{1, "0.001"},
		{999, "0.999"},
		{1000, "1.000"},
		{1234567, "1234.567"},
	} {
		if got := ts(tc.c); got != tc.want {
			t.Errorf("ts(%d) = %q, want %q", tc.c, got, tc.want)
		}
	}
}

// populate records one of every event kind.
func populate(tr *Tracer) {
	tr.Begin("wc", "storm", 2_400_000_000)
	tr.NameThread(3, "counter[0]")
	tr.NameThread(1, "splitter[1]")
	tr.SpoutEmit(7)
	var before, after hw.CostVec
	after[hw.TC] = 100
	after[hw.BeLLCRemote] = 40
	tr.Invoke(1, "splitter", 1000, 140, before, after)
	tr.QueueWait(1, "spout", "splitter", 7, 900, 1000)
	tr.Execute(1, "splitter", 7, 1140, 140, before, after)
	tr.Deliver(1, "splitter", "counter", 7, 1280, 1400, 0, 1)
	tr.Execute(3, "counter", 7, 1500, 90, before, after)
	tr.Barrier(1, "splitter", 2, 1600)
	tr.Sink(3, "sink", 7, 1700, 800)
	tr.Slice(1, "splitter[1]", 0, 1000, 500, "yield")
	tr.QueueDepth(3, "counter[0]", 25000, 12)
	tr.Finish(230, []OpCost{
		{Op: "splitter", Costs: after},
		{Op: "counter", Costs: hw.CostVec{hw.TC: 90}},
	})
}

func TestEncodeTraceValidJSONAndDeterministic(t *testing.T) {
	render := func() []byte {
		tr := New(Config{SampleEvery: 1})
		populate(tr)
		var buf bytes.Buffer
		if err := tr.EncodeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !json.Valid(a) {
		t.Fatalf("trace is not valid JSON:\n%s", a)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("trace encoding is not deterministic across identical recordings")
	}
	for _, want := range []string{
		`"name":"execute"`, `"name":"queue-wait"`, `"name":"deliver"`,
		`"name":"xsocket"`, `"name":"barrier"`, `"name":"sink"`,
		`"ph":"s"`, `"ph":"f"`, `"ph":"C"`,
		`"name":"counter[0]"`, `"llc-miss-remote":40`,
	} {
		if !bytes.Contains(a, []byte(want)) {
			t.Errorf("trace missing %s", want)
		}
	}
}

func TestEncodeFoldedReconciles(t *testing.T) {
	tr := New(Config{})
	populate(tr)
	var buf bytes.Buffer
	if err := tr.EncodeFolded(&buf); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		parts := strings.Split(line, " ")
		if len(parts) != 2 {
			t.Fatalf("malformed folded line %q", line)
		}
		stack := strings.Split(parts[0], ";")
		if len(stack) != 3 || stack[0] != "wc" {
			t.Fatalf("malformed stack %q", parts[0])
		}
		c, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			t.Fatalf("bad cycle count in %q: %v", line, err)
		}
		total += c
	}
	if sim.Cycles(total) != tr.FoldedTotal() {
		t.Fatalf("folded file total %d != FoldedTotal %d", total, tr.FoldedTotal())
	}
	if tr.FoldedTotal() != 230 {
		t.Fatalf("FoldedTotal = %d, want 230 (the charged ledger)", tr.FoldedTotal())
	}
}

func TestEncodeSummaryRoundTrips(t *testing.T) {
	tr := New(Config{})
	populate(tr)
	var buf bytes.Buffer
	if err := tr.EncodeSummary(&buf); err != nil {
		t.Fatal(err)
	}
	var s Summary
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("summary does not parse: %v\n%s", err, buf.String())
	}
	if s.App != "wc" || s.System != "storm" || !s.Lossless {
		t.Fatalf("summary = %+v", s)
	}
	if s.ChargedCycles != 230 || s.FoldedCycles != 230 {
		t.Fatalf("reconciliation pair = %d/%d, want 230/230", s.ChargedCycles, s.FoldedCycles)
	}
}

func TestWriteProducesThreeFiles(t *testing.T) {
	tr := New(Config{})
	populate(tr)
	dir := t.TempDir()
	if err := tr.Write(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{TraceFile, FoldedFile, SummaryFile} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
}
