package trace

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"streamscale/internal/hw"
	"streamscale/internal/profiler"
	"streamscale/internal/sim"
)

// File names written by Write.
const (
	TraceFile   = "trace.json"
	FoldedFile  = "stalls.folded"
	SummaryFile = "summary.json"
)

// Write serializes the three trace artifacts into dir, creating it if
// needed. Output is a pure function of the recorded events: byte-identical
// across repeat runs of the same deterministic cell.
func (t *Tracer) Write(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, enc func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := enc(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(TraceFile, t.EncodeTrace); err != nil {
		return err
	}
	if err := write(FoldedFile, t.EncodeFolded); err != nil {
		return err
	}
	return write(SummaryFile, t.EncodeSummary)
}

// ts renders a cycle timestamp as trace_event microseconds under the
// 1 cycle = 1 ns convention: an exact decimal (cycles/1000) with three
// fractional digits, so no float rounding can perturb the output.
func ts(c sim.Cycles) string {
	n := int64(c)
	return fmt.Sprintf("%d.%03d", n/1000, n%1000)
}

// EncodeTrace writes the Chrome trace_event JSON stream: metadata (process
// and thread names), then every recorded event in recording order — which
// the kernel's deterministic event order fixes across runs.
func (t *Tracer) EncodeTrace(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.str("{\"displayTimeUnit\":\"ns\",\"otherData\":{\"app\":")
	bw.str(quote(t.app))
	bw.str(",\"system\":")
	bw.str(quote(t.system))
	fmt.Fprintf(bw, ",\"clock_hz\":%d,\"cycle_ns\":1},\n\"traceEvents\":[\n", t.clockHz)

	first := true
	emit := func(s string) {
		if !first {
			bw.str(",\n")
		}
		first = false
		bw.str(s)
	}

	for _, m := range []struct {
		pid  int32
		name string
	}{
		{pidSpans, "tuple spans"},
		{pidCores, "cores"},
		{pidExecutors, "executors"},
		{pidQueues, "queues"},
	} {
		emit(fmt.Sprintf(`{"ph":"M","name":"process_name","pid":%d,"tid":0,"args":{"name":%s}}`,
			m.pid, quote(m.name)))
	}
	for _, tid := range t.nameOrder {
		name := quote(t.names[tid])
		emit(fmt.Sprintf(`{"ph":"M","name":"thread_name","pid":%d,"tid":%d,"args":{"name":%s}}`,
			pidSpans, tid, name))
		emit(fmt.Sprintf(`{"ph":"M","name":"thread_name","pid":%d,"tid":%d,"args":{"name":%s}}`,
			pidExecutors, tid, name))
	}

	var b strings.Builder
	for i := range t.events {
		ev := &t.events[i]
		b.Reset()
		fmt.Fprintf(&b, `{"ph":"%c","name":%s,"cat":%s,"pid":%d,"tid":%d,"ts":%s`,
			ev.ph, quote(ev.name), quote(ev.cat), ev.pid, ev.tid, ts(ev.ts))
		if ev.ph == 'X' {
			b.WriteString(`,"dur":`)
			b.WriteString(ts(ev.dur))
		}
		if ev.id >= 0 {
			fmt.Fprintf(&b, `,"id":%d`, ev.id)
		}
		switch ev.ph {
		case 's', 't', 'f':
			// Flow events need a binding point; scope keeps ids namespaced.
			b.WriteString(`,"bp":"e","scope":"tuple"`)
		case 'i':
			b.WriteString(`,"s":"t"`)
		}
		if ev.args != "" {
			b.WriteString(`,"args":`)
			b.WriteString(ev.args)
		}
		b.WriteString("}")
		emit(b.String())
	}
	bw.str("\n]}\n")
	return bw.err
}

// EncodeFolded writes the folded-stack stall account: one line per
// (operator, bucket) with nonzero cycles, `app;operator;bucket cycles`,
// in operator order then bucket order. The line total over the whole file
// equals the machine's ChargedCycles ledger (see EncodeSummary and the
// conservation test in internal/bench).
func (t *Tracer) EncodeFolded(w io.Writer) error {
	bw := &errWriter{w: w}
	for _, oc := range t.ops {
		for _, line := range profiler.FromCosts(oc.Costs).Folded(t.app + ";" + oc.Op) {
			bw.str(line)
			bw.str("\n")
		}
	}
	return bw.err
}

// FoldedTotal returns the cycle sum over the folded-stack account.
func (t *Tracer) FoldedTotal() sim.Cycles {
	var total sim.Cycles
	for _, oc := range t.ops {
		total += oc.Costs.Total()
	}
	return total
}

// summaryTailCount bounds the per-root tail digest in summary.json.
const summaryTailCount = 5

// EncodeSummary writes a small JSON digest: run identity, sampling
// configuration, event counts, the lossless-reconciliation pair
// (folded_cycles vs charged_cycles), and the worst sampled tuple trees
// with their folded causal accounts (see TailRecord).
func (t *Tracer) EncodeSummary(w io.Writer) error {
	bw := &errWriter{w: w}
	folded := t.FoldedTotal()
	fmt.Fprintf(bw, `{
  "app": %s,
  "system": %s,
  "clock_hz": %d,
  "sample_every": %d,
  "queue_cadence_cycles": %d,
  "sampled_roots": %d,
  "span_events": %d,
  "sched_slices": %d,
  "trace_events": %d,
  "charged_cycles": %d,
  "folded_cycles": %d,
  "lossless": %t,
  "tails": [`, quote(t.app), quote(t.system), t.clockHz,
		t.cfg.SampleEvery, int64(t.cfg.QueueCadence),
		t.sampleCount, t.spanCount, t.sliceCount, len(t.events),
		int64(t.charged), int64(folded), folded == t.charged)
	for i, rec := range t.Tails(summaryTailCount) {
		if i > 0 {
			bw.str(",")
		}
		dom, domCycles := rec.Dominant()
		fmt.Fprintf(bw, `
    {"root":%d,"e2e_cycles":%d,"sink_op":%s,"dominant":%s,"dominant_cycles":%d,"queue_wait_cycles":%d,"deliver_cycles":%d,"exec_spans":%d,"buckets":{`,
			rec.Root, rec.E2ECycles, quote(rec.SinkOp), quote(dom), domCycles,
			rec.QueueWait, rec.Deliver, rec.Spans)
		first := true
		for bk := hw.Bucket(0); bk < hw.NumBuckets; bk++ {
			if c := int64(rec.Buckets[bk]); c != 0 {
				if !first {
					bw.str(",")
				}
				first = false
				fmt.Fprintf(bw, `%s:%d`, quote(bk.String()), c)
			}
		}
		bw.str("}}")
	}
	bw.str("\n  ]\n}\n")
	return bw.err
}

// errWriter folds write errors so encoders can stay linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, err
}

func (e *errWriter) str(s string) {
	if e.err == nil {
		_, e.err = io.WriteString(e.w, s)
	}
}

// Summary is the parsed form of summary.json, used by cmd/dsptrace.
type Summary struct {
	App           string        `json:"app"`
	System        string        `json:"system"`
	ClockHz       int64         `json:"clock_hz"`
	SampleEvery   int           `json:"sample_every"`
	QueueCadence  int64         `json:"queue_cadence_cycles"`
	SampledRoots  int64         `json:"sampled_roots"`
	SpanEvents    int64         `json:"span_events"`
	SchedSlices   int64         `json:"sched_slices"`
	TraceEvents   int64         `json:"trace_events"`
	ChargedCycles int64         `json:"charged_cycles"`
	FoldedCycles  int64         `json:"folded_cycles"`
	Lossless      bool          `json:"lossless"`
	Tails         []SummaryTail `json:"tails"`
}

// SummaryTail is one entry of the summary's worst-tuple digest.
type SummaryTail struct {
	Root           int64            `json:"root"`
	E2ECycles      int64            `json:"e2e_cycles"`
	SinkOp         string           `json:"sink_op"`
	Dominant       string           `json:"dominant"`
	DominantCycles int64            `json:"dominant_cycles"`
	QueueWait      int64            `json:"queue_wait_cycles"`
	Deliver        int64            `json:"deliver_cycles"`
	ExecSpans      int              `json:"exec_spans"`
	Buckets        map[string]int64 `json:"buckets"`
}
