package profiler

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"streamscale/internal/hw"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestBreakdownSharesSumToOne(t *testing.T) {
	p := New()
	var v hw.CostVec
	v.Add(hw.TC, 300)
	v.Add(hw.TBr, 40)
	v.Add(hw.FeL1I, 200)
	v.Add(hw.FeILD, 100)
	v.Add(hw.BeL1D, 250)
	v.Add(hw.BeLLCRemote, 110)
	p.Add(&v)

	bd := p.Breakdown()
	sum := bd.Computation + bd.FrontEnd + bd.BackEnd + bd.BadSpec
	if !almost(sum, 1.0) {
		t.Fatalf("breakdown sums to %v, want 1", sum)
	}
	if !almost(bd.Computation, 0.3) {
		t.Fatalf("computation = %v, want 0.3", bd.Computation)
	}
	if !almost(bd.FrontEnd, 0.3) {
		t.Fatalf("front-end = %v, want 0.3", bd.FrontEnd)
	}
}

func TestFoldedLinesAndTotal(t *testing.T) {
	var v hw.CostVec
	v.Add(hw.TC, 100)
	v.Add(hw.BeLLCRemote, 40)
	p := FromCosts(v)
	lines := p.Folded("wc;split")
	want := []string{"wc;split;computation 100", "wc;split;llc-miss-remote 40"}
	if len(lines) != len(want) {
		t.Fatalf("folded = %v, want %v", lines, want)
	}
	var total int64
	for i, l := range lines {
		if l != want[i] {
			t.Errorf("line %d = %q, want %q", i, l, want[i])
		}
		n, err := strconv.ParseInt(l[strings.LastIndexByte(l, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("unparsable folded line %q: %v", l, err)
		}
		total += n
	}
	if total != int64(p.Total()) {
		t.Fatalf("folded total %d != profile total %d", total, int64(p.Total()))
	}
	if got := New().Folded("x"); len(got) != 0 {
		t.Fatalf("empty profile folded = %v, want none", got)
	}
}

func TestFrontEndBreakdown(t *testing.T) {
	p := New()
	var v hw.CostVec
	v.Add(hw.FeL1I, 50)
	v.Add(hw.FeILD, 30)
	v.Add(hw.FeIDQ, 10)
	v.Add(hw.FeITLB, 10)
	p.Add(&v)
	fe := p.FrontEnd()
	if !almost(fe.L1IMiss, 0.5) || !almost(fe.IDecoding, 0.4) || !almost(fe.ITLB, 0.1) {
		t.Fatalf("front-end breakdown = %+v", fe)
	}
}

func TestBackEndBreakdownAndTableV(t *testing.T) {
	p := New()
	var v hw.CostVec
	v.Add(hw.TC, 500)
	v.Add(hw.BeL1D, 100)
	v.Add(hw.BeL2, 100)
	v.Add(hw.BeLLCLocal, 50)
	v.Add(hw.BeLLCRemote, 200)
	v.Add(hw.BeDTLB, 50)
	p.Add(&v)
	be := p.BackEnd()
	if !almost(be.LLC, 0.5) || !almost(be.L1D, 0.2) || !almost(be.DTLB, 0.1) {
		t.Fatalf("back-end breakdown = %+v", be)
	}
	lo, re := p.LLCMissShares()
	if !almost(lo, 0.05) || !almost(re, 0.2) {
		t.Fatalf("LLC shares = %v/%v, want 0.05/0.2", lo, re)
	}
}

func TestEmptyProfileIsAllZeros(t *testing.T) {
	p := New()
	bd := p.Breakdown()
	if bd.Computation != 0 || bd.FrontEnd != 0 {
		t.Fatal("empty profile has nonzero breakdown")
	}
	fe := p.FrontEnd()
	if fe.IDecoding != 0 {
		t.Fatal("empty profile has front-end shares")
	}
	if p.GCShare() != 0 {
		t.Fatal("empty profile has GC share")
	}
}

func TestFootprintCDF(t *testing.T) {
	p := New()
	p.NoteFootprint(-1) // first-invocation marker: must be ignored
	for i := 0; i < 50; i++ {
		p.NoteFootprint(1024)
	}
	for i := 0; i < 50; i++ {
		p.NoteFootprint(1 << 20)
	}
	pts := p.FootprintCDF([]int{512, 2048, 2 << 20})
	if pts[0].Fraction != 0 {
		t.Fatalf("CDF(512) = %v, want 0", pts[0].Fraction)
	}
	if pts[1].Fraction != 0.5 {
		t.Fatalf("CDF(2048) = %v, want 0.5", pts[1].Fraction)
	}
	if pts[2].Fraction != 1 {
		t.Fatalf("CDF(2M) = %v, want 1", pts[2].Fraction)
	}
	if p.Footprint.Count() != 100 {
		t.Fatalf("count = %d, want 100 (negative sample not dropped?)", p.Footprint.Count())
	}
}

func TestDefaultCDFThresholdsCoverCaches(t *testing.T) {
	ts := DefaultCDFThresholds()
	has := func(x int) bool {
		for _, v := range ts {
			if v == x {
				return true
			}
		}
		return false
	}
	for _, x := range []int{32 << 10, 256 << 10, 16 << 20} {
		if !has(x) {
			t.Fatalf("thresholds missing %d", x)
		}
	}
}

func TestGCShare(t *testing.T) {
	p := New()
	var v hw.CostVec
	v.Add(hw.TC, 900)
	p.Add(&v)
	p.GCCycles = 100
	if got := p.GCShare(); !almost(got, 1.0/9.0) {
		t.Fatalf("GC share = %v, want 1/9", got)
	}
}

func TestStringReport(t *testing.T) {
	p := New()
	var v hw.CostVec
	v.Add(hw.TC, 100)
	v.Add(hw.FeL1I, 100)
	p.Add(&v)
	s := p.String()
	for _, want := range []string{"computation", "front-end", "back-end", "llc miss"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}

func TestSortedBuckets(t *testing.T) {
	p := New()
	var v hw.CostVec
	v.Add(hw.BeL2, 500)
	v.Add(hw.TC, 300)
	v.Add(hw.FeL1I, 700)
	p.Add(&v)
	bs := p.SortedBuckets()
	if bs[0] != hw.FeL1I || bs[1] != hw.BeL2 || bs[2] != hw.TC {
		t.Fatalf("sorted buckets = %v", bs[:3])
	}
}
