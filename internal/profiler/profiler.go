// Package profiler aggregates the hardware model's per-bucket cycle charges
// into the execution-time breakdowns reported in the paper: Figure 7
// (computation / front-end / back-end / bad speculation), Figure 8
// (front-end components), Figure 11 (back-end components), Table V (LLC
// local vs. remote), and the Figure 9 instruction-footprint CDF.
package profiler

import (
	"fmt"
	"sort"
	"strings"

	"streamscale/internal/hw"
	"streamscale/internal/metrics"
	"streamscale/internal/sim"
)

// Profile is the aggregate processor-time account of one run.
type Profile struct {
	Costs     hw.CostVec
	GCCycles  sim.Cycles // mutator-visible GC time (tracked separately, §V-D)
	Footprint *metrics.Histogram
}

// New returns an empty profile.
func New() *Profile {
	return &Profile{Footprint: metrics.NewHistogram(1 << 16)}
}

// FromCosts returns a profile holding the given cycle account, so
// per-executor or per-edge cost vectors render with the same breakdown
// views as a run's global profile. The footprint histogram is empty.
func FromCosts(v hw.CostVec) *Profile {
	p := New()
	p.Costs.AddVec(&v)
	return p
}

// Add merges a cost vector into the profile.
func (p *Profile) Add(v *hw.CostVec) { p.Costs.AddVec(v) }

// NoteFootprint records one instruction-footprint sample (bytes of other
// code executed between two consecutive invocations of the same function).
func (p *Profile) NoteFootprint(bytes int) {
	if bytes >= 0 {
		p.Footprint.Observe(float64(bytes))
	}
}

// Total returns total accounted cycles.
func (p *Profile) Total() sim.Cycles { return p.Costs.Total() }

// Share returns bucket b's share of total accounted cycles.
func (p *Profile) Share(b hw.Bucket) float64 {
	t := p.Total()
	if t == 0 {
		return 0
	}
	return float64(p.Costs[b]) / float64(t)
}

// Breakdown is the Figure 7 view: four top-level components.
type Breakdown struct {
	Computation float64
	FrontEnd    float64
	BackEnd     float64
	BadSpec     float64
}

// Breakdown returns the top-level execution-time breakdown.
func (p *Profile) Breakdown() Breakdown {
	t := float64(p.Total())
	if t == 0 {
		return Breakdown{}
	}
	return Breakdown{
		Computation: float64(p.Costs[hw.TC]) / t,
		FrontEnd:    float64(p.Costs.FrontEnd()) / t,
		BackEnd:     float64(p.Costs.BackEnd()) / t,
		BadSpec:     float64(p.Costs[hw.TBr]) / t,
	}
}

// FrontEndBreakdown returns the Figure 8 view: shares of front-end stall
// time only. I-decoding combines ILD and IDQ stalls, as the paper does.
type FrontEndBreakdown struct {
	IDecoding float64
	L1IMiss   float64
	ITLB      float64
}

// FrontEnd returns the front-end stall component shares.
func (p *Profile) FrontEnd() FrontEndBreakdown {
	fe := float64(p.Costs.FrontEnd())
	if fe == 0 {
		return FrontEndBreakdown{}
	}
	return FrontEndBreakdown{
		IDecoding: float64(p.Costs[hw.FeILD]+p.Costs[hw.FeIDQ]) / fe,
		L1IMiss:   float64(p.Costs[hw.FeL1I]) / fe,
		ITLB:      float64(p.Costs[hw.FeITLB]) / fe,
	}
}

// BackEndBreakdown returns the Figure 11 view: shares of back-end stall time.
type BackEndBreakdown struct {
	L1D  float64
	L2   float64
	LLC  float64 // local + remote combined, as Fig 11 plots
	DTLB float64
}

// BackEnd returns the back-end stall component shares.
func (p *Profile) BackEnd() BackEndBreakdown {
	be := float64(p.Costs.BackEnd())
	if be == 0 {
		return BackEndBreakdown{}
	}
	return BackEndBreakdown{
		L1D:  float64(p.Costs[hw.BeL1D]) / be,
		L2:   float64(p.Costs[hw.BeL2]) / be,
		LLC:  float64(p.Costs[hw.BeLLCLocal]+p.Costs[hw.BeLLCRemote]) / be,
		DTLB: float64(p.Costs[hw.BeDTLB]) / be,
	}
}

// LLCMissShares returns Table V's rows: LLC miss stall time served locally
// and remotely as fractions of total execution time.
func (p *Profile) LLCMissShares() (local, remote float64) {
	t := float64(p.Total())
	if t == 0 {
		return 0, 0
	}
	return float64(p.Costs[hw.BeLLCLocal]) / t, float64(p.Costs[hw.BeLLCRemote]) / t
}

// GCShare returns mutator-visible GC time as a fraction of execution time.
func (p *Profile) GCShare() float64 {
	t := float64(p.Total())
	if t == 0 {
		return 0
	}
	return float64(p.GCCycles) / t
}

// FootprintCDF returns CDF points (footprint bytes, cumulative fraction) at
// the given byte thresholds — the Figure 9 curve.
func (p *Profile) FootprintCDF(thresholds []int) []CDFPoint {
	pts := make([]CDFPoint, 0, len(thresholds))
	for _, x := range thresholds {
		pts = append(pts, CDFPoint{Bytes: x, Fraction: p.Footprint.CDFAt(float64(x))})
	}
	return pts
}

// CDFPoint is one point of the footprint CDF.
type CDFPoint struct {
	Bytes    int
	Fraction float64
}

// DefaultCDFThresholds covers 64 B to 64 MB on a log scale, bracketing the
// L1I (32 KB), L2 (256 KB), and LLC (20 MB) capacities marked in Figure 9.
func DefaultCDFThresholds() []int {
	var ts []int
	for b := 64; b <= 64<<20; b *= 2 {
		ts = append(ts, b)
	}
	return ts
}

// String renders the profile as a compact multi-line report.
func (p *Profile) String() string {
	var sb strings.Builder
	bd := p.Breakdown()
	fmt.Fprintf(&sb, "computation %5.1f%%  front-end %5.1f%%  back-end %5.1f%%  bad-spec %4.1f%%\n",
		bd.Computation*100, bd.FrontEnd*100, bd.BackEnd*100, bd.BadSpec*100)
	fe := p.FrontEnd()
	fmt.Fprintf(&sb, "front-end:  i-decoding %5.1f%%  l1i %5.1f%%  itlb %5.1f%%\n",
		fe.IDecoding*100, fe.L1IMiss*100, fe.ITLB*100)
	be := p.BackEnd()
	fmt.Fprintf(&sb, "back-end:   l1d %5.1f%%  l2 %5.1f%%  llc %5.1f%%  dtlb %5.1f%%\n",
		be.L1D*100, be.L2*100, be.LLC*100, be.DTLB*100)
	lo, re := p.LLCMissShares()
	fmt.Fprintf(&sb, "llc miss:   local %4.1f%%  remote %4.1f%%   gc %4.1f%%",
		lo*100, re*100, p.GCShare()*100)
	return sb.String()
}

// Folded renders the profile as folded-stack lines ("prefix;bucket cycles",
// one per nonzero bucket, in Table II order) for flamegraph tooling. The
// rendered cycle total equals Costs.Total() exactly — the trace subsystem
// relies on this to reconcile its stall output against the machine ledger.
func (p *Profile) Folded(prefix string) []string {
	var lines []string
	for b := hw.Bucket(0); b < hw.NumBuckets; b++ {
		if c := p.Costs[b]; c != 0 {
			lines = append(lines, fmt.Sprintf("%s;%s %d", prefix, b.String(), int64(c)))
		}
	}
	return lines
}

// SortedBuckets returns buckets ordered by descending cycle share, for
// reports that list the dominant components first.
func (p *Profile) SortedBuckets() []hw.Bucket {
	bs := make([]hw.Bucket, 0, hw.NumBuckets)
	for b := hw.Bucket(0); b < hw.NumBuckets; b++ {
		bs = append(bs, b)
	}
	sort.SliceStable(bs, func(i, j int) bool { return p.Costs[bs[i]] > p.Costs[bs[j]] })
	return bs
}
