package profiler_test

import (
	"testing"

	"streamscale/internal/apps"
	"streamscale/internal/engine"
	"streamscale/internal/hw"
	"streamscale/internal/sim"
)

// runApp simulates one benchmark application with a small event count and
// returns the result.
func runApp(t *testing.T, app, system string) *engine.Result {
	t.Helper()
	topo, err := apps.Build(app, apps.Config{Events: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sys := engine.Storm()
	if system == "flink" {
		sys = engine.Flink()
	}
	res, err := engine.RunSim(topo, engine.SimConfig{System: sys, Sockets: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// checkConservation asserts the cycle-accounting invariants the breakdown
// figures depend on:
//
//  1. Conservation: every cycle the hardware model charges lands in exactly
//     one Table II bucket, so the profiler's per-bucket total equals the
//     machine's independent ChargedCycles ledger.
//  2. Partition: the four top-level Figure 7 components (computation, bad
//     speculation, front-end, back-end) partition the total — shares sum
//     to exactly 1.
//  3. Attribution: per-operator profiles decompose the global profile —
//     summing them bucket by bucket reproduces it exactly.
func checkConservation(t *testing.T, res *engine.Result) {
	t.Helper()
	total := res.Profile.Costs.Total()
	if total == 0 {
		t.Fatal("run charged zero cycles; the test exercises nothing")
	}
	if total != res.ChargedCycles {
		t.Errorf("cycles leaked: profiler total %d != machine ledger %d (diff %d)",
			total, res.ChargedCycles, total-res.ChargedCycles)
	}

	var groups sim.Cycles
	for g := hw.BucketGroup(0); g < hw.NumGroups; g++ {
		groups += res.Profile.Costs.GroupTotal(g)
	}
	if groups != total {
		t.Errorf("top-level components do not partition the total: %d != %d", groups, total)
	}

	var sum hw.CostVec
	for _, p := range res.OperatorProfiles {
		sum.AddVec(&p.Costs)
	}
	if sum != res.Profile.Costs {
		t.Errorf("operator profiles do not sum to the global profile:\n%v\nvs\n%v",
			sum, res.Profile.Costs)
	}
}

// TestCycleConservation runs every benchmark application and checks that
// the profiler's account reconciles against the hardware model's ledger.
func TestCycleConservation(t *testing.T) {
	for _, app := range apps.BenchmarkNames() {
		t.Run(app+"/storm", func(t *testing.T) {
			checkConservation(t, runApp(t, app, "storm"))
		})
	}
	// One Flink run covers the second system profile's distinct framework
	// cost paths (chaining-capable channels, no acking).
	t.Run("wc/flink", func(t *testing.T) {
		checkConservation(t, runApp(t, "wc", "flink"))
	})
}
