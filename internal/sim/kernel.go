// Package sim provides a deterministic discrete-event simulation kernel
// used to model a multi-socket multi-core machine.
//
// Time is measured in CPU cycles (Cycles). The kernel maintains a global
// event heap; events fire in (time, insertion-order) order, so a run with a
// fixed seed is fully reproducible. On top of the kernel, Scheduler models
// an operating-system thread scheduler: simulated threads are placed on
// simulated cores, run for bounded quanta, and block on or are woken by
// simulated resources (see package engine's queues).
package sim

import (
	"container/heap"
	"fmt"
)

// Cycles is a duration or instant in simulated CPU cycles.
type Cycles int64

// Seconds converts a cycle count to seconds at the given clock rate.
func (c Cycles) Seconds(clockHz int64) float64 {
	return float64(c) / float64(clockHz)
}

// Millis converts a cycle count to milliseconds at the given clock rate.
func (c Cycles) Millis(clockHz int64) float64 {
	return c.Seconds(clockHz) * 1e3
}

type event struct {
	at  Cycles
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)  { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)    { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any      { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event    { return h[0] }
func (h eventHeap) empty() bool    { return len(h) == 0 }
func (h eventHeap) String() string { return fmt.Sprintf("eventHeap(len=%d)", len(h)) }

// Kernel is a discrete-event simulation core. It is not safe for concurrent
// use; a simulation runs on a single goroutine.
type Kernel struct {
	now  Cycles
	heap eventHeap
	seq  uint64
}

// NewKernel returns a kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Cycles { return k.now }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it would silently reorder causality.
func (k *Kernel) At(t Cycles, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, k.now))
	}
	k.seq++
	heap.Push(&k.heap, event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d cycles from now.
func (k *Kernel) After(d Cycles, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	k.At(k.now+d, fn)
}

// Pending reports the number of queued events.
func (k *Kernel) Pending() int { return len(k.heap) }

// Step fires the earliest event, advancing the clock to its timestamp.
// It returns false when no events remain.
func (k *Kernel) Step() bool {
	if k.heap.empty() {
		return false
	}
	e := heap.Pop(&k.heap).(event)
	k.now = e.at
	e.fn()
	return true
}

// Run fires events until the heap drains or the clock would pass limit
// (limit <= 0 means no limit). It returns the number of events fired.
func (k *Kernel) Run(limit Cycles) int {
	n := 0
	for !k.heap.empty() {
		if limit > 0 && k.heap.peek().at > limit {
			k.now = limit
			return n
		}
		k.Step()
		n++
	}
	return n
}
