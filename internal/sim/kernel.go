// Package sim provides a deterministic discrete-event simulation kernel
// used to model a multi-socket multi-core machine.
//
// Time is measured in CPU cycles (Cycles). The kernel maintains a global
// event heap; events fire in (time, insertion-order) order, so a run with a
// fixed seed is fully reproducible. On top of the kernel, Scheduler models
// an operating-system thread scheduler: simulated threads are placed on
// simulated cores, run for bounded quanta, and block on or are woken by
// simulated resources (see package engine's queues).
package sim

import "fmt"

// Cycles is a duration or instant in simulated CPU cycles.
type Cycles int64

// Seconds converts a cycle count to seconds at the given clock rate.
func (c Cycles) Seconds(clockHz int64) float64 {
	return float64(c) / float64(clockHz)
}

// Millis converts a cycle count to milliseconds at the given clock rate.
func (c Cycles) Millis(clockHz int64) float64 {
	return c.Seconds(clockHz) * 1e3
}

// eventNode is one heap entry: the firing key plus the slab slot holding
// the callback. Keeping the callback out of the heap keeps sift swaps to
// 24 bytes and lets the heap and slab recycle storage without boxing —
// schedule/fire round-trips are allocation-free in steady state (the old
// container/heap implementation boxed every event through `any` on both
// Push and Pop).
type eventNode struct {
	at   Cycles
	seq  uint64
	slot int32
}

// less orders events by (time, insertion order); the order is total, so
// any min-heap pops the same unique minimum and firing order is identical
// across heap shapes.
func less(a, b eventNode) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Kernel is a discrete-event simulation core. It is not safe for concurrent
// use; a simulation runs on a single goroutine. Distinct Kernels share
// nothing, so independent simulations may run on concurrent goroutines.
type Kernel struct {
	now  Cycles
	seq  uint64
	heap []eventNode // 4-ary min-heap ordered by (at, seq)
	slab []func()    // slot -> pending callback
	free []int32     // recycled slab slots

	// AfterEvent, if non-nil, runs after every event fired by Run. It is a
	// pure observer for periodic measurement (the tracing layer's queue-depth
	// sampler): it must not schedule events — scheduling would shift the seq
	// ordering and the final clock, perturbing the run it observes.
	AfterEvent func()
}

// NewKernel returns a kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Cycles { return k.now }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it would silently reorder causality.
//
//dsp:hotpath
func (k *Kernel) At(t Cycles, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, k.now)) //dsplint:ignore hotalloc fatal-error path, never taken in steady state
	}
	k.seq++
	var slot int32
	if n := len(k.free); n > 0 {
		slot = k.free[n-1]
		k.free = k.free[:n-1]
	} else {
		slot = int32(len(k.slab))
		k.slab = append(k.slab, nil)
	}
	k.slab[slot] = fn
	k.heap = append(k.heap, eventNode{at: t, seq: k.seq, slot: slot})
	k.siftUp(len(k.heap) - 1)
}

// After schedules fn to run d cycles from now.
//
//dsp:hotpath
func (k *Kernel) After(d Cycles, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d)) //dsplint:ignore hotalloc fatal-error path, never taken in steady state
	}
	k.At(k.now+d, fn)
}

// Pending reports the number of queued events.
func (k *Kernel) Pending() int { return len(k.heap) }

// Step fires the earliest event, advancing the clock to its timestamp.
// It returns false when no events remain.
//
//dsp:hotpath
func (k *Kernel) Step() bool {
	if len(k.heap) == 0 {
		return false
	}
	top := k.heap[0]
	last := len(k.heap) - 1
	k.heap[0] = k.heap[last]
	k.heap = k.heap[:last]
	if last > 0 {
		k.siftDown(0)
	}
	fn := k.slab[top.slot]
	k.slab[top.slot] = nil // release the closure for GC
	k.free = append(k.free, top.slot)
	k.now = top.at
	fn()
	return true
}

// Run fires events until the heap drains or the clock would pass limit
// (limit <= 0 means no limit). It returns the number of events fired.
func (k *Kernel) Run(limit Cycles) int {
	n := 0
	for len(k.heap) > 0 {
		if limit > 0 && k.heap[0].at > limit {
			k.now = limit
			return n
		}
		k.Step()
		n++
		if k.AfterEvent != nil {
			k.AfterEvent()
		}
	}
	return n
}

// siftUp restores heap order after appending at index i. The 4-ary layout
// (parent at (i-1)/4, children at 4i+1..4i+4) halves tree height vs a
// binary heap; for this access mix — pushes land near the bottom, pops
// re-sink a leaf — the shallower sift wins despite the wider child scan.
//
//dsp:hotpath
func (k *Kernel) siftUp(i int) {
	h := k.heap
	n := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !less(n, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = n
}

// siftDown restores heap order after replacing the node at index i.
//
//dsp:hotpath
func (k *Kernel) siftDown(i int) {
	h := k.heap
	n := h[i]
	sz := len(h)
	for {
		first := 4*i + 1
		if first >= sz {
			break
		}
		end := first + 4
		if end > sz {
			end = sz
		}
		m := first
		for c := first + 1; c < end; c++ {
			if less(h[c], h[m]) {
				m = c
			}
		}
		if !less(h[m], n) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = n
}
