package sim

import (
	"fmt"
	"sort"
)

// Disposition is the state of a thread after a scheduling step.
type Disposition int

const (
	// Yield means the thread is still runnable (it exhausted its quantum or
	// voluntarily yielded) and should be re-queued.
	Yield Disposition = iota
	// Blocked means the thread is waiting on a resource and must not run
	// until Wake is called for it.
	Blocked
	// Done means the thread has terminated.
	Done
)

func (d Disposition) String() string {
	switch d {
	case Yield:
		return "yield"
	case Blocked:
		return "blocked"
	case Done:
		return "done"
	}
	return fmt.Sprintf("disposition(%d)", int(d))
}

// Runner is the body of a simulated thread. Step runs the thread for up to
// quantum cycles of simulated work and reports how many cycles it consumed
// together with its disposition. A step may overshoot the quantum by its
// last indivisible operation. A Blocked thread must arrange (through the
// resource it blocks on) for Scheduler.Wake to be called later. Step must
// consume at least one cycle unless it blocks or finishes, so the simulation
// always makes progress.
type Runner interface {
	Step(quantum Cycles) (consumed Cycles, d Disposition)
}

type threadState int

const (
	stateRunnable threadState = iota
	stateRunning
	stateBlocked
	stateDone
)

// Thread is a simulated OS thread.
type Thread struct {
	ID   int
	Name string

	// Affinity is the set of core IDs the thread may run on. Empty means
	// any core.
	Affinity []int

	runner      Runner
	state       threadState
	core        int // core currently queued on or running on; -1 if none
	vruntime    Cycles
	sched       *Scheduler
	wakePending bool // a wake arrived while the thread was mid-step

	// OnCoreChange, if non-nil, is called when the thread is dispatched on a
	// different core than its previous dispatch (including first dispatch,
	// with prev == -1). The hardware model uses this to account for cache
	// affinity loss on migration.
	OnCoreChange func(prev, next int)

	lastCore int // core of previous dispatch, -1 initially
}

// Vruntime returns the thread's accumulated virtual runtime.
func (t *Thread) Vruntime() Cycles { return t.vruntime }

// Core is one simulated CPU core.
type Core struct {
	ID     int
	Socket int

	runq   []*Thread
	busyAt Cycles // time until which the core is executing
	active bool   // a dispatch chain is in flight
	last   *Thread

	busyCycles Cycles // total cycles spent running threads (utilization)
	switches   int64  // context switches observed
}

// BusyCycles reports cycles this core spent executing threads.
func (c *Core) BusyCycles() Cycles { return c.busyCycles }

// Switches reports the number of context switches on this core.
func (c *Core) Switches() int64 { return c.switches }

// SchedulerConfig holds scheduler tuning parameters.
type SchedulerConfig struct {
	// Quantum is the time-slice length. Linux CFS targets a few
	// milliseconds; the default is 1 ms at 2.4 GHz.
	Quantum Cycles
	// SwitchCost is the direct cost of a context switch (register state,
	// kernel entry); cache pollution is modelled separately by the
	// hardware layer via Thread.OnCoreChange and natural cache reuse.
	SwitchCost Cycles
}

// DefaultSchedulerConfig returns production defaults for a 2.4 GHz machine.
func DefaultSchedulerConfig() SchedulerConfig {
	return SchedulerConfig{
		Quantum:    2_400_000, // 1 ms
		SwitchCost: 7_200,     // 3 us
	}
}

// Scheduler models an OS thread scheduler over a fixed set of cores.
// Threads are created with Spawn, placed on the least-loaded allowed core,
// and run in quanta. It approximates CFS: per-core run queues ordered by
// virtual runtime, with wake-time placement onto the least-loaded core.
type Scheduler struct {
	K     *Kernel
	cfg   SchedulerConfig
	cores []*Core

	threads []*Thread
	live    int

	pendingWakes []*Thread // wakes produced during the current Step
	inStep       bool

	// OnSlice, if non-nil, observes every dispatch: thread t occupied core
	// for [start, start+dur) (dur includes context-switch overhead) and left
	// in disposition d. The tracing layer uses it to build per-core and
	// per-executor timelines; it must not re-enter the scheduler.
	OnSlice func(t *Thread, core int, start, dur Cycles, d Disposition)
}

// NewScheduler creates a scheduler over nCores cores, coresPerSocket wide
// sockets, driven by kernel k.
func NewScheduler(k *Kernel, nCores, coresPerSocket int, cfg SchedulerConfig) *Scheduler {
	if cfg.Quantum <= 0 {
		panic("sim: non-positive quantum")
	}
	s := &Scheduler{K: k, cfg: cfg}
	for i := 0; i < nCores; i++ {
		s.cores = append(s.cores, &Core{ID: i, Socket: i / coresPerSocket})
	}
	return s
}

// Cores returns the simulated cores.
func (s *Scheduler) Cores() []*Core { return s.cores }

// Threads returns all spawned threads.
func (s *Scheduler) Threads() []*Thread { return s.threads }

// Live reports the number of threads that have not finished.
func (s *Scheduler) Live() int { return s.live }

// Spawn creates a runnable thread executing r, restricted to the given
// affinity (nil or empty = all cores), and enqueues it.
func (s *Scheduler) Spawn(name string, r Runner, affinity []int) *Thread {
	t := &Thread{
		ID:       len(s.threads),
		Name:     name,
		Affinity: append([]int(nil), affinity...),
		runner:   r,
		state:    stateRunnable,
		core:     -1,
		lastCore: -1,
		sched:    s,
	}
	s.threads = append(s.threads, t)
	s.live++
	s.enqueue(t)
	return t
}

// Wake marks a blocked thread runnable. Safe to call from within a running
// Step; the wake takes effect when the step completes. Waking a runnable
// thread is a no-op. Waking a thread that is mid-step (its blocking
// disposition not yet applied) records the wake so the thread is re-queued
// instead of blocked when its step completes — otherwise the wakeup would
// be lost and the thread could sleep forever.
func (s *Scheduler) Wake(t *Thread) {
	switch t.state {
	case stateRunning:
		t.wakePending = true
	case stateBlocked:
		t.state = stateRunnable
		if s.inStep {
			s.pendingWakes = append(s.pendingWakes, t)
			return
		}
		s.enqueue(t)
	}
}

func (t *Thread) allowed(core int) bool {
	if len(t.Affinity) == 0 {
		return true
	}
	for _, c := range t.Affinity {
		if c == core {
			return true
		}
	}
	return false
}

// enqueue places t on the least-loaded allowed core and kicks dispatch.
// Like CFS, it prefers the thread's previous core (cache affinity) unless
// another allowed core is strictly less loaded.
func (s *Scheduler) enqueue(t *Thread) {
	load := func(c *Core) int {
		l := len(c.runq)
		if c.active {
			l++ // a running thread counts toward load
		}
		return l
	}
	best := -1
	bestLoad := 1 << 30
	for _, c := range s.cores {
		if !t.allowed(c.ID) {
			continue
		}
		if l := load(c); l < bestLoad {
			bestLoad = l
			best = c.ID
		}
	}
	if best < 0 {
		panic(fmt.Sprintf("sim: thread %q has empty effective affinity", t.Name))
	}
	if t.lastCore >= 0 && t.lastCore != best && t.allowed(t.lastCore) &&
		load(s.cores[t.lastCore]) <= bestLoad+1 {
		best = t.lastCore
	}
	c := s.cores[best]
	t.core = best
	// Wake-up preemption fairness: a freshly queued thread should not lag
	// arbitrarily behind, nor leapfrog the queue. Clamp vruntime to the
	// core's minimum, as CFS does on wakeup.
	if min, ok := s.minVruntime(c); ok && t.vruntime < min {
		t.vruntime = min
	}
	c.runq = append(c.runq, t)
	s.kick(c)
}

func (s *Scheduler) minVruntime(c *Core) (Cycles, bool) {
	var min Cycles
	found := false
	for _, q := range c.runq {
		if !found || q.vruntime < min {
			min, found = q.vruntime, true
		}
	}
	return min, found
}

// kick schedules a dispatch on core c if one is not already in flight.
func (s *Scheduler) kick(c *Core) {
	if c.active || len(c.runq) == 0 {
		return
	}
	c.active = true
	at := s.K.Now()
	if c.busyAt > at {
		at = c.busyAt
	}
	s.K.At(at, func() { s.dispatch(c) })
}

// dispatch picks the next thread on c and runs one quantum of it.
func (s *Scheduler) dispatch(c *Core) {
	c.active = false
	if len(c.runq) == 0 {
		return
	}
	// Pick min-vruntime thread (stable on ties by queue order).
	idx := 0
	for i, t := range c.runq {
		if t.vruntime < c.runq[idx].vruntime {
			idx = i
		}
		_ = i
	}
	t := c.runq[idx]
	c.runq = append(c.runq[:idx], c.runq[idx+1:]...)

	var overhead Cycles
	if c.last != t {
		if c.last != nil {
			overhead = s.cfg.SwitchCost
			c.switches++
		}
		c.last = t
	}
	if t.lastCore != c.ID {
		if t.OnCoreChange != nil {
			t.OnCoreChange(t.lastCore, c.ID)
		}
		t.lastCore = c.ID
	}

	t.state = stateRunning
	s.inStep = true
	consumed, d := t.runner.Step(s.cfg.Quantum)
	s.inStep = false
	if consumed < 0 {
		panic(fmt.Sprintf("sim: thread %q consumed negative cycles", t.Name))
	}
	// A step may overshoot the quantum by the cost of its last indivisible
	// operation (e.g. a GC pause landing mid-tuple); runners self-limit.
	if consumed == 0 && d == Yield {
		// Force progress: a runnable thread that did nothing burns a cycle
		// (models a spurious wakeup / immediate re-block check).
		consumed = 1
	}

	total := consumed + overhead
	c.busyCycles += total
	c.busyAt = s.K.Now() + total
	t.vruntime += consumed
	if s.OnSlice != nil {
		s.OnSlice(t, c.ID, s.K.Now(), total, d)
	}

	// Wakes produced during the step take effect at the end of the step's
	// execution window, as do the thread's own state transition and the
	// next dispatch on this core. Capture the wake list now: other cores
	// may step (and produce their own wakes) before our completion fires.
	wakes := s.pendingWakes
	s.pendingWakes = nil
	s.K.At(c.busyAt, func() { s.complete(c, t, d, wakes) })
}

// complete finishes a step at the end of its execution window: it applies
// the thread's disposition, releases deferred wakes, and re-arms the core.
func (s *Scheduler) complete(c *Core, t *Thread, d Disposition, wakes []*Thread) {
	switch d {
	case Yield:
		t.state = stateRunnable
		t.wakePending = false
		c.runq = append(c.runq, t)
	case Blocked:
		if t.wakePending {
			// A wake raced with this step's blocking decision: stay runnable.
			t.wakePending = false
			t.state = stateRunnable
			c.runq = append(c.runq, t)
		} else {
			t.state = stateBlocked
			t.core = -1
		}
	case Done:
		t.state = stateDone
		t.core = -1
		s.live--
	}
	for _, w := range wakes {
		s.enqueue(w)
	}
	s.kick(c)
}

// Utilization returns the fraction of total core-cycles spent busy over the
// elapsed simulated time on the given cores (all cores if ids is nil).
func (s *Scheduler) Utilization(ids []int) float64 {
	elapsed := s.K.Now()
	if elapsed == 0 {
		return 0
	}
	var busy Cycles
	n := 0
	want := map[int]bool{}
	for _, id := range ids {
		want[id] = true
	}
	for _, c := range s.cores {
		if len(ids) > 0 && !want[c.ID] {
			continue
		}
		busy += c.busyCycles
		n++
	}
	if n == 0 {
		return 0
	}
	return float64(busy) / (float64(elapsed) * float64(n))
}

// CoresOnSockets returns the core IDs belonging to the given sockets,
// sorted ascending.
func (s *Scheduler) CoresOnSockets(sockets []int) []int {
	want := map[int]bool{}
	for _, sk := range sockets {
		want[sk] = true
	}
	var ids []int
	for _, c := range s.cores {
		if want[c.Socket] {
			ids = append(ids, c.ID)
		}
	}
	sort.Ints(ids)
	return ids
}
