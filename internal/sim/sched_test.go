package sim

import (
	"testing"
)

// workRunner consumes a fixed budget of cycles, quantum by quantum.
type workRunner struct {
	remaining Cycles
	steps     int
}

func (w *workRunner) Step(quantum Cycles) (Cycles, Disposition) {
	w.steps++
	if w.remaining <= quantum {
		c := w.remaining
		w.remaining = 0
		return c, Done
	}
	w.remaining -= quantum
	return quantum, Yield
}

// blockingRunner blocks after each unit of work until woken.
type blockingRunner struct {
	sched    *Scheduler
	units    int
	unitCost Cycles
	done     func()
}

func (b *blockingRunner) Step(quantum Cycles) (Cycles, Disposition) {
	if b.units == 0 {
		if b.done != nil {
			b.done()
		}
		return 0, Done
	}
	b.units--
	return b.unitCost, Blocked
}

func cfg(q, sw Cycles) SchedulerConfig { return SchedulerConfig{Quantum: q, SwitchCost: sw} }

func TestSchedulerRunsSingleThreadToCompletion(t *testing.T) {
	k := NewKernel()
	s := NewScheduler(k, 1, 1, cfg(100, 0))
	w := &workRunner{remaining: 1050}
	s.Spawn("w", w, nil)
	k.Run(0)
	if w.remaining != 0 {
		t.Fatalf("thread left %d cycles unconsumed", w.remaining)
	}
	if w.steps != 11 { // 10 full quanta + 1 partial
		t.Fatalf("steps = %d, want 11", w.steps)
	}
	if s.Live() != 0 {
		t.Fatalf("live = %d, want 0", s.Live())
	}
	if got := s.cores[0].BusyCycles(); got != 1050 {
		t.Fatalf("busy cycles = %d, want 1050", got)
	}
}

func TestSchedulerTimeSharesFairly(t *testing.T) {
	k := NewKernel()
	s := NewScheduler(k, 1, 1, cfg(100, 0))
	a := &workRunner{remaining: 1000}
	b := &workRunner{remaining: 1000}
	ta := s.Spawn("a", a, nil)
	tb := s.Spawn("b", b, nil)
	k.Run(0)
	if a.remaining != 0 || b.remaining != 0 {
		t.Fatalf("unfinished work: a=%d b=%d", a.remaining, b.remaining)
	}
	if ta.Vruntime() != 1000 || tb.Vruntime() != 1000 {
		t.Fatalf("vruntime a=%d b=%d, want 1000 each", ta.Vruntime(), tb.Vruntime())
	}
	// Serialized on one core: total elapsed equals total work.
	if k.Now() != 2000 {
		t.Fatalf("elapsed = %d, want 2000", k.Now())
	}
}

func TestSchedulerParallelCores(t *testing.T) {
	k := NewKernel()
	s := NewScheduler(k, 2, 1, cfg(100, 0))
	a := &workRunner{remaining: 1000}
	b := &workRunner{remaining: 1000}
	s.Spawn("a", a, nil)
	s.Spawn("b", b, nil)
	k.Run(0)
	// Two cores: threads land on different cores and finish concurrently.
	if k.Now() != 1000 {
		t.Fatalf("elapsed = %d, want 1000 (parallel execution)", k.Now())
	}
}

func TestSchedulerAffinityRestrictsPlacement(t *testing.T) {
	k := NewKernel()
	s := NewScheduler(k, 4, 2, cfg(100, 0))
	a := &workRunner{remaining: 500}
	b := &workRunner{remaining: 500}
	s.Spawn("a", a, []int{3})
	s.Spawn("b", b, []int{3})
	k.Run(0)
	if got := s.cores[3].BusyCycles(); got != 1000 {
		t.Fatalf("core 3 busy = %d, want 1000", got)
	}
	for i := 0; i < 3; i++ {
		if s.cores[i].BusyCycles() != 0 {
			t.Fatalf("core %d busy = %d, want 0", i, s.cores[i].BusyCycles())
		}
	}
	// Serialized on the single allowed core.
	if k.Now() != 1000 {
		t.Fatalf("elapsed = %d, want 1000", k.Now())
	}
}

func TestSchedulerContextSwitchCost(t *testing.T) {
	k := NewKernel()
	s := NewScheduler(k, 1, 1, cfg(100, 10))
	a := &workRunner{remaining: 200}
	b := &workRunner{remaining: 200}
	s.Spawn("a", a, nil)
	s.Spawn("b", b, nil)
	k.Run(0)
	// Alternating a,b,a,b: 3 switches (first dispatch is free), each 10.
	if got := s.cores[0].Switches(); got != 3 {
		t.Fatalf("switches = %d, want 3", got)
	}
	if k.Now() != 430 {
		t.Fatalf("elapsed = %d, want 430 (400 work + 3*10 switch)", k.Now())
	}
}

func TestSchedulerBlockAndWake(t *testing.T) {
	k := NewKernel()
	s := NewScheduler(k, 1, 1, cfg(1000, 0))
	finished := false
	b := &blockingRunner{sched: s, units: 3, unitCost: 50, done: func() { finished = true }}
	th := s.Spawn("b", b, nil)
	// Periodic waker.
	var wake func()
	wake = func() {
		s.Wake(th)
		if s.Live() > 0 {
			k.After(200, wake)
		}
	}
	k.After(200, wake)
	k.Run(0)
	if !finished {
		t.Fatal("blocking thread never finished")
	}
	if th.Vruntime() != 150 {
		t.Fatalf("vruntime = %d, want 150", th.Vruntime())
	}
}

func TestSchedulerWakeDuringStepIsDeferred(t *testing.T) {
	k := NewKernel()
	s := NewScheduler(k, 2, 2, cfg(100, 0))
	consumer := &blockingRunner{units: 1, unitCost: 10}
	tc := s.Spawn("consumer", consumer, nil)
	// Drain the first spurious dispatch: the consumer blocks immediately.
	k.Run(0)

	woke := false
	producer := runnerFunc(func(q Cycles) (Cycles, Disposition) {
		s.Wake(tc) // mid-step wake must be deferred, not dispatched reentrantly
		woke = true
		return 25, Done
	})
	s.Spawn("producer", producer, nil)
	k.Run(0)
	if !woke {
		t.Fatal("producer never ran")
	}
	if s.Live() != 0 {
		t.Fatalf("live = %d, want 0 (consumer should have been woken and finished)", s.Live())
	}
}

type runnerFunc func(Cycles) (Cycles, Disposition)

func (f runnerFunc) Step(q Cycles) (Cycles, Disposition) { return f(q) }

func TestSchedulerWakeNonBlockedIsNoop(t *testing.T) {
	k := NewKernel()
	s := NewScheduler(k, 1, 1, cfg(100, 0))
	w := &workRunner{remaining: 100}
	th := s.Spawn("w", w, nil)
	s.Wake(th) // runnable, not blocked: must not double-enqueue
	k.Run(0)
	if th.Vruntime() != 100 {
		t.Fatalf("vruntime = %d, want 100", th.Vruntime())
	}
}

func TestSchedulerUtilization(t *testing.T) {
	k := NewKernel()
	s := NewScheduler(k, 2, 1, cfg(100, 0))
	s.Spawn("a", &workRunner{remaining: 500}, []int{0})
	k.Run(0)
	if got := s.Utilization([]int{0}); got != 1.0 {
		t.Fatalf("core 0 utilization = %v, want 1.0", got)
	}
	if got := s.Utilization(nil); got != 0.5 {
		t.Fatalf("overall utilization = %v, want 0.5", got)
	}
}

func TestSchedulerOnCoreChangeFires(t *testing.T) {
	k := NewKernel()
	s := NewScheduler(k, 2, 1, cfg(100, 0))
	var changes [][2]int
	w := &workRunner{remaining: 300}
	th := s.Spawn("w", w, nil)
	th.OnCoreChange = func(prev, next int) { changes = append(changes, [2]int{prev, next}) }
	k.Run(0)
	if len(changes) == 0 {
		t.Fatal("OnCoreChange never fired")
	}
	if changes[0][0] != -1 {
		t.Fatalf("first change prev = %d, want -1", changes[0][0])
	}
}

func TestCoresOnSockets(t *testing.T) {
	k := NewKernel()
	s := NewScheduler(k, 8, 4, DefaultSchedulerConfig())
	got := s.CoresOnSockets([]int{1})
	want := []int{4, 5, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
