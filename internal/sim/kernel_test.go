package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKernelFiresInTimeOrder(t *testing.T) {
	k := NewKernel()
	var got []Cycles
	times := []Cycles{50, 10, 30, 10, 90, 0}
	for _, at := range times {
		at := at
		k.At(at, func() { got = append(got, at) })
	}
	k.Run(0)
	want := append([]Cycles(nil), times...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d fired at %d, want %d", i, got[i], want[i])
		}
	}
}

func TestKernelTieBreakIsInsertionOrder(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(42, func() { got = append(got, i) })
	}
	k.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("tie at index %d resolved to %d, want %d", i, v, i)
		}
	}
}

func TestKernelClockAdvancesMonotonically(t *testing.T) {
	k := NewKernel()
	rng := rand.New(rand.NewSource(7))
	// Events schedule further events; the observed clock must never go back.
	last := Cycles(-1)
	var spawn func(depth int)
	spawn = func(depth int) {
		if k.Now() < last {
			t.Fatalf("clock went backwards: %d after %d", k.Now(), last)
		}
		last = k.Now()
		if depth == 0 {
			return
		}
		for i := 0; i < 3; i++ {
			d := Cycles(rng.Intn(100))
			k.After(d, func() { spawn(depth - 1) })
		}
	}
	k.At(0, func() { spawn(4) })
	k.Run(0)
}

func TestKernelRunLimit(t *testing.T) {
	k := NewKernel()
	fired := 0
	for i := 1; i <= 10; i++ {
		k.At(Cycles(i*100), func() { fired++ })
	}
	n := k.Run(550)
	if n != 5 || fired != 5 {
		t.Fatalf("Run(550) fired %d (counter %d), want 5", n, fired)
	}
	if k.Now() != 550 {
		t.Fatalf("clock = %d after bounded run, want 550", k.Now())
	}
	n = k.Run(0)
	if n != 5 || fired != 10 {
		t.Fatalf("second Run fired %d (counter %d), want 5 more", n, fired)
	}
}

func TestKernelPanicsOnPastEvent(t *testing.T) {
	k := NewKernel()
	k.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(50, func() {})
	})
	k.Run(0)
}

func TestKernelPropertyAllEventsFireSorted(t *testing.T) {
	f := func(raw []uint16) bool {
		k := NewKernel()
		var fired []Cycles
		for _, r := range raw {
			at := Cycles(r)
			k.At(at, func() { fired = append(fired, at) })
		}
		k.Run(0)
		if len(fired) != len(raw) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCyclesConversions(t *testing.T) {
	c := Cycles(2_400_000_000)
	if s := c.Seconds(2_400_000_000); s != 1.0 {
		t.Fatalf("Seconds = %v, want 1.0", s)
	}
	if ms := Cycles(2_400_000).Millis(2_400_000_000); ms != 1.0 {
		t.Fatalf("Millis = %v, want 1.0", ms)
	}
}
