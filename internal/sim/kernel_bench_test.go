package sim

import "testing"

// BenchmarkKernelEventChurn measures the schedule/fire round-trip cost of
// the event core: each iteration schedules one event in the near future and
// fires the earliest pending one, over a standing window of pending events
// (the steady-state shape of a simulation run). The headline figures are
// ns/op and allocs/op; the non-boxing heap target is 0 allocs/op.
func BenchmarkKernelEventChurn(b *testing.B) {
	const window = 4096
	k := NewKernel()
	fn := func() {}
	for i := 0; i < window; i++ {
		k.At(Cycles(i%257), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.At(k.Now()+Cycles(i%257+1), fn)
		k.Step()
	}
}
