package sim

import (
	"testing"
)

// mixedRunner alternates short bursts with blocking, modelling an executor
// that drains a queue and sleeps.
type mixedRunner struct {
	work    Cycles
	burst   Cycles
	sched   *Scheduler
	kernel  *Kernel
	periods Cycles
}

func (m *mixedRunner) Step(q Cycles) (Cycles, Disposition) {
	if m.work <= 0 {
		return 0, Done
	}
	c := m.burst
	if c > m.work {
		c = m.work
	}
	if c > q {
		c = q
	}
	m.work -= c
	return c, Yield
}

// Two CPU-bound threads of equal demand sharing one core finish within one
// quantum of each other (CFS fairness).
func TestSchedulerLongRunFairness(t *testing.T) {
	k := NewKernel()
	cfg := DefaultSchedulerConfig()
	s := NewScheduler(k, 1, 1, cfg)
	a := &mixedRunner{work: 50 * cfg.Quantum, burst: cfg.Quantum}
	b := &mixedRunner{work: 50 * cfg.Quantum, burst: cfg.Quantum}
	ta := s.Spawn("a", a, nil)
	tb := s.Spawn("b", b, nil)
	k.Run(0)
	diff := ta.Vruntime() - tb.Vruntime()
	if diff < 0 {
		diff = -diff
	}
	if diff > cfg.Quantum {
		t.Fatalf("vruntime divergence %d exceeds one quantum %d", diff, cfg.Quantum)
	}
}

// Wake placement prefers the previous core when loads are comparable
// (cache affinity), so a solo blocking thread must not wander.
func TestSchedulerWakeStickiness(t *testing.T) {
	k := NewKernel()
	s := NewScheduler(k, 4, 4, DefaultSchedulerConfig())
	cores := map[int]bool{}
	var th *Thread
	blocker := runnerFunc(func(q Cycles) (Cycles, Disposition) {
		return 100, Blocked
	})
	th = s.Spawn("blocker", blocker, nil)
	th.OnCoreChange = func(prev, next int) { cores[next] = true }
	for i := 0; i < 50; i++ {
		at := Cycles((i + 1) * 10_000)
		k.At(at, func() { s.Wake(th) })
	}
	k.At(600_000, func() { /* end marker */ })
	k.Run(600_000)
	if len(cores) != 1 {
		t.Fatalf("idle blocking thread migrated across %d cores; wake placement is not sticky", len(cores))
	}
}

// A CPU hog and a light sleeper on one core: the sleeper's wakeups are not
// starved indefinitely (vruntime clamping on wake).
func TestSchedulerSleeperNotStarved(t *testing.T) {
	k := NewKernel()
	cfg := DefaultSchedulerConfig()
	s := NewScheduler(k, 1, 1, cfg)
	s.Spawn("hog", &workRunner{remaining: 100 * cfg.Quantum}, nil)

	ran := 0
	var sleeper *Thread
	sleeper = s.Spawn("sleeper", runnerFunc(func(q Cycles) (Cycles, Disposition) {
		ran++
		return 1000, Blocked
	}), nil)
	var wake func()
	wakes := 0
	wake = func() {
		wakes++
		s.Wake(sleeper)
		if wakes < 20 {
			k.After(2*cfg.Quantum, wake)
		}
	}
	k.After(cfg.Quantum, wake)
	k.Run(0)
	if ran < 15 {
		t.Fatalf("sleeper ran only %d of ~21 wakeups alongside a CPU hog", ran)
	}
}

// Affinity subsets spread load across exactly the allowed cores.
func TestSchedulerAffinitySpread(t *testing.T) {
	k := NewKernel()
	s := NewScheduler(k, 8, 8, DefaultSchedulerConfig())
	allowed := []int{2, 5}
	for i := 0; i < 4; i++ {
		s.Spawn("w", &workRunner{remaining: 500_000}, allowed)
	}
	k.Run(0)
	for _, c := range s.Cores() {
		busy := c.BusyCycles() > 0
		shouldBe := c.ID == 2 || c.ID == 5
		if busy != shouldBe {
			t.Fatalf("core %d busy=%v, affinity %v", c.ID, busy, allowed)
		}
	}
	if s.Cores()[2].BusyCycles() != s.Cores()[5].BusyCycles() {
		t.Fatalf("allowed cores imbalanced: %d vs %d",
			s.Cores()[2].BusyCycles(), s.Cores()[5].BusyCycles())
	}
}
