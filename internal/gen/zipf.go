// Package gen provides deterministic synthetic workload generators standing
// in for the seven datasets the paper's micro benchmark uses (none of which
// is redistributable): Zipf-Mandelbrot text for word count, transaction
// sequences for fraud detection, HTTP server logs for log processing,
// sensor readings for spike detection, call detail records for VoIP spam
// detection, GPS trajectories on a road grid for traffic monitoring, and a
// Linear Road traffic model. Each generator matches its original's record
// schema, key cardinality, and skew — the properties that drive operator
// memory and cache behaviour.
package gen

import (
	"math"
	"math/rand"
)

// ZipfMandelbrot samples ranks 0..N-1 with probability proportional to
// 1/(rank+1+q)^s. s=0 degenerates to the uniform distribution — the paper
// runs word count with "skew set to 0".
type ZipfMandelbrot struct {
	rng *rand.Rand
	cdf []float64
}

// NewZipfMandelbrot builds a sampler over n ranks with exponent s and
// Mandelbrot shift q.
func NewZipfMandelbrot(rng *rand.Rand, n int, s, q float64) *ZipfMandelbrot {
	if n <= 0 {
		panic("gen: zipf needs at least one rank")
	}
	cdf := make([]float64, n)
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += 1 / math.Pow(float64(i+1)+q, s)
		cdf[i] = acc
	}
	for i := range cdf {
		cdf[i] /= acc
	}
	return &ZipfMandelbrot{rng: rng, cdf: cdf}
}

// Next samples one rank.
func (z *ZipfMandelbrot) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// N returns the number of ranks.
func (z *ZipfMandelbrot) N() int { return len(z.cdf) }
