package gen

import (
	"math"
	"math/rand"
)

// RoadGrid is a synthetic road network: Rows horizontal and Cols vertical
// roads on a regular grid. It provides the ground truth the map-matching
// operator of the traffic-monitoring application searches.
type RoadGrid struct {
	Rows, Cols int
	// Spacing is the distance between adjacent parallel roads, in degrees.
	Spacing float64
	// OriginLat/OriginLon anchor the grid.
	OriginLat, OriginLon float64
}

// NewRoadGrid builds a grid anchored near Beijing (the GeoLife region).
func NewRoadGrid(rows, cols int) *RoadGrid {
	return &RoadGrid{
		Rows: rows, Cols: cols,
		Spacing:   0.01, // ~1.1 km
		OriginLat: 39.9, OriginLon: 116.3,
	}
}

// Roads returns the total number of roads.
func (g *RoadGrid) Roads() int { return g.Rows + g.Cols }

// RoadLat returns the latitude of horizontal road r.
func (g *RoadGrid) RoadLat(r int) float64 { return g.OriginLat + float64(r)*g.Spacing }

// RoadLon returns the longitude of vertical road c.
func (g *RoadGrid) RoadLon(c int) float64 { return g.OriginLon + float64(c)*g.Spacing }

// NearestRoad returns the ID of the road closest to a point and its
// distance in degrees. Horizontal roads have IDs 0..Rows-1, vertical roads
// Rows..Rows+Cols-1. This is a brute-force scan: the map-matching operator
// pays for it; tests use it as an oracle.
func (g *RoadGrid) NearestRoad(lat, lon float64) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for r := 0; r < g.Rows; r++ {
		if d := math.Abs(lat - g.RoadLat(r)); d < bestD {
			best, bestD = r, d
		}
	}
	for c := 0; c < g.Cols; c++ {
		if d := math.Abs(lon - g.RoadLon(c)); d < bestD {
			best, bestD = g.Rows+c, d
		}
	}
	return best, bestD
}

// GPSTrace is one position report from a vehicle, matching the GeoLife
// trajectory schema the paper's TM application consumes.
type GPSTrace struct {
	VehicleID int
	Lat, Lon  float64
	Altitude  float64
	Speed     float64 // km/h
	Bearing   float64 // degrees
	Timestamp int64
}

// GPSGen simulates vehicles driving on a RoadGrid with GPS noise.
type GPSGen struct {
	rng      *rand.Rand
	grid     *RoadGrid
	vehicles []gpsVehicle
	now      int64
}

type gpsVehicle struct {
	road     int // current road ID
	progress float64
	speed    float64
	dir      float64 // +1 or -1 along the road
}

// NewGPSGen places the given number of vehicles randomly on the grid.
func NewGPSGen(seed int64, grid *RoadGrid, vehicles int) *GPSGen {
	rng := rand.New(rand.NewSource(seed))
	g := &GPSGen{rng: rng, grid: grid}
	for i := 0; i < vehicles; i++ {
		g.vehicles = append(g.vehicles, gpsVehicle{
			road:     rng.Intn(grid.Roads()),
			progress: rng.Float64(),
			speed:    20 + rng.Float64()*60,
			dir:      float64(1 - 2*rng.Intn(2)),
		})
	}
	return g
}

// Grid returns the underlying road network.
func (g *GPSGen) Grid() *RoadGrid { return g.grid }

// Next returns one trace point.
func (g *GPSGen) Next() GPSTrace {
	id := g.rng.Intn(len(g.vehicles))
	v := &g.vehicles[id]
	g.now++

	v.progress += v.dir * v.speed / 40000
	if v.progress < 0 || v.progress > 1 {
		// Turn onto a random crossing road at the boundary.
		v.road = g.rng.Intn(g.grid.Roads())
		v.progress = g.rng.Float64()
		v.speed = 20 + g.rng.Float64()*60
	}
	noise := func() float64 { return (g.rng.Float64() - 0.5) * g.grid.Spacing * 0.2 }

	var lat, lon, bearing float64
	if v.road < g.grid.Rows { // horizontal road: fixed lat
		lat = g.grid.RoadLat(v.road) + noise()
		lon = g.grid.OriginLon + v.progress*float64(g.grid.Cols-1)*g.grid.Spacing
		bearing = 90
	} else {
		lon = g.grid.RoadLon(v.road-g.grid.Rows) + noise()
		lat = g.grid.OriginLat + v.progress*float64(g.grid.Rows-1)*g.grid.Spacing
		bearing = 0
	}
	return GPSTrace{
		VehicleID: id,
		Lat:       lat,
		Lon:       lon,
		Altitude:  40 + g.rng.Float64()*20,
		Speed:     v.speed,
		Bearing:   bearing,
		Timestamp: g.now,
	}
}
