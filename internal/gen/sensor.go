package gen

import "math/rand"

// SensorReading is one measurement from a sensor mote, matching the Intel
// lab dataset's schema the paper uses for spike detection.
type SensorReading struct {
	MoteID      int
	Timestamp   int64
	Temperature float64
	Humidity    float64
	Light       float64
	Voltage     float64
}

// SensorGen produces readings from a set of motes: smooth random walks with
// occasional injected spikes (so the spike-detection threshold of 0.03
// relative deviation triggers at a controlled rate).
type SensorGen struct {
	rng      *rand.Rand
	motes    int
	temp     []float64
	now      int64
	spikePct float64
}

// NewSensorGen builds a generator over the given mote population; spikePct
// is the per-reading probability of an injected spike.
func NewSensorGen(seed int64, motes int, spikePct float64) *SensorGen {
	rng := rand.New(rand.NewSource(seed))
	g := &SensorGen{rng: rng, motes: motes, spikePct: spikePct}
	g.temp = make([]float64, motes)
	for i := range g.temp {
		g.temp[i] = 18 + rng.Float64()*6
	}
	return g
}

// Next returns one reading.
func (g *SensorGen) Next() SensorReading {
	id := g.rng.Intn(g.motes)
	g.now++
	// Smooth drift.
	g.temp[id] += (g.rng.Float64() - 0.5) * 0.02
	t := g.temp[id]
	if g.rng.Float64() < g.spikePct {
		t *= 1.05 + g.rng.Float64()*0.1 // 5-15% spike
	}
	return SensorReading{
		MoteID:      id,
		Timestamp:   g.now,
		Temperature: t,
		Humidity:    35 + g.rng.Float64()*10,
		Light:       100 + g.rng.Float64()*400,
		Voltage:     2.5 + g.rng.Float64()*0.3,
	}
}
