package gen

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestZipfUniformWhenSkewZero(t *testing.T) {
	z := NewZipfMandelbrot(rand.New(rand.NewSource(1)), 10, 0, 2.7)
	counts := make([]int, 10)
	n := 100_000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for r, c := range counts {
		share := float64(c) / float64(n)
		if math.Abs(share-0.1) > 0.01 {
			t.Fatalf("rank %d share = %.3f, want ~0.1 (uniform at skew 0)", r, share)
		}
	}
}

func TestZipfSkewConcentrates(t *testing.T) {
	z := NewZipfMandelbrot(rand.New(rand.NewSource(1)), 100, 1.2, 2.7)
	counts := make([]int, 100)
	for i := 0; i < 50_000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("rank 0 (%d) not more popular than rank 50 (%d)", counts[0], counts[50])
	}
	head := counts[0] + counts[1] + counts[2]
	if float64(head)/50_000 < 0.15 {
		t.Fatalf("top-3 share %.3f too low for skew 1.2", float64(head)/50_000)
	}
}

func TestSentenceGenShape(t *testing.T) {
	g := NewSentenceGen(7, 200, 8, 0)
	vocab := map[string]bool{}
	for _, w := range g.Vocab() {
		if vocab[w] {
			t.Fatalf("duplicate vocabulary word %q", w)
		}
		vocab[w] = true
	}
	for i := 0; i < 100; i++ {
		s := g.Next()
		words := strings.Fields(s)
		if len(words) != 8 {
			t.Fatalf("sentence has %d words, want 8", len(words))
		}
		for _, w := range words {
			if !vocab[w] {
				t.Fatalf("word %q not in vocabulary", w)
			}
		}
	}
}

func TestSentenceGenDeterministic(t *testing.T) {
	a, b := NewSentenceGen(3, 100, 6, 0), NewSentenceGen(3, 100, 6, 0)
	for i := 0; i < 50; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed generators diverged")
		}
	}
}

func TestTransactionGenFraudBehaviour(t *testing.T) {
	g := NewTransactionGen(5, 1000, 0.05)
	// Learn normal transitions: count how often the generator follows the
	// two preferred successors per type for normal vs fraud customers.
	follow := map[bool][2]int{} // isFraud -> (preferred, total)
	last := map[string]int{}
	for i := 0; i < 60_000; i++ {
		tx := g.Next()
		prev, seen := last[tx.CustomerID]
		last[tx.CustomerID] = tx.Type
		if !seen {
			continue
		}
		var custNum int
		if _, err := sscanCustomer(tx.CustomerID, &custNum); err != nil {
			t.Fatal(err)
		}
		fraud := custNum < 50
		pref := tx.Type == (prev+1)%TransactionTypes || tx.Type == (prev+4)%TransactionTypes
		f := follow[fraud]
		if pref {
			f[0]++
		}
		f[1]++
		follow[fraud] = f
	}
	normRate := float64(follow[false][0]) / float64(follow[false][1])
	fraudRate := float64(follow[true][0]) / float64(follow[true][1])
	if normRate < 0.7 {
		t.Fatalf("normal customers follow preferred transitions only %.2f of the time", normRate)
	}
	if fraudRate > 0.4 {
		t.Fatalf("fraud customers follow preferred transitions %.2f of the time — not anomalous", fraudRate)
	}
}

func sscanCustomer(s string, out *int) (int, error) {
	var n int
	_, err := fmt.Sscanf(s, "C%06d", &n)
	*out = n
	return n, err
}

func TestWeblogGenMix(t *testing.T) {
	g := NewWeblogGen(2, 500, 200)
	status := map[int]int{}
	ips := map[string]bool{}
	n := 20_000
	for i := 0; i < n; i++ {
		r := g.Next()
		status[r.Status]++
		ips[r.IP] = true
		if r.Status == 200 && r.Bytes == 0 {
			t.Fatal("200 response with zero bytes")
		}
		if r.Status != 200 && r.Bytes != 0 {
			t.Fatal("non-200 response with body")
		}
	}
	if share := float64(status[200]) / float64(n); share < 0.8 || share > 0.9 {
		t.Fatalf("200 share = %.3f, want ~0.85", share)
	}
	if len(ips) < 100 {
		t.Fatalf("only %d distinct IPs", len(ips))
	}
}

func TestSensorGenSpikes(t *testing.T) {
	g := NewSensorGen(3, 10, 0.02)
	base := map[int]float64{}
	spikes := 0
	n := 20_000
	for i := 0; i < n; i++ {
		r := g.Next()
		if b, ok := base[r.MoteID]; ok {
			if r.Temperature > b*1.04 {
				spikes++
			}
		}
		if r.Temperature < 50 { // ignore spike values when tracking base
			base[r.MoteID] = r.Temperature
		}
	}
	share := float64(spikes) / float64(n)
	if share < 0.005 || share > 0.08 {
		t.Fatalf("spike share = %.4f, want around 0.02", share)
	}
}

func TestCDRGenSpammerBehaviour(t *testing.T) {
	g := NewCDRGen(4, 10_000, 50)
	callees := map[string]map[string]bool{}
	answered := map[string][2]int{}
	for i := 0; i < 40_000; i++ {
		c := g.Next()
		if callees[c.Calling] == nil {
			callees[c.Calling] = map[string]bool{}
		}
		callees[c.Calling][c.Called] = true
		a := answered[c.Calling]
		if c.Established {
			a[0]++
		}
		a[1]++
		answered[c.Calling] = a
	}
	// Spammers: wide fan-out, low answer rate.
	var spamFan, normFan, spamN, normN float64
	var spamAns, normAns float64
	for num, set := range callees {
		a := answered[num]
		if a[1] < 10 {
			continue
		}
		rate := float64(a[0]) / float64(a[1])
		if g.IsSpammer(num) {
			spamFan += float64(len(set)) / float64(a[1])
			spamAns += rate
			spamN++
		} else {
			normFan += float64(len(set)) / float64(a[1])
			normAns += rate
			normN++
		}
	}
	if spamN == 0 || normN == 0 {
		t.Fatal("population not covered")
	}
	if spamFan/spamN <= normFan/normN {
		t.Fatal("spammers do not have wider fan-out per call")
	}
	if spamAns/spamN >= normAns/normN {
		t.Fatal("spammers do not have lower answer rates")
	}
}

func TestRoadGridNearest(t *testing.T) {
	grid := NewRoadGrid(5, 5)
	// A point exactly on horizontal road 2.
	id, d := grid.NearestRoad(grid.RoadLat(2), grid.OriginLon+0.003)
	if id != 2 || d > 1e-9 {
		t.Fatalf("nearest = %d (d=%g), want road 2", id, d)
	}
	// A point on vertical road 3.
	id, _ = grid.NearestRoad(grid.OriginLat+0.0234, grid.RoadLon(3))
	if id != 5+3 {
		t.Fatalf("nearest = %d, want vertical road %d", id, 5+3)
	}
}

func TestGPSGenPointsNearRoads(t *testing.T) {
	grid := NewRoadGrid(10, 10)
	g := NewGPSGen(6, grid, 50)
	for i := 0; i < 2000; i++ {
		p := g.Next()
		_, d := grid.NearestRoad(p.Lat, p.Lon)
		if d > grid.Spacing*0.5 {
			t.Fatalf("trace point %d is %.4f deg from any road (spacing %.4f)", i, d, grid.Spacing)
		}
		if p.VehicleID < 0 || p.VehicleID >= 50 {
			t.Fatalf("vehicle ID out of range: %d", p.VehicleID)
		}
	}
}

func TestLRGenRecordMix(t *testing.T) {
	g := NewLRGen(8, DefaultLRConfig())
	types := map[int]int{}
	n := 30_000
	stopped := 0
	for i := 0; i < n; i++ {
		r := g.Next()
		types[r.Type]++
		switch r.Type {
		case LRPosition:
			if r.Seg < 0 || r.Seg >= 100 {
				t.Fatalf("segment out of range: %d", r.Seg)
			}
			if r.Speed == 0 {
				stopped++
			}
		case LRAccountBal, LRDailyExp:
			if r.QID == 0 {
				t.Fatal("query without QID")
			}
		default:
			t.Fatalf("unknown record type %d", r.Type)
		}
	}
	if types[LRPosition] < n*9/10 {
		t.Fatalf("position reports = %d of %d, want >= 90%%", types[LRPosition], n)
	}
	if types[LRAccountBal] == 0 || types[LRDailyExp] == 0 {
		t.Fatal("no historical queries generated")
	}
	if stopped == 0 {
		t.Fatal("no stopped vehicles: accidents never happen")
	}
}

func TestLRGenTimeAdvances(t *testing.T) {
	g := NewLRGen(8, DefaultLRConfig())
	var last int64
	for i := 0; i < 5000; i++ {
		r := g.Next()
		if r.Time < last {
			t.Fatal("time went backwards")
		}
		last = r.Time
	}
	if last == 0 {
		t.Fatal("time never advanced")
	}
}

func TestHistoricalTolls(t *testing.T) {
	h := HistoricalTolls(1, 10, 5)
	if len(h) != 50 {
		t.Fatalf("table size = %d, want 50", len(h))
	}
	h2 := HistoricalTolls(1, 10, 5)
	for k, v := range h {
		if h2[k] != v {
			t.Fatal("historical tolls not deterministic")
		}
	}
}
