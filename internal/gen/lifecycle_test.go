package gen

import "testing"

// Accidents in the LR traffic model both start and clear: a stopped
// vehicle eventually resumes motion.
func TestLRAccidentLifecycle(t *testing.T) {
	cfg := DefaultLRConfig()
	cfg.AccidentEvery = 300 // frequent, for test coverage
	g := NewLRGen(4, cfg)
	stoppedAt := map[int]bool{}
	resumed := 0
	for i := 0; i < 60_000; i++ {
		r := g.Next()
		if r.Type != LRPosition {
			continue
		}
		if r.Speed == 0 {
			stoppedAt[r.VID] = true
		} else if stoppedAt[r.VID] {
			resumed++
			delete(stoppedAt, r.VID)
		}
	}
	if resumed == 0 {
		t.Fatal("no vehicle ever resumed after stopping: accidents never clear")
	}
}

// Accidents involve pairs: when a vehicle stops, its paired follower stops
// at the same location.
func TestLRAccidentPairsShareLocation(t *testing.T) {
	cfg := DefaultLRConfig()
	cfg.AccidentEvery = 200
	g := NewLRGen(9, cfg)
	type loc struct{ xway, dir, seg, pos int }
	stopLocs := map[loc]int{}
	for i := 0; i < 40_000; i++ {
		r := g.Next()
		if r.Type == LRPosition && r.Speed == 0 {
			stopLocs[loc{r.XWay, r.Dir, r.Seg, r.Pos}]++
		}
	}
	pairs := 0
	for _, n := range stopLocs {
		if n >= 2 {
			pairs++
		}
	}
	if pairs == 0 {
		t.Fatal("no co-located stopped vehicles: the accident condition can never trigger")
	}
}

// GPS vehicles eventually turn onto other roads, covering the grid.
func TestGPSVehiclesTurn(t *testing.T) {
	grid := NewRoadGrid(20, 20)
	g := NewGPSGen(2, grid, 5)
	roadsSeen := map[int]bool{}
	for i := 0; i < 30_000; i++ {
		p := g.Next()
		id, _ := grid.NearestRoad(p.Lat, p.Lon)
		roadsSeen[id] = true
	}
	if len(roadsSeen) < 10 {
		t.Fatalf("5 vehicles covered only %d roads in 30k points; turning is broken", len(roadsSeen))
	}
}

// Weblog generator's second-resolution clock advances over a long run.
func TestWeblogClockAdvances(t *testing.T) {
	g := NewWeblogGen(3, 100, 50)
	first := g.Next().Timestamp
	var last int64
	for i := 0; i < 5000; i++ {
		last = g.Next().Timestamp
	}
	if last <= first {
		t.Fatal("weblog clock frozen")
	}
}

// Sentence generators with different seeds produce different streams.
func TestSentenceGenSeedsDiffer(t *testing.T) {
	a := NewSentenceGen(1, 500, 8, 0)
	b := NewSentenceGen(2, 500, 8, 0)
	same := 0
	for i := 0; i < 50; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("%d of 50 sentences identical across seeds", same)
	}
}
