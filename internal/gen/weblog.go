package gen

import (
	"fmt"
	"math/rand"
)

// LogRecord is one HTTP server log line, matching the schema of the 1998
// World Cup web request trace (with IPs anonymized to random-but-fixed
// addresses, as the paper does).
type LogRecord struct {
	IP        string
	Timestamp int64 // seconds
	URL       string
	Status    int
	Bytes     int
}

// WeblogGen produces HTTP log records: a skewed set of client IPs spread
// over a realistic country/city space, a Zipfian URL popularity
// distribution, and a status-code mix dominated by 200s.
type WeblogGen struct {
	rng   *rand.Rand
	ips   []string
	urls  []string
	zipIP *ZipfMandelbrot
	zipU  *ZipfMandelbrot
	now   int64
}

// NewWeblogGen builds a generator over the given client and URL
// populations.
func NewWeblogGen(seed int64, clients, urls int) *WeblogGen {
	rng := rand.New(rand.NewSource(seed))
	g := &WeblogGen{rng: rng, now: 893964000} // WorldCup-era epoch
	for i := 0; i < clients; i++ {
		g.ips = append(g.ips, fmt.Sprintf("%d.%d.%d.%d",
			1+rng.Intn(223), rng.Intn(256), rng.Intn(256), 1+rng.Intn(254)))
	}
	for i := 0; i < urls; i++ {
		g.urls = append(g.urls, fmt.Sprintf("/english/images/page%04d.html", i))
	}
	g.zipIP = NewZipfMandelbrot(rng, clients, 0.9, 2)
	g.zipU = NewZipfMandelbrot(rng, urls, 1.1, 2)
	return g
}

var statusMix = []struct {
	code   int
	weight float64
}{
	{200, 0.85}, {304, 0.08}, {404, 0.04}, {302, 0.02}, {500, 0.01},
}

// Next returns one log record.
func (g *WeblogGen) Next() LogRecord {
	if g.rng.Float64() < 0.2 {
		g.now++
	}
	u := g.rng.Float64()
	status := 200
	acc := 0.0
	for _, s := range statusMix {
		acc += s.weight
		if u <= acc {
			status = s.code
			break
		}
	}
	size := 0
	if status == 200 {
		size = 500 + g.rng.Intn(30_000)
	}
	return LogRecord{
		IP:        g.ips[g.zipIP.Next()],
		Timestamp: g.now,
		URL:       g.urls[g.zipU.Next()],
		Status:    status,
		Bytes:     size,
	}
}
