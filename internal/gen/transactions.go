package gen

import (
	"fmt"
	"math/rand"
)

// Transaction is one record of the fraud-detection stream: customer ID,
// transaction ID, and transaction type, matching the paper's sample
// transaction schema.
type Transaction struct {
	CustomerID string
	TransID    int64
	Type       int
}

// TransactionTypes is the size of the transaction-type alphabet.
const TransactionTypes = 10

// TransactionGen produces customer transaction sequences. Most customers
// follow a small set of "normal" Markov transition patterns; a configurable
// fraction are fraudulent and emit low-probability transitions, which the
// missProbability detector should flag.
type TransactionGen struct {
	rng       *rand.Rand
	customers int
	fraudPct  float64
	lastType  map[int]int
	normal    [TransactionTypes][TransactionTypes]float64
	transID   int64
}

// NewTransactionGen builds a generator over the given customer population.
func NewTransactionGen(seed int64, customers int, fraudPct float64) *TransactionGen {
	rng := rand.New(rand.NewSource(seed))
	g := &TransactionGen{
		rng:       rng,
		customers: customers,
		fraudPct:  fraudPct,
		lastType:  make(map[int]int),
	}
	// Normal behaviour: each type strongly prefers 2-3 successor types.
	for i := 0; i < TransactionTypes; i++ {
		a, b := (i+1)%TransactionTypes, (i+4)%TransactionTypes
		for j := 0; j < TransactionTypes; j++ {
			g.normal[i][j] = 0.02
		}
		g.normal[i][a] = 0.5
		g.normal[i][b] = 0.34
	}
	return g
}

// Next returns one transaction.
func (g *TransactionGen) Next() Transaction {
	cust := g.rng.Intn(g.customers)
	last := g.lastType[cust]
	var next int
	if float64(cust) < float64(g.customers)*g.fraudPct {
		// Fraudulent customers draw uniformly: frequent rare transitions.
		next = g.rng.Intn(TransactionTypes)
	} else {
		u := g.rng.Float64()
		acc := 0.0
		for j := 0; j < TransactionTypes; j++ {
			acc += g.normal[last][j]
			if u <= acc {
				next = j
				break
			}
		}
	}
	g.lastType[cust] = next
	g.transID++
	return Transaction{
		CustomerID: fmt.Sprintf("C%06d", cust),
		TransID:    g.transID,
		Type:       next,
	}
}
