package gen

import (
	"fmt"
	"math/rand"
	"strings"
)

// SentenceGen produces text sentences over a fixed synthetic vocabulary
// drawn with a Zipf-Mandelbrot distribution, standing in for the paper's
// Linux-kernel-dictionary text stream (skew 0 = uniform).
type SentenceGen struct {
	vocab []string
	zipf  *ZipfMandelbrot
	rng   *rand.Rand
	words int
}

// NewSentenceGen builds a generator with the given vocabulary size, words
// per sentence, and skew.
func NewSentenceGen(seed int64, vocabSize, wordsPerSentence int, skew float64) *SentenceGen {
	rng := rand.New(rand.NewSource(seed))
	g := &SentenceGen{
		vocab: Vocabulary(vocabSize),
		rng:   rng,
		words: wordsPerSentence,
	}
	g.zipf = NewZipfMandelbrot(rng, vocabSize, skew, 2.7)
	return g
}

// Vocabulary returns a deterministic vocabulary of n distinct words with a
// dictionary-like length distribution.
func Vocabulary(n int) []string {
	base := []string{
		"static", "struct", "return", "kernel", "module", "device", "driver",
		"buffer", "signal", "thread", "mutex", "atomic", "cache", "inline",
		"config", "memory", "socket", "packet", "stream", "filter", "handle",
		"index", "queue", "table", "batch", "event", "tuple", "merge", "split",
		"count", "state", "value", "field", "group", "shard", "route", "spout",
	}
	vocab := make([]string, n)
	for i := range vocab {
		w := base[i%len(base)]
		if i >= len(base) {
			w = fmt.Sprintf("%s%d", w, i/len(base))
		}
		vocab[i] = w
	}
	return vocab
}

// Next returns one sentence.
func (g *SentenceGen) Next() string {
	parts := make([]string, g.words)
	for i := range parts {
		parts[i] = g.vocab[g.zipf.Next()]
	}
	return strings.Join(parts, " ")
}

// Vocab returns the generator's vocabulary (shared; do not mutate).
func (g *SentenceGen) Vocab() []string { return g.vocab }
