package gen

import (
	"fmt"
	"math/rand"
)

// CDR is one call detail record, matching the paper's synthetic VoIP
// dataset schema: calling number, called number, calling date, answer
// time, call duration, and call-established flag.
type CDR struct {
	Calling     string
	Called      string
	Date        int64 // seconds
	AnswerTime  int64
	Duration    int // seconds
	Established bool
}

// CDRGen produces call records over a subscriber population with a small
// embedded set of telemarketers: numbers with very high out-degree (many
// distinct callees), short calls, and low answer rates — the behaviour the
// VoIP spam modules score.
type CDRGen struct {
	rng         *rand.Rand
	subscribers int
	spammers    int
	now         int64
}

// NewCDRGen builds a generator; spammers of the subscriber population
// behave as telemarketers.
func NewCDRGen(seed int64, subscribers, spammers int) *CDRGen {
	return &CDRGen{
		rng:         rand.New(rand.NewSource(seed)),
		subscribers: subscribers,
		spammers:    spammers,
		now:         1_000_000,
	}
}

// IsSpammer reports whether a generated number belongs to the telemarketer
// set (for test oracles).
func (g *CDRGen) IsSpammer(number string) bool {
	var id int
	fmt.Sscanf(number, "+65%08d", &id)
	return id < g.spammers
}

func (g *CDRGen) number(id int) string { return fmt.Sprintf("+65%08d", id) }

// Next returns one CDR.
func (g *CDRGen) Next() CDR {
	g.now += int64(g.rng.Intn(3))
	// Spammers originate a disproportionate share of calls.
	var caller int
	if g.rng.Float64() < 0.25 {
		caller = g.rng.Intn(g.spammers)
	} else {
		caller = g.spammers + g.rng.Intn(g.subscribers-g.spammers)
	}
	spam := caller < g.spammers

	var callee int
	if spam {
		callee = g.rng.Intn(g.subscribers) // wide fan-out
	} else {
		// Normal users call inside a small social circle.
		callee = (caller*31 + g.rng.Intn(8)) % g.subscribers
	}

	established := true
	duration := 30 + g.rng.Intn(600)
	if spam {
		established = g.rng.Float64() < 0.4 // mostly unanswered
		duration = g.rng.Intn(40)           // short calls
	}
	answer := g.now + int64(g.rng.Intn(10))
	if !established {
		duration = 0
	}
	return CDR{
		Calling:     g.number(caller),
		Called:      g.number(callee),
		Date:        g.now,
		AnswerTime:  answer,
		Duration:    duration,
		Established: established,
	}
}
