package gen

import "math/rand"

// Linear Road record types (Arasu et al., VLDB 2004).
const (
	LRPosition   = 0 // position report
	LRAccountBal = 2 // account balance query
	LRDailyExp   = 3 // daily expenditure query
)

// LRRecord is one input record of the Linear Road benchmark: a position
// report or a historical query request, as in the merged Uppsala datasets
// the paper uses.
type LRRecord struct {
	Type  int
	Time  int64 // seconds since start
	VID   int   // vehicle ID
	Speed int   // mph
	XWay  int   // expressway
	Lane  int   // 0..4
	Dir   int   // 0 east, 1 west
	Seg   int   // segment 0..99
	Pos   int   // position within expressway, feet
	QID   int   // query ID for type 2/3
	Day   int   // for daily expenditure queries
}

// LRConfig sizes the traffic model.
type LRConfig struct {
	XWays    int
	Vehicles int
	Segments int
	// AccidentEvery is the mean number of position reports between
	// accident onsets.
	AccidentEvery int
	// QueryFraction is the share of records that are historical queries.
	QueryFraction float64
}

// DefaultLRConfig returns a laptop-scale Linear Road setup.
func DefaultLRConfig() LRConfig {
	return LRConfig{
		XWays:         2,
		Vehicles:      500,
		Segments:      100,
		AccidentEvery: 4000,
		QueryFraction: 0.02,
	}
}

// LRGen simulates vehicles on a road toll network emitting position
// reports every 30 simulated seconds, with occasional accidents (two
// vehicles stopped at the same location) and interleaved historical
// queries.
type LRGen struct {
	rng      *rand.Rand
	cfg      LRConfig
	vehicles []lrVehicle
	now      int64
	emitted  int64
	qid      int
	next     int // round-robin vehicle cursor
}

type lrVehicle struct {
	xway, dir, seg, lane int
	pos                  int
	speed                int
	stoppedFor           int // accident countdown
}

// NewLRGen builds the traffic model.
func NewLRGen(seed int64, cfg LRConfig) *LRGen {
	rng := rand.New(rand.NewSource(seed))
	g := &LRGen{rng: rng, cfg: cfg}
	for i := 0; i < cfg.Vehicles; i++ {
		g.vehicles = append(g.vehicles, lrVehicle{
			xway:  rng.Intn(cfg.XWays),
			dir:   rng.Intn(2),
			seg:   rng.Intn(cfg.Segments),
			lane:  1 + rng.Intn(3),
			pos:   rng.Intn(cfg.Segments * 5280),
			speed: 40 + rng.Intn(40),
		})
	}
	return g
}

// Next returns one input record.
func (g *LRGen) Next() LRRecord {
	g.emitted++
	if g.rng.Float64() < g.cfg.QueryFraction {
		g.qid++
		vid := g.rng.Intn(g.cfg.Vehicles)
		if g.rng.Intn(2) == 0 {
			return LRRecord{Type: LRAccountBal, Time: g.now, VID: vid, QID: g.qid}
		}
		return LRRecord{
			Type: LRDailyExp, Time: g.now, VID: vid, QID: g.qid,
			XWay: g.rng.Intn(g.cfg.XWays), Day: 1 + g.rng.Intn(69),
		}
	}

	id := g.next
	g.next = (g.next + 1) % len(g.vehicles)
	if id == 0 {
		g.now += 30 // a full round of reports = one 30 s reporting period
	}
	v := &g.vehicles[id]

	// Accident onset: stop this vehicle and its follower for a while.
	if g.cfg.AccidentEvery > 0 && g.rng.Intn(g.cfg.AccidentEvery) == 0 && v.stoppedFor == 0 {
		v.stoppedFor = 4 + g.rng.Intn(4)
		other := &g.vehicles[(id+1)%len(g.vehicles)]
		other.xway, other.dir, other.seg, other.pos = v.xway, v.dir, v.seg, v.pos
		other.lane = v.lane
		other.stoppedFor = v.stoppedFor
	}

	if v.stoppedFor > 0 {
		v.stoppedFor--
		v.speed = 0
	} else {
		if v.speed == 0 {
			v.speed = 30 + g.rng.Intn(30)
		}
		v.pos += v.speed * 44 // ~speed mph over 30 s in feet
		seg := v.pos / 5280
		if seg >= g.cfg.Segments {
			v.pos = 0
			seg = 0
			v.dir = 1 - v.dir
		}
		v.seg = seg
		v.speed += g.rng.Intn(11) - 5
		if v.speed < 10 {
			v.speed = 10
		}
		if v.speed > 100 {
			v.speed = 100
		}
	}
	return LRRecord{
		Type: LRPosition, Time: g.now, VID: id, Speed: v.speed,
		XWay: v.xway, Lane: v.lane, Dir: v.dir, Seg: v.seg, Pos: v.pos,
	}
}

// HistoricalTolls returns a deterministic per-(vehicle, day) toll table for
// daily-expenditure queries, standing in for Linear Road's 10-week history.
func HistoricalTolls(seed int64, vehicles, days int) map[[2]int]int {
	rng := rand.New(rand.NewSource(seed))
	m := make(map[[2]int]int, vehicles*days)
	for v := 0; v < vehicles; v++ {
		for d := 1; d <= days; d++ {
			m[[2]int{v, d}] = rng.Intn(90)
		}
	}
	return m
}
