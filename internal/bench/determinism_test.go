package bench

import (
	"strings"
	"testing"

	"streamscale/internal/engine"
)

// assertIdentical fails unless two results of the same cell are
// bit-identical in everything deterministic: profiler totals and per-bucket
// costs, throughput inputs, sink counts, GC activity, and latency quantiles.
func assertIdentical(t *testing.T, label string, a, b *engine.Result) {
	t.Helper()
	if a.Profile.Costs != b.Profile.Costs {
		t.Errorf("%s: profiler cost vectors differ:\n%v\nvs\n%v", label, a.Profile.Costs, b.Profile.Costs)
	}
	if a.Profile.Total() != b.Profile.Total() {
		t.Errorf("%s: profiler totals differ: %d vs %d", label, a.Profile.Total(), b.Profile.Total())
	}
	if a.SourceEvents != b.SourceEvents || a.SinkEvents != b.SinkEvents {
		t.Errorf("%s: event counts differ: %d/%d vs %d/%d", label,
			a.SourceEvents, a.SinkEvents, b.SourceEvents, b.SinkEvents)
	}
	if a.ElapsedSeconds != b.ElapsedSeconds {
		t.Errorf("%s: simulated elapsed differs: %v vs %v", label, a.ElapsedSeconds, b.ElapsedSeconds)
	}
	if a.Throughput().PerSecond() != b.Throughput().PerSecond() {
		t.Errorf("%s: throughput differs: %v vs %v", label,
			a.Throughput().PerSecond(), b.Throughput().PerSecond())
	}
	if a.MinorGCs != b.MinorGCs || a.GCShare != b.GCShare {
		t.Errorf("%s: GC activity differs", label)
	}
	for _, q := range []float64{0.5, 0.99} {
		if a.Latency.Quantile(q) != b.Latency.Quantile(q) {
			t.Errorf("%s: latency p%v differs: %v vs %v", label, q*100,
				a.Latency.Quantile(q), b.Latency.Quantile(q))
		}
	}
}

// The safety net for the parallel harness: the same cell run twice
// sequentially, and once through RunCells with four workers, must produce
// bit-identical results. Run under -race this also proves cells share no
// mutable state.
func TestCellDeterminism(t *testing.T) {
	cells := []Cell{
		{App: "wc", System: "storm", Sockets: 1},
		{App: "wc", System: "flink", Sockets: 1},
		{App: "sd", System: "storm", Sockets: 1, BatchSize: 4},
		{App: "lg", System: "flink", Sockets: 1, Chaining: true},
	}

	sequential := make([]*engine.Result, len(cells))
	for i, c := range cells {
		res, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		sequential[i] = res
	}

	// Re-run sequentially, bypassing the memo layer: the simulator itself
	// must be deterministic, not just the cache coherent.
	for i, c := range cells {
		res, err := runDirect(c)
		if err != nil {
			t.Fatal(err)
		}
		if res == sequential[i] {
			t.Fatalf("runDirect returned a memoized pointer for %s/%s", c.App, c.System)
		}
		assertIdentical(t, "rerun "+c.App+"/"+c.System, sequential[i], res)
	}

	// And through the pool at jobs=4. Drop the memoized entries first so
	// the workers really simulate concurrently — under -race this is what
	// proves cells share no mutable state.
	ResetMemo()
	parallel, err := RunCells(cells, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(parallel) != len(cells) {
		t.Fatalf("RunCells returned %d results for %d cells", len(parallel), len(cells))
	}
	for i, cr := range parallel {
		if cr.Cell.App != cells[i].App || cr.Cell.System != cells[i].System {
			t.Fatalf("result %d out of order: got %s/%s", i, cr.Cell.App, cr.Cell.System)
		}
		assertIdentical(t, "parallel "+cr.Cell.App+"/"+cr.Cell.System, sequential[i], cr.Res)
	}
}

// RunCells must preserve input order and surface the first error in cell
// order, not completion order.
func TestRunCellsErrorOrder(t *testing.T) {
	cells := []Cell{
		{App: "wc", System: "storm", Sockets: 1},
		{App: "wc", System: "samza", Sockets: 1}, // unknown system
		{App: "nosuch", System: "storm"},         // unknown app
	}
	_, err := RunCells(cells, 4)
	if err == nil {
		t.Fatal("RunCells accepted a failing cell")
	}
	if got := err.Error(); !strings.Contains(got, "samza") {
		t.Errorf("error %q should name the first failing cell (samza)", got)
	}
}
