package bench

import (
	"fmt"
	"sort"
	"strings"

	"streamscale/internal/apps"

	"streamscale/internal/engine"
	"streamscale/internal/hw"
	"streamscale/internal/jvm"
	"streamscale/internal/place"
	"streamscale/internal/profiler"
)

// Systems are the two engine profiles under study.
var Systems = []string{"storm", "flink"}

// CellResult pairs a cell with its run result.
type CellResult struct {
	Cell Cell
	Res  *engine.Result
}

// Sweep runs one cell per (app x system) with a common configuration
// mutation and returns results in deterministic order. Cells execute on
// the package worker pool (see RunCells / SetJobs).
func Sweep(appNames []string, mutate func(*Cell)) ([]CellResult, error) {
	var cells []Cell
	for _, app := range appNames {
		for _, sys := range Systems {
			c := Cell{App: app, System: sys, Sockets: 1}
			if mutate != nil {
				mutate(&c)
			}
			cells = append(cells, c)
		}
	}
	return runCells(cells)
}

func (cr CellResult) key() string { return cr.Cell.App + "/" + cr.Cell.System }

func find(cells []CellResult, app, sys string) *CellResult {
	for i := range cells {
		if cells[i].Cell.App == app && cells[i].Cell.System == sys {
			return &cells[i]
		}
	}
	return nil
}

// --- E1 / E4 / E5 / E6 / E11: the single-socket study -------------------

// SingleSocketStudy runs the seven applications on one socket under both
// systems; its results feed Fig 6a, Table IV, Fig 7, Fig 8 and Fig 11.
func SingleSocketStudy() ([]CellResult, error) {
	return Sweep(apps.BenchmarkNames(), nil)
}

// Fig6aTable renders absolute throughput per app and system (Figure 6a).
func Fig6aTable(cells []CellResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 6a — throughput on a single socket (k events/s)\n")
	fmt.Fprintf(&b, "%-6s %12s %12s\n", "app", "storm", "flink")
	for _, app := range apps.BenchmarkNames() {
		s := find(cells, app, "storm")
		f := find(cells, app, "flink")
		fmt.Fprintf(&b, "%-6s %12.1f %12.1f\n", app,
			s.Res.Throughput().KPerSecond(), f.Res.Throughput().KPerSecond())
	}
	return b.String()
}

// TableIV renders CPU and memory bandwidth utilization (Table IV).
func TableIV(cells []CellResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table IV — CPU and memory bandwidth utilization, single socket\n")
	fmt.Fprintf(&b, "%-16s", "")
	for _, app := range apps.BenchmarkNames() {
		fmt.Fprintf(&b, "%8s", app)
	}
	b.WriteByte('\n')
	for _, sys := range Systems {
		for _, row := range []string{"CPU", "Memory"} {
			fmt.Fprintf(&b, "%-6s %-9s", sys, row)
			for _, app := range apps.BenchmarkNames() {
				cr := find(cells, app, sys)
				v := cr.Res.CPUUtil
				if row == "Memory" {
					v = cr.Res.MemUtil
				}
				fmt.Fprintf(&b, "%7.0f%%", v*100)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Fig7Table renders the execution-time breakdown (Figure 7).
func Fig7Table(cells []CellResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 7 — execution time breakdown (%% of cycles)\n")
	fmt.Fprintf(&b, "%-6s %-6s %6s %6s %6s %6s %7s\n",
		"sys", "app", "comp", "front", "back", "spec", "stalls")
	for _, sys := range Systems {
		for _, app := range apps.BenchmarkNames() {
			bd := find(cells, app, sys).Res.Profile.Breakdown()
			fmt.Fprintf(&b, "%-6s %-6s %5.1f%% %5.1f%% %5.1f%% %5.1f%% %6.1f%%\n",
				sys, app, bd.Computation*100, bd.FrontEnd*100, bd.BackEnd*100,
				bd.BadSpec*100, (1-bd.Computation)*100)
		}
	}
	return b.String()
}

// Fig8Table renders the front-end stall breakdown (Figure 8).
func Fig8Table(cells []CellResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 8 — front-end stall breakdown (%% of front-end stalls)\n")
	fmt.Fprintf(&b, "%-6s %-6s %10s %10s %8s\n", "sys", "app", "i-decode", "l1i-miss", "itlb")
	for _, sys := range Systems {
		for _, app := range apps.BenchmarkNames() {
			fe := find(cells, app, sys).Res.Profile.FrontEnd()
			fmt.Fprintf(&b, "%-6s %-6s %9.1f%% %9.1f%% %7.1f%%\n",
				sys, app, fe.IDecoding*100, fe.L1IMiss*100, fe.ITLB*100)
		}
	}
	return b.String()
}

// Fig11Table renders the back-end stall breakdown (Figure 11).
func Fig11Table(cells []CellResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 11 — back-end stall breakdown (%% of back-end stalls)\n")
	fmt.Fprintf(&b, "%-6s %-6s %8s %8s %8s %8s\n", "sys", "app", "l1d", "l2", "llc", "dtlb")
	for _, sys := range Systems {
		for _, app := range apps.BenchmarkNames() {
			be := find(cells, app, sys).Res.Profile.BackEnd()
			fmt.Fprintf(&b, "%-6s %-6s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
				sys, app, be.L1D*100, be.L2*100, be.LLC*100, be.DTLB*100)
		}
	}
	return b.String()
}

// --- E2 / E3: scalability (Fig 6b, 6c) ----------------------------------

// ScalePoints is the paper's core sweep: 1..8 cores on one socket, then 2
// and 4 full sockets.
var ScalePoints = []int{1, 2, 4, 8, 16, 32}

// ScalabilityResult holds normalized throughput per app over ScalePoints.
type ScalabilityResult struct {
	System     string
	Points     []int
	Normalized map[string][]float64 // app -> normalized throughput
}

// Scalability runs the full Fig 6b/6c sweep for one system.
func Scalability(system string) (*ScalabilityResult, error) {
	return ScalabilityFor(system, apps.BenchmarkNames(), ScalePoints)
}

// ScalabilityFor runs the scalability sweep for a subset of applications
// and core counts. The first point is the normalization base.
func ScalabilityFor(system string, appNames []string, points []int) (*ScalabilityResult, error) {
	out := &ScalabilityResult{
		System:     system,
		Points:     points,
		Normalized: map[string][]float64{},
	}
	var cells []Cell
	for _, app := range appNames {
		for _, cores := range points {
			scale := 1.0
			if cores <= 2 {
				scale = 0.5 // fewer events keep 1-2 core runs tractable
			}
			// Re-tune parallelism per machine slice, as the paper does:
			// executor counts grow with the enabled core count.
			par := cores / 8
			if par < 1 {
				par = 1
			}
			cells = append(cells, Cell{App: app, System: system, Cores: cores, EventScale: scale, Scale: par})
		}
	}
	results, err := runCells(cells)
	if err != nil {
		return nil, err
	}
	for ai, app := range appNames {
		var base float64
		for i := range points {
			tp := results[ai*len(points)+i].Res.Throughput().PerSecond()
			if i == 0 {
				base = tp
			}
			out.Normalized[app] = append(out.Normalized[app], tp/base)
		}
	}
	return out, nil
}

// Table renders the scalability sweep.
func (s *ScalabilityResult) Table() string {
	var b strings.Builder
	fig := "6b"
	if s.System == "flink" {
		fig = "6c"
	}
	fmt.Fprintf(&b, "Fig %s — %s normalized throughput vs cores (1 core = 100%%)\n", fig, s.System)
	fmt.Fprintf(&b, "%-6s", "app")
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%9dc", p)
	}
	b.WriteByte('\n')
	names := make([]string, 0, len(s.Normalized))
	for app := range s.Normalized {
		names = append(names, app)
	}
	sort.Strings(names)
	for _, app := range names {
		fmt.Fprintf(&b, "%-6s", app)
		for _, v := range s.Normalized[app] {
			fmt.Fprintf(&b, "%9.0f%%", v*100)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// --- E7: instruction footprint CDF (Fig 9) ------------------------------

// FootprintResult holds a Figure 9 CDF for one app/system.
type FootprintResult struct {
	App, System string
	Points      []profiler.CDFPoint
	// OverL1I is the fraction of footprints exceeding the 32 KB L1I.
	OverL1I float64
}

// FootprintCDF runs the Fig 9 study: all seven applications plus the
// "null" application, single socket.
func FootprintCDF(system string) ([]FootprintResult, error) {
	names := append(append([]string{}, apps.BenchmarkNames()...), "null")
	cells := make([]Cell, len(names))
	for i, app := range names {
		cells[i] = Cell{App: app, System: system, Sockets: 1}
	}
	results, err := runCells(cells)
	if err != nil {
		return nil, err
	}
	var out []FootprintResult
	for i, app := range names {
		res := results[i].Res
		pts := res.Profile.FootprintCDF(profiler.DefaultCDFThresholds())
		out = append(out, FootprintResult{
			App: app, System: system, Points: pts,
			OverL1I: 1 - res.Profile.Footprint.CDFAt(32<<10),
		})
	}
	return out, nil
}

// Fig9Table renders selected CDF points.
func Fig9Table(rows []FootprintResult) string {
	marks := []int{1 << 10, 8 << 10, 32 << 10, 256 << 10, 1 << 20, 10 << 20}
	var b strings.Builder
	if len(rows) > 0 {
		fmt.Fprintf(&b, "Fig 9 — instruction footprint CDF, %s (fraction of invocation gaps <= x)\n", rows[0].System)
	}
	fmt.Fprintf(&b, "%-6s", "app")
	for _, m := range marks {
		fmt.Fprintf(&b, "%9s", byteLabel(m))
	}
	fmt.Fprintf(&b, "%10s\n", ">L1I(32K)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s", r.App)
		for _, m := range marks {
			v := 0.0
			for _, p := range r.Points {
				if p.Bytes <= m {
					v = p.Fraction
				}
			}
			fmt.Fprintf(&b, "%8.2f ", v)
		}
		fmt.Fprintf(&b, "%9.0f%%\n", r.OverL1I*100)
	}
	return b.String()
}

func byteLabel(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}

// --- E8: Table V — LLC misses on four sockets ----------------------------

// TableVRow holds LLC miss stall shares for one app.
type TableVRow struct {
	App           string
	Local, Remote float64 // share of total execution time
}

// TableV runs the four-socket LLC study for one system (the paper reports
// Storm; we support both).
func TableV(system string) ([]TableVRow, error) {
	names := apps.BenchmarkNames()
	cells := make([]Cell, len(names))
	for i, app := range names {
		cells[i] = Cell{App: app, System: system, Sockets: 4, Scale: 4}
	}
	results, err := runCells(cells)
	if err != nil {
		return nil, err
	}
	var out []TableVRow
	for i, app := range names {
		lo, re := results[i].Res.Profile.LLCMissShares()
		out = append(out, TableVRow{App: app, Local: lo, Remote: re})
	}
	return out, nil
}

// TableVTable renders Table V.
func TableVTable(system string, rows []TableVRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table V — LLC miss stalls, %s on four sockets (%% of execution time)\n", system)
	fmt.Fprintf(&b, "%-6s %12s %12s\n", "app", "llc-local", "llc-remote")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %11.1f%% %11.1f%%\n", r.App, r.Local*100, r.Remote*100)
	}
	return b.String()
}

// --- E9 / E10: Fig 10 — Map-Match executor sweep -------------------------

// Fig10Row is one parallelism point of the Map-Matcher sweep.
type Fig10Row struct {
	Executors     int
	MeanLatencyMs float64
	StddevMs      float64
	// BackEndShares of LLC-remote / LLC-local / other (Fig 10b).
	RemoteShare, LocalShare, OtherShare float64
}

// Fig10Executors is the paper's parallelism points for Map-Match.
var Fig10Executors = []int{32, 40, 48, 56}

// Fig10 sweeps the TM Map-Matcher executor count on four sockets (Storm).
func Fig10() ([]Fig10Row, error) {
	cells := make([]Cell, len(Fig10Executors))
	for i, n := range Fig10Executors {
		cells[i] = Cell{
			App: "tm", System: "storm", Sockets: 4,
			EventScale:          4,
			ParallelismOverride: map[string]int{"map-match": n},
		}
	}
	results, err := runCells(cells)
	if err != nil {
		return nil, err
	}
	var out []Fig10Row
	for i, n := range Fig10Executors {
		res := results[i].Res
		mean, sd := res.MeanExecLatencyMs("map-match")
		row := Fig10Row{Executors: n, MeanLatencyMs: mean, StddevMs: sd}
		if be := res.Profile.Costs.BackEnd(); be > 0 {
			// Convert LLC shares from share-of-total to share-of-back-end.
			loShare, reShare := res.Profile.LLCMissShares()
			t := float64(res.Profile.Total())
			row.RemoteShare = reShare * t / float64(be)
			row.LocalShare = loShare * t / float64(be)
			row.OtherShare = 1 - row.RemoteShare - row.LocalShare
		}
		out = append(out, row)
	}
	return out, nil
}

// Fig10Table renders both panels of Figure 10.
func Fig10Table(rows []Fig10Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 10 — TM Map-Matcher executors on four sockets (storm)\n")
	fmt.Fprintf(&b, "%-10s %14s %12s %14s %14s\n",
		"executors", "mean ms/event", "stddev", "be llc-remote", "be llc-local")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10d %14.2f %12.2f %13.1f%% %13.1f%%\n",
			r.Executors, r.MeanLatencyMs, r.StddevMs, r.RemoteShare*100, r.LocalShare*100)
	}
	return b.String()
}

// --- E12 / E13: Fig 12, 13 — tuple batching ------------------------------

// BatchingRow holds one app/system's normalized results across batch sizes.
type BatchingRow struct {
	App, System string
	Sizes       []int
	// Throughput and Latency are normalized to the non-batched run.
	Throughput []float64
	Latency    []float64
}

// Batching runs the Fig 12/13 sweep on a single socket.
func Batching() ([]BatchingRow, error) {
	sizes := append([]int{1}, place.BatchSizes...)
	var cells []Cell
	for _, app := range apps.BenchmarkNames() {
		for _, sys := range Systems {
			for _, s := range sizes {
				cells = append(cells, Cell{App: app, System: sys, Sockets: 1, BatchSize: s})
			}
		}
	}
	results, err := runCells(cells)
	if err != nil {
		return nil, err
	}
	var out []BatchingRow
	i := 0
	for _, app := range apps.BenchmarkNames() {
		for _, sys := range Systems {
			row := BatchingRow{App: app, System: sys, Sizes: sizes}
			var baseTp, baseLat float64
			for _, s := range sizes {
				res := results[i].Res
				i++
				tp := res.Throughput().PerSecond()
				lat := res.Latency.Mean()
				if s == 1 {
					baseTp, baseLat = tp, lat
				}
				row.Throughput = append(row.Throughput, tp/baseTp)
				if baseLat > 0 {
					row.Latency = append(row.Latency, lat/baseLat)
				} else {
					row.Latency = append(row.Latency, 1)
				}
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// Fig12Table renders normalized throughput under batching.
func Fig12Table(rows []BatchingRow) string {
	return batchingTable("Fig 12 — normalized throughput with tuple batching", rows, func(r BatchingRow) []float64 { return r.Throughput })
}

// Fig13Table renders normalized latency under batching.
func Fig13Table(rows []BatchingRow) string {
	return batchingTable("Fig 13 — normalized latency with tuple batching", rows, func(r BatchingRow) []float64 { return r.Latency })
}

func batchingTable(title string, rows []BatchingRow, pick func(BatchingRow) []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(rows) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-6s %-6s", "sys", "app")
	for _, s := range rows[0].Sizes {
		fmt.Fprintf(&b, "%9s", fmt.Sprintf("S=%d", s))
	}
	b.WriteByte('\n')
	for _, sys := range Systems {
		for _, r := range rows {
			if r.System != sys {
				continue
			}
			fmt.Fprintf(&b, "%-6s %-6s", r.System, r.App)
			for _, v := range pick(r) {
				fmt.Fprintf(&b, "%8.0f%%", v*100)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// --- E14 / E15: Fig 14, 15 — placement and combined ----------------------

// PlacementRow holds one app/system's Fig 14/15 series, normalized to the
// unoptimized four-socket run.
type PlacementRow struct {
	App, System string
	// SingleSocket, FourSockets, Placed, Combined are normalized
	// throughputs (FourSockets = 100%).
	SingleSocket float64
	FourSockets  float64
	Placed       float64
	Combined     float64
	// BestK is the socket count of the winning placement plan.
	BestK int
}

// Placement runs the Fig 14 and Fig 15 studies: single socket, four
// sockets unoptimized, four sockets with NUMA-aware placement, and four
// sockets with placement plus batching (S = place.DefaultBatchSize).
// Placement plans come from the model-guided search (placement.go); the
// second return value carries its predicted-vs-simulated validation rows.
func Placement() ([]PlacementRow, []ModelValidationRow, error) {
	// The unplaced baselines for every (app, system) are independent:
	// batch them through the pool, then derive each row's placement plans
	// (SearchPlacement fans its verification runs out internally, and its
	// probe memo-shares with the four-socket baseline run here).
	var cells []Cell
	for _, app := range apps.BenchmarkNames() {
		for _, sys := range Systems {
			cells = append(cells,
				Cell{App: app, System: sys, Sockets: 1},
				Cell{App: app, System: sys, Sockets: 4, Scale: 4})
		}
	}
	results, err := runCells(cells)
	if err != nil {
		return nil, nil, err
	}
	var out []PlacementRow
	var val []ModelValidationRow
	i := 0
	for _, app := range apps.BenchmarkNames() {
		for _, sys := range Systems {
			one, four := results[i].Res, results[i+1].Res
			i += 2
			placed, err := SearchPlacement(app, sys, 1, 4)
			if err != nil {
				return nil, nil, fmt.Errorf("%s/%s placement: %w", app, sys, err)
			}
			comb, err := SearchPlacement(app, sys, place.DefaultBatchSize, 4)
			if err != nil {
				return nil, nil, fmt.Errorf("%s/%s combined: %w", app, sys, err)
			}
			base := four.Throughput().PerSecond()
			out = append(out, PlacementRow{
				App: app, System: sys,
				SingleSocket: one.Throughput().PerSecond() / base,
				FourSockets:  1,
				Placed:       placed.Throughput / base,
				Combined:     comb.Throughput / base,
				BestK:        placed.WinnerK,
			})
			val = append(val, validationRow(placed, comb))
		}
	}
	sortValidation(val)
	return out, val, nil
}

// Fig14Table renders the placement-only comparison.
func Fig14Table(rows []PlacementRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 14 — NUMA-aware executor placement (normalized to 4 sockets w/o optimizations)\n")
	fmt.Fprintf(&b, "%-6s %-6s %10s %10s %12s %6s\n", "sys", "app", "1 socket", "4 sockets", "4s+placed", "bestK")
	for _, sys := range Systems {
		for _, r := range rows {
			if r.System != sys {
				continue
			}
			fmt.Fprintf(&b, "%-6s %-6s %9.0f%% %9.0f%% %11.0f%% %6d\n",
				r.System, r.App, r.SingleSocket*100, r.FourSockets*100, r.Placed*100, r.BestK)
		}
	}
	return b.String()
}

// Fig15Table renders the combined-optimizations comparison.
func Fig15Table(rows []PlacementRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 15 — both optimizations (batching S=%d + placement), normalized to 4 sockets w/o optimizations\n", place.DefaultBatchSize)
	fmt.Fprintf(&b, "%-6s %-6s %10s %10s %12s\n", "sys", "app", "1 socket", "4 sockets", "4s+both")
	for _, sys := range Systems {
		for _, r := range rows {
			if r.System != sys {
				continue
			}
			fmt.Fprintf(&b, "%-6s %-6s %9.0f%% %9.0f%% %11.0f%%\n",
				r.System, r.App, r.SingleSocket*100, r.FourSockets*100, r.Combined*100)
		}
	}
	return b.String()
}

// --- E16: GC ablation (§V-D) ---------------------------------------------

// GCRow compares collector overheads for one app/system.
type GCRow struct {
	App, System       string
	G1Share, ParShare float64
	G1Minor, ParMinor int64
}

// GCStudy measures mutator-visible GC share under G1 and parallelGC.
func GCStudy(appNames []string) ([]GCRow, error) {
	g1cfg := jvm.G1()
	g1cfg.YoungBytes = 2 << 20
	pcfg := jvm.Parallel()
	pcfg.YoungBytes = 2 << 20
	var cells []Cell
	for _, app := range appNames {
		for _, sys := range Systems {
			cells = append(cells,
				Cell{App: app, System: sys, Sockets: 1, GC: g1cfg},
				Cell{App: app, System: sys, Sockets: 1, GC: pcfg})
		}
	}
	results, err := runCells(cells)
	if err != nil {
		return nil, err
	}
	var out []GCRow
	i := 0
	for _, app := range appNames {
		for _, sys := range Systems {
			g1, par := results[i].Res, results[i+1].Res
			i += 2
			out = append(out, GCRow{
				App: app, System: sys,
				G1Share: g1.GCShare, ParShare: par.GCShare,
				G1Minor: g1.MinorGCs, ParMinor: par.MinorGCs,
			})
		}
	}
	return out, nil
}

// GCTable renders the collector comparison.
func GCTable(rows []GCRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "GC ablation (§V-D) — mutator-visible GC share of execution time\n")
	fmt.Fprintf(&b, "%-6s %-6s %8s %10s %8s %8s\n", "sys", "app", "G1", "parallel", "gc(G1)", "gc(par)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %-6s %7.1f%% %9.1f%% %8d %8d\n",
			r.System, r.App, r.G1Share*100, r.ParShare*100, r.G1Minor, r.ParMinor)
	}
	return b.String()
}

// --- E17: huge pages ablation (§V-D) -------------------------------------

// HugePagesRow compares TLB stall shares with 4 KB and 2 MB pages.
type HugePagesRow struct {
	App, System  string
	TLB4K, TLB2M float64 // ITLB+DTLB share of execution time
	Speedup      float64
}

// HugePages measures the §V-D finding that huge pages help only marginally.
func HugePages(appNames []string) ([]HugePagesRow, error) {
	var out []HugePagesRow
	tlbShare := func(r *engine.Result) float64 {
		t := float64(r.Profile.Total())
		if t == 0 {
			return 0
		}
		return (float64(r.Profile.Costs[hw.FeITLB]) + float64(r.Profile.Costs[hw.BeDTLB])) / t
	}
	var cells []Cell
	for _, app := range appNames {
		for _, sys := range Systems {
			cells = append(cells,
				Cell{App: app, System: sys, Sockets: 1},
				Cell{App: app, System: sys, Sockets: 1, HugePages: true})
		}
	}
	results, err := runCells(cells)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, app := range appNames {
		for _, sys := range Systems {
			small, big := results[i].Res, results[i+1].Res
			i += 2
			out = append(out, HugePagesRow{
				App: app, System: sys,
				TLB4K:   tlbShare(small),
				TLB2M:   tlbShare(big),
				Speedup: big.Throughput().PerSecond() / small.Throughput().PerSecond(),
			})
		}
	}
	return out, nil
}

// HugePagesTable renders the huge-pages comparison.
func HugePagesTable(rows []HugePagesRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Huge-pages ablation (§V-D) — TLB stall share and speedup with 2 MB pages\n")
	fmt.Fprintf(&b, "%-6s %-6s %10s %10s %9s\n", "sys", "app", "tlb@4K", "tlb@2M", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %-6s %9.2f%% %9.2f%% %8.2fx\n",
			r.System, r.App, r.TLB4K*100, r.TLB2M*100, r.Speedup)
	}
	return b.String()
}

// --- Ablation: placement strategies --------------------------------------

// PlacementAblationRow compares placement strategies on four sockets.
type PlacementAblationRow struct {
	App, System string
	// Normalized to OS-spread (no placement). MinKCut is the best
	// simulated min-k-cut seed plan; ModelSearch the model-guided search
	// winner (never worse: the seeds are in its verification pool).
	RoundRobin  float64
	MinKCut     float64
	ModelSearch float64
}

// PlacementAblation compares the model-guided placement search against
// min-k-cut, round-robin, and unplaced baselines.
func PlacementAblation(appNames []string) ([]PlacementAblationRow, error) {
	// Plan construction is cheap and stays sequential; the baseline and
	// round-robin runs for every (app, system) batch through the pool.
	var cells []Cell
	for _, app := range appNames {
		for _, sys := range Systems {
			topo, err := apps.Build(app, apps.Config{Events: Cell{App: app}.Events(), Seed: 1, Scale: 4})
			if err != nil {
				return nil, err
			}
			sp, _ := systemProfile(sys)
			g, err := place.BuildCommGraph(topo, sp)
			if err != nil {
				return nil, err
			}
			rr := place.RoundRobinPlan(g, 4)
			cells = append(cells,
				Cell{App: app, System: sys, Sockets: 4, Scale: 4},
				Cell{App: app, System: sys, Sockets: 4, Scale: 4, Placement: rr.Placement()})
		}
	}
	results, err := runCells(cells)
	if err != nil {
		return nil, err
	}
	var out []PlacementAblationRow
	i := 0
	for _, app := range appNames {
		for _, sys := range Systems {
			base, rrRes := results[i].Res, results[i+1].Res
			i += 2
			ps, err := SearchPlacement(app, sys, 1, 4)
			if err != nil {
				return nil, err
			}
			b := base.Throughput().PerSecond()
			out = append(out, PlacementAblationRow{
				App: app, System: sys,
				RoundRobin:  rrRes.Throughput().PerSecond() / b,
				MinKCut:     ps.bestVerifiedSeed() / b,
				ModelSearch: ps.Throughput / b,
			})
		}
	}
	return out, nil
}

// PlacementAblationTable renders the strategy comparison.
func PlacementAblationTable(rows []PlacementAblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — placement strategy vs OS-spread baseline (4 sockets)\n")
	fmt.Fprintf(&b, "%-6s %-6s %12s %12s %12s\n", "sys", "app", "round-robin", "min-k-cut", "model-search")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %-6s %11.0f%% %11.0f%% %11.0f%%\n",
			r.System, r.App, r.RoundRobin*100, r.MinKCut*100, r.ModelSearch*100)
	}
	return b.String()
}

// SortRows orders cell results deterministically (app, then system).
func SortRows(cells []CellResult) {
	sort.Slice(cells, func(i, j int) bool { return cells[i].key() < cells[j].key() })
}

// --- Ablation: decoded-µop cache (D-ICache) ------------------------------

// UopCacheRow compares throughput with and without the decoded-µop cache.
// §V-B predicts near-parity: the hot paths far exceed the D-ICache's
// 1.5 kµop capacity and every L1I miss invalidates it, so the accelerator
// cannot engage on these workloads.
type UopCacheRow struct {
	App, System string
	// Slowdown is throughput-without / throughput-with (~1.0 per §V-B).
	Slowdown float64
	// DecodeShare4K is the I-decoding share of front-end stalls without
	// the µop cache.
	DecodeShareOff float64
}

// UopCacheAblation quantifies what the D-ICache buys the studied designs.
func UopCacheAblation(appNames []string) ([]UopCacheRow, error) {
	var cells []Cell
	for _, app := range appNames {
		for _, sys := range Systems {
			cells = append(cells,
				Cell{App: app, System: sys, Sockets: 1},
				Cell{App: app, System: sys, Sockets: 1, NoUopCache: true})
		}
	}
	results, err := runCells(cells)
	if err != nil {
		return nil, err
	}
	var out []UopCacheRow
	i := 0
	for _, app := range appNames {
		for _, sys := range Systems {
			with, without := results[i].Res, results[i+1].Res
			i += 2
			out = append(out, UopCacheRow{
				App: app, System: sys,
				Slowdown:       without.Throughput().PerSecond() / with.Throughput().PerSecond(),
				DecodeShareOff: without.Profile.FrontEnd().IDecoding,
			})
		}
	}
	return out, nil
}

// UopCacheTable renders the D-ICache ablation.
func UopCacheTable(rows []UopCacheRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — decoded-µop cache (D-ICache) disabled\n")
	fmt.Fprintf(&b, "%-6s %-6s %18s %16s\n", "sys", "app", "tp without/with", "decode share off")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %-6s %17.2fx %15.1f%%\n", r.System, r.App, r.Slowdown, r.DecodeShareOff*100)
	}
	return b.String()
}

// --- Extension: latency vs offered load ----------------------------------

// LoadLatencyRow is one point of the open-loop latency curve.
type LoadLatencyRow struct {
	// Load is the offered fraction of the saturated throughput.
	Load float64
	// P50 and P99 are end-to-end latencies in ms.
	P50, P99 float64
}

// LoadLatency sweeps open-loop offered load for one app/system on a single
// socket — the classic latency knee the paper's throughput/latency
// trade-off discussion (Figs 12/13) motivates but does not plot.
func LoadLatency(app, system string, batch int) ([]LoadLatencyRow, error) {
	sat, err := Run(Cell{App: app, System: system, Sockets: 1, BatchSize: batch})
	if err != nil {
		return nil, err
	}
	sys, err := systemProfile(system)
	if err != nil {
		return nil, err
	}
	satRate := sat.Throughput().PerSecond()
	var out []LoadLatencyRow
	for _, load := range []float64{0.2, 0.5, 0.8} {
		topo, err := Cell{App: app, System: system}.Topology()
		if err != nil {
			return nil, err
		}
		res, err := engine.RunSim(topo, engine.SimConfig{
			System: sys, Sockets: 1, Seed: 1, BatchSize: batch,
			SourceRate:         satRate * load, // per source executor; apps use one
			LatencySampleEvery: 1,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, LoadLatencyRow{
			Load: load,
			P50:  res.Latency.Quantile(0.5),
			P99:  res.Latency.Quantile(0.99),
		})
	}
	out = append(out, LoadLatencyRow{
		Load: 1, P50: sat.Latency.Quantile(0.5), P99: sat.Latency.Quantile(0.99),
	})
	return out, nil
}

// LoadLatencyTable renders an open-loop latency curve.
func LoadLatencyTable(app, system string, rows []LoadLatencyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — open-loop latency vs offered load (%s/%s, single socket)\n", app, system)
	fmt.Fprintf(&b, "%-10s %12s %12s\n", "load", "p50 ms", "p99 ms")
	for _, r := range rows {
		label := fmt.Sprintf("%.0f%%", r.Load*100)
		if r.Load >= 1 {
			label = "saturated"
		}
		fmt.Fprintf(&b, "%-10s %12.2f %12.2f\n", label, r.P50, r.P99)
	}
	return b.String()
}

// --- Ablation: operator chaining ------------------------------------------

// ChainingRow compares throughput with Flink-style operator chaining.
type ChainingRow struct {
	App, System string
	// Gain is chained / unchained throughput.
	Gain float64
}

// ChainingAblation measures what task fusion buys on apps with chainable
// (shuffle, equal-parallelism) hops. Only SD qualifies in the benchmark.
func ChainingAblation(appNames []string) ([]ChainingRow, error) {
	var cells []Cell
	for _, app := range appNames {
		for _, sys := range Systems {
			cells = append(cells,
				Cell{App: app, System: sys, Sockets: 1},
				Cell{App: app, System: sys, Sockets: 1, Chaining: true})
		}
	}
	results, err := runCells(cells)
	if err != nil {
		return nil, err
	}
	var out []ChainingRow
	i := 0
	for _, app := range appNames {
		for _, sys := range Systems {
			plain, chained := results[i].Res, results[i+1].Res
			i += 2
			out = append(out, ChainingRow{
				App: app, System: sys,
				Gain: chained.Throughput().PerSecond() / plain.Throughput().PerSecond(),
			})
		}
	}
	return out, nil
}

// ChainingTable renders the chaining ablation.
func ChainingTable(rows []ChainingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — operator chaining (Flink task fusion)\n")
	fmt.Fprintf(&b, "%-6s %-6s %16s\n", "sys", "app", "chained/plain")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %-6s %15.2fx\n", r.System, r.App, r.Gain)
	}
	return b.String()
}

// --- Extension: sustainable throughput ------------------------------------

// SustainableResult reports the highest offered load an app sustains with
// bounded latency — the "sustainable throughput" methodology later
// benchmarks (e.g. Karimov et al.) advocate over closed-loop peak numbers.
type SustainableResult struct {
	App, System string
	// PeakKps is the closed-loop (saturated) throughput.
	PeakKps float64
	// SustainableKps is the highest open-loop rate whose p99 latency stays
	// under BoundMs.
	SustainableKps float64
	BoundMs        float64
}

// Sustainable binary-searches the offered load for the highest rate whose
// p99 end-to-end latency stays below boundMs.
func Sustainable(app, system string, boundMs float64) (*SustainableResult, error) {
	sat, err := Run(Cell{App: app, System: system, Sockets: 1})
	if err != nil {
		return nil, err
	}
	sys, err := systemProfile(system)
	if err != nil {
		return nil, err
	}
	peak := sat.Throughput().PerSecond()

	meets := func(load float64) (bool, error) {
		topo, err := Cell{App: app, System: system}.Topology()
		if err != nil {
			return false, err
		}
		res, err := engine.RunSim(topo, engine.SimConfig{
			System: sys, Sockets: 1, Seed: 1,
			SourceRate:         peak * load,
			LatencySampleEvery: 2,
		})
		if err != nil {
			return false, err
		}
		return res.Latency.Quantile(0.99) <= boundMs, nil
	}

	lo, hi := 0.0, 1.0
	for i := 0; i < 6; i++ {
		mid := (lo + hi) / 2
		ok, err := meets(mid)
		if err != nil {
			return nil, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return &SustainableResult{
		App: app, System: system,
		PeakKps:        peak / 1e3,
		SustainableKps: peak * lo / 1e3,
		BoundMs:        boundMs,
	}, nil
}

// SustainableTable renders sustainable-throughput results.
func SustainableTable(rows []*SustainableResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — sustainable throughput (p99 <= bound), single socket\n")
	fmt.Fprintf(&b, "%-6s %-6s %12s %14s %10s\n", "sys", "app", "peak k/s", "sustainable", "bound ms")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %-6s %12.1f %13.1fk %10.1f\n",
			r.System, r.App, r.PeakKps, r.SustainableKps, r.BoundMs)
	}
	return b.String()
}
