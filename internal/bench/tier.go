package bench

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"

	"streamscale/internal/engine"
	"streamscale/internal/hw"
	"streamscale/internal/place/eval"
)

// The tiered sweep engine: every cell of a sweep is screened by the fast
// analytical tier (internal/place/eval — microseconds per cell), and only
// the cells the screen flags as interesting are verified by cycle-exact
// simulation. One probe simulation per workload amortizes over every cell
// that shares it, through the same memo layer as everything else; the
// probe of a four-socket workload IS the placement search's probe and the
// Fig 14 baseline, so it is usually free. Verified cells go through the
// ordinary memoized Run, so a verified row is byte-identical to what the
// untiered path produces for the same cell — the tier can skip
// simulations, never change them.

// ProbeCell returns the calibration probe for a cell: the same workload
// (app, system, scale, seed, GC, ablations, chaining, overrides) run
// unplaced on the full baseline machine at batch 1 with default events.
// Everything the probe drops is exactly what the fast tier models
// analytically (batch, slice, placement, spec variant, event count), so
// every cell of a sweep that varies only those axes shares one probe.
func ProbeCell(c Cell) Cell {
	c.BatchSize = 1
	c.Placement = nil
	c.Sockets = 0
	c.Cores = 0
	c.EventScale = 0
	c.Spec = ""
	return c
}

// TierGroup is one comparison group of a tiered sweep: the cells ranked
// against each other (one app/system series of a figure). The first cell
// is the group's anchor — the normalization base of the rendered table —
// and is always verified.
type TierGroup struct {
	Name  string
	Cells []Cell
}

// TierPolicy selects which screened cells get full simulation.
type TierPolicy struct {
	// Budget caps verified cells per group (<= 0 selects 4).
	Budget int
	// Neighborhood verifies the cells adjacent (in group order) to the
	// predicted best: the crossover region where a ranking error would
	// change the sweep's conclusion.
	Neighborhood int
	// Midpoint verifies the middle cell of the group, anchoring the
	// rank-correlation check across the group's full range rather than
	// only at its extremes.
	Midpoint bool
}

// TierCell is one screened cell of a tiered sweep.
type TierCell struct {
	Cell Cell
	Pred eval.Prediction
	// Res is non-nil iff the cell was simulation-verified; it is the
	// same memoized Result the untiered path returns for this cell.
	Res *engine.Result
}

// TierValidationRow summarizes one tiered sweep's model-vs-simulation
// agreement over its verified cells.
type TierValidationRow struct {
	Sweep string
	// Screened counts analytically evaluated cells; Verified those also
	// simulated; Probes the distinct calibration simulations requested.
	Screened, Verified, Probes int
	// RankTau is the Kendall rank correlation between predicted and
	// measured throughput over verified pairs within each group. Pairs
	// the model scores within tierRankEps of each other are skipped (the
	// model claims no order there); Pairs counts the pairs that remain.
	RankTau float64
	Pairs   int
	// MeanErr is the mean relative error of predicted vs measured
	// throughput over the verified cells.
	MeanErr float64
}

// tierRankEps is the model's ranking resolution: predicted throughputs
// within 0.5% are one tier (the same resolution the placement search uses
// for batched score tiers), so the validation's rank-tau only counts
// pairs where the model actually asserts an order.
const tierRankEps = 0.005

// TierRun is the outcome of one tiered sweep.
type TierRun struct {
	Name   string
	Groups []TierGroup
	// Cells mirrors Groups: Cells[g][i] is Groups[g].Cells[i] screened
	// (and possibly verified).
	Cells      [][]TierCell
	Validation TierValidationRow
}

// Package-wide tier counters (the CLIs' stats lines and the BENCH record
// schema report them, like MemoStats for the memo layer).
var (
	tierScreened atomic.Int64
	tierVerified atomic.Int64
	tierProbes   atomic.Int64

	tierValMu   sync.Mutex
	tierValRows []TierValidationRow
)

// TierStats returns the process-wide fast-tier counters: analytically
// screened cells, simulation-verified cells, and probe simulations
// requested (distinct per sweep; the memo layer dedups across sweeps).
func TierStats() (screened, verified, probes int64) {
	return tierScreened.Load(), tierVerified.Load(), tierProbes.Load()
}

// TierValidations returns the validation rows of every tiered sweep run
// so far, in execution order.
func TierValidations() []TierValidationRow {
	tierValMu.Lock()
	defer tierValMu.Unlock()
	return append([]TierValidationRow(nil), tierValRows...)
}

// ResetTierStats clears the tier counters and validation rows (tests).
func ResetTierStats() {
	tierScreened.Store(0)
	tierVerified.Store(0)
	tierProbes.Store(0)
	tierValMu.Lock()
	tierValRows = nil
	tierValMu.Unlock()
}

func recordTierValidation(r TierValidationRow) {
	tierValMu.Lock()
	tierValRows = append(tierValRows, r)
	tierValMu.Unlock()
}

// estimatorFor builds the fast-tier estimator from a probe cell and its
// simulated result.
func estimatorFor(probe Cell, res *engine.Result) (*eval.Estimator, error) {
	sys, err := systemProfile(probe.System)
	if err != nil {
		return nil, err
	}
	spec, err := probe.MachineSpec()
	if err != nil {
		return nil, err
	}
	return eval.New(res, spec, sys, 1)
}

// targetFor translates a cell into the estimator's target relative to its
// probe. A partial Placement map (fewer entries than executors) falls back
// to the OS-spread model; the sweeps in this package only produce full
// maps (the placement search's output).
func targetFor(c Cell, probeSpec hw.MachineSpec, est *eval.Estimator) (eval.Target, error) {
	t := eval.Target{Sockets: c.Sockets, Cores: c.Cores, Batch: c.BatchSize}
	spec, err := c.MachineSpec()
	if err != nil {
		return t, err
	}
	if spec != probeSpec {
		t.Spec = spec
	}
	if len(c.Placement) == est.N() {
		assign := make([]int, est.N())
		for i := range assign {
			s, ok := c.Placement[i]
			if !ok {
				return t, fmt.Errorf("bench: placement map missing executor %d", i)
			}
			assign[i] = s
		}
		t.Assign = assign
	}
	return t, nil
}

// RunCellsTiered screens every cell of every group analytically, verifies
// the policy-selected subset by full simulation, and folds the sweep's
// model-validation summary. Probe and verification simulations go through
// the ordinary memoized pool, so anything another sweep (tiered or not)
// already ran is shared, and verified Results are byte-identical to the
// untiered path's.
func RunCellsTiered(name string, groups []TierGroup, pol TierPolicy) (*TierRun, error) {
	run := &TierRun{Name: name, Groups: groups}

	// Distinct probes for the whole sweep, in first-appearance order.
	var probeCells []Cell
	probeIdx := make(map[string]int)
	probeOf := make([][]int, len(groups))
	for gi, g := range groups {
		probeOf[gi] = make([]int, len(g.Cells))
		for ci, c := range g.Cells {
			p := ProbeCell(c)
			key := p.Canonical()
			i, ok := probeIdx[key]
			if !ok {
				i = len(probeCells)
				probeIdx[key] = i
				probeCells = append(probeCells, p)
			}
			probeOf[gi][ci] = i
		}
	}
	probeResults, err := runCells(probeCells)
	if err != nil {
		return nil, fmt.Errorf("tier %s probes: %w", name, err)
	}
	tierProbes.Add(int64(len(probeCells)))

	ests := make([]*eval.Estimator, len(probeCells))
	specs := make([]hw.MachineSpec, len(probeCells))
	for i, pr := range probeResults {
		if ests[i], err = estimatorFor(pr.Cell, pr.Res); err != nil {
			return nil, fmt.Errorf("tier %s calibrate %s/%s: %w", name, pr.Cell.App, pr.Cell.System, err)
		}
		if specs[i], err = pr.Cell.MachineSpec(); err != nil {
			return nil, err
		}
	}

	// Screen everything, then pick the verification set per group.
	run.Cells = make([][]TierCell, len(groups))
	var verifyCells []Cell
	type ref struct{ g, i int }
	var verifyRefs []ref
	for gi, g := range groups {
		run.Cells[gi] = make([]TierCell, len(g.Cells))
		for ci, c := range g.Cells {
			pi := probeOf[gi][ci]
			t, err := targetFor(c, specs[pi], ests[pi])
			if err != nil {
				return nil, fmt.Errorf("tier %s %s: %w", name, g.Name, err)
			}
			pred, err := ests[pi].Estimate(t)
			if err != nil {
				return nil, fmt.Errorf("tier %s %s cell %d: %w", name, g.Name, ci, err)
			}
			run.Cells[gi][ci] = TierCell{Cell: c, Pred: pred}
		}
		tierScreened.Add(int64(len(g.Cells)))
		for _, i := range pol.pick(run.Cells[gi]) {
			verifyCells = append(verifyCells, g.Cells[i])
			verifyRefs = append(verifyRefs, ref{gi, i})
		}
	}

	verifyResults, err := runCells(verifyCells)
	if err != nil {
		return nil, fmt.Errorf("tier %s verify: %w", name, err)
	}
	for i, r := range verifyRefs {
		run.Cells[r.g][r.i].Res = verifyResults[i].Res
	}
	tierVerified.Add(int64(len(verifyCells)))

	run.Validation = validateTier(name, run, len(probeCells))
	recordTierValidation(run.Validation)
	return run, nil
}

// pick returns the indices to verify, deduplicated, in priority order:
// the predicted best, the group anchor (index 0), the midpoint, the
// best's neighbors, then the highest-uncertainty cell. Ties break to the
// lower index, so the selection is deterministic.
func (pol TierPolicy) pick(cells []TierCell) []int {
	budget := pol.Budget
	if budget <= 0 {
		budget = 4
	}
	n := len(cells)
	if n == 0 {
		return nil
	}
	best, maxU := 0, 0
	for i := 1; i < n; i++ {
		if cells[i].Pred.ThroughputEPS > cells[best].Pred.ThroughputEPS {
			best = i
		}
		if cells[i].Pred.Uncertainty > cells[maxU].Pred.Uncertainty {
			maxU = i
		}
	}
	cand := []int{best, 0}
	if pol.Midpoint {
		cand = append(cand, n/2)
	}
	for k := 1; k <= pol.Neighborhood; k++ {
		if best-k >= 0 {
			cand = append(cand, best-k)
		}
		if best+k < n {
			cand = append(cand, best+k)
		}
	}
	cand = append(cand, maxU)

	seen := make(map[int]bool, len(cand))
	var out []int
	for _, i := range cand {
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
			if len(out) == budget {
				break
			}
		}
	}
	return out
}

// validateTier folds a finished tiered run into its validation row.
func validateTier(name string, run *TierRun, probes int) TierValidationRow {
	row := TierValidationRow{Sweep: name, Probes: probes}
	conc, disc := 0, 0
	var errSum float64
	var errN int
	for _, group := range run.Cells {
		row.Screened += len(group)
		var ver []*TierCell
		for i := range group {
			if group[i].Res != nil {
				ver = append(ver, &group[i])
			}
		}
		row.Verified += len(ver)
		for i := 0; i < len(ver); i++ {
			mi := ver[i].Res.Throughput().PerSecond()
			if mi > 0 {
				d := (ver[i].Pred.ThroughputEPS - mi) / mi
				errSum += math.Abs(d)
				errN++
			}
			for j := i + 1; j < len(ver); j++ {
				pi, pj := ver[i].Pred.ThroughputEPS, ver[j].Pred.ThroughputEPS
				if math.Abs(pi-pj) <= tierRankEps*math.Max(pi, pj) {
					continue // model asserts no order at this resolution
				}
				mj := ver[j].Res.Throughput().PerSecond()
				if mi == mj {
					continue
				}
				if (pi > pj) == (mi > mj) {
					conc++
				} else {
					disc++
				}
			}
		}
	}
	row.Pairs = conc + disc
	if row.Pairs > 0 {
		row.RankTau = float64(conc-disc) / float64(row.Pairs)
	}
	if errN > 0 {
		row.MeanErr = errSum / float64(errN)
	}
	return row
}

// TierValidationTable renders the per-sweep validation summary the -tier
// report emits after its experiments (rank-tau >= 0.90 on every converted
// sweep is the fast tier's accuracy gate; ci.sh asserts it on the smoke
// sweep).
func TierValidationTable(rows []TierValidationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tier validation — fast-tier predictions vs full simulation (verified cells)\n")
	fmt.Fprintf(&b, "%-14s %9s %9s %7s %9s %7s %9s\n",
		"sweep", "screened", "verified", "probes", "rank-tau", "pairs", "mean-err")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %9d %9d %7d %9.2f %7d %8.1f%%\n",
			r.Sweep, r.Screened, r.Verified, r.Probes, r.RankTau, r.Pairs, r.MeanErr*100)
	}
	return b.String()
}

// TierEstimate is one cell's fast-tier estimate (dspbench -tier): the
// probe that calibrated it and the resulting prediction.
type TierEstimate struct {
	Cell  Cell
	Probe Cell
	// ProbeThroughputEPS is the probe's measured throughput, for scale.
	ProbeThroughputEPS float64
	Pred               eval.Prediction
}

// EstimateCell screens one cell through the fast tier: one memoized probe
// simulation (often already cached), then an analytical estimate.
func EstimateCell(c Cell) (*TierEstimate, error) {
	probe := ProbeCell(c)
	res, err := Run(probe)
	if err != nil {
		return nil, err
	}
	tierProbes.Add(1)
	est, err := estimatorFor(probe, res)
	if err != nil {
		return nil, err
	}
	spec, err := probe.MachineSpec()
	if err != nil {
		return nil, err
	}
	t, err := targetFor(c, spec, est)
	if err != nil {
		return nil, err
	}
	pred, err := est.Estimate(t)
	if err != nil {
		return nil, err
	}
	tierScreened.Add(1)
	return &TierEstimate{
		Cell: c, Probe: probe,
		ProbeThroughputEPS: res.Throughput().PerSecond(),
		Pred:               pred,
	}, nil
}
