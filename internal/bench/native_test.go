package bench

import (
	"strings"
	"testing"
)

// TestValidateNative runs the simulator-validation loop on a scaled-down
// grid and checks the table's shape: every cell contributes batching and
// ack rows, topologies with a chainable pair contribute a chaining row,
// and all ratios are positive and finite.
func TestValidateNative(t *testing.T) {
	cells := []Cell{
		{App: "wc", System: "storm", EventScale: 0.1},
		{App: "sd", System: "flink", EventScale: 0.05},
	}
	v, err := ValidateNative(cells, 1)
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]NativeEffectRow)
	for _, r := range v.Rows {
		if r.SimRatio <= 0 || r.NativeRatio <= 0 {
			t.Errorf("%s/%s %s: non-positive ratio sim=%f native=%f",
				r.App, r.System, r.Effect, r.SimRatio, r.NativeRatio)
		}
		if r.RelErr < 0 {
			t.Errorf("%s/%s %s: negative relative error", r.App, r.System, r.Effect)
		}
		byKey[r.App+"/"+r.System+"/"+r.Effect] = r
	}
	for _, want := range []string{
		"wc/storm/batching", "wc/storm/ack",
		"sd/flink/batching", "sd/flink/ack", "sd/flink/chaining",
	} {
		if _, ok := byKey[want]; !ok {
			t.Errorf("missing validation row %s (have %v)", want, keys(byKey))
		}
	}
	out := v.String()
	for _, col := range []string{"effect", "sim", "native", "rel.err", "mean error"} {
		if !strings.Contains(out, col) {
			t.Errorf("table output missing %q:\n%s", col, out)
		}
	}
	if v.MeanErr("") <= 0 {
		t.Logf("mean error over all rows is %.3f (zero is suspicious but not impossible)", v.MeanErr(""))
	}
}

func keys(m map[string]NativeEffectRow) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
