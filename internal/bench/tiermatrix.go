package bench

import (
	"fmt"
	"math"
	"strings"

	"streamscale/internal/apps"
	"streamscale/internal/engine"
	"streamscale/internal/hw"
)

// The tiered (-tier) variants of the figure sweeps, plus the widened
// scenario matrix the fast tier makes affordable. Each builds TierGroups,
// runs them through RunCellsTiered, and renders a table where verified
// (simulated) entries are marked '*' and everything else is the fast
// tier's analytical estimate. The untiered sweeps in experiments.go are
// untouched: the default dspreport output stays byte-identical.

// TierBatchSizes is the widened Fig 12/13 batch-size axis (the untiered
// sweep stops at 8).
var TierBatchSizes = []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}

// TierCorePoints is the widened Fig 6b/6c core-count axis. Points are
// chosen so parallelism re-tuning (scale = cores/8) only takes values
// whose full-machine probes other sweeps share or need anyway.
var TierCorePoints = []int{1, 2, 3, 4, 6, 8, 12, 16, 20, 32}

// TieredBatching runs the widened Fig 12/13 sweep through the fast tier:
// every (app, system) group screens all of TierBatchSizes and verifies
// the anchor, the predicted best, the midpoint, and the least certain.
func TieredBatching() (*TierRun, error) {
	var groups []TierGroup
	for _, app := range apps.BenchmarkNames() {
		for _, sys := range Systems {
			g := TierGroup{Name: app + "/" + sys}
			for _, s := range TierBatchSizes {
				g.Cells = append(g.Cells, Cell{App: app, System: sys, Sockets: 1, BatchSize: s})
			}
			groups = append(groups, g)
		}
	}
	return RunCellsTiered("fig12-wide", groups, TierPolicy{Budget: 4, Midpoint: true})
}

// TieredBatchingTables renders the wide Fig 12 and Fig 13 tables.
func TieredBatchingTables(run *TierRun) string {
	hdr := make([]string, len(TierBatchSizes))
	for i, s := range TierBatchSizes {
		hdr[i] = fmt.Sprintf("S=%d", s)
	}
	tp := tierSeriesTable("Fig 12 (tiered, wide) — normalized throughput with tuple batching (* = simulation-verified)",
		run, hdr, tierThroughputSeries)
	lat := tierSeriesTable("Fig 13 (tiered, wide) — normalized latency with tuple batching (* = simulation-verified)",
		run, hdr, tierLatencySeries)
	return tp + "\n" + lat
}

// TieredScalability runs the widened Fig 6b/6c sweep for one system.
// Cells mirror ScalabilityFor exactly (event scaling for tiny slices,
// parallelism re-tuned with the core count), so a verified point is the
// same simulation the untiered figure would run.
func TieredScalability(system string) (*TierRun, error) {
	var groups []TierGroup
	for _, app := range apps.BenchmarkNames() {
		g := TierGroup{Name: app + "/" + system}
		for _, cores := range TierCorePoints {
			scale := 1.0
			if cores <= 2 {
				scale = 0.5
			}
			par := cores / 8
			if par < 1 {
				par = 1
			}
			g.Cells = append(g.Cells, Cell{App: app, System: system, Cores: cores, EventScale: scale, Scale: par})
		}
		groups = append(groups, g)
	}
	name := "fig6b-wide"
	if system == "flink" {
		name = "fig6c-wide"
	}
	return RunCellsTiered(name, groups, TierPolicy{Budget: 3, Midpoint: true})
}

// TieredScalabilityTable renders the wide Fig 6b/6c table.
func TieredScalabilityTable(system string, run *TierRun) string {
	fig := "6b"
	if system == "flink" {
		fig = "6c"
	}
	hdr := make([]string, len(TierCorePoints))
	for i, p := range TierCorePoints {
		hdr[i] = fmt.Sprintf("%dc", p)
	}
	title := fmt.Sprintf("Fig %s (tiered, wide) — %s normalized throughput vs cores (1 core = 100%%, * = simulation-verified)", fig, system)
	return tierSeriesTable(title, run, hdr, tierThroughputSeries)
}

// tierThroughputSeries returns a group's throughput series normalized to
// its anchor, each point flagged verified or estimated. Verified points
// normalize measured-to-measured, estimated points predicted-to-predicted,
// so neither scale contaminates the other.
func tierThroughputSeries(cells []TierCell) ([]float64, []bool) {
	vals := make([]float64, len(cells))
	ver := make([]bool, len(cells))
	basePred := cells[0].Pred.ThroughputEPS
	var baseMeas float64
	if cells[0].Res != nil {
		baseMeas = cells[0].Res.Throughput().PerSecond()
	}
	for i, c := range cells {
		switch {
		case c.Res != nil && baseMeas > 0:
			vals[i] = c.Res.Throughput().PerSecond() / baseMeas
			ver[i] = true
		case basePred > 0:
			vals[i] = c.Pred.ThroughputEPS / basePred
		}
	}
	return vals, ver
}

// tierLatencySeries is tierThroughputSeries for mean latency.
func tierLatencySeries(cells []TierCell) ([]float64, []bool) {
	vals := make([]float64, len(cells))
	ver := make([]bool, len(cells))
	basePred := cells[0].Pred.LatencyMs
	var baseMeas float64
	if cells[0].Res != nil {
		baseMeas = cells[0].Res.Latency.Mean()
	}
	for i, c := range cells {
		switch {
		case c.Res != nil && baseMeas > 0:
			vals[i] = c.Res.Latency.Mean() / baseMeas
			ver[i] = true
		case basePred > 0:
			vals[i] = c.Pred.LatencyMs / basePred
		}
	}
	return vals, ver
}

// tierSeriesTable renders one normalized-series table over a tiered run
// whose groups are named "app/system".
func tierSeriesTable(title string, run *TierRun, hdr []string, series func([]TierCell) ([]float64, []bool)) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-6s %-6s", "sys", "app")
	for _, h := range hdr {
		fmt.Fprintf(&b, "%9s", h)
	}
	b.WriteByte('\n')
	for _, sys := range Systems {
		for gi, g := range run.Groups {
			app, gsys, ok := strings.Cut(g.Name, "/")
			if !ok || gsys != sys {
				continue
			}
			vals, ver := series(run.Cells[gi])
			fmt.Fprintf(&b, "%-6s %-6s", gsys, app)
			for i, v := range vals {
				mark := ""
				if ver[i] {
					mark = "*"
				}
				fmt.Fprintf(&b, "%9s", fmt.Sprintf("%.0f%%%s", v*100, mark))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// --- the widened scenario matrix -----------------------------------------

// matrixSlices and matrixBatches are the spec-matrix axes: machine slice
// (sockets enabled; 0 = whole machine), parallelism scale, and batch size.
var (
	matrixSlices  = []int{1, 2, 0}
	matrixScales  = []int{1, 2}
	matrixBatches = []int{1, 2, 4, 8, 16, 32, 64}
)

// SpecMatrix screens every (machine variant x slice x scale x batch)
// configuration of every workload — thousands of cells, one probe per
// (workload, scale) — and verifies the predicted best of each group plus
// its crossover neighbors. This is the sweep the fast tier exists for:
// simulating it exhaustively would take hours.
func SpecMatrix() (*TierRun, error) {
	var groups []TierGroup
	for _, app := range apps.BenchmarkNames() {
		for _, sys := range Systems {
			g := TierGroup{Name: app + "/" + sys}
			seen := make(map[string]bool)
			for _, variant := range hw.VariantNames() {
				for _, sl := range matrixSlices {
					for _, scale := range matrixScales {
						for _, batch := range matrixBatches {
							c := Cell{
								App: app, System: sys, Spec: variant,
								Sockets: sl, Scale: scale, BatchSize: batch,
							}
							// A slice equal to the variant's whole machine
							// duplicates the sockets=0 cell; keep one.
							if key := c.Canonical(); !seen[key] {
								seen[key] = true
								g.Cells = append(g.Cells, c)
							}
						}
					}
				}
			}
			groups = append(groups, g)
		}
	}
	return RunCellsTiered("spec-matrix", groups, TierPolicy{Budget: 4, Neighborhood: 1})
}

// SpecMatrixTable renders, per workload and machine variant, the best
// predicted configuration and its throughput relative to the Table III
// variant's best.
func SpecMatrixTable(run *TierRun) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Spec matrix (tiered) — best configuration per machine variant (fast-tier estimates; * = simulation-verified)\n")
	fmt.Fprintf(&b, "%-6s %-6s %-9s %7s %6s %6s %12s %9s %12s\n",
		"sys", "app", "variant", "sockets", "scale", "batch", "pred k/s", "vs base", "measured")
	for _, sys := range Systems {
		for gi, g := range run.Groups {
			app, gsys, ok := strings.Cut(g.Name, "/")
			if !ok || gsys != sys {
				continue
			}
			// Best predicted cell per variant, in VariantNames order.
			baseBest := math.NaN()
			for _, variant := range hw.VariantNames() {
				best := -1
				for i, tc := range run.Cells[gi] {
					if tc.Cell.Spec != variant {
						continue
					}
					if best < 0 || tc.Pred.ThroughputEPS > run.Cells[gi][best].Pred.ThroughputEPS {
						best = i
					}
				}
				if best < 0 {
					continue
				}
				tc := run.Cells[gi][best]
				if variant == "" {
					baseBest = tc.Pred.ThroughputEPS
				}
				name := variant
				if name == "" {
					name = "table3"
				}
				sockets := tc.Cell.Sockets
				if sockets == 0 {
					if spec, err := tc.Cell.MachineSpec(); err == nil {
						sockets = spec.Sockets
					}
				}
				vsBase := tc.Pred.ThroughputEPS / baseBest
				measured := "-"
				if tc.Res != nil {
					measured = fmt.Sprintf("%10.1f*", tc.Res.Throughput().KPerSecond())
				}
				fmt.Fprintf(&b, "%-6s %-6s %-9s %7d %6d %6d %12.1f %8.2fx %12s\n",
					gsys, app, name, sockets, tc.Cell.Scale, tc.Cell.BatchSize,
					tc.Pred.ThroughputEPS/1e3, vsBase, measured)
			}
		}
	}
	return b.String()
}

// --- the CI smoke sweep ----------------------------------------------------

// TierSmoke is the ci.sh gate for the fast tier: a small batching sweep
// (wc, sd on both systems) is run tiered AND exhaustively simulated, then
// two properties are asserted. (1) Every simulation-verified tier row is
// bit-identical to an independent direct simulation of the same cell —
// the tier may skip simulations but can never alter one. (2) The fast
// tier's ranking over ALL cells (not just verified ones — the full
// simulations are available here) reaches rank-tau >= 0.90. Either
// failure returns an error, which dspreport turns into a non-zero exit.
func TierSmoke() (string, error) {
	const tauGate = 0.90
	sizes := []int{1, 2, 4, 8}
	var groups []TierGroup
	for _, app := range []string{"wc", "sd"} {
		for _, sys := range Systems {
			g := TierGroup{Name: app + "/" + sys}
			for _, s := range sizes {
				g.Cells = append(g.Cells, Cell{App: app, System: sys, Sockets: 1, BatchSize: s})
			}
			groups = append(groups, g)
		}
	}
	run, err := RunCellsTiered("tier-smoke", groups, TierPolicy{Budget: 3, Midpoint: true})
	if err != nil {
		return "", err
	}

	// Exhaustive reference pass (memo-shared with the verified rows).
	var all []Cell
	for _, g := range groups {
		all = append(all, g.Cells...)
	}
	full, err := runCells(all)
	if err != nil {
		return "", err
	}

	// (1) Verified-row identity against independent direct simulations.
	checked := 0
	for gi := range run.Cells {
		for _, tc := range run.Cells[gi] {
			if tc.Res == nil {
				continue
			}
			direct, err := runDirect(tc.Cell)
			if err != nil {
				return "", err
			}
			if err := sameResult(tc.Res, direct); err != nil {
				return "", fmt.Errorf("tier-smoke: verified row %s/%s S=%d differs from the full-sim path: %w",
					tc.Cell.App, tc.Cell.System, tc.Cell.BatchSize, err)
			}
			checked++
		}
	}

	// (2) Rank-tau over every cell of every group.
	conc, disc := 0, 0
	fi := 0
	for gi := range run.Cells {
		cells := run.Cells[gi]
		meas := make([]float64, len(cells))
		for i := range cells {
			meas[i] = full[fi].Res.Throughput().PerSecond()
			fi++
		}
		for i := 0; i < len(cells); i++ {
			for j := i + 1; j < len(cells); j++ {
				pi, pj := cells[i].Pred.ThroughputEPS, cells[j].Pred.ThroughputEPS
				if math.Abs(pi-pj) <= tierRankEps*math.Max(pi, pj) || meas[i] == meas[j] {
					continue
				}
				if (pi > pj) == (meas[i] > meas[j]) {
					conc++
				} else {
					disc++
				}
			}
		}
	}
	tau := 0.0
	if conc+disc > 0 {
		tau = float64(conc-disc) / float64(conc+disc)
	}

	var b strings.Builder
	b.WriteString(TierValidationTable([]TierValidationRow{run.Validation}))
	fmt.Fprintf(&b, "tier-smoke: %d verified row(s) bit-identical to the full-sim path\n", checked)
	fmt.Fprintf(&b, "tier-smoke: full-sweep rank-tau %.2f over %d pairs (gate >= %.2f)\n", tau, conc+disc, tauGate)
	if tau < tauGate {
		return b.String(), fmt.Errorf("tier-smoke: rank-tau %.2f below gate %.2f", tau, tauGate)
	}
	b.WriteString("tier-smoke: PASS\n")
	return b.String(), nil
}

// sameResult compares the fields a benchmark row is built from, bit for
// bit; any difference is an error naming the field.
func sameResult(a, b *engine.Result) error {
	type cmp struct {
		name string
		a, b float64
	}
	checks := []cmp{
		{"source_events", float64(a.SourceEvents), float64(b.SourceEvents)},
		{"elapsed_s", a.ElapsedSeconds, b.ElapsedSeconds},
		{"charged_cycles", float64(a.ChargedCycles), float64(b.ChargedCycles)},
		{"throughput", a.Throughput().PerSecond(), b.Throughput().PerSecond()},
		{"latency_p50", a.Latency.Quantile(0.5), b.Latency.Quantile(0.5)},
		{"latency_p99", a.Latency.Quantile(0.99), b.Latency.Quantile(0.99)},
		{"latency_mean", a.Latency.Mean(), b.Latency.Mean()},
		{"cpu_util", a.CPUUtil, b.CPUUtil},
		{"mem_util", a.MemUtil, b.MemUtil},
	}
	for _, c := range checks {
		if c.a != c.b {
			return fmt.Errorf("%s: %v != %v", c.name, c.a, c.b)
		}
	}
	return nil
}
