package bench

import (
	"fmt"
	"sort"
	"sync/atomic"

	"streamscale/internal/hw"
	"streamscale/internal/place"
)

// The joint parallelism + placement flow (BriskStream's RLAS, applied to
// the simulated machine): the same single probe that calibrates the
// placement-only search also anchors a re-parallelization model
// (place.Workload), and the joint branch-and-bound co-searches executor
// counts with socket assignment. Only the top-ranked joint configurations
// are verified by full simulation; the measured winner is compared against
// the placement-only winner, so a joint row can never regress below the
// fixed-parallelism best (both candidates are measured, and ties keep the
// fixed plan).

// jointVerifyTop is how many non-default-parallelism joint candidates are
// fully simulated per search. Two suffices: the joint ranking reuses the
// same calibrated model the placement search already validated, and the
// fixed-parallelism winner is the always-measured fallback.
const jointVerifyTop = 2

// JointVerification is one joint configuration that was both model-scored
// and fully simulated.
type JointVerification struct {
	// Par is the per-operator parallelism vector in exec-topology op order.
	Par []int
	// Assign is the per-executor socket assignment of the rescaled layout.
	Assign []int
	// Predicted is the model's throughput estimate (events/s); Measured is
	// the simulated throughput.
	Predicted float64
	Measured  float64
}

// JointSearch is the outcome of one joint search for one
// (app, system, batch) row.
type JointSearch struct {
	App, System string
	Batch       int

	// Fixed is the placement-only search this row is measured against.
	Fixed *PlacementSearch

	// Winner describes the measured-best configuration: the fixed winner's
	// placement under the default parallelism, or a verified joint
	// configuration that measured strictly better.
	Winner struct {
		// Par is nil when the winner keeps the default parallelism.
		Par       []int
		Placement map[int]int
		// Override holds only the operators whose parallelism differs from
		// the default — empty for the fixed winner.
		Override map[string]int
	}
	// Throughput is the winner's measured throughput (events/s);
	// FixedThroughput the placement-only winner's.
	Throughput      float64
	FixedThroughput float64
	// Improved reports a joint (non-default-parallelism) win.
	Improved bool

	// Verified lists the simulated joint configurations in model-rank
	// order. VectorsScreened / VectorsSearched are the search's own
	// counters; OpNames gives the vector positions' operator names.
	Verified        []JointVerification
	VectorsScreened int
	VectorsSearched int
	OpNames         []string
	DefaultPar      []int
}

var (
	jointScreened atomic.Int64
	jointVerified atomic.Int64
)

// JointStats reports how many parallelism vectors the joint searches
// screened analytically and how many joint configurations were verified by
// full simulation since the last reset.
func JointStats() (screened, verified int64) {
	return jointScreened.Load(), jointVerified.Load()
}

// ResetJointStats zeroes the joint-search counters.
func ResetJointStats() {
	jointScreened.Store(0)
	jointVerified.Store(0)
}

// jointSearchOptions trims the per-row joint search to sweep cost (the
// same budget the joint-shift sweep uses, TopM aside): the lighter budget
// surfaces the same winning vectors, and every adopted plan is verified by
// simulation anyway, so extra search depth buys nothing the measured
// winner rule doesn't already guarantee.
func jointSearchOptions(workers int) place.JointOptions {
	return place.JointOptions{
		TopVectors: 4,
		Search:     place.SearchOptions{TopM: 2, NodeBudget: 4000, SplitDepth: 2, Workers: workers},
	}
}

// jointOverride maps a parallelism vector to the Cell override form: only
// operators that differ from the default appear, so the identity vector
// yields an empty map and the cell memo-keys identically to a
// fixed-parallelism cell with the same placement.
func jointOverride(names []string, par, def []int) map[string]int {
	out := map[string]int{}
	for i := range par {
		if par[i] != def[i] {
			out[names[i]] = par[i]
		}
	}
	return out
}

// SearchJoint runs the joint parallelism + placement search for one row:
// run the placement-only search (memo-shared), rebuild its calibrated
// model into a workload, co-search executor counts with socket assignment,
// verify the top joint configurations by simulation, and keep whichever of
// {fixed winner, joint winner} measured faster.
func SearchJoint(app, system string, batch, scale int) (*JointSearch, error) {
	fixed, err := SearchPlacement(app, system, batch, scale)
	if err != nil {
		return nil, err
	}

	topo, err := Cell{App: app, Seed: 1, Scale: scale}.Topology()
	if err != nil {
		return nil, err
	}
	sys, err := systemProfile(system)
	if err != nil {
		return nil, err
	}
	// Same probe as the placement search: the unplaced four-socket batch-1
	// baseline, already simulated and memoized by SearchPlacement above.
	probeRes, err := Run(Cell{App: app, System: system, Sockets: 4, Scale: scale, BatchSize: 1})
	if err != nil {
		return nil, err
	}
	model, err := place.Calibrate(probeRes, hw.TableIII(), sys, 1)
	if err != nil {
		return nil, fmt.Errorf("calibrate %s/%s: %w", app, system, err)
	}
	if batch > 1 {
		model = model.WithBatch(batch)
	}
	w, err := place.NewWorkload(model, topo, sys)
	if err != nil {
		return nil, fmt.Errorf("joint workload %s/%s: %w", app, system, err)
	}

	res, err := w.SearchJoint(jointSearchOptions(Jobs()))
	if err != nil {
		return nil, fmt.Errorf("joint search %s/%s: %w", app, system, err)
	}
	jointScreened.Add(int64(res.VectorsScreened))

	out := &JointSearch{
		App: app, System: system, Batch: batch,
		Fixed:           fixed,
		FixedThroughput: fixed.Throughput,
		VectorsScreened: res.VectorsScreened,
		VectorsSearched: res.VectorsSearched,
		DefaultPar:      res.DefaultPar,
	}
	for _, op := range w.Ops {
		out.OpNames = append(out.OpNames, op.Name)
	}

	// Verification set: the top candidates that actually rescale something
	// AND whose model score strictly beats the default vector's best.
	// Identity-vector candidates are placement-only plans — the fixed
	// search already measured that axis, and its winner anchors the
	// comparison. The strict-improvement gate is what keeps the report's
	// joint overhead proportional to the predicted headroom: on most rows
	// the predicted bottleneck is the pinned source, which no parallelism
	// vector changes, so their candidates tie the default score exactly
	// and cost zero extra simulations. (A tie would also keep the fixed
	// winner under the measured-winner rule below, so nothing is lost.)
	var verify []place.JointCandidate
	for _, c := range res.Candidates {
		if len(jointOverride(out.OpNames, c.Par, res.DefaultPar)) == 0 {
			continue
		}
		if c.Score >= res.DefaultScore {
			continue
		}
		verify = append(verify, c)
		if len(verify) == jointVerifyTop {
			break
		}
	}
	cells := make([]Cell, len(verify))
	for i, c := range verify {
		cells[i] = Cell{
			App: app, System: system, Sockets: 4, Scale: scale,
			BatchSize: batch, Placement: asPlacementMap(c.Assign),
			ParallelismOverride: jointOverride(out.OpNames, c.Par, res.DefaultPar),
		}
	}
	results, err := runCells(cells)
	if err != nil {
		return nil, err
	}
	jointVerified.Add(int64(len(cells)))

	for i, c := range verify {
		m, err := w.Reparallelize(c.Par)
		if err != nil {
			return nil, err
		}
		out.Verified = append(out.Verified, JointVerification{
			Par:       c.Par,
			Assign:    c.Assign,
			Predicted: m.PredictThroughput(c.Assign),
			Measured:  results[i].Res.Throughput().PerSecond(),
		})
	}

	// Winner: the fixed plan unless a joint configuration measured
	// STRICTLY better — ties keep the default parallelism, so a joint row
	// can never regress and never churns on measurement ties.
	out.Winner.Placement = asPlacementMap(fixed.Winner)
	out.Winner.Override = map[string]int{}
	out.Throughput = fixed.Throughput
	bestJoint := -1
	for i, v := range out.Verified {
		if v.Measured > out.Throughput {
			bestJoint = i
			out.Throughput = v.Measured
		} else if bestJoint >= 0 && v.Measured == out.Throughput &&
			place.Less(v.Par, out.Verified[bestJoint].Par) {
			bestJoint = i
		}
	}
	if bestJoint >= 0 {
		v := out.Verified[bestJoint]
		out.Improved = true
		out.Winner.Par = v.Par
		out.Winner.Placement = asPlacementMap(v.Assign)
		out.Winner.Override = jointOverride(out.OpNames, v.Par, res.DefaultPar)
	}
	return out, nil
}

// ParString renders a parallelism vector as op=k pairs for the operators
// that differ from the default, or "default" when none do.
func (js *JointSearch) ParString() string {
	if js.Winner.Par == nil {
		return "default"
	}
	var ops []string
	for op := range js.Winner.Override {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	s := ""
	for i, op := range ops {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", op, js.Winner.Override[op])
	}
	return s
}
