package bench

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts CPU profiling into cpuPath and arranges a heap
// profile into memPath; either may be empty to skip. The returned stop
// function (never nil) ends the CPU profile and writes the heap profile —
// callers defer it around the profiled work. Shared by the dspbench and
// dspreport CLIs' -cpuprofile/-memprofile flags.
func StartProfiles(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return func() {}, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return func() {}, fmt.Errorf("cpuprofile: %w", err)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}, nil
}
