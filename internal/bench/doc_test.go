package bench

import (
	"testing"

	"streamscale/internal/apps"
)

// Every application named in the benchmark registry has a default event
// budget in the harness, so `bench.Run` never silently falls back for a
// known app.
func TestDefaultEventsCoverBenchmarkApps(t *testing.T) {
	for _, app := range apps.BenchmarkNames() {
		if defaultEvents[app] == 0 {
			t.Errorf("app %s has no default event budget", app)
		}
	}
	if defaultEvents["null"] == 0 {
		t.Error("null app has no default event budget")
	}
}

// Cell.Events applies the scale multiplicatively.
func TestCellEventsScaling(t *testing.T) {
	base := Cell{App: "wc"}.Events()
	if base == 0 {
		t.Fatal("no default for wc")
	}
	if got := (Cell{App: "wc", EventScale: 2}).Events(); got != base*2 {
		t.Fatalf("scaled events = %d, want %d", got, base*2)
	}
	if got := (Cell{App: "unknown-app"}).Events(); got != 5000 {
		t.Fatalf("fallback events = %d, want 5000", got)
	}
}

// Cell.Topology applies parallelism overrides and chaining.
func TestCellTopologyOverrides(t *testing.T) {
	c := Cell{App: "tm", System: "storm", ParallelismOverride: map[string]int{"map-match": 40}}
	topo, err := c.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if got := topo.Node("map-match").Parallelism; got != 40 {
		t.Fatalf("override parallelism = %d, want 40", got)
	}
	sd := Cell{App: "sd", System: "flink", Chaining: true}
	topo, err = sd.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if topo.Node("moving-average+spike-detection") == nil {
		t.Fatal("chaining did not fuse SD's chainable hop")
	}
}
