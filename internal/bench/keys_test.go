package bench

import "testing"

// TestCanonicalTailFields pins the cell-v3 key behavior for the open-loop
// fields: anything the runtime can observe must change the key, and every
// normalization must mirror exactly a runtime clamp — no more, no less.
func TestCanonicalTailFields(t *testing.T) {
	base := Cell{App: "wc", System: "storm", Sockets: 1}

	distinct := []Cell{
		base,
		{App: "wc", System: "storm", Sockets: 1, SourceRate: 1e5},
		{App: "wc", System: "storm", Sockets: 1, SourceRate: 2e5},
		{App: "wc", System: "storm", Sockets: 1, SourceRate: 1e5, COUncorrected: true},
		{App: "wc", System: "storm", Sockets: 1, SourceRate: 1e5, LatencySampleEvery: 1},
		{App: "wc", System: "storm", Sockets: 1, NoAck: true},
	}
	seen := map[string]int{}
	for i, c := range distinct {
		k := c.Canonical()
		if j, dup := seen[k]; dup {
			t.Errorf("cells %d and %d alias to the same key:\n%+v\n%+v", j, i, distinct[j], distinct[i])
		}
		seen[k] = i
	}

	same := []struct {
		name string
		a, b Cell
	}{
		{"negative rate is closed-loop",
			Cell{App: "wc", System: "storm", SourceRate: -3},
			Cell{App: "wc", System: "storm"}},
		{"CO flag invisible without a rate",
			Cell{App: "wc", System: "storm", COUncorrected: true},
			Cell{App: "wc", System: "storm"}},
		{"zero cadence is the runtime default of 8",
			Cell{App: "wc", System: "storm", LatencySampleEvery: 8},
			Cell{App: "wc", System: "storm"}},
		{"NoAck invisible on flink (acking already off)",
			Cell{App: "wc", System: "flink", NoAck: true},
			Cell{App: "wc", System: "flink"}},
	}
	for _, tc := range same {
		if ka, kb := tc.a.Canonical(), tc.b.Canonical(); ka != kb {
			t.Errorf("%s: keys differ\n%s\n%s", tc.name, ka, kb)
		}
	}

	// NoAck must stay visible on storm — the runtime turns acking off.
	withNoAck := Cell{App: "wc", System: "storm", Sockets: 1, NoAck: true}
	if withNoAck.Canonical() == base.Canonical() {
		t.Error("NoAck aliased on storm, where the runtime observes it")
	}
}
