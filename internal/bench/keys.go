package bench

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"streamscale/internal/hw"
	"streamscale/internal/jvm"
)

// Canonical returns the cell's canonical serialization: two cells that the
// simulator cannot distinguish produce the same string, and any difference
// the simulator could observe produces a different one. It is the cache
// key of the memo layer (hashed there together with the build
// fingerprint), so it applies exactly the normalizations the runtime
// applies — batch 0 and 1 are both "no batching" (runtime clamps to 1),
// seed 0 defaults to 1, scale 0 to 1, sockets 0 to the full machine,
// EventScale collapses to the resolved event count, the zero GC config to
// the G1 defaults — and serializes maps in sorted key order so insertion
// order never leaks into the key. Normalizations only ever mirror a
// runtime clamp; anything the runtime might observe stays verbatim, so a
// too-conservative key can cost a duplicate simulation but never alias
// two distinguishable cells.
func (c Cell) Canonical() string {
	// Clamps resolve against the cell's machine variant ("" = Table III):
	// "all sockets" on an 8x4 machine is 8, not 4. An unknown variant name
	// serializes verbatim against baseline clamps — Run will reject it
	// before anything is cached, so the key only has to stay distinct.
	spec := hw.TableIII()
	if c.Spec != "" {
		if v, ok := hw.Variant(c.Spec); ok {
			spec = v
		}
	}

	sockets := c.Sockets
	if sockets <= 0 || sockets > spec.Sockets {
		sockets = spec.Sockets
	}
	cores := c.Cores
	if cores <= 0 || cores >= sockets*spec.CoresPerSocket {
		cores = 0 // unrestricted
	}
	batch := c.BatchSize
	if batch <= 0 {
		batch = 1
	}
	scale := c.Scale
	if scale <= 0 {
		scale = 1
	}
	seed := c.Seed
	if seed == 0 {
		seed = 1
	}
	gc := c.GC
	if gc.YoungBytes == 0 {
		gc = jvm.G1()
	}
	if gc.YoungBytes >= 64<<20 {
		gc.YoungBytes = 2 << 20
	}
	rate := c.SourceRate
	if rate < 0 {
		rate = 0 // runtime treats any non-positive rate as closed-loop
	}
	latEvery := c.LatencySampleEvery
	if latEvery <= 0 {
		latEvery = 8 // mirrors SimConfig.fill's default
	}
	co := c.COUncorrected
	if rate == 0 {
		co = false // runtime ignores the flag without an arrival schedule
	}
	noAck := c.NoAck
	if c.System == "flink" {
		noAck = false // flink's profile has acking off already
	}

	var sb strings.Builder
	sb.Grow(256)
	fmt.Fprintf(&sb, "cell-v3|app=%q|sys=%q|spec=%q|sockets=%d|cores=%d|batch=%d|events=%d|scale=%d|seed=%d",
		c.App, c.System, c.Spec, sockets, cores, batch, c.Events(), scale, seed)
	fmt.Fprintf(&sb, "|rate=%s|latevery=%d|noack=%t|co=%t", ff(rate), latEvery, noAck, co)
	fmt.Fprintf(&sb, "|gc=%d,%d,%s,%s,%s,%d,%s,%t",
		int(gc.Kind), gc.YoungBytes,
		ff(gc.SurvivorFraction), ff(gc.CopyCyclesPerByte), ff(gc.ScanCyclesPerByte),
		int64(gc.PauseBase), ff(gc.MutatorVisibleFraction), gc.UseNUMA)
	fmt.Fprintf(&sb, "|huge=%t|nouop=%t|chain=%t", c.HugePages, c.NoUopCache, c.Chaining)

	sb.WriteString("|place=")
	if len(c.Placement) > 0 {
		keys := make([]int, 0, len(c.Placement))
		for k := range c.Placement {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		for i, k := range keys {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d:%d", k, c.Placement[k])
		}
	}

	sb.WriteString("|par=")
	if len(c.ParallelismOverride) > 0 {
		ops := make([]string, 0, len(c.ParallelismOverride))
		for op := range c.ParallelismOverride {
			ops = append(ops, op)
		}
		sort.Strings(ops)
		for i, op := range ops {
			if i > 0 {
				sb.WriteByte(',')
			}
			// Clamp mirrors Cell.Topology: a non-positive override runs as
			// parallelism 1, so it must key identically (joint-search
			// verification cells pre-apply their clamps the same way).
			p := c.ParallelismOverride[op]
			if p < 1 {
				p = 1
			}
			fmt.Fprintf(&sb, "%q:%d", op, p)
		}
	}
	return sb.String()
}

// ff formats a float64 with full round-trip precision.
func ff(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
