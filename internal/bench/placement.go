package bench

import (
	"fmt"
	"sort"
	"strings"

	"streamscale/internal/apps"

	"streamscale/internal/hw"
	"streamscale/internal/place"
)

// The model-guided placement flow (§VI-B, BriskStream-style): one probe
// simulation per (app, system) — the unplaced four-socket baseline every
// placement row already needs, so it is memo-shared and costs nothing
// extra — calibrates an analytical cost model (internal/place). A
// deterministic branch-and-bound search then ranks full per-executor
// assignments, with the k=1..4 min-k-cut plans seeded into the pool, and
// only the handful of top-ranked plans are verified by full simulation.
// The previous flow simulated every candidate plan at both batch sizes.

// verifyTop is how many model-ranked plans are fully simulated per search
// (the best-ranked min-k-cut seed is verified in addition when it is not
// already among them). verifyTopBatched applies to batched (S>1)
// searches, whose ranking reuses the batch-adjusted model; those get one
// more slot because the batch adjustment is analytical (no batched probe)
// and its ranking is correspondingly less sharp. Batched searches over
// workloads with a deep seed pool (>= extraSeedMinSeeds distinct min-k-cut
// plans) verify one additional seed — the most concentrated unverified one
// — because crowding plans are exactly where the model's oversubscription
// term is an approximation of the scheduler.
//
// batchedTierEps groups batched scores that agree to within 0.5% into one
// rank tier: that is below the batch-adjusted model's resolution. Within a
// tier the simulator is not indifferent even though the model is — see
// the socket-spread tie-break in SearchPlacement. Batch-1 rankings use
// exact-score tiers only: the probe measured that batch size directly, so
// its scores are trusted.
const (
	verifyTop         = 2
	verifyTopBatched  = 3
	extraSeedMinSeeds = 6
	batchedTierEps    = 0.005
)

// PlanVerification is one plan that was both model-scored and fully
// simulated during a placement search.
type PlanVerification struct {
	// Assign is the per-executor socket assignment exactly as simulated:
	// search plans are canonical, seed plans keep their original labels
	// (the simulated machine is not label symmetric).
	Assign []int
	// Predicted is the model's throughput estimate (events/s).
	Predicted float64
	// Measured is the simulated throughput (events/s).
	Measured float64
	// Seed marks plans that came from the min-k-cut seed set.
	Seed bool
}

// PlacementSearch is the outcome of one model-guided placement search for
// one (app, system, batch) row.
type PlacementSearch struct {
	App, System string
	Batch       int

	// Winner is the verified assignment with the highest measured
	// throughput; ties break to the lexicographically smallest assignment.
	Winner []int
	// WinnerK is the number of distinct sockets the winner uses.
	WinnerK int
	// Throughput is the winner's measured throughput (events/s).
	Throughput float64

	// Verified lists the simulated plans in model-rank order.
	Verified []PlanVerification
	// Scored is how many distinct plans the model ranked (the candidate
	// pool: B&B results merged with the seeds).
	Scored int
	// Seeds is how many distinct min-k-cut seed plans entered the pool.
	Seeds int
}

// SearchPlacement runs the model-guided search for one row: calibrate
// from the probe, rank candidates, verify the top few by simulation, and
// select the measured best.
func SearchPlacement(app, system string, batch, scale int) (*PlacementSearch, error) {
	topo, err := apps.Build(app, apps.Config{Events: Cell{App: app}.Events(), Seed: 1, Scale: scale})
	if err != nil {
		return nil, err
	}
	sys, err := systemProfile(system)
	if err != nil {
		return nil, err
	}

	// Seed plans: the min-k-cut candidates of the previous flow, in both
	// balance modes. They enter the ranked pool, so the search can never
	// select a plan the model scores worse than every seed. Seeds keep
	// their ORIGINAL socket labels: the simulated machine is not label
	// symmetric (socket 0 hosts setup-time first-touch allocations), so a
	// relabeled plan is a physically different — and often slower — run,
	// and the old flow measured the original labels.
	var seeds [][]int
	seenSeed := make(map[string]bool)
	for _, balanced := range []bool{true, false} {
		ps, err := place.PlanFor(topo, sys, 4, place.PlaceOptions{
			CoresPerSocket: 8, Oversubscribe: 1.5, Balanced: balanced,
		})
		if err != nil {
			continue
		}
		for _, p := range ps {
			if k := assignString(p.Assign); !seenSeed[k] {
				seenSeed[k] = true
				seeds = append(seeds, p.Assign)
			}
		}
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("no feasible placement plans")
	}

	// Probe: the unplaced four-socket baseline at batch 1 — identical to
	// the Fig 14 normalization cell, so the memo layer shares it.
	probeRes, err := Run(Cell{App: app, System: system, Sockets: 4, Scale: scale, BatchSize: 1})
	if err != nil {
		return nil, err
	}
	model, err := place.Calibrate(probeRes, hw.TableIII(), sys, 1)
	if err != nil {
		return nil, fmt.Errorf("calibrate %s/%s: %w", app, system, err)
	}
	if model.N() != len(seeds[0]) {
		return nil, fmt.Errorf("model has %d executors, plans have %d", model.N(), len(seeds[0]))
	}
	if batch > 1 {
		// Analytical batch adjustment: no second probe needed.
		model = model.WithBatch(batch)
	}

	cands := model.Search(place.SearchOptions{
		TopM: 8, Workers: Jobs(), Seeds: seeds,
	})

	// Merge the ranked pool: seeds (original labels) plus search plans
	// (canonical labels), with search plans that duplicate a seed's
	// partition dropped — the seed's labeling carries the measurement.
	seedPartition := make(map[string]bool, len(seeds))
	for _, s := range seeds {
		seedPartition[assignString(place.Canonical(s))] = true
	}
	type scoredPlan struct {
		assign  []int
		score   float64
		seed    bool
		k, tier int
	}
	var merged []scoredPlan
	for _, s := range seeds {
		merged = append(merged, scoredPlan{assign: s, score: model.Bottleneck(s), seed: true})
	}
	for _, c := range cands {
		if !seedPartition[assignString(c.Assign)] {
			merged = append(merged, scoredPlan{assign: c.Assign, score: c.Score})
		}
	}
	for i := range merged {
		merged[i].k = distinctSockets(merged[i].assign)
	}
	sort.SliceStable(merged, func(i, j int) bool {
		if merged[i].score != merged[j].score {
			return merged[i].score < merged[j].score
		}
		return place.Less(merged[i].assign, merged[j].assign)
	})
	// Tier the ranking: scores within the model's resolution of the tier's
	// best are one tier (exact at batch 1, batchedTierEps at S>1). Within a
	// tier the model cannot order, but the simulator is not indifferent:
	// systems that track progress with per-tuple acks (storm) route every
	// ack through the socket-0 acker and reward concentration, so their
	// ties prefer FEWER distinct sockets; barrier-based systems (flink)
	// are bound by aggregate LLC capacity and DRAM channels — which the
	// per-socket bounds do not price — and reward spread, so their ties
	// prefer MORE.
	spreadTies := !sys.AckEnabled
	eps := 0.0
	if batch > 1 {
		eps = batchedTierEps
	}
	tierBest := 0.0
	for i := range merged {
		if i == 0 || merged[i].score > tierBest*(1+eps) {
			tierBest = merged[i].score
			merged[i].tier = i
		} else {
			merged[i].tier = merged[i-1].tier
		}
	}
	sort.SliceStable(merged, func(i, j int) bool {
		if merged[i].tier != merged[j].tier {
			return merged[i].tier < merged[j].tier
		}
		if merged[i].k != merged[j].k {
			if spreadTies {
				return merged[i].k > merged[j].k
			}
			return merged[i].k < merged[j].k
		}
		return place.Less(merged[i].assign, merged[j].assign)
	})

	// Verification set: the top-ranked plans, with the last slot reserved
	// for the best-ranked seed when none ranked on its own — the min-k-cut
	// comparison always has a measured anchor, and the winner can never be
	// worse than that seed's simulated throughput.
	top := verifyTop
	if batch > 1 {
		top = verifyTopBatched
	}
	if top > len(merged) {
		top = len(merged)
	}
	verify := append([]scoredPlan(nil), merged[:top]...)
	hasSeed := false
	for _, c := range verify {
		hasSeed = hasSeed || c.seed
	}
	if !hasSeed {
		for _, c := range merged[top:] {
			if c.seed {
				verify[len(verify)-1] = c
				break
			}
		}
	}
	if batch > 1 && len(seeds) >= extraSeedMinSeeds {
		// Extra slot: the most concentrated seed not already verified
		// (fewest distinct sockets, ranked order breaking ties).
		inVerify := make(map[string]bool, len(verify))
		for _, c := range verify {
			inVerify[assignString(c.assign)] = true
		}
		extra := -1
		for i, c := range merged {
			if !c.seed || inVerify[assignString(c.assign)] {
				continue
			}
			if extra < 0 || c.k < merged[extra].k {
				extra = i
			}
		}
		if extra >= 0 {
			verify = append(verify, merged[extra])
		}
	}

	// Simulate the verification set through the memoized pool.
	cells := make([]Cell, len(verify))
	for i, c := range verify {
		cells[i] = Cell{
			App: app, System: system, Sockets: 4, Scale: scale,
			BatchSize: batch, Placement: asPlacementMap(c.assign),
		}
	}
	results, err := runCells(cells)
	if err != nil {
		return nil, err
	}

	out := &PlacementSearch{
		App: app, System: system, Batch: batch,
		Scored: len(merged), Seeds: len(seeds),
	}
	for i, c := range verify {
		out.Verified = append(out.Verified, PlanVerification{
			Assign:    c.assign,
			Predicted: model.PredictThroughput(c.assign),
			Measured:  results[i].Res.Throughput().PerSecond(),
			Seed:      c.seed,
		})
	}
	best := pickWinner(out.Verified)
	out.Winner = out.Verified[best].Assign
	out.WinnerK = distinctSockets(out.Winner)
	out.Throughput = out.Verified[best].Measured
	return out, nil
}

// pickWinner selects the measured-best verified plan; throughput ties
// break to the lexicographically smallest assignment, so plan enumeration
// order can never leak into the selection.
func pickWinner(verified []PlanVerification) int {
	best := 0
	for i := 1; i < len(verified); i++ {
		v, b := &verified[i], &verified[best]
		if v.Measured > b.Measured ||
			(v.Measured == b.Measured && place.Less(v.Assign, b.Assign)) {
			best = i
		}
	}
	return best
}

// bestPlacement preserves the previous flow's signature: the winning
// placement map, its socket count, and its measured throughput.
func bestPlacement(app, system string, batch, scale int) (map[int]int, int, float64, error) {
	ps, err := SearchPlacement(app, system, batch, scale)
	if err != nil {
		return nil, 0, 0, err
	}
	return asPlacementMap(ps.Winner), ps.WinnerK, ps.Throughput, nil
}

// bestVerifiedSeed returns the best measured throughput among verified
// min-k-cut seed plans (at least one is always verified).
func (ps *PlacementSearch) bestVerifiedSeed() float64 {
	best := 0.0
	for _, v := range ps.Verified {
		if v.Seed && v.Measured > best {
			best = v.Measured
		}
	}
	return best
}

// PlacementMap converts a per-executor assignment slice to the Cell
// placement map form (global executor index -> socket).
func PlacementMap(assign []int) map[int]int { return asPlacementMap(assign) }

func asPlacementMap(assign []int) map[int]int {
	m := make(map[int]int, len(assign))
	for g, s := range assign {
		m[g] = s
	}
	return m
}

func assignString(assign []int) string {
	var sb strings.Builder
	sb.Grow(2 * len(assign))
	for i, s := range assign {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", s)
	}
	return sb.String()
}

func distinctSockets(assign []int) int {
	seen := make(map[int]bool, 4)
	for _, s := range assign {
		seen[s] = true
	}
	return len(seen)
}

// --- Model validation: predicted vs simulated -----------------------------

// ModelValidationRow summarizes how well the cost model ranked plans for
// one (app, system) row across its batch-1 and batched searches.
type ModelValidationRow struct {
	App, System string
	// Plans is how many distinct plans the model ranked; Verified how
	// many were fully simulated; Avoided the difference.
	Plans, Verified, Avoided int
	// RankTau is the Kendall rank correlation between model rank and
	// measured rank over the verified plans (pairs within one search).
	RankTau float64
	// MeanErr is the mean relative error of predicted vs measured
	// throughput over the verified plans.
	MeanErr float64
}

// validationRow folds one row's searches into its validation summary.
func validationRow(searches ...*PlacementSearch) ModelValidationRow {
	row := ModelValidationRow{App: searches[0].App, System: searches[0].System}
	conc, disc := 0, 0
	var errSum float64
	var errN int
	for _, ps := range searches {
		row.Plans += ps.Scored
		row.Verified += len(ps.Verified)
		// Verified is in model-rank order: count pairwise agreements with
		// the measured order.
		for i := 0; i < len(ps.Verified); i++ {
			for j := i + 1; j < len(ps.Verified); j++ {
				mi, mj := ps.Verified[i].Measured, ps.Verified[j].Measured
				switch {
				case mi > mj:
					conc++
				case mi < mj:
					disc++
				}
			}
		}
		for _, v := range ps.Verified {
			if v.Measured > 0 {
				d := (v.Predicted - v.Measured) / v.Measured
				if d < 0 {
					d = -d
				}
				errSum += d
				errN++
			}
		}
	}
	row.Avoided = row.Plans - row.Verified
	if conc+disc > 0 {
		row.RankTau = float64(conc-disc) / float64(conc+disc)
	}
	if errN > 0 {
		row.MeanErr = errSum / float64(errN)
	}
	return row
}

// ModelValidationTable renders the model-vs-simulated validation section.
func ModelValidationTable(rows []ModelValidationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Model validation — placement cost model vs full simulation (verified plans)\n")
	fmt.Fprintf(&b, "%-6s %-6s %7s %9s %8s %9s %9s\n",
		"sys", "app", "ranked", "verified", "avoided", "rank-tau", "mean-err")
	for _, sys := range Systems {
		for _, r := range rows {
			if r.System != sys {
				continue
			}
			fmt.Fprintf(&b, "%-6s %-6s %7d %9d %8d %9.2f %8.1f%%\n",
				r.System, r.App, r.Plans, r.Verified, r.Avoided, r.RankTau, r.MeanErr*100)
		}
	}
	return b.String()
}

// sortValidation orders rows deterministically (app within system handled
// by the table; this orders the backing slice by app, then system).
func sortValidation(rows []ModelValidationRow) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].App != rows[j].App {
			return rows[i].App < rows[j].App
		}
		return rows[i].System < rows[j].System
	})
}
