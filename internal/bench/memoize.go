package bench

import (
	"streamscale/internal/bench/memo"
	"streamscale/internal/engine"
)

// store memoizes every cell this package runs, keyed by Cell.Canonical
// and the build fingerprint. The full dspreport sweep requests many cells
// more than once (the single-socket study feeds Fig 6a, Table IV and
// Figs 7/8/11; Batching and Placement re-run each other's baselines;
// bestPlacement brute-forces near-identical plans), so sharing one store
// across all experiment drivers collapses those to one simulation each.
var store = memo.New(memo.BuildFingerprint())

// Run executes the cell on the simulated machine, memoized: repeated and
// concurrent requests for an indistinguishable cell simulate once and
// share the result. Callers must treat the returned Result as immutable.
func Run(c Cell) (*engine.Result, error) {
	return store.Do(c.Canonical(), func() (*engine.Result, error) { return runDirect(c) })
}

// EnableDiskCache attaches a persistent result cache at dir (the CLIs'
// -cache flag): results persist across processes, and a re-run of an
// unchanged build replays from disk instead of re-simulating. Cache files
// written by other builds are pruned; the number removed is returned.
func EnableDiskCache(dir string) (pruned int, err error) {
	return store.AttachDisk(dir)
}

// MemoStats returns the memo layer's counters; Stats.Runs is the number
// of simulations actually executed, which the dedup tests pin.
func MemoStats() memo.Stats { return store.Stats() }

// CellKey returns the cell's content-addressed cache key: the hash of its
// canonical serialization and the build fingerprint. Two invocations of
// the same build agree on it; any code or cell change moves it, which is
// what makes it usable as a stable identity in benchmark trajectories.
func CellKey(c Cell) string { return store.Key(c.Canonical()) }

// ResetMemo drops all in-memory memoized results (the attached cache
// directory, if any, is kept). Tests use it to force fresh simulations.
func ResetMemo() { store.Reset() }
