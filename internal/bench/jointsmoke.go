package bench

import (
	"fmt"
	"math"
	"strings"

	"streamscale/internal/hw"
	"streamscale/internal/place"
)

// jointSmokeRankEps is the relative predicted-throughput difference below
// which a candidate pair is too close to call and excluded from the
// rank-tau gate (same resolution as the fast tier's tierRankEps).
const jointSmokeRankEps = 0.005

// JointSmoke is the CI gate for the joint search: for a few rows it
// simulates EVERY top-ranked joint configuration (not just the ones the
// production flow verifies) and checks that
//
//	(1) the screened (model) ranking agrees with the measured ranking at
//	    rank-tau >= 0.90 over decidable pairs, and
//	(2) the production winner never measures below the placement-only
//	    winner (the zero-regression invariant).
//
// It runs only when selected explicitly: the exhaustive simulation pass
// is exactly the cost the joint flow exists to avoid.
func JointSmoke() (string, error) {
	const tauGate = 0.90
	rows := []struct {
		app, sys string
	}{{"wc", "storm"}, {"sd", "flink"}}

	conc, disc := 0, 0
	var b strings.Builder
	simulated := 0
	for _, row := range rows {
		topo, err := Cell{App: row.app, Seed: 1, Scale: 4}.Topology()
		if err != nil {
			return "", err
		}
		prof, err := systemProfile(row.sys)
		if err != nil {
			return "", err
		}
		probeRes, err := Run(Cell{App: row.app, System: row.sys, Sockets: 4, Scale: 4, BatchSize: 1})
		if err != nil {
			return "", err
		}
		model, err := place.Calibrate(probeRes, hw.TableIII(), prof, 1)
		if err != nil {
			return "", err
		}
		w, err := place.NewWorkload(model, topo, prof)
		if err != nil {
			return "", err
		}
		// The configurations the production search RETURNS are all
		// near-optimal under the model — their predictions agree to within
		// the eps filter by construction, so ranking them against each
		// other tests nothing. The ranking question that matters is across
		// deliberately DIFFERENT vectors: the default, everything halved,
		// and everything doubled span under- and over-provisioning, where
		// the model's predictions differ by tens of percent. Each vector
		// gets its best assignment from the inner search.
		def := w.DefaultPar()
		vectors := [][]int{def}
		for _, scale := range []int{-2, 2} {
			v := append([]int(nil), def...)
			changed := false
			for _, i := range w.Searchable() {
				n := def[i] * scale
				if scale < 0 {
					n = def[i] / -scale
				}
				if n < 1 {
					n = 1
				}
				if n != def[i] {
					v[i] = n
					changed = true
				}
			}
			if changed {
				vectors = append(vectors, v)
			}
		}
		var cands []place.JointCandidate
		for _, v := range vectors {
			m, err := w.Reparallelize(v)
			if err != nil {
				return "", err
			}
			best := m.Search(place.SearchOptions{TopM: 1, Workers: Jobs()})
			if len(best) == 0 {
				return "", fmt.Errorf("joint-smoke: no assignment for vector %v", v)
			}
			cands = append(cands, place.JointCandidate{Par: v, Assign: best[0].Assign, Score: best[0].Score})
		}

		// Simulate each vector's best configuration and correlate the model
		// ranking with measured throughput.
		var names []string
		for _, op := range w.Ops {
			names = append(names, op.Name)
		}
		res := &place.JointResult{DefaultPar: def}
		cells := make([]Cell, len(cands))
		pred := make([]float64, len(cands))
		for i, c := range cands {
			cells[i] = Cell{
				App: row.app, System: row.sys, Sockets: 4, Scale: 4, BatchSize: 1,
				Placement:           PlacementMap(c.Assign),
				ParallelismOverride: jointOverride(names, c.Par, res.DefaultPar),
			}
			m, err := w.Reparallelize(c.Par)
			if err != nil {
				return "", err
			}
			pred[i] = m.PredictThroughput(c.Assign)
		}
		full, err := runCells(cells)
		if err != nil {
			return "", err
		}
		simulated += len(cells)
		meas := make([]float64, len(full))
		for i := range full {
			meas[i] = full[i].Res.Throughput().PerSecond()
		}
		for i := 0; i < len(meas); i++ {
			for j := i + 1; j < len(meas); j++ {
				if math.Abs(pred[i]-pred[j]) <= jointSmokeRankEps*math.Max(pred[i], pred[j]) ||
					meas[i] == meas[j] {
					continue
				}
				if (pred[i] > pred[j]) == (meas[i] > meas[j]) {
					conc++
				} else {
					disc++
				}
			}
		}

		// Zero-regression invariant on the production flow.
		js, err := SearchJoint(row.app, row.sys, 1, 4)
		if err != nil {
			return "", err
		}
		if js.Throughput < js.FixedThroughput {
			return "", fmt.Errorf("joint-smoke: %s/%s joint winner %.0f ev/s below placement-only %.0f ev/s",
				row.app, row.sys, js.Throughput, js.FixedThroughput)
		}
		fmt.Fprintf(&b, "joint-smoke: %s/%s: %d candidate(s) simulated, winner %s (%+.1f%% vs fixed)\n",
			row.app, row.sys, len(cells), js.ParString(), (js.Throughput/js.FixedThroughput-1)*100)
	}

	tau := 0.0
	if conc+disc > 0 {
		tau = float64(conc-disc) / float64(conc+disc)
	}
	fmt.Fprintf(&b, "joint-smoke: screened-vs-measured rank-tau %.2f over %d pair(s) (gate >= %.2f, %d simulated)\n",
		tau, conc+disc, tauGate, simulated)
	if conc+disc > 0 && tau < tauGate {
		return b.String(), fmt.Errorf("joint-smoke: rank-tau %.2f below gate %.2f", tau, tauGate)
	}
	return b.String(), nil
}
