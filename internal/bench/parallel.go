package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// The experiment cells of a sweep are independent, deterministic
// simulations: each Run builds its own kernel, machine, heap, and RNG from
// the cell's seed and shares no mutable state with any other run. RunCells
// exploits that by fanning cells across host cores; because seeding is
// per-cell and results are written back by input index, the output is
// bit-identical to a sequential loop regardless of worker count or
// completion order.

// defaultJobs is the package-wide worker budget used by every sweep in
// this package (the CLIs' -jobs flag sets it via SetJobs).
var defaultJobs atomic.Int64

func init() { defaultJobs.Store(int64(runtime.NumCPU())) }

// SetJobs sets the worker budget used by the sweeps in this package.
// Values below 1 select sequential execution.
func SetJobs(n int) {
	if n < 1 {
		n = 1
	}
	defaultJobs.Store(int64(n))
}

// Jobs returns the current sweep worker budget.
func Jobs() int { return int(defaultJobs.Load()) }

// RunCells executes the cells on a pool of jobs workers and returns the
// results in input order. Each cell's result is identical to what a
// sequential Run(cell) produces (the determinism test pins this). On
// failure the first error in cell order is returned; remaining cells still
// run to completion.
func RunCells(cells []Cell, jobs int) ([]CellResult, error) {
	out := make([]CellResult, len(cells))
	errs := make([]error, len(cells))
	if jobs > len(cells) {
		jobs = len(cells)
	}
	meter := newProgressMeter(len(cells))
	if jobs <= 1 {
		for i, c := range cells {
			res, err := Run(c)
			out[i] = CellResult{Cell: c, Res: res}
			errs[i] = err
			meter.tick()
		}
	} else {
		// Concurrency audit: the only cross-worker state is the atomic
		// claim cursor; out/errs are written at distinct claimed indices,
		// and wg.Wait is the release barrier before anyone reads them.
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < jobs; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(cells) {
						return
					}
					res, err := Run(cells[i])
					out[i] = CellResult{Cell: cells[i], Res: res}
					errs[i] = err
					meter.tick()
				}
			}()
		}
		wg.Wait()
	}
	meter.finish()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", cells[i].App, cells[i].System, err)
		}
	}
	return out, nil
}

// runCells is RunCells with the package-wide worker budget.
func runCells(cells []Cell) ([]CellResult, error) { return RunCells(cells, Jobs()) }
