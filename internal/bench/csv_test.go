package bench

import (
	"encoding/csv"
	"strings"
	"testing"

	"streamscale/internal/apps"
	"streamscale/internal/profiler"
)

func parseCSV(t *testing.T, s string) [][]string {
	t.Helper()
	rows, err := csv.NewReader(strings.NewReader(s)).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v", err)
	}
	return rows
}

func TestCSVExports(t *testing.T) {
	cells := study(t)

	var sb strings.Builder
	if err := Fig6aCSV(&sb, cells); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, sb.String())
	if len(rows) != 8 { // header + 7 apps
		t.Fatalf("fig6a rows = %d, want 8", len(rows))
	}
	if rows[0][0] != "app" || len(rows[1]) != 3 {
		t.Fatalf("fig6a header malformed: %v", rows[0])
	}

	sb.Reset()
	if err := BreakdownCSV(&sb, cells); err != nil {
		t.Fatal(err)
	}
	rows = parseCSV(t, sb.String())
	if len(rows) != 15 { // header + 2 systems x 7 apps
		t.Fatalf("breakdown rows = %d, want 15", len(rows))
	}

	sb.Reset()
	if err := UtilizationCSV(&sb, cells); err != nil {
		t.Fatal(err)
	}
	if rows = parseCSV(t, sb.String()); len(rows) != 15 {
		t.Fatalf("utilization rows = %d, want 15", len(rows))
	}
}

func TestScalabilityCSV(t *testing.T) {
	s := &ScalabilityResult{
		System:     "storm",
		Points:     []int{1, 8},
		Normalized: map[string][]float64{"wc": {1, 3.5}},
	}
	var sb strings.Builder
	if err := ScalabilityCSV(&sb, s); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, sb.String())
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if rows[2][2] != "8" || rows[2][3] != "3.5000" {
		t.Fatalf("row malformed: %v", rows[2])
	}
}

func TestBatchingAndPlacementCSV(t *testing.T) {
	var sb strings.Builder
	if err := BatchingCSV(&sb, []BatchingRow{{
		App: "wc", System: "storm", Sizes: []int{1, 8},
		Throughput: []float64{1, 2.3}, Latency: []float64{1, 1.5},
	}}); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, sb.String())
	if len(rows) != 3 || rows[2][3] != "2.3000" {
		t.Fatalf("batching CSV malformed: %v", rows)
	}

	sb.Reset()
	if err := PlacementCSV(&sb, []PlacementRow{{
		App: "lr", System: "storm", SingleSocket: 1.1, FourSockets: 1,
		Placed: 1.3, Combined: 1.4, BestK: 4,
	}}); err != nil {
		t.Fatal(err)
	}
	rows = parseCSV(t, sb.String())
	if len(rows) != 2 || rows[1][6] != "4" {
		t.Fatalf("placement CSV malformed: %v", rows)
	}

	sb.Reset()
	if err := Fig10CSV(&sb, []Fig10Row{{Executors: 32, MeanLatencyMs: 40}}); err != nil {
		t.Fatal(err)
	}
	if rows = parseCSV(t, sb.String()); len(rows) != 2 {
		t.Fatal("fig10 CSV malformed")
	}

	sb.Reset()
	if err := TableVCSV(&sb, "storm", []TableVRow{{App: "wc", Local: 0.05, Remote: 0.2}}); err != nil {
		t.Fatal(err)
	}
	if rows = parseCSV(t, sb.String()); len(rows) != 2 || rows[1][3] != "0.2000" {
		t.Fatalf("tableV CSV malformed: %v", rows)
	}

	sb.Reset()
	if err := FootprintCSV(&sb, []FootprintResult{{
		App: "wc", System: "storm",
		Points: []profiler.CDFPoint{{Bytes: 1024, Fraction: 0.5}},
	}}); err != nil {
		t.Fatal(err)
	}
	if rows = parseCSV(t, sb.String()); len(rows) != 2 || rows[1][2] != "1024" {
		t.Fatalf("footprint CSV malformed: %v", rows)
	}
}

func TestCSVName(t *testing.T) {
	if CSVName("fig7") != "fig7.csv" {
		t.Fatal("bad CSV name")
	}
	_ = apps.BenchmarkNames() // keep import
}
