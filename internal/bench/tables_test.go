package bench

import "testing"

// Golden-file tests for the placement table renderers: the format strings
// are load-bearing (report_output.txt is diffed byte-for-byte across
// runs), so pin their exact output on literal rows — no simulation.

var goldenPlacementRows = []PlacementRow{
	{App: "wc", System: "storm", SingleSocket: 0.3012, FourSockets: 1, Placed: 1.2149, Combined: 4.018, BestK: 1},
	{App: "lr", System: "flink", SingleSocket: 0.2598, FourSockets: 1, Placed: 1.0349, Combined: 3.501, BestK: 4},
}

func TestFig14TableGolden(t *testing.T) {
	want := "" +
		"Fig 14 — NUMA-aware executor placement (normalized to 4 sockets w/o optimizations)\n" +
		"sys    app      1 socket  4 sockets    4s+placed  bestK\n" +
		"storm  wc            30%       100%         121%      1\n" +
		"flink  lr            26%       100%         103%      4\n"
	if got := Fig14Table(goldenPlacementRows); got != want {
		t.Errorf("Fig14Table drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestFig15TableGolden(t *testing.T) {
	want := "" +
		"Fig 15 — both optimizations (batching S=8 + placement), normalized to 4 sockets w/o optimizations\n" +
		"sys    app      1 socket  4 sockets      4s+both\n" +
		"storm  wc            30%       100%         402%\n" +
		"flink  lr            26%       100%         350%\n"
	if got := Fig15Table(goldenPlacementRows); got != want {
		t.Errorf("Fig15Table drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestPlacementAblationTableGolden(t *testing.T) {
	rows := []PlacementAblationRow{
		{App: "wc", System: "storm", RoundRobin: 0.9412, MinKCut: 1.2149, ModelSearch: 1.2653},
		{App: "wc", System: "flink", RoundRobin: 0.9876, MinKCut: 1.1098, ModelSearch: 1.1098},
	}
	want := "" +
		"Ablation — placement strategy vs OS-spread baseline (4 sockets)\n" +
		"sys    app     round-robin    min-k-cut model-search\n" +
		"storm  wc              94%         121%         127%\n" +
		"flink  wc              99%         111%         111%\n"
	if got := PlacementAblationTable(rows); got != want {
		t.Errorf("PlacementAblationTable drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestModelValidationTableGolden(t *testing.T) {
	rows := []ModelValidationRow{
		{App: "wc", System: "storm", Plans: 16, Verified: 5, Avoided: 11, RankTau: 1, MeanErr: 0.123},
		{App: "lr", System: "flink", Plans: 14, Verified: 5, Avoided: 9, RankTau: -0.5, MeanErr: 0.049},
	}
	want := "" +
		"Model validation — placement cost model vs full simulation (verified plans)\n" +
		"sys    app     ranked  verified  avoided  rank-tau  mean-err\n" +
		"storm  wc          16         5       11      1.00     12.3%\n" +
		"flink  lr          14         5        9     -0.50      4.9%\n"
	if got := ModelValidationTable(rows); got != want {
		t.Errorf("ModelValidationTable drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// The winner tie-break is part of the determinism contract: equal measured
// throughput resolves to the lexicographically smallest canonical
// assignment regardless of verification order.
func TestPickWinnerTieBreak(t *testing.T) {
	verified := []PlanVerification{
		{Assign: []int{0, 1, 1, 2}, Measured: 500},
		{Assign: []int{0, 0, 1, 2}, Measured: 500},
		{Assign: []int{0, 1, 2, 3}, Measured: 400},
	}
	if got := pickWinner(verified); got != 1 {
		t.Errorf("pickWinner = %d, want 1 (lexicographically smallest among tied)", got)
	}
	// Order independence: reversing the tied pair must select the same plan.
	verified[0], verified[1] = verified[1], verified[0]
	if got := pickWinner(verified); got != 0 {
		t.Errorf("pickWinner after swap = %d, want 0 (same plan)", got)
	}
	// A strictly better measurement beats the tie-break.
	verified[2].Measured = 600
	if got := pickWinner(verified); got != 2 {
		t.Errorf("pickWinner = %d, want 2 (highest measured)", got)
	}
}
