// Package bench is the experiment harness: it runs (application x system x
// machine-configuration x optimization) cells on the simulated Table III
// server and regenerates every table and figure of the paper's evaluation
// (the per-experiment index lives in DESIGN.md; measured-vs-paper results
// in EXPERIMENTS.md).
package bench

import (
	"fmt"

	"streamscale/internal/apps"
	"streamscale/internal/engine"
	"streamscale/internal/hw"
	"streamscale/internal/jvm"
	"streamscale/internal/trace"
)

// defaultEvents is the per-application source event count for one
// simulation cell — enough to reach steady state (caches warmed, young
// generation wrapped, cold paths touched) while keeping a full sweep fast.
var defaultEvents = map[string]int{
	"wc":   3000,
	"fd":   10000,
	"lg":   4000,
	"sd":   10000,
	"vs":   4000,
	"tm":   150,
	"lr":   6000,
	"null": 20000,
}

// Cell describes one experiment cell.
type Cell struct {
	App    string
	System string // "storm" or "flink"

	// Sockets/Cores select the machine slice (0 = all four sockets).
	Sockets int
	Cores   int

	// BatchSize is the tuple-batching S (0/1 = off).
	BatchSize int
	// Placement pins executors to sockets (nil = OS-spread).
	Placement map[int]int

	// EventScale scales the app's default event count.
	EventScale float64
	// Scale multiplies every operator's tuned parallelism (the paper
	// re-tunes thread counts per machine configuration).
	Scale int
	// Seed defaults to 1.
	Seed int64
	// GC overrides the collector model.
	GC jvm.Config
	// HugePages enables 2 MB pages.
	HugePages bool
	// NoUopCache disables the decoded-µop cache (D-ICache ablation).
	NoUopCache bool
	// Chaining applies Flink-style operator chaining before running.
	Chaining bool
	// ParallelismOverride adjusts named operators' executor counts after
	// the app is built (e.g. the Fig 10 Map-Match sweep).
	ParallelismOverride map[string]int
	// Spec selects a named machine-spec variant (hw.Variant; "" = the
	// Table III baseline). HugePages/NoUopCache compose on top of it.
	Spec string

	// SourceRate throttles each source executor to the given event rate
	// (events per simulated second); 0 runs closed-loop. Open-loop cells
	// measure latency against the intended arrival schedule
	// (coordinated-omission corrected) unless COUncorrected is set.
	SourceRate float64
	// LatencySampleEvery overrides the sink latency sampling period
	// (0 = runtime default of 8; tail cells use 1 for every-tuple tails).
	LatencySampleEvery int
	// NoAck disables the system profile's ack tracking (e.g. "storm
	// without acks" — the tail experiment's third engine configuration).
	NoAck bool
	// COUncorrected re-enables coordinated omission on open-loop cells
	// (latency against actual emission instants) for ablation tables.
	// Ignored when SourceRate is 0.
	COUncorrected bool
}

// MachineSpec resolves the cell's machine: the named variant with the
// HugePages and NoUopCache ablations applied on top.
func (c Cell) MachineSpec() (hw.MachineSpec, error) {
	spec, ok := hw.Variant(c.Spec)
	if !ok {
		return hw.MachineSpec{}, fmt.Errorf("bench: unknown machine spec variant %q (have %v; empty = Table III baseline)", c.Spec, hw.VariantNames()[1:])
	}
	if c.HugePages {
		spec = spec.WithHugePages()
	}
	if c.NoUopCache {
		spec.Decode.UopCacheBytes = 0
	}
	return spec, nil
}

func systemProfile(name string) (engine.SystemProfile, error) {
	switch name {
	case "storm":
		return engine.Storm(), nil
	case "flink":
		return engine.Flink(), nil
	}
	return engine.SystemProfile{}, fmt.Errorf("bench: unknown system %q", name)
}

// Events returns the cell's event count: the app default scaled by
// EventScale (0 means unscaled), clamped to at least one event so that a
// tiny or negative scale can never feed a non-positive count into
// apps.Build.
func (c Cell) Events() int {
	ev := defaultEvents[c.App]
	if ev == 0 {
		ev = 5000
	}
	if c.EventScale != 0 {
		ev = int(float64(ev) * c.EventScale)
	}
	if ev < 1 {
		ev = 1
	}
	return ev
}

// Topology builds the cell's application topology with overrides applied.
func (c Cell) Topology() (*engine.Topology, error) {
	seed := c.Seed
	if seed == 0 {
		seed = 1
	}
	topo, err := apps.Build(c.App, apps.Config{Events: c.Events(), Seed: seed, Scale: c.Scale})
	if err != nil {
		return nil, err
	}
	for op, p := range c.ParallelismOverride {
		n := topo.Node(op)
		if n == nil {
			return nil, fmt.Errorf("bench: override for unknown operator %q in %s", op, c.App)
		}
		// Clamp mirrors the topology builder's own invariant (engine panics
		// on non-positive parallelism at construction); Canonical applies the
		// same clamp so the memo key and the runtime agree.
		if p < 1 {
			p = 1
		}
		n.Parallelism = p
	}
	if c.Chaining {
		chained, _, err := engine.ChainTopology(topo)
		if err != nil {
			return nil, err
		}
		topo = chained
	}
	return topo, nil
}

// runDirect executes the cell on the simulated machine unconditionally,
// bypassing the memo layer. Run is the memoized entry point (memoize.go);
// the determinism test uses runDirect to prove repeat simulations are
// bit-identical rather than merely pointer-identical.
func runDirect(c Cell) (*engine.Result, error) { return runCell(c, nil) }

// RunTraced executes the cell with the given tracer attached, always
// simulating afresh: a memoized or disk-cached Result carries no trace, so
// traced runs bypass the memo layer entirely (and never pollute it — the
// Result is returned to the caller only). After it returns, the tracer
// holds the run's complete span/timeline/folded streams, ready for Write.
func RunTraced(c Cell, tr *trace.Tracer) (*engine.Result, error) {
	return runCell(c, tr)
}

func runCell(c Cell, tr *trace.Tracer) (*engine.Result, error) {
	sys, err := systemProfile(c.System)
	if err != nil {
		return nil, err
	}
	if c.NoAck {
		sys.AckEnabled = false
	}
	topo, err := c.Topology()
	if err != nil {
		return nil, err
	}
	seed := c.Seed
	if seed == 0 {
		seed = 1
	}
	cfg := engine.SimConfig{
		System:              sys,
		BatchSize:           c.BatchSize,
		Sockets:             c.Sockets,
		Cores:               c.Cores,
		Placement:           c.Placement,
		Seed:                seed,
		GC:                  c.GC,
		SourceRate:          c.SourceRate,
		LatencySampleEvery:  c.LatencySampleEvery,
		CoordinatedOmission: c.COUncorrected,
		Trace:               tr,
	}
	if c.Spec != "" || c.HugePages || c.NoUopCache {
		spec, err := c.MachineSpec()
		if err != nil {
			return nil, err
		}
		cfg.Spec = spec
	}
	return engine.RunSim(topo, cfg)
}
