package bench

import (
	"strconv"
	"strings"
	"testing"

	"streamscale/internal/trace"
)

// TestTailSmoke runs the CI gate end to end: coordinated-omission ordering,
// ledger reconciliation, and trace-as-pure-observer on a backpressured cell.
func TestTailSmoke(t *testing.T) {
	digest, err := TailSmoke()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(digest, "tail-smoke ok") {
		t.Fatalf("unexpected digest: %q", digest)
	}
	t.Log(digest)
}

// TestTailDrillDownDeterministic pins the worst-tuple attribution: tracing
// the same cell twice names the same root, the same dominant stall, and the
// same cycle counts.
func TestTailDrillDownDeterministic(t *testing.T) {
	cell := Cell{App: "wc", System: "storm", Sockets: 1, EventScale: 0.25}
	sat, err := Run(cell)
	if err != nil {
		t.Fatal(err)
	}
	cell.SourceRate = sat.Throughput().PerSecond() * TailLoad
	cell.LatencySampleEvery = 1

	var rows [2]TailRow
	for i := range rows {
		if err := fillWorst(&rows[i], cell); err != nil {
			t.Fatal(err)
		}
	}
	if rows[0] != rows[1] {
		t.Fatalf("drill-down not deterministic:\n%+v\n%+v", rows[0], rows[1])
	}
	if rows[0].Dominant == "" || rows[0].DominantMs <= 0 {
		t.Fatalf("no dominant stall named: %+v", rows[0])
	}
	if rows[0].WorstMs <= 0 {
		t.Fatalf("worst tuple has non-positive e2e: %+v", rows[0])
	}
}

// TestTailSummaryMatchesTracer pins the summary.json tail digest against the
// tracer's in-memory records: same roots, same ordering, same attribution.
// cmd/dsptrace -tail relies on this equivalence to cross-check artifacts.
func TestTailSummaryMatchesTracer(t *testing.T) {
	cell := Cell{App: "wc", System: "storm", Sockets: 1, EventScale: 0.25}
	tr := trace.New(trace.Config{SampleEvery: 1, QueueCadence: -1})
	if _, err := RunTraced(cell, tr); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tr.EncodeSummary(&sb); err != nil {
		t.Fatal(err)
	}
	recs := tr.Tails(5)
	if len(recs) == 0 {
		t.Fatal("no tail records")
	}
	for _, rec := range recs {
		needle := `{"root":` + strconv.FormatInt(rec.Root, 10) + `,"e2e_cycles":` + strconv.FormatInt(rec.E2ECycles, 10)
		if !strings.Contains(sb.String(), needle) {
			t.Fatalf("summary.json missing tail entry %s\n%s", needle, sb.String())
		}
	}
}

// TestTailTableFormat pins the table shape: header lines plus one row per
// config with the dominant-stall clause.
func TestTailTableFormat(t *testing.T) {
	rows := []TailRow{{
		App: "wc", System: "storm", Ack: true,
		RateKps: 123.4, Samples: 1000,
		P50: 1, P99: 2, P999: 3, P9999: 4, Max: 5,
		WorstRoot: 7, WorstMs: 5, Dominant: "queue-wait", DominantMs: 3.5,
	}}
	got := TailTable(rows)
	for _, want := range []string{"p99.99", "wc", "storm", "on", "e2e 5.00 ms, queue-wait 3.50 ms over tree"} {
		if !strings.Contains(got, want) {
			t.Fatalf("table missing %q:\n%s", want, got)
		}
	}
}
