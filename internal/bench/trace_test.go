package bench

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"sync"
	"testing"

	"streamscale/internal/trace"
)

// traceCell is the cell the trace e2e tests run: small enough to simulate
// in well under a second, rich enough to exercise spans on every hook
// (acks, multi-operator chains, a sink).
var traceCell = Cell{App: "wc", System: "storm", Sockets: 1}

// encodeAll renders a tracer's three artifacts to bytes for comparison.
func encodeAll(t *testing.T, tr *trace.Tracer) (traceJSON, folded, summary []byte) {
	t.Helper()
	var a, b, c bytes.Buffer
	if err := tr.EncodeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := tr.EncodeFolded(&b); err != nil {
		t.Fatal(err)
	}
	if err := tr.EncodeSummary(&c); err != nil {
		t.Fatal(err)
	}
	return a.Bytes(), b.Bytes(), c.Bytes()
}

func runTraced(t *testing.T, c Cell) (*trace.Tracer, []byte, []byte, []byte) {
	t.Helper()
	tr := trace.New(trace.Config{})
	if _, err := RunTraced(c, tr); err != nil {
		t.Fatal(err)
	}
	a, b, s := encodeAll(t, tr)
	return tr, a, b, s
}

// TestTraceDeterminismAcrossJobs pins the trace contract: the same cell
// traced under a sequential harness and under a parallel one — including
// two traced simulations racing each other — produces byte-identical
// trace, folded, and summary artifacts. All trace timestamps come from the
// simulation clock, so host scheduling cannot leak in.
func TestTraceDeterminismAcrossJobs(t *testing.T) {
	oldJobs := Jobs()
	defer SetJobs(oldJobs)

	SetJobs(1)
	_, refTrace, refFolded, refSummary := runTraced(t, traceCell)

	SetJobs(8)
	results := make([][3][]byte, 2)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr := trace.New(trace.Config{})
			if _, err := RunTraced(traceCell, tr); err != nil {
				t.Error(err)
				return
			}
			var a, b, c bytes.Buffer
			if err := tr.EncodeTrace(&a); err != nil {
				t.Error(err)
				return
			}
			if err := tr.EncodeFolded(&b); err != nil {
				t.Error(err)
				return
			}
			if err := tr.EncodeSummary(&c); err != nil {
				t.Error(err)
				return
			}
			results[i] = [3][]byte{a.Bytes(), b.Bytes(), c.Bytes()}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for i, r := range results {
		if !bytes.Equal(r[0], refTrace) {
			t.Errorf("concurrent run %d: trace.json differs from sequential run", i)
		}
		if !bytes.Equal(r[1], refFolded) {
			t.Errorf("concurrent run %d: stalls.folded differs from sequential run", i)
		}
		if !bytes.Equal(r[2], refSummary) {
			t.Errorf("concurrent run %d: summary.json differs from sequential run", i)
		}
	}
}

// TestTraceConservation pins losslessness: the folded-stack stall account
// sums exactly to the machine's charged-cycle ledger, both through the API
// and through the serialized artifact.
func TestTraceConservation(t *testing.T) {
	tr := trace.New(trace.Config{})
	res, err := RunTraced(traceCell, tr)
	if err != nil {
		t.Fatal(err)
	}
	if tr.FoldedTotal() != res.ChargedCycles {
		t.Fatalf("folded total %d != charged cycles %d", tr.FoldedTotal(), res.ChargedCycles)
	}
	_, folded, summary := encodeAll(t, tr)
	var total int64
	for _, line := range strings.Split(strings.TrimSpace(string(folded)), "\n") {
		n, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad folded line %q: %v", line, err)
		}
		total += n
	}
	if total != int64(res.ChargedCycles) {
		t.Fatalf("stalls.folded sums to %d, charged %d", total, int64(res.ChargedCycles))
	}
	var s trace.Summary
	if err := json.Unmarshal(summary, &s); err != nil {
		t.Fatal(err)
	}
	if !s.Lossless || s.ChargedCycles != int64(res.ChargedCycles) {
		t.Fatalf("summary reconciliation broken: %+v", s)
	}
}

// TestTracedRunMatchesUntraced pins the observer property: attaching a
// tracer must not perturb the simulation — every deterministic Result
// field matches an untraced run of the same cell.
func TestTracedRunMatchesUntraced(t *testing.T) {
	plain, err := runDirect(traceCell)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := RunTraced(traceCell, trace.New(trace.Config{SampleEvery: 1}))
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "traced vs untraced", plain, traced)
	if plain.ChargedCycles != traced.ChargedCycles {
		t.Fatalf("charged cycles differ: %d vs %d", plain.ChargedCycles, traced.ChargedCycles)
	}
}
