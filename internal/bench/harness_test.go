package bench

import "testing"

// Events must scale by EventScale and never return a non-positive count:
// a negative or tiny scale would otherwise flow into apps.Build as a
// negative/zero event budget.
func TestCellEventsClamp(t *testing.T) {
	for _, tc := range []struct {
		name string
		cell Cell
		want int
	}{
		{name: "default", cell: Cell{App: "wc"}, want: 3000},
		{name: "unknown app default", cell: Cell{App: "mystery"}, want: 5000},
		{name: "scaled up", cell: Cell{App: "wc", EventScale: 2}, want: 6000},
		{name: "scaled down", cell: Cell{App: "wc", EventScale: 0.5}, want: 1500},
		{name: "zero scale means unscaled", cell: Cell{App: "wc", EventScale: 0}, want: 3000},
		{name: "tiny scale clamps to one", cell: Cell{App: "wc", EventScale: 1e-9}, want: 1},
		{name: "negative scale clamps to one", cell: Cell{App: "wc", EventScale: -3}, want: 1},
		{name: "negative scale on tm clamps to one", cell: Cell{App: "tm", EventScale: -0.5}, want: 1},
	} {
		if got := tc.cell.Events(); got != tc.want {
			t.Errorf("%s: Events() = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// A clamped cell must still build and run.
func TestCellNegativeScaleRuns(t *testing.T) {
	res, err := Run(Cell{App: "wc", System: "flink", Sockets: 1, EventScale: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.SourceEvents < 1 {
		t.Fatalf("SourceEvents = %d, want >= 1", res.SourceEvents)
	}
}
