package bench

import (
	"fmt"
	"strings"
	"testing"

	"streamscale/internal/bench/memo"
)

// TestRunCellsDedup pins the in-process dedup acceptance criterion:
// cells that appear more than once in a sweep — verbatim or modulo a
// runtime clamp — simulate exactly once and share the result.
func TestRunCellsDedup(t *testing.T) {
	ResetMemo()
	a := Cell{App: "wc", System: "storm", Sockets: 1, EventScale: 0.2}
	aClamped := a
	aClamped.BatchSize = 1 // batch 0 and 1 are both "no batching"
	aClamped.Seed = 1      // seed 0 defaults to 1
	b := Cell{App: "wc", System: "flink", Sockets: 1, EventScale: 0.2}

	cells := []Cell{a, b, a, aClamped, b, a}
	results, err := RunCells(cells, 4)
	if err != nil {
		t.Fatal(err)
	}

	st := MemoStats()
	if st.Runs != 2 {
		t.Fatalf("sweep with 2 unique cells ran %d simulations", st.Runs)
	}
	if st.MemHits != int64(len(cells))-2 {
		t.Fatalf("MemHits = %d, want %d", st.MemHits, len(cells)-2)
	}
	for _, i := range []int{2, 3, 5} {
		if results[i].Res != results[0].Res {
			t.Fatalf("cell %d did not share cell 0's result", i)
		}
	}
	if results[4].Res != results[1].Res {
		t.Fatal("repeated flink cell did not share its result")
	}
	if results[0].Res == results[1].Res {
		t.Fatal("distinct cells share a result")
	}

	// A repeated sequential Run also joins the memoized entry.
	res, err := Run(a)
	if err != nil {
		t.Fatal(err)
	}
	if res != results[0].Res {
		t.Fatal("sequential Run re-simulated a memoized cell")
	}
	if st := MemoStats(); st.Runs != 2 {
		t.Fatalf("run count grew to %d", st.Runs)
	}
}

// TestColdVsWarmEquivalence runs the same small sweep twice against one
// cache directory — once cold (simulating and persisting), once warm in a
// fresh store of the same build (replaying from disk, zero simulations) —
// and requires byte-identical experiment tables. ci.sh runs this as its
// cache-equivalence gate after the race stage.
func TestColdVsWarmEquivalence(t *testing.T) {
	fp := memo.BuildFingerprint()
	if fp == "" {
		t.Skip("test binary unreadable; no build fingerprint")
	}
	dir := t.TempDir()
	orig := store
	defer func() { store = orig }()

	cells := []Cell{
		{App: "wc", System: "storm", Sockets: 1, EventScale: 0.2},
		{App: "fd", System: "flink", Sockets: 1, EventScale: 0.2},
		{App: "sd", System: "storm", Sockets: 1, BatchSize: 4, EventScale: 0.2},
		{App: "lg", System: "flink", Sockets: 1, Chaining: true, EventScale: 0.2},
	}
	sweep := func() string {
		crs, err := RunCells(cells, 2)
		if err != nil {
			t.Fatal(err)
		}
		// Full-precision table: stricter than the rounded report tables.
		var sb strings.Builder
		for _, cr := range crs {
			r := cr.Res
			fmt.Fprintf(&sb, "%s/%s events=%d/%d elapsed=%v tp=%v p50=%v p99=%v cycles=%d gc=%d\n",
				cr.Cell.App, cr.Cell.System, r.SourceEvents, r.SinkEvents,
				r.ElapsedSeconds, r.Throughput().PerSecond(),
				r.Latency.Quantile(0.5), r.Latency.Quantile(0.99),
				r.ChargedCycles, r.MinorGCs)
		}
		return sb.String()
	}

	store = memo.New(fp)
	if _, err := store.AttachDisk(dir); err != nil {
		t.Fatal(err)
	}
	cold := sweep()
	if st := store.Stats(); st.Runs != int64(len(cells)) || st.DiskErrors != 0 {
		t.Fatalf("cold stats = %+v, want %d runs and no disk errors", st, len(cells))
	}

	// A fresh store of the same build models the next process.
	store = memo.New(fp)
	if _, err := store.AttachDisk(dir); err != nil {
		t.Fatal(err)
	}
	warm := sweep()
	if st := store.Stats(); st.Runs != 0 || st.DiskHits != int64(len(cells)) {
		t.Fatalf("warm stats = %+v, want 0 runs and %d disk hits", st, len(cells))
	}

	if cold != warm {
		t.Fatalf("cold and warm tables differ:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}
}
