package bench

import (
	"strings"
	"testing"
)

// The single-socket study backs five paper artifacts; run it once.
var studyCache []CellResult

func study(t *testing.T) []CellResult {
	t.Helper()
	if studyCache == nil {
		cells, err := SingleSocketStudy()
		if err != nil {
			t.Fatal(err)
		}
		studyCache = cells
	}
	return studyCache
}

// Finding 1: ~70% of execution time in processor stalls for all apps
// except TM, under both systems.
func TestFinding1StallsDominate(t *testing.T) {
	for _, cr := range study(t) {
		bd := cr.Res.Profile.Breakdown()
		stalls := 1 - bd.Computation
		if cr.Cell.App == "tm" {
			if stalls > 0.60 {
				t.Errorf("%s: TM stalls = %.0f%%, should be computation-dominated", cr.key(), stalls*100)
			}
			continue
		}
		if stalls < 0.55 {
			t.Errorf("%s: stalls = %.0f%%, paper reports ~70%%", cr.key(), stalls*100)
		}
	}
}

// Finding 2: front-end stalls are a major component on a single socket,
// and L1I misses plus instruction decoding dominate them (Fig 8).
func TestFinding2FrontEndShape(t *testing.T) {
	for _, cr := range study(t) {
		if cr.Cell.App == "tm" {
			continue
		}
		bd := cr.Res.Profile.Breakdown()
		if bd.FrontEnd < 0.25 {
			t.Errorf("%s: front-end = %.0f%%, paper reports 25-56%%", cr.key(), bd.FrontEnd*100)
		}
		fe := cr.Res.Profile.FrontEnd()
		if fe.L1IMiss+fe.IDecoding < 0.85 {
			t.Errorf("%s: L1I+decode = %.0f%% of front-end, should dominate", cr.key(), (fe.L1IMiss+fe.IDecoding)*100)
		}
		if fe.ITLB > 0.15 {
			t.Errorf("%s: ITLB share = %.0f%%, should be small", cr.key(), fe.ITLB*100)
		}
	}
}

// Table IV shape: TM has the highest CPU and memory demand.
func TestTableIVShapes(t *testing.T) {
	cells := study(t)
	for _, sys := range Systems {
		tm := find(cells, "tm", sys)
		if tm.Res.CPUUtil < 0.9 {
			t.Errorf("%s TM CPU = %.2f, paper reports ~0.98", sys, tm.Res.CPUUtil)
		}
		if tm.Res.MemUtil < 0.3 {
			t.Errorf("%s TM memory = %.2f, paper reports 0.52-0.60", sys, tm.Res.MemUtil)
		}
		for _, app := range []string{"fd", "sd"} {
			cr := find(cells, app, sys)
			if cr.Res.CPUUtil >= tm.Res.CPUUtil {
				t.Errorf("%s %s CPU %.2f >= TM %.2f; paper has FD/SD lowest", sys, app, cr.Res.CPUUtil, tm.Res.CPUUtil)
			}
		}
	}
}

// Fig 6a: FD on Flink is the throughput outlier, TM the slowest.
func TestFig6aOrdering(t *testing.T) {
	cells := study(t)
	fd := find(cells, "fd", "flink").Res.Throughput().KPerSecond()
	if fd < 500 {
		t.Errorf("FD/flink = %.0f k/s, paper reports ~1026", fd)
	}
	for _, sys := range Systems {
		tm := find(cells, "tm", sys).Res.Throughput().KPerSecond()
		if tm > 1.0 {
			t.Errorf("TM/%s = %.2f k/s, paper reports 0.20-0.26", sys, tm)
		}
		for _, app := range []string{"wc", "fd", "lg", "sd", "vs", "lr"} {
			if other := find(cells, app, sys).Res.Throughput().KPerSecond(); other <= tm {
				t.Errorf("%s/%s (%.2f) not above TM (%.2f)", app, sys, other, tm)
			}
		}
	}
}

func TestSingleSocketTablesRender(t *testing.T) {
	cells := study(t)
	for name, s := range map[string]string{
		"fig6a":   Fig6aTable(cells),
		"tableiv": TableIV(cells),
		"fig7":    Fig7Table(cells),
		"fig8":    Fig8Table(cells),
		"fig11":   Fig11Table(cells),
	} {
		if !strings.Contains(s, "tm") || len(strings.Split(strings.TrimSpace(s), "\n")) < 6 {
			t.Errorf("%s table malformed:\n%s", name, s)
		}
	}
}

// Fig 6b/c shape: light apps scale on one socket but not across sockets.
func TestScalabilityShape(t *testing.T) {
	for _, sys := range Systems {
		res, err := ScalabilityFor(sys, []string{"fd", "tm"}, []int{2, 8, 32})
		if err != nil {
			t.Fatal(err)
		}
		fd := res.Normalized["fd"]
		// 2 -> 8 cores: decent scaling on one socket.
		if fd[1] < 1.5 {
			t.Errorf("%s: FD 8-core/2-core = %.2f, want >= 1.5", sys, fd[1])
		}
		// 8 -> 32 cores (four sockets): little further gain (Finding: FD
		// degrades or stays flat across sockets).
		if fd[2] > fd[1]*1.6 {
			t.Errorf("%s: FD gained %.2fx from sockets; paper shows flat/degrading", sys, fd[2]/fd[1])
		}
		// TM keeps scaling across sockets (high resource demand).
		tm := res.Normalized["tm"]
		if tm[2] < tm[1]*1.5 {
			t.Errorf("%s: TM 32c/8c = %.2f, paper shows TM scaling across sockets", sys, tm[2]/tm[1])
		}
	}
}

// Table V: remote LLC stalls dominate local on four sockets.
func TestTableVRemoteDominates(t *testing.T) {
	rows, err := TableV("storm")
	if err != nil {
		t.Fatal(err)
	}
	remoteWins := 0
	for _, r := range rows {
		if r.Remote > r.Local {
			remoteWins++
		}
		if r.Remote == 0 {
			t.Errorf("%s: no remote LLC stalls on four sockets", r.App)
		}
	}
	if remoteWins < 5 {
		t.Errorf("remote > local for only %d of 7 apps", remoteWins)
	}
	out := TableVTable("storm", rows)
	if !strings.Contains(out, "llc-remote") {
		t.Error("Table V render malformed")
	}
}

// Fig 10: growing the Map-Matcher executor count raises mean latency,
// latency divergence across executors, and the remote-LLC back-end share.
func TestFig10ExecutorSweep(t *testing.T) {
	rows, err := Fig10()
	if err != nil {
		t.Fatal(err)
	}
	first, last := rows[0], rows[len(rows)-1]
	if last.MeanLatencyMs <= first.MeanLatencyMs {
		t.Errorf("mean latency %.1f -> %.1f ms; paper shows it rising", first.MeanLatencyMs, last.MeanLatencyMs)
	}
	if last.StddevMs <= first.StddevMs {
		t.Errorf("stddev %.2f -> %.2f; paper shows divergence growing", first.StddevMs, last.StddevMs)
	}
	if last.RemoteShare <= 0 {
		t.Error("no remote back-end share at 56 executors")
	}
	if s := Fig10Table(rows); !strings.Contains(s, "56") {
		t.Error("Fig 10 render malformed")
	}
}

// Fig 12/13: batching raises throughput substantially with sub-linear
// latency growth.
func TestBatchingShape(t *testing.T) {
	for _, sys := range Systems {
		for _, app := range []string{"wc", "fd"} {
			var base, batched *CellResult
			res1, err := Run(Cell{App: app, System: sys, Sockets: 1, BatchSize: 1})
			if err != nil {
				t.Fatal(err)
			}
			res8, err := Run(Cell{App: app, System: sys, Sockets: 1, BatchSize: 8})
			if err != nil {
				t.Fatal(err)
			}
			_ = base
			_ = batched
			gain := res8.Throughput().PerSecond() / res1.Throughput().PerSecond()
			if gain < 1.3 {
				t.Errorf("%s/%s: batching S=8 gain = %.2fx, paper shows up to ~4.5x", app, sys, gain)
			}
			latRatio := res8.Latency.Mean() / res1.Latency.Mean()
			if latRatio > 8 {
				t.Errorf("%s/%s: latency grew %.1fx at S=8; paper shows sub-linear growth", app, sys, latRatio)
			}
		}
	}
}

// Fig 14: NUMA-aware placement does not hurt, and generally helps, on four
// sockets.
func TestPlacementHelps(t *testing.T) {
	base, err := Run(Cell{App: "wc", System: "storm", Sockets: 4, Scale: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, k, tp, err := bestPlacement("wc", "storm", 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Placement is roughly neutral for WC (our OS-spread baseline already
	// has sticky threads and first-touch locality; see EXPERIMENTS.md) and
	// must never be materially worse than it.
	ratio := tp / base.Throughput().PerSecond()
	if ratio < 0.95 {
		t.Errorf("placement ratio = %.2f, must not materially hurt", ratio)
	}
	if k < 1 || k > 4 {
		t.Errorf("best k = %d out of range", k)
	}
}

// GC ablation: parallelGC costs several times more than G1, and G1 stays
// in low single digits.
func TestGCStudyShape(t *testing.T) {
	rows, err := GCStudy([]string{"wc"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.G1Minor == 0 {
			t.Errorf("%s/%s: no G1 collections occurred", r.App, r.System)
		}
		if r.ParShare <= r.G1Share {
			t.Errorf("%s/%s: parallelGC share %.1f%% <= G1 %.1f%%", r.App, r.System, r.ParShare*100, r.G1Share*100)
		}
		if r.G1Share > 0.08 {
			t.Errorf("%s/%s: G1 share %.1f%%, paper reports 1-3%%", r.App, r.System, r.G1Share*100)
		}
	}
	if s := GCTable(rows); !strings.Contains(s, "parallel") {
		t.Error("GC table malformed")
	}
}

// Huge pages: TLB stalls shrink but throughput changes only marginally.
func TestHugePagesMarginal(t *testing.T) {
	rows, err := HugePages([]string{"wc"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.TLB2M > r.TLB4K {
			t.Errorf("%s/%s: TLB share grew with huge pages", r.App, r.System)
		}
		if r.Speedup < 0.9 || r.Speedup > 1.25 {
			t.Errorf("%s/%s: huge-pages speedup %.2fx, paper reports marginal", r.App, r.System, r.Speedup)
		}
	}
}

// Fig 9: Storm's footprints are platform-dominated (the null app looks
// like real apps), and a large fraction of invocation gaps exceed the L1I.
func TestFig9FootprintShape(t *testing.T) {
	storm, err := FootprintCDF("storm")
	if err != nil {
		t.Fatal(err)
	}
	var nullOver, minAppOver, maxAppOver float64
	minAppOver = 1
	for _, r := range storm {
		if r.App == "null" {
			nullOver = r.OverL1I
			continue
		}
		if r.App == "tm" {
			continue // TM's giant per-tuple work makes footprints atypical
		}
		if r.OverL1I < minAppOver {
			minAppOver = r.OverL1I
		}
		if r.OverL1I > maxAppOver {
			maxAppOver = r.OverL1I
		}
	}
	if maxAppOver < 0.2 {
		t.Errorf("storm: only %.0f%% of footprints exceed L1I; paper reports 30-50%%", maxAppOver*100)
	}
	if nullOver < minAppOver*0.5 {
		t.Errorf("storm null app footprint (%.2f) much smaller than apps (%.2f); paper finds platform dominates", nullOver, minAppOver)
	}
	if s := Fig9Table(storm); !strings.Contains(s, "null") {
		t.Error("Fig 9 render malformed")
	}
}

func TestSweepUnknownSystem(t *testing.T) {
	if _, err := Run(Cell{App: "wc", System: "samza"}); err == nil {
		t.Fatal("unknown system accepted")
	}
	if _, err := Run(Cell{App: "nosuch", System: "storm"}); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := Run(Cell{App: "tm", System: "storm", ParallelismOverride: map[string]int{"ghost": 3}}); err == nil {
		t.Fatal("override of unknown operator accepted")
	}
}

// D-ICache ablation: §V-B observes that L1I misses invalidate the
// decoded-µop cache and that hot regions far exceed its 1.5 kµop capacity,
// so it cannot rescue DSP workloads. Disabling it should therefore change
// next to nothing (and certainly not speed things up).
func TestUopCacheAblation(t *testing.T) {
	rows, err := UopCacheAblation([]string{"wc"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Slowdown < 0.90 || r.Slowdown > 1.02 {
			t.Errorf("%s/%s: D-ICache off/on throughput = %.2fx; expected ~1.0 (capacity far exceeded)",
				r.App, r.System, r.Slowdown)
		}
		if r.DecodeShareOff < 0.5 {
			t.Errorf("%s/%s: decode share without µop cache = %.0f%%, expected dominant", r.App, r.System, r.DecodeShareOff*100)
		}
	}
	if s := UopCacheTable(rows); !strings.Contains(s, "D-ICache") {
		t.Error("ablation table malformed")
	}
}

// Extension: the open-loop latency curve must rise toward saturation.
func TestLoadLatencyCurve(t *testing.T) {
	rows, err := LoadLatency("wc", "flink", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("points = %d, want 4", len(rows))
	}
	if rows[0].P50 >= rows[len(rows)-1].P50 {
		t.Errorf("p50 did not rise with load: %.2f at 20%% vs %.2f saturated",
			rows[0].P50, rows[len(rows)-1].P50)
	}
	for _, r := range rows {
		if r.P99 < r.P50 {
			t.Errorf("p99 %.2f below p50 %.2f at load %.1f", r.P99, r.P50, r.Load)
		}
	}
	if s := LoadLatencyTable("wc", "flink", rows); !strings.Contains(s, "saturated") {
		t.Error("table malformed")
	}
}

// Chaining ablation: SD's moving-average -> spike-detection hop is
// chainable and fusing it must improve throughput; unchainable apps must
// be unchanged.
func TestChainingAblation(t *testing.T) {
	rows, err := ChainingAblation([]string{"sd", "wc"})
	if err != nil {
		t.Fatal(err)
	}
	sawWin := false
	for _, r := range rows {
		// Chaining must never materially hurt; it only raises throughput
		// when the chained stages are the bottleneck (a source-bound run
		// stays put).
		if r.Gain < 0.93 {
			t.Errorf("%s/%s: chaining hurt throughput (%.2fx)", r.App, r.System, r.Gain)
		}
		if r.App == "sd" && r.Gain > 1.02 {
			sawWin = true
		}
		if r.App == "wc" && r.Gain > 1.05 {
			t.Errorf("wc/%s: gain %.2fx for an app with no chainable hop", r.System, r.Gain)
		}
	}
	if !sawWin {
		t.Error("chaining never helped SD on either system")
	}
	if s := ChainingTable(rows); !strings.Contains(s, "chained/plain") {
		t.Error("chaining table malformed")
	}
}

// Sustainable throughput: the bounded-latency rate sits below the
// closed-loop peak but is a substantial fraction of it.
func TestSustainableThroughput(t *testing.T) {
	r, err := Sustainable("wc", "flink", 5.0)
	if err != nil {
		t.Fatal(err)
	}
	if r.SustainableKps <= 0 {
		t.Fatal("no sustainable rate found")
	}
	if r.SustainableKps > r.PeakKps {
		t.Fatalf("sustainable %.1f above peak %.1f", r.SustainableKps, r.PeakKps)
	}
	if r.SustainableKps < r.PeakKps*0.1 {
		t.Fatalf("sustainable %.1f implausibly far below peak %.1f", r.SustainableKps, r.PeakKps)
	}
	if s := SustainableTable([]*SustainableResult{r}); !strings.Contains(s, "sustainable") {
		t.Error("table malformed")
	}
}
