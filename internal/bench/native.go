package bench

import (
	"fmt"
	"strings"

	"streamscale/internal/engine"
)

// Native validation loop: the simulator predicts how much an optimization
// (tuple batching, ack tracking, operator chaining) changes throughput;
// the native runtime measures the same effect as a real wall-clock ratio
// on this host. Absolute numbers are incomparable — the simulator models
// the paper's four-socket server, the native runtime runs on whatever this
// machine is — but effect *ratios* should agree if the simulator captures
// the mechanisms. ValidateNative computes both sides of that comparison.

// NativeEffectRow is one (cell, effect) comparison.
type NativeEffectRow struct {
	App    string
	System string
	// Effect names the toggled optimization: "batching" (S=4 vs S=1),
	// "ack" (tracking off vs on), or "chaining" (fused vs not).
	Effect string
	// SimRatio and NativeRatio are throughput ratios optimized/baseline
	// (for "ack": untracked/tracked, i.e. the speedup from turning the
	// mechanism off).
	SimRatio    float64
	NativeRatio float64
	// RelErr is |native-sim|/sim.
	RelErr float64
}

// NativeValidation is the full validation table.
type NativeValidation struct {
	Rows []NativeEffectRow
	// Reps is the best-of repetition count used for native measurements.
	Reps int
}

// MeanErr returns the mean relative error for one effect (or over all
// rows when effect is empty).
func (v *NativeValidation) MeanErr(effect string) float64 {
	var sum float64
	n := 0
	for _, r := range v.Rows {
		if effect == "" || r.Effect == effect {
			sum += r.RelErr
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func (v *NativeValidation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-6s %-9s %10s %10s %8s\n", "app", "system", "effect", "sim", "native", "rel.err")
	for _, r := range v.Rows {
		fmt.Fprintf(&b, "%-4s %-6s %-9s %9.2fx %9.2fx %7.1f%%\n",
			r.App, r.System, r.Effect, r.SimRatio, r.NativeRatio, r.RelErr*100)
	}
	for _, eff := range []string{"batching", "ack", "chaining"} {
		if err := v.MeanErr(eff); err > 0 || hasEffect(v.Rows, eff) {
			fmt.Fprintf(&b, "mean error %-9s %6.1f%%\n", eff, err*100)
		}
	}
	return b.String()
}

func hasEffect(rows []NativeEffectRow, effect string) bool {
	for _, r := range rows {
		if r.Effect == effect {
			return true
		}
	}
	return false
}

// DefaultValidationCells is the (app, system) grid dspbench -validate
// runs: one stateless-heavy and one window-heavy application under both
// system profiles.
func DefaultValidationCells() []Cell {
	return []Cell{
		{App: "wc", System: "storm"},
		{App: "wc", System: "flink"},
		{App: "sd", System: "storm"},
		{App: "sd", System: "flink"},
	}
}

// ValidateNative measures the throughput effect of batching, ack tracking,
// and operator chaining on both runtimes for every cell, taking the best
// of reps native runs per configuration (wall-clock measurements are
// noisy; the simulator side is deterministic and runs once). EventScale on
// a cell scales the workload for both runtimes.
func ValidateNative(cells []Cell, reps int) (*NativeValidation, error) {
	if reps <= 0 {
		reps = 3
	}
	v := &NativeValidation{Reps: reps}
	for _, c := range cells {
		sys, err := systemProfile(c.System)
		if err != nil {
			return nil, err
		}
		seed := c.Seed
		if seed == 0 {
			seed = 1
		}

		type variant struct {
			sys   engine.SystemProfile
			batch int
			chain bool
		}
		// simT and natT run one variant on each runtime. Topologies are
		// rebuilt per run: operator factories are stateful.
		simT := func(vt variant) (float64, error) {
			topo, err := c.topoChained(vt.chain)
			if err != nil {
				return 0, err
			}
			res, err := engine.RunSim(topo, engine.SimConfig{
				System: vt.sys, BatchSize: vt.batch, Sockets: 1, Seed: seed,
			})
			if err != nil {
				return 0, err
			}
			return float64(res.SourceEvents) / res.ElapsedSeconds, nil
		}
		natT := func(vt variant) (float64, error) {
			var best float64
			for i := 0; i < reps; i++ {
				topo, err := c.topoChained(false)
				if err != nil {
					return 0, err
				}
				res, err := engine.RunNative(topo, engine.NativeConfig{
					System: vt.sys, BatchSize: vt.batch, Seed: seed, Chaining: vt.chain,
				})
				if err != nil {
					return 0, err
				}
				if eps := float64(res.SourceEvents) / res.ElapsedSeconds; eps > best {
					best = eps
				}
			}
			return best, nil
		}
		addRow := func(effect string, base, opt variant) error {
			sb, err := simT(base)
			if err != nil {
				return err
			}
			so, err := simT(opt)
			if err != nil {
				return err
			}
			nb, err := natT(base)
			if err != nil {
				return err
			}
			no, err := natT(opt)
			if err != nil {
				return err
			}
			simR, natR := so/sb, no/nb
			v.Rows = append(v.Rows, NativeEffectRow{
				App: c.App, System: c.System, Effect: effect,
				SimRatio: simR, NativeRatio: natR,
				RelErr: abs(natR-simR) / simR,
			})
			return nil
		}

		// Batching: S=4 over S=1 on the cell's own profile.
		if err := addRow("batching", variant{sys: sys, batch: 1}, variant{sys: sys, batch: 4}); err != nil {
			return nil, err
		}
		// Ack tracking: off over on (the cost of Storm-style tuple
		// tracking), measured at S=4 where transfer cost doesn't dominate.
		sysOn, sysOff := sys, sys
		sysOn.AckEnabled = true
		if sysOn.AckerExecutors <= 0 {
			sysOn.AckerExecutors = 1
		}
		sysOff.AckEnabled = false
		if err := addRow("ack", variant{sys: sysOn, batch: 4}, variant{sys: sysOff, batch: 4}); err != nil {
			return nil, err
		}
		// Chaining: fused over unfused, only when the topology has a
		// chainable pair (otherwise the ratio is trivially 1).
		topo, err := c.topoChained(false)
		if err != nil {
			return nil, err
		}
		if _, fused, err := engine.ChainTopology(topo); err != nil {
			return nil, err
		} else if len(fused) > 0 {
			if err := addRow("chaining",
				variant{sys: sys, batch: 4},
				variant{sys: sys, batch: 4, chain: true}); err != nil {
				return nil, err
			}
		}
	}
	return v, nil
}

// topoChained builds the cell's topology, optionally chained, ignoring the
// cell's own Chaining flag (the validation loop toggles it per variant).
func (c Cell) topoChained(chain bool) (*engine.Topology, error) {
	cc := c
	cc.Chaining = chain
	return cc.Topology()
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
