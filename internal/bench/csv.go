package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"streamscale/internal/apps"
)

// CSV emitters: each figure's data as a machine-readable table, for
// plotting the reproduction next to the paper's figures.

func writeAll(w *csv.Writer, rows [][]string) error {
	for _, r := range rows {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

// Fig6aCSV writes app,storm,flink throughput rows (k events/s).
func Fig6aCSV(out io.Writer, cells []CellResult) error {
	rows := [][]string{{"app", "storm_kev_s", "flink_kev_s"}}
	for _, app := range apps.BenchmarkNames() {
		rows = append(rows, []string{
			app,
			f(find(cells, app, "storm").Res.Throughput().KPerSecond()),
			f(find(cells, app, "flink").Res.Throughput().KPerSecond()),
		})
	}
	return writeAll(csv.NewWriter(out), rows)
}

// BreakdownCSV writes system,app,computation,frontend,backend,badspec rows
// (Figure 7 data).
func BreakdownCSV(out io.Writer, cells []CellResult) error {
	rows := [][]string{{"system", "app", "computation", "frontend", "backend", "badspec"}}
	for _, sys := range Systems {
		for _, app := range apps.BenchmarkNames() {
			bd := find(cells, app, sys).Res.Profile.Breakdown()
			rows = append(rows, []string{
				sys, app, f(bd.Computation), f(bd.FrontEnd), f(bd.BackEnd), f(bd.BadSpec),
			})
		}
	}
	return writeAll(csv.NewWriter(out), rows)
}

// ScalabilityCSV writes app,cores,normalized rows (Figure 6b/6c data).
func ScalabilityCSV(out io.Writer, s *ScalabilityResult) error {
	rows := [][]string{{"system", "app", "cores", "normalized"}}
	for _, app := range apps.BenchmarkNames() {
		series, ok := s.Normalized[app]
		if !ok {
			continue
		}
		for i, v := range series {
			rows = append(rows, []string{
				s.System, app, strconv.Itoa(s.Points[i]), f(v),
			})
		}
	}
	return writeAll(csv.NewWriter(out), rows)
}

// FootprintCSV writes app,bytes,cdf rows (Figure 9 data).
func FootprintCSV(out io.Writer, results []FootprintResult) error {
	rows := [][]string{{"system", "app", "bytes", "cdf"}}
	for _, r := range results {
		for _, p := range r.Points {
			rows = append(rows, []string{
				r.System, r.App, strconv.Itoa(p.Bytes), f(p.Fraction),
			})
		}
	}
	return writeAll(csv.NewWriter(out), rows)
}

// BatchingCSV writes system,app,batch,throughput,latency rows (Fig 12/13).
func BatchingCSV(out io.Writer, rows_ []BatchingRow) error {
	rows := [][]string{{"system", "app", "batch", "norm_throughput", "norm_latency"}}
	for _, r := range rows_ {
		for i, s := range r.Sizes {
			rows = append(rows, []string{
				r.System, r.App, strconv.Itoa(s), f(r.Throughput[i]), f(r.Latency[i]),
			})
		}
	}
	return writeAll(csv.NewWriter(out), rows)
}

// PlacementCSV writes the Fig 14/15 series.
func PlacementCSV(out io.Writer, rows_ []PlacementRow) error {
	rows := [][]string{{"system", "app", "single_socket", "four_sockets", "placed", "combined", "best_k"}}
	for _, r := range rows_ {
		rows = append(rows, []string{
			r.System, r.App, f(r.SingleSocket), f(r.FourSockets), f(r.Placed), f(r.Combined),
			strconv.Itoa(r.BestK),
		})
	}
	return writeAll(csv.NewWriter(out), rows)
}

// TableVCSV writes app,local,remote rows.
func TableVCSV(out io.Writer, system string, rows_ []TableVRow) error {
	rows := [][]string{{"system", "app", "llc_local", "llc_remote"}}
	for _, r := range rows_ {
		rows = append(rows, []string{system, r.App, f(r.Local), f(r.Remote)})
	}
	return writeAll(csv.NewWriter(out), rows)
}

// Fig10CSV writes executors,mean_ms,stddev_ms,remote_share rows.
func Fig10CSV(out io.Writer, rows_ []Fig10Row) error {
	rows := [][]string{{"executors", "mean_ms", "stddev_ms", "be_remote", "be_local"}}
	for _, r := range rows_ {
		rows = append(rows, []string{
			strconv.Itoa(r.Executors), f(r.MeanLatencyMs), f(r.StddevMs),
			f(r.RemoteShare), f(r.LocalShare),
		})
	}
	return writeAll(csv.NewWriter(out), rows)
}

// UtilizationCSV writes system,app,cpu,mem rows (Table IV data).
func UtilizationCSV(out io.Writer, cells []CellResult) error {
	rows := [][]string{{"system", "app", "cpu", "memory_bw"}}
	for _, sys := range Systems {
		for _, app := range apps.BenchmarkNames() {
			cr := find(cells, app, sys)
			rows = append(rows, []string{sys, app, f(cr.Res.CPUUtil), f(cr.Res.MemUtil)})
		}
	}
	return writeAll(csv.NewWriter(out), rows)
}

// CSVName maps an artifact to its conventional file name.
func CSVName(artifact string) string { return fmt.Sprintf("%s.csv", artifact) }
