package bench

import (
	"testing"
)

// TestProbeCell pins the probe collapse: batch, slice, placement, event
// scale, and spec variant are dropped (those axes are modeled), while the
// workload identity — app, system, scale, seed, GC, ablations — survives.
func TestProbeCell(t *testing.T) {
	c := Cell{
		App: "wc", System: "storm",
		Sockets: 1, Cores: 4, BatchSize: 8, EventScale: 0.5,
		Placement: map[int]int{0: 1}, Spec: "turbo",
		Scale: 2, Seed: 7, Chaining: true, NoUopCache: true,
	}
	p := ProbeCell(c)
	if p.BatchSize != 1 || p.Sockets != 0 || p.Cores != 0 ||
		p.Placement != nil || p.EventScale != 0 || p.Spec != "" {
		t.Fatalf("probe did not drop modeled axes: %+v", p)
	}
	if p.App != c.App || p.System != c.System || p.Scale != c.Scale ||
		p.Seed != c.Seed || !p.Chaining || !p.NoUopCache {
		t.Fatalf("probe dropped workload identity: %+v", p)
	}
	// Every cell of a sweep that varies only modeled axes shares one probe.
	d := c
	d.BatchSize, d.Sockets, d.Spec = 32, 4, "slowmem"
	if ProbeCell(c).Canonical() != ProbeCell(d).Canonical() {
		t.Fatal("cells differing only in modeled axes have distinct probes")
	}
}

// TestEstimateCellSharesProbe pins the memo amortization: estimating a
// cell whose probe was already simulated runs zero new simulations — the
// calibration probe is a cache hit, and the estimate itself is analytical.
func TestEstimateCellSharesProbe(t *testing.T) {
	ResetMemo()
	ResetTierStats()
	cell := Cell{App: "wc", System: "storm", Sockets: 1, BatchSize: 8}
	if _, err := Run(ProbeCell(cell)); err != nil {
		t.Fatal(err)
	}
	if st := MemoStats(); st.Runs != 1 {
		t.Fatalf("probe warm-up ran %d simulations", st.Runs)
	}
	est, err := EstimateCell(cell)
	if err != nil {
		t.Fatal(err)
	}
	if st := MemoStats(); st.Runs != 1 {
		t.Fatalf("estimate re-simulated: %d runs, want the probe's 1", st.Runs)
	}
	if est.Pred.ThroughputEPS <= 0 || est.ProbeThroughputEPS <= 0 {
		t.Fatalf("estimate not positive: %+v", est)
	}
	if sc, ver, pr := TierStats(); sc != 1 || ver != 0 || pr != 1 {
		t.Fatalf("tier stats = %d screened, %d verified, %d probes", sc, ver, pr)
	}
}

// TestRunCellsTiered pins the tiered sweep contract on a small batching
// group: every cell is screened, the selection is the policy's (anchor +
// predicted best + midpoint, within budget), verified results are the
// memoized ones the untiered path returns, and the validation row is
// recorded. Running the same sweep again must reproduce the selection.
func TestRunCellsTiered(t *testing.T) {
	ResetMemo()
	ResetTierStats()
	group := TierGroup{Name: "wc/storm", Cells: []Cell{
		{App: "wc", System: "storm", Sockets: 1, BatchSize: 1},
		{App: "wc", System: "storm", Sockets: 1, BatchSize: 2},
		{App: "wc", System: "storm", Sockets: 1, BatchSize: 4},
		{App: "wc", System: "storm", Sockets: 1, BatchSize: 8},
	}}
	pol := TierPolicy{Budget: 3, Midpoint: true}

	run, err := RunCellsTiered("tier-test", []TierGroup{group}, pol)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Cells) != 1 || len(run.Cells[0]) != len(group.Cells) {
		t.Fatalf("screened shape %dx%d", len(run.Cells), len(run.Cells[0]))
	}
	var verified []int
	for i, tc := range run.Cells[0] {
		if tc.Pred.ThroughputEPS <= 0 {
			t.Fatalf("cell %d screened non-positive throughput", i)
		}
		if tc.Res != nil {
			verified = append(verified, i)
		}
	}
	if len(verified) != 3 {
		t.Fatalf("verified %v, want exactly the budget of 3", verified)
	}
	if run.Cells[0][0].Res == nil {
		t.Fatal("group anchor not verified")
	}

	// Verified rows are the same memoized Results the untiered path yields.
	runsBefore := MemoStats().Runs
	for _, i := range verified {
		direct, err := Run(group.Cells[i])
		if err != nil {
			t.Fatal(err)
		}
		if direct != run.Cells[0][i].Res {
			t.Fatalf("verified cell %d result differs from untiered Run", i)
		}
	}
	if MemoStats().Runs != runsBefore {
		t.Fatal("untiered re-check simulated instead of hitting the memo")
	}

	// One probe for the whole group (only modeled axes vary), plus one
	// simulation per verified cell.
	if got, want := MemoStats().Runs, int64(1+len(verified)); got != want {
		t.Fatalf("simulations = %d, want %d (1 probe + %d verified)", got, want, len(verified))
	}
	if run.Validation.Screened != 4 || run.Validation.Verified != 3 || run.Validation.Probes != 1 {
		t.Fatalf("validation row %+v", run.Validation)
	}
	rows := TierValidations()
	if len(rows) != 1 || rows[0] != run.Validation {
		t.Fatalf("recorded validations %+v", rows)
	}

	// The sweep is deterministic: a second run reproduces the selection and
	// predictions without any new simulation.
	again, err := RunCellsTiered("tier-test", []TierGroup{group}, pol)
	if err != nil {
		t.Fatal(err)
	}
	if MemoStats().Runs != int64(1+len(verified)) {
		t.Fatal("repeat sweep simulated new cells")
	}
	for i := range again.Cells[0] {
		if again.Cells[0][i].Pred != run.Cells[0][i].Pred {
			t.Fatalf("cell %d prediction changed across runs", i)
		}
		if (again.Cells[0][i].Res != nil) != (run.Cells[0][i].Res != nil) {
			t.Fatalf("cell %d verification selection changed across runs", i)
		}
	}
}

// TestTierPolicyPick pins the selection order and budget handling on
// synthetic predictions, independent of any simulation.
func TestTierPolicyPick(t *testing.T) {
	cells := make([]TierCell, 6)
	for i, tp := range []float64{10, 40, 30, 90, 20, 50} {
		cells[i].Pred.ThroughputEPS = tp
	}
	cells[4].Pred.Uncertainty = 0.9 // max-uncertainty straggler

	// best=3, anchor=0, midpoint n/2=3 (dup), neighbors 2 and 4, maxU=4 (dup).
	got := TierPolicy{Budget: 6, Neighborhood: 1, Midpoint: true}.pick(cells)
	want := []int{3, 0, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("pick = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pick = %v, want %v", got, want)
		}
	}

	// Budget truncates in priority order.
	if got := (TierPolicy{Budget: 2, Neighborhood: 1, Midpoint: true}).pick(cells); len(got) != 2 || got[0] != 3 || got[1] != 0 {
		t.Fatalf("budget-2 pick = %v, want [3 0]", got)
	}
	if got := (TierPolicy{}).pick(nil); got != nil {
		t.Fatalf("empty group picked %v", got)
	}
}
