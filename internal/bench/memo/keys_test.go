package memo_test

import (
	"testing"

	"streamscale/internal/bench"
	"streamscale/internal/bench/memo"
	"streamscale/internal/jvm"
)

// base is the reference cell every single-field variant mutates.
func base() bench.Cell {
	return bench.Cell{App: "wc", System: "storm", Sockets: 1}
}

// TestCanonicalSingleFieldDifferences pins the key property of the cache
// key: changing any single observable field of a Cell — including one
// entry of a map field — changes the canonical serialization, and
// therefore the hash. Every variant must also differ from every other.
func TestCanonicalSingleFieldDifferences(t *testing.T) {
	smallYoung := jvm.G1()
	smallYoung.YoungBytes = 1 << 20 // below the >=64MB clamp, so it survives
	survivor := jvm.G1()
	survivor.SurvivorFraction = 0.5

	variants := []struct {
		name string
		mut  func(*bench.Cell)
	}{
		{"app", func(c *bench.Cell) { c.App = "fd" }},
		{"system", func(c *bench.Cell) { c.System = "flink" }},
		{"sockets", func(c *bench.Cell) { c.Sockets = 2 }},
		{"cores", func(c *bench.Cell) { c.Cores = 4 }},
		{"batch", func(c *bench.Cell) { c.BatchSize = 4 }},
		{"placement", func(c *bench.Cell) { c.Placement = map[int]int{0: 1} }},
		{"placement-value", func(c *bench.Cell) { c.Placement = map[int]int{0: 2} }},
		{"placement-key", func(c *bench.Cell) { c.Placement = map[int]int{1: 1} }},
		{"placement-extra-entry", func(c *bench.Cell) { c.Placement = map[int]int{0: 1, 5: 2} }},
		{"eventscale", func(c *bench.Cell) { c.EventScale = 2 }},
		{"scale", func(c *bench.Cell) { c.Scale = 2 }},
		{"seed", func(c *bench.Cell) { c.Seed = 7 }},
		{"gc-kind", func(c *bench.Cell) { c.GC = jvm.Parallel() }},
		{"gc-young", func(c *bench.Cell) { c.GC = smallYoung }},
		{"gc-survivor", func(c *bench.Cell) { c.GC = survivor }},
		{"spec", func(c *bench.Cell) { c.Spec = "turbo" }},
		{"hugepages", func(c *bench.Cell) { c.HugePages = true }},
		{"nouopcache", func(c *bench.Cell) { c.NoUopCache = true }},
		{"chaining", func(c *bench.Cell) { c.Chaining = true }},
		{"paroverride", func(c *bench.Cell) { c.ParallelismOverride = map[string]int{"split": 2} }},
		{"paroverride-value", func(c *bench.Cell) { c.ParallelismOverride = map[string]int{"split": 3} }},
		{"paroverride-key", func(c *bench.Cell) { c.ParallelismOverride = map[string]int{"count": 2} }},
		// A joint-search verification cell (override + placement) must never
		// collide with the fixed-parallelism cell that shares its placement.
		{"paroverride-with-placement", func(c *bench.Cell) {
			c.Placement = map[int]int{0: 1}
			c.ParallelismOverride = map[string]int{"split": 2}
		}},
	}

	seen := map[string]string{base().Canonical(): "base"}
	for _, v := range variants {
		c := base()
		v.mut(&c)
		canon := c.Canonical()
		if prev, dup := seen[canon]; dup {
			t.Errorf("%s: canonical collides with %s:\n%s", v.name, prev, canon)
			continue
		}
		seen[canon] = v.name
	}
}

// TestCanonicalMapOrderInvariance pins that map insertion order never
// leaks into the key: the same placement and parallelism maps built in
// opposite orders serialize identically.
func TestCanonicalMapOrderInvariance(t *testing.T) {
	fwd := base()
	fwd.Placement = map[int]int{}
	fwd.ParallelismOverride = map[string]int{}
	for i := 0; i < 8; i++ {
		fwd.Placement[i] = i % 4
	}
	for _, op := range []string{"split", "count", "source", "sink"} {
		fwd.ParallelismOverride[op] = len(op)
	}

	rev := base()
	rev.Placement = map[int]int{}
	rev.ParallelismOverride = map[string]int{}
	for i := 7; i >= 0; i-- {
		rev.Placement[i] = i % 4
	}
	for _, op := range []string{"sink", "source", "count", "split"} {
		rev.ParallelismOverride[op] = len(op)
	}

	if fwd.Canonical() != rev.Canonical() {
		t.Fatalf("insertion order leaked into canonical:\n%s\nvs\n%s", fwd.Canonical(), rev.Canonical())
	}
}

// TestCanonicalRuntimeClamps pins the safe equivalences: pairs of cells
// the runtime provably cannot distinguish (each normalization mirrors an
// explicit clamp in the runtime or app builder) share one canonical.
func TestCanonicalRuntimeClamps(t *testing.T) {
	bigYoungA, bigYoungB := jvm.G1(), jvm.G1()
	bigYoungA.YoungBytes = 256 << 20
	bigYoungB.YoungBytes = 128 << 20 // both clamp to the same sim young gen

	pairs := []struct {
		name string
		a, b func(*bench.Cell)
	}{
		{"batch 0 == 1", func(c *bench.Cell) { c.BatchSize = 0 }, func(c *bench.Cell) { c.BatchSize = 1 }},
		{"seed 0 == 1", func(c *bench.Cell) { c.Seed = 0 }, func(c *bench.Cell) { c.Seed = 1 }},
		{"scale 0 == 1", func(c *bench.Cell) { c.Scale = 0 }, func(c *bench.Cell) { c.Scale = 1 }},
		{"sockets 0 == full machine", func(c *bench.Cell) { c.Sockets = 0 }, func(c *bench.Cell) { c.Sockets = 4 }},
		{"spec-aware socket clamp", func(c *bench.Cell) { c.Spec = "2x16"; c.Sockets = 0 }, func(c *bench.Cell) { c.Spec = "2x16"; c.Sockets = 2 }},
		{"cores 0 == all enabled", func(c *bench.Cell) { c.Sockets = 4; c.Cores = 0 }, func(c *bench.Cell) { c.Sockets = 4; c.Cores = 32 }},
		{"eventscale 0 == 1.0", func(c *bench.Cell) { c.EventScale = 0 }, func(c *bench.Cell) { c.EventScale = 1.0 }},
		{"gc zero == G1", func(c *bench.Cell) { c.GC = jvm.Config{} }, func(c *bench.Cell) { c.GC = jvm.G1() }},
		{"gc young clamp", func(c *bench.Cell) { c.GC = bigYoungA }, func(c *bench.Cell) { c.GC = bigYoungB }},
		{"nil placement == empty", func(c *bench.Cell) { c.Placement = nil }, func(c *bench.Cell) { c.Placement = map[int]int{} }},
		{"paroverride 0 == 1", func(c *bench.Cell) { c.ParallelismOverride = map[string]int{"split": 0} },
			func(c *bench.Cell) { c.ParallelismOverride = map[string]int{"split": 1} }},
		{"paroverride -3 == 1", func(c *bench.Cell) { c.ParallelismOverride = map[string]int{"split": -3} },
			func(c *bench.Cell) { c.ParallelismOverride = map[string]int{"split": 1} }},
	}
	for _, p := range pairs {
		ca, cb := base(), base()
		p.a(&ca)
		p.b(&cb)
		if ca.Canonical() != cb.Canonical() {
			t.Errorf("%s: canonicals differ:\n%s\nvs\n%s", p.name, ca.Canonical(), cb.Canonical())
		}
	}
}

// TestFingerprintInvalidatesKey pins that the same cell keys differently
// under different build fingerprints — the property that makes persisted
// results die with the build that produced them.
func TestFingerprintInvalidatesKey(t *testing.T) {
	canon := base().Canonical()
	if memo.New("build-a").Key(canon) == memo.New("build-b").Key(canon) {
		t.Fatal("cache key ignores the build fingerprint")
	}
}
