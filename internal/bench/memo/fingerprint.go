package memo

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
	"os"
	"sync"
)

var (
	fingerprintOnce sync.Once
	fingerprintVal  string
)

// BuildFingerprint derives the simulator version fingerprint from the
// build: the SHA-256 of the running executable's bytes. Any code change
// produces a different binary and therefore a different fingerprint, so
// persisted results can never outlive the simulator that computed them —
// the property that keeps a cached dspreport trustworthy. The hash is
// computed once per process.
//
// It returns "" when the executable cannot be read; New still produces a
// working in-memory store then, but AttachDisk refuses to persist.
func BuildFingerprint() string {
	fingerprintOnce.Do(func() {
		path, err := os.Executable()
		if err != nil {
			return
		}
		f, err := os.Open(path)
		if err != nil {
			return
		}
		defer f.Close()
		h := sha256.New()
		if _, err := io.Copy(h, f); err != nil {
			return
		}
		fingerprintVal = "exe-" + hex.EncodeToString(h.Sum(nil))
	})
	return fingerprintVal
}
