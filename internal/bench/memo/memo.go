// Package memo is a content-addressed result cache for simulation cells.
// A cell's canonical serialization (bench.Cell.Canonical) is hashed
// together with a build fingerprint into a cache key; requests for the
// same key are single-flighted (concurrent and repeated requests simulate
// once and share the result) and, when a cache directory is attached,
// results persist across processes so an unchanged build replays a sweep
// from disk instead of re-simulating it.
//
// Keys are collision-checked: every lookup carries the full canonical
// string, and both the in-memory layer and the disk layer compare it
// against the stored one before serving a result, so a SHA-256 collision
// degrades to an error instead of a silently wrong table.
package memo

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"streamscale/internal/engine"
)

// Store memoizes cell results. The zero value is not usable; construct
// with New. A Store is safe for concurrent use.
type Store struct {
	fingerprint string

	mu      sync.Mutex
	entries map[string]*entry
	dir     string // persistent layer root; "" = in-memory only

	stats Stats
}

// entry is one in-flight or completed cell. done is closed when res/err
// are valid; later requesters block on it instead of re-running.
type entry struct {
	canonical string
	done      chan struct{}
	res       *engine.Result
	err       error
}

// Stats counts what the store did. Runs is the number of simulations
// actually executed — the dedup tests pin shared cells to one run.
type Stats struct {
	// Runs counts executions of the underlying run function.
	Runs int64
	// MemHits counts requests served by an in-memory entry, including
	// single-flight joins that waited for an in-flight run.
	MemHits int64
	// DiskHits counts results loaded from the persistent layer.
	DiskHits int64
	// DiskErrors counts best-effort persistent-layer failures (unreadable
	// or unwritable cache files). They never fail a run.
	DiskErrors int64
	// Pruned counts stale cache files removed when the directory was
	// attached.
	Pruned int64
}

// New returns an in-memory store. fingerprint identifies the simulator
// build (see BuildFingerprint); it is mixed into every key, so results
// memoized by different builds never alias.
func New(fingerprint string) *Store {
	return &Store{
		fingerprint: fingerprint,
		entries:     make(map[string]*entry),
	}
}

// Fingerprint returns the build fingerprint the store keys under.
func (s *Store) Fingerprint() string { return s.fingerprint }

// Key returns the hex cache key for a canonical cell string: the SHA-256
// of the build fingerprint and the canonical serialization.
func (s *Store) Key(canonical string) string {
	h := sha256.New()
	h.Write([]byte(s.fingerprint))
	h.Write([]byte{0})
	h.Write([]byte(canonical))
	return hex.EncodeToString(h.Sum(nil))
}

// Do returns the result for the cell described by canonical, running run
// at most once per key: the first request executes it, concurrent
// requests for the same key block until it finishes, and later requests
// are served from memory (or from the attached directory, where results
// from previous processes of the same build live). Errors are memoized
// in-memory only and never persisted.
//
// The returned Result is shared by every caller of the same key and must
// be treated as immutable.
func (s *Store) Do(canonical string, run func() (*engine.Result, error)) (*engine.Result, error) {
	key := s.Key(canonical)

	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.stats.MemHits++
		s.mu.Unlock()
		<-e.done
		if e.canonical != canonical {
			return nil, fmt.Errorf("memo: key collision: %q vs %q", e.canonical, canonical)
		}
		return e.res, e.err
	}
	e := &entry{canonical: canonical, done: make(chan struct{})}
	s.entries[key] = e
	dir := s.dir
	s.mu.Unlock()

	if dir != "" {
		if res, ok := s.loadDisk(dir, key, canonical); ok {
			e.res = res
			close(e.done)
			s.mu.Lock()
			s.stats.DiskHits++
			s.mu.Unlock()
			return res, nil
		}
	}

	res, err := run()
	e.res, e.err = res, err
	close(e.done)
	s.mu.Lock()
	s.stats.Runs++
	s.mu.Unlock()
	if err == nil && dir != "" {
		if werr := s.storeDisk(dir, key, canonical, res); werr != nil {
			s.mu.Lock()
			s.stats.DiskErrors++
			s.mu.Unlock()
		}
	}
	return res, err
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Reset drops every in-memory entry and zeroes the counters. The attached
// directory, if any, stays attached and keeps its files — Reset models a
// process restart, which the cold-vs-warm tests use.
func (s *Store) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = make(map[string]*entry)
	s.stats = Stats{}
}
