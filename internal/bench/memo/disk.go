package memo

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"streamscale/internal/engine"
)

// cacheExt is the persistent cache file suffix. A file holds two gob
// streams back to back: a header (fingerprint + canonical cell string)
// followed by the encoded engine.Result, so pruning can decide a file's
// fate from the header alone without decoding the result.
const cacheExt = ".dspcache"

// header identifies what a cache file holds and which build produced it.
type header struct {
	Fingerprint string
	Canonical   string
}

// AttachDisk attaches a persistent layer rooted at dir, creating the
// directory if needed, and prunes cache files left by other builds (their
// results describe a different simulator and can never be served again —
// the fingerprint is part of every key). It returns the number of files
// pruned. Attaching requires a non-empty fingerprint: without one the
// store cannot tell its own files from a stale build's.
func (s *Store) AttachDisk(dir string) (pruned int, err error) {
	if s.fingerprint == "" {
		return 0, fmt.Errorf("memo: cannot attach %s: store has no build fingerprint", dir)
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return 0, err
	}
	names, err := filepath.Glob(filepath.Join(dir, "*"+cacheExt))
	if err != nil {
		return 0, err
	}
	for _, name := range names {
		h, ok := readHeader(name)
		if !ok || h.Fingerprint != s.fingerprint {
			if os.Remove(name) == nil {
				pruned++
			}
		}
	}
	s.mu.Lock()
	s.dir = dir
	s.stats.Pruned += int64(pruned)
	s.mu.Unlock()
	return pruned, nil
}

// Dir returns the attached cache directory ("" when in-memory only).
func (s *Store) Dir() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dir
}

func cachePath(dir, key string) string {
	return filepath.Join(dir, key+cacheExt)
}

// readHeader decodes only the leading header of a cache file; a missing
// or undecodable header reports false (the file is garbage to us).
func readHeader(name string) (header, bool) {
	f, err := os.Open(name)
	if err != nil {
		return header{}, false
	}
	defer f.Close()
	var h header
	if err := gob.NewDecoder(f).Decode(&h); err != nil {
		return header{}, false
	}
	return h, true
}

// loadDisk serves key from the attached directory if a file for it exists
// and its header matches this build and canonical string exactly.
func (s *Store) loadDisk(dir, key, canonical string) (*engine.Result, bool) {
	f, err := os.Open(cachePath(dir, key))
	if err != nil {
		return nil, false
	}
	defer f.Close()
	dec := gob.NewDecoder(f)
	var h header
	if err := dec.Decode(&h); err != nil {
		s.noteDiskError()
		return nil, false
	}
	if h.Fingerprint != s.fingerprint || h.Canonical != canonical {
		// Stale build or (vanishingly unlikely) key collision; ignore the
		// file, the run will overwrite it.
		return nil, false
	}
	var res engine.Result
	if err := dec.Decode(&res); err != nil {
		s.noteDiskError()
		return nil, false
	}
	return &res, true
}

// storeDisk writes key's result atomically: encode to a temp file in the
// same directory, then rename over the final path, so a concurrent reader
// (another dspreport against the same cache) never sees a torn file.
func (s *Store) storeDisk(dir, key, canonical string, res *engine.Result) error {
	tmp, err := os.CreateTemp(dir, key+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	err = writeCacheFile(tmp, header{Fingerprint: s.fingerprint, Canonical: canonical}, res)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	return os.Rename(tmp.Name(), cachePath(dir, key))
}

func writeCacheFile(w io.Writer, h header, res *engine.Result) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(h); err != nil {
		return err
	}
	return enc.Encode(res)
}

func (s *Store) noteDiskError() {
	s.mu.Lock()
	s.stats.DiskErrors++
	s.mu.Unlock()
}

// isCacheFile reports whether a directory entry name looks like one of
// ours; used by tests to count live cache files.
func isCacheFile(name string) bool { return strings.HasSuffix(name, cacheExt) }
