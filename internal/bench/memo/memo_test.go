package memo

import (
	"errors"
	"fmt"
	"os"
	"reflect"
	"sync"
	"testing"

	"streamscale/internal/engine"
	"streamscale/internal/metrics"
)

func fakeResult(app string, events int64) *engine.Result {
	h := metrics.NewHistogram(64)
	for i := int64(0); i < events%50+3; i++ {
		h.Observe(float64(i) / 4)
	}
	return &engine.Result{
		App: app, System: "storm",
		SourceEvents: events, SinkEvents: events - 1,
		ElapsedSeconds: 1.5, Latency: h,
	}
}

func TestDoRunsOncePerKey(t *testing.T) {
	s := New("fp-test")
	runs := 0
	run := func() (*engine.Result, error) { runs++; return fakeResult("wc", 100), nil }

	a, err := s.Do("cell-a", run)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Do("cell-a", run)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("repeated Do returned distinct results")
	}
	if runs != 1 {
		t.Fatalf("run executed %d times, want 1", runs)
	}
	st := s.Stats()
	if st.Runs != 1 || st.MemHits != 1 {
		t.Fatalf("stats = %+v, want Runs=1 MemHits=1", st)
	}
	if _, err := s.Do("cell-b", run); err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Fatalf("distinct canonical did not run; runs = %d", runs)
	}
}

func TestDoSingleFlightConcurrent(t *testing.T) {
	s := New("fp-test")
	const waiters = 16
	var mu sync.Mutex
	runs := 0
	gate := make(chan struct{})
	run := func() (*engine.Result, error) {
		mu.Lock()
		runs++
		mu.Unlock()
		<-gate // hold the entry in flight until every waiter has joined
		return fakeResult("wc", 7), nil
	}

	results := make([]*engine.Result, waiters)
	var wg sync.WaitGroup
	var joined sync.WaitGroup
	joined.Add(waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			joined.Done()
			res, err := s.Do("hot-cell", run)
			if err != nil {
				t.Error(err)
			}
			results[i] = res
		}(i)
	}
	joined.Wait()
	close(gate)
	wg.Wait()

	if runs != 1 {
		t.Fatalf("concurrent Do executed run %d times, want 1", runs)
	}
	for i := 1; i < waiters; i++ {
		if results[i] != results[0] {
			t.Fatalf("waiter %d got a different result pointer", i)
		}
	}
}

func TestDoMemoizesErrorsInMemoryOnly(t *testing.T) {
	s := New("fp-test")
	dir := t.TempDir()
	if _, err := s.AttachDisk(dir); err != nil {
		t.Fatal(err)
	}
	runs := 0
	boom := errors.New("boom")
	run := func() (*engine.Result, error) { runs++; return nil, boom }

	if _, err := s.Do("bad-cell", run); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, err := s.Do("bad-cell", run); !errors.Is(err, boom) {
		t.Fatalf("second err = %v, want memoized boom", err)
	}
	if runs != 1 {
		t.Fatalf("failing run executed %d times, want 1", runs)
	}
	if n := countCacheFiles(t, dir); n != 0 {
		t.Fatalf("error was persisted: %d cache files", n)
	}
	// A fresh process (Reset) must retry, not replay the error from disk.
	s.Reset()
	if _, err := s.Do("bad-cell", run); !errors.Is(err, boom) {
		t.Fatalf("post-reset err = %v", err)
	}
	if runs != 2 {
		t.Fatalf("post-reset run count = %d, want 2", runs)
	}
}

func TestDiskRoundTripAndWarmLoad(t *testing.T) {
	dir := t.TempDir()
	s := New("fp-disk")
	if _, err := s.AttachDisk(dir); err != nil {
		t.Fatal(err)
	}
	want := fakeResult("fd", 1234)
	cold, err := s.Do("cell-disk", func() (*engine.Result, error) { return want, nil })
	if err != nil {
		t.Fatal(err)
	}
	if cold != want {
		t.Fatalf("cold Do did not return the run's result")
	}
	if n := countCacheFiles(t, dir); n != 1 {
		t.Fatalf("cache files = %d, want 1", n)
	}

	s.Reset() // simulate a new process of the same build
	warm, err := s.Do("cell-disk", func() (*engine.Result, error) {
		t.Fatal("warm Do re-ran the simulation")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, warm) {
		t.Fatalf("disk round trip changed the result:\n have %+v\n got  %+v", want, warm)
	}
	st := s.Stats()
	if st.DiskHits != 1 || st.Runs != 0 {
		t.Fatalf("stats = %+v, want DiskHits=1 Runs=0", st)
	}
}

func TestAttachDiskPrunesOtherBuilds(t *testing.T) {
	dir := t.TempDir()
	old := New("fp-old")
	if _, err := old.AttachDisk(dir); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		c := fmt.Sprintf("cell-%d", i)
		if _, err := old.Do(c, func() (*engine.Result, error) { return fakeResult("wc", int64(i)), nil }); err != nil {
			t.Fatal(err)
		}
	}
	// Garbage that merely wears the extension must go too.
	if err := os.WriteFile(dir+"/junk"+cacheExt, []byte("not gob"), 0o666); err != nil {
		t.Fatal(err)
	}

	cur := New("fp-new")
	pruned, err := cur.AttachDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if pruned != 4 {
		t.Fatalf("pruned = %d, want 4 (3 stale + 1 garbage)", pruned)
	}
	if n := countCacheFiles(t, dir); n != 0 {
		t.Fatalf("stale files survived: %d", n)
	}

	// Same build re-attaching prunes nothing.
	if _, err := cur.Do("cell-x", func() (*engine.Result, error) { return fakeResult("lg", 5), nil }); err != nil {
		t.Fatal(err)
	}
	again := New("fp-new")
	if pruned, err = again.AttachDisk(dir); err != nil || pruned != 0 {
		t.Fatalf("re-attach pruned %d (err %v), want 0", pruned, err)
	}
}

func TestAttachDiskRequiresFingerprint(t *testing.T) {
	s := New("")
	if _, err := s.AttachDisk(t.TempDir()); err == nil {
		t.Fatal("AttachDisk accepted an unfingerprinted store")
	}
	// In-memory memoization still works.
	if _, err := s.Do("c", func() (*engine.Result, error) { return fakeResult("wc", 1), nil }); err != nil {
		t.Fatal(err)
	}
}

func TestDoDetectsKeyCollision(t *testing.T) {
	s := New("fp-test")
	// A real SHA-256 collision is unreachable; plant one.
	e := &entry{canonical: "other-cell", done: make(chan struct{})}
	close(e.done)
	s.mu.Lock()
	s.entries[s.Key("this-cell")] = e
	s.mu.Unlock()
	if _, err := s.Do("this-cell", func() (*engine.Result, error) { return fakeResult("wc", 1), nil }); err == nil {
		t.Fatal("collision went undetected")
	}
}

func TestKeyDependsOnFingerprint(t *testing.T) {
	a, b := New("fp-a"), New("fp-b")
	if a.Key("cell") == b.Key("cell") {
		t.Fatal("key ignores the build fingerprint")
	}
	if a.Key("cell") != New("fp-a").Key("cell") {
		t.Fatal("key is not deterministic")
	}
}

func countCacheFiles(t *testing.T, dir string) int {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, de := range des {
		if isCacheFile(de.Name()) {
			n++
		}
	}
	return n
}
